package snakes

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ingest"
	"repro/internal/storage"
	"repro/internal/workload"
)

// The write path: a FileStore stays read-optimized (records packed along
// the chosen linearization) while upserts land in a delta store — an
// append-only, CRC-trailered redo log with an in-memory index — and are
// merged on read until a paced compactor folds them into the base file.
// See Ingestor for the high-level wrapper.

// DeltaLog is the append-only delta store of whole-cell upserts. Open one
// beside a store file with OpenDeltaLog and attach it to the FileStore
// with AttachDeltaLog so reads see pending writes.
type DeltaLog = ingest.Log

// DeltaOptions tunes a delta log's durability and backlog policy.
type DeltaOptions = ingest.Options

// SyncPolicy selects when the delta log fsyncs: SyncAlways (every Put),
// SyncBatch (every DeltaOptions.BatchBytes), or SyncNone (only on
// flush/checkpoint/close).
type SyncPolicy = ingest.SyncPolicy

// Delta log sync policies; see SyncPolicy.
const (
	SyncAlways = ingest.SyncAlways
	SyncBatch  = ingest.SyncBatch
	SyncNone   = ingest.SyncNone
)

// ParseSyncPolicy maps "always", "batch" or "none" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return ingest.ParseSyncPolicy(s) }

// ErrIngestBacklog marks a Put rejected because the delta backlog exceeds
// DeltaOptions.MaxPendingBytes; match with errors.Is and shed or retry.
var ErrIngestBacklog = ingest.ErrBacklog

// DeltaPath returns the conventional delta-log path beside a store file.
func DeltaPath(storePath string) string { return ingest.DeltaPath(storePath) }

// OpenDeltaLog opens (or creates) the delta log for a store generation,
// replaying any existing entries and truncating a torn tail.
func OpenDeltaLog(path string, generation int64, opt DeltaOptions) (*DeltaLog, error) {
	return ingest.Open(path, generation, opt)
}

// AttachDeltaLog wires the log's index into the store's merge-on-read
// hook: every read path overlays pending cell payloads onto the base file,
// counting each overlaid cell in PoolTally.DeltaHits and on trace spans.
func AttachDeltaLog(fs *FileStore, l *DeltaLog) {
	fs.SetOverlay(l.Overlay())
}

// Compactor folds a delta log into its base store in paced ticks,
// draining the heaviest linearization regions first.
type Compactor = ingest.Compactor

// CompactorConfig tunes a Compactor's region size, per-tick byte budget,
// and catalog commit hook.
type CompactorConfig = ingest.CompactorConfig

// CompactionTick reports one Compactor.Tick.
type CompactionTick = ingest.TickStats

// NewCompactor builds a paced compactor; see CompactorConfig.
func NewCompactor(cfg CompactorConfig) *Compactor { return ingest.NewCompactor(cfg) }

// CompactionStatus is an Ingestor's write-path health snapshot.
type CompactionStatus struct {
	PendingCells int   `json:"pendingCells"` // cells awaiting compaction
	PendingBytes int64 `json:"pendingBytes"` // payload bytes awaiting compaction
	Puts         int64 `json:"puts"`         // lifetime accepted upserts
	Ticks        int64 `json:"ticks"`        // compaction ticks run
	CellsApplied int64 `json:"cellsApplied"` // cells folded into the base file
	BytesApplied int64 `json:"bytesApplied"` // bytes folded into the base file
}

// Ingestor bundles a FileStore, its delta log, and a compactor into the
// grid-level write API: PutCell upserts a cell by coordinates, reads issued
// against the store merge pending upserts automatically, and Compact (or a
// caller-driven tick loop) folds them into the base file.
type Ingestor struct {
	fs   *FileStore
	log  *DeltaLog
	comp *Compactor
}

// NewIngestor wires the three parts together and attaches the log's
// overlay to the store. The compactor may be configured with a Commit hook
// that persists the caller's catalog.
func NewIngestor(fs *FileStore, l *DeltaLog, cfg CompactorConfig) *Ingestor {
	AttachDeltaLog(fs, l)
	return &Ingestor{fs: fs, log: l, comp: NewCompactor(cfg)}
}

// PutCell replaces the cell at the given grid coordinates with the given
// records — durably per the log's SyncPolicy, visible to reads
// immediately, folded into the base file by a later Compact. The records
// must fit the cell's packed capacity.
func (in *Ingestor) PutCell(coords []int, records ...[]byte) error {
	order := in.fs.Layout().Order()
	cell := order.CellIndex(coords)
	framed := storage.FrameRecords(records...)
	if cap := in.fs.Layout().CellCapacity(cell); int64(len(framed)) > cap {
		return fmt.Errorf("snakes: %d bytes of records exceed cell capacity %d", len(framed), cap)
	}
	if err := in.log.Put(cell, framed); err != nil {
		return err
	}
	in.fs.InvalidateCellPlans(cell)
	return nil
}

// Flush forces the delta log to stable storage regardless of SyncPolicy.
func (in *Ingestor) Flush() error { return in.log.Flush() }

// Compact runs one paced compaction tick.
func (in *Ingestor) Compact(ctx context.Context) (CompactionTick, error) {
	return in.comp.Tick(ctx, in.fs, in.log)
}

// Drain compacts until no deltas remain or ctx ends.
func (in *Ingestor) Drain(ctx context.Context) error {
	for in.log.PendingCells() > 0 {
		if _, err := in.Compact(ctx); err != nil {
			return err
		}
	}
	return nil
}

// FrameRecords packs records into the length-prefixed framing a cell
// stores on disk — the payload format DeltaLog.Put and
// FileStore.PutCellBytes expect.
func FrameRecords(records ...[]byte) []byte { return storage.FrameRecords(records...) }

// RecoverDeltas replays every pending delta-log entry into the base store
// and flushes it — the startup redo pass after a crash. Returns the
// applied sequence numbers (pass them to DeltaLog.Checkpoint once the
// caller's catalog is durable) and the number of entries replayed.
// Idempotent: re-applying an entry the crashed process already applied
// rewrites the same bytes.
func RecoverDeltas(ctx context.Context, fs *FileStore, l *DeltaLog) (map[int]uint64, int, error) {
	return ingest.Recover(ctx, fs, l)
}

// RateTracker estimates an exponentially decayed event rate; the daemon
// divides the delta backlog by a byte-rate tracker's estimate to report
// compaction lag in seconds.
type RateTracker = workload.RateTracker

// NewRateTracker returns a tracker with the given half-life; <= 0 disables
// decay (a plain lifetime average).
func NewRateTracker(halfLife time.Duration) *RateTracker {
	return workload.NewRateTracker(halfLife)
}

// RegionMigrateOptions paces an incremental re-clustering; see
// Strategy.MigrateRegionsCtx.
type RegionMigrateOptions = ingest.RegionMigrateOptions

// MigrateRegionsCtx re-clusters a file store onto this strategy's order
// incrementally: the target linearization is cut into regions, regions are
// scored by (1 + pending delta bytes) × (1 + clustering-violation
// distance), and the worst are copied first in paced, bounded ticks, so
// the store converges toward the DP-optimal layout without ever rewriting
// the whole file in one burst. Pass the store's delta log (or nil) so
// pending upserts ride along; returns the new store and the tick count.
func (st *Strategy) MigrateRegionsCtx(ctx context.Context, old *FileStore, newPath string, poolFrames int, l *DeltaLog, opt RegionMigrateOptions) (*FileStore, int, error) {
	o, err := st.Materialize()
	if err != nil {
		return nil, 0, err
	}
	return ingest.MigrateRegionsCtx(ctx, old, newPath, o, poolFrames, l, opt)
}

// CompactionStatus snapshots the write path's backlog and progress.
func (in *Ingestor) CompactionStatus() CompactionStatus {
	ticks, cells, bytes := in.comp.Ticks()
	return CompactionStatus{
		PendingCells: in.log.PendingCells(),
		PendingBytes: in.log.PendingBytes(),
		Puts:         in.log.Puts(),
		Ticks:        ticks,
		CellsApplied: cells,
		BytesApplied: bytes,
	}
}
