package snakes

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreFacadeLifecycle(t *testing.T) {
	s := exampleSchema()
	w := s.ClassWorkload(Class{0, 2})
	opt, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.db")
	fs, err := opt.CreateFileStore(path, bytes, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < s.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(1))
		if err := fs.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and query.
	fs2, err := opt.OpenFileStore(path, bytes, 64, 8, loaded)
	if err != nil {
		t.Fatal(err)
	}
	count, _, err := fs2.Sum(Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Errorf("count = %v, want 16", count)
	}

	// Re-cluster onto a row-major strategy; data survives.
	rm, err := s.RowMajor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := rm.Migrate(fs2, filepath.Join(dir, "facts2.db"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer migrated.Close()
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	count2, _, err := migrated.Sum(Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count2 != 16 {
		t.Errorf("migrated count = %v, want 16", count2)
	}
}

// TestFileStoreFacadeVerifyDetectsCorruption drives the durability layer
// through the public facade: a store scrubs clean after a build, and a
// single flipped bit on disk is caught by Verify — and located — rather
// than silently flowing into query results.
func TestFileStoreFacadeVerifyDetectsCorruption(t *testing.T) {
	s := exampleSchema()
	st, err := s.RowMajor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	path := filepath.Join(t.TempDir(), "facts.db")
	fs, err := st.CreateFileStore(path, bytes, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < s.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := fs.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fresh store reported problems: %v", rep.Problems)
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the data region of page 1.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	off := int64(64 + 5)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x01
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fs2, err := st.OpenFileStore(path, bytes, 64, 8, loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	rep2, err := fs2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK() {
		t.Fatal("flipped bit went undetected")
	}
	if !errors.Is(rep2.Err(), ErrCorruptPage) {
		t.Fatalf("report error %v does not match ErrCorruptPage", rep2.Err())
	}
	found := false
	for _, p := range rep2.Problems {
		if p.Page == 1 && p.Cell >= 0 && len(p.Coords) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems %v do not locate page 1 with cell coordinates", rep2.Problems)
	}
}
