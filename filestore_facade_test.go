package snakes

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

func TestFileStoreFacadeLifecycle(t *testing.T) {
	s := exampleSchema()
	w := s.ClassWorkload(Class{0, 2})
	opt, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.db")
	fs, err := opt.CreateFileStore(path, bytes, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < s.NumCells(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(1))
		if err := fs.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and query.
	fs2, err := opt.OpenFileStore(path, bytes, 64, 8, loaded)
	if err != nil {
		t.Fatal(err)
	}
	count, _, err := fs2.Sum(Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 16 {
		t.Errorf("count = %v, want 16", count)
	}

	// Re-cluster onto a row-major strategy; data survives.
	rm, err := s.RowMajor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	migrated, err := rm.Migrate(fs2, filepath.Join(dir, "facts2.db"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer migrated.Close()
	if err := fs2.Close(); err != nil {
		t.Fatal(err)
	}
	count2, _, err := migrated.Sum(Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(rec []byte) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(rec))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count2 != 16 {
		t.Errorf("migrated count = %v, want 16", count2)
	}
}
