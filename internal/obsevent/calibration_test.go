package obsevent

import (
	"math"
	"testing"
)

func TestCalibrationExactWhenReconciled(t *testing.T) {
	c := NewCalibration(0.9, 0.25, 4)
	// A cold, overlay-free store reconciles exactly: observed == predicted
	// every query. The decayed sums then divide to exactly 1.0 — float
	// division of equal values, no epsilon needed.
	for i := 0; i < 20; i++ {
		c.Observe("0,1", 12, 12, 3, 3)
		c.Observe("1,0", 7, 7, 2, 2)
	}
	for _, v := range c.Snapshot() {
		if v.PageRatio != 1.0 || v.SeekRatio != 1.0 {
			t.Fatalf("class %s: ratios %v/%v, want exactly 1.0", v.Class, v.PageRatio, v.SeekRatio)
		}
		if v.Drifted {
			t.Fatalf("class %s flagged drifted on perfect calibration", v.Class)
		}
	}
	if got := c.SeekCorrection(); got != 1.0 {
		t.Fatalf("SeekCorrection = %v, want exactly 1.0", got)
	}
	if drifted := c.DriftedClasses(); len(drifted) != 0 {
		t.Fatalf("drifted classes %v, want none", drifted)
	}
}

func TestCalibrationDriftAndRecovery(t *testing.T) {
	c := NewCalibration(0.9, 0.25, 4)
	// Healthy history first.
	for i := 0; i < 10; i++ {
		c.Observe("0,1", 10, 10, 4, 4)
	}
	// A heavy overlay absorbs half the predicted cost: the ratio decays
	// toward 0.5, crossing the 25% drift threshold.
	for i := 0; i < 30; i++ {
		c.Observe("0,1", 10, 5, 4, 2)
	}
	v, ok := c.Class("0,1")
	if !ok {
		t.Fatal("class never observed")
	}
	if !v.Drifted {
		t.Fatalf("overlay drift not flagged: %+v", v)
	}
	if v.PageRatio > 0.75 {
		t.Fatalf("page ratio %v did not drift below 0.75", v.PageRatio)
	}
	if got := c.SeekCorrection(); got >= 0.75 {
		t.Fatalf("SeekCorrection = %v, want well below 1 under overlay", got)
	}
	// Compaction restores reconciliation; fresh exact observations decay
	// the stale history out and the flag clears.
	for i := 0; i < 60; i++ {
		c.Observe("0,1", 10, 10, 4, 4)
	}
	v, _ = c.Class("0,1")
	if v.Drifted {
		t.Fatalf("drift flag stuck after recovery: %+v", v)
	}
	if math.Abs(v.PageRatio-1) > 0.05 || math.Abs(v.SeekRatio-1) > 0.05 {
		t.Fatalf("ratios %v/%v did not recover toward 1", v.PageRatio, v.SeekRatio)
	}
}

func TestCalibrationMinWeightGate(t *testing.T) {
	c := NewCalibration(0.9, 0.25, 8)
	// Three wildly misreconciled observations: below the weight gate,
	// never flagged.
	for i := 0; i < 3; i++ {
		c.Observe("0,0", 100, 1, 10, 1)
	}
	if v, _ := c.Class("0,0"); v.Drifted {
		t.Fatalf("class flagged with weight %v below the gate", v.Weight)
	}
	for i := 0; i < 20; i++ {
		c.Observe("0,0", 100, 1, 10, 1)
	}
	if v, _ := c.Class("0,0"); !v.Drifted {
		t.Fatalf("class not flagged past the weight gate: %+v", v)
	}
}

func TestCalibrationUnknownClass(t *testing.T) {
	c := NewCalibration(0, 0, 0) // defaults
	v, ok := c.Class("9,9")
	if ok {
		t.Fatal("unknown class reported as observed")
	}
	if v.PageRatio != 1 || v.SeekRatio != 1 || v.Drifted {
		t.Fatalf("unknown class view %+v, want neutral", v)
	}
	if got := c.SeekCorrection(); got != 1 {
		t.Fatalf("empty SeekCorrection = %v, want 1", got)
	}
}

func TestCalibrationCorrectionClamp(t *testing.T) {
	c := NewCalibration(1, 0.25, 1)
	for i := 0; i < 5; i++ {
		c.Observe("0,0", 1, 1000, 1, 1000)
	}
	if got := c.SeekCorrection(); got != 10 {
		t.Fatalf("correction %v, want clamp at 10", got)
	}
	c2 := NewCalibration(1, 0.25, 1)
	for i := 0; i < 5; i++ {
		c2.Observe("0,0", 1000, 1, 1000, 1)
	}
	if got := c2.SeekCorrection(); got != 0.1 {
		t.Fatalf("correction %v, want clamp at 0.1", got)
	}
}
