package obsevent

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The SLO engine consumes the query event stream and maintains per-class
// error-budget burn rates over two windows, the multiwindow alerting
// shape: a request is *good* when it answered without a server error
// within its class's latency threshold, and the burn rate over a window
// is
//
//	burn = (bad / total) / (1 - target)
//
// — the rate at which the error budget is being spent, 1.0 meaning
// "exactly on budget". A class is **burning** when the short window burns
// at FastBurn or more while the long window is also over budget (a fast
// burn that the long window confirms is real, not a blip), **at-risk**
// when either window is over budget, and **ok** otherwise.

// SLO window lengths. The short window reacts in minutes; the long
// window stops a brief spike from paging anyone.
const (
	SLOShortWindow = 5 * time.Minute
	SLOLongWindow  = time.Hour
)

// SLO states, ordered from healthy to alerting.
const (
	SLOStateOK      = "ok"
	SLOStateAtRisk  = "at-risk"
	SLOStateBurning = "burning"
)

// SLOStates enumerates the closed state label set for metrics.
func SLOStates() []string { return []string{SLOStateOK, SLOStateAtRisk, SLOStateBurning} }

// Objective is one latency SLO: Target (a fraction, e.g. 0.999) of
// requests answer within Threshold.
type Objective struct {
	Threshold time.Duration `json:"threshold"`
	Target    float64       `json:"target"`
}

func (o Objective) validate() error {
	if o.Threshold <= 0 {
		return fmt.Errorf("slo: threshold %v must be positive", o.Threshold)
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: target %v must be inside (0, 1)", o.Target)
	}
	return nil
}

// SLOConfig is the engine's objective set. Classes without a per-class
// objective use Default when HasDefault is set and are untracked
// otherwise, so operators control series cardinality.
type SLOConfig struct {
	HasDefault bool
	Default    Objective
	PerClass   map[string]Objective

	// FastBurn and SlowBurn are the burning thresholds for the short and
	// long windows; zero values take the conventional 14.4 / 1.0 pair
	// (14.4 = spending a 30-day budget in ~2 days).
	FastBurn float64
	SlowBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 1
	}
	return c
}

// ParseSLOSpec parses the -slo flag syntax: semicolon-separated
// entries, each "<class>=<threshold>@<percent>", where <class> is either
// the literal "default" or a class label ("0,2" — levels comma-joined,
// which is why the entry separator is ';'). Example:
//
//	default=250ms@99.9;0,2=50ms@99
func ParseSLOSpec(spec string) (SLOConfig, error) {
	cfg := SLOConfig{PerClass: make(map[string]Objective)}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return cfg, fmt.Errorf("slo: entry %q: want <class>=<threshold>@<percent>", entry)
		}
		thr, pct, ok := strings.Cut(val, "@")
		if !ok {
			return cfg, fmt.Errorf("slo: entry %q: want <threshold>@<percent> after '='", entry)
		}
		d, err := time.ParseDuration(thr)
		if err != nil {
			return cfg, fmt.Errorf("slo: entry %q: %v", entry, err)
		}
		p, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return cfg, fmt.Errorf("slo: entry %q: percent %q: %v", entry, pct, err)
		}
		o := Objective{Threshold: d, Target: p / 100}
		if err := o.validate(); err != nil {
			return cfg, fmt.Errorf("slo: entry %q: %v", entry, err)
		}
		key = strings.TrimSpace(key)
		if key == "default" {
			if cfg.HasDefault {
				return cfg, fmt.Errorf("slo: duplicate default entry")
			}
			cfg.HasDefault, cfg.Default = true, o
			continue
		}
		if _, dup := cfg.PerClass[key]; dup {
			return cfg, fmt.Errorf("slo: duplicate entry for class %q", key)
		}
		cfg.PerClass[key] = o
	}
	if !cfg.HasDefault && len(cfg.PerClass) == 0 {
		return cfg, fmt.Errorf("slo: empty spec; want e.g. default=250ms@99.9")
	}
	return cfg, nil
}

// sloSeries is one tracked class: sixty per-minute good/bad buckets
// (a rotating window stamped with the minute they describe, so stale
// buckets are skipped rather than shifted) plus cumulative totals.
type sloSeries struct {
	obj       Objective
	minuteOf  [60]int64
	good, bad [60]int64
	totalGood int64
	totalBad  int64
}

// SLOEngine tracks burn rates for every configured class. Safe for
// concurrent use; the clock is injectable so burn-rate trajectories are
// testable as pure functions of (observations, clock).
type SLOEngine struct {
	cfg SLOConfig
	now func() time.Time

	mu      sync.Mutex
	classes map[string]*sloSeries
}

// NewSLOEngine returns an engine on the wall clock.
func NewSLOEngine(cfg SLOConfig) *SLOEngine { return NewSLOEngineWithClock(cfg, time.Now) }

// NewSLOEngineWithClock returns an engine reading time from now —
// deterministic burn-rate math for tests and the bench.
func NewSLOEngineWithClock(cfg SLOConfig, now func() time.Time) *SLOEngine {
	return &SLOEngine{cfg: cfg.withDefaults(), now: now, classes: make(map[string]*sloSeries)}
}

// objective resolves a class's objective; ok is false for untracked
// classes.
func (e *SLOEngine) objective(class string) (Objective, bool) {
	if o, ok := e.cfg.PerClass[class]; ok {
		return o, true
	}
	if e.cfg.HasDefault {
		return e.cfg.Default, true
	}
	return Objective{}, false
}

// series returns (creating if needed) the class's series; callers hold
// e.mu.
func (e *SLOEngine) series(class string, obj Objective) *sloSeries {
	s := e.classes[class]
	if s == nil {
		s = &sloSeries{obj: obj}
		for i := range s.minuteOf {
			s.minuteOf[i] = -1
		}
		e.classes[class] = s
	}
	return s
}

// Observe folds one served query into its class's current minute bucket.
// serverError marks 5xx answers bad regardless of latency; requests the
// client got wrong (4xx) should not be observed at all.
func (e *SLOEngine) Observe(class string, latency time.Duration, serverError bool) {
	obj, ok := e.objective(class)
	if !ok {
		return
	}
	minute := e.now().Unix() / 60
	bad := serverError || latency > obj.Threshold
	e.mu.Lock()
	s := e.series(class, obj)
	idx := minute % 60
	if s.minuteOf[idx] != minute {
		s.minuteOf[idx] = minute
		s.good[idx], s.bad[idx] = 0, 0
	}
	if bad {
		s.bad[idx]++
		s.totalBad++
	} else {
		s.good[idx]++
		s.totalGood++
	}
	e.mu.Unlock()
}

// windowCounts sums the buckets stamped within the last `minutes`
// minutes (inclusive of the current one); callers hold e.mu.
func windowCounts(s *sloSeries, minute int64, minutes int64) (good, bad int64) {
	lo := minute - minutes + 1
	for i := range s.minuteOf {
		if m := s.minuteOf[i]; m >= lo && m <= minute {
			good += s.good[i]
			bad += s.bad[i]
		}
	}
	return good, bad
}

// burn computes the burn rate from window counts against an objective.
// An empty window spends no budget.
func burn(good, bad int64, obj Objective) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - obj.Target)
}

func sloStateRank(s string) int {
	switch s {
	case SLOStateBurning:
		return 2
	case SLOStateAtRisk:
		return 1
	default:
		return 0
	}
}

// stateLocked classifies one series at the given minute; callers hold
// e.mu.
func (e *SLOEngine) stateLocked(s *sloSeries, minute int64) string {
	g5, b5 := windowCounts(s, minute, int64(SLOShortWindow/time.Minute))
	g60, b60 := windowCounts(s, minute, int64(SLOLongWindow/time.Minute))
	burn5 := burn(g5, b5, s.obj)
	burn60 := burn(g60, b60, s.obj)
	switch {
	case burn5 >= e.cfg.FastBurn && burn60 >= e.cfg.SlowBurn:
		return SLOStateBurning
	case burn5 >= 1 || burn60 >= 1:
		return SLOStateAtRisk
	default:
		return SLOStateOK
	}
}

// BurnRates returns a class's current short- and long-window burn rates
// (0, 0 for untracked or never-observed classes).
func (e *SLOEngine) BurnRates(class string) (short, long float64) {
	minute := e.now().Unix() / 60
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.classes[class]
	if s == nil {
		return 0, 0
	}
	g5, b5 := windowCounts(s, minute, int64(SLOShortWindow/time.Minute))
	g60, b60 := windowCounts(s, minute, int64(SLOLongWindow/time.Minute))
	return burn(g5, b5, s.obj), burn(g60, b60, s.obj)
}

// State returns a class's current state (ok for untracked classes).
func (e *SLOEngine) State(class string) string {
	minute := e.now().Unix() / 60
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.classes[class]
	if s == nil {
		return SLOStateOK
	}
	return e.stateLocked(s, minute)
}

// SLOClassStatus is one class's SLO position, shaped for /healthz.
type SLOClassStatus struct {
	Class       string  `json:"class"`
	ThresholdMs float64 `json:"thresholdMs"`
	Target      float64 `json:"target"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`
	Burn5m      float64 `json:"burn5m"`
	Burn1h      float64 `json:"burn1h"`
	State       string  `json:"state"`
}

// Status snapshots every observed class plus the worst current state
// across them ("ok" when nothing was observed yet).
func (e *SLOEngine) Status() ([]SLOClassStatus, string) {
	minute := e.now().Unix() / 60
	e.mu.Lock()
	out := make([]SLOClassStatus, 0, len(e.classes))
	worst := SLOStateOK
	for class, s := range e.classes {
		g5, b5 := windowCounts(s, minute, int64(SLOShortWindow/time.Minute))
		g60, b60 := windowCounts(s, minute, int64(SLOLongWindow/time.Minute))
		st := e.stateLocked(s, minute)
		if sloStateRank(st) > sloStateRank(worst) {
			worst = st
		}
		out = append(out, SLOClassStatus{
			Class:       class,
			ThresholdMs: float64(s.obj.Threshold.Nanoseconds()) / 1e6,
			Target:      s.obj.Target,
			Good:        s.totalGood,
			Bad:         s.totalBad,
			Burn5m:      burn(g5, b5, s.obj),
			Burn1h:      burn(g60, b60, s.obj),
			State:       st,
		})
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out, worst
}

// Totals returns a class's cumulative good/bad counts for counter-style
// metrics.
func (e *SLOEngine) Totals(class string) (good, bad int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.classes[class]; s != nil {
		return s.totalGood, s.totalBad
	}
	return 0, 0
}
