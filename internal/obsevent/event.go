// Package obsevent is the daemon's wide-event telemetry kernel: one
// canonical record per served request, carrying everything the serving
// path knows about it — class, generation, predicted and observed cost,
// delta and plan-cache hits, admission wait, outcome, latency, trace id —
// published into a fixed-size lock-free ring. The ring is the single
// source for access logs and the /debug/events endpoint, and the event
// stream feeds the cost-model calibration watch (calibration.go) and the
// per-class SLO burn-rate engine (slo.go). Dependency-free by design,
// like internal/obs.
package obsevent

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// Event is one request's wide record. The serving middleware allocates
// it, handlers fill in what they learn (class, predictions, tallies), and
// the middleware seals it with status/outcome/latency and publishes it.
// After Publish an event is immutable: readers may hold it forever.
type Event struct {
	// Seq is the 1-based publication sequence number, assigned by
	// Ring.Publish. Gapless across concurrent publishers.
	Seq uint64 `json:"seq"`
	// TimeUnixNs is the request start time.
	TimeUnixNs int64 `json:"timeUnixNs"`

	Handler   string `json:"handler"`
	Method    string `json:"method"`
	Path      string `json:"path"`
	Status    int    `json:"status"`
	Outcome   string `json:"outcome"` // ok | client_error | shed | timeout | error
	LatencyNs int64  `json:"latencyNs"`
	RequestID uint64 `json:"requestId"`
	TraceID   uint64 `json:"traceId,omitempty"`
	Error     string `json:"error,omitempty"`

	// Query attribution; zero for handlers that serve no region.
	Class           string `json:"class,omitempty"`
	Generation      int64  `json:"generation,omitempty"`
	PredictedPages  int64  `json:"predictedPages,omitempty"`
	PredictedSeeks  int64  `json:"predictedSeeks,omitempty"`
	PagesRead       int64  `json:"pagesRead,omitempty"`
	SeeksObserved   int64  `json:"seeksObserved,omitempty"`
	DeltaHits       int64  `json:"deltaHits,omitempty"`
	PlanCacheHit    bool   `json:"planCacheHit,omitempty"`
	AdmissionWaitNs int64  `json:"admissionWaitNs,omitempty"`
	// Records is the handler's unit of work: records streamed for a
	// query, cells accepted for an ingest, pages repaired for a repair.
	Records int64 `json:"records,omitempty"`
}

// Outcome labels form the event stream's closed error taxonomy, mirrored
// from the daemon's HTTP status mapping.
const (
	OutcomeOK          = "ok"
	OutcomeClientError = "client_error"
	OutcomeShed        = "shed"
	OutcomeTimeout     = "timeout"
	OutcomeError       = "error"
)

// OutcomeOf maps an HTTP status onto the closed outcome set.
func OutcomeOf(status int) string {
	switch {
	case status < 400:
		return OutcomeOK
	case status < 500:
		return OutcomeClientError
	case status == 503:
		return OutcomeShed
	case status == 504:
		return OutcomeTimeout
	default:
		return OutcomeError
	}
}

// Ring is a fixed-size lock-free overwrite buffer of published events.
// Writers claim a sequence number from one atomic counter and store into
// slot (seq-1) % capacity; readers snapshot whatever the slots hold.
// Published events are immutable, so a snapshot racing writers yields
// old-or-new events, never a torn one. Memory is bounded by capacity:
// overwritten events become garbage as soon as no reader holds them.
type Ring struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
}

// NewRing returns a ring retaining the last capacity published events
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], capacity)}
}

// Publish seals e into the ring: assigns the next sequence number, stores
// it, and returns it. e must not be mutated afterwards.
func (r *Ring) Publish(e *Event) uint64 {
	seq := r.seq.Add(1)
	e.Seq = seq
	r.slots[(seq-1)%uint64(len(r.slots))].Store(e)
	return seq
}

// Published returns the total number of events ever published.
func (r *Ring) Published() uint64 { return r.seq.Load() }

// Capacity returns the ring's slot count.
func (r *Ring) Capacity() int { return len(r.slots) }

// Overwritten returns how many published events have been pushed out of
// the retention window.
func (r *Ring) Overwritten() uint64 {
	if n := r.seq.Load(); n > uint64(len(r.slots)) {
		return n - uint64(len(r.slots))
	}
	return 0
}

// Snapshot returns the currently retained events, newest first. Every
// event appears at most once (sequence numbers are unique), and the
// result length never exceeds capacity.
func (r *Ring) Snapshot() []*Event {
	out := make([]*Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Filter selects events from a snapshot; zero values match everything.
type Filter struct {
	Handler    string        // exact handler name
	Class      string        // exact class label
	Outcome    string        // exact outcome label
	MinLatency time.Duration // keep events at least this slow
	SinceSeq   uint64        // keep events with Seq > SinceSeq
	Limit      int           // max events returned (0 = no limit)
}

// Match reports whether e passes every set field of the filter.
func (f Filter) Match(e *Event) bool {
	if f.Handler != "" && e.Handler != f.Handler {
		return false
	}
	if f.Class != "" && e.Class != f.Class {
		return false
	}
	if f.Outcome != "" && e.Outcome != f.Outcome {
		return false
	}
	if f.MinLatency > 0 && e.LatencyNs < f.MinLatency.Nanoseconds() {
		return false
	}
	if f.SinceSeq > 0 && e.Seq <= f.SinceSeq {
		return false
	}
	return true
}

// Query snapshots the ring and returns the matching events newest first,
// truncated to the filter's limit.
func (r *Ring) Query(f Filter) []*Event {
	snap := r.Snapshot()
	out := snap[:0]
	for _, e := range snap {
		if f.Match(e) {
			out = append(out, e)
			if f.Limit > 0 && len(out) >= f.Limit {
				break
			}
		}
	}
	return out
}

// eventKey is the context key WithEvent stores under.
type eventKey struct{}

// WithEvent attaches the request's wide event so handlers down the stack
// can fill in attribution fields before the middleware publishes it.
func WithEvent(ctx context.Context, e *Event) context.Context {
	return context.WithValue(ctx, eventKey{}, e)
}

// FromContext returns the request's in-flight event, or nil.
func FromContext(ctx context.Context) *Event {
	e, _ := ctx.Value(eventKey{}).(*Event)
	return e
}
