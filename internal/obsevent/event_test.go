package obsevent

import (
	"sync"
	"testing"
	"time"
)

func TestEventRingBasics(t *testing.T) {
	r := NewRing(4)
	if got := r.Capacity(); got != 4 {
		t.Fatalf("capacity = %d, want 4", got)
	}
	for i := 0; i < 6; i++ {
		seq := r.Publish(&Event{Handler: "query", LatencyNs: int64(i)})
		if seq != uint64(i+1) {
			t.Fatalf("publish %d returned seq %d", i, seq)
		}
	}
	if r.Published() != 6 {
		t.Fatalf("published = %d, want 6", r.Published())
	}
	if r.Overwritten() != 2 {
		t.Fatalf("overwritten = %d, want 2", r.Overwritten())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(snap))
	}
	for i, e := range snap {
		want := uint64(6 - i) // newest first
		if e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestEventRingFilter(t *testing.T) {
	r := NewRing(16)
	r.Publish(&Event{Handler: "query", Class: "0,1", Outcome: OutcomeOK, LatencyNs: int64(2 * time.Millisecond)})
	r.Publish(&Event{Handler: "query", Class: "1,1", Outcome: OutcomeShed, LatencyNs: int64(50 * time.Millisecond)})
	r.Publish(&Event{Handler: "ingest", Outcome: OutcomeOK, LatencyNs: int64(1 * time.Millisecond)})
	r.Publish(&Event{Handler: "query", Class: "0,1", Outcome: OutcomeOK, LatencyNs: int64(80 * time.Millisecond)})

	if got := r.Query(Filter{Handler: "query"}); len(got) != 3 {
		t.Fatalf("handler filter: %d events, want 3", len(got))
	}
	if got := r.Query(Filter{Class: "0,1"}); len(got) != 2 {
		t.Fatalf("class filter: %d events, want 2", len(got))
	}
	if got := r.Query(Filter{Outcome: OutcomeShed}); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("outcome filter: got %+v, want the shed event (seq 2)", got)
	}
	if got := r.Query(Filter{MinLatency: 40 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("latency filter: %d events, want 2", len(got))
	}
	if got := r.Query(Filter{SinceSeq: 3}); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("since filter: got %+v, want only seq 4", got)
	}
	if got := r.Query(Filter{Handler: "query", Limit: 1}); len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("limit: got %+v, want newest query event", got)
	}
}

func TestOutcomeOf(t *testing.T) {
	cases := map[int]string{
		200: OutcomeOK, 204: OutcomeOK,
		400: OutcomeClientError, 404: OutcomeClientError, 409: OutcomeClientError,
		503: OutcomeShed, 504: OutcomeTimeout,
		500: OutcomeError, 502: OutcomeError,
	}
	for code, want := range cases {
		if got := OutcomeOf(code); got != want {
			t.Errorf("OutcomeOf(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestEventRingContention hammers one capacity-capped ring with 8 writer
// goroutines while 2 readers continuously snapshot, under -race: every
// publisher must get a unique sequence number with none lost (the 8×N
// numbers are exactly 1..8N), and every concurrent snapshot must be
// bounded by the capacity with no duplicated sequence inside it.
func TestEventRingContention(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
		capacity  = 64
	)
	r := NewRing(capacity)
	seqs := make([][]uint64, writers)
	var writersWg, readersWg sync.WaitGroup
	stop := make(chan struct{})

	readerErr := make(chan string, 2)
	for i := 0; i < 2; i++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap) > capacity {
					readerErr <- "snapshot exceeds capacity"
					return
				}
				seen := make(map[uint64]bool, len(snap))
				last := ^uint64(0)
				for _, e := range snap {
					if e.Seq == 0 || seen[e.Seq] {
						readerErr <- "duplicate or zero sequence in snapshot"
						return
					}
					seen[e.Seq] = true
					if e.Seq > last {
						readerErr <- "snapshot not sorted newest-first"
						return
					}
					last = e.Seq
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		w := w
		writersWg.Add(1)
		go func() {
			defer writersWg.Done()
			mine := make([]uint64, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				mine = append(mine, r.Publish(&Event{Handler: "query", RequestID: uint64(w*perWriter + i)}))
			}
			seqs[w] = mine
		}()
	}

	writersWg.Wait()
	close(stop)
	readersWg.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}

	// No lost or duplicated sequence numbers: the union of every writer's
	// returned seqs is exactly {1, ..., writers*perWriter}.
	total := writers * perWriter
	seen := make([]bool, total+1)
	for w := range seqs {
		for _, s := range seqs[w] {
			if s == 0 || s > uint64(total) {
				t.Fatalf("sequence %d outside [1,%d]", s, total)
			}
			if seen[s] {
				t.Fatalf("sequence %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	for s := 1; s <= total; s++ {
		if !seen[s] {
			t.Fatalf("sequence %d never assigned", s)
		}
	}
	if r.Published() != uint64(total) {
		t.Fatalf("published = %d, want %d", r.Published(), total)
	}
	// Bounded memory at the cap: the final snapshot holds exactly capacity
	// events, all with distinct sequence numbers.
	snap := r.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("final snapshot has %d events, want %d", len(snap), capacity)
	}
}
