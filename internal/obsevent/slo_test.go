package obsevent

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic burn math.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func testEngine(t *testing.T, spec string) (*SLOEngine, *fakeClock) {
	t.Helper()
	cfg, err := ParseSLOSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{t: time.Unix(1_000_000_000, 0)}
	return NewSLOEngineWithClock(cfg, fc.now), fc
}

func TestParseSLOSpec(t *testing.T) {
	cfg, err := ParseSLOSpec("default=250ms@99.9;0,2=50ms@99")
	if err != nil {
		t.Fatal(err)
	}
	// Targets are percent/100 computed at runtime; route the expectation
	// through a float64 variable so Go's exact constant arithmetic does
	// not produce different bits than the parser's IEEE division.
	pct := func(p float64) float64 { return p / 100 }
	if !cfg.HasDefault || cfg.Default.Threshold != 250*time.Millisecond || cfg.Default.Target != pct(99.9) {
		t.Fatalf("default objective %+v", cfg.Default)
	}
	o, ok := cfg.PerClass["0,2"]
	if !ok || o.Threshold != 50*time.Millisecond || o.Target != pct(99) {
		t.Fatalf("per-class objective %+v (ok=%v)", o, ok)
	}
	for _, bad := range []string{
		"", ";;", "default=250ms", "default=oops@99", "default=250ms@0",
		"default=250ms@100", "default=250ms@-1", "default=0s@99",
		"default=1s@99;default=2s@99", "0,1=1s@99;0,1=2s@99", "noequals",
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	// target 99% -> budget 1%. 950 good + 50 bad in one minute:
	// burn = (50/1000)/0.01 = 5, identically in both windows.
	e, _ := testEngine(t, "default=10ms@99")
	for i := 0; i < 950; i++ {
		e.Observe("0,1", time.Millisecond, false)
	}
	for i := 0; i < 50; i++ {
		e.Observe("0,1", 20*time.Millisecond, false)
	}
	// IEEE closed form (via variables, so nothing constant-folds exactly):
	// the engine must reproduce it bit for bit.
	target := 99.0 / 100
	want := (float64(50) / float64(1000)) / (1 - target)
	b5, b60 := e.BurnRates("0,1")
	if b5 != want || b60 != want {
		t.Fatalf("burn rates %v/%v, want exactly %v", b5, b60, want)
	}
	good, bad := e.Totals("0,1")
	if good != 950 || bad != 50 {
		t.Fatalf("totals %d/%d, want 950/50", good, bad)
	}
}

func TestSLOServerErrorsAreBad(t *testing.T) {
	e, _ := testEngine(t, "default=1h@50")
	e.Observe("0,0", time.Millisecond, true) // fast but 5xx
	if _, bad := e.Totals("0,0"); bad != 1 {
		t.Fatal("server error not counted bad")
	}
}

func TestSLOWindowsSlideWithClock(t *testing.T) {
	e, fc := testEngine(t, "default=10ms@99")
	for i := 0; i < 100; i++ {
		e.Observe("0,1", time.Second, false) // all bad
	}
	// Closed form with the same runtime float ops the engine uses (via a
	// variable — Go constant arithmetic would give exactly 100 instead).
	target := 99.0 / 100
	exhausted := 1 / (1 - target)
	b5, b60 := e.BurnRates("0,1")
	if b5 != exhausted || b60 != exhausted {
		t.Fatalf("burn %v/%v, want %v (all budget)", b5, b60, exhausted)
	}
	// 6 minutes later the short window is clean but the hour still burns.
	fc.advance(6 * time.Minute)
	b5, b60 = e.BurnRates("0,1")
	if b5 != 0 || b60 != exhausted {
		t.Fatalf("after 6m: burn %v/%v, want 0/%v", b5, b60, exhausted)
	}
	// 61 minutes later everything has aged out.
	fc.advance(61 * time.Minute)
	b5, b60 = e.BurnRates("0,1")
	if b5 != 0 || b60 != 0 {
		t.Fatalf("after 67m: burn %v/%v, want 0/0", b5, b60)
	}
	if st := e.State("0,1"); st != SLOStateOK {
		t.Fatalf("state %q after windows drained, want ok", st)
	}
}

func TestSLOStateTransitions(t *testing.T) {
	e, fc := testEngine(t, "default=10ms@99")
	if st := e.State("0,1"); st != SLOStateOK {
		t.Fatalf("initial state %q, want ok", st)
	}
	// Burn slightly over budget: 2 bad in 100 at 1% budget -> burn 2.
	for i := 0; i < 98; i++ {
		e.Observe("0,1", time.Millisecond, false)
	}
	for i := 0; i < 2; i++ {
		e.Observe("0,1", time.Second, false)
	}
	if st := e.State("0,1"); st != SLOStateAtRisk {
		t.Fatalf("state %q at burn 2, want at-risk", st)
	}
	// Pile on failures until the fast-burn threshold (14.4) trips in both
	// windows: 100 good + N bad, burn = (N/(100+N))/0.01 >= 14.4 at N=17.
	for i := 0; i < 17; i++ {
		e.Observe("0,1", time.Second, false)
	}
	if st := e.State("0,1"); st != SLOStateBurning {
		b5, b60 := e.BurnRates("0,1")
		t.Fatalf("state %q (burn %v/%v), want burning", st, b5, b60)
	}
	// The regression ends; once the windows slide past it the class heals.
	fc.advance(61 * time.Minute)
	for i := 0; i < 10; i++ {
		e.Observe("0,1", time.Millisecond, false)
	}
	if st := e.State("0,1"); st != SLOStateOK {
		t.Fatalf("state %q after recovery, want ok", st)
	}
}

func TestSLOUntrackedClass(t *testing.T) {
	e, _ := testEngine(t, "0,2=50ms@99") // no default: only 0,2 tracked
	e.Observe("1,1", time.Hour, true)
	if g, b := e.Totals("1,1"); g != 0 || b != 0 {
		t.Fatalf("untracked class observed: %d/%d", g, b)
	}
	if st := e.State("1,1"); st != SLOStateOK {
		t.Fatalf("untracked class state %q, want ok", st)
	}
	e.Observe("0,2", time.Hour, false)
	if _, b := e.Totals("0,2"); b != 1 {
		t.Fatal("tracked class not observed")
	}
}

func TestSLOStatusWorstState(t *testing.T) {
	e, _ := testEngine(t, "default=10ms@99")
	for i := 0; i < 100; i++ {
		e.Observe("0,0", time.Millisecond, false)
	}
	for i := 0; i < 100; i++ {
		e.Observe("1,1", time.Second, false)
	}
	classes, worst := e.Status()
	if worst != SLOStateBurning {
		t.Fatalf("worst state %q, want burning", worst)
	}
	if len(classes) != 2 {
		t.Fatalf("%d classes in status, want 2", len(classes))
	}
	if classes[0].Class != "0,0" || classes[0].State != SLOStateOK {
		t.Fatalf("class[0] %+v, want healthy 0,0", classes[0])
	}
	if classes[1].Class != "1,1" || classes[1].State != SLOStateBurning {
		t.Fatalf("class[1] %+v, want burning 1,1", classes[1])
	}
}
