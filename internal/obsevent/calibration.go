package obsevent

import (
	"sort"
	"sync"
)

// Calibration watches how well the analytic cost model predicts the
// physical cost actually observed at the buffer pool, per query class.
// Every successfully served query contributes its predicted and observed
// page and seek counts to exponentially decayed per-class sums, and the
// ratio observed/predicted of those sums is the class's calibration:
//
//	ratio_pages(c) = Σ αᵏ·observedPagesₖ / Σ αᵏ·predictedPagesₖ
//
// (k counting observations backwards in time, α the per-observation
// retention). On a cold store with no overlay the physical read path
// reconciles exactly with the model, so both ratios are exactly 1.0. The
// ratio drifts below 1 when something absorbs predicted cost — a warm
// buffer pool, or cells served from the delta overlay instead of base
// pages — and a class whose ratio strays more than Threshold from 1 (with
// at least MinWeight decayed observations behind it) is flagged drifted:
// the analytic model has gone stale for that class, e.g. under a heavy
// uncompacted overlay. Compaction plus fresh cold traffic decays the
// stale history out and clears the flag.
//
// Decay is per observation, not per wall-clock tick, so calibration
// trajectories are a pure function of the observation sequence — the
// bench asserts exact values without a clock.
//
// Safe for concurrent use.
type Calibration struct {
	alpha     float64 // per-observation retention in (0, 1]
	threshold float64 // |ratio-1| beyond this flags the class
	minWeight float64 // decayed observations required before flagging

	mu      sync.Mutex
	classes map[string]*calibClass
}

type calibClass struct {
	weight    float64
	predPages float64
	obsPages  float64
	predSeeks float64
	obsSeeks  float64
}

// Calibration defaults: history halves roughly every 14 observations,
// a quarter of predicted cost must go missing (or appear from nowhere)
// before a class is flagged, and eight decayed observations are required
// so one odd query cannot flag a class.
const (
	DefaultCalibrationAlpha     = 0.95
	DefaultCalibrationThreshold = 0.25
	DefaultCalibrationMinWeight = 8
)

// NewCalibration returns an empty watch. Out-of-range parameters fall
// back to the defaults.
func NewCalibration(alpha, threshold, minWeight float64) *Calibration {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultCalibrationAlpha
	}
	if threshold <= 0 {
		threshold = DefaultCalibrationThreshold
	}
	if minWeight <= 0 {
		minWeight = DefaultCalibrationMinWeight
	}
	return &Calibration{
		alpha:     alpha,
		threshold: threshold,
		minWeight: minWeight,
		classes:   make(map[string]*calibClass),
	}
}

// Observe folds one served query into its class's decayed sums.
func (c *Calibration) Observe(class string, predPages, obsPages, predSeeks, obsSeeks int64) {
	c.mu.Lock()
	cc := c.classes[class]
	if cc == nil {
		cc = &calibClass{}
		c.classes[class] = cc
	}
	cc.weight = cc.weight*c.alpha + 1
	cc.predPages = cc.predPages*c.alpha + float64(predPages)
	cc.obsPages = cc.obsPages*c.alpha + float64(obsPages)
	cc.predSeeks = cc.predSeeks*c.alpha + float64(predSeeks)
	cc.obsSeeks = cc.obsSeeks*c.alpha + float64(obsSeeks)
	c.mu.Unlock()
}

// ratio divides decayed observed by decayed predicted cost. No predicted
// cost means nothing to calibrate against: the ratio reports 1.
func ratio(obs, pred float64) float64 {
	if pred <= 0 {
		return 1
	}
	return obs / pred
}

// ClassCalibration is one class's watch state, shaped for gauges and
// status endpoints.
type ClassCalibration struct {
	Class     string  `json:"class"`
	Weight    float64 `json:"weight"`
	PageRatio float64 `json:"pageRatio"`
	SeekRatio float64 `json:"seekRatio"`
	Drifted   bool    `json:"drifted"`
}

func (c *Calibration) view(class string, cc *calibClass) ClassCalibration {
	v := ClassCalibration{
		Class:     class,
		Weight:    cc.weight,
		PageRatio: ratio(cc.obsPages, cc.predPages),
		SeekRatio: ratio(cc.obsSeeks, cc.predSeeks),
	}
	if cc.weight >= c.minWeight {
		pd, sd := v.PageRatio-1, v.SeekRatio-1
		v.Drifted = pd > c.threshold || pd < -c.threshold || sd > c.threshold || sd < -c.threshold
	}
	return v
}

// Class returns one class's calibration; ok is false when the class has
// never been observed.
func (c *Calibration) Class(class string) (ClassCalibration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.classes[class]
	if cc == nil {
		return ClassCalibration{Class: class, PageRatio: 1, SeekRatio: 1}, false
	}
	return c.view(class, cc), true
}

// Snapshot returns every observed class's calibration, sorted by class
// label.
func (c *Calibration) Snapshot() []ClassCalibration {
	c.mu.Lock()
	out := make([]ClassCalibration, 0, len(c.classes))
	for class, cc := range c.classes {
		out = append(out, c.view(class, cc))
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// DriftedClasses returns the labels of currently flagged classes, sorted.
func (c *Calibration) DriftedClasses() []string {
	var out []string
	for _, v := range c.Snapshot() {
		if v.Drifted {
			out = append(out, v.Class)
		}
	}
	return out
}

// SeekCorrection returns the global decayed observed/predicted seek
// ratio across all classes — the factor that maps the analytic seek cost
// onto the physical cost the store is actually paying. The adaptive
// controller multiplies its deployed-strategy cost by this, so regret is
// measured in observed cost: a pool or overlay that absorbs most seeks
// proportionally weakens the case for a migration. Returns 1 with no
// evidence; the result is clamped to [0.1, 10] so a pathological window
// cannot swing the policy by more than an order of magnitude.
func (c *Calibration) SeekCorrection() float64 {
	c.mu.Lock()
	var obs, pred float64
	for _, cc := range c.classes {
		obs += cc.obsSeeks
		pred += cc.predSeeks
	}
	c.mu.Unlock()
	if pred <= 0 {
		return 1
	}
	r := obs / pred
	if r < 0.1 {
		return 0.1
	}
	if r > 10 {
		return 10
	}
	return r
}
