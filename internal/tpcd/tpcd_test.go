package tpcd

import (
	"math"
	"testing"

	"repro/internal/lattice"
)

// smallConfig is a fast configuration for tests.
func smallConfig() Config {
	c := DefaultConfig()
	c.PartsPerMfr = 4
	c.DaysPerMonth = 5
	c.Years = 2
	return c
}

func TestSchemaShape(t *testing.T) {
	s, err := DefaultConfig().Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 3 {
		t.Fatalf("K = %d", s.K())
	}
	if got := s.Dims[DimParts].Leaves(); got != 200 {
		t.Errorf("parts leaves = %d, want 200 (5 manufacturers × 40)", got)
	}
	if got := s.Dims[DimSupplier].Leaves(); got != 10 {
		t.Errorf("suppliers = %d, want 10", got)
	}
	if got := s.Dims[DimTime].Leaves(); got != 2520 {
		t.Errorf("ship dates = %d, want 2520 (7y × 12m × 30d)", got)
	}
	if got := s.Dims[DimTime].NodesAt(TimeMonth); got != 84 {
		t.Errorf("months = %d, want 84", got)
	}
	if got := s.Dims[DimTime].NodesAt(TimeYear); got != 7 {
		t.Errorf("years = %d, want 7", got)
	}
	l := lattice.New(s)
	if got := l.Size(); got != 3*2*4 {
		t.Errorf("lattice size = %d, want 24", got)
	}
}

func TestConfigValidation(t *testing.T) {
	c := DefaultConfig()
	c.Suppliers = 0
	if _, err := c.Schema(); err == nil {
		t.Error("zero suppliers should fail")
	}
	c = DefaultConfig()
	c.PageBytes = 0
	if err := c.Validate(); err == nil {
		t.Error("zero page size should fail")
	}
	c = DefaultConfig()
	c.MeanRecordsPerCell = 0
	if err := c.Validate(); err == nil {
		t.Error("zero mean should fail")
	}
}

func TestBuildDeterminism(t *testing.T) {
	c := smallConfig()
	d1, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Records != d2.Records {
		t.Fatalf("record counts differ: %d vs %d", d1.Records, d2.Records)
	}
	for i := range d1.BytesPerCell {
		if d1.BytesPerCell[i] != d2.BytesPerCell[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
	// A different seed produces different data.
	c.Seed++
	d3, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range d1.BytesPerCell {
		if d1.BytesPerCell[i] != d3.BytesPerCell[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestOccupancyShape(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := d.Summarize()
	if s.Records == 0 {
		t.Fatal("no records generated")
	}
	if s.EmptyCells == 0 {
		t.Error("expected some empty cells (paper: zero or more records per cell)")
	}
	if s.EmptyCells == s.Cells {
		t.Error("all cells empty")
	}
	mean := float64(s.Records) / float64(s.Cells)
	want := d.Config.MeanRecordsPerCell
	if mean < want/3 || mean > want*3 {
		t.Errorf("mean records/cell = %v, want within 3× of %v", mean, want)
	}
	if s.MaxCell <= 1 {
		t.Error("expected skew: some cells with several records")
	}
	if got := s.TotalBytes; got != s.Records*int64(d.Config.RecordBytes) {
		t.Errorf("TotalBytes = %d, want records × record size = %d", got, s.Records*125)
	}
}

func TestQueryClasses(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs := QueryClasses()
	if len(qs) != 7 {
		t.Fatalf("got %d query classes, want 7 (Section 6.1)", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if !d.Lattice.Contains(q.Class) {
			t.Errorf("%s: class %v outside lattice", q.Name, q.Class)
		}
		if seen[q.Class.String()] {
			t.Errorf("%s: duplicate class %v", q.Name, q.Class)
		}
		seen[q.Class.String()] = true
	}
	// The paper's two worked examples: Q5 selects year and supplier with no
	// parts selection; Q9 selects manufacturer (part type), supplier, year.
	for _, q := range qs {
		switch q.Name {
		case "Q5":
			if !q.Class.Equal(lattice.Point{PartsAll, SupplierSupplier, TimeYear}) {
				t.Errorf("Q5 class = %v", q.Class)
			}
		case "Q9":
			if !q.Class.Equal(lattice.Point{PartsManufacturer, SupplierSupplier, TimeYear}) {
				t.Errorf("Q9 class = %v", q.Class)
			}
		}
	}
}

func TestMixesAndWorkloads(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	mixes := Mixes()
	if len(mixes) != 27 {
		t.Fatalf("got %d mixes, want 27", len(mixes))
	}
	seen := map[string]bool{}
	for _, m := range mixes {
		if seen[m.String()] {
			t.Fatalf("duplicate mix %v", m)
		}
		seen[m.String()] = true
		w, err := d.Workload(m)
		if err != nil {
			t.Fatalf("mix %v: %v", m, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("mix %v: %v", m, err)
		}
		// No mass on the "all time" level.
		d.Lattice.Points(func(p lattice.Point) {
			if p[DimTime] == TimeAll && w.Prob(p) != 0 {
				t.Errorf("mix %v: class %v has mass on all-time level", m, p)
			}
		})
	}
	// The featured workload's shape: parts and time ramp up, supplier down.
	w7 := PaperWorkload7()
	if w7.Parts != RampUp || w7.Supplier != RampDown || w7.Time != RampUp {
		t.Errorf("PaperWorkload7 = %v", w7)
	}
}

func TestWorkloadProbabilities(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.Workload(Mix{Parts: RampUp, Supplier: RampDown, Time: RampUp})
	if err != nil {
		t.Fatal(err)
	}
	// p(part, supplier, shipdate) = 0.1 × 0.8 × 0.1.
	got := w.Prob(lattice.Point{PartsPart, SupplierSupplier, TimeShipDate})
	if math.Abs(got-0.008) > 1e-12 {
		t.Errorf("p(0,0,0) = %v, want 0.008", got)
	}
	got = w.Prob(lattice.Point{PartsAll, SupplierAll, TimeYear})
	if math.Abs(got-0.6*0.2*0.6) > 1e-12 {
		t.Errorf("p(2,1,2) = %v, want 0.072", got)
	}
}

func TestQueryClassWorkload(t *testing.T) {
	d, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := d.QueryClassWorkload(map[string]float64{"Q1": 3, "Q6": 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{PartsAll, SupplierAll, TimeShipDate}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Q1 mass = %v, want 0.75", got)
	}
	if _, err := d.QueryClassWorkload(map[string]float64{"Q99": 1}); err == nil {
		t.Error("unknown class should fail")
	}
	if _, err := d.QueryClassWorkload(map[string]float64{"Q1": -1}); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestEachRecord(t *testing.T) {
	c := smallConfig()
	c.MeanRecordsPerCell = 0.5
	d, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	shape := d.Schema.LeafCounts()
	d.EachRecord(func(li *LineItem) bool {
		n++
		p, s, day := li.Cell()
		if p < 0 || p >= shape[0] || s < 0 || s >= shape[1] || day < 0 || day >= shape[2] {
			t.Fatalf("record outside grid: %v", li)
		}
		if li.Quantity < 1 || li.Quantity > 50 {
			t.Fatalf("quantity %d out of range", li.Quantity)
		}
		if li.Discount < 0 || li.Discount > 0.10 {
			t.Fatalf("discount %v out of range", li.Discount)
		}
		return true
	})
	if n != d.Records {
		t.Errorf("streamed %d records, dataset has %d", n, d.Records)
	}
	// Early stop.
	var m int
	d.EachRecord(func(li *LineItem) bool {
		m++
		return m < 10
	})
	if m != 10 {
		t.Errorf("early stop streamed %d", m)
	}
}

func TestDistKindString(t *testing.T) {
	if Even.String() != "even" || RampUp.String() != "up" || RampDown.String() != "down" {
		t.Error("DistKind names wrong")
	}
	if DistKind(9).String() != "DistKind(9)" {
		t.Error("unknown DistKind formatting wrong")
	}
}
