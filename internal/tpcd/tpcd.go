// Package tpcd is the experimental substrate of Section 6: a synthetic,
// deterministic stand-in for the TPC-D LineItem fact table with the paper's
// three dimensions — parts (part → manufacturer → all), supplier
// (supplier → all) and time (ship date → month → year → all) — plus the
// grid-query classes derived from the TPC-D query set and the 27
// Section-6.2 workloads.
//
// The substitution (documented in DESIGN.md §5): the clustering cost metric
// depends only on the cell-occupancy histogram and the hierarchies, not on
// TPC-D's column values, so a seeded generator with the paper's fanouts and
// a skewed records-per-cell distribution exercises the same code paths as
// dbgen output would.
package tpcd

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// Config sizes the synthetic warehouse. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Manufacturers int // level-2 fanout of the parts dimension
	PartsPerMfr   int // level-1 fanout of the parts dimension (40 in the paper; 4/10/40 in Tables 5–6)
	Suppliers     int // level-1 fanout of the supplier dimension
	Years         int // level-3 fanout of the time dimension
	MonthsPerYear int
	DaysPerMonth  int

	RecordBytes int   // LineItem record size (125 in the paper)
	PageBytes   int64 // disk page size (8 KB in the paper)

	// MeanRecordsPerCell controls occupancy; cells get a skewed,
	// deterministic record count with this approximate mean (some cells
	// stay empty, as in the paper's "zero or more records" per cell).
	MeanRecordsPerCell float64

	Seed uint64
}

// DefaultConfig reproduces the paper's setup: 5 manufacturers × 40 parts,
// 10 suppliers, 7 years × 12 months of ship dates, 125-byte records and
// 8 KB pages.
func DefaultConfig() Config {
	return Config{
		Manufacturers:      5,
		PartsPerMfr:        40,
		Suppliers:          10,
		Years:              7,
		MonthsPerYear:      12,
		DaysPerMonth:       30,
		RecordBytes:        125,
		PageBytes:          8192,
		MeanRecordsPerCell: 1.2,
		Seed:               1999,
	}
}

// Dimension indices of the TPC-D schema, in schema order.
const (
	DimParts = iota
	DimSupplier
	DimTime
)

// Level numbers within each dimension.
const (
	PartsPart = iota
	PartsManufacturer
	PartsAll
)

const (
	SupplierSupplier = iota
	SupplierAll
)

const (
	TimeShipDate = iota
	TimeMonth
	TimeYear
	TimeAll
)

// Validate reports an error for non-positive structural parameters.
func (c Config) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"Manufacturers", c.Manufacturers},
		{"PartsPerMfr", c.PartsPerMfr},
		{"Suppliers", c.Suppliers},
		{"Years", c.Years},
		{"MonthsPerYear", c.MonthsPerYear},
		{"DaysPerMonth", c.DaysPerMonth},
		{"RecordBytes", c.RecordBytes},
	} {
		if v.val <= 0 {
			return fmt.Errorf("tpcd: %s = %d must be positive", v.name, v.val)
		}
	}
	if c.PageBytes <= 0 {
		return fmt.Errorf("tpcd: PageBytes = %d must be positive", c.PageBytes)
	}
	if c.MeanRecordsPerCell <= 0 {
		return fmt.Errorf("tpcd: MeanRecordsPerCell = %v must be positive", c.MeanRecordsPerCell)
	}
	return nil
}

// Schema returns the 3-dimensional star schema of the configuration.
func (c Config) Schema() (*hierarchy.Schema, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return hierarchy.NewSchema(
		hierarchy.Dimension{
			Name:       "parts",
			Fanouts:    []int{c.PartsPerMfr, c.Manufacturers},
			LevelNames: []string{"part", "manufacturer", "all"},
		},
		hierarchy.Dimension{
			Name:       "supplier",
			Fanouts:    []int{c.Suppliers},
			LevelNames: []string{"supplier", "all"},
		},
		hierarchy.Dimension{
			Name:       "time",
			Fanouts:    []int{c.DaysPerMonth, c.MonthsPerYear, c.Years},
			LevelNames: []string{"shipdate", "month", "year", "all"},
		},
	)
}

// Dataset is a generated warehouse: the schema, its query-class lattice, and
// the packed payload size of every grid cell.
type Dataset struct {
	Config       Config
	Schema       *hierarchy.Schema
	Lattice      *lattice.Lattice
	BytesPerCell []int64
	Records      int64
}

// Build deterministically generates the dataset for the configuration.
func Build(c Config) (*Dataset, error) {
	s, err := c.Schema()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Config:       c,
		Schema:       s,
		Lattice:      lattice.New(s),
		BytesPerCell: make([]int64, s.NumCells()),
	}
	shape := s.LeafCounts()
	nParts, nSupp, nTime := shape[0], shape[1], shape[2]

	// Per-leaf popularity weights: a skewed but deterministic mix so that
	// cell occupancy is non-uniform (hot parts, hot suppliers, seasonal
	// months) with some cells empty.
	partW := weights(c.Seed^0x9E3779B97F4A7C15, nParts, 0.25, 4)
	suppW := weights(c.Seed^0xBF58476D1CE4E5B9, nSupp, 0.5, 2)
	timeW := make([]float64, nTime)
	daysPerYear := c.DaysPerMonth * c.MonthsPerYear
	for t := 0; t < nTime; t++ {
		month := (t / c.DaysPerMonth) % c.MonthsPerYear
		year := t / daysPerYear
		// Mild seasonality plus slow year-over-year growth.
		season := 1 + 0.4*seasonCurve(month, c.MonthsPerYear)
		growth := 1 + 0.05*float64(year)
		timeW[t] = season * growth
	}

	cell := 0
	var records int64
	for p := 0; p < nParts; p++ {
		for sp := 0; sp < nSupp; sp++ {
			base := c.MeanRecordsPerCell * partW[p] * suppW[sp]
			for tm := 0; tm < nTime; tm++ {
				mean := base * timeW[tm]
				n := sampleCount(hash64(c.Seed, uint64(cell)), mean)
				d.BytesPerCell[cell] = int64(n) * int64(c.RecordBytes)
				records += int64(n)
				cell++
			}
		}
	}
	d.Records = records
	return d, nil
}

// weights returns n positive weights with mean 1: a fraction `cold` of the
// entries get a low weight and the rest follow a truncated power-ish curve
// with the given maximum ratio.
func weights(seed uint64, n int, cold float64, ratio float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		h := hash64(seed, uint64(i))
		u := float64(h%1_000_000) / 1_000_000
		if u < cold {
			w[i] = 0.2
		} else {
			w[i] = 0.5 + u*ratio
		}
		total += w[i]
	}
	for i := range w {
		w[i] *= float64(n) / total
	}
	return w
}

// seasonCurve is a piecewise triangle peaking at year end, in [−1, 1].
func seasonCurve(month, months int) float64 {
	half := float64(months) / 2
	return (float64(month) - half) / half
}

// sampleCount turns a uniform hash into a small skewed record count with
// the given mean: zero with moderate probability, otherwise geometric-ish.
func sampleCount(h uint64, mean float64) int {
	if mean <= 0 {
		return 0
	}
	u := float64(h%1_048_576) / 1_048_576 // uniform in [0,1)
	// Probability of an empty cell shrinks as the mean grows.
	p0 := 0.35 / (1 + mean/4)
	if u < p0 {
		return 0
	}
	// Rescale the remaining mass to a 1+geometric-ish count whose overall
	// mean is the requested one.
	u = (u - p0) / (1 - p0)
	target := mean / (1 - p0)
	if target < 1 {
		target = 1
	}
	// Invert a geometric CDF with success probability 1/target.
	count := 1
	q := 1 - 1/target
	acc := 1 - q
	for u > acc && count < 64 {
		count++
		acc += (1 - q) * pow(q, count-1)
	}
	return count
}

func pow(x float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// hash64 is SplitMix64 over (seed, v): a fast, deterministic, well-mixed
// per-cell hash.
func hash64(seed, v uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*(v+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NamedClass is a grid-query class with the TPC-D query it models.
type NamedClass struct {
	Name  string
	Class lattice.Point
	Desc  string
}

// QueryClasses returns the seven LineItem grid-query classes derived from
// the TPC-D query set (Section 6.1), mapped onto (parts, supplier, time)
// levels. The paper modified queries slightly to fit its hierarchies; this
// mapping follows its two worked examples (Q5: year and supplier, no parts
// selection; Q9: supplier, year and part type) and fills in the rest in the
// same spirit.
func QueryClasses() []NamedClass {
	return []NamedClass{
		{"Q1", lattice.Point{PartsAll, SupplierAll, TimeShipDate}, "pricing summary: ship-date selection only"},
		{"Q5", lattice.Point{PartsAll, SupplierSupplier, TimeYear}, "local supplier volume: supplier and year"},
		{"Q6", lattice.Point{PartsAll, SupplierAll, TimeYear}, "forecast revenue: year selection only"},
		{"Q9", lattice.Point{PartsManufacturer, SupplierSupplier, TimeYear}, "product type profit: manufacturer, supplier and year"},
		{"Q14", lattice.Point{PartsManufacturer, SupplierAll, TimeMonth}, "promotion effect: part group by month"},
		{"Q15", lattice.Point{PartsAll, SupplierSupplier, TimeMonth}, "top supplier: supplier revenue by month"},
		{"Q19", lattice.Point{PartsPart, SupplierAll, TimeYear}, "discounted revenue: specific parts over a year"},
	}
}

// DistKind is one of the three Section-6.2 per-dimension level
// distributions.
type DistKind int

// The three distribution shapes of Section 6.2.
const (
	Even DistKind = iota
	RampUp
	RampDown
)

func (k DistKind) String() string {
	switch k {
	case Even:
		return "even"
	case RampUp:
		return "up"
	case RampDown:
		return "down"
	}
	return fmt.Sprintf("DistKind(%d)", int(k))
}

// dist instantiates a distribution shape over the queryable levels of a
// dimension. Following Section 6.2, the parts dimension spreads over its 3
// levels (part, manufacturer, all), the supplier dimension over its 2, and
// the time dimension over ship date, month and year — OLAP queries always
// select some time scope, so the "all time" level gets no direct mass.
func dist(kind DistKind, levels ...int) workload.LevelDist {
	switch kind {
	case RampUp:
		return workload.RampUp(levels...)
	case RampDown:
		return workload.RampDown(levels...)
	default:
		return workload.Even(levels...)
	}
}

// Mix identifies one of the 27 workloads by its per-dimension shapes.
type Mix struct {
	Parts, Supplier, Time DistKind
}

func (m Mix) String() string {
	return fmt.Sprintf("parts=%v,supplier=%v,time=%v", m.Parts, m.Supplier, m.Time)
}

// Workload builds the Section-6.2 product workload for the mix over the
// dataset's lattice.
func (d *Dataset) Workload(m Mix) (*workload.Workload, error) {
	return workload.Product(d.Lattice, []workload.LevelDist{
		dist(m.Parts, PartsPart, PartsManufacturer, PartsAll),
		dist(m.Supplier, SupplierSupplier, SupplierAll),
		dist(m.Time, TimeShipDate, TimeMonth, TimeYear),
	})
}

// Mixes enumerates all 27 workload mixes in a fixed order: parts shape
// slowest, time shape fastest, each cycling even → up → down. Workload
// numbers in EXPERIMENTS.md are 1-based indices into this slice.
func Mixes() []Mix {
	kinds := []DistKind{Even, RampUp, RampDown}
	out := make([]Mix, 0, 27)
	for _, p := range kinds {
		for _, s := range kinds {
			for _, t := range kinds {
				out = append(out, Mix{Parts: p, Supplier: s, Time: t})
			}
		}
	}
	return out
}

// PaperWorkload7 is the mix Section 6 singles out for Tables 5 and 6: low
// probability at the lower levels of time and parts (ramp-up) and the
// opposite in the supplier dimension (ramp-down).
func PaperWorkload7() Mix {
	return Mix{Parts: RampUp, Supplier: RampDown, Time: RampUp}
}

// QueryClassWorkload builds a workload from explicit per-class weights,
// used to model the TPC-D query mix directly.
func (d *Dataset) QueryClassWorkload(weights map[string]float64) (*workload.Workload, error) {
	w := workload.New(d.Lattice)
	classes := QueryClasses()
	byName := make(map[string]lattice.Point, len(classes))
	for _, c := range classes {
		byName[c.Name] = c.Class
	}
	for name, wt := range weights {
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("tpcd: unknown query class %q", name)
		}
		if wt < 0 {
			return nil, fmt.Errorf("tpcd: negative weight for %q", name)
		}
		w.Set(c, wt)
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}
