package tpcd

import "fmt"

// LineItem is a synthetic fact record in the spirit of TPC-D's LineItem,
// carrying the three dimensional foreign keys plus measure attributes. The
// struct is what a row at the paper's ~125-byte record size would hold.
type LineItem struct {
	OrderKey      int64
	PartKey       int32
	SuppKey       int32
	ShipDay       int32 // day index from the epoch of the generated window
	Quantity      int32
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    byte
	LineStatus    byte
	ShipMode      [10]byte
	Comment       [44]byte
}

// Cell returns the grid-cell coordinates (part, supplier, day) of the
// record.
func (li *LineItem) Cell() (part, supplier, day int) {
	return int(li.PartKey), int(li.SuppKey), int(li.ShipDay)
}

// EachRecord streams the dataset's records in cell order, materializing
// each LineItem deterministically from the generation seed; it never holds
// more than one record in memory. fn returning false stops the stream.
func (d *Dataset) EachRecord(fn func(li *LineItem) bool) {
	shape := d.Schema.LeafCounts()
	nSupp, nTime := shape[1], shape[2]
	var li LineItem
	var order int64
	for cell, bytes := range d.BytesPerCell {
		n := int(bytes) / d.Config.RecordBytes
		part := cell / (nSupp * nTime)
		supp := cell / nTime % nSupp
		day := cell % nTime
		for i := 0; i < n; i++ {
			h := hash64(d.Config.Seed^0xA5A5A5A5, uint64(cell)*131+uint64(i))
			order++
			li = LineItem{
				OrderKey:      order,
				PartKey:       int32(part),
				SuppKey:       int32(supp),
				ShipDay:       int32(day),
				Quantity:      int32(1 + h%50),
				ExtendedPrice: float64(901+h%99099) / 100 * float64(1+h%50),
				Discount:      float64(h>>8%11) / 100,
				Tax:           float64(h>>16%9) / 100,
				ReturnFlag:    "RAN"[h>>24%3],
				LineStatus:    "OF"[h>>32%2],
			}
			copy(li.ShipMode[:], shipModes[h>>40%uint64(len(shipModes))])
			copy(li.Comment[:], fmt.Sprintf("synthetic lineitem %d", order))
			if !fn(&li) {
				return
			}
		}
	}
}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// Summary describes a generated dataset for reporting.
type Summary struct {
	Cells      int
	Records    int64
	TotalBytes int64
	EmptyCells int
	MaxCell    int
}

// Summarize computes occupancy statistics of the dataset.
func (d *Dataset) Summarize() Summary {
	s := Summary{Cells: len(d.BytesPerCell), Records: d.Records}
	for _, b := range d.BytesPerCell {
		s.TotalBytes += b
		if b == 0 {
			s.EmptyCells++
		}
		if n := int(b) / d.Config.RecordBytes; n > s.MaxCell {
			s.MaxCell = n
		}
	}
	return s
}
