// Package ingest is the store's write path: a crash-safe delta log of
// whole-cell upserts, a merge-on-read overlay that serves the freshest
// cell content to queries, and a paced compactor that folds deltas into
// the base file and re-clusters the regions that most violate the target
// linearization (compact.go).
//
// The durability protocol is redo-only. Every acknowledged Put is on disk
// in the log (write(2) always happens before the ack; the fsync cadence is
// the sync policy), the in-memory index serves the freshest payload per
// cell to the overlay, and the compactor applies payloads to the base
// store with the idempotent PutCellBytes replace — so recovery is simply
// "replay everything still in the log", no matter where a crash landed:
// a torn tail is truncated, a replayed-but-already-applied entry rewrites
// the same bytes, and the log is only checkpointed after the base content
// and catalog are durable.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy selects when the delta log fsyncs. Record bytes are always
// written to the file before Put acknowledges, so every policy survives a
// process kill; the policies differ only in the power-loss window.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Put returns: no acknowledged write is
	// lost even on power failure.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs once at least BatchBytes have accumulated since the
	// last sync (and on Flush/Checkpoint/Close): a bounded power-loss
	// window, with write(2) durability against process death.
	SyncBatch
	// SyncNone fsyncs only on Flush, Checkpoint and Close.
	SyncNone
)

// ParseSyncPolicy maps the -ingest-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("ingest: unknown sync policy %q (want always, batch or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ErrBacklog is returned by Put when the log's pending bytes exceed the
// configured ceiling: the compactor is behind and callers should shed or
// retry rather than grow the index without bound. Match with errors.Is.
var ErrBacklog = errors.New("ingest: delta backlog full")

// logMagic marks a delta log header ("SNKD").
const logMagic uint32 = 0x44_4B_4E_53

// logVersion is the current log format.
const logVersion = 1

// logHeaderSize is the fixed header: magic, version (u32 each), generation
// (u64), header CRC (u32), reserved (u32).
const logHeaderSize = 24

// recordOverhead is the framing around each entry's payload: cell (u32),
// payload length (u32), trailing CRC (u32) over cell|len|payload.
const recordOverhead = 12

// castagnoli matches the checksum the page trailers use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crashEnv, when set, makes the log crash the process (exit 42) at a named
// point, for the kill-subprocess recovery matrix: "mid-append" dies after
// writing half a record, "pre-checkpoint" dies after the base apply but
// before the log is checkpointed, "mid-compact" (compact.go) dies after
// the first cell of a compaction tick has been applied to the base file.
const crashEnv = "SNAKESTORE_INGEST_CRASH"

// crashExitCode distinguishes an orchestrated crash from a real failure.
const crashExitCode = 42

// DeltaPath returns the conventional delta-log path beside a store file.
// Generation-numbered stores get generation-numbered logs for free, since
// the store path already carries the .gN suffix.
func DeltaPath(storePath string) string { return storePath + ".delta" }

// entry is the freshest pending payload for one cell.
type entry struct {
	payload []byte
	seq     uint64
	at      time.Time
}

// Options tunes a delta log.
type Options struct {
	Policy SyncPolicy
	// BatchBytes is the SyncBatch fsync threshold (default 256 KiB).
	BatchBytes int64
	// MaxPendingBytes bounds the pending (unapplied) payload bytes; a Put
	// that would exceed it fails with ErrBacklog. 0 means unbounded.
	MaxPendingBytes int64
}

// Log is the delta store: an append-only, CRC-trailered redo log of
// whole-cell upserts plus an in-memory index of the freshest payload per
// cell. A Log is safe for concurrent use; Overlay() hands the index to the
// FileStore's merge-on-read hook.
type Log struct {
	path       string
	generation int64

	mu       sync.RWMutex
	f        *os.File
	index    map[int]entry
	seq      uint64
	size     int64 // append offset
	unsynced int64
	pending  int64 // payload bytes awaiting compaction
	puts     int64 // lifetime Put count
	closed   bool

	opt   Options
	crash string
}

// Open opens (or creates) the delta log beside a store generation. An
// existing file is validated against the expected generation and replayed
// into the index; a torn tail — a crash mid-append — is truncated away, so
// the log always reopens consistent with its last complete record.
func Open(path string, generation int64, opt Options) (*Log, error) {
	if opt.BatchBytes <= 0 {
		opt.BatchBytes = 256 << 10
	}
	l := &Log{
		path:       path,
		generation: generation,
		index:      make(map[int]entry),
		opt:        opt,
		crash:      os.Getenv(crashEnv),
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if err := l.writeHeader(f); err != nil {
			f.Close()
			return nil, err
		}
		l.size = logHeaderSize
		return l, nil
	}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// writeHeader writes and fsyncs the fixed header at offset 0. The header
// is synced at creation no matter the policy: a log whose first record is
// durable but whose header is not would be unreadable.
func (l *Log) writeHeader(f *os.File) error {
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	binary.LittleEndian.PutUint32(hdr[4:], logVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(l.generation))
	binary.LittleEndian.PutUint32(hdr[16:], crc32.Checksum(hdr[:16], castagnoli))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// replay validates the header, loads every complete record into the index,
// and truncates anything after the last complete record (a torn append or
// trailing garbage). Only called from Open.
func (l *Log) replay() error {
	var hdr [logHeaderSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(l.f, 0, logHeaderSize), hdr[:]); err != nil {
		return fmt.Errorf("ingest: delta header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != logMagic {
		return fmt.Errorf("ingest: bad delta magic %#08x", got)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != logVersion {
		return fmt.Errorf("ingest: unsupported delta version %d", v)
	}
	if crc := binary.LittleEndian.Uint32(hdr[16:]); crc != crc32.Checksum(hdr[:16], castagnoli) {
		return fmt.Errorf("ingest: delta header checksum mismatch")
	}
	if g := int64(binary.LittleEndian.Uint64(hdr[8:])); g != l.generation {
		return fmt.Errorf("ingest: delta log is for generation %d, store is generation %d", g, l.generation)
	}
	st, err := l.f.Stat()
	if err != nil {
		return err
	}
	off := int64(logHeaderSize)
	now := time.Now()
	var meta [8]byte
	for {
		if st.Size()-off < recordOverhead {
			break
		}
		if _, err := l.f.ReadAt(meta[:], off); err != nil {
			break
		}
		cell := int(binary.LittleEndian.Uint32(meta[0:]))
		n := int64(binary.LittleEndian.Uint32(meta[4:]))
		if st.Size()-off < recordOverhead+n {
			break // torn append: the payload never fully landed
		}
		buf := make([]byte, 8+n+4)
		if _, err := l.f.ReadAt(buf, off); err != nil {
			break
		}
		want := binary.LittleEndian.Uint32(buf[8+n:])
		if crc32.Checksum(buf[:8+n], castagnoli) != want {
			break // torn or corrupt record: everything after it is suspect
		}
		l.seq++
		payload := buf[8 : 8+n : 8+n]
		if old, ok := l.index[cell]; ok {
			l.pending -= int64(len(old.payload))
		}
		l.index[cell] = entry{payload: payload, seq: l.seq, at: now}
		l.pending += n
		l.puts++
		off += recordOverhead + n
	}
	if off != st.Size() {
		if err := l.f.Truncate(off); err != nil {
			return fmt.Errorf("ingest: truncating torn delta tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	l.size = off
	return nil
}

// Put upserts a cell's full framed content: the bytes replace whatever the
// cell holds, both in the overlay and — after compaction — in the base
// file. The record is written (and, per policy, fsynced) before Put
// returns; the payload is copied, so callers may reuse the slice.
func (l *Log) Put(cell int, framed []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	if l.opt.MaxPendingBytes > 0 {
		grow := int64(len(framed))
		if old, ok := l.index[cell]; ok {
			grow -= int64(len(old.payload))
		}
		if l.pending+grow > l.opt.MaxPendingBytes {
			return fmt.Errorf("%w: %d pending bytes, ceiling %d", ErrBacklog, l.pending, l.opt.MaxPendingBytes)
		}
	}
	rec := make([]byte, recordOverhead+len(framed))
	binary.LittleEndian.PutUint32(rec[0:], uint32(cell))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(framed)))
	copy(rec[8:], framed)
	binary.LittleEndian.PutUint32(rec[8+len(framed):], crc32.Checksum(rec[:8+len(framed)], castagnoli))
	if l.crash == "mid-append" {
		// Orchestrated crash: half the record reaches the file, then the
		// process dies. Recovery must truncate this torn tail.
		l.f.WriteAt(rec[:len(rec)/2], l.size)
		l.f.Sync()
		os.Exit(crashExitCode)
	}
	if _, err := l.f.WriteAt(rec, l.size); err != nil {
		return err
	}
	l.size += int64(len(rec))
	l.unsynced += int64(len(rec))
	switch l.opt.Policy {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.unsynced = 0
	case SyncBatch:
		if l.unsynced >= l.opt.BatchBytes {
			if err := l.f.Sync(); err != nil {
				return err
			}
			l.unsynced = 0
		}
	}
	payload := rec[8 : 8+len(framed) : 8+len(framed)]
	l.seq++
	if old, ok := l.index[cell]; ok {
		l.pending -= int64(len(old.payload))
	}
	l.index[cell] = entry{payload: payload, seq: l.seq, at: time.Now()}
	l.pending += int64(len(framed))
	l.puts++
	return nil
}

// Flush fsyncs any batched appends.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	if l.unsynced == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	return nil
}

// Get returns the freshest pending payload for a cell.
func (l *Log) Get(cell int) ([]byte, bool) {
	l.mu.RLock()
	e, ok := l.index[cell]
	l.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.payload, true
}

// Overlay returns the merge-on-read hook for FileStore.SetOverlay: queries
// consult it per cell and a hit substitutes the pending payload for the
// cell's base content. The returned payload slices are immutable.
func (l *Log) Overlay() func(cell int) ([]byte, bool) {
	return l.Get
}

// Pending is one unapplied upsert, snapshotted for compaction.
type Pending struct {
	Cell    int
	Seq     uint64
	Payload []byte
	At      time.Time
}

// SnapshotPending returns the current index contents. Entries put after
// the snapshot carry higher sequence numbers, so a Checkpoint keyed on the
// snapshot's seqs never drops them.
func (l *Log) SnapshotPending() []Pending {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Pending, 0, len(l.index))
	for cell, e := range l.index {
		out = append(out, Pending{Cell: cell, Seq: e.seq, Payload: e.payload, At: e.at})
	}
	return out
}

// Checkpoint drops every entry whose seq is <= the applied seq for its
// cell — the caller asserts those payloads are durable in the base store —
// and rewrites the log file to hold only the survivors (entries put after
// the apply snapshot). The rewrite is atomic (temp, fsync, rename), so a
// crash leaves either the old complete log or the new one; either replays
// to a correct overlay because the base apply is idempotent.
func (l *Log) Checkpoint(applied map[int]uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	if l.crash == "pre-checkpoint" {
		// Orchestrated crash between the base/catalog commit and the log
		// truncation: recovery re-applies every logged entry — idempotent.
		l.f.Sync()
		os.Exit(crashExitCode)
	}
	for cell, e := range l.index {
		if seq, ok := applied[cell]; ok && e.seq <= seq {
			l.pending -= int64(len(e.payload))
			delete(l.index, cell)
		}
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.writeHeader(nf); err != nil {
		return abort(err)
	}
	off := int64(logHeaderSize)
	for cell, e := range l.index {
		rec := make([]byte, recordOverhead+len(e.payload))
		binary.LittleEndian.PutUint32(rec[0:], uint32(cell))
		binary.LittleEndian.PutUint32(rec[4:], uint32(len(e.payload)))
		copy(rec[8:], e.payload)
		binary.LittleEndian.PutUint32(rec[8+len(e.payload):], crc32.Checksum(rec[:8+len(e.payload)], castagnoli))
		if _, err := nf.WriteAt(rec, off); err != nil {
			return abort(err)
		}
		off += int64(len(rec))
	}
	if err := nf.Sync(); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return abort(err)
	}
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	l.f.Close()
	l.f = nf
	l.size = off
	l.unsynced = 0
	return nil
}

// PendingBytes returns the payload bytes awaiting compaction.
func (l *Log) PendingBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.pending
}

// PendingCells returns the number of cells with unapplied upserts.
func (l *Log) PendingCells() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.index)
}

// Puts returns the lifetime Put count (replayed entries included).
func (l *Log) Puts() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.puts
}

// OldestPendingAge returns how long the oldest unapplied upsert has been
// waiting — the compaction lag — or 0 when the log is drained.
func (l *Log) OldestPendingAge(now time.Time) time.Duration {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var oldest time.Time
	for _, e := range l.index {
		if oldest.IsZero() || e.at.Before(oldest) {
			oldest = e.at
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// Generation returns the store generation the log belongs to.
func (l *Log) Generation() int64 { return l.generation }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close fsyncs and closes the log file. The file is left in place; delete
// it only after its generation is retired.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return os.ErrClosed
	}
	l.closed = true
	syncErr := l.f.Sync()
	closeErr := l.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
