package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/linear"
	"repro/internal/storage"
)

// testOrder returns a small 4×6 row-major order.
func testOrder(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// colMajor returns the transposed linearization of testOrder's schema.
func colMajor(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	o, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// testStore creates a store whose cells hold room for perCell records of
// recLen bytes, pre-filled with seeded records.
func testStore(t *testing.T, o *linear.Order, perCell, filled, recLen int) (*storage.FileStore, string) {
	t.Helper()
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = int64(perCell) * storage.FrameSize(recLen)
	}
	path := filepath.Join(t.TempDir(), "facts.db")
	fs, err := storage.CreateFileStore(path, o, bytesPerCell, 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	for c := 0; c < o.Len(); c++ {
		for r := 0; r < filled; r++ {
			if err := fs.PutRecord(c, []byte(baseRec(c, r, recLen))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs, path
}

func baseRec(cell, r, n int) string {
	s := fmt.Sprintf("b%03d-%02d", cell, r)
	for len(s) < n {
		s += "."
	}
	return s[:n]
}

func deltaRec(cell, r, n int) string {
	s := fmt.Sprintf("d%03d-%02d", cell, r)
	for len(s) < n {
		s += "."
	}
	return s[:n]
}

func readCell(t *testing.T, fs *storage.FileStore, cell int) []string {
	t.Helper()
	var got []string
	if err := fs.ReadCellCtx(context.Background(), cell, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.db.delta")
	l, err := Open(path, 3, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]byte{}
	for cell := 0; cell < 7; cell++ {
		// Two puts per cell: the second must win.
		stale := storage.FrameRecords([]byte(fmt.Sprintf("old-%d", cell)))
		fresh := storage.FrameRecords([]byte(fmt.Sprintf("new-%d", cell)), []byte("tail"))
		if err := l.Put(cell, stale); err != nil {
			t.Fatal(err)
		}
		if err := l.Put(cell, fresh); err != nil {
			t.Fatal(err)
		}
		want[cell] = fresh
	}
	check := func(l *Log, stage string) {
		t.Helper()
		if n := l.PendingCells(); n != len(want) {
			t.Fatalf("%s: %d pending cells, want %d", stage, n, len(want))
		}
		for cell, framed := range want {
			got, ok := l.Get(cell)
			if !ok || !bytes.Equal(got, framed) {
				t.Fatalf("%s: Get(%d) = %q, %v; want %q", stage, cell, got, ok, framed)
			}
		}
		if _, ok := l.Get(99); ok {
			t.Fatalf("%s: Get(99) hit on a cell never put", stage)
		}
	}
	check(l, "live")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, 3, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	check(l2, "replayed")
	// Wrong generation must be rejected, not silently replayed.
	l2.Close()
	if _, err := Open(path, 4, Options{}); err == nil {
		t.Fatal("Open with mismatched generation succeeded")
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.db.delta")
	l, err := Open(path, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	good := storage.FrameRecords([]byte("survives"))
	if err := l.Put(5, good); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record's worth of garbage.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 200, 1, 0, 0, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, path)
	l2, err := Open(path, 1, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, ok := l2.Get(5); !ok || !bytes.Equal(got, good) {
		t.Fatalf("after torn tail, Get(5) = %q, %v; want %q", got, ok, good)
	}
	if l2.PendingCells() != 1 {
		t.Fatalf("pending cells = %d, want 1", l2.PendingCells())
	}
	if sz := fileSize(t, path); sz >= sizeBefore {
		t.Fatalf("torn tail not truncated: size %d, was %d", sz, sizeBefore)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestLogCheckpointKeepsNewerPuts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.db.delta")
	l, err := Open(path, 1, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a := storage.FrameRecords([]byte("a"))
	b := storage.FrameRecords([]byte("b"))
	c := storage.FrameRecords([]byte("c"))
	if err := l.Put(1, a); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(2, b); err != nil {
		t.Fatal(err)
	}
	snap := l.SnapshotPending()
	applied := make(map[int]uint64, len(snap))
	for _, p := range snap {
		applied[p.Cell] = p.Seq
	}
	// A put racing the compactor's apply phase: newer seq, must survive.
	if err := l.Put(2, c); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(applied); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(1); ok {
		t.Fatal("checkpoint kept an applied entry")
	}
	if got, ok := l.Get(2); !ok || !bytes.Equal(got, c) {
		t.Fatalf("checkpoint dropped a newer put: Get(2) = %q, %v", got, ok)
	}
	// The survivor must also survive a crash + replay.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got, ok := l2.Get(2); !ok || !bytes.Equal(got, c) {
		t.Fatalf("replay after checkpoint: Get(2) = %q, %v; want %q", got, ok, c)
	}
	if l2.PendingCells() != 1 {
		t.Fatalf("pending cells after replay = %d, want 1", l2.PendingCells())
	}
}

func TestLogBacklog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facts.db.delta")
	l, err := Open(path, 1, Options{Policy: SyncNone, MaxPendingBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	small := storage.FrameRecords([]byte("fits"))
	if err := l.Put(1, small); err != nil {
		t.Fatal(err)
	}
	big := storage.FrameRecords(bytes.Repeat([]byte{7}, 80))
	if err := l.Put(2, big); !errors.Is(err, ErrBacklog) {
		t.Fatalf("oversized put: err = %v, want ErrBacklog", err)
	}
	// Replacing a cell's payload counts only the delta against the budget.
	if err := l.Put(1, storage.FrameRecords([]byte("also"))); err != nil {
		t.Fatalf("same-size replacement rejected: %v", err)
	}
}

func TestCompactorDrainsWorstFirst(t *testing.T) {
	o := testOrder(t)
	fs, path := testStore(t, o, 4, 2, 11)
	log, err := Open(DeltaPath(path), 0, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	fs.SetOverlay(log.Overlay())

	// Cells 0..5 share region 0 (RegionCells=8 below groups positions 0-7);
	// give region 1 (positions 8-15) more delta mass so it drains first.
	want := map[int][]string{}
	put := func(cell, n int) {
		t.Helper()
		var recs [][]byte
		want[cell] = nil
		for r := 0; r < n; r++ {
			rec := deltaRec(cell, r, 11)
			recs = append(recs, []byte(rec))
			want[cell] = append(want[cell], rec)
		}
		framed := storage.FrameRecords(recs...)
		if err := log.Put(cell, framed); err != nil {
			t.Fatal(err)
		}
		fs.InvalidateCellPlans(cell)
	}
	put(2, 1)  // region 0: light
	put(9, 4)  // region 1: heavy
	put(10, 4) // region 1: heavy
	put(17, 2) // region 2: medium

	// Merge-on-read sees the overlay before any compaction.
	if got := readCell(t, fs, 9); len(got) != 4 || got[0] != deltaRec(9, 0, 11) {
		t.Fatalf("overlay read of cell 9 = %v", got)
	}

	comp := NewCompactor(CompactorConfig{RegionCells: 8, MaxBytesPerTick: 1})
	ctx := context.Background()
	// Budget of 1 byte: each tick still makes ≥1 region of progress, so the
	// heaviest region drains first and the backlog empties in 3 ticks.
	st1, err := comp.Tick(ctx, fs, log)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CellsApplied != 2 || st1.Regions != 1 {
		t.Fatalf("tick 1 applied %d cells over %d regions, want heaviest region (2 cells)", st1.CellsApplied, st1.Regions)
	}
	if _, ok := log.Get(9); ok {
		t.Fatal("cell 9 still pending after the tick that applied its region")
	}
	if _, ok := log.Get(2); !ok {
		t.Fatal("light region drained before heavy one")
	}
	for i := 0; i < 4; i++ {
		st, err := comp.Tick(ctx, fs, log)
		if err != nil {
			t.Fatal(err)
		}
		if st.PendingCells == 0 && st.CellsApplied == 0 {
			break
		}
		_ = i
	}
	if n := log.PendingCells(); n != 0 {
		t.Fatalf("%d cells still pending after drain", n)
	}
	// Post-compaction reads come from the base file and match the deltas.
	for cell, recs := range want {
		if got := readCell(t, fs, cell); len(got) != len(recs) || got[0] != recs[0] {
			t.Fatalf("cell %d after compaction = %v, want %v", cell, got, recs)
		}
	}
	// Untouched cells keep their seeded base records.
	if got := readCell(t, fs, 0); len(got) != 2 || got[0] != baseRec(0, 0, 11) {
		t.Fatalf("untouched cell 0 = %v", got)
	}
	ticks, cells, _ := comp.Ticks()
	if ticks < 3 || cells != 4 {
		t.Fatalf("ticks=%d cells=%d, want ≥3 ticks draining 4 cells", ticks, cells)
	}
}

func TestRecoverReplaysPending(t *testing.T) {
	o := testOrder(t)
	fs, path := testStore(t, o, 4, 2, 11)
	log, err := Open(DeltaPath(path), 0, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	framed := storage.FrameRecords([]byte(deltaRec(7, 0, 11)))
	if err := log.Put(7, framed); err != nil {
		t.Fatal(err)
	}
	applied, n, err := Recover(context.Background(), fs, log)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d entries, want 1", n)
	}
	if err := log.Checkpoint(applied); err != nil {
		t.Fatal(err)
	}
	if log.PendingCells() != 0 {
		t.Fatal("log not empty after recovery checkpoint")
	}
	if got := readCell(t, fs, 7); len(got) != 1 || got[0] != deltaRec(7, 0, 11) {
		t.Fatalf("cell 7 after recovery = %v", got)
	}
	// Recovery is idempotent: a second replay of the same entry (as after a
	// crash between apply and checkpoint) leaves identical content.
	if err := log.Put(7, framed); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(context.Background(), fs, log); err != nil {
		t.Fatal(err)
	}
	if got := readCell(t, fs, 7); len(got) != 1 || got[0] != deltaRec(7, 0, 11) {
		t.Fatalf("cell 7 after double recovery = %v", got)
	}
}

func TestMigrateRegionsMatchesWholeFile(t *testing.T) {
	o := testOrder(t)
	fs, path := testStore(t, o, 4, 3, 11)
	newOrder := colMajor(t)
	log, err := Open(DeltaPath(path), 0, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	fs.SetOverlay(log.Overlay())
	// A pending delta must ride into the migrated file.
	fresh := []string{deltaRec(11, 0, 11), deltaRec(11, 1, 11)}
	if err := log.Put(11, storage.FrameRecords([]byte(fresh[0]), []byte(fresh[1]))); err != nil {
		t.Fatal(err)
	}
	fs.InvalidateCellPlans(11)

	dir := t.TempDir()
	incPath := filepath.Join(dir, "inc.db")
	ctx := context.Background()
	var lastDone, total int
	dst, ticks, err := MigrateRegionsCtx(ctx, fs, incPath, newOrder, 8, log, RegionMigrateOptions{
		RegionCells:     4,
		MaxCellsPerTick: 5,
		Pause:           time.Microsecond,
		Progress:        func(d, tot int) { lastDone, total = d, tot },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if lastDone != o.Len() || total != o.Len() {
		t.Fatalf("progress ended at %d/%d, want %d/%d", lastDone, total, o.Len(), o.Len())
	}
	// Never the whole file in one tick: 24 cells at ≤5 per tick.
	if ticks < 24/5 {
		t.Fatalf("migration took %d ticks for 24 cells at ≤5/tick", ticks)
	}

	// Whole-file migration of the same source is the ground truth.
	wholePath := filepath.Join(dir, "whole.db")
	whole, err := storage.MigrateCtx(ctx, fs, wholePath, newOrder, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer whole.Close()
	for cell := 0; cell < o.Len(); cell++ {
		a, b := readCell(t, dst, cell), readCell(t, whole, cell)
		if len(a) != len(b) {
			t.Fatalf("cell %d: incremental has %d records, whole-file %d", cell, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cell %d record %d: %q vs %q", cell, i, a[i], b[i])
			}
		}
	}
	// And the delta actually landed.
	if got := readCell(t, dst, 11); len(got) != 2 || got[0] != fresh[0] || got[1] != fresh[1] {
		t.Fatalf("cell 11 in migrated store = %v, want %v", got, fresh)
	}
}
