package ingest

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/trace"
)

// This file is the background half of the write path: paced compaction of
// the delta log into the base file, and the incremental region migration
// that replaces whole-file MigrateCtx as the adaptive controller's default
// action.
//
// Both share one scoring idea. The linearization is cut into fixed-size
// windows of consecutive positions ("regions"), and each region scores
//
//	score = (1 + deltaBytes) × (1 + violation)
//
// where deltaBytes is the pending upsert payload in the region and
// violation is the region's mean displacement |targetPos − deployedPos|
// against the current DP-optimal order. In-place compaction runs with the
// deployed order as target (violation = 0), so the score degenerates to
// the delta mass and the compactor simply drains the heaviest regions
// first; a reorganization decision supplies the new target order, and the
// same formula makes the migrator rewrite the worst-clustered regions
// first, amortizing the O(N) reorg over bounded ticks.

// CompactorConfig tunes the paced compactor.
type CompactorConfig struct {
	// RegionCells is the scoring window in consecutive positions
	// (default 64).
	RegionCells int
	// MaxBytesPerTick bounds the delta payload applied per tick
	// (default 1 MiB). A tick never rewrites more than this plus one
	// region's overshoot, so compaction cost stays amortized no matter how
	// large the backlog grows.
	MaxBytesPerTick int64
	// Commit, when non-nil, persists the store's catalog (the new
	// LoadedBytes) after the tick's cells are applied and flushed, before
	// the log is checkpointed — the catalog-first commit point. A failed
	// commit aborts the checkpoint; the entries simply remain pending.
	Commit func(ctx context.Context, loadedBytes []int64) error
}

// TickStats reports one compaction tick.
type TickStats struct {
	CellsApplied int
	BytesApplied int64
	Regions      int // regions the applied cells spanned
	PendingCells int // left after the tick
	PendingBytes int64
}

// Compactor folds the delta log into the base store in paced ticks. It
// keeps only counters; the store and log are passed per tick so the serve
// loop can hot-swap generations without rebuilding the compactor.
type Compactor struct {
	cfg   CompactorConfig
	crash string

	ticks, cells, bytes int64
}

// NewCompactor validates the config and applies defaults.
func NewCompactor(cfg CompactorConfig) *Compactor {
	if cfg.RegionCells <= 0 {
		cfg.RegionCells = 64
	}
	if cfg.MaxBytesPerTick <= 0 {
		cfg.MaxBytesPerTick = 1 << 20
	}
	return &Compactor{cfg: cfg, crash: os.Getenv(crashEnv)}
}

// Ticks returns the lifetime (ticks, cells applied, bytes applied).
func (c *Compactor) Ticks() (ticks, cells, bytes int64) {
	return c.ticks, c.cells, c.bytes
}

// regionScore aggregates one scoring window's pending cells.
type regionScore struct {
	region int
	bytes  int64
	cells  []Pending
}

// Tick applies up to MaxBytesPerTick of pending delta payload to the base
// store, heaviest regions first, then commits the catalog and checkpoints
// the log. Safe to call concurrently with queries: each PutCellBytes runs
// under the store's write lock, and until the checkpoint removes an entry
// the overlay keeps serving it, so readers never observe a half-applied
// cell. Under a trace the tick is one compact span.
func (c *Compactor) Tick(ctx context.Context, fs *storage.FileStore, log *Log) (TickStats, error) {
	pend := log.SnapshotPending()
	if len(pend) == 0 {
		return TickStats{}, nil
	}
	c.ticks++
	_, sp := trace.Start(ctx, trace.KindCompact, "")
	defer sp.End()
	order := fs.Layout().Order()
	byRegion := make(map[int]*regionScore)
	for _, p := range pend {
		w := order.PosOf(p.Cell) / c.cfg.RegionCells
		rs := byRegion[w]
		if rs == nil {
			rs = &regionScore{region: w}
			byRegion[w] = rs
		}
		rs.bytes += int64(len(p.Payload))
		rs.cells = append(rs.cells, p)
	}
	regions := make([]*regionScore, 0, len(byRegion))
	for _, rs := range byRegion {
		sort.Slice(rs.cells, func(i, j int) bool {
			return order.PosOf(rs.cells[i].Cell) < order.PosOf(rs.cells[j].Cell)
		})
		regions = append(regions, rs)
	}
	// In-place compaction: target == deployed, violation = 0, so the score
	// is the delta mass and ties break on region index for determinism.
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].bytes != regions[j].bytes {
			return regions[i].bytes > regions[j].bytes
		}
		return regions[i].region < regions[j].region
	})
	stats := TickStats{}
	applied := make(map[int]uint64)
	budget := c.cfg.MaxBytesPerTick
	for _, rs := range regions {
		if stats.BytesApplied >= budget && stats.CellsApplied > 0 {
			break
		}
		stats.Regions++
		for _, p := range rs.cells {
			if err := ctx.Err(); err != nil {
				sp.SetError(err)
				return stats, err
			}
			if err := fs.PutCellBytes(p.Cell, p.Payload); err != nil {
				sp.SetError(err)
				return stats, fmt.Errorf("ingest: compacting cell %d: %w", p.Cell, err)
			}
			stats.CellsApplied++
			stats.BytesApplied += int64(len(p.Payload))
			applied[p.Cell] = p.Seq
			if c.crash == "mid-compact" {
				// Orchestrated crash after one cell reached the base file but
				// before flush, commit or checkpoint. The entry is still in
				// the log; recovery re-applies it.
				os.Exit(crashExitCode)
			}
		}
	}
	// Durability order: base pages, then catalog, then the checkpoint that
	// forgets the entries. A crash between any two steps replays safely.
	if err := fs.Pool().Flush(); err != nil {
		sp.SetError(err)
		return stats, fmt.Errorf("ingest: compaction flush: %w", err)
	}
	if c.cfg.Commit != nil {
		if err := c.cfg.Commit(ctx, fs.LoadedBytes()); err != nil {
			sp.SetError(err)
			return stats, fmt.Errorf("ingest: compaction catalog commit: %w", err)
		}
	}
	if err := log.Checkpoint(applied); err != nil {
		sp.SetError(err)
		return stats, fmt.Errorf("ingest: compaction checkpoint: %w", err)
	}
	c.cells += int64(stats.CellsApplied)
	c.bytes += stats.BytesApplied
	stats.PendingCells = log.PendingCells()
	stats.PendingBytes = log.PendingBytes()
	sp.SetAttr("cells", int64(stats.CellsApplied))
	sp.SetAttr("bytes", stats.BytesApplied)
	sp.SetAttr("regions", int64(stats.Regions))
	sp.SetAttr("pending_cells", int64(stats.PendingCells))
	return stats, nil
}

// Recover replays every pending log entry into the base store and flushes
// it — the startup redo pass. The caller then rebuilds parity, persists
// the catalog, and calls log.Checkpoint to retire the entries (Recover
// returns the applied seqs). Idempotent: re-applying an entry the crashed
// process already applied rewrites the same bytes.
func Recover(ctx context.Context, fs *storage.FileStore, log *Log) (map[int]uint64, int, error) {
	pend := log.SnapshotPending()
	if len(pend) == 0 {
		return nil, 0, nil
	}
	applied := make(map[int]uint64, len(pend))
	for _, p := range pend {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if err := fs.PutCellBytes(p.Cell, p.Payload); err != nil {
			return nil, 0, fmt.Errorf("ingest: recovery of cell %d: %w", p.Cell, err)
		}
		applied[p.Cell] = p.Seq
	}
	if err := fs.Pool().Flush(); err != nil {
		return nil, 0, fmt.Errorf("ingest: recovery flush: %w", err)
	}
	return applied, len(pend), nil
}

// RegionMigrateOptions paces an incremental migration.
type RegionMigrateOptions struct {
	// RegionCells is the copy unit in consecutive target positions
	// (default 64).
	RegionCells int
	// MaxCellsPerTick bounds the cells copied per tick (default: one
	// region). The migration never rewrites the whole file in one tick as
	// long as this is below the cell count.
	MaxCellsPerTick int
	// Pause is slept between ticks (0 = no pacing), keeping the copy's I/O
	// from starving concurrent queries.
	Pause time.Duration
	// Progress, when non-nil, is called after each tick with (cellsCopied,
	// totalCells); it runs on the migrating goroutine and must be cheap.
	Progress func(done, total int)
}

// MigrateRegionsCtx re-clusters a store onto a new linearization the
// incremental way: the target order is cut into regions, regions are
// scored by (1 + deltaBytes) × (1 + violation distance) — pending upserts
// from log count toward deltaBytes, and violation is the mean |targetPos −
// deployedPos| of the region's cells — and copied worst-first in paced,
// bounded ticks. Reads through the old store are overlay-aware, so cells
// with pending deltas are copied with their freshest content; entries put
// *during* the copy carry newer seqs and survive the caller's checkpoint
// into the next generation's log.
//
// Like MigrateCtx, the partial output is removed on any failure and the
// returned store is flushed and ready to swap. The returned tick count and
// per-tick ceiling let callers assert the full file was never rewritten in
// one tick.
func MigrateRegionsCtx(ctx context.Context, old *storage.FileStore, newPath string, newOrder *linear.Order, poolFrames int, log *Log, opt RegionMigrateOptions) (*storage.FileStore, int, error) {
	if opt.RegionCells <= 0 {
		opt.RegionCells = 64
	}
	if opt.MaxCellsPerTick <= 0 {
		opt.MaxCellsPerTick = opt.RegionCells
	}
	oldOrder := old.Layout().Order()
	total := oldOrder.Len()
	if newOrder.Len() != total {
		return nil, 0, fmt.Errorf("ingest: migrating %d cells onto an order with %d", total, newOrder.Len())
	}
	bytesPerCell := make([]int64, total)
	for cell := 0; cell < total; cell++ {
		bytesPerCell[cell] = old.Layout().CellCapacity(cell)
	}
	dst, err := storage.CreateFileStore(newPath, newOrder, bytesPerCell, int(old.Layout().PageSize()), poolFrames)
	if err != nil {
		return nil, 0, err
	}
	abort := func(err error) (*storage.FileStore, int, error) {
		dst.Close()
		os.Remove(newPath)
		return nil, 0, err
	}
	// Score target regions: windows of consecutive *new* positions, so each
	// copied region lands contiguously in the destination.
	type migRegion struct {
		lo, hi int // target position range [lo, hi)
		score  float64
	}
	nRegions := (total + opt.RegionCells - 1) / opt.RegionCells
	regions := make([]migRegion, 0, nRegions)
	for w := 0; w < nRegions; w++ {
		lo := w * opt.RegionCells
		hi := lo + opt.RegionCells
		if hi > total {
			hi = total
		}
		var delta, violation int64
		for pos := lo; pos < hi; pos++ {
			cell := newOrder.CellAt(pos)
			d := pos - oldOrder.PosOf(cell)
			if d < 0 {
				d = -d
			}
			violation += int64(d)
			if log != nil {
				if b, ok := log.Get(cell); ok {
					delta += int64(len(b))
				}
			}
		}
		mean := float64(violation) / float64(hi-lo)
		regions = append(regions, migRegion{lo: lo, hi: hi, score: (1 + float64(delta)) * (1 + mean)})
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].score != regions[j].score {
			return regions[i].score > regions[j].score
		}
		return regions[i].lo < regions[j].lo
	})
	cctx, copySpan := trace.Start(ctx, trace.KindCopy, "")
	copySpan.SetAttr("cells", int64(total))
	copySpan.SetAttr("regions", int64(len(regions)))
	done, ticks, inTick := 0, 0, 0
	for _, rg := range regions {
		for pos := rg.lo; pos < rg.hi; pos++ {
			if err := ctx.Err(); err != nil {
				copySpan.SetError(err)
				copySpan.End()
				return abort(err)
			}
			if inTick >= opt.MaxCellsPerTick {
				ticks++
				inTick = 0
				if opt.Progress != nil {
					opt.Progress(done, total)
				}
				if opt.Pause > 0 {
					select {
					case <-ctx.Done():
						copySpan.SetError(ctx.Err())
						copySpan.End()
						return abort(ctx.Err())
					case <-time.After(opt.Pause):
					}
				}
			}
			cell := newOrder.CellAt(pos)
			// Overlay-aware read: pending deltas ride along into the copy.
			records, err := storage.ReadCellRepairing(cctx, old, cell)
			if err != nil {
				copySpan.SetError(err)
				copySpan.End()
				return abort(fmt.Errorf("ingest: region copy of cell %d: %w", cell, err))
			}
			for _, rec := range records {
				if err := dst.PutRecord(cell, rec); err != nil {
					copySpan.SetError(err)
					copySpan.End()
					return abort(fmt.Errorf("ingest: region copy of cell %d: %w", cell, err))
				}
			}
			done++
			inTick++
		}
	}
	if inTick > 0 {
		ticks++
	}
	if opt.Progress != nil {
		opt.Progress(done, total)
	}
	copySpan.SetAttr("ticks", int64(ticks))
	copySpan.End()
	fsp := trace.StartLeaf(ctx, trace.KindFlush, "")
	if err := dst.Pool().Flush(); err != nil {
		fsp.SetError(err)
		fsp.End()
		return abort(fmt.Errorf("ingest: migration flush: %w", err))
	}
	fsp.End()
	return dst, ticks, nil
}
