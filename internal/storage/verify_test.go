package storage

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"
)

func TestVerifyCleanStore(t *testing.T) {
	fs, values, _, _ := buildFileStore(t, 4)
	defer fs.Close()
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean store reported problems: %v", rep.Problems)
	}
	if rep.Pages != fs.Layout().TotalPages() {
		t.Errorf("scanned %d pages, want %d", rep.Pages, fs.Layout().TotalPages())
	}
	var records int64
	for _, vs := range values {
		records += int64(len(vs))
	}
	if rep.Records != records {
		t.Errorf("walked %d records, want %d", rep.Records, records)
	}
	if rep.Err() != nil {
		t.Errorf("clean report Err() = %v", rep.Err())
	}
}

// TestVerifyDetectsEveryDataByteFlip is the acceptance-criteria scrub: a
// byte flipped anywhere in any page's data region must be detected and
// attributed to the right page (and, where the page holds data, a cell).
func TestVerifyDetectsEveryDataByteFlip(t *testing.T) {
	fs, _, path, bytes := buildFileStore(t, 4)
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	o := fs.Layout().Order()
	usable := int64(64 - PageTrailerSize)
	totalPages := fs.Layout().TotalPages()

	flip := func(off int64, bit byte) byte {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		one := make([]byte, 1)
		if _, err := f.ReadAt(one, off); err != nil {
			t.Fatal(err)
		}
		orig := one[0]
		if _, err := f.WriteAt([]byte{orig ^ bit}, off); err != nil {
			t.Fatal(err)
		}
		return orig
	}
	restore := func(off int64, b byte) {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt([]byte{b}, off); err != nil {
			t.Fatal(err)
		}
	}

	for page := int64(0); page < totalPages; page++ {
		for po := int64(0); po < usable; po++ {
			off := page*64 + po
			orig := flip(off, 0x10)
			fs2, err := OpenFileStore(path, o, bytes, 64, 4, loaded)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := fs2.Verify()
			if err != nil {
				t.Fatalf("offset %d: scrub aborted: %v", off, err)
			}
			if rep.OK() {
				t.Fatalf("flip at file offset %d (page %d) undetected", off, page)
			}
			found := false
			for _, p := range rep.Problems {
				if p.Page == page {
					found = true
					if p.Cell >= 0 && p.Coords == nil {
						t.Fatalf("offset %d: problem names cell %d without coords", off, p.Cell)
					}
				}
			}
			if !found {
				t.Fatalf("offset %d: problems %v do not name page %d", off, rep.Problems, page)
			}
			if !errors.Is(rep.Err(), ErrCorruptPage) {
				t.Fatalf("offset %d: report error %v does not match ErrCorruptPage", off, rep.Err())
			}
			fs2.Close()
			restore(off, orig)
		}
	}
}

func TestVerifyReportsFramingDamage(t *testing.T) {
	fs, _, _, _ := buildFileStore(t, 8)
	defer fs.Close()
	// Overwrite the first cell's length prefix with a giant value through
	// the pool, so checksums stay valid but the framing is broken.
	pos := 0
	for fs.fill[pos] == 0 {
		pos++
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if err := fs.pool.WriteAt(hdr[:], fs.layout.start[pos]); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("broken framing undetected")
	}
	cell := fs.layout.order.CellAt(pos)
	found := false
	for _, p := range rep.Problems {
		if p.Cell == cell {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems %v do not name cell %d", rep.Problems, cell)
	}
}

func TestOpenFileStoreValidatesFillAndGeometry(t *testing.T) {
	fs, _, path, bytes := buildFileStore(t, 4)
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	o := fs.Layout().Order()

	// Fill beyond a cell's reserved range is rejected.
	bad := make([]int64, len(loaded))
	copy(bad, loaded)
	bad[0] = bytes[0] + 1
	if _, err := OpenFileStore(path, o, bytes, 64, 4, bad); err == nil {
		t.Error("fill beyond reserved range should fail")
	}
	bad[0] = -1
	if _, err := OpenFileStore(path, o, bytes, 64, 4, bad); err == nil {
		t.Error("negative fill should fail")
	}

	// A truncated file no longer matches the layout's page count.
	if err := os.Truncate(path, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path, o, bytes, 64, 4, loaded); err == nil {
		t.Error("truncated file should fail geometry validation")
	}
}
