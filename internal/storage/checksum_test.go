package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestChecksumFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.db")
	pf, err := CreatePageFile(path, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	cf, err := NewChecksumFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	if cf.PageSize() != 64-PageTrailerSize {
		t.Fatalf("PageSize = %d, want %d", cf.PageSize(), 64-PageTrailerSize)
	}
	data := make([]byte, cf.PageSize())
	for i := range data {
		data[i] = byte(i + 1)
	}
	if err := cf.WritePage(1, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cf.PageSize())
	if err := cf.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d: got %d want %d", i, got[i], data[i])
		}
	}
	// A never-written page reads back as zeros, not as corruption.
	if err := cf.ReadPage(2, got); err != nil {
		t.Fatalf("zero page should verify: %v", err)
	}
	for i := range got {
		if got[i] != 0 {
			t.Fatal("zero page not zero")
		}
	}
}

func TestChecksumFileDetectsDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.db")
	pf, err := CreatePageFile(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := NewChecksumFile(pf)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cf.PageSize())
	for i := range data {
		data[i] = 0x5A
	}
	if err := cf.WritePage(0, data); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Flip one bit at every byte of the physical page: data-region flips
	// must fail the CRC, trailer flips must fail magic or CRC.
	for off := 0; off < 64; off++ {
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		one := make([]byte, 1)
		if _, err := f.ReadAt(one, int64(off)); err != nil {
			t.Fatal(err)
		}
		orig := one[0]
		one[0] ^= 0x04
		if _, err := f.WriteAt(one, int64(off)); err != nil {
			t.Fatal(err)
		}
		f.Close()

		pf2, err := OpenPageFile(path, 64)
		if err != nil {
			t.Fatal(err)
		}
		cf2, err := NewChecksumFile(pf2)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, cf2.PageSize())
		err = cf2.ReadPage(0, buf)
		if !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("flip at byte %d: err = %v, want ErrCorruptPage", off, err)
		}
		var cpe *CorruptPageError
		if !errors.As(err, &cpe) || cpe.Page != 0 {
			t.Fatalf("flip at byte %d: error does not carry page 0: %v", off, err)
		}
		pf2.Close()

		// Restore the byte for the next round.
		f, err = os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{orig}, int64(off)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
}

func TestChecksumFilePageTooSmall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.db")
	pf, err := CreatePageFile(path, PageTrailerSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if _, err := NewChecksumFile(pf); err == nil {
		t.Error("trailer-sized pages should be rejected")
	}
}
