package storage

import (
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/linear"
)

func rowMajor4x4(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func uniformBytes(n int, b int64) []int64 {
	bs := make([]int64, n)
	for i := range bs {
		bs[i] = b
	}
	return bs
}

func TestLayoutPacking(t *testing.T) {
	o := rowMajor4x4(t)
	l, err := NewLayout(o, uniformBytes(16, 125), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TotalBytes(); got != 2000 {
		t.Errorf("TotalBytes = %d, want 2000", got)
	}
	if got := l.TotalPages(); got != 2 {
		t.Errorf("TotalPages = %d, want 2", got)
	}
}

func TestLayoutErrors(t *testing.T) {
	o := rowMajor4x4(t)
	if _, err := NewLayout(o, uniformBytes(15, 1), 100); err == nil {
		t.Error("wrong cell count should fail")
	}
	if _, err := NewLayout(o, uniformBytes(16, 1), 0); err == nil {
		t.Error("zero page size should fail")
	}
	bad := uniformBytes(16, 1)
	bad[3] = -1
	if _, err := NewLayout(o, bad, 100); err == nil {
		t.Error("negative cell size should fail")
	}
}

func TestQueryWholeGrid(t *testing.T) {
	o := rowMajor4x4(t)
	l, err := NewLayout(o, uniformBytes(16, 100), 250)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Query(linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}})
	if st.Bytes != 1600 {
		t.Errorf("Bytes = %d, want 1600", st.Bytes)
	}
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1 for a full scan", st.Seeks)
	}
	if st.Pages != 7 {
		t.Errorf("Pages = %d, want ⌈1600/250⌉ = 7", st.Pages)
	}
	if st.NormPages != 1 {
		t.Errorf("NormPages = %v, want 1", st.NormPages)
	}
}

func TestQueryColumnSeeks(t *testing.T) {
	// One 100-byte cell per page slot: a column under row-major order is 4
	// separated cells → 4 seeks when pages are small.
	o := rowMajor4x4(t)
	l, err := NewLayout(o, uniformBytes(16, 100), 100)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Query(linear.Region{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}})
	if st.Seeks != 4 {
		t.Errorf("Seeks = %d, want 4", st.Seeks)
	}
	if st.Pages != 4 {
		t.Errorf("Pages = %d, want 4", st.Pages)
	}
	if st.MinPages != 4 {
		t.Errorf("MinPages = %d, want 4", st.MinPages)
	}
}

func TestQueryMergesAcrossEmptyCells(t *testing.T) {
	// Cells 1 and 2 of the first row are empty: the row is still one
	// contiguous read.
	o := rowMajor4x4(t)
	bytes := uniformBytes(16, 100)
	bytes[o.CellAt(1)] = 0
	bytes[o.CellAt(2)] = 0
	l, err := NewLayout(o, bytes, 100)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Query(linear.Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 4}})
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1 (empty cells must not split runs)", st.Seeks)
	}
	if st.Bytes != 200 {
		t.Errorf("Bytes = %d, want 200", st.Bytes)
	}
}

func TestQueryEmptyRegion(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := make([]int64, 16) // everything empty
	l, err := NewLayout(o, bytes, 100)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Query(linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}})
	if st.Seeks != 0 || st.Pages != 0 || st.NormPages != 0 {
		t.Errorf("empty query stats = %+v, want zeros", st)
	}
}

func TestAdjacentPageRangesMergeIntoOneSeek(t *testing.T) {
	// Two byte runs separated by exactly one empty... here: runs ending and
	// starting on adjacent pages still count as one sequential access.
	o := rowMajor4x4(t)
	bytes := uniformBytes(16, 50) // two cells per 100-byte page
	l, err := NewLayout(o, bytes, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 occupies pages 0–1, row 1 pages 2–3: querying both rows is one
	// seek; querying rows 0 and 2 is two.
	if st := l.Query(linear.Region{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 4}}); st.Seeks != 1 {
		t.Errorf("rows 0–1: Seeks = %d, want 1", st.Seeks)
	}
	twoRows := l.Query(linear.Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 4}})
	if twoRows.Seeks != 1 {
		t.Errorf("row 0: Seeks = %d, want 1", twoRows.Seeks)
	}
}

func TestCellSplitAcrossPages(t *testing.T) {
	// 300-byte cells on 250-byte pages: cells straddle page boundaries and
	// a single-cell query touches two pages but needs one seek.
	o := rowMajor4x4(t)
	l, err := NewLayout(o, uniformBytes(16, 300), 250)
	if err != nil {
		t.Fatal(err)
	}
	st := l.Query(linear.Region{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 2}}) // second cell: bytes [300,600)
	if st.Seeks != 1 {
		t.Errorf("Seeks = %d, want 1", st.Seeks)
	}
	if st.Pages != 2 { // pages 1 and 2
		t.Errorf("Pages = %d, want 2", st.Pages)
	}
	if st.MinPages != 2 {
		t.Errorf("MinPages = %d, want 2", st.MinPages)
	}
}

// TestSeeksMatchFragmentsWhenCellsArePages packs one cell per page, making
// page seeks equal cell-level fragments — tying the storage simulator to the
// analytic model.
func TestSeeksMatchFragmentsWhenCellsArePages(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 3))
	rng := rand.New(rand.NewSource(3))
	orders := []*linear.Order{}
	if o, err := linear.RowMajor(s, []int{0, 1}); err == nil {
		orders = append(orders, o)
	}
	if o, err := linear.ZOrder(s); err == nil {
		orders = append(orders, o)
	}
	if o, err := linear.GrayOrder(s); err == nil {
		orders = append(orders, o)
	}
	for _, o := range orders {
		l, err := NewLayout(o, uniformBytes(o.Len(), 100), 100)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			r := make(linear.Region, 2)
			for d, n := range s.LeafCounts() {
				lo := rng.Intn(n)
				r[d] = linear.Range{Lo: lo, Hi: lo + 1 + rng.Intn(n-lo)}
			}
			frag := o.Fragments(r)
			st := l.Query(r)
			if int64(frag) != st.Seeks {
				t.Fatalf("%s region %v: fragments %d ≠ seeks %d", o.Name, r, frag, st.Seeks)
			}
		}
	}
}

func TestDiskModel(t *testing.T) {
	st := Stats{Pages: 10, Seeks: 2}
	got := DefaultDisk.Millis(st)
	want := 2*10.0 + 10*0.8
	if got != want {
		t.Errorf("Millis = %v, want %v", got, want)
	}
}
