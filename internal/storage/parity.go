package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

// Parity sidecar: the self-healing layer of the file store. Beside every
// store file lives <store>.parity, holding one XOR parity page per group of
// DefaultParityGroup (or a caller-chosen K) consecutive data pages. Parity
// covers the logical data region of each page — the bytes above the CRC32C
// trailer — so reconstruction rewrites a damaged page *through* the
// ChecksumFile and gets a fresh trailer for free. The sidecar is itself a
// checksummed page file (header page + parity pages), so damage to the
// parity is detected the same way damage to the data is, and it is written
// atomically (temp file, fsync, rename), so a crash mid-build leaves either
// the old sidecar or the new one, never a torn mix.
//
// The recovery guarantee is the classic RAID-4 one: any single bad page per
// group is reconstructible from the surviving K−1 pages plus parity; two or
// more bad pages in one group (or a bad parity page plus a bad data page)
// are not, and surface as the typed ErrUnrepairable with the coordinates of
// everything damaged.

// DefaultParityGroup is the default number of data pages per parity page.
// Smaller groups tolerate denser damage and repair faster (fewer sibling
// reads) at the cost of proportionally more sidecar space: K=8 spends 1/8
// of the store's size to survive any single-page fault per 8-page stripe.
const DefaultParityGroup = 8

// parityMagic marks a parity sidecar header ("SNKP").
const parityMagic uint32 = 0x50_4B_4E_53

// parityVersion is the current sidecar format.
const parityVersion = 1

// ErrUnrepairable marks a page that parity-based repair cannot reconstruct:
// two or more pages of its parity group are damaged (or the parity page
// itself is), exceeding the single-fault budget of XOR parity. Errors
// carrying the damage coordinates are UnrepairableError values; both match
// with errors.Is(err, ErrUnrepairable).
var ErrUnrepairable = errors.New("storage: page unrepairable")

// ErrNoParity marks a repair attempted on a store with no (or a stale)
// parity sidecar attached; match with errors.Is.
var ErrNoParity = errors.New("storage: no parity sidecar attached")

// UnrepairableError reports a page that could not be reconstructed, with
// the coordinates of everything damaged in its parity group: the physical
// page indexes, the group, and — when the page holds cell data — the first
// cell and its grid coordinates.
type UnrepairableError struct {
	Page     int64   // the page repair was asked for
	Group    int64   // its parity group (Page / group size)
	BadPages []int64 // every damaged page found in the group, sorted
	Cell     int     // first cell with data on Page; -1 when none
	Coords   []int   // the cell's leaf coordinates, nil when Cell is -1
	Reason   string
}

func (e *UnrepairableError) Error() string {
	loc := fmt.Sprintf("storage: page %d (parity group %d", e.Page, e.Group)
	if e.Cell >= 0 {
		loc += fmt.Sprintf(", cell %d @ %v", e.Cell, e.Coords)
	}
	return fmt.Sprintf("%s) unrepairable: %s; damaged pages %v", loc, e.Reason, e.BadPages)
}

// Is makes errors.Is(err, ErrUnrepairable) match.
func (e *UnrepairableError) Is(target error) bool { return target == ErrUnrepairable }

// ParityPath returns the conventional sidecar path for a store file.
func ParityPath(storePath string) string { return storePath + ".parity" }

// parityState is the attached sidecar: its checksummed file, the group
// size it was built with, and a staleness flag. Writes normally keep the
// sidecar live by XOR-patching the affected parity pages in place (see
// FileStore.patchParity); stale is set only when a patch cannot be applied
// — the sidecar then no longer matches the data and must not be used to
// "repair" pages until WriteParity rebuilds it.
type parityState struct {
	file  *ChecksumFile
	inner *PageFile
	group int
	path  string
	stale bool
}

func (ps *parityState) groups(dataPages int64) int64 {
	k := int64(ps.group)
	return (dataPages + k - 1) / k
}

// parityHeaderSize is the encoded header length: magic, version, group
// (uint32 each), data page count (uint64), page size (uint32). Kept to 24
// bytes so the header fits the usable region of even the smallest pages.
const parityHeaderSize = 24

// encodeParityHeader fills the sidecar's header page data region.
func encodeParityHeader(buf []byte, group int, dataPages, pageSize int64) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:], parityMagic)
	binary.LittleEndian.PutUint32(buf[4:], parityVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(group))
	binary.LittleEndian.PutUint64(buf[12:], uint64(dataPages))
	binary.LittleEndian.PutUint32(buf[20:], uint32(pageSize))
}

// decodeParityHeader validates a sidecar header against the store's
// geometry and returns the group size.
func decodeParityHeader(buf []byte, dataPages, pageSize int64) (int, error) {
	if len(buf) < parityHeaderSize {
		return 0, fmt.Errorf("storage: parity header needs %d bytes, page holds %d", parityHeaderSize, len(buf))
	}
	if got := binary.LittleEndian.Uint32(buf[0:]); got != parityMagic {
		return 0, fmt.Errorf("storage: bad parity magic %#08x", got)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != parityVersion {
		return 0, fmt.Errorf("storage: unsupported parity version %d", v)
	}
	group := int(binary.LittleEndian.Uint32(buf[8:]))
	if group <= 0 {
		return 0, fmt.Errorf("storage: parity group size %d must be positive", group)
	}
	if got := int64(binary.LittleEndian.Uint64(buf[12:])); got != dataPages {
		return 0, fmt.Errorf("storage: parity covers %d data pages, store has %d", got, dataPages)
	}
	if got := int64(binary.LittleEndian.Uint32(buf[20:])); got != pageSize {
		return 0, fmt.Errorf("storage: parity built for %d-byte pages, store uses %d", got, pageSize)
	}
	return group, nil
}

// HasParity reports whether a usable (attached and non-stale) parity
// sidecar backs RepairPage.
func (fs *FileStore) HasParity() bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.parity != nil && !fs.parity.stale
}

// ParityGroup returns the attached sidecar's group size (0 when none).
func (fs *FileStore) ParityGroup() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.parity == nil {
		return 0
	}
	return fs.parity.group
}

// WriteParity builds the parity sidecar at path — one XOR parity page per
// groupSize data pages (DefaultParityGroup when groupSize <= 0) — and
// attaches it to the store, replacing any sidecar attached before. The
// pool is flushed first so parity covers what is actually on disk, the
// sidecar is written to a temp file and renamed into place, and a failure
// leaves any previous sidecar file untouched. Building requires every data
// page to read clean; a corrupt page fails the build with its typed error
// (repair needs parity, so heal — or rebuild the store — first).
func (fs *FileStore) WriteParity(path string, groupSize int) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	if groupSize <= 0 {
		groupSize = DefaultParityGroup
	}
	if err := fs.pool.Flush(); err != nil {
		return fmt.Errorf("storage: parity flush: %w", err)
	}
	u := fs.layout.usable()
	if u < parityHeaderSize {
		return fmt.Errorf("storage: %d-byte pages leave %d usable bytes, parity header needs %d", fs.layout.pageSize, u, parityHeaderSize)
	}
	dataPages := fs.layout.TotalPages()
	k := int64(groupSize)
	groups := (dataPages + k - 1) / k
	tmp := path + ".tmp"
	pf, err := CreatePageFile(tmp, int(fs.layout.pageSize), 1+groups)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		pf.Close()
		os.Remove(tmp)
		return err
	}
	cf, err := NewChecksumFile(pf)
	if err != nil {
		return abort(err)
	}
	hdr := make([]byte, u)
	encodeParityHeader(hdr, groupSize, dataPages, fs.layout.pageSize)
	if err := cf.WritePage(0, hdr); err != nil {
		return abort(err)
	}
	acc := make([]byte, u)
	buf := make([]byte, u)
	for g := int64(0); g < groups; g++ {
		for i := range acc {
			acc[i] = 0
		}
		hi := (g + 1) * k
		if hi > dataPages {
			hi = dataPages
		}
		for p := g * k; p < hi; p++ {
			if err := fs.file.ReadPage(p, buf); err != nil {
				return abort(fmt.Errorf("storage: parity build reading page %d: %w", p, err))
			}
			xorInto(acc, buf)
		}
		if err := cf.WritePage(1+g, acc); err != nil {
			return abort(err)
		}
	}
	if err := pf.Sync(); err != nil {
		return abort(err)
	}
	if err := pf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return fs.attachParityLocked(path)
}

// AttachParity opens an existing parity sidecar and validates it against
// the store's geometry. A sidecar already attached is replaced.
func (fs *FileStore) AttachParity(path string) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	return fs.attachParityLocked(path)
}

// attachParityLocked opens and validates the sidecar; callers hold at
// least the store's read lock. The parity pointer itself is guarded by
// repairMu so concurrent attach/repair never race on it.
func (fs *FileStore) attachParityLocked(path string) error {
	pf, err := OpenPageFile(path, int(fs.layout.pageSize))
	if err != nil {
		return err
	}
	cf, err := NewChecksumFile(pf)
	if err != nil {
		pf.Close()
		return err
	}
	hdr := make([]byte, fs.layout.usable())
	if err := cf.ReadPage(0, hdr); err != nil {
		pf.Close()
		return fmt.Errorf("storage: parity header: %w", err)
	}
	group, err := decodeParityHeader(hdr, fs.layout.TotalPages(), fs.layout.pageSize)
	if err != nil {
		pf.Close()
		return err
	}
	want := 1 + (fs.layout.TotalPages()+int64(group)-1)/int64(group)
	if pf.Pages() != want {
		pf.Close()
		return fmt.Errorf("storage: parity sidecar has %d pages, geometry needs %d", pf.Pages(), want)
	}
	fs.repairMu.Lock()
	old := fs.parity
	fs.parity = &parityState{file: cf, inner: pf, group: group, path: path}
	fs.repairMu.Unlock()
	if old != nil {
		old.inner.Close()
	}
	return nil
}

// CheckPage re-reads one physical page from disk through the checksum
// layer, bypassing the pool cache — the scrubber's primitive. A clean page
// returns nil; damage returns the typed CorruptPageError. Safe to call
// concurrently with queries.
func (fs *FileStore) CheckPage(page int64) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	if page < 0 || page >= fs.layout.TotalPages() {
		return fmt.Errorf("storage: page %d out of range [0,%d)", page, fs.layout.TotalPages())
	}
	buf := make([]byte, fs.layout.usable())
	return fs.file.ReadPage(page, buf)
}

// RepairPage reconstructs a damaged page from its parity group: XOR of the
// group's parity page and every sibling data page, rewritten through the
// ChecksumFile (fresh trailer) and re-verified from disk. A page that
// already reads clean is a no-op, so racing repairers are harmless. The
// typed errors: ErrNoParity when no usable sidecar is attached,
// ErrUnrepairable (an UnrepairableError with coordinates) when more than
// one page of the group — or the parity page itself — is damaged, or when
// the reconstruction fails re-verification.
//
// Repairs are serialized by an internal mutex but run concurrently with
// queries: the reconstruction restores the page's original bytes, so any
// clean frame the pool already caches stays consistent, and a failed pool
// load never leaves a frame behind to go stale.
func (fs *FileStore) RepairPage(page int64) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	if page < 0 || page >= fs.layout.TotalPages() {
		return fmt.Errorf("storage: page %d out of range [0,%d)", page, fs.layout.TotalPages())
	}
	fs.repairMu.Lock()
	defer fs.repairMu.Unlock()
	ps := fs.parity
	if ps == nil {
		return ErrNoParity
	}
	if ps.stale {
		return fmt.Errorf("%w: sidecar %s predates writes to the store; rebuild parity first", ErrNoParity, ps.path)
	}
	// Writes keep parity in sync with the store's *logical* content (the
	// XOR patch reads pre-write bytes through the pool), so before XOR-ing
	// on-disk sibling pages the pool's dirty frames must reach disk.
	if err := fs.pool.Flush(); err != nil {
		return fmt.Errorf("storage: pre-repair flush: %w", err)
	}
	u := fs.layout.usable()
	buf := make([]byte, u)
	if err := fs.file.ReadPage(page, buf); err == nil {
		return nil // already clean: nothing to repair
	} else if !errors.Is(err, ErrCorruptPage) {
		return err // transient or positional failure: not parity's problem
	}
	k := int64(ps.group)
	g := page / k
	unrepairable := func(bad []int64, reason string) error {
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		cell, coords := fs.cellOnPage(page)
		return &UnrepairableError{Page: page, Group: g, BadPages: bad, Cell: cell, Coords: coords, Reason: reason}
	}
	acc := make([]byte, u)
	if err := ps.file.ReadPage(1+g, acc); err != nil {
		if errors.Is(err, ErrCorruptPage) {
			return unrepairable([]int64{page}, "parity page is itself damaged")
		}
		return err
	}
	hi := (g + 1) * k
	if hi > fs.layout.TotalPages() {
		hi = fs.layout.TotalPages()
	}
	bad := []int64{page}
	for p := g * k; p < hi; p++ {
		if p == page {
			continue
		}
		if err := fs.file.ReadPage(p, buf); err != nil {
			if errors.Is(err, ErrCorruptPage) {
				bad = append(bad, p)
				continue
			}
			return err
		}
		xorInto(acc, buf)
	}
	if len(bad) > 1 {
		return unrepairable(bad, fmt.Sprintf("%d damaged pages share one parity group; XOR parity recovers at most one", len(bad)))
	}
	if err := fs.file.WritePage(page, acc); err != nil {
		return fmt.Errorf("storage: repair rewrite of page %d: %w", page, err)
	}
	if err := fs.file.Sync(); err != nil {
		return fmt.Errorf("storage: repair sync of page %d: %w", page, err)
	}
	if err := fs.file.ReadPage(page, buf); err != nil {
		return unrepairable([]int64{page}, fmt.Sprintf("reconstruction failed re-verification: %v", err))
	}
	return nil
}

// RepairReport is the outcome of a RepairCtx sweep.
type RepairReport struct {
	Pages    int64   // pages scanned
	Repaired []int64 // pages reconstructed and re-verified
	Failed   []VerifyProblem
}

// OK reports whether the sweep left the store clean.
func (r *RepairReport) OK() bool { return len(r.Failed) == 0 }

// RepairCtx sweeps the whole store like VerifyCtx but heals as it goes:
// every page is re-read from disk and any checksum failure is repaired
// from parity on the spot. Damage that repair cannot fix lands in the
// report's Failed list with its typed error; the returned error is non-nil
// only for I/O failures or cancellation that stopped the sweep itself.
// When ctx carries a trace, the sweep is a scrub span with one repair
// child span per damaged page.
func (fs *FileStore) RepairCtx(ctx context.Context) (*RepairReport, error) {
	rep := &RepairReport{}
	total := fs.Layout().TotalPages()
	sctx, ssp := trace.Start(ctx, trace.KindScrub, "")
	defer func() {
		ssp.SetAttr("pages", rep.Pages)
		ssp.SetAttr("repaired", int64(len(rep.Repaired)))
		ssp.End()
	}()
	for p := int64(0); p < total; p++ {
		if err := ctx.Err(); err != nil {
			ssp.SetError(err)
			return rep, err
		}
		rep.Pages++
		err := fs.CheckPage(p)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrCorruptPage) {
			ssp.SetError(err)
			return rep, err
		}
		rsp := trace.StartLeaf(sctx, trace.KindRepair, "")
		rsp.SetAttr("page", p)
		if rerr := fs.RepairPage(p); rerr != nil {
			rsp.SetError(rerr)
			rsp.End()
			rep.Failed = append(rep.Failed, fs.problemAt(p, rerr))
			continue
		}
		rsp.End()
		rep.Repaired = append(rep.Repaired, p)
	}
	return rep, nil
}

// xorInto accumulates src into dst byte-wise.
func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
