package storage

import (
	"context"
	"testing"

	"repro/internal/linear"
	"repro/internal/trace"
)

func attrVal(t *testing.T, sp trace.Span, key string) int64 {
	t.Helper()
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	t.Fatalf("span %+v has no attr %q", sp, key)
	return 0
}

// TestColdQueryFragmentSpansMatchTallyAndAnalytic is the tracing
// counterpart of TestSumStatsColdMatchesAnalytic: on a cold pool, a traced
// query's fragment spans must account for exactly the traffic the tally
// observed and the analytic model predicted — one fragment span per run of
// byte-contiguous cells, one page_load child per analytic page, and
// per-fragment tally deltas whose sums equal both the tally totals and the
// analytic prediction. (Fragment count is cell-run granularity; the seek
// model merges at page granularity, so the exact cross-check is the
// per-fragment seek deltas summing to the analytic seek count.)
func TestColdQueryFragmentSpansMatchTallyAndAnalytic(t *testing.T) {
	regions := []linear.Region{
		{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, // full grid: one contiguous run
		{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}}, // one row of the row-major order
		{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}}, // one column: fragmented
	}
	for _, r := range regions {
		built, _, path, bytes := buildFileStore(t, 64)
		o := built.Layout().Order()
		loaded := built.LoadedBytes()
		if err := built.Close(); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFileStore(path, o, bytes, 64, 64, loaded)
		if err != nil {
			t.Fatal(err)
		}
		pred := fs.Layout().Query(r)

		rec := trace.NewRecorder(trace.Config{SampleEvery: 1})
		ctx, tr := rec.Start(context.Background(), "query")
		if tr == nil {
			t.Fatal("recorder did not trace")
		}
		var tally PoolTally
		ctx = WithPoolTally(ctx, &tally)
		if err := fs.ReadQueryCtx(ctx, r, func(int, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		tr.Finish(nil)

		var frags, loads int64
		var spanSeeks, spanPages, spanHits int64
		for _, sp := range tr.Spans() {
			switch sp.Kind {
			case trace.KindFragment:
				frags++
				spanSeeks += attrVal(t, sp, "seeks")
				spanPages += attrVal(t, sp, "pages_read")
				spanHits += attrVal(t, sp, "pool_hits")
			case trace.KindPageLoad:
				loads++
			}
		}
		wantFrags := int64(0)
		next := int64(-1)
		for _, pos := range fs.layout.order.Positions(r) {
			if lo := fs.layout.start[pos]; lo != next {
				wantFrags++
			}
			next = fs.layout.start[pos+1]
		}
		if frags != wantFrags {
			t.Errorf("region %v: %d fragment spans, want %d byte-contiguous cell runs", r, frags, wantFrags)
		}
		if spanSeeks != tally.Seeks() || spanSeeks != pred.Seeks {
			t.Errorf("region %v: fragment seek attrs sum to %d, tally %d, analytic %d",
				r, spanSeeks, tally.Seeks(), pred.Seeks)
		}
		if m := tally.Stats().Misses; spanPages != m || spanPages != pred.Pages {
			t.Errorf("region %v: fragment pages_read sum to %d, tally misses %d, analytic pages %d",
				r, spanPages, m, pred.Pages)
		}
		if loads != pred.Pages {
			t.Errorf("region %v: %d page_load spans, want one per analytic page %d", r, loads, pred.Pages)
		}
		if spanHits != tally.Stats().Hits {
			t.Errorf("region %v: fragment pool_hits sum to %d, tally hits %d", r, spanHits, tally.Stats().Hits)
		}
		fs.Close()
	}
}

// TestTracedMigrationRecordsCopyAndFlush: a migration under a trace leaves
// a copy span (with the cell count) and a flush span behind.
func TestTracedMigrationRecordsCopyAndFlush(t *testing.T) {
	fs, _, path, _ := buildFileStore(t, 64)
	defer fs.Close()
	rec := trace.NewRecorder(trace.Config{SampleEvery: 1})
	ctx, tr := rec.Start(context.Background(), "migrate")
	dst, err := MigrateCtx(ctx, fs, path+".new", fs.Layout().Order(), 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	tr.Finish(nil)
	var copies, flushes int
	for _, sp := range tr.Spans() {
		switch sp.Kind {
		case trace.KindCopy:
			copies++
			if got := attrVal(t, sp, "cells"); got != int64(fs.Layout().Order().Len()) {
				t.Errorf("copy span cells = %d, want %d", got, fs.Layout().Order().Len())
			}
		case trace.KindFlush:
			flushes++
		}
	}
	if copies != 1 || flushes != 1 {
		t.Errorf("migration trace has %d copy and %d flush spans, want 1 and 1", copies, flushes)
	}
}

// TestUntracedReadPathZeroAlloc is the acceptance gate for the tracing
// hooks: with no trace on the context, a warm pool read allocates nothing.
// The assertion runs the pool's hot path under testing.Benchmark and
// requires zero allocs/op, so any future hook that allocates on the
// disabled path fails this test rather than a profile review.
func TestUntracedReadPathZeroAlloc(t *testing.T) {
	fs, _, _, _ := buildFileStore(t, 64)
	defer fs.Close()
	all := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	// Warm every page so the benchmark measures pure hits.
	if err := fs.Scan(all, func(int, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]byte, 64)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fs.pool.ReadAtCtx(ctx, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	if a := res.AllocsPerOp(); a != 0 {
		t.Errorf("untraced warm read allocates %d objects/op, want 0", a)
	}
}
