package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// VerifyProblem is one defect found by a scrub: where it is on disk and, if
// the page holds cell data, which cell and grid coordinates it belongs to.
type VerifyProblem struct {
	Page   int64 // physical page index; -1 when the problem is not page-local
	Cell   int   // first cell with data on that page; -1 when none
	Coords []int // the cell's leaf coordinates, nil when Cell is -1
	Err    error
}

func (p VerifyProblem) String() string {
	loc := "catalog state"
	if p.Page >= 0 {
		loc = fmt.Sprintf("page %d", p.Page)
		if p.Cell >= 0 {
			loc += fmt.Sprintf(" (cell %d @ %v)", p.Cell, p.Coords)
		}
	}
	return fmt.Sprintf("%s: %v", loc, p.Err)
}

// VerifyReport is the outcome of a scrub pass.
type VerifyReport struct {
	Pages    int64 // pages scanned
	Records  int64 // records whose framing was walked
	Problems []VerifyProblem
}

// OK reports whether the scrub found nothing wrong.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// Err returns nil for a clean report, else an error summarizing every
// problem (matching ErrCorruptPage when any problem does).
func (r *VerifyReport) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Problems))
	corrupt := false
	for i, p := range r.Problems {
		msgs[i] = p.String()
		if errors.Is(p.Err, ErrCorruptPage) {
			corrupt = true
		}
	}
	err := fmt.Errorf("storage: verify found %d problem(s): %s", len(r.Problems), strings.Join(msgs, "; "))
	if corrupt {
		return fmt.Errorf("%w: %w", ErrCorruptPage, err)
	}
	return err
}

// Verify scrubs the store; it is VerifyCtx without a deadline.
func (fs *FileStore) Verify() (*VerifyReport, error) {
	return fs.VerifyCtx(context.Background())
}

// VerifyCtx scrubs the store: it flushes the pool, re-reads every physical
// page through the checksum layer (bypassing the pool cache, so cached
// frames cannot mask on-disk damage), and then walks every cell's record
// framing against its fill state. It returns a report of everything found;
// the error is non-nil only for I/O failures (or cancellation) that
// stopped the scrub itself, not for corruption, which lands in the report.
// The context is checked between pages, so a cancelled scrub stops
// promptly; the scrub runs under the store's read lock and concurrently
// with queries, and returns ErrClosed on a closed store.
func (fs *FileStore) VerifyCtx(ctx context.Context) (*VerifyReport, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return nil, ErrClosed
	}
	if err := fs.pool.FlushCtx(ctx); err != nil {
		return nil, fmt.Errorf("storage: verify flush: %w", err)
	}
	rep := &VerifyReport{}
	u := fs.layout.usable()
	buf := make([]byte, u)
	corrupt := make(map[int64]bool)
	for p := int64(0); p < fs.layout.TotalPages(); p++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Pages++
		err := fs.file.ReadPage(p, buf)
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCorruptPage) {
			corrupt[p] = true
			rep.Problems = append(rep.Problems, fs.problemAt(p, err))
			continue
		}
		return rep, err
	}
	// Fill invariants and record framing, cell by cell.
	for pos := 0; pos < fs.layout.order.Len(); pos++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		lo, hi := fs.layout.start[pos], fs.layout.start[pos+1]
		filled := fs.fill[pos]
		cell := fs.layout.order.CellAt(pos)
		if filled < 0 || lo+filled > hi {
			rep.Problems = append(rep.Problems, VerifyProblem{
				Page: -1, Cell: cell, Coords: fs.layout.order.Coords(cell, make([]int, len(fs.layout.order.Shape()))),
				Err: fmt.Errorf("cell %d fill %d outside its %d reserved bytes", cell, filled, hi-lo),
			})
			continue
		}
		if filled == 0 {
			continue
		}
		if pagesTouchCorrupt(lo, lo+filled, u, corrupt) {
			continue // already reported as a page problem
		}
		data := make([]byte, filled)
		if err := fs.readFileRange(data, lo); err != nil {
			return rep, err
		}
		off := int64(0)
		ok := true
		for off < filled {
			if filled-off < 4 {
				ok = false
				break
			}
			n := int64(binary.LittleEndian.Uint32(data[off:]))
			off += 4
			if off+n > filled {
				ok = false
				break
			}
			off += n
			rep.Records++
		}
		if !ok {
			rep.Problems = append(rep.Problems, VerifyProblem{
				Page: (lo + off) / u, Cell: cell, Coords: fs.layout.order.Coords(cell, make([]int, len(fs.layout.order.Shape()))),
				Err: fmt.Errorf("record framing broken at byte %d of cell %d's fill", off, cell),
			})
		}
	}
	return rep, nil
}

// problemAt annotates a corrupt-page error with the first cell that has
// data on the page.
func (fs *FileStore) problemAt(page int64, err error) VerifyProblem {
	cell, coords := fs.cellOnPage(page)
	return VerifyProblem{Page: page, Cell: cell, Coords: coords, Err: err}
}

// cellOnPage returns the first non-empty cell whose byte range intersects
// the page, or (-1, nil) when the page holds no cell data.
func (fs *FileStore) cellOnPage(page int64) (int, []int) {
	u := fs.layout.usable()
	lo, hi := page*u, (page+1)*u
	start := fs.layout.start
	n := fs.layout.order.Len()
	pos := sort.Search(n, func(i int) bool { return start[i+1] > lo })
	for ; pos < n && start[pos] < hi; pos++ {
		if start[pos+1] > start[pos] {
			cell := fs.layout.order.CellAt(pos)
			return cell, fs.layout.order.Coords(cell, make([]int, len(fs.layout.order.Shape())))
		}
	}
	return -1, nil
}

// pagesTouchCorrupt reports whether the byte range [lo, hi) overlaps any
// page in the corrupt set.
func pagesTouchCorrupt(lo, hi, usable int64, corrupt map[int64]bool) bool {
	if len(corrupt) == 0 || hi <= lo {
		return false
	}
	for p := lo / usable; p <= (hi-1)/usable; p++ {
		if corrupt[p] {
			return true
		}
	}
	return false
}

// readFileRange reads logical bytes straight from the checksum layer,
// bypassing the pool (for scrubbing: the pool would serve cached frames).
func (fs *FileStore) readFileRange(dst []byte, off int64) error {
	u := fs.layout.usable()
	buf := make([]byte, u)
	for len(dst) > 0 {
		page := off / u
		if err := fs.file.ReadPage(page, buf); err != nil {
			return err
		}
		n := copy(dst, buf[off%u:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}
