package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// PageTrailerSize is the per-page overhead of the checksum trailer: a
// 4-byte magic and a 4-byte CRC32C over the data region. Layouts built for
// checksummed files (NewFileLayout) shrink every page's usable bytes by
// this much so analytic page counts match physical ones.
const PageTrailerSize = 8

// pageMagic marks a page whose trailer has been written ("SNK1").
const pageMagic uint32 = 0x31_4B_4E_53

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumFile guards every page of an inner PagedFile with a CRC32C
// trailer. Its logical page size is the inner page size minus
// PageTrailerSize: WritePage stamps the trailer, ReadPage verifies it and
// returns a CorruptPageError on any mismatch. A page that is entirely zero
// (as produced by CreatePageFile) is accepted as never-written, so freshly
// created files read back as zeros without a full initialization pass.
// ChecksumFile is safe for concurrent use when its inner file is: each
// operation works on pooled per-call scratch, never shared state.
type ChecksumFile struct {
	inner       PagedFile
	scratch     sync.Pool // *[]byte, one physical page each
	spanScratch sync.Pool // *[]byte, MaxSpanPages physical pages each
}

// NewChecksumFile wraps inner, whose page size must exceed the trailer.
func NewChecksumFile(inner PagedFile) (*ChecksumFile, error) {
	if inner.PageSize() <= PageTrailerSize {
		return nil, fmt.Errorf("storage: %d-byte pages cannot hold the %d-byte checksum trailer",
			inner.PageSize(), PageTrailerSize)
	}
	cf := &ChecksumFile{inner: inner}
	cf.scratch.New = func() any {
		b := make([]byte, inner.PageSize())
		return &b
	}
	cf.spanScratch.New = func() any {
		b := make([]byte, MaxSpanPages*inner.PageSize())
		return &b
	}
	return cf, nil
}

// PageSize returns the usable (data-region) bytes per page.
func (cf *ChecksumFile) PageSize() int { return cf.inner.PageSize() - PageTrailerSize }

// Pages returns the number of pages in the file.
func (cf *ChecksumFile) Pages() int64 { return cf.inner.Pages() }

// ReadPage reads and verifies one page, filling buf with its data region.
func (cf *ChecksumFile) ReadPage(page int64, buf []byte) error {
	usable := cf.PageSize()
	if len(buf) != usable {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), usable)
	}
	sp := cf.scratch.Get().(*[]byte)
	defer cf.scratch.Put(sp)
	phys := *sp
	if err := cf.inner.ReadPage(page, phys); err != nil {
		return err
	}
	return cf.verifyInto(page, phys, buf)
}

// verifyInto checks one physical page image and copies its data region into
// buf (of exactly PageSize bytes). Shared by the per-page and span read
// paths so both report identical CorruptPageError detail.
func (cf *ChecksumFile) verifyInto(page int64, phys, buf []byte) error {
	usable := cf.PageSize()
	magic := binary.LittleEndian.Uint32(phys[usable:])
	sum := binary.LittleEndian.Uint32(phys[usable+4:])
	if magic != pageMagic {
		// A never-written page is all zeros, trailer included; anything
		// else with a missing magic is damage (e.g. a torn write that only
		// reached the data region).
		if magic == 0 && sum == 0 && allZero(phys[:usable]) {
			copy(buf, phys[:usable])
			return nil
		}
		return &CorruptPageError{Page: page, Reason: fmt.Sprintf("bad page magic %#08x", magic)}
	}
	if got := crc32.Checksum(phys[:usable], castagnoli); got != sum {
		return &CorruptPageError{Page: page,
			Reason: fmt.Sprintf("checksum mismatch: stored %#08x, computed %#08x", sum, got)}
	}
	copy(buf, phys[:usable])
	return nil
}

// ReadPageSpan reads and verifies len(bufs) consecutive pages starting at
// page, scattering page+i's data region into bufs[i]. When the inner file
// can bulk-read (BulkReader — the real PageFile), the whole span is fetched
// with one positioned read into pooled scratch; otherwise it degrades to
// per-page ReadPage calls, which keeps fault injectors and per-page test
// wrappers observing exactly the reads they expect. The first verification
// failure is returned as that page's CorruptPageError.
func (cf *ChecksumFile) ReadPageSpan(page int64, bufs [][]byte) error {
	if len(bufs) == 0 {
		return nil
	}
	usable := cf.PageSize()
	br, ok := cf.inner.(BulkReader)
	if !ok || len(bufs) == 1 {
		for i, buf := range bufs {
			if err := cf.ReadPage(page+int64(i), buf); err != nil {
				return err
			}
		}
		return nil
	}
	for _, buf := range bufs {
		if len(buf) != usable {
			return fmt.Errorf("storage: span read buffer is %d bytes, want %d", len(buf), usable)
		}
	}
	phys := cf.inner.PageSize()
	if mr, ok := cf.inner.(MappedReader); ok {
		// Zero-copy span: verify each page straight out of the file's
		// mapping, one copy (data region into the frame) per page.
		if m := mr.MappedPages(page, int64(len(bufs))); m != nil {
			for i, buf := range bufs {
				if err := cf.verifyInto(page+int64(i), m[i*phys:(i+1)*phys], buf); err != nil {
					return err
				}
			}
			return nil
		}
	}
	need := len(bufs) * phys
	var scratch []byte
	if len(bufs) <= MaxSpanPages {
		sp := cf.spanScratch.Get().(*[]byte)
		defer cf.spanScratch.Put(sp)
		scratch = (*sp)[:need]
	} else {
		scratch = make([]byte, need) // oversized span: caller ignored MaxSpanPages
	}
	if err := br.ReadPages(page, scratch); err != nil {
		return err
	}
	for i, buf := range bufs {
		if err := cf.verifyInto(page+int64(i), scratch[i*phys:(i+1)*phys], buf); err != nil {
			return err
		}
	}
	return nil
}

// WritePage stamps the trailer and writes the full physical page.
func (cf *ChecksumFile) WritePage(page int64, buf []byte) error {
	usable := cf.PageSize()
	if len(buf) != usable {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), usable)
	}
	sp := cf.scratch.Get().(*[]byte)
	defer cf.scratch.Put(sp)
	phys := *sp
	copy(phys, buf)
	binary.LittleEndian.PutUint32(phys[usable:], pageMagic)
	binary.LittleEndian.PutUint32(phys[usable+4:], crc32.Checksum(phys[:usable], castagnoli))
	return cf.inner.WritePage(page, phys)
}

// Sync flushes the inner file.
func (cf *ChecksumFile) Sync() error { return cf.inner.Sync() }

// Close closes the inner file.
func (cf *ChecksumFile) Close() error { return cf.inner.Close() }

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
