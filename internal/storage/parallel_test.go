package storage

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/linear"
	"repro/internal/trace"
)

// buildParallelStore packs the 8×8 grid with a varied fill: some cells are
// empty, payload sizes differ per record (so records cross page
// boundaries), and every non-empty cell's reservation is exactly filled —
// the precondition for exact predicted == observed reconciliation.
func buildParallelStore(t *testing.T, frames int) (*FileStore, *linear.Order, []int64, string, float64) {
	t.Helper()
	o := concurrentOrder(t)
	n := o.Len()
	sizes := make([]int64, n)
	payloads := make([][][]byte, n)
	total := 0.0
	for c := 0; c < n; c++ {
		k := c % 4 // 0..3 records; every 4th cell empty
		for i := 0; i < k; i++ {
			p := make([]byte, 8+(c*7+i*13)%41)
			v := float64(c*100 + i)
			binary.LittleEndian.PutUint64(p, math.Float64bits(v))
			total += v
			payloads[c] = append(payloads[c], p)
			sizes[c] += FrameSize(len(p))
		}
	}
	path := filepath.Join(t.TempDir(), "par.db")
	fs, err := CreateFileStore(path, o, sizes, 64, frames)
	if err != nil {
		t.Fatal(err)
	}
	for c, ps := range payloads {
		for _, p := range ps {
			if err := fs.PutRecord(c, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs, o, sizes, path, total
}

// reopenCold closes fs and reopens the same file with an empty pool.
func reopenCold(t *testing.T, fs *FileStore, path string, o *linear.Order, sizes []int64, frames int) *FileStore {
	t.Helper()
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStore(path, o, sizes, 64, frames, loaded)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func parallelTestRegions() []linear.Region {
	return []linear.Region{
		{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}, // full grid
		{{Lo: 2, Hi: 3}, {Lo: 0, Hi: 8}}, // one row: contiguous
		{{Lo: 0, Hi: 8}, {Lo: 3, Hi: 4}}, // one column: maximally fragmented
		{{Lo: 1, Hi: 6}, {Lo: 2, Hi: 7}}, // interior block
		{{Lo: 5, Hi: 6}, {Lo: 5, Hi: 6}}, // single cell
		{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}, // single empty cell (cell 0)
	}
}

type readEvent struct {
	cell int
	rec  []byte
}

func collectReads(t *testing.T, read func(fn func(cell int, record []byte) error) error) []readEvent {
	t.Helper()
	var got []readEvent
	if err := read(func(cell int, record []byte) error {
		got = append(got, readEvent{cell, append([]byte(nil), record...)})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestParallelReadMatchesSequential: for every region and parallelism, the
// parallel read path must deliver the exact record sequence of the
// sequential path — same cells, same order, same bytes.
func TestParallelReadMatchesSequential(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 128)
	defer fs.Close()
	ctx := context.Background()
	for _, r := range parallelTestRegions() {
		want := collectReads(t, func(fn func(int, []byte) error) error {
			return fs.ReadQueryCtx(ctx, r, fn)
		})
		wantSum, _, err := fs.SumCtx(ctx, r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []ReadOptions{{Parallelism: 2}, {Parallelism: 4, Readahead: 2}, {Parallelism: 8, Readahead: 8}} {
			got := collectReads(t, func(fn func(int, []byte) error) error {
				return fs.ReadQueryOptCtx(ctx, r, opt, fn)
			})
			if len(got) != len(want) {
				t.Fatalf("region %v opt %+v: %d records, want %d", r, opt, len(got), len(want))
			}
			for i := range got {
				if got[i].cell != want[i].cell || !bytes.Equal(got[i].rec, want[i].rec) {
					t.Fatalf("region %v opt %+v: record %d = cell %d %x, want cell %d %x",
						r, opt, i, got[i].cell, got[i].rec, want[i].cell, want[i].rec)
				}
			}
			gotSum, _, err := fs.SumOptCtx(ctx, r, opt, decodeF64)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(gotSum-wantSum) > 1e-9*(1+math.Abs(wantSum)) {
				t.Errorf("region %v opt %+v: sum %v, want %v", r, opt, gotSum, wantSum)
			}
		}
	}
}

// TestParallelismOneIsSequentialPath: Parallelism <= 1 must delegate to
// the sequential methods — bit-identical sums and identical tallies.
func TestParallelismOneIsSequentialPath(t *testing.T) {
	fs, o, sizes, path, _ := buildParallelStore(t, 128)
	r := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}

	fs = reopenCold(t, fs, path, o, sizes, 128)
	seqSum, seqStats, err := fs.SumCtx(context.Background(), r, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	seqSeeks := int64(-1)
	{
		var tally PoolTally
		ctx := WithPoolTally(context.Background(), &tally)
		fs = reopenCold(t, fs, path, o, sizes, 128)
		if err := fs.ReadQueryCtx(ctx, r, func(int, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		seqSeeks = tally.Seeks()
	}

	fs = reopenCold(t, fs, path, o, sizes, 128)
	defer fs.Close()
	optSum, optStats, err := fs.SumOptCtx(context.Background(), r, ReadOptions{Parallelism: 1, Readahead: 8}, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(optSum) != math.Float64bits(seqSum) {
		t.Errorf("Parallelism=1 sum %v not bit-identical to sequential %v", optSum, seqSum)
	}
	if optStats != seqStats {
		t.Errorf("Parallelism=1 stats %+v, sequential %+v", optStats, seqStats)
	}
	pred := fs.Layout().Query(r)
	if seqSeeks != pred.Seeks {
		t.Errorf("sequential seeks %d, analytic %d", seqSeeks, pred.Seeks)
	}
}

// TestParallelRunsMatchAnalyticModel: the parallel fetch plan's seek runs
// are page-disjoint (separated by at least one full page) and — on an
// exactly-filled store — equal the analytic model's merged page ranges:
// one run per predicted seek, summing to the predicted page count.
func TestParallelRunsMatchAnalyticModel(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 128)
	defer fs.Close()
	rng := rand.New(rand.NewSource(7))
	regions := parallelTestRegions()
	for trial := 0; trial < 40; trial++ {
		r := make(linear.Region, 2)
		for d := 0; d < 2; d++ {
			lo := rng.Intn(8)
			r[d] = linear.Range{Lo: lo, Hi: lo + 1 + rng.Intn(8-lo)}
		}
		regions = append(regions, r)
	}
	for _, r := range regions {
		fs.mu.RLock()
		runs := fs.readRuns(context.Background(), r)
		fs.mu.RUnlock()
		pred := fs.Layout().Query(r)
		if int64(len(runs)) != pred.Seeks {
			t.Errorf("region %v: %d runs, analytic predicts %d seeks", r, len(runs), pred.Seeks)
		}
		var pages int64
		for i := range runs {
			if runs[i].pageHi < runs[i].pageLo || len(runs[i].cells) == 0 {
				t.Fatalf("region %v: malformed run %+v", r, runs[i])
			}
			if i > 0 && runs[i].pageLo <= runs[i-1].pageHi+1 {
				t.Errorf("region %v: runs %d and %d are not page-disjoint: [%d,%d] then [%d,%d]",
					r, i-1, i, runs[i-1].pageLo, runs[i-1].pageHi, runs[i].pageLo, runs[i].pageHi)
			}
			pages += runs[i].pageHi - runs[i].pageLo + 1
		}
		if pages != pred.Pages {
			t.Errorf("region %v: runs span %d pages, analytic predicts %d", r, pages, pred.Pages)
		}
	}
}

// TestParallelColdQueryReconcilesWithAnalytic: on a cold pool, the
// parallel path's merged tally and its fragment trace spans must equal the
// analytic prediction exactly — same pages, same seeks, one fragment span
// per seek run — just like the sequential reconciliation test.
func TestParallelColdQueryReconcilesWithAnalytic(t *testing.T) {
	for _, opt := range []ReadOptions{{Parallelism: 4}, {Parallelism: 4, Readahead: 4}, {Parallelism: 16, Readahead: 2}} {
		for _, r := range parallelTestRegions() {
			fs, o, sizes, path, _ := buildParallelStore(t, 128)
			fs = reopenCold(t, fs, path, o, sizes, 128)
			pred := fs.Layout().Query(r)

			rec := trace.NewRecorder(trace.Config{SampleEvery: 1})
			ctx, tr := rec.Start(context.Background(), "query")
			if tr == nil {
				t.Fatal("recorder did not trace")
			}
			sum, stats, err := fs.SumOptCtx(ctx, r, opt, decodeF64)
			if err != nil {
				t.Fatal(err)
			}
			tr.Finish(nil)

			var tally PoolTally
			ctx2 := WithPoolTally(context.Background(), &tally)
			if err := fs.ReadQueryCtx(ctx2, r, func(int, []byte) error { return nil }); err != nil {
				t.Fatal(err)
			}
			warmSum, _, err := fs.SumCtx(context.Background(), r, decodeF64)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sum-warmSum) > 1e-9*(1+math.Abs(warmSum)) {
				t.Errorf("opt %+v region %v: parallel sum %v, sequential %v", opt, r, sum, warmSum)
			}
			if stats.Misses != pred.Pages {
				t.Errorf("opt %+v region %v: cold misses %d, analytic pages %d", opt, r, stats.Misses, pred.Pages)
			}

			var frags, spanSeeks, spanPages int64
			for _, sp := range tr.Spans() {
				if sp.Kind == trace.KindFragment {
					frags++
					spanSeeks += attrVal(t, sp, "seeks")
					spanPages += attrVal(t, sp, "pages_read")
				}
			}
			if spanSeeks != pred.Seeks {
				t.Errorf("opt %+v region %v: fragment seek attrs sum to %d, analytic %d", opt, r, spanSeeks, pred.Seeks)
			}
			if spanPages != pred.Pages {
				t.Errorf("opt %+v region %v: fragment pages_read sum to %d, analytic %d", opt, r, spanPages, pred.Pages)
			}
			if pred.Seeks > 0 && frags != pred.Seeks {
				t.Errorf("opt %+v region %v: %d fragment spans, want one per analytic seek run %d", opt, r, frags, pred.Seeks)
			}
			fs.Close()
		}
	}
}

// slowCountFile wraps a paged file, counting physical reads per page and
// optionally holding every read on a gate until it is closed.
type slowCountFile struct {
	PagedFile
	gate    chan struct{}
	mu      sync.Mutex
	perPage map[int64]int
	reads   atomic.Int64
}

func (f *slowCountFile) ReadPage(page int64, buf []byte) error {
	f.reads.Add(1)
	f.mu.Lock()
	if f.perPage == nil {
		f.perPage = make(map[int64]int)
	}
	f.perPage[page]++
	f.mu.Unlock()
	if f.gate != nil {
		<-f.gate
	}
	return f.PagedFile.ReadPage(page, buf)
}

// openGated reopens the store behind a slowCountFile.
func openGated(t *testing.T, fs *FileStore, path string, o *linear.Order, sizes []int64, frames int, gate chan struct{}) (*FileStore, *slowCountFile) {
	t.Helper()
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPageFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	sf := &slowCountFile{PagedFile: pf, gate: gate}
	re, err := NewFileStoreOn(sf, o, sizes, frames, loaded)
	if err != nil {
		t.Fatal(err)
	}
	return re, sf
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParallelSingleFlightCoalesces: when a run's prefetcher and decoder —
// and two whole concurrent queries — all want the same pages at once, the
// pool's single-flight load must keep every page at exactly one physical
// read, and the per-query tallies must attribute every load exactly once.
func TestParallelSingleFlightCoalesces(t *testing.T) {
	fs, o, sizes, path, _ := buildParallelStore(t, 128)
	gate := make(chan struct{})
	fs, sf := openGated(t, fs, path, o, sizes, 128, gate)
	defer fs.Close()

	r := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	pred := fs.Layout().Query(r)
	opt := ReadOptions{Parallelism: 4, Readahead: 4}
	var stats [2]PoolStats
	var wg sync.WaitGroup
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			_, st, err := fs.SumOptCtx(context.Background(), r, opt, decodeF64)
			if err != nil {
				t.Errorf("query %d: %v", q, err)
			}
			stats[q] = st
		}(q)
	}
	// Let the first demand read block on the gate with the second query's
	// whole overlapping span pinned behind it, then release: if coalescing
	// were broken the second query would have issued duplicate loads. (The
	// sum kernel's span windows serialize loads within a query, so only one
	// read can be in flight here — both queries fight over the same pages.)
	waitFor(t, "blocked page loads", func() bool { return sf.reads.Load() >= 1 })
	close(gate)
	wg.Wait()

	sf.mu.Lock()
	for page, n := range sf.perPage {
		if n != 1 {
			t.Errorf("page %d physically read %d times, want 1 (single-flight broken)", page, n)
		}
	}
	distinct := int64(len(sf.perPage))
	sf.mu.Unlock()
	if distinct != pred.Pages {
		t.Errorf("%d distinct pages read, analytic predicts %d", distinct, pred.Pages)
	}
	if got := stats[0].Misses + stats[1].Misses; got != sf.reads.Load() {
		t.Errorf("tallies attribute %d misses, file saw %d reads", got, sf.reads.Load())
	}
	for q, st := range stats {
		if st.Misses+st.SingleFlightWaits+st.Hits < pred.Pages {
			t.Errorf("query %d accounts for %d page accesses (miss+wait+hit), needs >= %d", q, st.Misses+st.SingleFlightWaits+st.Hits, pred.Pages)
		}
	}
}

// TestParallelCancelStopsSiblings: cancelling a query's context while its
// parallel fragment reads are stuck in the file must stop the sibling
// workers promptly — the query returns Canceled, no loads remain in
// flight after it returns, and most of the scan never happened.
func TestParallelCancelStopsSiblings(t *testing.T) {
	fs, o, sizes, path, _ := buildParallelStore(t, 128)
	gate := make(chan struct{})
	fs, sf := openGated(t, fs, path, o, sizes, 128, gate)
	defer fs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	// A column region fragments into one seek run per row, so several
	// workers issue page loads at once.
	go func() {
		_, _, err := fs.SumOptCtx(ctx, linear.Region{{Lo: 0, Hi: 8}, {Lo: 3, Hi: 4}},
			ReadOptions{Parallelism: 4}, decodeF64)
		errc <- err
	}()
	waitFor(t, "workers blocked in page loads", func() bool { return sf.reads.Load() >= 2 })
	cancel()
	close(gate)
	var err error
	select {
	case err = <-errc:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	settled := sf.reads.Load()
	time.Sleep(50 * time.Millisecond)
	if now := sf.reads.Load(); now != settled {
		t.Errorf("stray page loads after the query returned: %d -> %d", settled, now)
	}
	if total := fs.Layout().TotalPages(); settled >= total/2 {
		t.Errorf("%d of %d pages read despite early cancel", settled, total)
	}
}

// TestParallelErrorIsFirstInRunOrder: a failing page surfaces as the same
// deterministic error regardless of which worker hits it first, and the
// error matches the sequential path's.
func TestParallelReadErrorsMatchSequential(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 128)
	defer fs.Close()
	// Corrupt cell 13's record framing: an absurd length prefix makes the
	// record overrun the cell.
	pos := fs.layout.order.PosOf(13)
	if err := fs.pool.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, fs.layout.start[pos]); err != nil {
		t.Fatal(err)
	}
	r := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	_, _, seqErr := fs.SumCtx(context.Background(), r, decodeF64)
	if seqErr == nil {
		t.Fatal("sequential path missed the corrupt framing")
	}
	for _, opt := range []ReadOptions{{Parallelism: 4}, {Parallelism: 8, Readahead: 4}} {
		_, _, parErr := fs.SumOptCtx(context.Background(), r, opt, decodeF64)
		if parErr == nil || parErr.Error() != seqErr.Error() {
			t.Errorf("opt %+v: parallel err %v, sequential %v", opt, parErr, seqErr)
		}
		rdErr := fs.ReadQueryOptCtx(context.Background(), r, opt, func(int, []byte) error { return nil })
		if rdErr == nil || rdErr.Error() != seqErr.Error() {
			t.Errorf("opt %+v: parallel read err %v, sequential %v", opt, rdErr, seqErr)
		}
	}
}

// TestParallelClosedStore: both parallel entry points fail with ErrClosed
// after Close, like their sequential counterparts.
func TestParallelClosedStore(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 16)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	r := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	if err := fs.ReadQueryOptCtx(context.Background(), r, ReadOptions{Parallelism: 4}, func(int, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadQueryOptCtx err = %v, want ErrClosed", err)
	}
	if _, _, err := fs.SumOptCtx(context.Background(), r, ReadOptions{Parallelism: 4}, decodeF64); !errors.Is(err, ErrClosed) {
		t.Errorf("SumOptCtx err = %v, want ErrClosed", err)
	}
}

// TestSumRunKernelZeroAlloc: the batched decode kernel must not allocate
// in steady state on a warm pool.
func TestSumRunKernelZeroAlloc(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 128)
	defer fs.Close()
	r := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	if _, _, err := fs.Sum(r, decodeF64); err != nil { // warm the pool
		t.Fatal(err)
	}
	fs.mu.RLock()
	runs := fs.readRuns(context.Background(), r)
	fs.mu.RUnlock()
	if len(runs) == 0 {
		t.Fatal("no runs")
	}
	ctx := context.Background()
	pr := &runProgress{}
	sc := &runScratch{}
	for _, window := range []int{1, 4} {
		if _, err := fs.sumRun(ctx, &runs[0], pr, nil, decodeF64, sc, window); err != nil { // size the scratch buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			for i := range runs {
				if _, err := fs.sumRun(ctx, &runs[i], pr, nil, decodeF64, sc, window); err != nil {
					t.Fatal(err)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("sum kernel (window %d) allocates %v times per warm query, want 0", window, allocs)
		}
	}
}

// TestRecordWalkerMatchesWalkRecords feeds the incremental walker the same
// framed cells as walkRecords, split at every possible window boundary,
// and requires identical decoded streams and identical errors — including
// zero-length records, partial headers, and truncated records.
func TestRecordWalkerMatchesWalkRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		// Random framing, sometimes deliberately damaged.
		var buf []byte
		var want []float64
		for r := 0; r < rng.Intn(5); r++ {
			n := rng.Intn(20)
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(n))
			buf = append(buf, hdr[:]...)
			p := make([]byte, n)
			if n >= 8 {
				v := float64(rng.Intn(1000))
				binary.LittleEndian.PutUint64(p, math.Float64bits(v))
				want = append(want, v)
			} else {
				want = append(want, float64(n))
			}
			buf = append(buf, p...)
		}
		switch rng.Intn(4) {
		case 0:
			if len(buf) > 0 {
				buf = buf[:rng.Intn(len(buf))] // truncate anywhere
			}
		case 1:
			buf = append(buf, byte(rng.Intn(3))) // trailing partial header
		}
		decode := func(rec []byte) float64 {
			if len(rec) >= 8 {
				return math.Float64frombits(binary.LittleEndian.Uint64(rec))
			}
			return float64(len(rec))
		}
		wantSum := 0.0
		wantErr := walkRecords(5, buf, func(_ int, rec []byte) error {
			wantSum += decode(rec)
			return nil
		})
		// Feed the same bytes in random windows.
		var w recordWalker
		w.begin(5)
		gotSum := 0.0
		rest := buf
		var gotErr error
		for len(rest) > 0 && gotErr == nil {
			k := 1 + rng.Intn(len(rest))
			gotErr = w.feed(rest[:k], &gotSum, decode)
			rest = rest[k:]
		}
		if gotErr == nil {
			gotErr = w.finish()
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d buf %x: walker err %v, walkRecords err %v", trial, buf, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("trial %d buf %x: walker err %q, walkRecords err %q", trial, buf, gotErr, wantErr)
			}
			continue
		}
		if gotSum != wantSum {
			t.Fatalf("trial %d buf %x: walker sum %v, walkRecords sum %v", trial, buf, gotSum, wantSum)
		}
	}
}

// TestParallelInflightGaugeSettles: the inflight gauge rises while
// fragments are being fetched and returns to zero after.
func TestParallelInflightGaugeSettles(t *testing.T) {
	fs, o, sizes, path, _ := buildParallelStore(t, 128)
	gate := make(chan struct{})
	fs, sf := openGated(t, fs, path, o, sizes, 128, gate)
	defer fs.Close()
	var peak atomic.Int64
	fs.SetFragmentObserver(func(pages int64, seconds float64) {
		if pages < 0 || seconds < 0 {
			t.Errorf("observer got pages=%d seconds=%v", pages, seconds)
		}
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := fs.SumOptCtx(context.Background(), linear.Region{{Lo: 0, Hi: 8}, {Lo: 3, Hi: 4}},
			ReadOptions{Parallelism: 4}, decodeF64)
		if err != nil {
			t.Errorf("SumOptCtx: %v", err)
		}
	}()
	waitFor(t, "inflight fragments", func() bool {
		if v := fs.ParallelInflight(); v > peak.Load() {
			peak.Store(v)
		}
		return peak.Load() > 0 && sf.reads.Load() >= 2
	})
	close(gate)
	<-done
	if got := fs.ParallelInflight(); got != 0 {
		t.Errorf("inflight gauge = %d after queries drained, want 0", got)
	}
	if peak.Load() < 1 {
		t.Errorf("inflight gauge never rose above 0")
	}
}

// TestReadRunsEmptyRegion: a region of only-empty cells yields no runs and
// the parallel paths return immediately.
func TestParallelEmptyRegion(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 16)
	defer fs.Close()
	r := linear.Region{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}} // cell 0 is empty
	calls := 0
	if err := fs.ReadQueryOptCtx(context.Background(), r, ReadOptions{Parallelism: 4}, func(int, []byte) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("%d records from an empty region", calls)
	}
	sum, stats, err := fs.SumOptCtx(context.Background(), r, ReadOptions{Parallelism: 4}, decodeF64)
	if err != nil || sum != 0 {
		t.Errorf("empty region sum = %v, err %v", sum, err)
	}
	if stats.Misses != 0 {
		t.Errorf("empty region touched %d pages", stats.Misses)
	}
}

// TestPoolResetColdReload: BufferPool.Reset must flush dirty frames, drop
// everything, and leave the next pass genuinely cold — the same misses a
// fresh pool would take — while the store (and its prepared plans) lives on.
func TestPoolResetColdReload(t *testing.T) {
	fs, _, _, _, total := buildParallelStore(t, 128)
	defer fs.Close()
	ctx := context.Background()
	full := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}

	// The load left every touched page dirty in the pool; Reset must write
	// them back before dropping the frames, or the sums below read zeros.
	if err := fs.Pool().Reset(ctx); err != nil {
		t.Fatal(err)
	}

	sum1, st1, err := fs.SumCtx(ctx, full, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != total {
		t.Fatalf("post-reset sum = %v, want %v", sum1, total)
	}
	if st1.Misses == 0 {
		t.Fatal("cold pass took no misses")
	}
	_, warm, err := fs.SumCtx(ctx, full, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Misses != 0 {
		t.Fatalf("warm pass took %d misses, want 0", warm.Misses)
	}
	if err := fs.Pool().Reset(ctx); err != nil {
		t.Fatal(err)
	}
	_, st2, err := fs.SumCtx(ctx, full, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Misses != st1.Misses {
		t.Fatalf("second cold pass took %d misses, want %d", st2.Misses, st1.Misses)
	}
}

// TestPoolResetRefusesPinnedFrames: Reset is a quiescent-point operation —
// with any frame pinned it must fail rather than pull pages out from under
// the pinner.
func TestPoolResetRefusesPinnedFrames(t *testing.T) {
	fs, _, _, _, _ := buildParallelStore(t, 128)
	defer fs.Close()
	ctx := context.Background()
	fr, err := fs.pool.get(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Pool().Reset(ctx); err == nil {
		t.Fatal("Reset succeeded with a pinned frame")
	}
	fs.pool.unpin(fr)
	if err := fs.Pool().Reset(ctx); err != nil {
		t.Fatalf("Reset after unpin: %v", err)
	}
}

// TestPlanCacheInvalidatedByPut: the parallel path's prepared plans embed
// fill counts, so a PutRecord between queries must invalidate them — a
// stale plan would silently drop the new record.
func TestPlanCacheInvalidatedByPut(t *testing.T) {
	o := concurrentOrder(t)
	n := o.Len()
	sizes := make([]int64, n)
	for c := range sizes {
		sizes[c] = 4 * FrameSize(8) // room for four records; we load one
	}
	path := filepath.Join(t.TempDir(), "plancache.db")
	fs, err := CreateFileStore(path, o, sizes, 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	put := func(cell int, v float64) {
		p := make([]byte, 8)
		binary.LittleEndian.PutUint64(p, math.Float64bits(v))
		if err := fs.PutRecord(cell, p); err != nil {
			t.Fatal(err)
		}
	}
	want := 0.0
	for c := 0; c < n; c++ {
		put(c, float64(c))
		want += float64(c)
	}
	ctx := context.Background()
	full := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	opt := ReadOptions{Parallelism: 4, Readahead: 4}
	for pass := 0; pass < 2; pass++ { // second pass serves from the plan cache
		got, _, err := fs.SumOptCtx(ctx, full, opt, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("pass %d: sum = %v, want %v", pass, got, want)
		}
	}
	put(3, 1000) // grows cell 3's fill: every cached plan is now stale
	want += 1000
	got, _, err := fs.SumOptCtx(ctx, full, opt, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-put sum = %v, want %v (stale plan dropped the new record?)", got, want)
	}
	count := 0
	if err := fs.ReadQueryOptCtx(ctx, full, opt, func(int, []byte) error {
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != n+1 {
		t.Fatalf("post-put read saw %d records, want %d", count, n+1)
	}
}
