package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionBasicAcquireRelease(t *testing.T) {
	a, err := NewAdmission(4, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	st := a.StatsSnapshot()
	if st.InUse != 4 || st.Admitted != 2 {
		t.Errorf("stats = %+v, want InUse 4 Admitted 2", st)
	}
	a.Release(1)
	a.Release(3)
	if got := a.StatsSnapshot().InUse; got != 0 {
		t.Errorf("InUse after release = %d", got)
	}
	if _, err := NewAdmission(0, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestAdmissionQueueTimeoutReturnsOverloaded(t *testing.T) {
	a, err := NewAdmission(1, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	err = a.Acquire(ctx, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire = %v, want ErrOverloaded", err)
	}
	st := a.StatsSnapshot()
	if st.Rejected != 1 || st.QueueDepth != 0 {
		t.Errorf("stats = %+v, want Rejected 1, empty queue", st)
	}
	// After releasing, admission works again.
	a.Release(1)
	if err := a.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	a.Release(1)
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a, err := NewAdmission(1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, 1) }()
	// Wait until the goroutine is queued, then cancel it.
	for a.StatsSnapshot().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	if got := a.StatsSnapshot().Canceled; got != 1 {
		t.Errorf("Canceled = %d, want 1", got)
	}
	a.Release(1)
}

func TestAdmissionFIFOHeavyFrontBlocksLight(t *testing.T) {
	a, err := NewAdmission(4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Acquire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // heavy waiter enqueues first
		defer wg.Done()
		if err := a.Acquire(ctx, 4); err != nil {
			t.Error(err)
			return
		}
		order <- 4
		a.Release(4)
	}()
	for a.StatsSnapshot().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() { // a light query behind it; 1 weight is free but FIFO holds it back
		defer wg.Done()
		if err := a.Acquire(ctx, 1); err != nil {
			t.Error(err)
			return
		}
		order <- 1
		a.Release(1)
	}()
	for a.StatsSnapshot().QueueDepth < 2 {
		time.Sleep(time.Millisecond)
	}
	a.Release(3)
	wg.Wait()
	if first := <-order; first != 4 {
		t.Errorf("first admitted weight = %d, want the heavy front waiter", first)
	}
}

func TestAdmissionClampsOversizedWeight(t *testing.T) {
	a, err := NewAdmission(2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// A query heavier than the whole budget runs alone instead of deadlocking.
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if got := a.StatsSnapshot().InUse; got != 2 {
		t.Errorf("InUse = %d, want clamped 2", got)
	}
	a.Release(100)
	if got := a.StatsSnapshot().InUse; got != 0 {
		t.Errorf("InUse after release = %d, want 0", got)
	}
}

func TestAdmissionExpiredContext(t *testing.T) {
	a, err := NewAdmission(1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire with dead ctx = %v", err)
	}
	if got := a.StatsSnapshot().InUse; got != 0 {
		t.Errorf("InUse = %d after rejected acquire", got)
	}
}
