package storage

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linear"
)

// buildStore packs a 4×4 grid with one float64 measure per record and a
// varying number of records per cell.
func buildStore(t *testing.T, recsPerCell func(cell int) int) (*Store, [][]float64) {
	t.Helper()
	o := rowMajor4x4(t)
	values := make([][]float64, o.Len())
	bytes := make([]int64, o.Len())
	rng := rand.New(rand.NewSource(12))
	for c := range values {
		n := recsPerCell(c)
		values[c] = make([]float64, n)
		for i := range values[c] {
			values[c][i] = float64(rng.Intn(100))
		}
		bytes[c] = int64(n) * FrameSize(8)
	}
	st, err := NewStore(o, bytes, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c, vs := range values {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if err := st.PutRecord(c, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st, values
}

func decodeF64(rec []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(rec))
}

func TestStoreSumMatchesNaive(t *testing.T) {
	st, values := buildStore(t, func(cell int) int { return 1 + cell%3 })
	o := st.Layout().Order()
	rng := rand.New(rand.NewSource(5))
	coords := make([]int, 2)
	for trial := 0; trial < 60; trial++ {
		r := make(linear.Region, 2)
		for d, n := range o.Shape() {
			lo := rng.Intn(n)
			r[d] = linear.Range{Lo: lo, Hi: lo + 1 + rng.Intn(n-lo)}
		}
		got, _, err := st.Sum(r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for c := range values {
			o.Coords(c, coords)
			if r.Contains(coords) {
				for _, v := range values[c] {
					want += v
				}
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("region %v: Sum = %v, want %v", r, got, want)
		}
	}
}

func TestStoreIOMatchesLayoutQuery(t *testing.T) {
	st, _ := buildStore(t, func(cell int) int { return 2 })
	r := linear.Region{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}}
	predicted := st.Layout().Query(r)
	_, io, err := st.Sum(r, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if io.Pages != predicted.Pages || io.Seeks != predicted.Seeks {
		t.Errorf("charged I/O (%d pages, %d seeks) ≠ predicted (%d, %d)",
			io.Pages, io.Seeks, predicted.Pages, predicted.Seeks)
	}
	if got := st.IOStats(); got.Pages != predicted.Pages {
		t.Errorf("cumulative pages = %d, want %d", got.Pages, predicted.Pages)
	}
	st.ResetIO()
	if got := st.IOStats(); got.Pages != 0 || got.Seeks != 0 {
		t.Error("ResetIO did not clear counters")
	}
}

func TestStoreEmptyCells(t *testing.T) {
	st, values := buildStore(t, func(cell int) int {
		if cell%4 == 0 {
			return 0
		}
		return 1
	})
	got, _, err := st.Sum(linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, vs := range values {
		for _, v := range vs {
			want += v
		}
	}
	if got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestStorePutOverflow(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := make([]int64, o.Len())
	bytes[0] = FrameSize(8)
	st, err := NewStore(o, bytes, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 8)
	if err := st.PutRecord(0, rec); err != nil {
		t.Fatal(err)
	}
	if err := st.PutRecord(0, rec); err == nil {
		t.Error("second record should overflow the cell's reservation")
	}
	if err := st.PutRecord(1, rec); err == nil {
		t.Error("record in a zero-capacity cell should fail")
	}
}

func TestScanErrorPropagation(t *testing.T) {
	st, _ := buildStore(t, func(cell int) int { return 1 })
	calls := 0
	err := st.Scan(linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, func(cell int, rec []byte) error {
		calls++
		if calls == 3 {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Errorf("err = %v, want errStop", err)
	}
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
}

var errStop = &scanTestError{}

type scanTestError struct{}

func (*scanTestError) Error() string { return "stop" }

func TestVariableLengthRecords(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := make([]int64, o.Len())
	payloads := [][]byte{[]byte("a"), []byte("longer record"), []byte("xx")}
	var reserve int64
	for _, p := range payloads {
		reserve += FrameSize(len(p))
	}
	bytes[5] = reserve
	st, err := NewStore(o, bytes, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := st.PutRecord(5, p); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	coords := make([]int, 2)
	o.Coords(5, coords)
	r := linear.Region{{Lo: coords[0], Hi: coords[0] + 1}, {Lo: coords[1], Hi: coords[1] + 1}}
	if err := st.Scan(r, func(cell int, rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("scanned %d records, want %d", len(got), len(payloads))
	}
	for i := range got {
		if string(got[i]) != string(payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}
