package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/linear"
)

// parityFixture builds a loaded file store with an attached parity sidecar
// and returns it plus its paths and a snapshot of every record (ground
// truth for byte-exact repair checks).
func parityFixture(t *testing.T, pageSize, groupSize int) (*FileStore, string, map[int][]string) {
	t.Helper()
	o := testOrder(t)
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = 4 * FrameSize(11)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.db")
	fs, err := CreateFileStore(path, o, bytesPerCell, pageSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	truth := make(map[int][]string)
	for c := 0; c < o.Len(); c++ {
		for r := 0; r < 4; r++ {
			rec := fmt.Sprintf("cell%03d-r%02d", c, r)
			if len(rec) != 11 {
				t.Fatalf("fixture record %q is %d bytes, want 11", rec, len(rec))
			}
			if err := fs.PutRecord(c, []byte(rec)); err != nil {
				t.Fatal(err)
			}
			truth[c] = append(truth[c], rec)
		}
	}
	if err := fs.WriteParity(ParityPath(path), groupSize); err != nil {
		t.Fatal(err)
	}
	return fs, path, truth
}

// testOrder returns a small 4×6 row-major order shared by the parity tests.
func testOrder(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// corruptOnDisk flips one bit in the given physical page of the store file,
// underneath the open FileStore.
func corruptOnDisk(t *testing.T, path string, pageSize int, page int64, bit int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	off := page*int64(pageSize) + int64(bit/8)
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, off); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(one, off); err != nil {
		t.Fatal(err)
	}
}

// assertTruth scans the full grid and checks every record byte-exactly
// against the fixture's ground truth.
func assertTruth(t *testing.T, fs *FileStore, truth map[int][]string) {
	t.Helper()
	got := make(map[int][]string)
	full := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 6}}
	if err := fs.Scan(full, func(cell int, record []byte) error {
		got[cell] = append(got[cell], string(record))
		return nil
	}); err != nil {
		t.Fatalf("post-repair scan: %v", err)
	}
	for c, want := range truth {
		if len(got[c]) != len(want) {
			t.Fatalf("cell %d has %d records, want %d", c, len(got[c]), len(want))
		}
		for i := range want {
			if got[c][i] != want[i] {
				t.Errorf("cell %d record %d = %q, want %q", c, i, got[c][i], want[i])
			}
		}
	}
}

// TestParityRepairEveryPageSingleFault corrupts every physical page index
// in turn (one bit each, different bit positions) and asserts RepairPage
// restores the store byte-exactly, verified by a clean scrub and a
// ground-truth scan. This is the satellite's single-fault sweep.
func TestParityRepairEveryPageSingleFault(t *testing.T) {
	const pageSize = 64
	fs, path, truth := parityFixture(t, pageSize, 4)
	total := fs.Layout().TotalPages()
	if total < 8 {
		t.Fatalf("fixture spans only %d pages; want enough for several parity groups", total)
	}
	for p := int64(0); p < total; p++ {
		bit := int(7+13*p) % (pageSize * 8)
		corruptOnDisk(t, path, pageSize, p, bit)
		if err := fs.CheckPage(p); !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("page %d after bit flip: CheckPage = %v, want ErrCorruptPage", p, err)
		}
		if err := fs.RepairPage(p); err != nil {
			t.Fatalf("RepairPage(%d) = %v, want success", p, err)
		}
		if err := fs.CheckPage(p); err != nil {
			t.Fatalf("page %d after repair: CheckPage = %v, want clean", p, err)
		}
	}
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-repair scrub found %d problem(s): %v", len(rep.Problems), rep.Err())
	}
	assertTruth(t, fs, truth)
}

// TestParityRepairDoubleFaultUnrepairable corrupts two pages of the same
// parity group for every group and asserts the typed ErrUnrepairable with
// both damage coordinates — then repairs groups one-page-at-a-time is NOT
// possible, but single faults in *different* groups still heal.
func TestParityRepairDoubleFaultUnrepairable(t *testing.T) {
	const pageSize = 64
	const group = 4
	fs, path, truth := parityFixture(t, pageSize, group)
	total := fs.Layout().TotalPages()
	groups := (total + group - 1) / group
	for g := int64(0); g < groups; g++ {
		p0 := g * group
		p1 := p0 + 1
		if p1 >= total {
			continue // last group too small for a double fault
		}
		corruptOnDisk(t, path, pageSize, p0, 3)
		corruptOnDisk(t, path, pageSize, p1, 9)
		err := fs.RepairPage(p0)
		if !errors.Is(err, ErrUnrepairable) {
			t.Fatalf("group %d double fault: RepairPage = %v, want ErrUnrepairable", g, err)
		}
		var ue *UnrepairableError
		if !errors.As(err, &ue) {
			t.Fatalf("group %d: error %v carries no UnrepairableError", g, err)
		}
		if ue.Group != g || len(ue.BadPages) != 2 || ue.BadPages[0] != p0 || ue.BadPages[1] != p1 {
			t.Errorf("group %d coordinates = %+v, want group %d bad pages [%d %d]", g, ue, g, p0, p1)
		}
		if ue.Cell < 0 || ue.Coords == nil {
			t.Errorf("group %d: unrepairable error lost its cell coordinates: %+v", g, ue)
		}
		// Heal the group out-of-band (restore one page from the pristine
		// sibling content is impossible here, so un-flip the bits) and
		// confirm parity repair of the remaining single fault works.
		corruptOnDisk(t, path, pageSize, p1, 9) // un-flip: XOR is its own inverse
		if err := fs.RepairPage(p0); err != nil {
			t.Fatalf("group %d single fault after un-flip: RepairPage = %v", g, err)
		}
	}
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-repair scrub found problems: %v", rep.Err())
	}
	assertTruth(t, fs, truth)
}

// TestParityRepairParityPageDamage: a damaged parity page makes its group
// unrepairable (typed), but WriteParity rebuilds the sidecar from clean
// data and repair works again.
func TestParityRepairParityPageDamage(t *testing.T) {
	const pageSize = 64
	fs, path, _ := parityFixture(t, pageSize, 4)
	// Damage parity page of group 0 (sidecar page 1) and data page 0.
	corruptOnDisk(t, ParityPath(path), pageSize, 1, 5)
	corruptOnDisk(t, path, pageSize, 0, 5)
	err := fs.RepairPage(0)
	if !errors.Is(err, ErrUnrepairable) {
		t.Fatalf("RepairPage with damaged parity = %v, want ErrUnrepairable", err)
	}
	// Un-flip the data page; rebuild parity; damage data again; repair works.
	corruptOnDisk(t, path, pageSize, 0, 5)
	if err := fs.WriteParity(ParityPath(path), 4); err != nil {
		t.Fatalf("parity rebuild: %v", err)
	}
	corruptOnDisk(t, path, pageSize, 0, 5)
	if err := fs.RepairPage(0); err != nil {
		t.Fatalf("RepairPage after parity rebuild = %v, want success", err)
	}
}

// TestParityLiveAfterWrite: writes XOR-patch the sidecar in place, so
// self-healing survives ingest — parity stays usable after PutRecord and
// PutCellBytes, and a repair after the write reconstructs the *post-write*
// bytes, never resurrecting pre-write content.
func TestParityLiveAfterWrite(t *testing.T) {
	o := testOrder(t)
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = 8 * FrameSize(11)
	}
	dir := t.TempDir()
	p2 := filepath.Join(dir, "facts2.db")
	fs2, err := CreateFileStore(p2, o, bytesPerCell, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if err := fs2.PutRecord(0, []byte("cell000-r00")); err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteParity(ParityPath(p2), 4); err != nil {
		t.Fatal(err)
	}
	if err := fs2.PutRecord(0, []byte("cell000-r01")); err != nil {
		t.Fatal(err)
	}
	if err := fs2.PutCellBytes(1, FrameRecords([]byte("cell001-rXX"))); err != nil {
		t.Fatal(err)
	}
	if !fs2.HasParity() {
		t.Fatal("parity degraded by a write; the XOR patch should keep it live")
	}
	// Corrupt the written page on disk and repair it: the reconstruction
	// must contain the post-write records.
	if err := fs2.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	corruptOnDisk(t, p2, 64, 0, 13)
	if err := fs2.Pool().Reset(context.Background()); err != nil { // drop cached frames so reads see the damage
		t.Fatal(err)
	}
	if err := fs2.CheckPage(0); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("CheckPage after corruption = %v, want ErrCorruptPage", err)
	}
	if err := fs2.RepairPage(0); err != nil {
		t.Fatalf("repair after write: %v", err)
	}
	var got []string
	if err := fs2.ReadCellCtx(context.Background(), 0, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"cell000-r00", "cell000-r01"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("repaired cell 0 reads %v, want %v", got, want)
	}
	// A patch failure degrades instead of corrupting: detach simulation via
	// rebuild keeps the sidecar usable either way.
	if err := fs2.WriteParity(ParityPath(p2), 4); err != nil {
		t.Fatal(err)
	}
	if !fs2.HasParity() {
		t.Error("rebuilt parity not usable")
	}
}

// TestRepairCtxSweep: RepairCtx heals a scattered set of single faults in
// one pass and reports an unrepairable double fault without aborting.
func TestRepairCtxSweep(t *testing.T) {
	const pageSize = 64
	const group = 4
	fs, path, truth := parityFixture(t, pageSize, group)
	total := fs.Layout().TotalPages()
	if total < 2*group {
		t.Fatalf("fixture spans %d pages, want at least two groups", total)
	}
	// Single faults in group 0 and group 1; double fault in the last group.
	corruptOnDisk(t, path, pageSize, 0, 3)
	corruptOnDisk(t, path, pageSize, group+1, 4)
	last := (total - 1) / group * group
	wantFailed := false
	if last+1 < total && last >= 2*group {
		corruptOnDisk(t, path, pageSize, last, 5)
		corruptOnDisk(t, path, pageSize, last+1, 6)
		wantFailed = true
	}
	rep, err := fs.RepairCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repaired) < 2 {
		t.Errorf("sweep repaired %v, want at least pages 0 and %d", rep.Repaired, group+1)
	}
	if wantFailed {
		if len(rep.Failed) != 2 {
			t.Fatalf("sweep failed list = %v, want both halves of the double fault", rep.Failed)
		}
		for _, p := range rep.Failed {
			if !errors.Is(p.Err, ErrUnrepairable) {
				t.Errorf("failed entry %v is not typed ErrUnrepairable", p)
			}
		}
		// Un-flip and re-sweep: everything must converge clean.
		corruptOnDisk(t, path, pageSize, last, 5)
		corruptOnDisk(t, path, pageSize, last+1, 6)
		rep, err = fs.RepairCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("second sweep still failing: %v", rep.Failed)
		}
	}
	vrep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !vrep.OK() {
		t.Fatalf("post-sweep scrub: %v", vrep.Err())
	}
	assertTruth(t, fs, truth)
}

// TestMigrateRepairsCorruptSource: a corrupt page in the source store no
// longer strands a migration — MigrateCtx repairs it from the parity
// sidecar, retries the cell, and the new generation carries the complete,
// correct data.
func TestMigrateRepairsCorruptSource(t *testing.T) {
	const pageSize = 64
	fs, path, truth := parityFixture(t, pageSize, 4)
	corruptOnDisk(t, path, pageSize, 2, 11)
	corruptOnDisk(t, path, pageSize, 9, 3)
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	newOrder, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(t.TempDir(), "migrated.db")
	dst, err := MigrateCtx(context.Background(), fs, newPath, newOrder, 8, nil)
	if err != nil {
		t.Fatalf("MigrateCtx with repairable source corruption = %v, want success", err)
	}
	defer dst.Close()
	assertTruth(t, dst, truth)
	// The source healed as a side effect.
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("source still corrupt after migrate-time repair: %v", rep.Err())
	}
}

// TestMigrateUnrepairableSourceFails: a double fault in the source group
// aborts the migration with a typed ErrUnrepairable and no partial output.
func TestMigrateUnrepairableSourceFails(t *testing.T) {
	const pageSize = 64
	fs, path, _ := parityFixture(t, pageSize, 4)
	corruptOnDisk(t, path, pageSize, 0, 3)
	corruptOnDisk(t, path, pageSize, 1, 9)
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	newOrder, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(t.TempDir(), "migrated.db")
	if _, err := MigrateCtx(context.Background(), fs, newPath, newOrder, 8, nil); !errors.Is(err, ErrUnrepairable) {
		t.Fatalf("MigrateCtx with double fault = %v, want ErrUnrepairable", err)
	}
	if _, err := os.Stat(newPath); !os.IsNotExist(err) {
		t.Error("failed migration left a partial output file behind")
	}
}

// TestRepairWithoutParityIsTyped: repair on a store that never attached a
// sidecar fails with the typed ErrNoParity.
func TestRepairWithoutParityIsTyped(t *testing.T) {
	o := testOrder(t)
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = FrameSize(11)
	}
	dir := t.TempDir()
	fs, err := CreateFileStore(filepath.Join(dir, "f.db"), o, bytesPerCell, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.RepairPage(0); !errors.Is(err, ErrNoParity) {
		t.Errorf("RepairPage without sidecar = %v, want ErrNoParity", err)
	}
}

// TestAttachParityValidatesGeometry: a sidecar from a different store (or
// page size) is rejected at attach time.
func TestAttachParityValidatesGeometry(t *testing.T) {
	fs, path, _ := parityFixture(t, 64, 4)
	// Build a second, smaller store and try to attach the first's sidecar.
	s := hierarchy.MustSchema(hierarchy.Binary("A", 1), hierarchy.Binary("B", 1))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	bytesPerCell := []int64{64, 64, 64, 64}
	dir := t.TempDir()
	fs2, err := CreateFileStore(filepath.Join(dir, "small.db"), o, bytesPerCell, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if err := fs2.AttachParity(ParityPath(path)); err == nil {
		t.Error("attach of a mismatched sidecar succeeded, want geometry error")
	}
	_ = fs
}
