// Package storage simulates the disk layer of Section 6.1: records are
// packed along a chosen linearization into fixed-size pages, splitting cells
// (but never records) across page boundaries, and queries are measured by
// the pages they touch and the seeks (maximal runs of consecutive pages)
// they need.
package storage

import (
	"fmt"

	"repro/internal/linear"
)

// DefaultPageSize is the paper's 8 KB page.
const DefaultPageSize = 8192

// Layout is a packed disk layout: every grid cell owns a contiguous byte
// range, in linearization order. Layouts built for checksummed files carry
// a per-page trailer, shrinking the usable bytes of every page so the
// analytic page counts stay consistent with the physical file.
type Layout struct {
	order    *linear.Order
	pageSize int64
	trailer  int64 // bytes per page reserved for the checksum trailer
	// start[p] is the byte offset of the cell at disk position p; start has
	// one extra entry holding the total size, so the cell at position p
	// spans [start[p], start[p+1]).
	start []int64
}

// NewLayout packs the cells of the order, where bytesPerCell[cell] is the
// payload of each cell (record count × record size; zero for empty cells).
// Every page byte is usable — the paper's analytic model.
func NewLayout(o *linear.Order, bytesPerCell []int64, pageSize int64) (*Layout, error) {
	return newLayout(o, bytesPerCell, pageSize, 0)
}

// NewFileLayout packs cells for a checksummed page file: each page gives up
// PageTrailerSize bytes to the CRC trailer, so page and seek counts match
// what the file store physically does.
func NewFileLayout(o *linear.Order, bytesPerCell []int64, pageSize int64) (*Layout, error) {
	return newLayout(o, bytesPerCell, pageSize, PageTrailerSize)
}

func newLayout(o *linear.Order, bytesPerCell []int64, pageSize, trailer int64) (*Layout, error) {
	if len(bytesPerCell) != o.Len() {
		return nil, fmt.Errorf("storage: %d cell sizes for %d cells", len(bytesPerCell), o.Len())
	}
	if pageSize <= trailer {
		return nil, fmt.Errorf("storage: page size %d must exceed the %d-byte trailer", pageSize, trailer)
	}
	l := &Layout{order: o, pageSize: pageSize, trailer: trailer, start: make([]int64, o.Len()+1)}
	var off int64
	for p := 0; p < o.Len(); p++ {
		l.start[p] = off
		b := bytesPerCell[o.CellAt(p)]
		if b < 0 {
			return nil, fmt.Errorf("storage: cell %d has negative size %d", o.CellAt(p), b)
		}
		off += b
	}
	l.start[o.Len()] = off
	return l, nil
}

// usable returns the data bytes per page (page size minus trailer).
func (l *Layout) usable() int64 { return l.pageSize - l.trailer }

// Order returns the linearization the layout was packed along.
func (l *Layout) Order() *linear.Order { return l.order }

// TotalBytes returns the packed size of the fact data.
func (l *Layout) TotalBytes() int64 { return l.start[len(l.start)-1] }

// TotalPages returns the number of pages the layout occupies, counting
// only usable (non-trailer) bytes per page.
func (l *Layout) TotalPages() int64 {
	u := l.usable()
	return (l.TotalBytes() + u - 1) / u
}

// PageSize returns the layout's physical page size in bytes.
func (l *Layout) PageSize() int64 { return l.pageSize }

// TrailerBytes returns the per-page bytes reserved for the checksum
// trailer (0 for the paper's analytic layout).
func (l *Layout) TrailerBytes() int64 { return l.trailer }

// CellCapacity returns the reserved byte capacity of one cell's extent in
// the packing — a property of the data, independent of how much is filled.
// The ingest layer sizes delta upserts and migration targets against it.
func (l *Layout) CellCapacity(cell int) int64 {
	pos := l.order.PosOf(cell)
	return l.start[pos+1] - l.start[pos]
}

// Stats measures one query's disk cost.
type Stats struct {
	Bytes     int64   // payload bytes of the selected records
	Pages     int64   // distinct pages touched
	Seeks     int64   // maximal runs of consecutive pages (non-sequential accesses)
	MinPages  int64   // ⌈Bytes/pageSize⌉: pages under perfect clustering (≥1 when Bytes>0)
	NormPages float64 // Pages / MinPages; 0 when the query selects nothing
}

// byteRun is a maximal contiguous byte interval of selected data.
type byteRun struct{ lo, hi int64 } // half-open

// Query measures the pages and seeks needed to read all records in the
// region under this layout. Empty cells occupy no bytes, so runs are merged
// across them; two byte runs landing on the same or adjacent pages are read
// with a single sequential access.
func (l *Layout) Query(r linear.Region) Stats {
	positions := l.order.Positions(r)
	var runs []byteRun
	for _, p := range positions {
		lo, hi := l.start[p], l.start[p+1]
		if lo == hi {
			continue // empty cell: no data, no seek boundary
		}
		if n := len(runs); n > 0 && runs[n-1].hi == lo {
			runs[n-1].hi = hi
			continue
		}
		runs = append(runs, byteRun{lo, hi})
	}
	var st Stats
	if len(runs) == 0 {
		return st
	}
	// Convert byte runs to inclusive page ranges and merge ranges that
	// overlap or are adjacent (consecutive pages need no seek). Logical
	// offsets map to pages by usable bytes, so trailer overhead shows up in
	// the counts exactly as it does on disk.
	u := l.usable()
	type pageRange struct{ lo, hi int64 }
	var merged []pageRange
	for _, run := range runs {
		st.Bytes += run.hi - run.lo
		pr := pageRange{run.lo / u, (run.hi - 1) / u}
		if n := len(merged); n > 0 && pr.lo <= merged[n-1].hi+1 {
			if pr.hi > merged[n-1].hi {
				merged[n-1].hi = pr.hi
			}
			continue
		}
		merged = append(merged, pr)
	}
	for _, pr := range merged {
		st.Pages += pr.hi - pr.lo + 1
	}
	st.Seeks = int64(len(merged))
	st.MinPages = (st.Bytes + u - 1) / u
	if st.MinPages > 0 {
		st.NormPages = float64(st.Pages) / float64(st.MinPages)
	}
	return st
}

// DiskModel estimates wall-clock I/O time from seek and transfer costs; the
// defaults approximate a late-1990s disk (10 ms seek, 10 MB/s transfer of
// 8 KB pages ≈ 0.8 ms/page).
type DiskModel struct {
	SeekMillis         float64
	TransferMillisPage float64
}

// DefaultDisk is the default DiskModel.
var DefaultDisk = DiskModel{SeekMillis: 10, TransferMillisPage: 0.8}

// Millis returns the modelled I/O time for a query's stats.
func (d DiskModel) Millis(s Stats) float64 {
	return d.SeekMillis*float64(s.Seeks) + d.TransferMillisPage*float64(s.Pages)
}
