// Package storage simulates the disk layer of Section 6.1: records are
// packed along a chosen linearization into fixed-size pages, splitting cells
// (but never records) across page boundaries, and queries are measured by
// the pages they touch and the seeks (maximal runs of consecutive pages)
// they need.
package storage

import (
	"fmt"

	"repro/internal/linear"
)

// DefaultPageSize is the paper's 8 KB page.
const DefaultPageSize = 8192

// Layout is a packed disk layout: every grid cell owns a contiguous byte
// range, in linearization order.
type Layout struct {
	order    *linear.Order
	pageSize int64
	// start[p] is the byte offset of the cell at disk position p; start has
	// one extra entry holding the total size, so the cell at position p
	// spans [start[p], start[p+1]).
	start []int64
}

// NewLayout packs the cells of the order, where bytesPerCell[cell] is the
// payload of each cell (record count × record size; zero for empty cells).
func NewLayout(o *linear.Order, bytesPerCell []int64, pageSize int64) (*Layout, error) {
	if len(bytesPerCell) != o.Len() {
		return nil, fmt.Errorf("storage: %d cell sizes for %d cells", len(bytesPerCell), o.Len())
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: page size %d must be positive", pageSize)
	}
	l := &Layout{order: o, pageSize: pageSize, start: make([]int64, o.Len()+1)}
	var off int64
	for p := 0; p < o.Len(); p++ {
		l.start[p] = off
		b := bytesPerCell[o.CellAt(p)]
		if b < 0 {
			return nil, fmt.Errorf("storage: cell %d has negative size %d", o.CellAt(p), b)
		}
		off += b
	}
	l.start[o.Len()] = off
	return l, nil
}

// Order returns the linearization the layout was packed along.
func (l *Layout) Order() *linear.Order { return l.order }

// TotalBytes returns the packed size of the fact data.
func (l *Layout) TotalBytes() int64 { return l.start[len(l.start)-1] }

// TotalPages returns the number of pages the layout occupies.
func (l *Layout) TotalPages() int64 {
	return (l.TotalBytes() + l.pageSize - 1) / l.pageSize
}

// PageSize returns the layout's page size in bytes.
func (l *Layout) PageSize() int64 { return l.pageSize }

// Stats measures one query's disk cost.
type Stats struct {
	Bytes     int64   // payload bytes of the selected records
	Pages     int64   // distinct pages touched
	Seeks     int64   // maximal runs of consecutive pages (non-sequential accesses)
	MinPages  int64   // ⌈Bytes/pageSize⌉: pages under perfect clustering (≥1 when Bytes>0)
	NormPages float64 // Pages / MinPages; 0 when the query selects nothing
}

// byteRun is a maximal contiguous byte interval of selected data.
type byteRun struct{ lo, hi int64 } // half-open

// Query measures the pages and seeks needed to read all records in the
// region under this layout. Empty cells occupy no bytes, so runs are merged
// across them; two byte runs landing on the same or adjacent pages are read
// with a single sequential access.
func (l *Layout) Query(r linear.Region) Stats {
	positions := l.order.Positions(r)
	var runs []byteRun
	for _, p := range positions {
		lo, hi := l.start[p], l.start[p+1]
		if lo == hi {
			continue // empty cell: no data, no seek boundary
		}
		if n := len(runs); n > 0 && runs[n-1].hi == lo {
			runs[n-1].hi = hi
			continue
		}
		runs = append(runs, byteRun{lo, hi})
	}
	var st Stats
	if len(runs) == 0 {
		return st
	}
	// Convert byte runs to inclusive page ranges and merge ranges that
	// overlap or are adjacent (consecutive pages need no seek).
	type pageRange struct{ lo, hi int64 }
	var merged []pageRange
	for _, run := range runs {
		st.Bytes += run.hi - run.lo
		pr := pageRange{run.lo / l.pageSize, (run.hi - 1) / l.pageSize}
		if n := len(merged); n > 0 && pr.lo <= merged[n-1].hi+1 {
			if pr.hi > merged[n-1].hi {
				merged[n-1].hi = pr.hi
			}
			continue
		}
		merged = append(merged, pr)
	}
	for _, pr := range merged {
		st.Pages += pr.hi - pr.lo + 1
	}
	st.Seeks = int64(len(merged))
	st.MinPages = (st.Bytes + l.pageSize - 1) / l.pageSize
	if st.MinPages > 0 {
		st.NormPages = float64(st.Pages) / float64(st.MinPages)
	}
	return st
}

// DiskModel estimates wall-clock I/O time from seek and transfer costs; the
// defaults approximate a late-1990s disk (10 ms seek, 10 MB/s transfer of
// 8 KB pages ≈ 0.8 ms/page).
type DiskModel struct {
	SeekMillis         float64
	TransferMillisPage float64
}

// DefaultDisk is the default DiskModel.
var DefaultDisk = DiskModel{SeekMillis: 10, TransferMillisPage: 0.8}

// Millis returns the modelled I/O time for a query's stats.
func (d DiskModel) Millis(s Stats) float64 {
	return d.SeekMillis*float64(s.Seeks) + d.TransferMillisPage*float64(s.Pages)
}
