package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linear"
	"repro/internal/trace"
)

// This file is the parallel fragment read path: ReadQueryOptCtx and
// SumOptCtx split a query into its seek runs — the maximal page-contiguous
// fragments the analytic model charges one seek each — and fetch the runs
// with a small worker set through the shared buffer pool. Within a run,
// optional prefetch goroutines pull pages a bounded window ahead of the
// decoder, and the sum path decodes records in place from pinned frames
// (one pin per page per run) instead of copying every cell out first.
//
// Guarantees, in rough order of importance:
//
//   - Parallelism <= 1 delegates to the sequential methods verbatim, so the
//     default path stays byte-identical to ReadQueryCtx/SumCtx.
//   - ReadQueryOptCtx delivers records to fn in exact disk order, on the
//     caller's goroutine, regardless of fetch interleaving: workers stream
//     bounded chunks per run, and the caller drains the runs in order.
//   - Accounting still reconciles with the analytic model. Each run gets a
//     fresh fragment tally whose physical reads land in an
//     order-independent page bitmap (see pageRecorder); at run end the
//     bitmap's run count becomes the fragment's seek count and the whole
//     tally is merged into the request tally. Runs are page-disjoint by
//     construction, so per-run pages and seeks sum exactly.
//   - Cancelling the query's context stops every in-flight worker and
//     prefetcher promptly; a worker's I/O error does not cancel its
//     siblings, and the error reported is the first in run order, so
//     failures are deterministic.
//
// Pin budget: on the copy path a query at Parallelism=P holds up to P
// decoder pins plus min(Readahead, 4) transient prefetcher pins per active
// run. The sum kernel instead pins a window of up to Readahead pages per
// worker, clamped to capacity/(2·workers) so a query can never pin more
// than half the pool. Size the pool's frame capacity above the worst-case
// sum across concurrent queries, exactly as with plain concurrent readers.

// ReadOptions tunes the parallel fragment read path.
type ReadOptions struct {
	// Parallelism bounds the concurrent fragment (seek run) fetches of one
	// query. Values <= 1 select the sequential read path.
	Parallelism int
	// Readahead is the number of pages prefetched ahead of the decoder
	// within a fragment. 0 disables prefetch; the knob only takes effect
	// when Parallelism > 1.
	Readahead int
}

// maxPrefetchers bounds the prefetch goroutines per run regardless of the
// readahead window.
const maxPrefetchers = 4

// streamChunkBytes is the copy path's target chunk size: workers flush a
// chunk to the consumer once it holds about this many record bytes (always
// at whole-cell boundaries).
const streamChunkBytes = 64 << 10

// runCell is one non-empty cell of a seek run: its cell id, the byte
// offset of its data, and its filled byte count.
type runCell struct {
	cell int
	lo   int64
	n    int64
}

// readRun is one seek run: a maximal group of non-empty cells whose
// reserved extents fall on contiguous (or shared) pages. Distinct runs are
// separated by at least one full page, which is exactly the analytic
// model's merged page-range — Layout.Query predicts one seek per run.
type readRun struct {
	cells  []runCell
	pageLo int64 // first page of the run's reserved extents
	pageHi int64 // last page (inclusive)
	bytes  int64 // filled bytes across the run's cells
}

// planEntry is one cached prepared plan: the immutable run list plus a
// private copy of the region it was planned for, kept so writes can drop
// exactly the plans whose region contains the written cell (plans embed
// fill counts) and leave the rest hot.
type planEntry struct {
	region linear.Region
	runs   []readRun
}

// readRuns groups the region's non-empty cells into seek runs. Callers
// hold fs.mu (read). The grouping mirrors Layout.Query's page-range merge:
// a cell joins the current run when its first page is adjacent to (or
// shared with) the run's last page. Cache hits and misses are attributed
// to the request's PoolTally (when ctx carries one) so each served query
// reports whether it paid for planning.
//
// Plans are cached per region (see FileStore.planCache): repeated query
// shapes — the norm for a dimensional workload — skip planning entirely and
// share one immutable run list. A cache miss computes the plan as follows:
// positions are gathered into a bitmap and scanned ascending, instead of
// sorting the position slice; for the big regions the bench workload reads,
// the sort was a top-line profile entry, and the bitmap pass is linear in
// the cell count with a single word-sized branch per position. All of a
// run's cells share one backing array, so the whole plan is three
// allocations regardless of region size.
func (fs *FileStore) readRuns(ctx context.Context, r linear.Region) []readRun {
	var kb [128]byte
	key := kb[:0]
	for _, rg := range r {
		key = binary.AppendVarint(key, int64(rg.Lo))
		key = binary.AppendVarint(key, int64(rg.Hi))
	}
	fs.planMu.Lock()
	e, ok := fs.planCache[string(key)]
	fs.planMu.Unlock()
	if t := tallyFrom(ctx); t != nil {
		t.planLookup(ok)
	}
	if ok {
		return e.runs
	}
	runs := fs.computeRuns(r)
	region := make(linear.Region, len(r))
	copy(region, r)
	fs.planMu.Lock()
	if fs.planCache == nil {
		fs.planCache = make(map[string]planEntry)
	} else if len(fs.planCache) >= planCacheCap {
		// Overflow drops everything: hitting the cap means the query-shape
		// set churned and the old entries are dead weight anyway.
		fs.planInvAll.Add(int64(len(fs.planCache)))
		fs.planCache = make(map[string]planEntry)
	}
	fs.planCache[string(key)] = planEntry{region: region, runs: runs}
	fs.planMu.Unlock()
	return runs
}

// overlayNeedsSequential reports whether the region contains a cell that is
// empty in the base file but present in the overlay. Such cells are absent
// from the seek-run plan (runs only cover fill > 0), so the parallel path
// would silently drop their records; the caller falls back to the
// sequential path, which consults the overlay per position. Callers hold
// fs.mu (read). Fully-loaded stores — the norm — pay one plan-array scan
// and zero overlay probes.
func (fs *FileStore) overlayNeedsSequential(r linear.Region, ov func(cell int) ([]byte, bool)) bool {
	needs := false
	fs.layout.order.EachPosition(r, func(pos int) {
		if needs || fs.plan[pos].fill != 0 {
			return
		}
		if _, ok := ov(int(fs.plan[pos].cell)); ok {
			needs = true
		}
	})
	return needs
}

// computeRuns builds the seek-run plan for a region (the cache-miss path of
// readRuns).
func (fs *FileStore) computeRuns(r linear.Region) []readRun {
	u := fs.layout.usable()
	var words []uint64
	if v := fs.planBits.Get(); v != nil {
		words = *(v.(*[]uint64))
	} else {
		words = make([]uint64, (len(fs.fill)+63)/64)
	}
	n := 0
	fs.layout.order.EachPosition(r, func(pos int) {
		words[pos>>6] |= 1 << (uint(pos) & 63)
		n++
	})
	cells := make([]runCell, 0, n)
	var runs []readRun
	for wi := range words {
		w := words[wi]
		if w == 0 {
			continue
		}
		words[wi] = 0 // scan-and-clear: the buffer returns to the pool zeroed
		for w != 0 {
			pos := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			pp := &fs.plan[pos]
			filled := pp.fill
			if filled == 0 {
				continue
			}
			pLo, pHi := pp.lo/u, (pp.end-1)/u
			// cells never reallocates (cap n covers every position), so the
			// runs' subslices of it stay valid as it grows.
			cells = append(cells, runCell{cell: int(pp.cell), lo: pp.lo, n: filled})
			if nr := len(runs); nr > 0 && pLo <= runs[nr-1].pageHi+1 {
				rr := &runs[nr-1]
				rr.cells = rr.cells[:len(rr.cells)+1]
				if pHi > rr.pageHi {
					rr.pageHi = pHi
				}
				rr.bytes += filled
				continue
			}
			runs = append(runs, readRun{cells: cells[len(cells)-1 : len(cells)], pageLo: pLo, pageHi: pHi, bytes: filled})
		}
	}
	fs.planBits.Put(&words)
	return runs
}

// pageRecorder is an order-independent record of which pages a run
// physically loaded: a bitmap over the run's page extent. Seeks are
// derived at run end as the number of maximal set-bit runs, which makes
// the count immune to load interleaving between a run's prefetchers and
// its decoder, and idempotent when an evicted page is reloaded.
type pageRecorder struct {
	lo   int64
	n    int
	mu   sync.Mutex
	bits []uint64
}

func (p *pageRecorder) reset(lo, hi int64) {
	p.lo = lo
	p.n = int(hi - lo + 1)
	words := (p.n + 63) / 64
	if cap(p.bits) < words {
		p.bits = make([]uint64, words)
		return
	}
	p.bits = p.bits[:words]
	for i := range p.bits {
		p.bits[i] = 0
	}
}

func (p *pageRecorder) record(page int64) {
	i := page - p.lo
	if i < 0 || i >= int64(p.n) {
		return // not a page of this run; cannot happen on the paths that install a recorder
	}
	p.mu.Lock()
	p.bits[i>>6] |= 1 << (uint(i) & 63)
	p.mu.Unlock()
}

// seekRuns counts the maximal runs of set bits: the fragment's observed
// seek count.
func (p *pageRecorder) seekRuns() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var seeks int64
	prev := false
	for i := 0; i < p.n; i++ {
		set := p.bits[i>>6]&(1<<(uint(i)&63)) != 0
		if set && !prev {
			seeks++
		}
		prev = set
	}
	return seeks
}

// runScratch is per-worker reusable state, so steady-state runs allocate
// nothing per record or page.
type runScratch struct {
	rec    pageRecorder
	spill  []byte
	pages  []int64
	frames []*frame // pinned window frames of the sum kernel's span reads
}

// runProgress coordinates a run's decoder with its prefetchers: the
// decoder advances consumed past finished pages and nudges; prefetchers
// stay at most the readahead window ahead of it.
type runProgress struct {
	pages    []int64 // distinct pages the run demand-reads, ascending; nil = no prefetch
	consumed atomic.Int64
	nudge    chan struct{}
}

// mark advances the consumed pointer past every page <= page, starting the
// scan at index pi, and returns the new index. Inert when prefetch is off.
func (p *runProgress) mark(pi int, page int64) int {
	if p.nudge == nil {
		return pi
	}
	for pi < len(p.pages) && p.pages[pi] <= page {
		pi++
	}
	if int64(pi) > p.consumed.Load() {
		p.consumed.Store(int64(pi))
		select {
		case p.nudge <- struct{}{}:
		default:
		}
	}
	return pi
}

// runPages lists the distinct pages the run's cells demand-read, ascending,
// reusing the scratch backing array.
func runPages(run *readRun, u int64, sc *runScratch) []int64 {
	pages := sc.pages[:0]
	for i := range run.cells {
		cc := &run.cells[i]
		for p := cc.lo / u; p <= (cc.lo+cc.n-1)/u; p++ {
			if n := len(pages); n == 0 || pages[n-1] != p {
				pages = append(pages, p)
			}
		}
	}
	sc.pages = pages
	return pages
}

// runFragment executes body under one seek run's accounting: a fresh
// fragment tally (with the order-independent page recorder), a fragment
// trace span, the parallel-inflight gauge, optional prefetchers, and — at
// the end — the merge of the fragment tally into the request tally on wctx
// plus the per-fragment observer callback.
func (fs *FileStore) runFragment(wctx context.Context, run *readRun, opt ReadOptions, sc *runScratch, body func(fctx context.Context, pr *runProgress) error) error {
	fs.parInflight.Add(1)
	start := time.Now()
	sc.rec.reset(run.pageLo, run.pageHi)
	var ft PoolTally
	ft.sink = &sc.rec
	fctx := WithPoolTally(wctx, &ft)
	fctx, sp := trace.Start(fctx, trace.KindFragment, "")
	pr := &runProgress{}
	var pwg sync.WaitGroup
	stopPrefetch := func() {}
	if opt.Readahead > 0 {
		pr.pages = runPages(run, fs.layout.usable(), sc)
		if len(pr.pages) > 1 {
			pr.nudge = make(chan struct{}, 1)
			var pctx context.Context
			pctx, stopPrefetch = context.WithCancel(fctx)
			fs.startPrefetch(pctx, pr, opt.Readahead, &pwg)
		}
	}
	err := body(fctx, pr)
	stopPrefetch()
	pwg.Wait()
	ft.seeks.Store(sc.rec.seekRuns())
	sp.SetAttr("cells", int64(len(run.cells)))
	sp.SetAttr("bytes", run.bytes)
	sp.SetAttr("pages_read", ft.misses.Load())
	sp.SetAttr("seeks", ft.seeks.Load())
	sp.SetAttr("pool_hits", ft.hits.Load())
	if d := ft.deltaHits.Load(); d > 0 {
		sp.SetAttr("delta_cells", d)
	}
	sp.SetError(err)
	sp.End()
	if parent := tallyFrom(wctx); parent != nil {
		parent.merge(&ft)
	}
	fs.parInflight.Add(-1)
	if obs := fs.fragObs.Load(); obs != nil {
		(*obs)(ft.misses.Load(), time.Since(start).Seconds())
	}
	return err
}

// startPrefetch launches the run's prefetch goroutines: they share an
// atomic cursor over the run's page list and pull each page through the
// pool (pin and immediately unpin) at most the readahead window ahead of
// the decoder. Prefetch errors are dropped — the demand read re-surfaces
// them, since a failed load leaves no frame behind.
func (fs *FileStore) startPrefetch(ctx context.Context, pr *runProgress, ra int, pwg *sync.WaitGroup) {
	g := ra
	if g > maxPrefetchers {
		g = maxPrefetchers
	}
	if g > len(pr.pages) {
		g = len(pr.pages)
	}
	cursor := new(atomic.Int64)
	for k := 0; k < g; k++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for {
				j := cursor.Add(1) - 1
				if j >= int64(len(pr.pages)) {
					return
				}
				for j >= pr.consumed.Load()+int64(ra) {
					select {
					case <-ctx.Done():
						return
					case <-pr.nudge:
					}
				}
				if ctx.Err() != nil {
					return
				}
				fr, err := fs.pool.get(ctx, pr.pages[j])
				if err != nil {
					return
				}
				fs.pool.unpin(fr)
			}
		}()
	}
}

// ParallelInflight returns the number of fragment fetches currently in
// flight on the parallel read path, across all queries.
func (fs *FileStore) ParallelInflight() int64 { return fs.parInflight.Load() }

// SetFragmentObserver installs fn to be called once per completed fragment
// fetch on the parallel read path with the fragment's physical page reads
// and wall time. nil removes the observer. The observer runs on worker
// goroutines and must be cheap and safe for concurrent use.
func (fs *FileStore) SetFragmentObserver(fn func(pagesRead int64, seconds float64)) {
	if fn == nil {
		fs.fragObs.Store(nil)
		return
	}
	fs.fragObs.Store(&fn)
}

// runChunk is a batch of copied-out cells streamed from a run's worker to
// the consuming goroutine, or a terminal error.
type runChunk struct {
	cells []chunkCell
	err   error
}

type chunkCell struct {
	cell int
	data []byte
}

// ReadQueryOptCtx is ReadQueryCtx with a parallel fetch plan: the region's
// seek runs are fetched by up to opt.Parallelism workers while records are
// delivered to fn on the caller's goroutine in exact disk order — the same
// cell and record sequence the sequential path produces. opt.Parallelism
// <= 1 delegates to ReadQueryCtx unchanged.
func (fs *FileStore) ReadQueryOptCtx(ctx context.Context, r linear.Region, opt ReadOptions, fn func(cell int, record []byte) error) error {
	if opt.Parallelism <= 1 {
		return fs.ReadQueryCtx(ctx, r, fn)
	}
	fs.mu.RLock()
	if fs.closed {
		fs.mu.RUnlock()
		return ErrClosed
	}
	ov := fs.overlayFn()
	if ov != nil && fs.overlayNeedsSequential(r, ov) {
		fs.mu.RUnlock()
		return fs.ReadQueryCtx(ctx, r, fn)
	}
	defer fs.mu.RUnlock()
	runs := fs.readRuns(ctx, r)
	if len(runs) == 0 {
		return nil
	}
	wctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()
	chans := make([]chan runChunk, len(runs))
	for i := range chans {
		chans[i] = make(chan runChunk, 2)
	}
	var next atomic.Int64
	workers := min(opt.Parallelism, len(runs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &runScratch{}
			for {
				i := int(next.Add(1) - 1)
				if i >= len(runs) {
					return
				}
				fs.streamRun(wctx, &runs[i], opt, ov, sc, chans[i])
				if wctx.Err() != nil {
					return
				}
			}
		}()
	}
	for i := range chans {
		ch := chans[i]
		for ch != nil {
			select {
			case chunk, ok := <-ch:
				if !ok {
					ch = nil
					continue
				}
				if chunk.err != nil {
					return chunk.err
				}
				for _, cc := range chunk.cells {
					if err := walkRecords(cc.cell, cc.data, fn); err != nil {
						return err
					}
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// streamRun fetches one run under fragment accounting and streams its
// cells to out in bounded whole-cell chunks; a fetch error is sent as a
// terminal chunk. The channel is always closed. Cells present in the
// overlay are served from it — their overlay bytes join the chunk directly
// and their base range is never read (so a half-applied base rewrite is
// invisible behind the overlay), though prefetchers may still touch the
// underlying pages.
func (fs *FileStore) streamRun(wctx context.Context, run *readRun, opt ReadOptions, ov func(cell int) ([]byte, bool), sc *runScratch, out chan<- runChunk) {
	u := fs.layout.usable()
	err := fs.runFragment(wctx, run, opt, sc, func(fctx context.Context, pr *runProgress) error {
		var chunk runChunk
		var buf []byte
		pi := 0
		flush := func() error {
			if len(chunk.cells) == 0 {
				return nil
			}
			select {
			case out <- chunk:
				chunk, buf = runChunk{}, nil
				return nil
			case <-fctx.Done():
				return fctx.Err()
			}
		}
		for i := range run.cells {
			cc := &run.cells[i]
			if err := fctx.Err(); err != nil {
				return err
			}
			if ov != nil {
				if ob, ok := ov(cc.cell); ok {
					if t := tallyFrom(fctx); t != nil {
						t.deltaHit()
					}
					chunk.cells = append(chunk.cells, chunkCell{cc.cell, ob})
					pi = pr.mark(pi, (cc.lo+cc.n-1)/u)
					continue
				}
			}
			if int64(len(buf))+cc.n > int64(cap(buf)) {
				if err := flush(); err != nil {
					return err
				}
				capacity := int64(streamChunkBytes)
				if cc.n > capacity {
					capacity = cc.n
				}
				buf = make([]byte, 0, capacity)
			}
			dst := buf[len(buf) : int64(len(buf))+cc.n]
			if err := fs.pool.ReadAtCtx(fctx, dst, cc.lo); err != nil {
				return err
			}
			buf = buf[:int64(len(buf))+cc.n]
			chunk.cells = append(chunk.cells, chunkCell{cc.cell, dst})
			pi = pr.mark(pi, (cc.lo+cc.n-1)/u)
		}
		return flush()
	})
	if err != nil {
		select {
		case out <- runChunk{err: err}:
		case <-wctx.Done():
		}
	}
	close(out)
}

// SumOptCtx is SumCtx with a parallel fetch plan and a batched decode
// kernel: workers claim whole seek runs, decode records in place from
// pinned frames (one pin per page per run instead of one pool access per
// cell), and the per-run partial sums are folded in run order — so the
// result is deterministic, though not bit-identical to the sequential
// left-to-right accumulation when Parallelism > 1. opt.Parallelism <= 1
// delegates to SumCtx unchanged.
func (fs *FileStore) SumOptCtx(ctx context.Context, r linear.Region, opt ReadOptions, decode func(record []byte) float64) (float64, PoolStats, error) {
	if opt.Parallelism <= 1 {
		return fs.SumCtx(ctx, r, decode)
	}
	// Reuse a caller-installed tally, as SumCtx does: fragment tallies merge
	// into it, so the caller sees per-query pages and seeks.
	tally := tallyFrom(ctx)
	if tally == nil {
		tally = new(PoolTally)
		ctx = WithPoolTally(ctx, tally)
	}
	fs.mu.RLock()
	if fs.closed {
		fs.mu.RUnlock()
		return 0, PoolStats{}, ErrClosed
	}
	ov := fs.overlayFn()
	if ov != nil && fs.overlayNeedsSequential(r, ov) {
		fs.mu.RUnlock()
		return fs.SumCtx(ctx, r, decode)
	}
	defer fs.mu.RUnlock()
	runs := fs.readRuns(ctx, r)
	if len(runs) == 0 {
		return 0, tally.Stats(), nil
	}
	type partial struct {
		sum float64
		err error
	}
	parts := make([]partial, len(runs))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := min(opt.Parallelism, len(runs))
	// The sum kernel turns the readahead knob into synchronous span reads:
	// each worker pins a window of up to Readahead consecutive pages with one
	// physical read, decodes it, then advances. The window is clamped so all
	// workers' pinned windows together never exceed half the pool, and to the
	// span-read ceiling. With a window of one page the kernel degenerates to
	// the per-page demand path plus the async prefetchers, exactly as before.
	window := opt.Readahead
	if window > MaxSpanPages {
		window = MaxSpanPages
	}
	if maxW := fs.pool.capacity / (2 * workers); window > maxW {
		window = maxW
	}
	if window < 1 {
		window = 1
	}
	fopt := opt
	if window > 1 {
		fopt.Readahead = 0 // span windows replace the async prefetchers
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &runScratch{}
			for {
				i := int(next.Add(1) - 1)
				if i >= len(runs) {
					return
				}
				run := &runs[i]
				var sum float64
				err := fs.runFragment(wctx, run, fopt, sc, func(fctx context.Context, pr *runProgress) error {
					var e error
					sum, e = fs.sumRun(fctx, run, pr, ov, decode, sc, window)
					return e
				})
				parts[i] = partial{sum: sum, err: err}
				if err != nil && wctx.Err() != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0.0
	for i := range parts {
		if parts[i].err != nil {
			return 0, PoolStats{}, parts[i].err
		}
		total += parts[i].sum
	}
	return total, tally.Stats(), nil
}

// sumRun is the batched decode kernel: it walks one run's cells while
// holding a single pin (and latch) per page, feeding frame bytes straight
// into a record walker, so the hot loop copies nothing and allocates
// nothing in steady state. With window > 1 it pins a span of consecutive
// pages at a time (getSpan: one physical read per window of misses) and
// decodes the whole window before advancing — synchronous readahead that
// replaces the async prefetchers. decode runs under the frame latch and
// must not retain the record slice. Cells present in the overlay decode
// from their overlay bytes instead of base pages.
func (fs *FileStore) sumRun(ctx context.Context, run *readRun, pr *runProgress, ov func(cell int) ([]byte, bool), decode func(record []byte) float64, sc *runScratch, window int) (float64, error) {
	u := int64(fs.file.PageSize())
	total := 0.0
	var fr *frame
	curPage := int64(-1)
	pi := 0
	win := sc.frames[:0]
	winLo, winEnd := int64(0), int64(0) // current pinned window [winLo, winEnd)
	var w recordWalker
	w.spill = sc.spill[:0]
	var err error
loop:
	for ci := range run.cells {
		cc := &run.cells[ci]
		if ov != nil {
			if ob, ok := ov(cc.cell); ok {
				if t := tallyFrom(ctx); t != nil {
					t.deltaHit()
				}
				if err = walkRecords(cc.cell, ob, func(_ int, rec []byte) error {
					total += decode(rec)
					return nil
				}); err != nil {
					break loop
				}
				continue
			}
		}
		w.begin(cc.cell)
		off, rem := cc.lo, cc.n
		for rem > 0 {
			if page := off / u; page != curPage {
				// Cancellation is polled here, once per page instead of per
				// cell: small cells share pages, and the poll was a visible
				// slice of the kernel's time.
				if err = ctx.Err(); err != nil {
					break loop
				}
				if fr != nil {
					fr.mu.Unlock()
					fr = nil
				}
				if window <= 1 {
					if len(win) > 0 {
						fs.pool.unpinSpan(win)
						win = win[:0]
					}
					var f *frame
					if f, err = fs.pool.get(ctx, page); err != nil {
						break loop
					}
					win = append(win, f)
				} else if page >= winEnd {
					if len(win) > 0 {
						fs.pool.unpinSpan(win)
					}
					m := run.pageHi - page + 1
					if m > int64(window) {
						m = int64(window)
					}
					if win, err = fs.pool.getSpan(ctx, page, int(m), win[:0]); err != nil {
						win = nil
						break loop
					}
					winLo, winEnd = page, page+m
				}
				if window <= 1 {
					fr = win[0]
				} else {
					fr = win[page-winLo]
				}
				fr.mu.Lock()
				curPage = page
				pi = pr.mark(pi, page)
			}
			b := fr.data[off%u:]
			if int64(len(b)) > rem {
				b = b[:rem]
			}
			if err = w.feed(b, &total, decode); err != nil {
				break loop
			}
			off += int64(len(b))
			rem -= int64(len(b))
		}
		if err = w.finish(); err != nil {
			break
		}
	}
	if fr != nil {
		fr.mu.Unlock()
	}
	if len(win) > 0 {
		fs.pool.unpinSpan(win)
	}
	sc.frames = win[:0]
	sc.spill = w.spill[:0]
	return total, err
}

// recordWalker is the kernel's incremental counterpart of walkRecords: it
// parses the same length-prefixed framing from page-sized byte windows,
// carrying header bytes and record tails across page boundaries in a
// reusable spill buffer. Records never span cells, so framing restarts at
// every begin; the error messages match walkRecords exactly.
type recordWalker struct {
	cell   int
	recLen int64 // pending record length; -1 while reading the header
	hdr    [4]byte
	hdrN   int
	spill  []byte // bytes of the pending record gathered from earlier windows
}

func (w *recordWalker) begin(cell int) {
	w.cell = cell
	w.recLen = -1
	w.hdrN = 0
	w.spill = w.spill[:0]
}

// feed consumes one window of the cell's bytes, decoding every record that
// completes within it into *total.
func (w *recordWalker) feed(b []byte, total *float64, decode func(record []byte) float64) error {
	for {
		if w.recLen < 0 {
			if w.hdrN == 0 && len(b) >= 4 {
				// Fast path: the whole header is in this window — read it in
				// place instead of staging it through w.hdr.
				w.recLen = int64(binary.LittleEndian.Uint32(b))
				b = b[4:]
				w.spill = w.spill[:0]
			} else {
				if len(b) == 0 {
					return nil
				}
				n := copy(w.hdr[w.hdrN:], b)
				w.hdrN += n
				b = b[n:]
				if w.hdrN < 4 {
					return nil
				}
				w.recLen = int64(binary.LittleEndian.Uint32(w.hdr[:]))
				w.spill = w.spill[:0]
			}
		}
		need := w.recLen - int64(len(w.spill))
		if int64(len(b)) < need {
			w.spill = append(w.spill, b...)
			return nil
		}
		var rec []byte
		if len(w.spill) > 0 {
			w.spill = append(w.spill, b[:need]...)
			rec = w.spill
		} else {
			rec = b[:need:need]
		}
		b = b[need:]
		*total += decode(rec)
		w.recLen = -1
		w.hdrN = 0
	}
}

// finish checks that the cell ended on a record boundary, mirroring
// walkRecords' partial-header and truncated-record errors.
func (w *recordWalker) finish() error {
	if w.recLen >= 0 {
		return fmt.Errorf("storage: truncated record in cell %d", w.cell)
	}
	if w.hdrN != 0 {
		return fmt.Errorf("storage: corrupt record header in cell %d", w.cell)
	}
	return nil
}
