package storage

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/linear"
)

func TestMigratePreservesDataAndImprovesLayout(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	rowMajor, err := linear.RowMajor(s, []int{1, 0}) // column-major: bad for row scans
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	dir := t.TempDir()
	src, err := CreateFileStore(filepath.Join(dir, "old.db"), rowMajor, bytes, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	buf := make([]byte, 8)
	for c := 0; c < 16; c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := src.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}

	better, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Migrate(src, filepath.Join(dir, "new.db"), better, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Every region sums identically on both stores.
	for _, r := range []linear.Region{
		{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}},
		{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}},
		{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 3}},
		{{Lo: 2, Hi: 4}, {Lo: 0, Hi: 2}},
	} {
		a, _, err := src.Sum(r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := dst.Sum(r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("region %v: sums differ %v vs %v", r, a, b)
		}
	}

	// Row scans are now contiguous on the new layout.
	row := linear.Region{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}}
	if got := dst.Layout().Query(row).Seeks; got != 1 {
		t.Errorf("row query on migrated store: %d seeks, want 1", got)
	}
	if got := src.Layout().Query(row).Seeks; got <= 1 {
		t.Errorf("row query on old store: %d seeks, expected several", got)
	}
}

// TestMigrateCleansUpOnFailure injects a permanent read fault into the
// source store timed to fire during the migration copy: Migrate must fail
// loudly and delete its partial output file.
func TestMigrateCleansUpOnFailure(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	colMajor, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	layout, err := NewFileLayout(colMajor, bytes, 32)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pf, err := CreatePageFile(filepath.Join(dir, "old.db"), 32, layout.TotalPages())
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	fi := NewFaultInjector(pf, 7)
	src, err := NewFileStoreOn(fi, colMajor, bytes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < 16; c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := src.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fail the first page read of the migration scan.
	fi.faults = append(fi.faults, Fault{Op: OpRead, Index: fi.Ops(OpRead), Kind: FaultPermanent})

	better, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.db")
	if _, err := Migrate(src, newPath, better, 4); err == nil {
		t.Fatal("migration over a failing source should fail")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("migration error is untyped: %v", err)
	}
	if _, err := os.Stat(newPath); !os.IsNotExist(err) {
		t.Fatalf("partial migration output %s was not removed (stat err: %v)", newPath, err)
	}
}

func TestMigrateShapeMismatch(t *testing.T) {
	s1 := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	s2 := hierarchy.MustSchema(hierarchy.Binary("A", 1), hierarchy.Binary("B", 1))
	o1, err := linear.RowMajor(s1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := linear.RowMajor(s2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	src, err := CreateFileStore(filepath.Join(t.TempDir(), "s.db"), o1, bytes, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := Migrate(src, filepath.Join(t.TempDir(), "d.db"), o2, 2); err == nil {
		t.Error("cell-count mismatch should fail")
	}
}
