package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/linear"
)

func TestMigratePreservesDataAndImprovesLayout(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	rowMajor, err := linear.RowMajor(s, []int{1, 0}) // column-major: bad for row scans
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	dir := t.TempDir()
	src, err := CreateFileStore(filepath.Join(dir, "old.db"), rowMajor, bytes, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	buf := make([]byte, 8)
	for c := 0; c < 16; c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := src.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}

	better, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Migrate(src, filepath.Join(dir, "new.db"), better, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	// Every region sums identically on both stores.
	for _, r := range []linear.Region{
		{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}},
		{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}},
		{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 3}},
		{{Lo: 2, Hi: 4}, {Lo: 0, Hi: 2}},
	} {
		a, _, err := src.Sum(r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := dst.Sum(r, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("region %v: sums differ %v vs %v", r, a, b)
		}
	}

	// Row scans are now contiguous on the new layout.
	row := linear.Region{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}}
	if got := dst.Layout().Query(row).Seeks; got != 1 {
		t.Errorf("row query on migrated store: %d seeks, want 1", got)
	}
	if got := src.Layout().Query(row).Seeks; got <= 1 {
		t.Errorf("row query on old store: %d seeks, expected several", got)
	}
}

// TestMigrateCleansUpOnFailure injects a permanent read fault into the
// source store timed to fire during the migration copy: Migrate must fail
// loudly and delete its partial output file.
func TestMigrateCleansUpOnFailure(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	colMajor, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	layout, err := NewFileLayout(colMajor, bytes, 32)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pf, err := CreatePageFile(filepath.Join(dir, "old.db"), 32, layout.TotalPages())
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	fi := NewFaultInjector(pf, 7)
	src, err := NewFileStoreOn(fi, colMajor, bytes, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < 16; c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := src.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// Fail the first page read of the migration scan.
	fi.faults = append(fi.faults, Fault{Op: OpRead, Index: fi.Ops(OpRead), Kind: FaultPermanent})

	better, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.db")
	if _, err := Migrate(src, newPath, better, 4); err == nil {
		t.Fatal("migration over a failing source should fail")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("migration error is untyped: %v", err)
	}
	if _, err := os.Stat(newPath); !os.IsNotExist(err) {
		t.Fatalf("partial migration output %s was not removed (stat err: %v)", newPath, err)
	}
}

// newMigrateSource builds a loaded 4x4 store for the cancellation and
// progress tests: cell c holds one 8-byte record encoding float64(c).
func newMigrateSource(t *testing.T, dir string) (*FileStore, *linear.Order, *linear.Order) {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	colMajor, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	for i := range bytes {
		bytes[i] = FrameSize(8)
	}
	src, err := CreateFileStore(filepath.Join(dir, "old.db"), colMajor, bytes, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < 16; c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := src.PutRecord(c, buf); err != nil {
			src.Close()
			t.Fatal(err)
		}
	}
	rowMajor, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		src.Close()
		t.Fatal(err)
	}
	return src, colMajor, rowMajor
}

// TestMigrateCtxCancelCleansUp cancels the migration from its own progress
// callback, partway through the copy: MigrateCtx must return the context
// error and leave no partial output file behind.
func TestMigrateCtxCancelCleansUp(t *testing.T) {
	dir := t.TempDir()
	src, _, better := newMigrateSource(t, dir)
	defer src.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	newPath := filepath.Join(dir, "new.db")
	var calls int
	_, err := MigrateCtx(ctx, src, newPath, better, 4, func(done, total int) {
		calls++
		if done == total/2 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("cancelled migration should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled migration error is untyped: %v", err)
	}
	if calls >= 16 {
		t.Errorf("progress ran %d times; cancellation should have cut the copy short", calls)
	}
	if _, err := os.Stat(newPath); !os.IsNotExist(err) {
		t.Fatalf("partial migration output %s was not removed (stat err: %v)", newPath, err)
	}
	// A context cancelled before the copy starts must also leave nothing.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := MigrateCtx(pre, src, newPath, better, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled migration: %v", err)
	}
	if _, err := os.Stat(newPath); !os.IsNotExist(err) {
		t.Fatalf("pre-cancelled migration left %s behind", newPath)
	}
	// The source store is still fully readable afterwards.
	all := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	sum, _, err := src.Sum(all, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if want := 120.0; sum != want {
		t.Errorf("source sum after aborted migration = %v, want %v", sum, want)
	}
}

// TestMigrateCtxProgress checks the progress contract: monotone (done,
// total) pairs, one call per cell, ending at (total, total).
func TestMigrateCtxProgress(t *testing.T) {
	dir := t.TempDir()
	src, _, better := newMigrateSource(t, dir)
	defer src.Close()

	var got [][2]int
	dst, err := MigrateCtx(context.Background(), src, filepath.Join(dir, "new.db"), better, 4,
		func(done, total int) { got = append(got, [2]int{done, total}) })
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if len(got) != 16 {
		t.Fatalf("progress ran %d times, want 16", len(got))
	}
	for i, p := range got {
		if p[0] != i+1 || p[1] != 16 {
			t.Fatalf("progress call %d reported %v, want [%d 16]", i, p, i+1)
		}
	}
}

func TestMigrateShapeMismatch(t *testing.T) {
	s1 := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
	s2 := hierarchy.MustSchema(hierarchy.Binary("A", 1), hierarchy.Binary("B", 1))
	o1, err := linear.RowMajor(s1, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := linear.RowMajor(s2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	bytes := make([]int64, 16)
	src, err := CreateFileStore(filepath.Join(t.TempDir(), "s.db"), o1, bytes, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := Migrate(src, filepath.Join(t.TempDir(), "d.db"), o2, 2); err == nil {
		t.Error("cell-count mismatch should fail")
	}
}
