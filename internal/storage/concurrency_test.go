package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hierarchy"
	"repro/internal/linear"
)

// gatedFile is a PagedFile whose reads block until the gate opens, for
// observing in-flight load coalescing.
type gatedFile struct {
	pageSize int
	pages    int64
	gate     chan struct{}
	reads    atomic.Int64
}

func (g *gatedFile) PageSize() int { return g.pageSize }
func (g *gatedFile) Pages() int64  { return g.pages }
func (g *gatedFile) ReadPage(page int64, buf []byte) error {
	g.reads.Add(1)
	<-g.gate
	for i := range buf {
		buf[i] = byte(page)
	}
	return nil
}
func (g *gatedFile) WritePage(int64, []byte) error { return nil }
func (g *gatedFile) Sync() error                   { return nil }
func (g *gatedFile) Close() error                  { return nil }

func TestBufferPoolSingleFlightCoalescesMisses(t *testing.T) {
	gf := &gatedFile{pageSize: 16, pages: 4, gate: make(chan struct{})}
	bp, err := NewBufferPool(gf, 4)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4)
			if err := bp.ReadAt(buf, 16); err != nil { // page 1 for everyone
				t.Error(err)
			}
			if buf[0] != 1 {
				t.Errorf("read %d, want page-1 fill", buf[0])
			}
		}()
	}
	// One goroutine is loading; the rest must be registered as waiters
	// before we open the gate.
	deadline := time.Now().Add(5 * time.Second)
	for bp.Stats().SingleFlightWaits < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d single-flight waits", bp.Stats().SingleFlightWaits)
		}
		time.Sleep(time.Millisecond)
	}
	close(gf.gate)
	wg.Wait()
	if got := gf.reads.Load(); got != 1 {
		t.Errorf("physical reads = %d, want 1 coalesced load", got)
	}
	st := bp.Stats()
	if st.Misses != 1 || st.SingleFlightWaits != readers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d waits", st, readers-1)
	}
}

func TestBufferPoolWaiterCancelledDuringLoad(t *testing.T) {
	gf := &gatedFile{pageSize: 16, pages: 4, gate: make(chan struct{})}
	bp, err := NewBufferPool(gf, 4)
	if err != nil {
		t.Fatal(err)
	}
	loaderDone := make(chan error, 1)
	go func() {
		loaderDone <- bp.ReadAt(make([]byte, 4), 0)
	}()
	for bp.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		waiterDone <- bp.ReadAtCtx(ctx, make([]byte, 4), 0)
	}()
	for bp.Stats().SingleFlightWaits == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter = %v, want context.Canceled", err)
	}
	close(gf.gate)
	if err := <-loaderDone; err != nil {
		t.Errorf("loader = %v, want success despite the waiter's cancellation", err)
	}
}

// buildConcurrentStore creates an 8×8 file store with two records per cell
// over the given paged-file stack and returns the expected full-grid sum.
func concurrentOrder(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Binary("A", 3), hierarchy.Binary("B", 3))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func loadConcurrentStore(t *testing.T, fs *FileStore, o *linear.Order) float64 {
	t.Helper()
	total := 0.0
	buf := make([]byte, 8)
	for c := 0; c < o.Len(); c++ {
		for i := 0; i < 2; i++ {
			v := float64(c*10 + i)
			total += v
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if err := fs.PutRecord(c, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	return total
}

func TestConcurrentQueriesSeeConsistentData(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	path := filepath.Join(t.TempDir(), "conc.db")
	fs, err := CreateFileStore(path, o, bytes, 128, 4) // tiny pool: constant eviction
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	want := loadConcurrentStore(t, fs, o)
	all := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				got, _, err := fs.Sum(all, decodeF64)
				if err != nil {
					t.Error(err)
					return
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("concurrent Sum = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestReadQueryCtxCancellation(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	path := filepath.Join(t.TempDir(), "cancel.db")
	fs, err := CreateFileStore(path, o, bytes, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	loadConcurrentStore(t, fs, o)
	all := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fs.ReadQueryCtx(ctx, all, func(int, []byte) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("dead ctx scan = %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := fs.SumCtx(dctx, all, decodeF64); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired Sum = %v, want DeadlineExceeded", err)
	}
	if err := fs.ReadCellCtx(ctx, 3, func([]byte) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("dead ctx cell read = %v, want context.Canceled", err)
	}
	// Cancellation mid-scan: stop after the first record.
	mctx, mcancel := context.WithCancel(context.Background())
	seen := 0
	err = fs.ReadQueryCtx(mctx, all, func(int, []byte) error {
		seen++
		mcancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-scan cancel = %v, want context.Canceled", err)
	}
	if seen == 0 || seen >= 2*o.Len() {
		t.Errorf("saw %d records before the cancel took effect", seen)
	}
}

func TestReadCellCtxReadsOneCell(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	path := filepath.Join(t.TempDir(), "cell.db")
	fs, err := CreateFileStore(path, o, bytes, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	loadConcurrentStore(t, fs, o)
	got := 0.0
	if err := fs.ReadCellCtx(context.Background(), 7, func(rec []byte) error {
		got += decodeF64(rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := float64(7*10 + 7*10 + 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("cell 7 sum = %v, want %v", got, want)
	}
}

// transientFile fails every read with ErrTransient, forever.
type transientFile struct {
	pageSize int
	pages    int64
}

func (f *transientFile) PageSize() int { return f.pageSize }
func (f *transientFile) Pages() int64  { return f.pages }
func (f *transientFile) ReadPage(page int64, _ []byte) error {
	return fmt.Errorf("page %d: flaky disk: %w", page, ErrTransient)
}
func (f *transientFile) WritePage(int64, []byte) error { return nil }
func (f *transientFile) Sync() error                   { return nil }
func (f *transientFile) Close() error                  { return nil }

func TestRetryBackoffIsContextAware(t *testing.T) {
	bp, err := NewBufferPool(&transientFile{pageSize: 64, pages: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// An hour of backoff per retry would hang the read for days if the
	// sleeps ignored the context.
	bp.SetRetry(RetryPolicy{MaxRetries: 100, Backoff: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = bp.ReadAtCtx(ctx, make([]byte, 8), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read = %v, want DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("cancellation took %v; backoff sleeps are not context-aware", took)
	}
}

func TestCloseWhileReadersInFlight(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	path := filepath.Join(t.TempDir(), "close.db")
	fs, err := CreateFileStore(path, o, bytes, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadConcurrentStore(t, fs, o)
	all := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for k := 0; k < 50; k++ {
				_, _, err := fs.Sum(all, decodeF64)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("reader error %v, want nil or ErrClosed", err)
					}
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := fs.Close(); err != nil {
		t.Fatalf("Close with readers in flight: %v", err)
	}
	wg.Wait()
	if err := fs.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("second Close = %v, want ErrClosed", err)
	}
	if err := fs.PutRecord(0, make([]byte, 8)); !errors.Is(err, ErrClosed) {
		t.Errorf("PutRecord after Close = %v, want ErrClosed", err)
	}
	if _, err := fs.Verify(); !errors.Is(err, ErrClosed) {
		t.Errorf("Verify after Close = %v, want ErrClosed", err)
	}
	if err := fs.Scan(all, func(int, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Scan after Close = %v, want ErrClosed", err)
	}
	if _, err := Migrate(fs, filepath.Join(t.TempDir(), "new.db"), o, 4); !errors.Is(err, ErrClosed) {
		t.Errorf("Migrate after Close = %v, want ErrClosed", err)
	}
}

func TestMigrateWhileReadersInFlight(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	dir := t.TempDir()
	fs, err := CreateFileStore(filepath.Join(dir, "old.db"), o, bytes, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	want := loadConcurrentStore(t, fs, o)
	all := linear.Region{{Lo: 0, Hi: 8}, {Lo: 0, Hi: 8}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got, _, err := fs.Sum(all, decodeF64); err != nil {
					t.Error(err)
					return
				} else if math.Abs(got-want) > 1e-9 {
					t.Errorf("Sum during migrate = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	// Re-cluster onto the column-major order while the readers hammer away.
	s := hierarchy.MustSchema(hierarchy.Binary("A", 3), hierarchy.Binary("B", 3))
	newOrder, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Migrate(fs, filepath.Join(dir, "new.db"), newOrder, 16)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	got, _, err := dst.Sum(all, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("migrated Sum = %v, want %v", got, want)
	}
}

// TestConcurrentStress is the tier-1 serving stress test: ≥8 goroutines
// issue grid queries against one FileStore with fault injection active,
// random per-query cancellation, admission control, and a concurrent
// graceful shutdown. Every surfaced failure must be one of the typed
// errors of the serving contract, and the store must scrub clean after
// shutdown.
func TestConcurrentStress(t *testing.T) {
	o := concurrentOrder(t)
	bytes := uniformBytes(o.Len(), 2*FrameSize(8))
	dir := t.TempDir()
	path := filepath.Join(dir, "stress.db")

	// Phase 1: build and load single-threaded, without faults.
	fs, err := CreateFileStore(path, o, bytes, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadConcurrentStore(t, fs, o)
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: reopen behind a fault injector. Transient read faults fire
	// in bursts of 2 — under the retry budget of 3, so they are always
	// ridden out — and a few read-side bit flips surface as CorruptPageError
	// without persisting damage (the disk bytes stay intact).
	layout, err := NewFileLayout(o, bytes, 128)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPageFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	var faults []Fault
	for idx := int64(10); idx < 4000; idx += 61 {
		faults = append(faults, Fault{Op: OpRead, Index: idx, Kind: FaultTransient, Repeat: 2})
	}
	for idx := int64(45); idx < 4000; idx += 333 {
		faults = append(faults, Fault{Op: OpRead, Index: idx, Kind: FaultBitFlip})
	}
	fi := NewFaultInjector(pf, 42, faults...)
	fs, err = NewFileStoreOn(fi, o, bytes, 24, loaded)
	if err != nil {
		t.Fatal(err)
	}
	fs.Pool().SetRetry(RetryPolicy{MaxRetries: 3, Backoff: 50 * time.Microsecond})

	adm, err := NewAdmission(8, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	allowed := func(err error) bool {
		return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrClosed) || errors.Is(err, ErrCorruptPage) || errors.Is(err, ErrOverloaded)
	}

	const workers = 12
	stop := make(chan struct{})
	var queries, rejected, corrupt, cancelled, writes atomic.Int64
	var wg sync.WaitGroup

	// A writer races every reader: whole-cell replacements through the
	// ingest write path, framed to the same size so the layout and fill
	// state never change while queries, faults, and Close are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7777))
		buf := make([]byte, 8)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cell := rng.Intn(o.Len())
			recs := make([][]byte, 2)
			for i := range recs {
				binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(cell*100+i)))
				recs[i] = append([]byte(nil), buf...)
			}
			err := fs.PutCellBytes(cell, FrameRecords(recs...))
			if err == nil {
				writes.Add(1)
				continue
			}
			if errors.Is(err, ErrClosed) {
				return
			}
			if !allowed(err) {
				t.Errorf("writer: untyped failure: %v", err)
				return
			}
			if errors.Is(err, ErrCorruptPage) {
				corrupt.Add(1)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Random region.
				r := make(linear.Region, 2)
				for d := 0; d < 2; d++ {
					lo := rng.Intn(8)
					r[d] = linear.Range{Lo: lo, Hi: lo + 1 + rng.Intn(8-lo)}
				}
				// Random cancellation regime.
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(3) {
				case 0:
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(300))*time.Microsecond)
				case 1:
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(200)) * time.Microsecond
					go func(c context.CancelFunc) {
						time.Sleep(delay)
						c()
					}(cancel)
				}
				weight := layout.Query(r).Pages
				err := adm.Acquire(ctx, weight)
				if err != nil {
					cancel()
					if errors.Is(err, ErrOverloaded) {
						rejected.Add(1)
					} else if !isCtxErr(err) {
						t.Errorf("admission error %v", err)
						return
					}
					continue
				}
				queries.Add(1)
				// Alternate between the sequential path and the parallel
				// fragment path, so cancellation, faults, and Close race
				// against in-flight parallel workers and prefetchers too.
				switch rng.Intn(3) {
				case 0:
					_, _, err = fs.SumCtx(ctx, r, decodeF64)
				case 1:
					_, _, err = fs.SumOptCtx(ctx, r, ReadOptions{Parallelism: 4, Readahead: 2}, decodeF64)
				default:
					err = fs.ReadQueryOptCtx(ctx, r, ReadOptions{Parallelism: 4}, func(int, []byte) error { return nil })
				}
				adm.Release(weight)
				cancel()
				if err != nil {
					if errors.Is(err, ErrTransient) {
						t.Errorf("transient error escaped the retry policy: %v", err)
						return
					}
					if !allowed(err) {
						t.Errorf("untyped failure: %v", err)
						return
					}
					if errors.Is(err, ErrCorruptPage) {
						corrupt.Add(1)
					}
					if isCtxErr(err) {
						cancelled.Add(1)
					}
					if errors.Is(err, ErrClosed) {
						return // graceful shutdown reached this worker
					}
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	// Graceful shutdown while the workers are still issuing queries.
	if err := fs.Close(); err != nil {
		t.Fatalf("concurrent graceful Close: %v", err)
	}
	close(stop)
	wg.Wait()
	t.Logf("stress: %d queries, %d writes, %d overload-rejected, %d corrupt, %d cancelled, pool=%+v, admission=%+v",
		queries.Load(), writes.Load(), rejected.Load(), corrupt.Load(), cancelled.Load(), fs.Pool().Stats(), adm.StatsSnapshot())
	if queries.Load() == 0 {
		t.Error("stress loop issued no queries")
	}
	if writes.Load() == 0 {
		t.Error("stress loop completed no writes")
	}

	// Phase 3: post-shutdown scrub over a clean stack — the injected read
	// faults must not have persisted anything to disk.
	pf2, err := OpenPageFile(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStoreOn(pf2, o, bytes, 16, loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	rep, err := fs2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, p := range rep.Problems {
			t.Errorf("post-shutdown scrub: %v", p)
		}
	}
}

// TestStressShedsToTypedErrorsUnderPermanentFault double-checks that even a
// permanent read fault surfaces as itself (not a data race or hang) and the
// pool serves other pages normally afterwards.
func TestPermanentFaultDoesNotPoisonPool(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := uniformBytes(o.Len(), FrameSize(8))
	path := filepath.Join(t.TempDir(), "perm.db")
	fs, err := CreateFileStore(path, o, bytes, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c := 0; c < o.Len(); c++ {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(float64(c)))
		if err := fs.PutRecord(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen behind the injector so the fault lands on a query read, not on
	// the load phase's read-modify-write traffic.
	pf, err := OpenPageFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	fi := NewFaultInjector(pf, 7, Fault{Op: OpRead, Index: 2, Kind: FaultPermanent})
	fs, err = NewFileStoreOn(fi, o, bytes, 4, loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	all := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	var firstErr error
	var okAfter bool
	for i := 0; i < 6; i++ {
		_, _, err := fs.Sum(all, decodeF64)
		if err != nil && firstErr == nil {
			firstErr = err
		} else if err == nil && firstErr != nil {
			okAfter = true
		}
	}
	if firstErr == nil {
		t.Fatal("permanent fault never surfaced")
	}
	if !errors.Is(firstErr, ErrInjected) {
		t.Errorf("fault surfaced as %v, want ErrInjected chain", firstErr)
	}
	if !okAfter {
		t.Error("pool never recovered after the permanent fault passed")
	}
}
