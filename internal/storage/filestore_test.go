package storage

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/linear"
)

func TestPageFileBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := CreatePageFile(path, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if pf.PageSize() != 128 || pf.Pages() != 4 {
		t.Fatalf("geometry %d×%d", pf.PageSize(), pf.Pages())
	}
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = 0xAB
	}
	if err := pf.WritePage(2, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := pf.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB || got[127] != 0xAB {
		t.Error("page contents lost")
	}
	if err := pf.ReadPage(9, got); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := pf.WritePage(-1, buf); err == nil {
		t.Error("negative page should fail")
	}
	if err := pf.ReadPage(0, make([]byte, 64)); err == nil {
		t.Error("short buffer should fail")
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestPageFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := CreatePageFile(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	buf[0] = 7
	if err := pf.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	pf2, err := OpenPageFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer pf2.Close()
	got := make([]byte, 64)
	if err := pf2.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("contents lost across reopen")
	}
	if _, err := OpenPageFile(path, 60); err == nil {
		t.Error("non-multiple page size should fail")
	}
	if _, err := OpenPageFile(filepath.Join(t.TempDir(), "missing"), 64); err == nil {
		t.Error("missing file should fail")
	}
}

func TestBufferPoolLRUAndWriteBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pool.db")
	pf, err := CreatePageFile(path, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	bp, err := NewBufferPool(pf, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Write to three pages through a 2-frame pool: forces an eviction with
	// write-back.
	for page := int64(0); page < 3; page++ {
		if err := bp.WriteAt([]byte{byte(page + 1)}, page*16); err != nil {
			t.Fatal(err)
		}
	}
	st := bp.Stats()
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
	if st.Evictions != 1 || st.Writes != 1 {
		t.Errorf("evictions/writes = %d/%d, want 1/1", st.Evictions, st.Writes)
	}
	// Page 0 was evicted and written back: the file has its data.
	raw := make([]byte, 16)
	if err := pf.ReadPage(0, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 1 {
		t.Error("write-back lost page 0")
	}
	// Re-reading a cached page is a hit.
	one := make([]byte, 1)
	if err := bp.ReadAt(one, 2*16); err != nil {
		t.Fatal(err)
	}
	if got := bp.Stats().Hits; got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	// Flush persists remaining dirty frames.
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pf.ReadPage(2, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 3 {
		t.Error("flush lost page 2")
	}
	bp.ResetStats()
	if bp.Stats() != (PoolStats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestBufferPoolCrossPageIO(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cross.db")
	pf, err := CreatePageFile(path, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	bp, err := NewBufferPool(pf, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello across pages!")
	if err := bp.WriteAt(data, 5); err != nil { // spans pages 0..2
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := bp.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Errorf("round trip %q", got)
	}
	if _, err := NewBufferPool(pf, 0); err == nil {
		t.Error("zero-capacity pool should fail")
	}
}

// buildFileStore mirrors buildStore against a temp file.
func buildFileStore(t *testing.T, frames int) (*FileStore, [][]float64, string, []int64) {
	t.Helper()
	o := rowMajor4x4(t)
	values := make([][]float64, o.Len())
	bytes := make([]int64, o.Len())
	for c := range values {
		n := 1 + c%3
		values[c] = make([]float64, n)
		for i := range values[c] {
			values[c][i] = float64(c*10 + i)
		}
		bytes[c] = int64(n) * FrameSize(8)
	}
	path := filepath.Join(t.TempDir(), "store.db")
	fs, err := CreateFileStore(path, o, bytes, 64, frames)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for c, vs := range values {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if err := fs.PutRecord(c, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return fs, values, path, bytes
}

func TestFileStoreSumMatchesMemoryStore(t *testing.T) {
	fs, values, _, _ := buildFileStore(t, 4)
	defer fs.Close()
	region := linear.Region{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 3}}
	got, _, err := fs.Sum(region, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	o := fs.Layout().Order()
	coords := make([]int, 2)
	for c := range values {
		o.Coords(c, coords)
		if region.Contains(coords) {
			for _, v := range values[c] {
				want += v
			}
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestFileStorePersistence(t *testing.T) {
	fs, values, path, bytes := buildFileStore(t, 4)
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	o := fs.Layout().Order()
	fs2, err := OpenFileStore(path, o, bytes, 64, 4, loaded)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	region := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	got, _, err := fs2.Sum(region, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, vs := range values {
		for _, v := range vs {
			want += v
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("reopened Sum = %v, want %v", got, want)
	}
}

func TestFileStorePoolPressure(t *testing.T) {
	// A single-frame pool still answers correctly, just with more misses.
	fs, _, _, _ := buildFileStore(t, 1)
	defer fs.Close()
	region := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	first, io1, err := fs.Sum(region, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	second, io2, err := fs.Sum(region, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("sums differ: %v vs %v", first, second)
	}
	if io1.Misses == 0 || io2.Misses == 0 {
		t.Error("single-frame pool should miss")
	}
	// A big pool turns the second scan into pure hits.
	fsBig, _, _, _ := buildFileStore(t, 64)
	defer fsBig.Close()
	if _, _, err := fsBig.Sum(region, decodeF64); err != nil {
		t.Fatal(err)
	}
	_, ioHot, err := fsBig.Sum(region, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if ioHot.Misses != 0 {
		t.Errorf("hot scan missed %d pages", ioHot.Misses)
	}
}

func TestFileStoreErrors(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := make([]int64, o.Len())
	bytes[0] = FrameSize(4)
	dir := t.TempDir()
	fs, err := CreateFileStore(filepath.Join(dir, "s.db"), o, bytes, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.PutRecord(0, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := fs.PutRecord(0, make([]byte, 4)); err == nil {
		t.Error("overflow should fail")
	}
	if _, err := OpenFileStore(filepath.Join(dir, "missing.db"), o, bytes, 64, 2, nil); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := OpenFileStore(filepath.Join(dir, "s.db"), o, bytes, 64, 2, []int64{1}); err == nil {
		t.Error("wrong loadedBytes length should fail")
	}
}

func TestCreatePageFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreatePageFile(filepath.Join(dir, "x"), 0, 4); err == nil {
		t.Error("zero page size should fail")
	}
	if _, err := CreatePageFile(filepath.Join(dir, "x"), 16, -1); err == nil {
		t.Error("negative pages should fail")
	}
	if _, err := CreatePageFile(filepath.Join(dir, "nodir", "x"), 16, 2); err == nil {
		t.Error("missing directory should fail")
	}
}

func TestCreateFileStoreErrors(t *testing.T) {
	o := rowMajor4x4(t)
	bytes := make([]int64, o.Len())
	dir := t.TempDir()
	if _, err := CreateFileStore(filepath.Join(dir, "s"), o, bytes[:3], 64, 2); err == nil {
		t.Error("wrong cell-size count should fail")
	}
	if _, err := CreateFileStore(filepath.Join(dir, "s"), o, bytes, 64, 0); err == nil {
		t.Error("zero pool capacity should fail")
	}
	if _, err := CreateFileStore(filepath.Join(dir, "nodir", "s"), o, bytes, 64, 2); err == nil {
		t.Error("missing directory should fail")
	}
}
