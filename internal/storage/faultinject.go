package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected marks an error manufactured by a FaultInjector, so tests can
// tell deliberate faults from real I/O failures.
var ErrInjected = errors.New("injected fault")

// FaultOp selects which operation class a fault applies to.
type FaultOp int

const (
	OpRead FaultOp = iota
	OpWrite
	OpSync
	numFaultOps
)

func (op FaultOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("FaultOp(%d)", int(op))
}

// FaultKind is what happens when a fault fires.
type FaultKind int

const (
	// FaultTransient fails the operation with an error matching
	// ErrTransient; a retry (which is a new operation with the next index)
	// succeeds once past the fault's Repeat window.
	FaultTransient FaultKind = iota
	// FaultPermanent fails the operation with a non-retryable error.
	FaultPermanent
	// FaultTorn applies to writes: only the first half of the page reaches
	// the inner file (the tail keeps its previous bytes, as after a power
	// cut mid-sector) and the operation reports a permanent error.
	FaultTorn
	// FaultBitFlip applies to reads: the operation "succeeds" but one
	// deterministically chosen bit of the returned page is flipped —
	// silent corruption only a checksum can catch. On writes the flipped
	// page is silently persisted.
	FaultBitFlip
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPermanent:
		return "permanent"
	case FaultTorn:
		return "torn"
	case FaultBitFlip:
		return "bitflip"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault schedules one failure: the Index-th operation of kind Op (0-based,
// counted per operation class) fails with Kind. Transient faults repeat for
// Repeat consecutive operations (default 1), so a pool whose retry budget
// exceeds Repeat rides them out.
type Fault struct {
	Op     FaultOp
	Index  int64
	Kind   FaultKind
	Repeat int
}

func (f Fault) window() int64 {
	if f.Kind == FaultTransient && f.Repeat > 1 {
		return int64(f.Repeat)
	}
	return 1
}

// FaultInjector wraps a PagedFile with a deterministic failure schedule.
// Every behavior — which operation fails, how, and which bit a flip lands
// on — is a pure function of the schedule and the seed, so a failing
// single-threaded run replays exactly. It also counts operations, so a
// test can run a workload once cleanly, read Ops, and then re-run it
// injecting a fault at every index. A mutex serializes operations, so the
// injector is safe to place under a concurrent BufferPool; under
// concurrency the interleaving (and thus which goroutine draws each fault)
// is scheduling-dependent, but the fault schedule itself still fires
// exactly once per scheduled index.
type FaultInjector struct {
	inner    PagedFile
	seed     int64
	faults   []Fault
	mu       sync.Mutex
	counts   [numFaultOps]int64
	injected int64
}

// NewFaultInjector wraps inner with the given fault schedule. The seed
// only influences bit-flip positions.
func NewFaultInjector(inner PagedFile, seed int64, faults ...Fault) *FaultInjector {
	return &FaultInjector{inner: inner, seed: seed, faults: faults}
}

// Ops returns how many operations of the class have been issued so far.
func (fi *FaultInjector) Ops(op FaultOp) int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.counts[op]
}

// Injected returns how many faults have fired.
func (fi *FaultInjector) Injected() int64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.injected
}

// match returns the scheduled fault covering this operation, if any.
func (fi *FaultInjector) match(op FaultOp, idx int64) *Fault {
	for i := range fi.faults {
		f := &fi.faults[i]
		if f.Op == op && idx >= f.Index && idx < f.Index+f.window() {
			return f
		}
	}
	return nil
}

// bitFor picks the deterministic bit position for a flip (splitmix64-style
// mixing of seed and operation index).
func (fi *FaultInjector) bitFor(idx int64, bits int) int {
	x := uint64(fi.seed)*0x9E3779B97F4A7C15 + uint64(idx) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(bits))
}

// PageSize returns the inner page size.
func (fi *FaultInjector) PageSize() int { return fi.inner.PageSize() }

// Pages returns the inner page count.
func (fi *FaultInjector) Pages() int64 { return fi.inner.Pages() }

// ReadPage reads through, applying any scheduled read fault.
func (fi *FaultInjector) ReadPage(page int64, buf []byte) error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	idx := fi.counts[OpRead]
	fi.counts[OpRead]++
	f := fi.match(OpRead, idx)
	if f == nil {
		return fi.inner.ReadPage(page, buf)
	}
	fi.injected++
	switch f.Kind {
	case FaultTransient:
		return fmt.Errorf("read op %d on page %d: %w: %w", idx, page, ErrInjected, ErrTransient)
	case FaultBitFlip:
		if err := fi.inner.ReadPage(page, buf); err != nil {
			return err
		}
		bit := fi.bitFor(idx, len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
		return nil
	default:
		return fmt.Errorf("read op %d on page %d: %w", idx, page, ErrInjected)
	}
}

// WritePage writes through, applying any scheduled write fault.
func (fi *FaultInjector) WritePage(page int64, buf []byte) error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	idx := fi.counts[OpWrite]
	fi.counts[OpWrite]++
	f := fi.match(OpWrite, idx)
	if f == nil {
		return fi.inner.WritePage(page, buf)
	}
	fi.injected++
	switch f.Kind {
	case FaultTransient:
		return fmt.Errorf("write op %d on page %d: %w: %w", idx, page, ErrInjected, ErrTransient)
	case FaultTorn:
		// Persist only the first half; the tail keeps whatever the file
		// held before, like a sector-aligned power cut.
		torn := make([]byte, len(buf))
		if err := fi.inner.ReadPage(page, torn); err != nil {
			copy(torn, make([]byte, len(buf)))
		}
		copy(torn[:len(buf)/2], buf[:len(buf)/2])
		if err := fi.inner.WritePage(page, torn); err != nil {
			return err
		}
		return fmt.Errorf("torn write op %d on page %d: %w", idx, page, ErrInjected)
	case FaultBitFlip:
		flipped := make([]byte, len(buf))
		copy(flipped, buf)
		bit := fi.bitFor(idx, len(buf)*8)
		flipped[bit/8] ^= 1 << (bit % 8)
		return fi.inner.WritePage(page, flipped)
	default:
		return fmt.Errorf("write op %d on page %d: %w", idx, page, ErrInjected)
	}
}

// Sync syncs through, applying any scheduled sync fault.
func (fi *FaultInjector) Sync() error {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	idx := fi.counts[OpSync]
	fi.counts[OpSync]++
	f := fi.match(OpSync, idx)
	if f == nil {
		return fi.inner.Sync()
	}
	fi.injected++
	if f.Kind == FaultTransient {
		return fmt.Errorf("sync op %d: %w: %w", idx, ErrInjected, ErrTransient)
	}
	return fmt.Errorf("sync op %d: %w", idx, ErrInjected)
}

// Close closes the inner file.
func (fi *FaultInjector) Close() error { return fi.inner.Close() }
