package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// PageFile is a fixed-page-size file: the real-disk counterpart of the
// in-memory simulator, with the same page-granular access pattern.
// ReadPage, WritePage, and Sync are safe for concurrent use (they map to
// positioned pread/pwrite on disjoint or idempotent ranges); Close must not
// race with in-flight operations.
type PageFile struct {
	f        *os.File
	pageSize int
	pages    int64
}

// CreatePageFile creates (truncating) a page file with the given number of
// zeroed pages.
func CreatePageFile(path string, pageSize int, pages int64) (*PageFile, error) {
	if pageSize <= 0 || pages < 0 {
		return nil, fmt.Errorf("storage: invalid page file geometry %d×%d", pageSize, pages)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(pageSize) * pages); err != nil {
		f.Close()
		return nil, err
	}
	return &PageFile{f: f, pageSize: pageSize, pages: pages}, nil
}

// OpenPageFile opens an existing page file; its size must be a whole number
// of pages.
func OpenPageFile(path string, pageSize int) (*PageFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s is %d bytes, not a multiple of the %d-byte page", path, fi.Size(), pageSize)
	}
	return &PageFile{f: f, pageSize: pageSize, pages: fi.Size() / int64(pageSize)}, nil
}

// PageSize returns the file's page size in bytes.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Pages returns the number of pages in the file.
func (pf *PageFile) Pages() int64 { return pf.pages }

func (pf *PageFile) checkPage(page int64) error {
	if page < 0 || page >= pf.pages {
		return fmt.Errorf("storage: page %d out of range [0,%d)", page, pf.pages)
	}
	return nil
}

// ReadPage fills buf (of PageSize bytes) with the page's contents.
func (pf *PageFile) ReadPage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.ReadAt(buf, page*int64(pf.pageSize))
	return err
}

// WritePage writes buf (of PageSize bytes) to the page.
func (pf *PageFile) WritePage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.WriteAt(buf, page*int64(pf.pageSize))
	return err
}

// Sync flushes the file to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *PageFile) Close() error { return pf.f.Close() }

// PoolStats counts buffer pool traffic. It is a point-in-time snapshot;
// under concurrent load the fields are individually exact but need not be
// mutually consistent.
type PoolStats struct {
	Hits              int64
	Misses            int64 // physical page loads (one per coalesced miss group)
	Evictions         int64
	Writes            int64 // physical page writes (write-back)
	Retries           int64 // transient I/O errors ridden out by the retry policy
	SingleFlightWaits int64 // goroutines that waited on another goroutine's in-flight load of the same page
}

// BufferPool caches page frames over a PagedFile with LRU replacement and
// write-back, the classic database buffer manager. It is safe for
// concurrent use: a short pool mutex guards the page table and LRU list,
// each frame carries its own latch for data access, and concurrent misses
// on the same page coalesce into a single disk read (single-flight — the
// extra goroutines wait for the first load and are counted in
// PoolStats.SingleFlightWaits). Frames are pinned while a caller copies in
// or out of them, and only unpinned frames are eviction victims, so the
// frame capacity must exceed the number of goroutines touching the pool at
// once (each goroutine pins at most one frame at a time).
//
// Transient I/O errors (errors matching ErrTransient) are retried with
// exponential backoff under the pool's RetryPolicy; the backoff sleeps are
// context-aware. All other errors propagate to the caller.
type BufferPool struct {
	pf       PagedFile
	capacity int

	mu     sync.Mutex // guards frames, lru, and every frame's pins field
	frames map[int64]*list.Element
	lru    *list.List // front = most recently used

	retryMu sync.Mutex
	retry   RetryPolicy

	hits, misses, evictions, writes, retries, sfWaits atomic.Int64
}

// frame is one cached page. The pool mutex guards pins and list membership;
// the latch guards data and dirty. Latch holders always hold a pin, so a
// frame with zero pins has no latch holder and may be evicted.
type frame struct {
	page  int64
	data  []byte
	mu    sync.Mutex // latch
	dirty bool
	pins  int
	ready chan struct{} // closed once the initial load finished
	err   error         // load error; set before ready is closed
}

// NewBufferPool wraps a paged file with a pool of the given frame capacity
// under the DefaultRetry policy.
func NewBufferPool(pf PagedFile, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d must be positive", capacity)
	}
	return &BufferPool{
		pf:       pf,
		capacity: capacity,
		frames:   make(map[int64]*list.Element, capacity),
		lru:      list.New(),
		retry:    DefaultRetry,
	}, nil
}

// SetRetry replaces the pool's transient-error retry policy.
func (bp *BufferPool) SetRetry(rp RetryPolicy) {
	bp.retryMu.Lock()
	bp.retry = rp
	bp.retryMu.Unlock()
}

// Stats returns a snapshot of the pool's traffic counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:              bp.hits.Load(),
		Misses:            bp.misses.Load(),
		Evictions:         bp.evictions.Load(),
		Writes:            bp.writes.Load(),
		Retries:           bp.retries.Load(),
		SingleFlightWaits: bp.sfWaits.Load(),
	}
}

// ResetStats clears the pool's global traffic counters. Per-query
// accounting (SumCtx, WithPoolTally) uses request-local tallies, never
// deltas over these counters, so resetting mid-flight cannot corrupt any
// query's reported stats — it only rewinds the process-lifetime totals
// that Stats (and the /metrics endpoint) expose.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.writes.Store(0)
	bp.retries.Store(0)
	bp.sfWaits.Store(0)
}

// withRetry runs op, retrying transient failures per the pool's policy with
// doubling backoff. The sleeps select on ctx, so a cancelled caller stops
// retrying immediately.
func (bp *BufferPool) withRetry(ctx context.Context, op func() error) error {
	bp.retryMu.Lock()
	rp := bp.retry
	bp.retryMu.Unlock()
	backoff := rp.Backoff
	tally := tallyFrom(ctx)
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || attempt >= rp.MaxRetries || !errors.Is(err, ErrTransient) {
			return err
		}
		bp.retries.Add(1)
		if tally != nil {
			tally.retries.Add(1)
		}
		if backoff > 0 {
			// The backoff sleep is where a retried request's latency hides;
			// give it a span so slow-query forensics can see it.
			sp := trace.StartLeaf(ctx, trace.KindRetry, "")
			sp.SetAttr("attempt", int64(attempt+1))
			sp.SetAttr("backoff_ns", int64(backoff))
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
				sp.End()
			case <-ctx.Done():
				t.Stop()
				sp.SetError(ctx.Err())
				sp.End()
				return ctx.Err()
			}
			backoff *= 2
		} else if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the page's frame, pinned; the caller must unpin it. A miss
// loads the page outside the pool mutex; concurrent misses on the same page
// wait for the first loader instead of issuing duplicate reads. If the
// loader abandons the load because its own context ended, waiters with a
// live context retry the load themselves, so one query's cancellation never
// surfaces as another query's error.
func (bp *BufferPool) get(ctx context.Context, page int64) (*frame, error) {
	for {
		fr, err := bp.getOnce(ctx, page)
		if err != nil && isCtxErr(err) && ctx.Err() == nil {
			continue // the coalesced loader was cancelled, not us: reload
		}
		return fr, err
	}
}

func (bp *BufferPool) getOnce(ctx context.Context, page int64) (*frame, error) {
	tally := tallyFrom(ctx)
	bp.mu.Lock()
	if el, ok := bp.frames[page]; ok {
		fr := el.Value.(*frame)
		fr.pins++
		bp.lru.MoveToFront(el)
		bp.mu.Unlock()
		select {
		case <-fr.ready: // already loaded
			bp.hits.Add(1)
			if tally != nil {
				tally.hits.Add(1)
			}
		default: // someone else's load is in flight: wait for it
			bp.sfWaits.Add(1)
			if tally != nil {
				tally.sfWaits.Add(1)
			}
			select {
			case <-fr.ready:
			case <-ctx.Done():
				bp.unpin(fr)
				return nil, ctx.Err()
			}
		}
		if fr.err != nil {
			bp.unpin(fr)
			return nil, fr.err
		}
		return fr, nil
	}
	bp.misses.Add(1)
	if tally != nil {
		tally.misses.Add(1)
	}
	if bp.lru.Len() >= bp.capacity {
		if err := bp.evictLocked(ctx); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	fr := &frame{page: page, data: make([]byte, bp.pf.PageSize()), pins: 1, ready: make(chan struct{})}
	bp.frames[page] = bp.lru.PushFront(fr)
	bp.mu.Unlock()

	sp := trace.StartLeaf(ctx, trace.KindPageLoad, "")
	sp.SetAttr("page", page)
	if err := bp.withRetry(ctx, func() error { return bp.pf.ReadPage(page, fr.data) }); err != nil {
		sp.SetError(err)
		sp.End()
		// Failed loads leave no frame behind: drop it so a later access
		// retries from disk, then wake the waiters with the error.
		bp.mu.Lock()
		if el, ok := bp.frames[page]; ok && el.Value.(*frame) == fr {
			bp.lru.Remove(el)
			delete(bp.frames, page)
		}
		fr.pins--
		bp.mu.Unlock()
		fr.err = err
		close(fr.ready)
		return nil, err
	}
	sp.End()
	if tally != nil {
		tally.physRead(page)
	}
	close(fr.ready)
	return fr, nil
}

// unpin releases a pin taken by get.
func (bp *BufferPool) unpin(fr *frame) {
	bp.mu.Lock()
	fr.pins--
	bp.mu.Unlock()
}

// evictLocked writes back and drops the least recently used unpinned frame.
// Called with the pool mutex held; the write-back happens under it, which
// keeps a concurrent miss on the victim page from reading stale bytes.
func (bp *BufferPool) evictLocked(ctx context.Context) error {
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		fr := el.Value.(*frame)
		if fr.pins > 0 {
			continue // pinned or still loading (loaders hold a pin)
		}
		// pins == 0 ⇒ no latch holder, so data/dirty are stable here.
		// Eviction work is attributed to the request whose miss forced it.
		tally := tallyFrom(ctx)
		if fr.dirty {
			if err := bp.withRetry(ctx, func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
				return err
			}
			bp.writes.Add(1)
			if tally != nil {
				tally.writes.Add(1)
			}
			fr.dirty = false
		}
		bp.lru.Remove(el)
		delete(bp.frames, fr.page)
		bp.evictions.Add(1)
		if tally != nil {
			tally.evictions.Add(1)
		}
		return nil
	}
	return fmt.Errorf("storage: all %d pool frames are pinned; size the pool above the number of concurrent readers", bp.capacity)
}

// ReadAt copies n bytes at the byte offset into dst, faulting pages as
// needed.
func (bp *BufferPool) ReadAt(dst []byte, off int64) error {
	return bp.ReadAtCtx(context.Background(), dst, off)
}

// ReadAtCtx is ReadAt with cancellation: the context is checked between
// page accesses and during load waits and retry backoffs.
func (bp *BufferPool) ReadAtCtx(ctx context.Context, dst []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(dst) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fr, err := bp.get(ctx, off/ps)
		if err != nil {
			return err
		}
		fr.mu.Lock()
		n := copy(dst, fr.data[off%ps:])
		fr.mu.Unlock()
		bp.unpin(fr)
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt copies src to the byte offset through the pool (write-back: pages
// are marked dirty and reach the file on eviction or Flush).
func (bp *BufferPool) WriteAt(src []byte, off int64) error {
	return bp.WriteAtCtx(context.Background(), src, off)
}

// WriteAtCtx is WriteAt with cancellation.
func (bp *BufferPool) WriteAtCtx(ctx context.Context, src []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(src) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fr, err := bp.get(ctx, off/ps)
		if err != nil {
			return err
		}
		fr.mu.Lock()
		n := copy(fr.data[off%ps:], src)
		fr.dirty = true
		fr.mu.Unlock()
		bp.unpin(fr)
		src = src[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes every dirty frame back to the file and syncs it. On error
// the failed frame stays dirty, so a later Flush retries it; no write is
// ever silently dropped. Flush pins one frame at a time, so concurrent
// readers keep making progress while it runs.
func (bp *BufferPool) Flush() error { return bp.FlushCtx(context.Background()) }

// FlushCtx is Flush with cancellation.
func (bp *BufferPool) FlushCtx(ctx context.Context) error {
	bp.mu.Lock()
	pages := make([]int64, 0, bp.lru.Len())
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		pages = append(pages, el.Value.(*frame).page)
	}
	bp.mu.Unlock()
	var firstErr error
	for _, page := range pages {
		bp.mu.Lock()
		el, ok := bp.frames[page]
		if !ok {
			bp.mu.Unlock()
			continue // evicted since the snapshot: its write-back already happened
		}
		fr := el.Value.(*frame)
		fr.pins++
		bp.mu.Unlock()
		<-fr.ready
		if fr.err == nil {
			fr.mu.Lock()
			if fr.dirty {
				if err := bp.withRetry(ctx, func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("storage: flushing page %d: %w", fr.page, err)
					}
				} else {
					bp.writes.Add(1)
					fr.dirty = false
				}
			}
			fr.mu.Unlock()
		}
		bp.unpin(fr)
	}
	if firstErr != nil {
		return firstErr
	}
	if err := bp.withRetry(ctx, bp.pf.Sync); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}
