package storage

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"time"
)

// PageFile is a fixed-page-size file: the real-disk counterpart of the
// in-memory simulator, with the same page-granular access pattern.
type PageFile struct {
	f        *os.File
	pageSize int
	pages    int64
}

// CreatePageFile creates (truncating) a page file with the given number of
// zeroed pages.
func CreatePageFile(path string, pageSize int, pages int64) (*PageFile, error) {
	if pageSize <= 0 || pages < 0 {
		return nil, fmt.Errorf("storage: invalid page file geometry %d×%d", pageSize, pages)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(pageSize) * pages); err != nil {
		f.Close()
		return nil, err
	}
	return &PageFile{f: f, pageSize: pageSize, pages: pages}, nil
}

// OpenPageFile opens an existing page file; its size must be a whole number
// of pages.
func OpenPageFile(path string, pageSize int) (*PageFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s is %d bytes, not a multiple of the %d-byte page", path, fi.Size(), pageSize)
	}
	return &PageFile{f: f, pageSize: pageSize, pages: fi.Size() / int64(pageSize)}, nil
}

// PageSize returns the file's page size in bytes.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Pages returns the number of pages in the file.
func (pf *PageFile) Pages() int64 { return pf.pages }

func (pf *PageFile) checkPage(page int64) error {
	if page < 0 || page >= pf.pages {
		return fmt.Errorf("storage: page %d out of range [0,%d)", page, pf.pages)
	}
	return nil
}

// ReadPage fills buf (of PageSize bytes) with the page's contents.
func (pf *PageFile) ReadPage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.ReadAt(buf, page*int64(pf.pageSize))
	return err
}

// WritePage writes buf (of PageSize bytes) to the page.
func (pf *PageFile) WritePage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.WriteAt(buf, page*int64(pf.pageSize))
	return err
}

// Sync flushes the file to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file.
func (pf *PageFile) Close() error { return pf.f.Close() }

// PoolStats counts buffer pool traffic.
type PoolStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Writes    int64 // physical page writes (write-back)
	Retries   int64 // transient I/O errors ridden out by the retry policy
}

// BufferPool caches page frames over a PagedFile with LRU replacement and
// write-back, the classic database buffer manager. Transient I/O errors
// (errors matching ErrTransient) are retried with exponential backoff under
// the pool's RetryPolicy; all other errors propagate to the caller. It is
// not safe for concurrent use; wrap it if multiple goroutines share a pool.
type BufferPool struct {
	pf       PagedFile
	capacity int
	frames   map[int64]*list.Element
	lru      *list.List // front = most recently used
	stats    PoolStats
	retry    RetryPolicy
}

type frame struct {
	page  int64
	data  []byte
	dirty bool
}

// NewBufferPool wraps a paged file with a pool of the given frame capacity
// under the DefaultRetry policy.
func NewBufferPool(pf PagedFile, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d must be positive", capacity)
	}
	return &BufferPool{
		pf:       pf,
		capacity: capacity,
		frames:   make(map[int64]*list.Element, capacity),
		lru:      list.New(),
		retry:    DefaultRetry,
	}, nil
}

// SetRetry replaces the pool's transient-error retry policy.
func (bp *BufferPool) SetRetry(rp RetryPolicy) { bp.retry = rp }

// Stats returns the pool's traffic counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// ResetStats clears the traffic counters.
func (bp *BufferPool) ResetStats() { bp.stats = PoolStats{} }

// withRetry runs op, retrying transient failures per the pool's policy
// with doubling backoff.
func (bp *BufferPool) withRetry(op func() error) error {
	backoff := bp.retry.Backoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || attempt >= bp.retry.MaxRetries || !errors.Is(err, ErrTransient) {
			return err
		}
		bp.stats.Retries++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// get returns the frame of the page, faulting it in if needed.
func (bp *BufferPool) get(page int64) (*frame, error) {
	if el, ok := bp.frames[page]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return el.Value.(*frame), nil
	}
	bp.stats.Misses++
	if bp.lru.Len() >= bp.capacity {
		if err := bp.evict(); err != nil {
			return nil, err
		}
	}
	fr := &frame{page: page, data: make([]byte, bp.pf.PageSize())}
	if err := bp.withRetry(func() error { return bp.pf.ReadPage(page, fr.data) }); err != nil {
		return nil, err
	}
	bp.frames[page] = bp.lru.PushFront(fr)
	return fr, nil
}

// evict writes back and drops the least recently used frame.
func (bp *BufferPool) evict() error {
	el := bp.lru.Back()
	if el == nil {
		return fmt.Errorf("storage: evict on empty pool")
	}
	fr := el.Value.(*frame)
	if fr.dirty {
		if err := bp.withRetry(func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
			return err
		}
		bp.stats.Writes++
	}
	bp.lru.Remove(el)
	delete(bp.frames, fr.page)
	bp.stats.Evictions++
	return nil
}

// ReadAt copies n bytes at the byte offset into dst, faulting pages as
// needed.
func (bp *BufferPool) ReadAt(dst []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(dst) > 0 {
		page := off / ps
		po := off % ps
		fr, err := bp.get(page)
		if err != nil {
			return err
		}
		n := copy(dst, fr.data[po:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt copies src to the byte offset through the pool (write-back: pages
// are marked dirty and reach the file on eviction or Flush).
func (bp *BufferPool) WriteAt(src []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(src) > 0 {
		page := off / ps
		po := off % ps
		fr, err := bp.get(page)
		if err != nil {
			return err
		}
		n := copy(fr.data[po:], src)
		fr.dirty = true
		src = src[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes every dirty frame back to the file and syncs it. On error
// the failed frame stays dirty, so a later Flush retries it; no write is
// ever silently dropped.
func (bp *BufferPool) Flush() error {
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := bp.withRetry(func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
				return fmt.Errorf("storage: flushing page %d: %w", fr.page, err)
			}
			bp.stats.Writes++
			fr.dirty = false
		}
	}
	if err := bp.withRetry(bp.pf.Sync); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}
