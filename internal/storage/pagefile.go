package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/trace"
)

// PageFile is a fixed-page-size file: the real-disk counterpart of the
// in-memory simulator, with the same page-granular access pattern.
// ReadPage, WritePage, and Sync are safe for concurrent use (they map to
// positioned pread/pwrite on disjoint or idempotent ranges); Close must not
// race with in-flight operations.
//
// Bulk reads (ReadPages) go through a lazily established read-only mmap of
// the file when the platform provides one: a span lands in the caller's
// buffer with one copy out of the page cache and no syscall per window.
// Writes keep using pwrite, which Linux keeps coherent with the mapping (a
// single shared page cache backs both). When mmap is unavailable the bulk
// path falls back to a single positioned read.
type PageFile struct {
	f        *os.File
	pageSize int
	pages    int64

	mapOnce sync.Once
	mapped  []byte // read-only mapping of the whole file; nil if unavailable
}

// CreatePageFile creates (truncating) a page file with the given number of
// zeroed pages.
func CreatePageFile(path string, pageSize int, pages int64) (*PageFile, error) {
	if pageSize <= 0 || pages < 0 {
		return nil, fmt.Errorf("storage: invalid page file geometry %d×%d", pageSize, pages)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(pageSize) * pages); err != nil {
		f.Close()
		return nil, err
	}
	return &PageFile{f: f, pageSize: pageSize, pages: pages}, nil
}

// OpenPageFile opens an existing page file; its size must be a whole number
// of pages.
func OpenPageFile(path string, pageSize int) (*PageFile, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s is %d bytes, not a multiple of the %d-byte page", path, fi.Size(), pageSize)
	}
	return &PageFile{f: f, pageSize: pageSize, pages: fi.Size() / int64(pageSize)}, nil
}

// PageSize returns the file's page size in bytes.
func (pf *PageFile) PageSize() int { return pf.pageSize }

// Pages returns the number of pages in the file.
func (pf *PageFile) Pages() int64 { return pf.pages }

func (pf *PageFile) checkPage(page int64) error {
	if page < 0 || page >= pf.pages {
		return fmt.Errorf("storage: page %d out of range [0,%d)", page, pf.pages)
	}
	return nil
}

// ReadPage fills buf (of PageSize bytes) with the page's contents.
func (pf *PageFile) ReadPage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: read buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.ReadAt(buf, page*int64(pf.pageSize))
	return err
}

// ReadPages fills buf — a whole number of PageSize units — with the
// consecutive pages starting at page, in one positioned read. This is the
// BulkReader fast path the span read stack bottoms out in: one pread per
// readahead window instead of one per page.
func (pf *PageFile) ReadPages(page int64, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if len(buf)%pf.pageSize != 0 {
		return fmt.Errorf("storage: bulk read buffer is %d bytes, not a multiple of the %d-byte page", len(buf), pf.pageSize)
	}
	n := int64(len(buf) / pf.pageSize)
	if page < 0 || page+n > pf.pages {
		return fmt.Errorf("storage: pages [%d,%d) out of range [0,%d)", page, page+n, pf.pages)
	}
	off := page * int64(pf.pageSize)
	if m := pf.mmapped(); m != nil {
		copy(buf, m[off:off+int64(len(buf))])
		return nil
	}
	_, err := pf.f.ReadAt(buf, off)
	return err
}

// MappedPages returns the raw bytes of n consecutive pages straight from
// the file's read-only mapping, or nil when mapping is unavailable.
func (pf *PageFile) MappedPages(page, n int64) []byte {
	if page < 0 || n <= 0 || page+n > pf.pages {
		return nil
	}
	m := pf.mmapped()
	if m == nil {
		return nil
	}
	ps := int64(pf.pageSize)
	return m[page*ps : (page+n)*ps]
}

// mmapped returns the file's read-only mapping, establishing it on first
// use. Returns nil (and ReadPages preads instead) if the file is empty or
// the mapping fails.
func (pf *PageFile) mmapped() []byte {
	pf.mapOnce.Do(func() {
		size := int64(pf.pageSize) * pf.pages
		if size <= 0 || size != int64(int(size)) {
			return
		}
		m, err := syscall.Mmap(int(pf.f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			pf.mapped = m
		}
	})
	return pf.mapped
}

// WritePage writes buf (of PageSize bytes) to the page.
func (pf *PageFile) WritePage(page int64, buf []byte) error {
	if err := pf.checkPage(page); err != nil {
		return err
	}
	if len(buf) != pf.pageSize {
		return fmt.Errorf("storage: write buffer is %d bytes, want %d", len(buf), pf.pageSize)
	}
	_, err := pf.f.WriteAt(buf, page*int64(pf.pageSize))
	return err
}

// Sync flushes the file to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// Close closes the underlying file, releasing the bulk-read mapping if one
// was established.
func (pf *PageFile) Close() error {
	if pf.mapped != nil {
		syscall.Munmap(pf.mapped)
		pf.mapped = nil
	}
	return pf.f.Close()
}

// PoolStats counts buffer pool traffic. It is a point-in-time snapshot;
// under concurrent load the fields are individually exact but need not be
// mutually consistent.
type PoolStats struct {
	Hits              int64
	Misses            int64 // physical page loads (one per coalesced miss group)
	Evictions         int64
	Writes            int64 // physical page writes (write-back)
	Retries           int64 // transient I/O errors ridden out by the retry policy
	SingleFlightWaits int64 // goroutines that waited on another goroutine's in-flight load of the same page
}

// BufferPool caches page frames over a PagedFile with LRU replacement and
// write-back, the classic database buffer manager. It is safe for
// concurrent use: a short pool mutex guards the page table and LRU list,
// each frame carries its own latch for data access, and concurrent misses
// on the same page coalesce into a single disk read (single-flight — the
// extra goroutines wait for the first load and are counted in
// PoolStats.SingleFlightWaits). Frames are pinned while a caller copies in
// or out of them, and only unpinned frames are eviction victims, so the
// frame capacity must exceed the number of goroutines touching the pool at
// once (each goroutine pins at most one frame at a time).
//
// Transient I/O errors (errors matching ErrTransient) are retried with
// exponential backoff under the pool's RetryPolicy; the backoff sleeps are
// context-aware. All other errors propagate to the caller.
type BufferPool struct {
	pf       PagedFile
	capacity int

	mu     sync.Mutex // guards frames, lru, free, and every frame's pins field
	frames map[int64]*list.Element
	lru    *list.List // front = most recently used
	free   [][]byte   // page buffers recycled from evicted frames, ≤ capacity

	retryMu sync.Mutex
	retry   RetryPolicy

	hits, misses, evictions, writes, retries, sfWaits atomic.Int64
}

// frame is one cached page. The pool mutex guards pins and list membership;
// the latch guards data and dirty. Latch holders always hold a pin, so a
// frame with zero pins has no latch holder and may be evicted.
type frame struct {
	page  int64
	data  []byte
	mu    sync.Mutex // latch
	dirty bool
	pins  int
	ready chan struct{} // closed once the initial load finished
	err   error         // load error; set before ready is closed
}

// NewBufferPool wraps a paged file with a pool of the given frame capacity
// under the DefaultRetry policy.
func NewBufferPool(pf PagedFile, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer pool capacity %d must be positive", capacity)
	}
	return &BufferPool{
		pf:       pf,
		capacity: capacity,
		frames:   make(map[int64]*list.Element, capacity),
		lru:      list.New(),
		retry:    DefaultRetry,
	}, nil
}

// SetRetry replaces the pool's transient-error retry policy.
func (bp *BufferPool) SetRetry(rp RetryPolicy) {
	bp.retryMu.Lock()
	bp.retry = rp
	bp.retryMu.Unlock()
}

// Stats returns a snapshot of the pool's traffic counters.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:              bp.hits.Load(),
		Misses:            bp.misses.Load(),
		Evictions:         bp.evictions.Load(),
		Writes:            bp.writes.Load(),
		Retries:           bp.retries.Load(),
		SingleFlightWaits: bp.sfWaits.Load(),
	}
}

// ResetStats clears the pool's global traffic counters. Per-query
// accounting (SumCtx, WithPoolTally) uses request-local tallies, never
// deltas over these counters, so resetting mid-flight cannot corrupt any
// query's reported stats — it only rewinds the process-lifetime totals
// that Stats (and the /metrics endpoint) expose.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.writes.Store(0)
	bp.retries.Store(0)
	bp.sfWaits.Store(0)
}

// withRetry runs op, retrying transient failures per the pool's policy with
// doubling backoff. The sleeps select on ctx, so a cancelled caller stops
// retrying immediately.
func (bp *BufferPool) withRetry(ctx context.Context, op func() error) error {
	bp.retryMu.Lock()
	rp := bp.retry
	bp.retryMu.Unlock()
	backoff := rp.Backoff
	tally := tallyFrom(ctx)
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || attempt >= rp.MaxRetries || !errors.Is(err, ErrTransient) {
			return err
		}
		bp.retries.Add(1)
		if tally != nil {
			tally.retries.Add(1)
		}
		if backoff > 0 {
			// The backoff sleep is where a retried request's latency hides;
			// give it a span so slow-query forensics can see it.
			sp := trace.StartLeaf(ctx, trace.KindRetry, "")
			sp.SetAttr("attempt", int64(attempt+1))
			sp.SetAttr("backoff_ns", int64(backoff))
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
				sp.End()
			case <-ctx.Done():
				t.Stop()
				sp.SetError(ctx.Err())
				sp.End()
				return ctx.Err()
			}
			backoff *= 2
		} else if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// get returns the page's frame, pinned; the caller must unpin it. A miss
// loads the page outside the pool mutex; concurrent misses on the same page
// wait for the first loader instead of issuing duplicate reads. If the
// loader abandons the load because its own context ended, waiters with a
// live context retry the load themselves, so one query's cancellation never
// surfaces as another query's error.
func (bp *BufferPool) get(ctx context.Context, page int64) (*frame, error) {
	for {
		fr, err := bp.getOnce(ctx, page)
		if err != nil && isCtxErr(err) && ctx.Err() == nil {
			continue // the coalesced loader was cancelled, not us: reload
		}
		return fr, err
	}
}

func (bp *BufferPool) getOnce(ctx context.Context, page int64) (*frame, error) {
	tally := tallyFrom(ctx)
	bp.mu.Lock()
	if el, ok := bp.frames[page]; ok {
		fr := el.Value.(*frame)
		fr.pins++
		bp.lru.MoveToFront(el)
		bp.mu.Unlock()
		select {
		case <-fr.ready: // already loaded
			bp.hits.Add(1)
			if tally != nil {
				tally.hits.Add(1)
			}
		default: // someone else's load is in flight: wait for it
			bp.sfWaits.Add(1)
			if tally != nil {
				tally.sfWaits.Add(1)
			}
			select {
			case <-fr.ready:
			case <-ctx.Done():
				bp.unpin(fr)
				return nil, ctx.Err()
			}
		}
		if fr.err != nil {
			bp.unpin(fr)
			return nil, fr.err
		}
		return fr, nil
	}
	bp.misses.Add(1)
	if tally != nil {
		tally.misses.Add(1)
	}
	if bp.lru.Len() >= bp.capacity {
		if err := bp.evictLocked(ctx); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	fr := &frame{page: page, data: bp.frameDataLocked(), pins: 1, ready: make(chan struct{})}
	bp.frames[page] = bp.lru.PushFront(fr)
	bp.mu.Unlock()

	sp := trace.StartLeaf(ctx, trace.KindPageLoad, "")
	sp.SetAttr("page", page)
	if err := bp.withRetry(ctx, func() error { return bp.pf.ReadPage(page, fr.data) }); err != nil {
		sp.SetError(err)
		sp.End()
		// Failed loads leave no frame behind: drop it so a later access
		// retries from disk, then wake the waiters with the error.
		bp.mu.Lock()
		if el, ok := bp.frames[page]; ok && el.Value.(*frame) == fr {
			bp.lru.Remove(el)
			delete(bp.frames, page)
		}
		fr.pins--
		bp.mu.Unlock()
		fr.err = err
		close(fr.ready)
		return nil, err
	}
	sp.End()
	if tally != nil {
		tally.physRead(page)
	}
	close(fr.ready)
	return fr, nil
}

// unpin releases a pin taken by get.
func (bp *BufferPool) unpin(fr *frame) {
	bp.mu.Lock()
	fr.pins--
	bp.mu.Unlock()
}

// unpinSpan releases the pins of all frames under one pool-mutex round.
func (bp *BufferPool) unpinSpan(frames []*frame) {
	bp.mu.Lock()
	for _, fr := range frames {
		fr.pins--
	}
	bp.mu.Unlock()
}

// frameDataLocked returns a page-sized buffer for a new frame, recycling an
// evicted frame's buffer when one is available. Called with bp.mu held.
func (bp *BufferPool) frameDataLocked() []byte {
	if n := len(bp.free); n > 0 {
		d := bp.free[n-1]
		bp.free[n-1] = nil
		bp.free = bp.free[:n-1]
		return d
	}
	return make([]byte, bp.pf.PageSize())
}

// getSpan returns pinned, ready frames for the n consecutive pages starting
// at lo, appended to frames (a caller-owned scratch slice). Resident pages
// are pinned in one pool-mutex pass; absent pages are claimed as loading
// frames and then fetched with as few physical reads as possible — each
// contiguous group of absent pages becomes one PageSpanReader call. Claims
// are published (ready closed) before the call waits on any other
// goroutine's in-flight load, so two overlapping spans cannot deadlock on
// each other. On error no pins are retained. The caller must release the
// returned frames with unpinSpan. Frames are returned in page order:
// frames[base+i] holds page lo+i.
func (bp *BufferPool) getSpan(ctx context.Context, lo int64, n int, frames []*frame) ([]*frame, error) {
	sr, _ := bp.pf.(PageSpanReader)
	if sr == nil || n == 1 {
		// No span capability underneath (e.g. a bare test PagedFile):
		// degrade to per-page gets with identical semantics.
		base := len(frames)
		for i := 0; i < n; i++ {
			fr, err := bp.get(ctx, lo+int64(i))
			if err != nil {
				bp.unpinSpan(frames[base:])
				return nil, err
			}
			frames = append(frames, fr)
		}
		return frames, nil
	}

	tally := tallyFrom(ctx)
	base := len(frames)
	var claimed []*frame // absent pages this call must load, ascending
	bp.mu.Lock()
	for p := lo; p < lo+int64(n); p++ {
		if el, ok := bp.frames[p]; ok {
			fr := el.Value.(*frame)
			fr.pins++
			bp.lru.MoveToFront(el)
			frames = append(frames, fr)
			continue
		}
		if bp.lru.Len() >= bp.capacity {
			if err := bp.evictLocked(ctx); err != nil {
				// Unwind everything taken so far: pins on resident frames
				// and the claims (which nobody has loaded).
				for _, fr := range claimed {
					if el, ok := bp.frames[fr.page]; ok && el.Value.(*frame) == fr {
						bp.lru.Remove(el)
						delete(bp.frames, fr.page)
					}
				}
				for _, fr := range frames[base:] {
					fr.pins--
				}
				bp.mu.Unlock()
				for _, fr := range claimed {
					fr.err = err
					close(fr.ready)
				}
				return nil, err
			}
		}
		bp.misses.Add(1)
		if tally != nil {
			tally.misses.Add(1)
		}
		fr := &frame{page: p, data: bp.frameDataLocked(), pins: 1, ready: make(chan struct{})}
		bp.frames[p] = bp.lru.PushFront(fr)
		claimed = append(claimed, fr)
		frames = append(frames, fr)
	}
	bp.mu.Unlock()

	// Load our claims: one span read per contiguous page group. Claims must
	// all be published (ready closed, with or without error) before this
	// call returns or blocks on anyone else's load.
	for i := 0; i < len(claimed); {
		j := i + 1
		for j < len(claimed) && claimed[j].page == claimed[j-1].page+1 {
			j++
		}
		group := claimed[i:j]
		bufs := make([][]byte, len(group))
		for k, fr := range group {
			bufs[k] = fr.data
		}
		sp := trace.StartLeaf(ctx, trace.KindPageLoad, "")
		sp.SetAttr("page", group[0].page)
		sp.SetAttr("pages", int64(len(group)))
		err := bp.withRetry(ctx, func() error { return sr.ReadPageSpan(group[0].page, bufs) })
		if err != nil {
			sp.SetError(err)
			sp.End()
			bp.failSpanClaims(claimed[i:], err)
			bp.unpinSpanExcept(frames[base:], claimed[i:])
			return nil, err
		}
		sp.End()
		for _, fr := range group {
			if tally != nil {
				tally.physRead(fr.page)
			}
			close(fr.ready)
		}
		i = j
	}

	// Resolve resident frames whose load (by another goroutine) is still in
	// flight. Our own claims are already published, so waiting here cannot
	// deadlock against a peer doing the same dance on an overlapping span.
	// Counting mirrors getOnce: a resident frame that was ready is a hit, a
	// wait on a peer's load is a single-flight wait, our claims were already
	// counted as misses.
	ci := 0
	for idx := base; idx < len(frames); idx++ {
		fr := frames[idx]
		if ci < len(claimed) && claimed[ci] == fr {
			ci++
			continue
		}
		select {
		case <-fr.ready:
			bp.hits.Add(1)
			if tally != nil {
				tally.hits.Add(1)
			}
		default:
			bp.sfWaits.Add(1)
			if tally != nil {
				tally.sfWaits.Add(1)
			}
			select {
			case <-fr.ready:
			case <-ctx.Done():
				bp.unpinSpan(frames[base:])
				return nil, ctx.Err()
			}
		}
		if fr.err != nil {
			// The peer's load failed. Mirror get(): if it was only the
			// peer's cancellation and our context is live, reload the page
			// ourselves; otherwise propagate.
			err := fr.err
			bp.unpin(fr)
			if isCtxErr(err) && ctx.Err() == nil {
				fr2, err2 := bp.get(ctx, fr.page)
				if err2 == nil {
					frames[idx] = fr2
					continue
				}
				err = err2
			}
			copy(frames[idx:], frames[idx+1:])
			frames = frames[:len(frames)-1]
			bp.unpinSpan(frames[base:])
			return nil, err
		}
	}
	return frames, nil
}

// failSpanClaims drops unloaded claim frames from the pool and publishes the
// error to any waiters, mirroring getOnce's failed-load path.
func (bp *BufferPool) failSpanClaims(claims []*frame, err error) {
	bp.mu.Lock()
	for _, fr := range claims {
		if el, ok := bp.frames[fr.page]; ok && el.Value.(*frame) == fr {
			bp.lru.Remove(el)
			delete(bp.frames, fr.page)
		}
		fr.pins--
	}
	bp.mu.Unlock()
	for _, fr := range claims {
		fr.err = err
		close(fr.ready)
	}
}

// unpinSpanExcept unpins every frame in frames that is not in skip (whose
// pins were already dropped by failSpanClaims).
func (bp *BufferPool) unpinSpanExcept(frames, skip []*frame) {
	bp.mu.Lock()
outer:
	for _, fr := range frames {
		for _, s := range skip {
			if fr == s {
				continue outer
			}
		}
		fr.pins--
	}
	bp.mu.Unlock()
}

// Reset empties the pool: dirty frames are written back and the file synced
// (via FlushCtx), then every frame is dropped and its buffer recycled. The
// next access to any page misses and reloads it from the file, exactly as if
// the pool had just been created — without discarding the store above it or
// any prepared state it holds. Reset is a quiescent-point operation (cold
// benchmark passes, maintenance windows): it fails if any frame is pinned
// rather than yank pages out from under a live reader.
func (bp *BufferPool) Reset(ctx context.Context) error {
	if err := bp.FlushCtx(ctx); err != nil {
		return err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		if fr := el.Value.(*frame); fr.pins > 0 {
			return fmt.Errorf("storage: reset with page %d pinned", fr.page)
		}
	}
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if fr.data != nil && len(bp.free) < bp.capacity {
			bp.free = append(bp.free, fr.data)
			fr.data = nil
		}
	}
	bp.frames = make(map[int64]*list.Element, bp.capacity)
	bp.lru = list.New()
	return nil
}

// evictLocked writes back and drops the least recently used unpinned frame.
// Called with the pool mutex held; the write-back happens under it, which
// keeps a concurrent miss on the victim page from reading stale bytes.
func (bp *BufferPool) evictLocked(ctx context.Context) error {
	for el := bp.lru.Back(); el != nil; el = el.Prev() {
		fr := el.Value.(*frame)
		if fr.pins > 0 {
			continue // pinned or still loading (loaders hold a pin)
		}
		// pins == 0 ⇒ no latch holder, so data/dirty are stable here.
		// Eviction work is attributed to the request whose miss forced it.
		tally := tallyFrom(ctx)
		if fr.dirty {
			if err := bp.withRetry(ctx, func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
				return err
			}
			bp.writes.Add(1)
			if tally != nil {
				tally.writes.Add(1)
			}
			fr.dirty = false
		}
		bp.lru.Remove(el)
		delete(bp.frames, fr.page)
		// Recycle the victim's buffer: with pins == 0 nobody holds the
		// latch, so no reader can still be copying out of it.
		if fr.data != nil && len(bp.free) < bp.capacity {
			bp.free = append(bp.free, fr.data)
			fr.data = nil
		}
		bp.evictions.Add(1)
		if tally != nil {
			tally.evictions.Add(1)
		}
		return nil
	}
	return fmt.Errorf("storage: all %d pool frames are pinned; size the pool above the number of concurrent readers", bp.capacity)
}

// ReadAt copies n bytes at the byte offset into dst, faulting pages as
// needed.
func (bp *BufferPool) ReadAt(dst []byte, off int64) error {
	return bp.ReadAtCtx(context.Background(), dst, off)
}

// ReadAtCtx is ReadAt with cancellation: the context is checked between
// page accesses and during load waits and retry backoffs.
func (bp *BufferPool) ReadAtCtx(ctx context.Context, dst []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(dst) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fr, err := bp.get(ctx, off/ps)
		if err != nil {
			return err
		}
		fr.mu.Lock()
		n := copy(dst, fr.data[off%ps:])
		fr.mu.Unlock()
		bp.unpin(fr)
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt copies src to the byte offset through the pool (write-back: pages
// are marked dirty and reach the file on eviction or Flush).
func (bp *BufferPool) WriteAt(src []byte, off int64) error {
	return bp.WriteAtCtx(context.Background(), src, off)
}

// WriteAtCtx is WriteAt with cancellation.
func (bp *BufferPool) WriteAtCtx(ctx context.Context, src []byte, off int64) error {
	ps := int64(bp.pf.PageSize())
	for len(src) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		fr, err := bp.get(ctx, off/ps)
		if err != nil {
			return err
		}
		fr.mu.Lock()
		n := copy(fr.data[off%ps:], src)
		fr.dirty = true
		fr.mu.Unlock()
		bp.unpin(fr)
		src = src[n:]
		off += int64(n)
	}
	return nil
}

// Flush writes every dirty frame back to the file and syncs it. On error
// the failed frame stays dirty, so a later Flush retries it; no write is
// ever silently dropped. Flush pins one frame at a time, so concurrent
// readers keep making progress while it runs.
func (bp *BufferPool) Flush() error { return bp.FlushCtx(context.Background()) }

// FlushCtx is Flush with cancellation.
func (bp *BufferPool) FlushCtx(ctx context.Context) error {
	bp.mu.Lock()
	pages := make([]int64, 0, bp.lru.Len())
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		pages = append(pages, el.Value.(*frame).page)
	}
	bp.mu.Unlock()
	var firstErr error
	for _, page := range pages {
		bp.mu.Lock()
		el, ok := bp.frames[page]
		if !ok {
			bp.mu.Unlock()
			continue // evicted since the snapshot: its write-back already happened
		}
		fr := el.Value.(*frame)
		fr.pins++
		bp.mu.Unlock()
		<-fr.ready
		if fr.err == nil {
			fr.mu.Lock()
			if fr.dirty {
				if err := bp.withRetry(ctx, func() error { return bp.pf.WritePage(fr.page, fr.data) }); err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("storage: flushing page %d: %w", fr.page, err)
					}
				} else {
					bp.writes.Add(1)
					fr.dirty = false
				}
			}
			fr.mu.Unlock()
		}
		bp.unpin(fr)
	}
	if firstErr != nil {
		return firstErr
	}
	if err := bp.withRetry(ctx, bp.pf.Sync); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	return nil
}
