package storage

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/linear"
)

// Store is a queryable packed fact table: the Layout's byte ranges backed
// by an in-memory paged "disk". Records are opaque byte strings written per
// cell; grid queries read whole pages (counting the same pages and seeks
// the analytic model predicts) and stream the selected records back.
//
// Store is the single-threaded analytic simulator and is NOT safe for
// concurrent use (even Scan mutates the cumulative I/O counters); use
// FileStore when goroutines share a store.
type Store struct {
	layout *Layout
	data   []byte
	fill   []int64 // bytes written so far per disk position

	io Stats // cumulative I/O since the last ResetIO
}

// NewStore allocates a store for the layout (cells at their packed byte
// ranges, initially empty).
func NewStore(o *linear.Order, bytesPerCell []int64, pageSize int64) (*Store, error) {
	layout, err := NewLayout(o, bytesPerCell, pageSize)
	if err != nil {
		return nil, err
	}
	return &Store{
		layout: layout,
		data:   make([]byte, layout.TotalBytes()),
		fill:   make([]int64, o.Len()),
	}, nil
}

// Layout returns the store's packing.
func (s *Store) Layout() *Layout { return s.layout }

// Put appends one record to the given cell. It fails when the record would
// overflow the cell's reserved range — the capacity declared at NewStore.
func (s *Store) Put(cell int, record []byte) error {
	pos := s.layout.order.PosOf(cell)
	lo, hi := s.layout.start[pos], s.layout.start[pos+1]
	off := lo + s.fill[pos]
	if off+int64(len(record)) > hi {
		return fmt.Errorf("storage: cell %d overflows its %d reserved bytes", cell, hi-lo)
	}
	copy(s.data[off:], record)
	s.fill[pos] += int64(len(record))
	return nil
}

// IOStats returns the cumulative pages and seeks since the last ResetIO.
func (s *Store) IOStats() Stats { return s.io }

// ResetIO clears the cumulative I/O counters.
func (s *Store) ResetIO() { s.io = Stats{} }

// Scan reads every record in the region in disk order, charging the same
// page and seek counts as Layout.Query, and calls fn with each record's
// cell and bytes. Records within a cell are the Put-order prefix of its
// filled range. It is ScanCtx without a deadline.
func (s *Store) Scan(r linear.Region, fn func(cell int, record []byte) error) error {
	return s.ScanCtx(context.Background(), r, fn)
}

// ScanCtx is Scan with cancellation, mirroring FileStore.ReadQueryCtx: the
// context is checked between cells, so a cancelled query stops partway.
// The I/O counters still charge the full analytic cost of the region (the
// model prices the query, not the prefix actually delivered).
func (s *Store) ScanCtx(ctx context.Context, r linear.Region, fn func(cell int, record []byte) error) error {
	// Charge I/O identically to the analytic measurement.
	st := s.layout.Query(r)
	s.io.Pages += st.Pages
	s.io.Seeks += st.Seeks
	s.io.Bytes += st.Bytes

	for _, pos := range s.layout.order.Positions(r) {
		if err := ctx.Err(); err != nil {
			return err
		}
		lo := s.layout.start[pos]
		filled := s.fill[pos]
		if filled == 0 {
			continue
		}
		cell := s.layout.order.CellAt(pos)
		// Records are length-prefixed (uint32) so variable-size payloads
		// round-trip exactly.
		off := lo
		end := lo + filled
		for off < end {
			if end-off < 4 {
				return fmt.Errorf("storage: corrupt record header in cell %d", cell)
			}
			n := int64(binary.LittleEndian.Uint32(s.data[off:]))
			off += 4
			if off+n > end {
				return fmt.Errorf("storage: truncated record in cell %d", cell)
			}
			if err := fn(cell, s.data[off:off+n]); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// PutRecord writes a length-prefixed record (the framing Scan expects).
func (s *Store) PutRecord(cell int, payload []byte) error {
	rec := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(rec, uint32(len(payload)))
	copy(rec[4:], payload)
	return s.Put(cell, rec)
}

// FrameSize returns the stored size of a payload of the given length under
// the Scan framing, for sizing bytesPerCell.
func FrameSize(payloadLen int) int64 { return int64(4 + payloadLen) }

// Sum executes an aggregate grid query: it scans the region and sums the
// float64 the decoder extracts from each record, returning the total and
// the I/O charged for this query alone.
func (s *Store) Sum(r linear.Region, decode func(record []byte) float64) (float64, Stats, error) {
	before := s.io
	total := 0.0
	err := s.Scan(r, func(cell int, record []byte) error {
		total += decode(record)
		return nil
	})
	if err != nil {
		return 0, Stats{}, err
	}
	after := s.io
	return total, Stats{
		Pages: after.Pages - before.Pages,
		Seeks: after.Seeks - before.Seeks,
		Bytes: after.Bytes - before.Bytes,
	}, nil
}
