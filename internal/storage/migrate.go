package storage

import (
	"context"
	"fmt"
	"os"

	"repro/internal/linear"
	"repro/internal/trace"
)

// MigrateCtx re-clusters a file store onto a new linearization: every
// record is streamed out of the old store cell by cell in its disk order
// and written into a new store at newPath packed along newOrder. Cell
// payload capacities carry over (they are a property of the data, not the
// order). The old store is left open and untouched; callers typically
// Close and delete it after the swap.
//
// Cancellation is checked between cells (and inside each cell read), so a
// long migration can be abandoned promptly; progress, when non-nil, is
// called after each copied cell with (done, total) counts — it runs on the
// migrating goroutine and must be cheap. Each cell is read under the old
// store's shared lock but the lock is released between cells, so in-flight
// readers and even a concurrent Close interleave cleanly: Close surfaces
// here as a typed ErrClosed instead of a race on the underlying file.
//
// On any failure — including cancellation — the partial output file is
// deleted, so newPath either holds a complete, flushed store or does not
// exist. Returns the new store, flushed and ready to query.
func MigrateCtx(ctx context.Context, old *FileStore, newPath string, newOrder *linear.Order, poolFrames int, progress func(done, total int)) (*FileStore, error) {
	oldOrder := old.layout.order
	if newOrder.Len() != oldOrder.Len() {
		return nil, fmt.Errorf("storage: migrating %d cells onto an order with %d", oldOrder.Len(), newOrder.Len())
	}
	old.mu.RLock()
	closed := old.closed
	old.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("storage: migrating from a closed store: %w", ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Reconstruct per-cell capacities from the old layout.
	total := oldOrder.Len()
	bytesPerCell := make([]int64, total)
	for pos := 0; pos < total; pos++ {
		bytesPerCell[oldOrder.CellAt(pos)] = old.layout.start[pos+1] - old.layout.start[pos]
	}
	dst, err := CreateFileStore(newPath, newOrder, bytesPerCell, int(old.layout.pageSize), poolFrames)
	if err != nil {
		return nil, err
	}
	abort := func(err error) error {
		dst.file.Close()
		os.Remove(newPath)
		return err
	}
	// Copy cell by cell in the old disk order (sequential on the source
	// file), checking the context at each cell boundary. Under a trace,
	// the whole copy is one span (with the cell count attached) and the
	// final flush is another, so a migration trace shows where the time
	// went.
	cctx, copySpan := trace.Start(ctx, trace.KindCopy, "")
	copySpan.SetAttr("cells", int64(total))
	for pos := 0; pos < total; pos++ {
		if err := ctx.Err(); err != nil {
			copySpan.SetError(err)
			copySpan.End()
			return nil, abort(err)
		}
		cell := oldOrder.CellAt(pos)
		err := old.ReadCellCtx(cctx, cell, func(record []byte) error {
			return dst.PutRecord(cell, record)
		})
		if err != nil {
			copySpan.SetError(err)
			copySpan.End()
			return nil, abort(fmt.Errorf("storage: migration copy of cell %d: %w", cell, err))
		}
		if progress != nil {
			progress(pos+1, total)
		}
	}
	copySpan.End()
	fsp := trace.StartLeaf(ctx, trace.KindFlush, "")
	if err := dst.pool.Flush(); err != nil {
		fsp.SetError(err)
		fsp.End()
		return nil, abort(fmt.Errorf("storage: migration flush: %w", err))
	}
	fsp.End()
	return dst, nil
}

// Migrate is MigrateCtx without a deadline or progress reporting.
func Migrate(old *FileStore, newPath string, newOrder *linear.Order, poolFrames int) (*FileStore, error) {
	return MigrateCtx(context.Background(), old, newPath, newOrder, poolFrames, nil)
}
