package storage

import (
	"fmt"
	"os"

	"repro/internal/linear"
)

// Migrate re-clusters a file store onto a new linearization: every record
// is streamed out of the old store in its disk order and written into a new
// store at newPath packed along newOrder. Cell payload capacities carry
// over (they are a property of the data, not the order). The old store is
// left open and untouched; callers typically Close and delete it after the
// swap. Migrate is safe to run while other readers query the old store (it
// reads under the store's shared lock) and returns ErrClosed — instead of
// racing on the underlying file — when the old store has been closed. On
// any failure the partial output file is deleted, so newPath either holds
// a complete, flushed store or does not exist. Returns the new store,
// flushed and ready to query.
func Migrate(old *FileStore, newPath string, newOrder *linear.Order, poolFrames int) (*FileStore, error) {
	oldOrder := old.layout.order
	if newOrder.Len() != oldOrder.Len() {
		return nil, fmt.Errorf("storage: migrating %d cells onto an order with %d", oldOrder.Len(), newOrder.Len())
	}
	old.mu.RLock()
	closed := old.closed
	old.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("storage: migrating from a closed store: %w", ErrClosed)
	}
	// Reconstruct per-cell capacities from the old layout.
	bytesPerCell := make([]int64, oldOrder.Len())
	for pos := 0; pos < oldOrder.Len(); pos++ {
		bytesPerCell[oldOrder.CellAt(pos)] = old.layout.start[pos+1] - old.layout.start[pos]
	}
	dst, err := CreateFileStore(newPath, newOrder, bytesPerCell, int(old.layout.pageSize), poolFrames)
	if err != nil {
		return nil, err
	}
	abort := func(err error) error {
		dst.file.Close()
		os.Remove(newPath)
		return err
	}
	// Full-grid region over the old order.
	shape := oldOrder.Shape()
	all := make(linear.Region, len(shape))
	for d, n := range shape {
		all[d] = linear.Range{Lo: 0, Hi: n}
	}
	if err := old.Scan(all, func(cell int, record []byte) error {
		return dst.PutRecord(cell, record)
	}); err != nil {
		return nil, abort(fmt.Errorf("storage: migration copy: %w", err))
	}
	if err := dst.pool.Flush(); err != nil {
		return nil, abort(fmt.Errorf("storage: migration flush: %w", err))
	}
	return dst, nil
}
