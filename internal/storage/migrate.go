package storage

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/internal/linear"
	"repro/internal/trace"
)

// MigrateCtx re-clusters a file store onto a new linearization: every
// record is streamed out of the old store cell by cell in its disk order
// and written into a new store at newPath packed along newOrder. Cell
// payload capacities carry over (they are a property of the data, not the
// order). The old store is left open and untouched; callers typically
// Close and delete it after the swap.
//
// Cancellation is checked between cells (and inside each cell read), so a
// long migration can be abandoned promptly; progress, when non-nil, is
// called after each copied cell with (done, total) counts — it runs on the
// migrating goroutine and must be cheap. Each cell is read under the old
// store's shared lock but the lock is released between cells, so in-flight
// readers and even a concurrent Close interleave cleanly: Close surfaces
// here as a typed ErrClosed instead of a race on the underlying file.
//
// On any failure — including cancellation — the partial output file is
// deleted, so newPath either holds a complete, flushed store or does not
// exist. Returns the new store, flushed and ready to query.
func MigrateCtx(ctx context.Context, old *FileStore, newPath string, newOrder *linear.Order, poolFrames int, progress func(done, total int)) (*FileStore, error) {
	oldOrder := old.layout.order
	if newOrder.Len() != oldOrder.Len() {
		return nil, fmt.Errorf("storage: migrating %d cells onto an order with %d", oldOrder.Len(), newOrder.Len())
	}
	old.mu.RLock()
	closed := old.closed
	old.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("storage: migrating from a closed store: %w", ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Reconstruct per-cell capacities from the old layout.
	total := oldOrder.Len()
	bytesPerCell := make([]int64, total)
	for pos := 0; pos < total; pos++ {
		bytesPerCell[oldOrder.CellAt(pos)] = old.layout.start[pos+1] - old.layout.start[pos]
	}
	dst, err := CreateFileStore(newPath, newOrder, bytesPerCell, int(old.layout.pageSize), poolFrames)
	if err != nil {
		return nil, err
	}
	abort := func(err error) error {
		dst.file.Close()
		os.Remove(newPath)
		return err
	}
	// Copy cell by cell in the old disk order (sequential on the source
	// file), checking the context at each cell boundary. Under a trace,
	// the whole copy is one span (with the cell count attached) and the
	// final flush is another, so a migration trace shows where the time
	// went.
	cctx, copySpan := trace.Start(ctx, trace.KindCopy, "")
	copySpan.SetAttr("cells", int64(total))
	for pos := 0; pos < total; pos++ {
		if err := ctx.Err(); err != nil {
			copySpan.SetError(err)
			copySpan.End()
			return nil, abort(err)
		}
		cell := oldOrder.CellAt(pos)
		records, err := ReadCellRepairing(cctx, old, cell)
		if err != nil {
			copySpan.SetError(err)
			copySpan.End()
			return nil, abort(fmt.Errorf("storage: migration copy of cell %d: %w", cell, err))
		}
		for _, rec := range records {
			if err := dst.PutRecord(cell, rec); err != nil {
				copySpan.SetError(err)
				copySpan.End()
				return nil, abort(fmt.Errorf("storage: migration copy of cell %d: %w", cell, err))
			}
		}
		if progress != nil {
			progress(pos+1, total)
		}
	}
	copySpan.End()
	fsp := trace.StartLeaf(ctx, trace.KindFlush, "")
	if err := dst.pool.Flush(); err != nil {
		fsp.SetError(err)
		fsp.End()
		return nil, abort(fmt.Errorf("storage: migration flush: %w", err))
	}
	fsp.End()
	return dst, nil
}

// migrateRepairAttempts bounds the repair-and-reread loop per cell. A cell
// spans at most a handful of pages, and each successful repair fixes a
// distinct page, so the bound is never reached on a repairable store; it
// exists to guarantee termination if repair keeps "succeeding" without the
// reread getting further.
const migrateRepairAttempts = 16

// ReadCellRepairing reads all of a cell's records into memory, repairing
// the source store's corrupt pages from its parity sidecar and retrying
// when possible. Records are buffered — not streamed to the destination —
// because a retry re-reads the whole cell and the destination's fill state
// cannot be rewound, so streaming would duplicate records copied before
// the error. Each repair is a trace span with the page attached. Both the
// whole-file migration here and the ingest layer's incremental region
// migration copy through it.
func ReadCellRepairing(ctx context.Context, old *FileStore, cell int) ([][]byte, error) {
	var records [][]byte
	read := func() error {
		records = records[:0]
		return old.ReadCellCtx(ctx, cell, func(record []byte) error {
			records = append(records, append([]byte(nil), record...))
			return nil
		})
	}
	err := read()
	for attempt := 0; err != nil && attempt < migrateRepairAttempts; attempt++ {
		var cpe *CorruptPageError
		if !errors.As(err, &cpe) || !old.HasParity() {
			return nil, err
		}
		rsp := trace.StartLeaf(ctx, trace.KindRepair, "")
		rsp.SetAttr("page", cpe.Page)
		if rerr := old.RepairPage(cpe.Page); rerr != nil {
			rsp.SetError(rerr)
			rsp.End()
			return nil, fmt.Errorf("repairing source page %d: %w", cpe.Page, rerr)
		}
		rsp.End()
		err = read()
	}
	if err != nil {
		return nil, err
	}
	return records, nil
}

// Migrate is MigrateCtx without a deadline or progress reporting.
func Migrate(old *FileStore, newPath string, newOrder *linear.Order, poolFrames int) (*FileStore, error) {
	return MigrateCtx(context.Background(), old, newPath, newOrder, poolFrames, nil)
}
