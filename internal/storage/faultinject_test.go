package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/linear"
)

// faultFixture is the shared workload for fault testing: a 4×4 grid with
// 1–3 records per cell on 64-byte pages.
type faultFixture struct {
	order  *linear.Order
	bytes  []int64
	values [][]float64
	want   float64 // full-grid sum
	pages  int64
}

func newFaultFixture(t *testing.T) *faultFixture {
	t.Helper()
	o := rowMajor4x4(t)
	fx := &faultFixture{order: o}
	fx.values = make([][]float64, o.Len())
	fx.bytes = make([]int64, o.Len())
	for c := range fx.values {
		n := 1 + c%3
		fx.values[c] = make([]float64, n)
		for i := range fx.values[c] {
			v := float64(c*10 + i)
			fx.values[c][i] = v
			fx.want += v
		}
		fx.bytes[c] = int64(n) * FrameSize(8)
	}
	layout, err := NewFileLayout(o, fx.bytes, 64)
	if err != nil {
		t.Fatal(err)
	}
	fx.pages = layout.TotalPages()
	return fx
}

func (fx *faultFixture) fullRegion() linear.Region {
	return linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
}

// run executes the build→flush→query workload over the given paged file
// with a small pool (to force evictions and re-reads) and zero retry
// backoff. It returns the final per-cell loaded bytes on success. Any
// silent data corruption is converted into an error.
func (fx *faultFixture) run(pf PagedFile) ([]int64, error) {
	fs, err := NewFileStoreOn(pf, fx.order, fx.bytes, 2, nil)
	if err != nil {
		return nil, err
	}
	fs.pool.SetRetry(RetryPolicy{MaxRetries: 3, Backoff: 0})
	buf := make([]byte, 8)
	for c, vs := range fx.values {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if err := fs.PutRecord(c, buf); err != nil {
				return nil, err
			}
		}
	}
	if err := fs.pool.Flush(); err != nil {
		return nil, err
	}
	got, _, err := fs.Sum(fx.fullRegion(), decodeF64)
	if err != nil {
		return nil, err
	}
	if math.Abs(got-fx.want) > 1e-9 {
		return nil, fmt.Errorf("silent corruption: sum %v, want %v", got, fx.want)
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		return nil, err
	}
	return loaded, nil
}

// newInjector creates a fresh page file for the fixture and wraps it in an
// injector with the given schedule.
func (fx *faultFixture) newInjector(t *testing.T, dir, name string, faults ...Fault) *FaultInjector {
	t.Helper()
	pf, err := CreatePageFile(filepath.Join(dir, name), 64, fx.pages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pf.Close() }) // harmless double close on success paths
	return NewFaultInjector(pf, 42, faults...)
}

func TestFaultInjectorCountsAndTransient(t *testing.T) {
	fx := newFaultFixture(t)
	dir := t.TempDir()
	fi := fx.newInjector(t, dir, "clean.db")
	if _, err := fx.run(fi); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if fi.Ops(OpRead) == 0 || fi.Ops(OpWrite) == 0 || fi.Ops(OpSync) == 0 {
		t.Fatalf("ops not counted: %d/%d/%d", fi.Ops(OpRead), fi.Ops(OpWrite), fi.Ops(OpSync))
	}
	if fi.Injected() != 0 {
		t.Fatalf("clean injector fired %d faults", fi.Injected())
	}

	// A transient error is typed and retryable.
	fi2 := fx.newInjector(t, dir, "t.db", Fault{Op: OpRead, Index: 0, Kind: FaultTransient})
	buf := make([]byte, 64)
	err := fi2.ReadPage(0, buf)
	if !errors.Is(err, ErrTransient) || !errors.Is(err, ErrInjected) {
		t.Fatalf("transient fault err = %v", err)
	}
	if err := fi2.ReadPage(0, buf); err != nil {
		t.Fatalf("retry after transient should succeed: %v", err)
	}

	// Bit flips are deterministic in the seed.
	a := fx.newInjector(t, dir, "a.db", Fault{Op: OpRead, Index: 0, Kind: FaultBitFlip})
	b := fx.newInjector(t, dir, "b.db", Fault{Op: OpRead, Index: 0, Kind: FaultBitFlip})
	ba, bb := make([]byte, 64), make([]byte, 64)
	if err := a.ReadPage(0, ba); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadPage(0, bb); err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatal("same seed, same index: flips differ")
	}
	if allZero(ba) {
		t.Fatal("bit flip did not flip anything")
	}
}

func TestBufferPoolRetryBudget(t *testing.T) {
	fx := newFaultFixture(t)
	dir := t.TempDir()

	// A burst of transient faults within the retry budget rides through.
	fi := fx.newInjector(t, dir, "ok.db", Fault{Op: OpWrite, Index: 0, Kind: FaultTransient, Repeat: 3})
	if _, err := fx.run(fi); err != nil {
		t.Fatalf("3 transients vs 3 retries should succeed: %v", err)
	}
	if fi.Injected() != 3 {
		t.Fatalf("injected = %d, want 3", fi.Injected())
	}

	// A burst exceeding the budget fails loudly with the transient error.
	fi2 := fx.newInjector(t, dir, "over.db", Fault{Op: OpWrite, Index: 0, Kind: FaultTransient, Repeat: 10})
	if _, err := fx.run(fi2); !errors.Is(err, ErrTransient) {
		t.Fatalf("transient burst past the budget: err = %v, want ErrTransient", err)
	}
}

// TestCloseSurfacesSyncFailure pins down the error-propagation satellite:
// a failed sync under Close must reach the caller, never be swallowed.
func TestCloseSurfacesSyncFailure(t *testing.T) {
	fx := newFaultFixture(t)
	fi := fx.newInjector(t, t.TempDir(), "sync.db",
		Fault{Op: OpSync, Index: 0, Kind: FaultPermanent})
	fs, err := NewFileStoreOn(fi, fx.order, fx.bytes, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.pool.SetRetry(RetryPolicy{MaxRetries: 3, Backoff: 0})
	if err := fs.PutRecord(0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close must surface the sync failure, got %v", err)
	}
}

// TestSingleFaultAtEveryIndex is the deterministic fault sweep of the
// acceptance criteria: for every I/O index of the build→flush→query
// workload and every fault kind, the store either retries to success or
// fails loudly with a typed error — and whenever the run reports success,
// the surviving file must scrub clean and return exact query results.
func TestSingleFaultAtEveryIndex(t *testing.T) {
	fx := newFaultFixture(t)
	dir := t.TempDir()

	base := fx.newInjector(t, dir, "base.db")
	if _, err := fx.run(base); err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	opCounts := map[FaultOp]int64{
		OpRead:  base.Ops(OpRead),
		OpWrite: base.Ops(OpWrite),
		OpSync:  base.Ops(OpSync),
	}

	kinds := map[FaultOp][]FaultKind{
		OpRead:  {FaultTransient, FaultPermanent, FaultBitFlip},
		OpWrite: {FaultTransient, FaultPermanent, FaultTorn, FaultBitFlip},
		OpSync:  {FaultTransient, FaultPermanent},
	}
	run := 0
	for op, ks := range kinds {
		for _, kind := range ks {
			for idx := int64(0); idx < opCounts[op]; idx++ {
				run++
				name := fmt.Sprintf("f%d.db", run)
				fi := fx.newInjector(t, dir, name, Fault{Op: op, Index: idx, Kind: kind})
				loaded, err := fx.run(fi)
				label := fmt.Sprintf("%s fault at %s op %d", kind, op, idx)

				switch kind {
				case FaultTransient:
					if err != nil {
						t.Fatalf("%s: single transient must be retried to success, got %v", label, err)
					}
				case FaultPermanent, FaultTorn:
					if err == nil {
						t.Fatalf("%s: must fail loudly", label)
					}
					if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrCorruptPage) {
						t.Fatalf("%s: untyped error %v", label, err)
					}
				case FaultBitFlip:
					if op == OpRead {
						// Every pool miss verifies the trailer, so a read
						// flip can never go unnoticed.
						if !errors.Is(err, ErrCorruptPage) {
							t.Fatalf("%s: err = %v, want ErrCorruptPage", label, err)
						}
					} else if err != nil && !errors.Is(err, ErrCorruptPage) {
						t.Fatalf("%s: untyped error %v", label, err)
					}
				}

				if err == nil {
					// The run claimed success: the file on disk must scrub
					// clean (or the scrub must expose the damage) and the
					// full-grid query must be exact.
					fx.checkSurvivor(t, dir, name, loaded, label, kind == FaultBitFlip && op == OpWrite)
				}
			}
		}
	}
	if run == 0 {
		t.Fatal("no fault runs executed")
	}
}

// checkSurvivor reopens a post-fault file cleanly and requires either a
// detected problem (allowed only for silent write flips) or exact data.
func (fx *faultFixture) checkSurvivor(t *testing.T, dir, name string, loaded []int64, label string, damageAllowed bool) {
	t.Helper()
	fs, err := OpenFileStore(filepath.Join(dir, name), fx.order, fx.bytes, 64, 8, loaded)
	if err != nil {
		t.Fatalf("%s: reopening survivor: %v", label, err)
	}
	defer fs.Close()
	rep, err := fs.Verify()
	if err != nil {
		t.Fatalf("%s: scrub aborted: %v", label, err)
	}
	if !rep.OK() {
		if !damageAllowed {
			t.Fatalf("%s: run succeeded but scrub found %v", label, rep.Problems)
		}
		return // silent write flip detected by the scrub: contract held
	}
	got, _, err := fs.Sum(fx.fullRegion(), decodeF64)
	if err != nil {
		t.Fatalf("%s: querying survivor: %v", label, err)
	}
	if math.Abs(got-fx.want) > 1e-9 {
		t.Fatalf("%s: silent corruption survived scrub: sum %v, want %v", label, got, fx.want)
	}
}
