package storage

import (
	"context"
	"sync/atomic"
)

// PoolTally accumulates the buffer pool traffic attributable to one
// request. Attach one to a context with WithPoolTally and pass that
// context through the read path: every pool operation the request performs
// — including the evictions and write-backs its own misses force — is
// counted here as well as in the pool's global counters. Unlike deltas
// over the shared PoolStats, a tally is exact under concurrency: other
// requests' traffic never leaks in, and ResetStats on the pool cannot
// produce negative numbers.
//
// A tally additionally tracks observed seeks: maximal runs of consecutive
// physical page reads, the live counterpart of the analytic seek count
// from Layout.Query. The zero value is ready to use. A PoolTally is safe
// for concurrent use, though per-request attribution is only meaningful if
// the tally is not shared between requests.
type PoolTally struct {
	hits, misses, evictions, writes, retries, sfWaits atomic.Int64
	seeks                                             atomic.Int64
	deltaHits                                         atomic.Int64 // cells served from a delta overlay instead of base pages
	planHits, planMisses                              atomic.Int64 // prepared-plan cache lookups on the parallel read path
	lastPage                                          atomic.Int64 // page+2 of the last physical read; 0 = none yet

	// sink, when set, replaces the run-detection above: physical reads are
	// recorded in an order-independent page bitmap instead of bumping seeks
	// as they happen. The parallel read path uses this — its prefetchers and
	// decoder load pages out of order, which would make the sequential
	// last-page heuristic nondeterministic — and stores the bitmap's run
	// count into seeks when the fragment completes.
	sink *pageRecorder
}

// Stats returns the tallied traffic as a PoolStats snapshot.
func (t *PoolTally) Stats() PoolStats {
	return PoolStats{
		Hits:              t.hits.Load(),
		Misses:            t.misses.Load(),
		Evictions:         t.evictions.Load(),
		Writes:            t.writes.Load(),
		Retries:           t.retries.Load(),
		SingleFlightWaits: t.sfWaits.Load(),
	}
}

// Seeks returns the observed seek count: the number of maximal runs of
// consecutive pages among the tally's physical page reads. A cold scan of
// a contiguous range is one seek no matter how many pages it loads.
func (t *PoolTally) Seeks() int64 { return t.seeks.Load() }

// DeltaHits returns the number of cells this request answered from the
// delta overlay (see FileStore.SetOverlay) instead of base-file pages.
// Overlay reads cost no pool traffic, so they appear nowhere in Stats();
// this counter is their only footprint.
func (t *PoolTally) DeltaHits() int64 { return t.deltaHits.Load() }

// deltaHit records one overlay-served cell.
func (t *PoolTally) deltaHit() { t.deltaHits.Add(1) }

// PlanHits returns how many of this request's read plans were served from
// the prepared-plan cache; PlanMisses counts the plans it had to compute.
// Both stay zero on the sequential read path, which does not plan.
func (t *PoolTally) PlanHits() int64   { return t.planHits.Load() }
func (t *PoolTally) PlanMisses() int64 { return t.planMisses.Load() }

// planLookup records one plan-cache consultation.
func (t *PoolTally) planLookup(hit bool) {
	if hit {
		t.planHits.Add(1)
	} else {
		t.planMisses.Add(1)
	}
}

// physRead records one physical page read for seek accounting: a read
// that does not continue the previous page starts a new run.
func (t *PoolTally) physRead(page int64) {
	if t.sink != nil {
		t.sink.record(page)
		return
	}
	if prev := t.lastPage.Swap(page + 2); prev != page+1 {
		t.seeks.Add(1)
	}
}

// merge folds a completed fragment tally into the request tally. lastPage
// is deliberately not transferred: fragments are page-disjoint seek runs,
// so their seek counts add without cross-fragment run merging.
func (t *PoolTally) merge(c *PoolTally) {
	t.hits.Add(c.hits.Load())
	t.misses.Add(c.misses.Load())
	t.evictions.Add(c.evictions.Load())
	t.writes.Add(c.writes.Load())
	t.retries.Add(c.retries.Load())
	t.sfWaits.Add(c.sfWaits.Load())
	t.seeks.Add(c.seeks.Load())
	t.deltaHits.Add(c.deltaHits.Load())
	t.planHits.Add(c.planHits.Load())
	t.planMisses.Add(c.planMisses.Load())
}

// tallyKey is the context key WithPoolTally stores under.
type tallyKey struct{}

// WithPoolTally returns a context that routes per-request pool accounting
// into t. Install a fresh tally per request; a later WithPoolTally on the
// same chain replaces the earlier one.
func WithPoolTally(ctx context.Context, t *PoolTally) context.Context {
	return context.WithValue(ctx, tallyKey{}, t)
}

// tallyFrom extracts the request tally, or nil when none is attached.
func tallyFrom(ctx context.Context) *PoolTally {
	t, _ := ctx.Value(tallyKey{}).(*PoolTally)
	return t
}
