package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/linear"
)

// FileStore is the file-backed counterpart of Store: records are packed
// along the layout into a PageFile and all access goes through a
// BufferPool, so real page traffic (pool misses) can be compared against
// the analytic seek/page model. Between the pool and the file sits a
// ChecksumFile, so every pool miss verifies the page's CRC32C trailer and
// surfaces silent corruption as ErrCorruptPage. Not safe for concurrent
// use.
type FileStore struct {
	layout *Layout
	file   *ChecksumFile // the pool's backing store; Verify reads it directly
	pool   *BufferPool
	fill   []int64
}

// CreateFileStore creates a new page file sized for the layout and wraps it
// in a checksumming pool with the given frame capacity.
func CreateFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int) (*FileStore, error) {
	layout, err := NewFileLayout(o, bytesPerCell, int64(pageSize))
	if err != nil {
		return nil, err
	}
	pf, err := CreatePageFile(path, pageSize, layout.TotalPages())
	if err != nil {
		return nil, err
	}
	fs, err := NewFileStoreOn(pf, o, bytesPerCell, poolFrames, nil)
	if err != nil {
		pf.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing store file. The caller supplies the same
// order and cell sizes the file was created with plus the per-cell written
// byte counts saved from FileStore.LoadedBytes (persist them with the
// catalog); nil loadedBytes opens the store as empty. Geometry and fill
// state are validated against the file instead of being trusted.
func OpenFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	pf, err := OpenPageFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	fs, err := NewFileStoreOn(pf, o, bytesPerCell, poolFrames, loadedBytes)
	if err != nil {
		pf.Close()
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	return fs, nil
}

// NewFileStoreOn wires a store over an already-open paged file — the hook
// for fault-injection tests and custom stacks. The file's page count must
// match the layout exactly, and each cell's loaded bytes must fit its
// reserved range; any mismatch is an error, never a silent assumption.
func NewFileStoreOn(pf PagedFile, o *linear.Order, bytesPerCell []int64, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	layout, err := NewFileLayout(o, bytesPerCell, int64(pf.PageSize()))
	if err != nil {
		return nil, err
	}
	if pf.Pages() != layout.TotalPages() {
		return nil, fmt.Errorf("storage: file has %d pages, layout needs exactly %d", pf.Pages(), layout.TotalPages())
	}
	cf, err := NewChecksumFile(pf)
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(cf, poolFrames)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{layout: layout, file: cf, pool: pool, fill: make([]int64, o.Len())}
	if loadedBytes != nil {
		if len(loadedBytes) != o.Len() {
			return nil, fmt.Errorf("storage: %d loaded sizes for %d cells", len(loadedBytes), o.Len())
		}
		for cell, b := range loadedBytes {
			pos := o.PosOf(cell)
			if reserved := layout.start[pos+1] - layout.start[pos]; b < 0 || b > reserved {
				return nil, fmt.Errorf("storage: cell %d claims %d loaded bytes, reserved range holds %d", cell, b, reserved)
			}
			fs.fill[pos] = b
		}
	}
	return fs, nil
}

// Layout returns the store's packing.
func (fs *FileStore) Layout() *Layout { return fs.layout }

// Pool returns the store's buffer pool, for stats and flushing.
func (fs *FileStore) Pool() *BufferPool { return fs.pool }

// LoadedBytes returns the written byte count per cell, the value to pass
// back to OpenFileStore after a restart.
func (fs *FileStore) LoadedBytes() []int64 {
	out := make([]int64, len(fs.fill))
	for pos, b := range fs.fill {
		out[fs.layout.order.CellAt(pos)] = b
	}
	return out
}

// PutRecord appends a length-prefixed record to the cell, through the pool.
func (fs *FileStore) PutRecord(cell int, payload []byte) error {
	pos := fs.layout.order.PosOf(cell)
	lo, hi := fs.layout.start[pos], fs.layout.start[pos+1]
	need := FrameSize(len(payload))
	off := lo + fs.fill[pos]
	if off+need > hi {
		return fmt.Errorf("storage: cell %d overflows its %d reserved bytes", cell, hi-lo)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if err := fs.pool.WriteAt(hdr[:], off); err != nil {
		return err
	}
	if err := fs.pool.WriteAt(payload, off+4); err != nil {
		return err
	}
	fs.fill[pos] += need
	return nil
}

// Scan streams every record in the region in disk order through the pool.
func (fs *FileStore) Scan(r linear.Region, fn func(cell int, record []byte) error) error {
	var buf []byte
	for _, pos := range fs.layout.order.Positions(r) {
		filled := fs.fill[pos]
		if filled == 0 {
			continue
		}
		lo := fs.layout.start[pos]
		if int64(cap(buf)) < filled {
			buf = make([]byte, filled)
		}
		buf = buf[:filled]
		if err := fs.pool.ReadAt(buf, lo); err != nil {
			return err
		}
		cell := fs.layout.order.CellAt(pos)
		off := int64(0)
		for off < filled {
			if filled-off < 4 {
				return fmt.Errorf("storage: corrupt record header in cell %d", cell)
			}
			n := int64(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+n > filled {
				return fmt.Errorf("storage: truncated record in cell %d", cell)
			}
			if err := fn(cell, buf[off:off+n]); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Sum executes an aggregate grid query against the file store, returning
// the total and the pool traffic it generated.
func (fs *FileStore) Sum(r linear.Region, decode func(record []byte) float64) (float64, PoolStats, error) {
	before := fs.pool.Stats()
	total := 0.0
	err := fs.Scan(r, func(cell int, record []byte) error {
		total += decode(record)
		return nil
	})
	if err != nil {
		return 0, PoolStats{}, err
	}
	after := fs.pool.Stats()
	return total, PoolStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Writes:    after.Writes - before.Writes,
		Retries:   after.Retries - before.Retries,
	}, nil
}

// Close flushes the pool and closes the file. A flush or sync failure is
// reported — never swallowed — and the file is closed regardless, so a
// caller that sees an error knows the on-disk state may be behind.
func (fs *FileStore) Close() error {
	flushErr := fs.pool.Flush()
	closeErr := fs.file.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
