package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/linear"
)

// FileStore is the file-backed counterpart of Store: records are packed
// along the layout into a PageFile and all access goes through a
// BufferPool, so real page traffic (pool misses) can be compared against
// the analytic seek/page model. Between the pool and the file sits a
// ChecksumFile, so every pool miss verifies the page's CRC32C trailer and
// surfaces silent corruption as ErrCorruptPage.
//
// Concurrency contract: a FileStore may be shared freely across
// goroutines. Reads (ReadQueryCtx, ReadCellCtx, Scan, Sum, Verify) run
// concurrently with each other under a read lock; writers (PutRecord,
// Close) are exclusive. Close is safe to call while readers are in flight:
// it waits for them to drain, and any operation issued after (or a second
// Close) fails with the typed ErrClosed instead of racing on the
// underlying file. Context-accepting methods check cancellation between
// page accesses, so a cancelled query stops seeking immediately.
type FileStore struct {
	layout *Layout
	file   *ChecksumFile // the pool's backing store; Verify reads it directly
	pool   *BufferPool

	mu     sync.RWMutex // guards fill, plan and closed
	fill   []int64
	plan   []posPlan // fused per-position layout; see posPlan
	closed bool

	// Self-healing state (parity.go): the attached parity sidecar and the
	// mutex serializing repairs and sidecar swaps. repairMu guards the
	// parity pointer and the stale flag; fs.mu (read) is held across every
	// parity operation so Close cannot race a repair.
	repairMu sync.Mutex
	parity   *parityState

	// Parallel read path state (parallel.go): fragment fetches currently in
	// flight, the optional per-fragment completion observer, and recycled
	// position bitmaps for query planning (readRuns returns them zeroed).
	parInflight atomic.Int64
	fragObs     atomic.Pointer[func(pagesRead int64, seconds float64)]
	planBits    sync.Pool

	// Prepared-plan cache for the parallel read path: region → seek runs.
	// Runs are immutable while queries execute (workers only read them), so
	// concurrent queries share one entry. Plans embed per-cell fill counts,
	// so writes invalidate them — but only the entries whose region contains
	// the written cell (see invalidateCellPlans); under mixed read/write
	// load a drop-all policy would empty the cache on every upsert. Guarded
	// by planMu, not fs.mu: the cache is touched under fs.mu's read lock
	// from many queries at once.
	planMu       sync.Mutex
	planCache    map[string]planEntry
	planInvCell  atomic.Int64 // entries dropped by cell-intersection invalidation
	planInvAll   atomic.Int64 // entries dropped by the overflow drop-all
	coordScratch []int        // invalidation scratch; guarded by fs.mu (writers only)

	// Delta overlay (merge-on-read): when set, reads consult it per cell
	// before touching base pages, and a hit substitutes the overlay's framed
	// bytes for the cell's base content. Swapped atomically so readers never
	// block on ingest; the function itself must be safe for concurrent use.
	overlay atomic.Pointer[func(cell int) ([]byte, bool)]
}

// planCacheCap bounds the prepared-plan cache. On overflow the whole cache
// is dropped rather than evicted piecemeal: workloads cycle through a small
// set of query shapes, so hitting the cap means the shape set churned and
// the old entries are dead weight anyway.
const planCacheCap = 1024

// CreateFileStore creates a new page file sized for the layout and wraps it
// in a checksumming pool with the given frame capacity.
func CreateFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int) (*FileStore, error) {
	layout, err := NewFileLayout(o, bytesPerCell, int64(pageSize))
	if err != nil {
		return nil, err
	}
	pf, err := CreatePageFile(path, pageSize, layout.TotalPages())
	if err != nil {
		return nil, err
	}
	fs, err := NewFileStoreOn(pf, o, bytesPerCell, poolFrames, nil)
	if err != nil {
		pf.Close()
		return nil, err
	}
	return fs, nil
}

// OpenFileStore opens an existing store file. The caller supplies the same
// order and cell sizes the file was created with plus the per-cell written
// byte counts saved from FileStore.LoadedBytes (persist them with the
// catalog); nil loadedBytes opens the store as empty. Geometry and fill
// state are validated against the file instead of being trusted.
func OpenFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	pf, err := OpenPageFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	fs, err := NewFileStoreOn(pf, o, bytesPerCell, poolFrames, loadedBytes)
	if err != nil {
		pf.Close()
		return nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	return fs, nil
}

// NewFileStoreOn wires a store over an already-open paged file — the hook
// for fault-injection tests and custom stacks. The file's page count must
// match the layout exactly, and each cell's loaded bytes must fit its
// reserved range; any mismatch is an error, never a silent assumption.
func NewFileStoreOn(pf PagedFile, o *linear.Order, bytesPerCell []int64, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	layout, err := NewFileLayout(o, bytesPerCell, int64(pf.PageSize()))
	if err != nil {
		return nil, err
	}
	if pf.Pages() != layout.TotalPages() {
		return nil, fmt.Errorf("storage: file has %d pages, layout needs exactly %d", pf.Pages(), layout.TotalPages())
	}
	cf, err := NewChecksumFile(pf)
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(cf, poolFrames)
	if err != nil {
		return nil, err
	}
	fs := &FileStore{layout: layout, file: cf, pool: pool, fill: make([]int64, o.Len())}
	if loadedBytes != nil {
		if len(loadedBytes) != o.Len() {
			return nil, fmt.Errorf("storage: %d loaded sizes for %d cells", len(loadedBytes), o.Len())
		}
		for cell, b := range loadedBytes {
			pos := o.PosOf(cell)
			if reserved := layout.start[pos+1] - layout.start[pos]; b < 0 || b > reserved {
				return nil, fmt.Errorf("storage: cell %d claims %d loaded bytes, reserved range holds %d", cell, b, reserved)
			}
			fs.fill[pos] = b
		}
	}
	fs.plan = make([]posPlan, o.Len())
	for pos := range fs.plan {
		fs.plan[pos] = posPlan{
			lo:   layout.start[pos],
			end:  layout.start[pos+1],
			fill: fs.fill[pos],
			cell: int32(o.CellAt(pos)),
		}
	}
	return fs, nil
}

// posPlan fuses the per-position state the parallel planner reads — extent,
// fill, cell id — into one 32-byte entry, so building a query's seek runs
// touches one array sequentially instead of gathering from layout.start,
// fill and the order's cell sequence separately (three cache misses per
// cell on large grids). fill is mirrored here by PutRecord under fs.mu;
// fs.fill stays the source of truth for every other path.
type posPlan struct {
	lo   int64
	end  int64 // reserved end == next position's lo
	fill int64
	cell int32
	_    int32
}

// Layout returns the store's packing.
func (fs *FileStore) Layout() *Layout { return fs.layout }

// Pool returns the store's buffer pool, for stats and flushing.
func (fs *FileStore) Pool() *BufferPool { return fs.pool }

// LoadedBytes returns the written byte count per cell, the value to pass
// back to OpenFileStore after a restart.
func (fs *FileStore) LoadedBytes() []int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]int64, len(fs.fill))
	for pos, b := range fs.fill {
		out[fs.layout.order.CellAt(pos)] = b
	}
	return out
}

// PutRecord appends a length-prefixed record to the cell, through the pool.
func (fs *FileStore) PutRecord(cell int, payload []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	pos := fs.layout.order.PosOf(cell)
	lo, hi := fs.layout.start[pos], fs.layout.start[pos+1]
	need := FrameSize(len(payload))
	off := lo + fs.fill[pos]
	if off+need > hi {
		return fmt.Errorf("storage: cell %d overflows its %d reserved bytes", cell, hi-lo)
	}
	old := fs.capturePreWrite(off, need)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if err := fs.pool.WriteAt(hdr[:], off); err != nil {
		return err
	}
	if err := fs.pool.WriteAt(payload, off+4); err != nil {
		return err
	}
	fs.fill[pos] += need
	fs.plan[pos].fill += need
	if old != nil {
		neu := make([]byte, need)
		copy(neu, hdr[:])
		copy(neu[4:], payload)
		fs.patchParity(off, old, neu)
	}
	fs.invalidateCellPlans(cell)
	return nil
}

// PutCellBytes replaces the entire record content of a cell with framed —
// a sequence of length-prefixed records (see FrameRecords) — resetting the
// cell's fill to len(framed). Shrinking zeroes the abandoned tail so record
// framing never resurrects stale bytes. The replace is idempotent: applying
// the same bytes twice converges to the same state, which is what makes the
// delta log's redo-on-recovery protocol safe. Like PutRecord, the write
// patches an attached parity sidecar in place and invalidates only the
// read plans whose region contains the cell.
func (fs *FileStore) PutCellBytes(cell int, framed []byte) error {
	if err := walkRecords(cell, framed, func(int, []byte) error { return nil }); err != nil {
		return fmt.Errorf("storage: PutCellBytes rejects malformed framing: %w", err)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	pos := fs.layout.order.PosOf(cell)
	lo, hi := fs.layout.start[pos], fs.layout.start[pos+1]
	need := int64(len(framed))
	if need > hi-lo {
		return fmt.Errorf("storage: cell %d replacement of %d bytes overflows its %d reserved bytes", cell, need, hi-lo)
	}
	oldFill := fs.fill[pos]
	span := need
	if oldFill > span {
		span = oldFill
	}
	old := fs.capturePreWrite(lo, span)
	if need > 0 {
		if err := fs.pool.WriteAt(framed, lo); err != nil {
			return err
		}
	}
	if oldFill > need {
		// Zero the abandoned tail: fill is authoritative, but scrubbing and
		// parity work on whole pages, so stale bytes must not linger.
		zeros := make([]byte, oldFill-need)
		if err := fs.pool.WriteAt(zeros, lo+need); err != nil {
			return err
		}
	}
	fs.fill[pos] = need
	fs.plan[pos].fill = need
	if old != nil {
		neu := make([]byte, span)
		copy(neu, framed)
		fs.patchParity(lo, old, neu)
	}
	fs.invalidateCellPlans(cell)
	return nil
}

// FrameRecords packs records into the store's length-prefixed cell framing
// — the byte shape PutCellBytes replaces a cell with and walkRecords parses.
func FrameRecords(records ...[]byte) []byte {
	n := int64(0)
	for _, rec := range records {
		n += FrameSize(len(rec))
	}
	buf := make([]byte, 0, n)
	var hdr [4]byte
	for _, rec := range records {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, rec...)
	}
	return buf
}

// SetOverlay installs (or, with nil, removes) the delta overlay consulted
// by every read path: a function returning the freshest framed content for
// a cell, or ok=false when the base file is current. The ingest layer's
// delta-log index is the intended implementation. The function must be
// safe for concurrent calls and the returned bytes immutable; readers
// parse them without copying.
func (fs *FileStore) SetOverlay(f func(cell int) ([]byte, bool)) {
	if f == nil {
		fs.overlay.Store(nil)
		return
	}
	fs.overlay.Store(&f)
}

// overlayFn returns the installed overlay, or nil.
func (fs *FileStore) overlayFn() func(cell int) ([]byte, bool) {
	if p := fs.overlay.Load(); p != nil {
		return *p
	}
	return nil
}

// invalidateCellPlans drops cached read plans whose region contains the
// written cell — they embed its fill count — leaving disjoint plans hot.
// Callers hold fs.mu exclusively (coordScratch relies on it).
func (fs *FileStore) invalidateCellPlans(cell int) {
	if fs.coordScratch == nil {
		fs.coordScratch = make([]int, len(fs.layout.order.Shape()))
	}
	coords := fs.layout.order.Coords(cell, fs.coordScratch)
	dropped := int64(0)
	fs.planMu.Lock()
	for key, e := range fs.planCache {
		if e.region.Contains(coords) {
			delete(fs.planCache, key)
			dropped++
		}
	}
	fs.planMu.Unlock()
	if dropped > 0 {
		fs.planInvCell.Add(dropped)
	}
}

// InvalidateCellPlans drops cached read plans whose region contains the
// cell. Writes through the store invalidate automatically; this export is
// for the ingest layer, whose delta-log upserts change what a plan's
// region will return without touching the base file.
func (fs *FileStore) InvalidateCellPlans(cell int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return
	}
	fs.invalidateCellPlans(cell)
}

// PlanCacheInvalidations reports how many prepared plans have been dropped,
// split by scope: cell-intersection invalidation on writes vs the
// drop-everything overflow path when the cache hits planCacheCap.
func (fs *FileStore) PlanCacheInvalidations() (cell, all int64) {
	return fs.planInvCell.Load(), fs.planInvAll.Load()
}

// capturePreWrite returns the current logical bytes of [off, off+n) when a
// live parity sidecar is attached — the "read old" half of the XOR patch —
// or nil when there is no sidecar to maintain. A failure to read the old
// bytes degrades the sidecar to stale (its content can no longer be kept
// consistent) rather than failing the caller's write.
func (fs *FileStore) capturePreWrite(off, n int64) []byte {
	fs.repairMu.Lock()
	live := fs.parity != nil && !fs.parity.stale
	fs.repairMu.Unlock()
	if !live {
		return nil
	}
	old := make([]byte, n)
	if err := fs.pool.ReadAtCtx(context.Background(), old, off); err != nil {
		fs.degradeParity()
		return nil
	}
	return old
}

// patchParity folds old⊕new into the parity page(s) covering [off,
// off+len(new)) — the in-place alternative to rebuilding the whole sidecar
// on every write, keeping self-healing live under ingest. Parity tracks the
// store's logical content (the pool included); RepairPage flushes the pool
// before reconstructing so the on-disk siblings it XORs match. Any patch
// failure degrades the sidecar to stale instead of failing the write: the
// data write has already succeeded, and a stale sidecar is exactly the
// pre-patch behavior. Callers hold fs.mu exclusively, so patches never
// race repairs (which hold it shared).
func (fs *FileStore) patchParity(off int64, old, neu []byte) {
	fs.repairMu.Lock()
	defer fs.repairMu.Unlock()
	ps := fs.parity
	if ps == nil || ps.stale {
		return
	}
	u := fs.layout.usable()
	k := int64(ps.group)
	buf := make([]byte, u)
	n := int64(len(neu))
	for i := int64(0); i < n; {
		page := (off + i) / u
		j := (off + i) % u
		run := u - j
		if run > n-i {
			run = n - i
		}
		changed := false
		for b := int64(0); b < run; b++ {
			if old[i+b] != neu[i+b] {
				changed = true
				break
			}
		}
		if changed {
			pp := 1 + page/k
			if err := ps.file.ReadPage(pp, buf); err != nil {
				ps.stale = true
				return
			}
			for b := int64(0); b < run; b++ {
				buf[j+b] ^= old[i+b] ^ neu[i+b]
			}
			if err := ps.file.WritePage(pp, buf); err != nil {
				ps.stale = true
				return
			}
		}
		i += run
	}
}

// degradeParity marks an attached sidecar stale: repair is refused until
// WriteParity rebuilds it.
func (fs *FileStore) degradeParity() {
	fs.repairMu.Lock()
	if fs.parity != nil {
		fs.parity.stale = true
	}
	fs.repairMu.Unlock()
}

// walkRecords parses the length-prefixed framing of one cell's filled
// bytes, calling fn per record.
func walkRecords(cell int, buf []byte, fn func(cell int, record []byte) error) error {
	filled := int64(len(buf))
	off := int64(0)
	for off < filled {
		if filled-off < 4 {
			return fmt.Errorf("storage: corrupt record header in cell %d", cell)
		}
		n := int64(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+n > filled {
			return fmt.Errorf("storage: truncated record in cell %d", cell)
		}
		if err := fn(cell, buf[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// ReadQueryCtx streams every record in the region in disk order through the
// pool, checking ctx between cells (and, inside the pool, between page
// loads), so a cancelled or expired query stops issuing I/O immediately.
// When ctx carries a trace (internal/trace), each maximal run of contiguous
// cell reads is recorded as a fragment span with its tally deltas attached;
// without one the tracing hooks cost nothing. Returns ErrClosed if the
// store has been closed.
func (fs *FileStore) ReadQueryCtx(ctx context.Context, r linear.Region, fn func(cell int, record []byte) error) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	ov := fs.overlayFn()
	var buf []byte
	var ft fragmentTracer
	ft.start(ctx)
	for _, pos := range fs.layout.order.Positions(r) {
		if err := ctx.Err(); err != nil {
			ft.close(err)
			return err
		}
		if ov != nil {
			if ob, ok := ov(fs.layout.order.CellAt(pos)); ok {
				// Overlay hit: the cell's freshest content lives in the delta
				// index, so its base range is skipped entirely — a half-applied
				// base rewrite behind the overlay is never parsed.
				if t := tallyFrom(ctx); t != nil {
					t.deltaHit()
				}
				ft.deltaHit()
				if err := walkRecords(fs.layout.order.CellAt(pos), ob, fn); err != nil {
					ft.close(nil)
					return err
				}
				continue
			}
		}
		filled := fs.fill[pos]
		if filled == 0 {
			continue
		}
		lo := fs.layout.start[pos]
		cctx := ft.cellCtx(ctx, lo, fs.layout.start[pos+1], filled)
		if int64(cap(buf)) < filled {
			buf = make([]byte, filled)
		}
		buf = buf[:filled]
		if err := fs.pool.ReadAtCtx(cctx, buf, lo); err != nil {
			ft.close(err)
			return err
		}
		if err := walkRecords(fs.layout.order.CellAt(pos), buf, fn); err != nil {
			ft.close(nil)
			return err
		}
	}
	ft.close(nil)
	return nil
}

// ReadCellCtx streams the records of a single cell through the pool under
// the same cancellation contract as ReadQueryCtx.
func (fs *FileStore) ReadCellCtx(ctx context.Context, cell int, fn func(record []byte) error) error {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if fs.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if ov := fs.overlayFn(); ov != nil {
		if ob, ok := ov(cell); ok {
			if t := tallyFrom(ctx); t != nil {
				t.deltaHit()
			}
			return walkRecords(cell, ob, func(_ int, record []byte) error { return fn(record) })
		}
	}
	pos := fs.layout.order.PosOf(cell)
	filled := fs.fill[pos]
	if filled == 0 {
		return nil
	}
	buf := make([]byte, filled)
	if err := fs.pool.ReadAtCtx(ctx, buf, fs.layout.start[pos]); err != nil {
		return err
	}
	return walkRecords(cell, buf, func(_ int, record []byte) error { return fn(record) })
}

// Scan streams every record in the region in disk order through the pool.
// It is ReadQueryCtx without a deadline.
func (fs *FileStore) Scan(r linear.Region, fn func(cell int, record []byte) error) error {
	return fs.ReadQueryCtx(context.Background(), r, fn)
}

// SumCtx executes an aggregate grid query against the file store under the
// given context, returning the total and the pool traffic this query alone
// generated. Attribution is exact under concurrency: the traffic is
// counted in a request-local tally (WithPoolTally) rather than as a delta
// over the shared pool counters, so concurrent queries never contaminate
// each other's stats and a racing ResetStats cannot produce negative
// numbers. A tally already attached to ctx by the caller is replaced for
// the duration of this query.
func (fs *FileStore) SumCtx(ctx context.Context, r linear.Region, decode func(record []byte) float64) (float64, PoolStats, error) {
	// Reuse a caller-installed tally (callers that also want seek counts
	// install one via WithPoolTally); otherwise account under a private one.
	tally := tallyFrom(ctx)
	if tally == nil {
		tally = new(PoolTally)
		ctx = WithPoolTally(ctx, tally)
	}
	total := 0.0
	err := fs.ReadQueryCtx(ctx, r, func(cell int, record []byte) error {
		total += decode(record)
		return nil
	})
	if err != nil {
		return 0, PoolStats{}, err
	}
	return total, tally.Stats(), nil
}

// Sum is SumCtx without a deadline.
func (fs *FileStore) Sum(r linear.Region, decode func(record []byte) float64) (float64, PoolStats, error) {
	return fs.SumCtx(context.Background(), r, decode)
}

// Close flushes the pool and closes the file. A flush or sync failure is
// reported — never swallowed — and the file is closed regardless, so a
// caller that sees an error knows the on-disk state may be behind. Close
// waits for in-flight readers to drain before touching the file; once it
// begins, every later operation (including a second Close) returns
// ErrClosed.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return ErrClosed
	}
	fs.closed = true
	flushErr := fs.pool.Flush()
	closeErr := fs.file.Close()
	fs.repairMu.Lock()
	if fs.parity != nil {
		fs.parity.inner.Close()
		fs.parity = nil
	}
	fs.repairMu.Unlock()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
