package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/linear"
)

// FileStore is the file-backed counterpart of Store: records are packed
// along the layout into a PageFile and all access goes through a
// BufferPool, so real page traffic (pool misses) can be compared against
// the analytic seek/page model. Not safe for concurrent use.
type FileStore struct {
	layout *Layout
	pool   *BufferPool
	fill   []int64
}

// CreateFileStore creates a new page file sized for the layout and wraps it
// in a pool with the given frame capacity.
func CreateFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int) (*FileStore, error) {
	layout, err := NewLayout(o, bytesPerCell, int64(pageSize))
	if err != nil {
		return nil, err
	}
	pf, err := CreatePageFile(path, pageSize, layout.TotalPages())
	if err != nil {
		return nil, err
	}
	pool, err := NewBufferPool(pf, poolFrames)
	if err != nil {
		pf.Close()
		return nil, err
	}
	return &FileStore{layout: layout, pool: pool, fill: make([]int64, o.Len())}, nil
}

// OpenFileStore opens an existing store file. The caller supplies the same
// order and cell sizes the file was created with (persist them with the
// catalog, e.g. snakes.MarshalStrategy); fills must be re-derived, so the
// store is opened in the fully-loaded state where each cell's reserved
// range is assumed written up to loadedBytes[cell].
func OpenFileStore(path string, o *linear.Order, bytesPerCell []int64, pageSize int, poolFrames int, loadedBytes []int64) (*FileStore, error) {
	layout, err := NewLayout(o, bytesPerCell, int64(pageSize))
	if err != nil {
		return nil, err
	}
	pf, err := OpenPageFile(path, pageSize)
	if err != nil {
		return nil, err
	}
	if pf.Pages() < layout.TotalPages() {
		pf.Close()
		return nil, fmt.Errorf("storage: %s has %d pages, layout needs %d", path, pf.Pages(), layout.TotalPages())
	}
	pool, err := NewBufferPool(pf, poolFrames)
	if err != nil {
		pf.Close()
		return nil, err
	}
	fs := &FileStore{layout: layout, pool: pool, fill: make([]int64, o.Len())}
	if loadedBytes != nil {
		if len(loadedBytes) != o.Len() {
			pf.Close()
			return nil, fmt.Errorf("storage: %d loaded sizes for %d cells", len(loadedBytes), o.Len())
		}
		for cell, b := range loadedBytes {
			fs.fill[o.PosOf(cell)] = b
		}
	}
	return fs, nil
}

// Layout returns the store's packing.
func (fs *FileStore) Layout() *Layout { return fs.layout }

// Pool returns the store's buffer pool, for stats and flushing.
func (fs *FileStore) Pool() *BufferPool { return fs.pool }

// LoadedBytes returns the written byte count per cell, the value to pass
// back to OpenFileStore after a restart.
func (fs *FileStore) LoadedBytes() []int64 {
	out := make([]int64, len(fs.fill))
	for pos, b := range fs.fill {
		out[fs.layout.order.CellAt(pos)] = b
	}
	return out
}

// PutRecord appends a length-prefixed record to the cell, through the pool.
func (fs *FileStore) PutRecord(cell int, payload []byte) error {
	pos := fs.layout.order.PosOf(cell)
	lo, hi := fs.layout.start[pos], fs.layout.start[pos+1]
	need := FrameSize(len(payload))
	off := lo + fs.fill[pos]
	if off+need > hi {
		return fmt.Errorf("storage: cell %d overflows its %d reserved bytes", cell, hi-lo)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if err := fs.pool.WriteAt(hdr[:], off); err != nil {
		return err
	}
	if err := fs.pool.WriteAt(payload, off+4); err != nil {
		return err
	}
	fs.fill[pos] += need
	return nil
}

// Scan streams every record in the region in disk order through the pool.
func (fs *FileStore) Scan(r linear.Region, fn func(cell int, record []byte) error) error {
	var buf []byte
	for _, pos := range fs.layout.order.Positions(r) {
		filled := fs.fill[pos]
		if filled == 0 {
			continue
		}
		lo := fs.layout.start[pos]
		if int64(cap(buf)) < filled {
			buf = make([]byte, filled)
		}
		buf = buf[:filled]
		if err := fs.pool.ReadAt(buf, lo); err != nil {
			return err
		}
		cell := fs.layout.order.CellAt(pos)
		off := int64(0)
		for off < filled {
			if filled-off < 4 {
				return fmt.Errorf("storage: corrupt record header in cell %d", cell)
			}
			n := int64(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+n > filled {
				return fmt.Errorf("storage: truncated record in cell %d", cell)
			}
			if err := fn(cell, buf[off:off+n]); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Sum executes an aggregate grid query against the file store, returning
// the total and the pool traffic it generated.
func (fs *FileStore) Sum(r linear.Region, decode func(record []byte) float64) (float64, PoolStats, error) {
	before := fs.pool.Stats()
	total := 0.0
	err := fs.Scan(r, func(cell int, record []byte) error {
		total += decode(record)
		return nil
	})
	if err != nil {
		return 0, PoolStats{}, err
	}
	after := fs.pool.Stats()
	return total, PoolStats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Writes:    after.Writes - before.Writes,
	}, nil
}

// Close flushes the pool and closes the file.
func (fs *FileStore) Close() error {
	if err := fs.pool.Flush(); err != nil {
		fs.pool.pf.Close()
		return err
	}
	return fs.pool.pf.Close()
}
