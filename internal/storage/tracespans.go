package storage

import (
	"context"

	"repro/internal/trace"
)

// fragmentTracer groups a query's cell reads into fragment spans: one span
// per maximal run of byte-contiguous reserved cell ranges, the physical
// unit the paper's seek model charges one seek for. Each fragment span
// carries the request tally's deltas (pages_read, seeks, pool_hits) as
// attributes, so a trace is checkable against both PoolTally and the
// analytic Layout.Query prediction: over a cold pool the per-fragment
// seek deltas sum to the observed — and predicted — seek count.
//
// The zero value with start() on an untraced context is completely
// inert and allocation-free, keeping the hot read path clean when
// tracing is off.
type fragmentTracer struct {
	on     bool
	base   context.Context
	cur    context.Context
	tally  *PoolTally
	span   trace.SpanRef
	open   bool
	next   int64 // reserved hi of the last traced cell; a gap starts a new fragment
	cells  int64
	bytes  int64
	deltas int64 // overlay-served cells since the last sealed fragment

	seeks, pages, hits int64 // tally snapshot at fragment start
}

func (f *fragmentTracer) start(ctx context.Context) {
	f.on = trace.Active(ctx)
	if f.on {
		f.base, f.cur = ctx, ctx
		f.tally = tallyFrom(ctx)
	}
}

// cellCtx is called before each non-empty cell read with the cell's
// reserved byte range [lo, hi) and filled size; it returns the context the
// read should run under. Byte-adjacent cells (empty cells reserve zero
// bytes, so runs continue across them) share one fragment span, matching
// the analytic model's page-range merge.
func (f *fragmentTracer) cellCtx(ctx context.Context, lo, hi, filled int64) context.Context {
	if !f.on {
		return ctx
	}
	if !f.open || lo != f.next {
		f.close(nil)
		f.cur, f.span = trace.Start(f.base, trace.KindFragment, "")
		f.open = true
		f.cells, f.bytes = 0, 0
		if f.tally != nil {
			f.seeks = f.tally.seeks.Load()
			f.pages = f.tally.misses.Load()
			f.hits = f.tally.hits.Load()
		}
	}
	f.next = hi
	f.cells++
	f.bytes += filled
	return f.cur
}

// deltaHit records a cell served from the delta overlay. The overlaid
// cell's base range is skipped, so it breaks the physical run exactly like
// a byte gap: any open fragment is sealed (carrying the hit as its
// delta_cells attribute) and the next base read starts a new one.
func (f *fragmentTracer) deltaHit() {
	if !f.on {
		return
	}
	f.deltas++
	f.close(nil)
}

// close seals the open fragment span, attaching the cell/byte totals and
// the tally deltas accumulated since the fragment began.
func (f *fragmentTracer) close(err error) {
	if !f.open {
		return
	}
	f.open = false
	f.span.SetAttr("cells", f.cells)
	f.span.SetAttr("bytes", f.bytes)
	if f.deltas > 0 {
		f.span.SetAttr("delta_cells", f.deltas)
		f.deltas = 0
	}
	if f.tally != nil {
		f.span.SetAttr("pages_read", f.tally.misses.Load()-f.pages)
		f.span.SetAttr("seeks", f.tally.seeks.Load()-f.seeks)
		f.span.SetAttr("pool_hits", f.tally.hits.Load()-f.hits)
	}
	f.span.SetError(err)
	f.span.End()
}
