package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrOverloaded marks a query rejected by admission control: the store's
// in-flight capacity was exhausted and the query did not reach the front
// of the wait queue within the admission queue timeout. Callers should
// shed the query (and surface backpressure, e.g. HTTP 503) rather than
// retry immediately.
var ErrOverloaded = errors.New("storage: overloaded, admission queue timeout")

// AdmissionStats is a snapshot of an Admission controller's state.
type AdmissionStats struct {
	Capacity   int64 // total admission weight
	InUse      int64 // weight currently admitted
	QueueDepth int   // queries waiting for admission right now
	Admitted   int64 // queries admitted since creation
	Rejected   int64 // queries that timed out waiting (ErrOverloaded)
	Canceled   int64 // queries whose context ended while waiting
}

// Admission bounds the queries in flight against a store with a weighted
// semaphore: each query acquires a weight (for grid queries, a natural
// choice is the analytic page count from Layout.Query, so one huge scan
// and many point queries compete for the same budget). Waiters are served
// strictly FIFO — a heavy query at the front blocks lighter ones behind
// it, so it cannot starve — and a waiter that does not reach the front
// within the queue timeout is rejected with the typed ErrOverloaded, which
// turns sustained overload into fast load-shedding instead of an
// ever-growing convoy. Admission is safe for concurrent use.
type Admission struct {
	capacity int64
	timeout  time.Duration

	mu       sync.Mutex
	inUse    int64
	queue    *list.List // of *admitWaiter, FIFO
	admitted int64
	rejected int64
	canceled int64
}

type admitWaiter struct {
	weight  int64
	granted bool
	ready   chan struct{} // closed on grant
}

// NewAdmission creates a controller admitting up to capacity total weight.
// queueTimeout bounds how long a query may wait for admission; zero or
// negative means waiting is bounded only by the query's own context.
func NewAdmission(capacity int64, queueTimeout time.Duration) (*Admission, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: admission capacity %d must be positive", capacity)
	}
	return &Admission{capacity: capacity, timeout: queueTimeout, queue: list.New()}, nil
}

// clamp bounds a requested weight to [1, capacity], so a query heavier
// than the whole budget still runs — alone — instead of waiting forever.
func (a *Admission) clamp(weight int64) int64 {
	if weight < 1 {
		return 1
	}
	if weight > a.capacity {
		return a.capacity
	}
	return weight
}

// Acquire admits weight (clamped to [1, capacity]) or blocks until it can,
// the queue timeout elapses (ErrOverloaded), or ctx ends (its error). On a
// non-nil error the caller holds no capacity and must not call Release.
func (a *Admission) Acquire(ctx context.Context, weight int64) error {
	weight = a.clamp(weight)
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	if a.queue.Len() == 0 && a.inUse+weight <= a.capacity {
		a.inUse += weight
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	w := &admitWaiter{weight: weight, ready: make(chan struct{})}
	el := a.queue.PushBack(w)
	a.mu.Unlock()

	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.ready:
		return nil
	case <-timeoutC:
		if a.abandon(el, w) {
			a.mu.Lock()
			a.rejected++
			a.mu.Unlock()
			return fmt.Errorf("%w (waited %v at depth %d)", ErrOverloaded, a.timeout, a.StatsSnapshot().QueueDepth)
		}
		return nil // the grant won the race: we are admitted
	case <-ctx.Done():
		if a.abandon(el, w) {
			a.mu.Lock()
			a.canceled++
			a.mu.Unlock()
			return ctx.Err()
		}
		return nil
	}
}

// abandon removes a waiter from the queue, reporting true if it was still
// waiting. If the grant raced ahead (false), the waiter is admitted and
// the caller keeps the capacity.
func (a *Admission) abandon(el *list.Element, w *admitWaiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return false
	}
	a.queue.Remove(el)
	return true
}

// Release returns weight (clamped identically to Acquire) to the pool and
// wakes queued waiters in FIFO order.
func (a *Admission) Release(weight int64) {
	weight = a.clamp(weight)
	a.mu.Lock()
	a.inUse -= weight
	if a.inUse < 0 {
		a.inUse = 0 // unbalanced Release; don't let capacity inflate
	}
	a.grantLocked()
	a.mu.Unlock()
}

// grantLocked admits queued waiters from the front while they fit.
func (a *Admission) grantLocked() {
	for a.queue.Len() > 0 {
		w := a.queue.Front().Value.(*admitWaiter)
		if a.inUse+w.weight > a.capacity {
			return // FIFO: nobody overtakes the blocked front waiter
		}
		a.queue.Remove(a.queue.Front())
		a.inUse += w.weight
		a.admitted++
		w.granted = true
		close(w.ready)
	}
}

// StatsSnapshot returns the controller's current state.
func (a *Admission) StatsSnapshot() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Capacity:   a.capacity,
		InUse:      a.inUse,
		QueueDepth: a.queue.Len(),
		Admitted:   a.admitted,
		Rejected:   a.rejected,
		Canceled:   a.canceled,
	}
}
