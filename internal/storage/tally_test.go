package storage

import (
	"context"
	"sync"
	"testing"

	"repro/internal/linear"
)

// TestSumStatsColdMatchesAnalytic: on a cold pool over a fully packed
// store, a query's per-request misses equal the analytic page count and
// its observed seeks equal the analytic seek count — the live counterpart
// of the paper's cost model.
func TestSumStatsColdMatchesAnalytic(t *testing.T) {
	regions := []linear.Region{
		{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, // full grid: one contiguous run
		{{Lo: 1, Hi: 2}, {Lo: 0, Hi: 4}}, // one row of the row-major order
		{{Lo: 0, Hi: 4}, {Lo: 1, Hi: 2}}, // one column: fragmented
	}
	for _, r := range regions {
		// Build, then reopen: loading goes through the pool too, so only a
		// reopened store reads cold.
		built, _, path, bytes := buildFileStore(t, 64)
		o := built.Layout().Order()
		loaded := built.LoadedBytes()
		if err := built.Close(); err != nil {
			t.Fatal(err)
		}
		fs, err := OpenFileStore(path, o, bytes, 64, 64, loaded)
		if err != nil {
			t.Fatal(err)
		}
		pred := fs.Layout().Query(r)
		var tally PoolTally
		ctx := WithPoolTally(context.Background(), &tally)
		if err := fs.ReadQueryCtx(ctx, r, func(int, []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if pred.Pages == 0 {
			t.Fatalf("region %v: analytic model predicts no pages", r)
		}
		if got := tally.Stats().Misses; got != pred.Pages {
			t.Errorf("region %v: cold misses = %d, want analytic pages %d", r, got, pred.Pages)
		}
		if got := tally.Seeks(); got != pred.Seeks {
			t.Errorf("region %v: observed seeks = %d, want analytic seeks %d", r, got, pred.Seeks)
		}
		fs.Close()
	}
}

// TestSumStatsIsolatedUnderConcurrency: per-query stats must be identical
// whether a query runs alone or beside heavy concurrent traffic. Before
// per-request tallies, SumCtx diffed the shared pool counters and
// concurrent queries cross-contaminated each other's numbers.
func TestSumStatsIsolatedUnderConcurrency(t *testing.T) {
	fs, _, _, _ := buildFileStore(t, 64)
	defer fs.Close()
	a := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 2}}
	b := linear.Region{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 4}}

	// Warm the whole store, then measure each query solo.
	if _, _, err := fs.Sum(linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}, decodeF64); err != nil {
		t.Fatal(err)
	}
	_, soloA, err := fs.Sum(a, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if soloA.Hits == 0 || soloA.Misses != 0 {
		t.Fatalf("warm solo stats = %+v, want pure hits", soloA)
	}

	// Hammer region b from several goroutines while re-measuring a: the
	// reported stats for a must not move.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := fs.Sum(b, decodeF64); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		_, got, err := fs.Sum(a, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		if got != soloA {
			t.Fatalf("concurrent run %d: stats = %+v, want solo stats %+v", i, got, soloA)
		}
	}
	close(stop)
	wg.Wait()
}

// TestResetStatsCannotCorruptQueryStats: ResetStats racing in-flight
// queries used to yield negative deltas; with request-local tallies every
// reported field stays non-negative and exact.
func TestResetStatsCannotCorruptQueryStats(t *testing.T) {
	fs, _, _, _ := buildFileStore(t, 64)
	defer fs.Close()
	all := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				fs.Pool().ResetStats()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		_, st, err := fs.Sum(all, decodeF64)
		if err != nil {
			t.Fatal(err)
		}
		if st.Hits < 0 || st.Misses < 0 || st.Evictions < 0 || st.Writes < 0 || st.Retries < 0 || st.SingleFlightWaits < 0 {
			t.Fatalf("run %d: negative stats %+v under concurrent ResetStats", i, st)
		}
		if st.Hits+st.Misses == 0 {
			t.Fatalf("run %d: query reported no page traffic at all", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestTallyCountsEvictionTraffic: a miss that forces an eviction charges
// the eviction (and any write-back) to the requesting query's tally.
func TestTallyCountsEvictionTraffic(t *testing.T) {
	fs, _, _, _ := buildFileStore(t, 1) // single frame: every new page evicts
	defer fs.Close()
	all := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 4}}
	_, st, err := fs.Sum(all, decodeF64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("single-frame scan stats = %+v, want misses and evictions attributed", st)
	}
}
