package storage

import (
	"errors"
	"fmt"
	"time"
)

// PagedFile is the abstract fixed-page-size file the storage stack is built
// on: PageFile implements it against a real file, FaultInjector wraps any
// implementation with deterministic failures, and ChecksumFile layers a
// CRC32C trailer on top. Implementations must be safe for concurrent use of
// ReadPage/WritePage/Sync: the BufferPool above them issues page loads and
// write-backs from many goroutines at once. Close may assume no concurrent
// operations (the FileStore's closed flag provides that guarantee).
type PagedFile interface {
	// PageSize returns the page size in bytes as seen by callers of
	// ReadPage/WritePage (wrappers may expose a smaller logical page than
	// the file underneath them).
	PageSize() int
	// Pages returns the number of pages in the file.
	Pages() int64
	// ReadPage fills buf (of exactly PageSize bytes) with the page.
	ReadPage(page int64, buf []byte) error
	// WritePage writes buf (of exactly PageSize bytes) to the page.
	WritePage(page int64, buf []byte) error
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases the file. Close does not imply Sync.
	Close() error
}

// BulkReader is an optional PagedFile capability: fill buf (a whole number
// of PageSize units) with the consecutive pages starting at page, in one
// positioned read. PageFile implements it with a single pread; wrappers that
// do not (fault injectors, test counters) simply lack the method and force
// callers back onto per-page ReadPage, preserving their per-page semantics.
type BulkReader interface {
	ReadPages(page int64, buf []byte) error
}

// PageSpanReader is an optional PagedFile capability consumed by the buffer
// pool's span path: read len(bufs) consecutive pages starting at page,
// scattering page+i into bufs[i] (each of exactly PageSize bytes).
// ChecksumFile implements it, verifying every page's trailer and reporting
// the first failure as that page's CorruptPageError.
type PageSpanReader interface {
	ReadPageSpan(page int64, bufs [][]byte) error
}

// MappedReader is an optional PagedFile capability: zero-copy read-only
// access to n consecutive pages' raw bytes, or nil when no mapping backs
// the file. Callers must treat the returned bytes as immutable and must not
// hold them across a Close.
type MappedReader interface {
	MappedPages(page, n int64) []byte
}

// MaxSpanPages bounds one span read: the buffer pool never asks a
// PageSpanReader for more pages than this in a single call, so
// implementations can size pooled scratch to MaxSpanPages physical pages.
const MaxSpanPages = 32

// ErrTransient marks an I/O error as retryable: the buffer pool retries
// operations whose error chain matches it (errors.Is) under its RetryPolicy
// before giving up. Real disks surface these as EINTR/EAGAIN-style hiccups;
// the FaultInjector manufactures them on demand.
var ErrTransient = errors.New("transient I/O error")

// ErrCorruptPage marks a page that failed checksum or format verification.
// Errors carrying page detail are CorruptPageError values; both match with
// errors.Is(err, ErrCorruptPage).
var ErrCorruptPage = errors.New("corrupt page")

// CorruptPageError reports a page that failed verification, with enough
// detail to locate it on disk.
type CorruptPageError struct {
	Page   int64  // physical page index in the file
	Reason string // what failed: bad magic, checksum mismatch, torn trailer…
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %d: %s", e.Page, e.Reason)
}

// Is makes errors.Is(err, ErrCorruptPage) match.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorruptPage }

// ErrClosed marks an operation issued against a FileStore that has been
// closed. Concurrent readers that race with Close see this typed error
// instead of undefined behaviour on a closed file descriptor.
var ErrClosed = errors.New("storage: file store is closed")

// RetryPolicy bounds the buffer pool's retries of transient I/O errors.
// Backoff doubles after every failed attempt; the sleeps are context-aware,
// so a cancelled query stops retrying immediately.
type RetryPolicy struct {
	MaxRetries int           // additional attempts after the first failure
	Backoff    time.Duration // sleep before the first retry (0 = no sleep)
}

// DefaultRetry is the pool's default policy: three retries starting at
// half a millisecond.
var DefaultRetry = RetryPolicy{MaxRetries: 3, Backoff: 500 * time.Microsecond}
