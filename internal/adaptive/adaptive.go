// Package adaptive closes the loop between the paper's optimizer and the
// serving layer: it learns the live query-class distribution from the query
// stream (exponentially decayed, so old traffic fades), periodically re-runs
// the Figure-4 DP against that estimate, and — when the deployed
// linearization's expected cost exceeds the new optimum's by a configurable
// regret factor, persistently enough to clear a hysteresis window — invokes
// a caller-supplied migrator that re-clusters the store in the background
// and hot-swaps the daemon onto the new generation.
//
// The controller owns the decision policy (what to track, when to act); the
// migrator owns the mechanism (copy, catalog, swap, cleanup). That split
// keeps the policy unit-testable without a disk store and lets the daemon
// implement the swap against its own catalog and metrics.
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ErrReorgInProgress is returned by Trigger when a reorganization is
// already running; reorganizations are strictly serialized.
var ErrReorgInProgress = errors.New("adaptive: reorganization already in progress")

// errSkipped distinguishes "evaluated, decided not to act" from failures.
var errSkipped = errors.New("adaptive: reorganization not warranted")

// Config tunes the controller's decision policy. The zero value is not
// usable; use Defaults() as a base.
type Config struct {
	// CheckInterval is how often Run re-evaluates the workload.
	CheckInterval time.Duration
	// HalfLife is the decay half-life of the workload estimator; 0
	// disables time decay (observations never fade).
	HalfLife time.Duration
	// Smoothing is the Laplace pseudo-count per class applied when the
	// tracked stream is turned into a workload, so unseen classes keep
	// nonzero mass and the DP does not overfit short streams.
	Smoothing float64
	// MinWeight is the minimum decayed observation mass required before
	// an evaluation may trigger a reorganization: after an idle stretch
	// the estimator carries little live evidence and should not act.
	MinWeight float64
	// RegretThreshold triggers reorganization when the deployed
	// strategy's expected cost exceeds the optimum's by this factor
	// (e.g. 1.2 = 20% more seeks than necessary). Must be > 1.
	RegretThreshold float64
	// Hysteresis is the number of consecutive evaluations that must
	// exceed RegretThreshold before acting, so a transient spike or an
	// oscillating workload does not thrash the store.
	Hysteresis int
	// MinInterval is the minimum time between reorganization attempts.
	MinInterval time.Duration
	// Pacing bounds the incremental migrator the decision is handed to.
	Pacing Pacing
}

// Pacing is the controller's I/O budget for a reorganization: the
// incremental migrator copies the store in region-scored ticks of at most
// MaxCellsPerTick cells, sleeping TickPause between them, so a re-cluster
// never rewrites the whole file in one burst and concurrent queries keep
// their latency. The zero value lets the migrator pick its own defaults.
type Pacing struct {
	// RegionCells is the scoring window in consecutive target positions.
	RegionCells int
	// MaxCellsPerTick bounds the cells copied per tick.
	MaxCellsPerTick int
	// TickPause is slept between ticks.
	TickPause time.Duration
}

// Defaults returns a conservative production-shaped policy.
func Defaults() Config {
	return Config{
		CheckInterval:   30 * time.Second,
		HalfLife:        15 * time.Minute,
		Smoothing:       0.5,
		MinWeight:       100,
		RegretThreshold: 1.2,
		Hysteresis:      3,
		MinInterval:     10 * time.Minute,
		Pacing: Pacing{
			RegionCells:     64,
			MaxCellsPerTick: 256,
			TickPause:       10 * time.Millisecond,
		},
	}
}

func (c Config) validate() error {
	if c.CheckInterval <= 0 {
		return fmt.Errorf("adaptive: CheckInterval %v must be positive", c.CheckInterval)
	}
	if c.HalfLife < 0 {
		return fmt.Errorf("adaptive: negative HalfLife %v", c.HalfLife)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("adaptive: negative Smoothing %v", c.Smoothing)
	}
	if c.RegretThreshold <= 1 {
		return fmt.Errorf("adaptive: RegretThreshold %v must exceed 1", c.RegretThreshold)
	}
	if c.Hysteresis < 1 {
		return fmt.Errorf("adaptive: Hysteresis %d must be at least 1", c.Hysteresis)
	}
	if c.MinInterval < 0 {
		return fmt.Errorf("adaptive: negative MinInterval %v", c.MinInterval)
	}
	if c.Pacing.RegionCells < 0 || c.Pacing.MaxCellsPerTick < 0 || c.Pacing.TickPause < 0 {
		return fmt.Errorf("adaptive: negative pacing %+v", c.Pacing)
	}
	return nil
}

// Decision is what the controller hands the migrator when it decides to
// re-cluster: the new strategy, the evidence, and the generation number the
// new store file should carry. Progress must be called by the migrator as
// cells are copied so /reorg can report completion.
type Decision struct {
	Path        *core.Path
	Snaked      bool
	Workload    *workload.Workload
	CurrentCost float64 // expected seeks/query of the deployed strategy
	OptimalCost float64 // expected seeks/query of Path
	Regret      float64 // CurrentCost / OptimalCost
	Generation  int     // generation the new store assumes on success
	Pacing      Pacing  // I/O budget for the incremental migrator
	Progress    func(done, total int)
}

// Migrator performs the mechanism of a reorganization: build the new
// generation, persist the catalog, swap the serving store, clean up. A nil
// error commits the controller to the decision's strategy and generation;
// any error (including ctx cancellation) leaves the controller on the old
// generation, ready to retry after MinInterval.
type Migrator func(ctx context.Context, d *Decision) error

// Evaluation is one regret measurement, surfaced by Status and the
// OnEvaluate hook.
type Evaluation struct {
	Regret      float64
	CurrentCost float64 // after Correction, when a CostCorrection hook is set
	OptimalCost float64
	Correction  float64 // multiplier applied to CurrentCost (1 when no hook)
	Weight      float64 // decayed mass backing the estimate
	Eligible    bool    // enough mass and regret above threshold
}

// Status is the externally visible controller state, shaped for the
// daemon's /reorg endpoint.
type Status struct {
	Generation    int     `json:"generation"`
	Strategy      string  `json:"strategy"`
	Snaked        bool    `json:"snaked"`
	Observations  uint64  `json:"observations"`
	Weight        float64 `json:"weight"`
	Evaluations   uint64  `json:"evaluations"`
	LastRegret    float64 `json:"lastRegret"`
	Trips         int     `json:"trips"`
	Reorgs        uint64  `json:"reorgs"`
	Failures      uint64  `json:"failures"`
	InProgress    bool    `json:"inProgress"`
	MigratedCells int     `json:"migratedCells"`
	TotalCells    int     `json:"totalCells"`
	LastOutcome   string  `json:"lastOutcome,omitempty"` // success | failed | canceled
	LastError     string  `json:"lastError,omitempty"`
	LastReorgSecs float64 `json:"lastReorgSeconds,omitempty"`
}

// Controller tracks the live workload and decides when to reorganize.
// Observe is safe to call from every serving goroutine; Run, Trigger, and
// Status may be used concurrently with it.
type Controller struct {
	cfg     Config
	lat     *lattice.Lattice
	est     *workload.DecayingEstimator
	migrate Migrator

	mu         sync.Mutex
	path       *core.Path // deployed strategy
	snaked     bool
	generation int
	evals      uint64
	lastRegret float64
	trips      int       // consecutive evaluations above threshold
	lastReorg  time.Time // last attempt (success or failure)
	reorgs     uint64
	failures   uint64
	inProgress bool
	migrated   int
	totalCells int
	lastOut    string
	lastErr    string
	lastSecs   float64

	// OnEvaluate and OnReorg, when set before Run/Trigger, observe policy
	// activity for metrics; they are called without the controller lock.
	OnEvaluate func(Evaluation)
	OnReorg    func(outcome string, d time.Duration)

	// CostCorrection, when set before Run/Trigger, scales the deployed
	// strategy's analytic cost by a live observed/predicted seek ratio
	// (the obsevent calibration watch) before regret is computed. The
	// optimum stays analytic: regret then compares what the store is
	// measured to pay against what the DP says it could pay, so a buffer
	// pool or overlay that absorbs seeks weakens the case for migrating.
	// Returns <= 0, NaN, or Inf are ignored. Called without the lock.
	CostCorrection func() float64

	now func() time.Time // injectable clock for tests
}

// New returns a controller deployed on the given strategy and generation.
// The migrator is invoked from Run's goroutine (or Trigger's caller) when
// the policy fires.
func New(lat *lattice.Lattice, path *core.Path, snaked bool, generation int, migrate Migrator, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if migrate == nil {
		return nil, fmt.Errorf("adaptive: nil migrator")
	}
	est, err := workload.NewDecayingEstimator(lat, cfg.HalfLife)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:        cfg,
		lat:        lat,
		est:        est,
		migrate:    migrate,
		path:       path,
		snaked:     snaked,
		generation: generation,
		now:        time.Now,
	}, nil
}

// Observe records one served query of the given lattice class.
func (c *Controller) Observe(class lattice.Point) error {
	return c.est.Observe(class)
}

// Generation returns the currently deployed strategy generation.
func (c *Controller) Generation() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// Strategy returns the currently deployed path and snaking flag.
func (c *Controller) Strategy() (*core.Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.path, c.snaked
}

// Status snapshots the controller for the /reorg endpoint.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Generation:    c.generation,
		Strategy:      c.path.String(),
		Snaked:        c.snaked,
		Observations:  c.est.Total(),
		Weight:        c.est.Weight(),
		Evaluations:   c.evals,
		LastRegret:    c.lastRegret,
		Trips:         c.trips,
		Reorgs:        c.reorgs,
		Failures:      c.failures,
		InProgress:    c.inProgress,
		MigratedCells: c.migrated,
		TotalCells:    c.totalCells,
		LastOutcome:   c.lastOut,
		LastError:     c.lastErr,
		LastReorgSecs: c.lastSecs,
	}
}

// Evaluate runs one policy step: estimate the workload, re-run the DP,
// compute regret, and update the hysteresis counter. It returns the
// measurement and, when the policy says to act, a non-nil Decision.
// Evaluate itself never migrates.
func (c *Controller) Evaluate() (Evaluation, *Decision, error) {
	return c.evaluate(context.Background())
}

// evaluate is Evaluate under a context, so a traced reorg tick records the
// DP rerun as its own span (with the measured regret attached in milli
// units — span attributes are integers).
func (c *Controller) evaluate(ctx context.Context) (_ Evaluation, _ *Decision, retErr error) {
	sp := trace.StartLeaf(ctx, trace.KindDP, "")
	if sp.OK() {
		defer func() {
			sp.SetError(retErr)
			sp.End()
		}()
	}
	weight := c.est.Weight()
	w, err := c.est.Workload(c.cfg.Smoothing)
	if err != nil {
		return Evaluation{Weight: weight}, nil, err
	}
	opt, err := core.Optimal(w)
	if err != nil {
		return Evaluation{Weight: weight}, nil, err
	}
	corr := 1.0
	if c.CostCorrection != nil {
		if v := c.CostCorrection(); v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
			corr = v
		}
	}
	c.mu.Lock()
	cur := cost.OfPath(c.path, c.snaked).ExpectedCost(w) * corr
	optCost := cost.OfPath(opt.Path, true).ExpectedCost(w)
	ev := Evaluation{
		CurrentCost: cur,
		OptimalCost: optCost,
		Correction:  corr,
		Weight:      weight,
	}
	if optCost > 0 {
		ev.Regret = cur / optCost
	} else {
		ev.Regret = 1
	}
	sp.SetAttr("regret_milli", int64(ev.Regret*1000))
	c.evals++
	c.lastRegret = ev.Regret
	if ev.Regret > c.cfg.RegretThreshold && weight >= c.cfg.MinWeight {
		c.trips++
		ev.Eligible = true
	} else {
		c.trips = 0
	}
	act := ev.Eligible && c.trips >= c.cfg.Hysteresis &&
		(c.lastReorg.IsZero() || c.now().Sub(c.lastReorg) >= c.cfg.MinInterval) &&
		!c.inProgress
	var d *Decision
	if act {
		d = &Decision{
			Path:        opt.Path,
			Snaked:      true,
			Workload:    w,
			CurrentCost: cur,
			OptimalCost: optCost,
			Regret:      ev.Regret,
			Generation:  c.generation + 1,
			Pacing:      c.cfg.Pacing,
		}
	}
	c.mu.Unlock()
	if c.OnEvaluate != nil {
		c.OnEvaluate(ev)
	}
	return ev, d, nil
}

// Run evaluates the policy every CheckInterval and reorganizes when it
// fires, until ctx is cancelled. Errors from individual evaluations or
// migrations are absorbed into Status/metrics (the loop keeps serving the
// policy); only ctx ends the loop.
func (c *Controller) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_, d, err := c.evaluate(ctx)
			if err != nil || d == nil {
				continue
			}
			c.reorganize(ctx, d) // outcome recorded in Status
		}
	}
}

// Trigger forces one policy step now. With force, the regret threshold,
// hysteresis, minimum weight, and minimum interval are bypassed and the
// current DP optimum is deployed unconditionally (the operator's "/reorg
// POST" path). Returns the decision it acted on, or nil when the policy
// declined (never nil alongside a nil error when force is set).
func (c *Controller) Trigger(ctx context.Context, force bool) (*Decision, error) {
	ev, d, err := c.evaluate(ctx)
	if err != nil {
		return nil, err
	}
	if d == nil {
		if !force {
			c.mu.Lock()
			trips := c.trips
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: regret %.3f, threshold %.3f, trips %d/%d",
				errSkipped, ev.Regret, c.cfg.RegretThreshold, trips, c.cfg.Hysteresis)
		}
		sp := trace.StartLeaf(ctx, trace.KindDP, "forced")
		w, err := c.est.Workload(c.cfg.Smoothing)
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		opt, err := core.Optimal(w)
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, err
		}
		sp.End()
		c.mu.Lock()
		d = &Decision{
			Path:        opt.Path,
			Snaked:      true,
			Workload:    w,
			CurrentCost: ev.CurrentCost,
			OptimalCost: ev.OptimalCost,
			Regret:      ev.Regret,
			Generation:  c.generation + 1,
			Pacing:      c.cfg.Pacing,
		}
		c.mu.Unlock()
	}
	if err := c.reorganize(ctx, d); err != nil {
		return d, err
	}
	return d, nil
}

// Skipped reports whether a Trigger error means "policy declined" rather
// than a failed migration.
func Skipped(err error) bool { return errors.Is(err, errSkipped) }

// reorganize claims the single in-progress slot, runs the migrator, and
// commits or rolls back the controller state.
func (c *Controller) reorganize(ctx context.Context, d *Decision) error {
	c.mu.Lock()
	if c.inProgress {
		c.mu.Unlock()
		return ErrReorgInProgress
	}
	if d.Generation != c.generation+1 {
		// A concurrent reorg landed between Evaluate and here.
		c.mu.Unlock()
		return ErrReorgInProgress
	}
	c.inProgress = true
	c.migrated, c.totalCells = 0, 0
	c.lastReorg = c.now()
	c.mu.Unlock()

	d.Progress = func(done, total int) {
		c.mu.Lock()
		c.migrated, c.totalCells = done, total
		c.mu.Unlock()
	}
	start := c.now()
	mctx, msp := trace.Start(ctx, trace.KindMigrate, "")
	msp.SetAttr("generation", int64(d.Generation))
	err := c.migrate(mctx, d)
	msp.SetError(err)
	msp.End()
	dur := c.now().Sub(start)

	c.mu.Lock()
	c.inProgress = false
	c.lastSecs = dur.Seconds()
	outcome := "success"
	if err != nil {
		outcome = "failed"
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			outcome = "canceled"
		}
		c.failures++
		c.lastErr = err.Error()
	} else {
		c.reorgs++
		c.lastErr = ""
		c.path = d.Path
		c.snaked = d.Snaked
		c.generation = d.Generation
		c.trips = 0
		// Halve the estimator so the post-reorg stream re-earns its
		// influence: a full Reset would leave the policy blind, while
		// keeping full mass would let the pre-reorg epoch linger.
		c.est.Decay(0.5)
	}
	c.lastOut = outcome
	c.mu.Unlock()
	if c.OnReorg != nil {
		c.OnReorg(outcome, dur)
	}
	return err
}
