package adaptive

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// testLattice is the 4x4 warehouse used throughout: two binary dimensions
// of two levels each, so class (0,2) is a single A-row and (2,0) a single
// B-column — workloads with opposite optimal linearizations.
func testLattice() *lattice.Lattice {
	return lattice.New(hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2)))
}

var (
	rowClass = lattice.Point{0, 2} // one A leaf, all of B
	colClass = lattice.Point{2, 0} // all of A, one B leaf
)

// optimalFor returns the DP-optimal path for a point workload on class c.
func optimalFor(t *testing.T, l *lattice.Lattice, c lattice.Point) *core.Path {
	t.Helper()
	res, err := core.Optimal(workload.Point(l, c))
	if err != nil {
		t.Fatal(err)
	}
	return res.Path
}

// testConfig is an aggressive policy suitable for unit tests: no decay, no
// waiting.
func testConfig() Config {
	return Config{
		CheckInterval:   time.Millisecond,
		HalfLife:        0,
		Smoothing:       0.01,
		MinWeight:       1,
		RegretThreshold: 1.05,
		Hysteresis:      2,
		MinInterval:     0,
	}
}

// recordingMigrator collects the decisions it was asked to execute.
type recordingMigrator struct {
	mu        sync.Mutex
	decisions []*Decision
	err       error
	block     chan struct{} // when non-nil, migration waits here
}

func (m *recordingMigrator) migrate(ctx context.Context, d *Decision) error {
	if m.block != nil {
		select {
		case <-m.block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	m.mu.Lock()
	m.decisions = append(m.decisions, d)
	m.mu.Unlock()
	if d.Progress != nil {
		d.Progress(16, 16)
	}
	return m.err
}

func (m *recordingMigrator) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.decisions)
}

func newTestController(t *testing.T, cfg Config, m *recordingMigrator) *Controller {
	t.Helper()
	l := testLattice()
	c, err := New(l, optimalFor(t, l, rowClass), true, 0, m.migrate, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func observeN(t *testing.T, c *Controller, class lattice.Point, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Observe(class); err != nil {
			t.Fatal(err)
		}
	}
}

func TestControllerReorganizesOnSustainedRegret(t *testing.T) {
	m := &recordingMigrator{}
	c := newTestController(t, testConfig(), m)

	// Matching traffic: regret stays at 1, the policy never fires.
	observeN(t, c, rowClass, 50)
	ev, d, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("matching workload produced a reorg decision (regret %v)", ev.Regret)
	}
	if ev.Regret > 1.01 {
		t.Errorf("regret on matching workload = %v, want ~1", ev.Regret)
	}

	// Shift to column traffic: the deployed row order pays ~4x the seeks.
	observeN(t, c, colClass, 500)
	ev, d, err = c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Regret <= 1.05 {
		t.Fatalf("regret after shift = %v, want > threshold", ev.Regret)
	}
	if d != nil {
		t.Fatal("hysteresis=2 must not act on the first eligible evaluation")
	}
	_, d, err = c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("second consecutive eligible evaluation should produce a decision")
	}
	if d.Generation != 1 {
		t.Errorf("decision generation = %d, want 1", d.Generation)
	}
	want := optimalFor(t, testLattice(), colClass)
	if !d.Path.Equal(want) {
		t.Errorf("decision path %v, want the column optimum %v", d.Path, want)
	}

	if err := c.reorganize(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if m.count() != 1 {
		t.Fatalf("migrator ran %d times, want 1", m.count())
	}
	st := c.Status()
	if st.Generation != 1 || st.Reorgs != 1 || st.LastOutcome != "success" {
		t.Errorf("post-reorg status = %+v", st)
	}
	if st.MigratedCells != 16 || st.TotalCells != 16 {
		t.Errorf("progress not recorded: %d/%d", st.MigratedCells, st.TotalCells)
	}
	cur, snaked := c.Strategy()
	if !cur.Equal(want) || !snaked {
		t.Errorf("controller did not adopt the new strategy")
	}

	// The new strategy serves the new workload at regret ~1.
	ev, d, err = c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if d != nil || ev.Regret > 1.01 {
		t.Errorf("post-reorg evaluation: regret %v, decision %v", ev.Regret, d)
	}
}

func TestControllerHysteresisResetsOnTransientSpike(t *testing.T) {
	m := &recordingMigrator{}
	cfg := testConfig()
	cfg.Hysteresis = 3
	c := newTestController(t, cfg, m)

	observeN(t, c, colClass, 100)
	if _, d, err := c.Evaluate(); err != nil || d != nil {
		t.Fatalf("first eligible evaluation must not act (d=%v err=%v)", d, err)
	}
	// The workload swings back before the window closes: trips reset.
	observeN(t, c, rowClass, 10000)
	if _, d, err := c.Evaluate(); err != nil || d != nil {
		t.Fatalf("recovered workload must not act (d=%v err=%v)", d, err)
	}
	if st := c.Status(); st.Trips != 0 {
		t.Errorf("trips = %d after recovery, want 0", st.Trips)
	}
	if m.count() != 0 {
		t.Errorf("migrator ran %d times on an oscillating workload", m.count())
	}
}

func TestControllerMinIntervalAndMinWeight(t *testing.T) {
	m := &recordingMigrator{}
	cfg := testConfig()
	cfg.Hysteresis = 1
	cfg.MinInterval = time.Hour
	cfg.MinWeight = 50
	c := newTestController(t, cfg, m)
	clk := time.Unix(1_000_000, 0)
	c.now = func() time.Time { return clk }

	// Below MinWeight: regret is high but the evidence is too thin.
	observeN(t, c, colClass, 10)
	if ev, d, err := c.Evaluate(); err != nil || d != nil {
		t.Fatalf("under-weight evaluation acted (d=%v err=%v)", d, err)
	} else if ev.Eligible {
		t.Error("under-weight evaluation marked eligible")
	}

	observeN(t, c, colClass, 90)
	_, d, err := c.Evaluate()
	if err != nil || d == nil {
		t.Fatalf("weighted evaluation should act (err=%v)", err)
	}
	if err := c.reorganize(context.Background(), d); err != nil {
		t.Fatal(err)
	}

	// Immediately regret spikes again (force the strategy stale by hand):
	// MinInterval suppresses the follow-up.
	observeN(t, c, rowClass, 10000)
	if _, d, _ := c.Evaluate(); d != nil {
		t.Fatal("reorg within MinInterval of the last one")
	}
	clk = clk.Add(2 * time.Hour)
	if _, d, _ := c.Evaluate(); d == nil {
		t.Fatal("reorg still suppressed after MinInterval elapsed")
	}
}

func TestControllerFailedMigrationRollsBack(t *testing.T) {
	m := &recordingMigrator{err: errors.New("disk full")}
	cfg := testConfig()
	cfg.Hysteresis = 1
	c := newTestController(t, cfg, m)
	observeN(t, c, colClass, 100)
	_, d, err := c.Evaluate()
	if err != nil || d == nil {
		t.Fatalf("expected a decision (err=%v)", err)
	}
	if err := c.reorganize(context.Background(), d); err == nil {
		t.Fatal("failed migration should surface its error")
	}
	st := c.Status()
	if st.Generation != 0 || st.Failures != 1 || st.LastOutcome != "failed" || st.LastError == "" {
		t.Errorf("failure status = %+v", st)
	}
	cur, _ := c.Strategy()
	if !cur.Equal(optimalFor(t, testLattice(), rowClass)) {
		t.Error("failed migration changed the deployed strategy")
	}
}

func TestControllerCanceledMigration(t *testing.T) {
	m := &recordingMigrator{block: make(chan struct{})}
	cfg := testConfig()
	cfg.Hysteresis = 1
	c := newTestController(t, cfg, m)
	observeN(t, c, colClass, 100)
	_, d, err := c.Evaluate()
	if err != nil || d == nil {
		t.Fatalf("expected a decision (err=%v)", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.reorganize(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled migration error = %v", err)
	}
	st := c.Status()
	if st.LastOutcome != "canceled" || st.Generation != 0 {
		t.Errorf("cancel status = %+v", st)
	}
}

func TestControllerSerializesReorgs(t *testing.T) {
	m := &recordingMigrator{block: make(chan struct{})}
	cfg := testConfig()
	cfg.Hysteresis = 1
	c := newTestController(t, cfg, m)
	observeN(t, c, colClass, 100)
	_, d, err := c.Evaluate()
	if err != nil || d == nil {
		t.Fatalf("expected a decision (err=%v)", err)
	}
	done := make(chan error, 1)
	go func() { done <- c.reorganize(context.Background(), d) }()
	// Wait until the first reorg holds the slot.
	for {
		if c.Status().InProgress {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Trigger(context.Background(), true); !errors.Is(err, ErrReorgInProgress) {
		t.Fatalf("concurrent trigger error = %v", err)
	}
	close(m.block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.Status().Generation != 1 {
		t.Errorf("generation = %d after serialized reorg", c.Status().Generation)
	}
}

func TestControllerForceTrigger(t *testing.T) {
	m := &recordingMigrator{}
	c := newTestController(t, testConfig(), m)
	// Low regret, zero trips — but force deploys the optimum anyway.
	observeN(t, c, rowClass, 100)
	if _, err := c.Trigger(context.Background(), false); !Skipped(err) {
		t.Fatalf("unforced trigger on a happy workload: %v", err)
	}
	d, err := c.Trigger(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Generation != 1 {
		t.Fatalf("forced trigger decision = %+v", d)
	}
	if c.Status().Generation != 1 {
		t.Errorf("forced trigger did not commit")
	}
}

func TestControllerRunLoop(t *testing.T) {
	m := &recordingMigrator{}
	cfg := testConfig()
	cfg.Hysteresis = 2
	c := newTestController(t, cfg, m)
	observeN(t, c, colClass, 500)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	loopDone := make(chan struct{})
	go func() { c.Run(ctx); close(loopDone) }()

	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Reorgs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("run loop never reorganized: %+v", c.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-loopDone
	if got := c.Status().Generation; got != 1 {
		t.Errorf("generation = %d, want 1", got)
	}
	// Regret math is visible in the executed decision.
	m.mu.Lock()
	d := m.decisions[0]
	m.mu.Unlock()
	if d.Regret <= 1.05 || d.CurrentCost <= d.OptimalCost {
		t.Errorf("decision evidence: regret=%v cur=%v opt=%v", d.Regret, d.CurrentCost, d.OptimalCost)
	}
}

func TestControllerRegretMatchesCostModel(t *testing.T) {
	l := testLattice()
	m := &recordingMigrator{}
	c, err := New(l, optimalFor(t, l, rowClass), true, 0, m.migrate, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	observeN(t, c, colClass, 1000)
	ev, _, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.est.Workload(c.cfg.Smoothing)
	if err != nil {
		t.Fatal(err)
	}
	cur, snaked := c.Strategy()
	wantCur := cost.OfPath(cur, snaked).ExpectedCost(w)
	opt, err := core.Optimal(w)
	if err != nil {
		t.Fatal(err)
	}
	wantOpt := cost.OfPath(opt.Path, true).ExpectedCost(w)
	if ev.CurrentCost != wantCur || ev.OptimalCost != wantOpt {
		t.Errorf("evaluation costs (%v, %v) differ from the cost model (%v, %v)",
			ev.CurrentCost, ev.OptimalCost, wantCur, wantOpt)
	}
	if want := wantCur / wantOpt; ev.Regret != want {
		t.Errorf("regret = %v, want %v", ev.Regret, want)
	}
}

func TestConfigValidation(t *testing.T) {
	l := testLattice()
	p := optimalFor(t, l, rowClass)
	mig := func(context.Context, *Decision) error { return nil }
	bad := []Config{
		{},
		{CheckInterval: time.Second, RegretThreshold: 1.0, Hysteresis: 1},
		{CheckInterval: time.Second, RegretThreshold: 1.2, Hysteresis: 0},
		{CheckInterval: time.Second, RegretThreshold: 1.2, Hysteresis: 1, Smoothing: -1},
		{CheckInterval: time.Second, RegretThreshold: 1.2, Hysteresis: 1, HalfLife: -time.Second},
		{CheckInterval: time.Second, RegretThreshold: 1.2, Hysteresis: 1, MinInterval: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(l, p, true, 0, mig, cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(l, p, true, 0, nil, Defaults()); err == nil {
		t.Error("nil migrator should be rejected")
	}
	if _, err := New(l, p, true, 0, mig, Defaults()); err != nil {
		t.Errorf("Defaults rejected: %v", err)
	}
}

func TestControllerCostCorrection(t *testing.T) {
	m := &recordingMigrator{}
	c := newTestController(t, testConfig(), m)
	observeN(t, c, colClass, 500)

	base, _, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if base.Correction != 1 {
		t.Fatalf("no hook: correction %v, want 1", base.Correction)
	}

	// A correction of 0.5 (the pool/overlay absorbs half the analytic
	// seeks) halves the observed cost and with it the regret.
	c.CostCorrection = func() float64 { return 0.5 }
	ev, _, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Correction != 0.5 {
		t.Fatalf("correction %v, want 0.5", ev.Correction)
	}
	if want := base.CurrentCost * 0.5; ev.CurrentCost != want {
		t.Fatalf("corrected cost %v, want %v", ev.CurrentCost, want)
	}
	if ev.OptimalCost != base.OptimalCost {
		t.Fatalf("optimal cost changed under correction: %v vs %v", ev.OptimalCost, base.OptimalCost)
	}
	if want := base.Regret * 0.5; ev.Regret != want {
		t.Fatalf("corrected regret %v, want %v", ev.Regret, want)
	}

	// Degenerate hook values are ignored, not propagated.
	for _, v := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		v := v
		c.CostCorrection = func() float64 { return v }
		ev, _, err := c.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Correction != 1 || ev.CurrentCost != base.CurrentCost {
			t.Fatalf("hook value %v: correction %v cost %v, want neutral", v, ev.Correction, ev.CurrentCost)
		}
	}
}
