// Package lattice implements the query-class lattice of a star schema
// (Section 3 of the paper): the product of the per-dimension hierarchy
// levels, ordered componentwise, with edge weights given by fanouts.
package lattice

import (
	"fmt"
	"strings"

	"repro/internal/hierarchy"
)

// Point is a query class: a vector of one hierarchy level per dimension,
// with 0 ≤ Point[d] ≤ ℓ_d. The all-zero vector is ⊥ (individual cells); the
// all-top vector is ⊤ (the whole grid).
type Point []int

// Clone returns a copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same class.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// LE reports whether p ≤ q in the componentwise partial order.
func (p Point) LE(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// LT reports whether p < q: p ≤ q and p ≠ q.
func (p Point) LT(q Point) bool { return p.LE(q) && !p.Equal(q) }

// SuccessorOf reports whether q is a d-successor of p for some dimension d:
// q equals p with exactly one component incremented by one. It returns that
// dimension, or −1 when q is not a successor of p.
func (p Point) SuccessorOf(q Point) int {
	if len(p) != len(q) {
		return -1
	}
	dim := -1
	for i := range p {
		switch q[i] - p[i] {
		case 0:
		case 1:
			if dim >= 0 {
				return -1
			}
			dim = i
		default:
			return -1
		}
	}
	return dim
}

func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Lattice is the query-class lattice of a schema. It provides dense integer
// indexing of points (for array-backed dynamic programming), order
// predicates, successor enumeration, and edge weights.
type Lattice struct {
	schema *hierarchy.Schema
	tops   []int // ℓ_d per dimension
	stride []int // mixed-radix strides for Index
	size   int
}

// New builds the query-class lattice of the schema.
func New(s *hierarchy.Schema) *Lattice {
	tops := s.TopLevels()
	stride := make([]int, len(tops))
	size := 1
	for d := len(tops) - 1; d >= 0; d-- {
		stride[d] = size
		size *= tops[d] + 1
	}
	return &Lattice{schema: s, tops: tops, stride: stride, size: size}
}

// Schema returns the schema the lattice was built from.
func (l *Lattice) Schema() *hierarchy.Schema { return l.schema }

// K returns the number of dimensions.
func (l *Lattice) K() int { return len(l.tops) }

// Size returns the number of query classes: Π_d (ℓ_d + 1).
func (l *Lattice) Size() int { return l.size }

// Tops returns ℓ_d per dimension (the coordinates of ⊤).
func (l *Lattice) Tops() []int {
	t := make([]int, len(l.tops))
	copy(t, l.tops)
	return t
}

// Bottom returns ⊥ = (0, …, 0).
func (l *Lattice) Bottom() Point { return make(Point, len(l.tops)) }

// Top returns ⊤ = (ℓ_1, …, ℓ_k).
func (l *Lattice) Top() Point { return Point(l.Tops()) }

// Contains reports whether p is a valid query class of this lattice.
func (l *Lattice) Contains(p Point) bool {
	if len(p) != len(l.tops) {
		return false
	}
	for d, v := range p {
		if v < 0 || v > l.tops[d] {
			return false
		}
	}
	return true
}

// Index returns the dense index of p in [0, Size()). Indices follow
// mixed-radix order with the last dimension fastest.
func (l *Lattice) Index(p Point) int {
	idx := 0
	for d, v := range p {
		idx += v * l.stride[d]
	}
	return idx
}

// PointAt returns the point with the given dense index.
func (l *Lattice) PointAt(idx int) Point {
	p := make(Point, len(l.tops))
	for d := range p {
		p[d] = idx / l.stride[d]
		idx %= l.stride[d]
	}
	return p
}

// Points iterates over all query classes in dense-index order, calling fn
// with a point that is reused across calls; clone it to retain it.
func (l *Lattice) Points(fn func(p Point)) {
	p := l.Bottom()
	for {
		fn(p)
		d := len(p) - 1
		for d >= 0 {
			p[d]++
			if p[d] <= l.tops[d] {
				break
			}
			p[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Weight returns wt(u, v) for the edge from u to its d-successor v: the
// fanout f(d, u[d]+1).
func (l *Lattice) Weight(u Point, d int) int {
	return l.schema.Dims[d].Fanout(u[d] + 1)
}

// SegmentLength returns len(u → v), the product of edge weights along any
// monotone path from u to v (well-defined: all such paths have the same
// product). It panics if u ≰ v.
func (l *Lattice) SegmentLength(u, v Point) int {
	if !u.LE(v) {
		panic(fmt.Sprintf("lattice: segment %v → %v is not monotone", u, v))
	}
	n := 1
	for d := range u {
		for i := u[d] + 1; i <= v[d]; i++ {
			n *= l.schema.Dims[d].Fanout(i)
		}
	}
	return n
}

// BlockSize returns the number of grid cells in one block of class p.
func (l *Lattice) BlockSize(p Point) int { return l.schema.BlockSize(p) }

// NumQueries returns the number of distinct grid queries in class p (the
// number of class-p blocks).
func (l *Lattice) NumQueries(p Point) int { return l.schema.NumBlocks(p) }

// Successors calls fn for each d-successor of p that exists in the lattice.
func (l *Lattice) Successors(p Point, fn func(d int, v Point)) {
	for d := range p {
		if p[d] < l.tops[d] {
			v := p.Clone()
			v[d]++
			fn(d, v)
		}
	}
}

// Predecessors calls fn for each point of which p is a d-successor.
func (l *Lattice) Predecessors(p Point, fn func(d int, v Point)) {
	for d := range p {
		if p[d] > 0 {
			v := p.Clone()
			v[d]--
			fn(d, v)
		}
	}
}

// Sublattice returns all points v with u ≤ v, in dense-index order: the
// sublattice rooted at u (L_u in the paper).
func (l *Lattice) Sublattice(u Point) []Point {
	var pts []Point
	l.Points(func(p Point) {
		if u.LE(p) {
			pts = append(pts, p.Clone())
		}
	})
	return pts
}

// String renders the lattice rank by rank (by coordinate sum), bottom rank
// first, as in Figure 3 of the paper.
func (l *Lattice) String() string {
	maxRank := 0
	for _, t := range l.tops {
		maxRank += t
	}
	byRank := make([][]string, maxRank+1)
	l.Points(func(p Point) {
		r := 0
		for _, v := range p {
			r += v
		}
		byRank[r] = append(byRank[r], p.String())
	})
	var b strings.Builder
	for r, pts := range byRank {
		fmt.Fprintf(&b, "rank %d: %s\n", r, strings.Join(pts, " "))
	}
	return b.String()
}
