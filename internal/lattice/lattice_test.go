package lattice

import (
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
)

// figure3 returns the lattice of Figure 3: the 2-level binary schema of the
// running example.
func figure3() *Lattice {
	return New(hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2)))
}

func TestPointOrder(t *testing.T) {
	cases := []struct {
		p, q   Point
		le, lt bool
	}{
		{Point{0, 0}, Point{0, 0}, true, false},
		{Point{0, 0}, Point{2, 2}, true, true},
		{Point{1, 2}, Point{2, 1}, false, false},
		{Point{1, 1}, Point{1, 2}, true, true},
		{Point{2, 2}, Point{0, 0}, false, false},
	}
	for _, c := range cases {
		if got := c.p.LE(c.q); got != c.le {
			t.Errorf("%v ≤ %v = %v, want %v", c.p, c.q, got, c.le)
		}
		if got := c.p.LT(c.q); got != c.lt {
			t.Errorf("%v < %v = %v, want %v", c.p, c.q, got, c.lt)
		}
	}
}

func TestSuccessorOf(t *testing.T) {
	cases := []struct {
		p, q Point
		dim  int
	}{
		{Point{0, 0}, Point{1, 0}, 0},
		{Point{0, 0}, Point{0, 1}, 1},
		{Point{0, 0}, Point{1, 1}, -1},
		{Point{1, 1}, Point{1, 1}, -1},
		{Point{1, 1}, Point{1, 3}, -1},
		{Point{2, 1}, Point{1, 1}, -1},
	}
	for _, c := range cases {
		if got := c.p.SuccessorOf(c.q); got != c.dim {
			t.Errorf("SuccessorOf(%v → %v) = %d, want %d", c.p, c.q, got, c.dim)
		}
	}
}

func TestLatticeBasics(t *testing.T) {
	l := figure3()
	if got := l.Size(); got != 9 {
		t.Errorf("Size() = %d, want 9", got)
	}
	if !l.Bottom().Equal(Point{0, 0}) {
		t.Errorf("Bottom() = %v", l.Bottom())
	}
	if !l.Top().Equal(Point{2, 2}) {
		t.Errorf("Top() = %v", l.Top())
	}
	if !l.Contains(Point{2, 1}) || l.Contains(Point{3, 0}) || l.Contains(Point{0, -1}) {
		t.Error("Contains() misclassifies points")
	}
}

func TestIndexRoundTrip(t *testing.T) {
	l := New(hierarchy.MustSchema(
		hierarchy.Uniform("x", 3, 2),
		hierarchy.Uniform("y", 1, 5),
		hierarchy.Uniform("z", 2, 3),
	))
	seen := make(map[int]bool)
	count := 0
	l.Points(func(p Point) {
		idx := l.Index(p)
		if idx < 0 || idx >= l.Size() {
			t.Fatalf("Index(%v) = %d out of range", p, idx)
		}
		if seen[idx] {
			t.Fatalf("Index(%v) = %d already seen", p, idx)
		}
		seen[idx] = true
		if got := l.PointAt(idx); !got.Equal(p) {
			t.Fatalf("PointAt(%d) = %v, want %v", idx, got, p)
		}
		count++
	})
	if count != l.Size() {
		t.Errorf("Points() visited %d, want %d", count, l.Size())
	}
}

func TestWeightsAndSegmentLength(t *testing.T) {
	l := figure3()
	// wt((1,1),(2,1)) = f(A,2) = 2 per the paper's example.
	if got := l.Weight(Point{1, 1}, 0); got != 2 {
		t.Errorf("Weight((1,1), A) = %d, want 2", got)
	}
	if got := l.SegmentLength(Point{0, 0}, Point{2, 0}); got != 4 {
		t.Errorf("len((0,0)→(2,0)) = %d, want 4", got)
	}
	if got := l.SegmentLength(Point{1, 1}, Point{1, 1}); got != 1 {
		t.Errorf("len of empty path = %d, want 1", got)
	}
	if got := l.SegmentLength(Point{0, 1}, Point{2, 2}); got != 8 {
		t.Errorf("len((0,1)→(2,2)) = %d, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SegmentLength of non-monotone pair should panic")
		}
	}()
	l.SegmentLength(Point{1, 0}, Point{0, 2})
}

func TestSegmentLengthMixedFanouts(t *testing.T) {
	l := New(hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{3, 5}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{2}},
	))
	if got := l.SegmentLength(Point{0, 0}, Point{2, 1}); got != 30 {
		t.Errorf("len = %d, want 3·5·2 = 30", got)
	}
	if got := l.SegmentLength(Point{1, 0}, Point{2, 0}); got != 5 {
		t.Errorf("len = %d, want 5", got)
	}
}

func TestSuccessorsAndPredecessors(t *testing.T) {
	l := figure3()
	var succ []Point
	l.Successors(Point{1, 2}, func(d int, v Point) { succ = append(succ, v) })
	if len(succ) != 1 || !succ[0].Equal(Point{2, 2}) {
		t.Errorf("Successors(1,2) = %v", succ)
	}
	var pred []Point
	l.Predecessors(Point{0, 1}, func(d int, v Point) { pred = append(pred, v) })
	if len(pred) != 1 || !pred[0].Equal(Point{0, 0}) {
		t.Errorf("Predecessors(0,1) = %v", pred)
	}
	n := 0
	l.Successors(l.Top(), func(d int, v Point) { n++ })
	if n != 0 {
		t.Errorf("⊤ has %d successors, want 0", n)
	}
}

func TestSublattice(t *testing.T) {
	l := figure3()
	// L_(1,1) is the diamond {(1,1),(2,1),(1,2),(2,2)} per the paper.
	sub := l.Sublattice(Point{1, 1})
	if len(sub) != 4 {
		t.Fatalf("|L_(1,1)| = %d, want 4", len(sub))
	}
	want := map[string]bool{"(1,1)": true, "(2,1)": true, "(1,2)": true, "(2,2)": true}
	for _, p := range sub {
		if !want[p.String()] {
			t.Errorf("unexpected sublattice point %v", p)
		}
	}
}

func TestBlockAndQueryCounts(t *testing.T) {
	l := figure3()
	cases := []struct {
		c               Point
		blocks, queries int
	}{
		{Point{0, 0}, 1, 16},
		{Point{1, 1}, 4, 4},
		{Point{2, 0}, 4, 4},
		{Point{2, 2}, 16, 1},
	}
	for _, c := range cases {
		if got := l.BlockSize(c.c); got != c.blocks {
			t.Errorf("BlockSize(%v) = %d, want %d", c.c, got, c.blocks)
		}
		if got := l.NumQueries(c.c); got != c.queries {
			t.Errorf("NumQueries(%v) = %d, want %d", c.c, got, c.queries)
		}
	}
}

func TestOrderProperties(t *testing.T) {
	l := New(hierarchy.MustSchema(
		hierarchy.Uniform("x", 2, 2),
		hierarchy.Uniform("y", 3, 2),
	))
	clamp := func(raw []int) Point {
		p := make(Point, 2)
		tops := l.Tops()
		for d := range p {
			v := raw[d] % (tops[d] + 1)
			if v < 0 {
				v += tops[d] + 1
			}
			p[d] = v
		}
		return p
	}
	// Antisymmetry and transitivity of ≤ on random triples.
	f := func(a, b, c [2]int) bool {
		p, q, r := clamp(a[:]), clamp(b[:]), clamp(c[:])
		if p.LE(q) && q.LE(p) && !p.Equal(q) {
			return false
		}
		if p.LE(q) && q.LE(r) && !p.LE(r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatticeString(t *testing.T) {
	l := figure3()
	s := l.String()
	if s == "" {
		t.Fatal("String() empty")
	}
	// Figure 3 has ranks 0..4 with 1,2,3,2,1 points.
	wantPrefix := "rank 0: (0,0)\n"
	if s[:len(wantPrefix)] != wantPrefix {
		t.Errorf("String() starts %q", s[:len(wantPrefix)])
	}
}
