// Package obs is a dependency-free metrics kernel for the serving stack:
// atomic counters, gauges, and fixed-bucket histograms collected in a
// Registry and rendered in the Prometheus text exposition format (version
// 0.0.4). It exists so the daemon can export live cost telemetry — pool
// traffic, admission pressure, request latency, analytic-vs-observed page
// reads — without pulling a client library into the module.
//
// Conventions, enforced at registration (which panics on violation, the
// same contract as prometheus.MustRegister):
//
//   - metric and label names are snake_case: ^[a-z][a-z0-9_]*$, no "__"
//   - a registry built with a prefix requires every metric to carry it
//   - counters end in _total; gauges and histograms must not
//   - a name maps to exactly one type and help string; series under one
//     name are distinguished by label sets, which must be unique
//
// All value types are safe for concurrent use; rendering takes a snapshot
// per histogram so cumulative buckets and _count always agree within one
// scrape.
package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// validName reports whether s is a legal snake_case metric or label name.
func validName(s string) bool {
	return nameRE.MatchString(s) && !strings.Contains(s, "__")
}

// Registry holds a set of metric families and renders them as Prometheus
// text. The zero value is not usable; build one with NewRegistry.
type Registry struct {
	prefix string

	mu       sync.Mutex
	families map[string]*family
}

// family groups every series registered under one metric name.
type family struct {
	name, help, typ string
	series          []*series
	byLabels        map[string]bool
}

// series is one (name, labels) stream with a render function.
type series struct {
	labels string // canonical `key="value",...` body, "" when unlabeled
	write  func(b *bytes.Buffer, name, labels string)
}

// NewRegistry returns an empty registry. If prefix is non-empty, every
// registered metric name must start with it — the hook for the
// metrics-name lint (`make metrics-lint`).
func NewRegistry(prefix string) *Registry {
	return &Registry{prefix: prefix, families: make(map[string]*family)}
}

// labelBody canonicalizes kv pairs ("key", "value", ...) into the body of
// a Prometheus label set, sorted by key.
func labelBody(kv []string) string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, p.k, escape(p.v))
	}
	return b.String()
}

// escape applies the exposition-format label value escaping: backslash,
// double quote, and newline.
func escape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// register validates and stores one series. kv are label pairs.
func (r *Registry) register(name, help, typ string, kv []string, w func(b *bytes.Buffer, name, labels string)) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want snake_case)", name))
	}
	if r.prefix != "" && !strings.HasPrefix(name, r.prefix) {
		panic(fmt.Sprintf("obs: metric %q lacks the registry prefix %q", name, r.prefix))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	if typ != "counter" && strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: %s %q must not end in _total", typ, name))
	}
	labels := labelBody(kv)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]bool)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	if f.byLabels[labels] {
		panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, labels))
	}
	f.byLabels[labels] = true
	f.series = append(f.series, &series{labels: labels, write: w})
}

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decremented")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers and returns a counter series. kv are constant label
// pairs ("key", "value", ...).
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", kv, func(b *bytes.Buffer, name, labels string) {
		writeSample(b, name, labels, float64(c.Value()))
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters that already live elsewhere as atomics
// (pool and admission stats). fn must be monotone and safe for concurrent
// use.
func (r *Registry) CounterFunc(name, help string, fn func() int64, kv ...string) {
	r.register(name, help, "counter", kv, func(b *bytes.Buffer, name, labels string) {
		writeSample(b, name, labels, float64(fn()))
	})
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", kv, func(b *bytes.Buffer, name, labels string) {
		writeSample(b, name, labels, g.Value())
	})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	r.register(name, help, "gauge", kv, func(b *bytes.Buffer, name, labels string) {
		writeSample(b, name, labels, fn())
	})
}

// Histogram is a fixed-bucket latency/size distribution. Buckets are upper
// bounds (strictly increasing); every histogram carries an implicit +Inf
// bucket, so Observe never drops a sample.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of samples observed.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram registers and returns a histogram with the given bucket upper
// bounds (use ExpBuckets for the usual exponential ladder).
func (r *Registry) Histogram(name, help string, bounds []float64, kv ...string) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing at %v", name, bounds[i]))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(name, help, "histogram", kv, func(b *bytes.Buffer, name, labels string) {
		// Snapshot the counts once so the cumulative buckets and _count
		// agree even while observations race the scrape.
		snap := make([]int64, len(h.counts))
		for i := range h.counts {
			snap[i] = h.counts[i].Load()
		}
		var cum int64
		for i, bound := range h.bounds {
			cum += snap[i]
			writeSample(b, name+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", formatFloat(bound))), float64(cum))
		}
		cum += snap[len(snap)-1]
		writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
		writeSample(b, name+"_sum", labels, h.Sum())
		writeSample(b, name+"_count", labels, float64(cum))
	})
	return h
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad bucket spec start=%v factor=%v n=%d", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// joinLabels merges a canonical label body with one extra rendered pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a float the way Prometheus expects (shortest exact).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSample emits one sample line.
func writeSample(b *bytes.Buffer, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// Render returns the registry's current state in the Prometheus text
// format, families sorted by name and series by label set.
func (r *Registry) Render() []byte {
	// Snapshot the family and series structure under the lock (so a racing
	// registration cannot tear a slice), then collect values outside it —
	// the write closures only read atomics.
	r.mu.Lock()
	fams := make([]family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, family{name: f.name, help: f.help, typ: f.typ, series: append([]*series(nil), f.series...)})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, s := range f.series {
			s.write(&b, f.name, s.labels)
		}
	}
	return b.Bytes()
}

// Handler serves the registry as a Prometheus scrape endpoint. It renders
// to memory first, so a scrape can never half-fail: the endpoint always
// answers 200 with a complete, self-consistent exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		out := r.Render()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write(out)
	})
}
