package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseExposition splits a rendered registry into sample values keyed by
// "name{labels}" and comment lines (# HELP / # TYPE) keyed by metric name.
func parseExposition(t *testing.T, out []byte) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		key, valS, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(valS, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples, types
}

func TestRenderFormat(t *testing.T) {
	r := NewRegistry("app_")
	c := r.Counter("app_requests_total", "requests served", "handler", "query")
	c.Add(3)
	g := r.Gauge("app_in_flight", "requests in flight")
	g.Set(2)
	g.Add(-1)
	r.GaugeFunc("app_capacity", "static capacity", func() float64 { return 64 })
	r.CounterFunc("app_hits_total", "cache hits", func() int64 { return 7 })
	h := r.Histogram("app_latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	samples, types := parseExposition(t, r.Render())
	want := map[string]float64{
		`app_requests_total{handler="query"}`:   3,
		`app_in_flight`:                         1,
		`app_capacity`:                          64,
		`app_hits_total`:                        7,
		`app_latency_seconds_bucket{le="0.1"}`:  1,
		`app_latency_seconds_bucket{le="1"}`:    2,
		`app_latency_seconds_bucket{le="+Inf"}`: 3,
		`app_latency_seconds_sum`:               5.55,
		`app_latency_seconds_count`:             3,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok {
			t.Errorf("missing sample %s", k)
		} else if math.Abs(got-v) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	for name, typ := range map[string]string{
		"app_requests_total":  "counter",
		"app_in_flight":       "gauge",
		"app_latency_seconds": "histogram",
	} {
		if types[name] != typ {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], typ)
		}
	}
}

func TestLabelsCanonicalOrderAndEscaping(t *testing.T) {
	r := NewRegistry("")
	r.Counter("x_total", "x", "zeta", "1", "alpha", `a\b`+"\n")
	out := string(r.Render())
	if !strings.Contains(out, `x_total{alpha="a\\b\n",zeta="1"} 0`) {
		t.Errorf("labels not canonical/escaped:\n%s", out)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad chars", func(r *Registry) { r.Counter("Bad-Name_total", "h") }},
		{"double underscore", func(r *Registry) { r.Counter("a__b_total", "h") }},
		{"missing prefix", func(r *Registry) { NewRegistry("app_").Counter("other_total", "h") }},
		{"counter without _total", func(r *Registry) { r.Counter("requests", "h") }},
		{"gauge with _total", func(r *Registry) { r.Gauge("depth_total", "h") }},
		{"duplicate series", func(r *Registry) { r.Counter("dup_total", "h"); r.Counter("dup_total", "h") }},
		{"type conflict", func(r *Registry) { r.Counter("x_total", "h"); r.GaugeFunc("x_total", "h", nil) }},
		{"bad label name", func(r *Registry) { r.Counter("y_total", "h", "Bad", "v") }},
		{"odd labels", func(r *Registry) { r.Counter("z_total", "h", "only_key") }},
		{"empty buckets", func(r *Registry) { r.Histogram("lat_seconds", "h", nil) }},
		{"unsorted buckets", func(r *Registry) { r.Histogram("lat2_seconds", "h", []float64{1, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", tc.name)
				}
			}()
			tc.fn(NewRegistry(""))
		})
	}
	// Distinct label sets under one name are fine.
	r := NewRegistry("")
	r.Counter("ok_total", "h", "handler", "a")
	r.Counter("ok_total", "h", "handler", "b")
}

func TestHistogramConcurrentSumsAgree(t *testing.T) {
	r := NewRegistry("")
	h := r.Histogram("work_seconds", "h", ExpBuckets(0.001, 2, 10))
	c := r.Counter("ops_total", "h")
	const goroutines, perG = 8, 500
	var observers, renderer sync.WaitGroup
	stop := make(chan struct{})
	inconsistent := make(chan string, 1)
	// One goroutine renders continuously while others observe: every
	// render must be internally consistent (+Inf bucket == _count), which
	// holds because rendering snapshots the bucket counts once.
	renderer.Add(1)
	go func() {
		defer renderer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var inf, count float64
			for _, line := range strings.Split(string(r.Render()), "\n") {
				if v, ok := strings.CutPrefix(line, `work_seconds_bucket{le="+Inf"} `); ok {
					inf, _ = strconv.ParseFloat(v, 64)
				}
				if v, ok := strings.CutPrefix(line, `work_seconds_count `); ok {
					count, _ = strconv.ParseFloat(v, 64)
				}
			}
			if inf != count {
				select {
				case inconsistent <- fmt.Sprintf("+Inf bucket %v != _count %v", inf, count):
				default:
				}
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-4)
				c.Inc()
			}
		}(g)
	}
	observers.Wait()
	close(stop)
	renderer.Wait()
	select {
	case msg := <-inconsistent:
		t.Fatal(msg)
	default:
	}

	if got := h.Count(); got != goroutines*perG {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	wantSum := 0.0
	for i := 0; i < goroutines*perG; i++ {
		wantSum += float64(i) * 1e-4
	}
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	NewRegistry("").Counter("n_total", "h").Add(-1)
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ExpBuckets = %v, want %v", got, want)
	}
}

// TestMetricsLintNames is the registry-level half of the metrics-name
// lint: rendered sample names must be snake_case and unique per label set
// (parseExposition already rejects duplicates).
func TestMetricsLintNames(t *testing.T) {
	r := NewRegistry("app_")
	r.Counter("app_requests_total", "h", "handler", "query")
	r.Histogram("app_latency_seconds", "h", []float64{1})
	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*`)
	samples, _ := parseExposition(t, r.Render())
	for key := range samples {
		name, _, _ := strings.Cut(key, "{")
		if !nameRE.MatchString(name) || strings.Contains(name, "__") {
			t.Errorf("metric %q is not snake_case", name)
		}
		if !strings.HasPrefix(name, "app_") {
			t.Errorf("metric %q lacks the app_ prefix", name)
		}
	}
}
