package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

// TestCheckConsistencyOnRealStrategies: every strategy we can materialize
// satisfies the generalized Lemma-2 constraints, in 2 and 3 dimensions and
// with mixed fanouts.
func TestCheckConsistencyOnRealStrategies(t *testing.T) {
	schemas := []*hierarchy.Schema{
		exampleSchema(),
		hierarchy.MustSchema(
			hierarchy.Dimension{Name: "x", Fanouts: []int{3, 2}},
			hierarchy.Dimension{Name: "y", Fanouts: []int{2, 2}},
			hierarchy.Dimension{Name: "z", Fanouts: []int{4}},
		),
	}
	for _, s := range schemas {
		l := lattice.New(s)
		core.EnumeratePaths(l, func(p *core.Path) bool {
			for _, snaked := range []bool{false, true} {
				if err := OfPath(p, snaked).CheckConsistency(); err != nil {
					t.Errorf("schema %v path %v snaked=%v: %v", s, p, snaked, err)
				}
			}
			return true
		})
	}
	// The classical curves on the binary square.
	s := exampleSchema()
	l := lattice.New(s)
	for _, build := range []func() (*linear.Order, error){
		func() (*linear.Order, error) { return linear.Hilbert(s) },
		func() (*linear.Order, error) { return linear.ZOrder(s) },
		func() (*linear.Order, error) { return linear.GrayOrder(s) },
	} {
		o, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := OfOrder(l, o).CheckConsistency(); err != nil {
			t.Errorf("%s: %v", o.Name, err)
		}
	}
}

func TestCheckConsistencyRejections(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	// Impossible ⊥ type.
	cv := NewCV(l)
	cv.Counts[l.Index(lattice.Point{0, 0})] = 15
	if err := cv.CheckConsistency(); err == nil {
		t.Error("⊥-typed edges should be rejected")
	}
	// Too many edges inside class (1,0) blocks: bound is 16 − 16/2 = 8.
	cv = NewCV(l)
	cv.Counts[l.Index(lattice.Point{1, 0})] = 9
	cv.Counts[l.Index(lattice.Point{2, 2})] = 6
	if err := cv.CheckConsistency(); err == nil {
		t.Error("class-(1,0) overflow should be rejected")
	}
	// Wrong total.
	cv = NewCV(l)
	cv.Counts[l.Index(lattice.Point{2, 2})] = 14
	if err := cv.CheckConsistency(); err == nil {
		t.Error("total 14 ≠ 15 should be rejected")
	}
	// Negative count.
	cv = NewCV(l)
	cv.Counts[l.Index(lattice.Point{0, 1})] = -1
	cv.Counts[l.Index(lattice.Point{2, 2})] = 16
	if err := cv.CheckConsistency(); err == nil {
		t.Error("negative count should be rejected")
	}
}

// TestCorollary1 is the paper's performance guarantee (Section 5.3): the
// snaked optimal lattice path costs at most twice the optimal snaked
// lattice path — and hence at most twice the global optimum — on every
// workload.
func TestCorollary1(t *testing.T) {
	schemas := []*hierarchy.Schema{
		exampleSchema(),
		hierarchy.MustSchema(hierarchy.Binary("A", 3), hierarchy.Binary("B", 3)),
		hierarchy.MustSchema(
			hierarchy.Uniform("a", 2, 3),
			hierarchy.Uniform("b", 1, 2),
			hierarchy.Uniform("c", 2, 2),
		),
	}
	for _, s := range schemas {
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(40))
		for i := 0; i < 60; i++ {
			w := workload.Random(l, rng, 0.6)
			opt, err := core.Optimal(w)
			if err != nil {
				t.Fatal(err)
			}
			snakedOpt := SnakedPathCost(opt.Path, w)
			bestSnaked := math.Inf(1)
			core.EnumeratePaths(l, func(p *core.Path) bool {
				if c := SnakedPathCost(p, w); c < bestSnaked {
					bestSnaked = c
				}
				return true
			})
			if ratio := snakedOpt / bestSnaked; ratio >= 2 {
				t.Errorf("schema %v workload %d: snaked-optimal / optimal-snaked = %v ≥ 2", s, i, ratio)
			}
		}
	}
}

// TestSnakedOptimalUsuallyNearOptimalSnaked quantifies the paper's
// conjecture that the factor-2 bound is loose in practice: across random
// workloads the ratio stays very close to 1.
func TestSnakedOptimalUsuallyNearOptimalSnaked(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 3), hierarchy.Binary("B", 3))
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(41))
	worst := 1.0
	for i := 0; i < 200; i++ {
		w := workload.Random(l, rng, 0.6)
		opt, err := core.Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		snakedOpt := SnakedPathCost(opt.Path, w)
		best := math.Inf(1)
		core.EnumeratePaths(l, func(p *core.Path) bool {
			if c := SnakedPathCost(p, w); c < best {
				best = c
			}
			return true
		})
		if r := snakedOpt / best; r > worst {
			worst = r
		}
	}
	if worst > 1.5 {
		t.Errorf("worst observed ratio %v; expected well under the 2x bound on random workloads", worst)
	}
	t.Logf("worst snaked-optimal / optimal-snaked ratio over 200 random workloads: %.4f", worst)
}
