package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// randomSchema derives a small random 2- or 3-dimensional schema from a
// quick-check seed.
func randomSchema(seed int64) *hierarchy.Schema {
	rng := rand.New(rand.NewSource(seed))
	k := 2 + rng.Intn(2)
	dims := make([]hierarchy.Dimension, k)
	for d := range dims {
		levels := 1 + rng.Intn(3)
		fanouts := make([]int, levels)
		for i := range fanouts {
			fanouts[i] = 1 + rng.Intn(4)
		}
		dims[d] = hierarchy.Dimension{Name: string(rune('a' + d)), Fanouts: fanouts}
	}
	return hierarchy.MustSchema(dims...)
}

// randomPath picks a random monotone lattice path.
func randomPath(l *lattice.Lattice, rng *rand.Rand) *core.Path {
	tops := l.Tops()
	remaining := append([]int(nil), tops...)
	total := 0
	for _, t := range tops {
		total += t
	}
	steps := make([]int, 0, total)
	for len(steps) < total {
		d := rng.Intn(l.K())
		if remaining[d] > 0 {
			remaining[d]--
			steps = append(steps, d)
		}
	}
	return core.MustPath(l, steps)
}

// TestQuickCVTotalEdges: every analytic path CV sums to N−1 edges.
func TestQuickCVTotalEdges(t *testing.T) {
	f := func(seed int64, snaked bool) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		p := randomPath(l, rng)
		cv := OfPath(p, snaked)
		return cv.TotalEdges() == int64(s.NumCells()-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnakedNonDiagonal: snaked CVs never contain diagonal edges;
// unsnaked CVs of paths with ≥2 active dimensions always do.
func TestQuickSnakedNonDiagonal(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x7a7a))
		p := randomPath(l, rng)
		if OfPath(p, true).Diagonal() != 0 {
			return false
		}
		// An unsnaked path is diagonal unless every wrap resets nothing,
		// which needs all but fanout-1 loops in one dimension; just check
		// that the count is non-negative and ≤ total.
		d := OfPath(p, false).Diagonal()
		return d >= 0 && d <= int64(s.NumCells()-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnakingMonotone: snaking never increases any class's cost, so
// interiors only grow when moving from unsnaked to snaked at comparable
// classes... the precise statement: expected cost over any workload never
// increases.
func TestQuickSnakingMonotone(t *testing.T) {
	f := func(seed int64, sparsity8 uint8) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x1111))
		p := randomPath(l, rng)
		sparsity := 0.1 + float64(sparsity8%200)/250
		w := workload.Random(l, rng, sparsity)
		return OfPath(p, true).ExpectedCost(w) <= OfPath(p, false).ExpectedCost(w)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickClassCostBounds: for every strategy and class, the average cost
// lies in [1, blockSize] — at least one fragment, at most one per cell.
func TestQuickClassCostBounds(t *testing.T) {
	f := func(seed int64, snaked bool) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x2222))
		p := randomPath(l, rng)
		cv := OfPath(p, snaked)
		ok := true
		l.Points(func(c lattice.Point) {
			cost := cv.ClassCost(c)
			if cost < 1-1e-9 || cost > float64(l.BlockSize(c))+1e-9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDPNeverBeatenByRandomPath: the DP's reported optimum is a lower
// bound on the cost of any sampled path.
func TestQuickDPNeverBeatenByRandomPath(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x3333))
		w := workload.Random(l, rng, 0.6)
		opt, err := core.Optimal(w)
		if err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			if core.Cost(randomPath(l, rng), w) < opt.Cost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickInteriorMonotoneInClass: for a fixed strategy, interiors grow
// with the class (c ≤ c' ⇒ E_c ≤ E_c'), hence class costs scale sensibly.
func TestQuickInteriorMonotoneInClass(t *testing.T) {
	f := func(seed int64, snaked bool) bool {
		s := randomSchema(seed)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(seed ^ 0x4444))
		p := randomPath(l, rng)
		cv := OfPath(p, snaked)
		ok := true
		l.Points(func(c lattice.Point) {
			ec := cv.Interior(c)
			l.Successors(c, func(d int, v lattice.Point) {
				if cv.Interior(v) < ec {
					ok = false
				}
			})
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
