// Package cost implements the clustering cost model: per-query-class
// average seek counts and expected workload costs, computed either from a
// materialized linearization or analytically from a (snaked) lattice path.
//
// Everything rests on one identity: the number of contiguous fragments
// covering a region R is |R| minus the number of linearization edges whose
// endpoints both lie in R. Averaged over the blocks of a query class c,
//
//	avgCost(c) = (N − E_c) / Q_c,
//
// where N is the number of cells, E_c counts edges interior to some class-c
// block, and Q_c is the number of class-c blocks. E_c depends only on the
// strategy's generalized characteristic vector (edge counts by type), which
// is the paper's extended cost_μ for characteristic vectors, generalized to
// k dimensions and arbitrary fanouts.
package cost

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

// CV is a generalized characteristic vector: linearization edge counts
// indexed by edge type, where a type is a query class (the minimal class
// whose blocks can contain the edge) in the lattice's dense index order.
type CV struct {
	Lat    *lattice.Lattice
	Counts []int64
}

// NewCV returns an all-zero characteristic vector over the lattice.
func NewCV(l *lattice.Lattice) *CV {
	return &CV{Lat: l, Counts: make([]int64, l.Size())}
}

// OfOrder measures the characteristic vector of a materialized
// linearization.
func OfOrder(l *lattice.Lattice, o *linear.Order) *CV {
	return &CV{Lat: l, Counts: o.EdgeTypes(l)}
}

// OfPath returns the analytic characteristic vector of a lattice path's
// clustering strategy. The edge u_s → u_{s+1} of the path (stepping
// dimension d) contributes N/size(u_s) − N/size(u_{s+1}) linearization
// edges; unsnaked they are all of type u_{s+1} (diagonal whenever u_s has
// another nonzero component), snaked they are all of the pure type with
// level u_s[d]+1 in dimension d and 0 elsewhere.
func OfPath(p *core.Path, snaked bool) *CV {
	l := p.Lattice()
	cv := NewCV(l)
	n := l.Schema().NumCells()
	pts := p.Points()
	steps := p.Steps()
	for s := 0; s+1 < len(pts); s++ {
		edges := int64(n/l.BlockSize(pts[s]) - n/l.BlockSize(pts[s+1]))
		var t lattice.Point
		if snaked {
			t = make(lattice.Point, l.K())
			t[steps[s]] = pts[s][steps[s]] + 1
		} else {
			t = pts[s+1]
		}
		cv.Counts[l.Index(t)] += edges
	}
	return cv
}

// TotalEdges returns the total number of edges, which must be N−1 for any
// strategy over the full grid.
func (cv *CV) TotalEdges() int64 {
	var t int64
	for _, c := range cv.Counts {
		t += c
	}
	return t
}

// Diagonal returns the number of diagonal edges: edges whose type has two
// or more nonzero components.
func (cv *CV) Diagonal() int64 {
	var t int64
	for i, c := range cv.Counts {
		if c == 0 {
			continue
		}
		p := cv.Lat.PointAt(i)
		nz := 0
		for _, v := range p {
			if v > 0 {
				nz++
			}
		}
		if nz >= 2 {
			t += c
		}
	}
	return t
}

// Interior returns E_c: the number of edges interior to some block of
// class c, i.e. the total count of edges whose type is ≤ c.
func (cv *CV) Interior(c lattice.Point) int64 {
	var t int64
	cv.Lat.Points(func(p lattice.Point) {
		if p.LE(c) {
			t += cv.Counts[cv.Lat.Index(p)]
		}
	})
	return t
}

// ClassCost returns the average number of fragments for a class-c query:
// (N − E_c) / Q_c.
func (cv *CV) ClassCost(c lattice.Point) float64 {
	n := cv.Lat.Schema().NumCells()
	q := cv.Lat.NumQueries(c)
	return (float64(n) - float64(cv.Interior(c))) / float64(q)
}

// ExpectedCost returns the expected cost over the workload:
// Σ_c p_c · ClassCost(c).
func (cv *CV) ExpectedCost(w *workload.Workload) float64 {
	if w.Lattice() != cv.Lat {
		// Different lattice objects over the same schema are fine as long
		// as the shapes agree; re-index defensively via points.
		if w.Lattice().Size() != cv.Lat.Size() {
			panic(fmt.Sprintf("cost: workload lattice size %d ≠ CV lattice size %d", w.Lattice().Size(), cv.Lat.Size()))
		}
	}
	total := 0.0
	cv.Lat.Points(func(c lattice.Point) {
		if p := w.Prob(c); p > 0 {
			total += p * cv.ClassCost(c)
		}
	})
	return total
}

// Equal reports whether two characteristic vectors have identical counts.
func (cv *CV) Equal(other *CV) bool {
	if len(cv.Counts) != len(other.Counts) {
		return false
	}
	for i := range cv.Counts {
		if cv.Counts[i] != other.Counts[i] {
			return false
		}
	}
	return true
}

// PathCost returns the expected cost of the (unsnaked) lattice path over
// the workload, computed analytically from its characteristic vector. It
// equals core.Cost and the DP's reported optimum; the redundancy is used by
// tests.
func PathCost(p *core.Path, w *workload.Workload) float64 {
	return OfPath(p, false).ExpectedCost(w)
}

// SnakedPathCost returns the expected cost of the snaked strategy of the
// lattice path over the workload.
func SnakedPathCost(p *core.Path, w *workload.Workload) float64 {
	return OfPath(p, true).ExpectedCost(w)
}

// Benefit returns ben_P(c) = dist_P(c) / dist_{~P}(c): the factor by which
// snaking improves the average cost of class-c queries under the path's
// strategy (Section 5.2). It is ≥ 1 for every class and < 2 by Theorem 3.
func Benefit(p *core.Path, c lattice.Point) float64 {
	plain := OfPath(p, false).ClassCost(c)
	snaked := OfPath(p, true).ClassCost(c)
	return plain / snaked
}

// EvaluateOrder returns the expected workload cost of an arbitrary
// materialized linearization.
func EvaluateOrder(l *lattice.Lattice, o *linear.Order, w *workload.Workload) float64 {
	return OfOrder(l, o).ExpectedCost(w)
}
