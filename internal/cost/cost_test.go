package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

func exampleSchema() *hierarchy.Schema {
	return hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
}

func p1(l *lattice.Lattice) *core.Path { return core.MustPath(l, []int{1, 1, 0, 0}) }
func p2(l *lattice.Lattice) *core.Path { return core.MustPath(l, []int{1, 0, 1, 0}) }

// ratio is a Table-1 entry: total cost over the class / queries in class.
type ratio struct{ num, den float64 }

func (r ratio) value() float64 { return r.num / r.den }

// TestTable1 reproduces Table 1: the average query-class cost of P1, P2,
// the Hilbert curve, and the snaked paths ~P1 and ~P2, on the 4×4 grid.
//
// One deviation, documented in EXPERIMENTS.md: for class (2,0) under ~P2 the
// paper prints 12/4, but its own characteristic-vector cost formula (and a
// hand count of fragments on the materialized snake) give 11/4 — the snake's
// single level-2 A edge merges two of the twelve fragments. We assert 11/4.
func TestTable1(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	cvP1 := OfPath(p1(l), false)
	cvP2 := OfPath(p2(l), false)
	cvS1 := OfPath(p1(l), true)
	cvS2 := OfPath(p2(l), true)
	h, err := linear.Hilbert2D(s)
	if err != nil {
		t.Fatal(err)
	}
	cvH := OfOrder(l, h)

	rows := []struct {
		c                  lattice.Point
		p1, p2, hd, s1, s2 ratio
	}{
		{lattice.Point{0, 0}, ratio{16, 16}, ratio{16, 16}, ratio{16, 16}, ratio{16, 16}, ratio{16, 16}},
		{lattice.Point{1, 1}, ratio{8, 4}, ratio{4, 4}, ratio{4, 4}, ratio{6, 4}, ratio{4, 4}},
		{lattice.Point{2, 2}, ratio{1, 1}, ratio{1, 1}, ratio{1, 1}, ratio{1, 1}, ratio{1, 1}},
		{lattice.Point{1, 0}, ratio{16, 8}, ratio{16, 8}, ratio{10, 8}, ratio{14, 8}, ratio{12, 8}},
		{lattice.Point{0, 1}, ratio{8, 8}, ratio{8, 8}, ratio{10, 8}, ratio{8, 8}, ratio{8, 8}},
		{lattice.Point{2, 0}, ratio{16, 4}, ratio{16, 4}, ratio{8, 4}, ratio{13, 4}, ratio{11, 4}}, // paper prints 12/4 for ~P2; see doc comment
		{lattice.Point{0, 2}, ratio{4, 4}, ratio{8, 4}, ratio{9, 4}, ratio{4, 4}, ratio{6, 4}},
		{lattice.Point{2, 1}, ratio{8, 2}, ratio{4, 2}, ratio{2, 2}, ratio{5, 2}, ratio{3, 2}},
		{lattice.Point{1, 2}, ratio{2, 2}, ratio{2, 2}, ratio{3, 2}, ratio{2, 2}, ratio{2, 2}},
	}
	for _, row := range rows {
		check := func(name string, cv *CV, want ratio) {
			// The Hilbert curve's orientation may swap the roles of the two
			// dimensions; accept the transposed class for it.
			got := cv.ClassCost(row.c)
			if math.Abs(got-want.value()) > 1e-12 {
				if name == "Hilbert" {
					alt := cv.ClassCost(lattice.Point{row.c[1], row.c[0]})
					if math.Abs(alt-want.value()) <= 1e-12 {
						return
					}
				}
				t.Errorf("class %v, %s: cost %v, want %v/%v", row.c, name, got, want.num, want.den)
			}
		}
		check("P1", cvP1, row.p1)
		check("P2", cvP2, row.p2)
		check("Hilbert", cvH, row.hd)
		check("~P1", cvS1, row.s1)
		check("~P2", cvS2, row.s2)
	}
}

// TestTable2 reproduces Table 2's expected workload costs, with the ~P2
// column adjusted for the Table-1 deviation: workloads 1 and 2 include class
// (2,0), so their ~P2 entries shift from 25/18 → 12.25/9 and 9/6 → 8.75/6.
func TestTable2(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	w1 := workload.Uniform(l)
	w2 := workload.UniformExcept(l, lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 1})
	w3 := workload.UniformOver(l, lattice.Point{0, 0}, lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 2})
	h, err := linear.Hilbert2D(s)
	if err != nil {
		t.Fatal(err)
	}
	// Hilbert's orientation: align with the paper's labeling by evaluating
	// on the workload directly (workloads 1 and 2 are symmetric under
	// transpose; workload 3 is checked against the transposed value too).
	cvH := OfOrder(l, h)
	rows := []struct {
		name       string
		w          *workload.Workload
		p1, p2, hd float64
		s1, s2     float64
	}{
		{"workload1", w1, 17.0 / 9, 15.0 / 9, 49.0 / 36, 14.0 / 9, 12.25 / 9},
		{"workload2", w2, 13.0 / 6, 11.0 / 6, 31.0 / 24, 21.0 / 12, 8.75 / 6},
		{"workload3", w3, 1, 5.0 / 4, 3.0 / 2, 1, 9.0 / 8},
	}
	for _, row := range rows {
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"P1", OfPath(p1(l), false).ExpectedCost(row.w), row.p1},
			{"P2", OfPath(p2(l), false).ExpectedCost(row.w), row.p2},
			{"Hilbert", cvH.ExpectedCost(row.w), row.hd},
			{"~P1", OfPath(p1(l), true).ExpectedCost(row.w), row.s1},
			{"~P2", OfPath(p2(l), true).ExpectedCost(row.w), row.s2},
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > 1e-9 {
				t.Errorf("%s %s: cost %v, want %v", row.name, c.name, c.got, c.want)
			}
		}
	}
}

// TestAnalyticCVMatchesMeasured checks OfPath against edge counting on the
// materialized linearization, for every path of two schemas, snaked and not.
func TestAnalyticCVMatchesMeasured(t *testing.T) {
	schemas := []*hierarchy.Schema{
		exampleSchema(),
		hierarchy.MustSchema(
			hierarchy.Dimension{Name: "x", Fanouts: []int{3, 2}},
			hierarchy.Dimension{Name: "y", Fanouts: []int{2, 4}},
		),
		hierarchy.MustSchema(
			hierarchy.Uniform("a", 1, 2),
			hierarchy.Uniform("b", 2, 3),
			hierarchy.Uniform("c", 1, 5),
		),
	}
	for _, s := range schemas {
		l := lattice.New(s)
		core.EnumeratePaths(l, func(p *core.Path) bool {
			for _, snaked := range []bool{false, true} {
				analytic := OfPath(p, snaked)
				o, err := linear.FromPath(s, p, snaked)
				if err != nil {
					t.Fatal(err)
				}
				measured := OfOrder(l, o)
				if !analytic.Equal(measured) {
					t.Fatalf("schema %v path %v snaked=%v: analytic CV %v ≠ measured %v",
						s, p, snaked, analytic.Counts, measured.Counts)
				}
			}
			return true
		})
	}
}

// TestPathCostMatchesCoreCost cross-checks the CV cost model against the
// direct dist-based definition for unsnaked paths.
func TestPathCostMatchesCoreCost(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{2, 3}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{4, 2}},
	)
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		w := workload.Random(l, rng, 0.7)
		core.EnumeratePaths(l, func(p *core.Path) bool {
			cvCost := PathCost(p, w)
			direct := core.Cost(p, w)
			if math.Abs(cvCost-direct) > 1e-9 {
				t.Fatalf("path %v: CV cost %v ≠ direct cost %v", p, cvCost, direct)
			}
			return true
		})
	}
}

// TestSnakingNeverIncreasesCost is the paper's central claim about snaking
// (Section 5): on every workload and every lattice path, the snaked strategy
// costs no more.
func TestSnakingNeverIncreasesCost(t *testing.T) {
	schemas := []*hierarchy.Schema{
		exampleSchema(),
		hierarchy.MustSchema(
			hierarchy.Dimension{Name: "x", Fanouts: []int{4, 2}},
			hierarchy.Dimension{Name: "y", Fanouts: []int{3, 3}},
		),
		hierarchy.MustSchema(
			hierarchy.Uniform("a", 2, 2),
			hierarchy.Uniform("b", 1, 3),
			hierarchy.Uniform("c", 1, 2),
		),
	}
	for _, s := range schemas {
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(71))
		for i := 0; i < 25; i++ {
			w := workload.Random(l, rng, 0.6)
			core.EnumeratePaths(l, func(p *core.Path) bool {
				plain := PathCost(p, w)
				snaked := SnakedPathCost(p, w)
				if snaked > plain+1e-9 {
					t.Fatalf("schema %v path %v: snaked cost %v > plain %v", s, p, snaked, plain)
				}
				return true
			})
		}
	}
}

// TestTheorem3Bound checks cost(P)/cost(~P) < 2 for every path and workload
// sampled, and that per-class benefits stay below the paper's bound.
func TestTheorem3Bound(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(5))
	core.EnumeratePaths(l, func(p *core.Path) bool {
		l.Points(func(c lattice.Point) {
			if b := Benefit(p, c.Clone()); b < 1-1e-12 || b >= 2 {
				t.Errorf("path %v class %v: benefit %v out of [1, 2)", p, c, b)
			}
		})
		for i := 0; i < 20; i++ {
			w := workload.Random(l, rng, 0.5)
			ratio := PathCost(p, w) / SnakedPathCost(p, w)
			if ratio >= 2 {
				t.Errorf("path %v: cost ratio %v ≥ 2", p, ratio)
			}
		}
		return true
	})
}

// TestTheorem3Extremal reproduces the proof's extremal case: the benefit is
// maximized by the point workload on class (n, j) for a path whose last
// dominated point is (0, j), approaching 2 as n grows.
func TestTheorem3Extremal(t *testing.T) {
	for n := 1; n <= 6; n++ {
		s := hierarchy.MustSchema(hierarchy.Binary("A", n), hierarchy.Binary("B", n))
		l := lattice.New(s)
		// The proof's extremal path: one B step, then all A steps, then the
		// remaining B steps — the snake then packs the most snake edges
		// under class (n, 0) while the unsnaked distance stays 2^n.
		steps := make([]int, 0, 2*n)
		steps = append(steps, 1)
		for i := 0; i < n; i++ {
			steps = append(steps, 0)
		}
		for i := 1; i < n; i++ {
			steps = append(steps, 1)
		}
		p := core.MustPath(l, steps)
		got := Benefit(p, lattice.Point{n, 0})
		want := 1 / (0.5 + 1/math.Pow(2, float64(n+1)))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: extremal benefit %v, want %v", n, got, want)
		}
	}
}

func TestDiagonalCounts(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	if got := OfPath(p1(l), false).Diagonal(); got != 3 {
		t.Errorf("P1 diagonal edges = %d, want 3", got)
	}
	if got := OfPath(p1(l), true).Diagonal(); got != 0 {
		t.Errorf("~P1 diagonal edges = %d, want 0", got)
	}
}

func TestTotalEdges(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	for _, snaked := range []bool{false, true} {
		if got := OfPath(p1(l), snaked).TotalEdges(); got != 15 {
			t.Errorf("snaked=%v: total edges = %d, want 15", snaked, got)
		}
	}
}

func TestEvaluateOrder(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	w := workload.Uniform(l)
	o, err := linear.FromPath(s, p1(l), false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := EvaluateOrder(l, o, w), 17.0/9; math.Abs(got-want) > 1e-12 {
		t.Errorf("EvaluateOrder = %v, want %v", got, want)
	}
}
