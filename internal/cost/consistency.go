package cost

import (
	"fmt"

	"repro/internal/lattice"
)

// CheckConsistency verifies the k-dimensional generalization of the
// paper's Lemma-2 constraints for a characteristic vector: for every query
// class c, the edges that can lie inside class-c blocks number at most
// N − N/blockSize(c) (each of the N/blockSize(c) blocks is a set of
// blockSize(c) cells and can host at most blockSize(c)−1 path edges), all
// counts are non-negative, no edge has the impossible type ⊥, and the
// total is exactly N−1. Every real clustering strategy's CV satisfies all
// of these; the checker is used to validate measured CVs and to screen
// synthetic vectors in the sandwich machinery.
func (cv *CV) CheckConsistency() error {
	l := cv.Lat
	n := int64(l.Schema().NumCells())
	for i, c := range cv.Counts {
		if c < 0 {
			return fmt.Errorf("cost: type %v has negative count %d", l.PointAt(i), c)
		}
	}
	if c := cv.Counts[l.Index(l.Bottom())]; c != 0 {
		return fmt.Errorf("cost: %d edges of impossible type ⊥", c)
	}
	var err error
	l.Points(func(c lattice.Point) {
		if err != nil || c.Equal(l.Bottom()) {
			return
		}
		bound := n - n/int64(l.BlockSize(c))
		if got := cv.Interior(c); got > bound {
			err = fmt.Errorf("cost: class %v holds %d interior edges, bound %d", c.Clone(), got, bound)
		}
	})
	if err != nil {
		return err
	}
	if got := cv.TotalEdges(); got != n-1 {
		return fmt.Errorf("cost: total edges %d, want %d", got, n-1)
	}
	return nil
}
