package cv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

// TestHilbertSandwichedBySnakedPaths checks the full-paper claim quoted in
// Section 8: on the 2-D binary schema, the expected cost of the Hilbert
// strategy is sandwiched between two fixed snaked lattice paths — the
// alternating (level-interleaving) paths with opposite innermost dimension,
// whose characteristic vectors bracket Hilbert's nearly even level-wise
// edge split. The sandwich holds per query class (single-class workloads,
// the extreme rays of the workload simplex). It cannot hold for arbitrary
// mixtures with fixed paths: costs are linear in the workload, and on a mix
// of a class favoring one snake with a class favoring the other, middling
// Hilbert can edge out both — the test demonstrates that too.
func TestHilbertSandwichedBySnakedPaths(t *testing.T) {
	for n := 1; n <= 4; n++ {
		s := BinarySchema(n)
		l := lattice.New(s)
		h, err := linear.Hilbert(s)
		if err != nil {
			t.Fatal(err)
		}
		hcv := cost.OfOrder(l, h)
		// The two alternating paths: A innermost and B innermost.
		stepsA := make([]int, 0, 2*n)
		stepsB := make([]int, 0, 2*n)
		for i := 0; i < n; i++ {
			stepsA = append(stepsA, 0, 1)
			stepsB = append(stepsB, 1, 0)
		}
		sa := cost.OfPath(core.MustPath(l, stepsA), true)
		sb := cost.OfPath(core.MustPath(l, stepsB), true)

		// Per-class sandwich: every single-class workload.
		l.Points(func(c lattice.Point) {
			w := workload.Point(l, c.Clone())
			ch := hcv.ExpectedCost(w)
			ca, cb := sa.ExpectedCost(w), sb.ExpectedCost(w)
			if ch < math.Min(ca, cb)-1e-9 || ch > math.Max(ca, cb)+1e-9 {
				t.Fatalf("n=%d class %v: Hilbert cost %v outside [%v, %v]", n, c, ch, ca, cb)
			}
		})
		// On mixtures the fixed-pair sandwich can break: exhibit one random
		// workload where Hilbert beats both snakes (known to exist at n=2).
		if n == 2 {
			rng := rand.New(rand.NewSource(102))
			escaped := false
			for i := 0; i < 400 && !escaped; i++ {
				w := workload.Random(l, rng, 0.5)
				ch := hcv.ExpectedCost(w)
				if ch < math.Min(sa.ExpectedCost(w), sb.ExpectedCost(w))-1e-9 {
					escaped = true
				}
			}
			if !escaped {
				t.Log("no mixture escape found at n=2; the fixed-pair sandwich may hold more broadly than expected")
			}
		}
	}
}

// TestHilbertNeitherDominatesNorIsDominated documents the companion fact
// from Sections 7–8: lattice paths can be arbitrarily better than Hilbert
// on some workloads and worse on others — neither side dominates.
func TestHilbertNeitherDominatesNorIsDominated(t *testing.T) {
	s := BinarySchema(2)
	l := lattice.New(s)
	h, err := linear.Hilbert(s)
	if err != nil {
		t.Fatal(err)
	}
	hcv := cost.OfOrder(l, h)
	// Snaked P1 (row-major with B innermost).
	sp1 := cost.OfPath(core.MustPath(l, []int{1, 1, 0, 0}), true)

	// Workload favoring column scans: P1's snake wins big.
	wCols := workload.Point(l, lattice.Point{0, 2})
	if !(sp1.ExpectedCost(wCols) < hcv.ExpectedCost(wCols)) {
		t.Error("snaked P1 should beat Hilbert on whole-B-range queries")
	}
	// Workload favoring square regions: Hilbert wins.
	wSquare := workload.Point(l, lattice.Point{1, 0})
	if !(hcv.ExpectedCost(wSquare) < sp1.ExpectedCost(wSquare)) {
		t.Error("Hilbert should beat snaked P1 on (1,0) queries")
	}
}
