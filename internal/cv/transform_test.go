package cv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

func TestPreceqPaperExamples(t *testing.T) {
	// (8,4;2,1) ⪯ (1,11;1,2) ⪯ (0,12;1,2), from Section 5.1.
	v1 := mustVector(t, []int64{8, 4}, []int64{2, 1}, nil)
	v2 := mustVector(t, []int64{1, 11}, []int64{1, 2}, nil)
	v3 := mustVector(t, []int64{0, 12}, []int64{1, 2}, nil)
	if !Preceq(v1, v2) || !Preceq(v2, v3) || !Preceq(v1, v3) {
		t.Error("paper's ⪯ chain does not hold")
	}
	if Preceq(v2, v1) || Preceq(v3, v2) {
		t.Error("⪯ should be antisymmetric on distinct vectors")
	}
	if !Preceq(v1, v1) {
		t.Error("⪯ should be reflexive")
	}
}

// example3In is the diagonal strategy vector of Example 3:
// (20,5,1;21,3,1;4,0,0,0,4,0,0,0,4) with n = 3.
func example3In(t *testing.T) *Vector {
	d := [][]int64{{4, 0, 0}, {0, 4, 0}, {0, 0, 4}}
	return mustVector(t, []int64{20, 5, 1}, []int64{21, 3, 1}, d)
}

func TestRemoveDiagonalsExample3(t *testing.T) {
	vin := example3In(t)
	if err := vin.Consistent(); err != nil {
		t.Fatalf("example 3 input should be consistent: %v", err)
	}
	out, err := RemoveDiagonals(vin)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's splits x=4, y=0 at each diagonal give (24,9,5;21,3,1).
	want := mustVector(t, []int64{24, 9, 5}, []int64{21, 3, 1}, nil)
	if !out.Equal(want) {
		t.Errorf("RemoveDiagonals = %v, want %v", out, want)
	}
	if out.IsDiagonal() {
		t.Error("result should have no diagonal edges")
	}
}

func TestRemoveDiagonalsNeverIncreasesCost(t *testing.T) {
	s := BinarySchema(3)
	l := lattice.New(s)
	vin := example3In(t)
	out, err := RemoveDiagonals(vin)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 100; i++ {
		w := workload.Random(l, rng, 0.6)
		if co, ci := out.ExpectedCost(w), vin.ExpectedCost(w); co > ci+1e-9 {
			t.Fatalf("workload %d: diagonal-free cost %v > original %v", i, co, ci)
		}
	}
}

func TestRemoveDiagonalsOnRealStrategies(t *testing.T) {
	// Applying Lemma 4 to every unsnaked lattice path's CV must succeed and
	// never increase cost.
	for n := 1; n <= 3; n++ {
		s := BinarySchema(n)
		l := lattice.New(s)
		rng := rand.New(rand.NewSource(int64(n)))
		core.EnumeratePaths(l, func(p *core.Path) bool {
			v, err := OfPath(p, false)
			if err != nil {
				t.Fatal(err)
			}
			out, err := RemoveDiagonals(v)
			if err != nil {
				t.Fatalf("n=%d path %v: %v", n, p, err)
			}
			for i := 0; i < 10; i++ {
				w := workload.Random(l, rng, 0.7)
				if co, ci := out.ExpectedCost(w), v.ExpectedCost(w); co > ci+1e-9 {
					t.Fatalf("n=%d path %v: cost rose %v → %v", n, p, ci, co)
				}
			}
			return true
		})
	}
}

func TestMinimalizeExample3(t *testing.T) {
	// The paper names (27,8,3;21,3,1) as a ⪯-minimal vector below
	// (24,9,5;21,3,1); the greedy down-shift reaches exactly it.
	v := mustVector(t, []int64{24, 9, 5}, []int64{21, 3, 1}, nil)
	m, err := Minimalize(v)
	if err != nil {
		t.Fatal(err)
	}
	want := mustVector(t, []int64{27, 8, 3}, []int64{21, 3, 1}, nil)
	if !m.Equal(want) {
		t.Errorf("Minimalize = %v, want %v", m, want)
	}
	if !Preceq(m, v) {
		t.Error("Minimalize result should be ⪯ the input")
	}
}

func TestMinimalizeNeverIncreasesCost(t *testing.T) {
	s := BinarySchema(3)
	l := lattice.New(s)
	v := mustVector(t, []int64{24, 9, 5}, []int64{21, 3, 1}, nil)
	m, err := Minimalize(v)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		w := workload.Random(l, rng, 0.6)
		if cm, cvv := m.ExpectedCost(w), v.ExpectedCost(w); cm > cvv+1e-9 {
			t.Fatalf("Minimalize raised cost %v → %v", cvv, cm)
		}
	}
}

func TestMinimalizeRejectsDiagonal(t *testing.T) {
	if _, err := Minimalize(example3In(t)); err == nil {
		t.Error("Minimalize should reject diagonal vectors")
	}
}

func TestSandwichStepExample3(t *testing.T) {
	u := mustVector(t, []int64{27, 8, 3}, []int64{21, 3, 1}, nil)
	v1, v2, done, err := SandwichStep(u)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("u has non-power entries; step should not be done")
	}
	// The paper's Example 3 gives the sandwiching pair {(32,8,3;16,3,1),
	// (16,8,3;32,3,1)}; the pair is unordered (the example itself swaps
	// which side gets the larger power between levels).
	want1 := mustVector(t, []int64{32, 8, 3}, []int64{16, 3, 1}, nil)
	want2 := mustVector(t, []int64{16, 8, 3}, []int64{32, 3, 1}, nil)
	if !(v1.Equal(want1) && v2.Equal(want2)) && !(v1.Equal(want2) && v2.Equal(want1)) {
		t.Errorf("sandwich = %v, %v; want {%v, %v}", v1, v2, want1, want2)
	}
	// Second level of the construction, on the member matching u₁.
	u1 := v1
	if !u1.Equal(want1) {
		u1 = v2
	}
	v11, v12, done, err := SandwichStep(u1)
	if err != nil || done {
		t.Fatalf("second step: done=%v err=%v", done, err)
	}
	want11 := mustVector(t, []int64{32, 8, 2}, []int64{16, 4, 1}, nil)
	want12 := mustVector(t, []int64{32, 8, 4}, []int64{16, 2, 1}, nil)
	if !(v11.Equal(want11) && v12.Equal(want12)) && !(v11.Equal(want12) && v12.Equal(want11)) {
		t.Errorf("sandwich of u₁ = %v, %v; want {%v, %v}", v11, v12, want11, want12)
	}
}

func TestSandwichClosureTerminatesInSnakedPaths(t *testing.T) {
	u := mustVector(t, []int64{27, 8, 3}, []int64{21, 3, 1}, nil)
	s := BinarySchema(3)
	l := lattice.New(s)
	vs, err := SandwichClosure(u, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("closure is empty")
	}
	for _, v := range vs {
		if !v.IsPowerOfTwoVector() {
			t.Errorf("closure vector %v is not power-of-two", v)
		}
		p, err := ReconstructPath(v, l)
		if err != nil {
			t.Errorf("closure vector %v is not a snaked lattice path: %v", v, err)
			continue
		}
		got, err := OfPath(p, true)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("reconstructed path %v has CV %v, want %v", p, got, v)
		}
	}
}

// TestSandwichCostDomination is the heart of Theorem 2: on any workload, the
// subject vector cannot beat every vector in its sandwich closure.
func TestSandwichCostDomination(t *testing.T) {
	s := BinarySchema(3)
	l := lattice.New(s)
	u := mustVector(t, []int64{27, 8, 3}, []int64{21, 3, 1}, nil)
	vs, err := SandwichClosure(u, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		w := workload.Random(l, rng, 0.5)
		cu := u.ExpectedCost(w)
		best := math.Inf(1)
		for _, v := range vs {
			if c := v.ExpectedCost(w); c < best {
				best = c
			}
		}
		if best > cu+1e-9 {
			t.Fatalf("workload %d: all closure vectors cost more than %v (best %v)", i, cu, best)
		}
	}
}

func TestReconstructPathErrors(t *testing.T) {
	l := lattice.New(BinarySchema(2))
	// Wrong multiset of powers.
	v := mustVector(t, []int64{8, 8}, []int64{8, 8}, nil)
	if _, err := ReconstructPath(v, l); err == nil {
		t.Error("non-curve power multiset should fail")
	}
	// Levels out of order within a dimension: a₁ < a₂ forces stepping
	// level 2 before level 1.
	v2 := mustVector(t, []int64{2, 8}, []int64{4, 1}, nil)
	if _, err := ReconstructPath(v2, l); err == nil {
		t.Error("non-monotone step order should fail")
	}
	// Diagonal vector.
	v3 := NewVector(2)
	v3.D[0][0] = 15
	if _, err := ReconstructPath(v3, l); err == nil {
		t.Error("diagonal vector should fail")
	}
}

func TestReconstructRoundTripAllSnakedPaths(t *testing.T) {
	for n := 1; n <= 3; n++ {
		l := lattice.New(BinarySchema(n))
		core.EnumeratePaths(l, func(p *core.Path) bool {
			v, err := OfPath(p, true)
			if err != nil {
				t.Fatal(err)
			}
			q, err := ReconstructPath(v, l)
			if err != nil {
				t.Fatalf("n=%d: reconstruct CV of %v: %v", n, p, err)
			}
			if !q.Equal(p) {
				t.Fatalf("n=%d: reconstructed %v, want %v", n, q, p)
			}
			return true
		})
	}
}

// TestGlobalOptimality exercises Theorem 2 empirically: for random
// workloads on the 2-D binary schema, the best snaked lattice path costs no
// more than the Hilbert, Z, and Gray curves and a set of perturbed
// strategies.
func TestGlobalOptimality(t *testing.T) {
	for n := 1; n <= 3; n++ {
		s := BinarySchema(n)
		l := lattice.New(s)
		var rivals []*cost.CV
		h, err := linear.Hilbert(s)
		if err != nil {
			t.Fatal(err)
		}
		z, err := linear.ZOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		g, err := linear.GrayOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		rivals = append(rivals, cost.OfOrder(l, h), cost.OfOrder(l, z), cost.OfOrder(l, g))
		core.EnumeratePaths(l, func(p *core.Path) bool {
			rivals = append(rivals, cost.OfPath(p, false))
			return true
		})

		rng := rand.New(rand.NewSource(int64(10 + n)))
		for i := 0; i < 50; i++ {
			w := workload.Random(l, rng, 0.6)
			bestSnaked := math.Inf(1)
			core.EnumeratePaths(l, func(p *core.Path) bool {
				if c := cost.SnakedPathCost(p, w); c < bestSnaked {
					bestSnaked = c
				}
				return true
			})
			for _, r := range rivals {
				if c := r.ExpectedCost(w); c < bestSnaked-1e-9 {
					t.Fatalf("n=%d: rival strategy beats every snaked lattice path: %v < %v", n, c, bestSnaked)
				}
			}
		}
	}
}

func TestSandwichStepOneSided(t *testing.T) {
	// Vectors with a non-power entry on only one side fall outside the
	// Theorem-2 construction's domain and are rejected explicitly.
	v := mustVector(t, []int64{8, 4}, []int64{0, 3}, nil)
	if err := v.Consistent(); err != nil {
		t.Fatalf("fixture should be consistent: %v", err)
	}
	if _, _, _, err := SandwichStep(v); err == nil {
		t.Error("one-sided vector should be rejected")
	}
	v2 := mustVector(t, []int64{0, 3}, []int64{8, 4}, nil)
	if _, _, _, err := SandwichStep(v2); err == nil {
		t.Error("symmetric one-sided vector should be rejected")
	}
}

func TestPreceqMismatchedSizes(t *testing.T) {
	a := NewVector(2)
	b := NewVector(3)
	if Preceq(a, b) {
		t.Error("different-n vectors should not compare")
	}
}
