package cv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

// TestTheorem2ConjectureIn3D probes the paper's closing conjecture — "our
// proof technique suggests this [global optimality of some snaked lattice
// path] is likely to be the case in general" — on three-dimensional binary
// schemas, where the published proof does not apply. For many random
// workloads, the best snaked lattice path is compared against the 3-D
// Hilbert, Z and Gray curves and against every unsnaked lattice path. A
// counterexample would be a genuinely interesting find; none appears.
func TestTheorem2ConjectureIn3D(t *testing.T) {
	for _, n := range []int{1, 2} {
		s := hierarchy.MustSchema(
			hierarchy.Binary("x", n), hierarchy.Binary("y", n), hierarchy.Binary("z", n))
		l := lattice.New(s)

		var rivals []*cost.CV
		h, err := linear.Hilbert(s)
		if err != nil {
			t.Fatal(err)
		}
		z, err := linear.ZOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		g, err := linear.GrayOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		rivals = append(rivals, cost.OfOrder(l, h), cost.OfOrder(l, z), cost.OfOrder(l, g))
		var snaked []*cost.CV
		core.EnumeratePaths(l, func(p *core.Path) bool {
			rivals = append(rivals, cost.OfPath(p, false))
			snaked = append(snaked, cost.OfPath(p, true))
			return true
		})

		rng := rand.New(rand.NewSource(int64(300 + n)))
		for i := 0; i < 150; i++ {
			w := workload.Random(l, rng, 0.5)
			best := math.Inf(1)
			for _, sc := range snaked {
				if c := sc.ExpectedCost(w); c < best {
					best = c
				}
			}
			for _, r := range rivals {
				if c := r.ExpectedCost(w); c < best-1e-9 {
					t.Fatalf("n=%d workload %d: a rival strategy (cost %v) beats every snaked lattice path (best %v) — counterexample to the paper's conjecture",
						n, i, c, best)
				}
			}
		}
		// Point workloads (simplex vertices) as well: by linearity, if the
		// conjectured dominance held per class for all rivals it would hold
		// everywhere; it doesn't have to, so both checks matter.
		l.Points(func(c lattice.Point) {
			w := workload.Point(l, c.Clone())
			best := math.Inf(1)
			for _, sc := range snaked {
				if cc := sc.ExpectedCost(w); cc < best {
					best = cc
				}
			}
			for _, r := range rivals {
				if cc := r.ExpectedCost(w); cc < best-1e-9 {
					t.Fatalf("n=%d class %v: rival beats every snaked path (%v < %v)", n, c, cc, best)
				}
			}
		})
	}
}

// TestCorollary1In3D checks the factor-2 guarantee's empirical analogue in
// three dimensions: the snaked optimal lattice path stays within 2× of the
// best snaked lattice path on random workloads.
func TestCorollary1In3D(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Binary("x", 2), hierarchy.Binary("y", 2), hierarchy.Binary("z", 1))
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 80; i++ {
		w := workload.Random(l, rng, 0.6)
		opt, err := core.Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		snakedOpt := cost.SnakedPathCost(opt.Path, w)
		best := math.Inf(1)
		core.EnumeratePaths(l, func(p *core.Path) bool {
			if c := cost.SnakedPathCost(p, w); c < best {
				best = c
			}
			return true
		})
		if snakedOpt/best >= 2 {
			t.Errorf("workload %d: 3-D snaked-optimal/optimal-snaked = %v ≥ 2", i, snakedOpt/best)
		}
	}
}
