// Package cv implements the characteristic-vector theory of Section 5 for
// two-dimensional star schemas with complete n-level binary hierarchies:
// consistency constraints (Lemma 2), the ⪯ order and minimalization,
// diagonal removal (Lemma 4), the sandwich construction of Theorem 2, and
// the Lemma-3 reconstruction of a snaked lattice path from a minimal
// power-of-two vector.
package cv

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

// Vector is a characteristic vector (a₁..a_n; b₁..b_n; d₁₁..d_nn) over the
// 2ⁿ×2ⁿ grid of a 2-D schema with complete n-level binary hierarchies.
// A[i−1] counts edges of type A_i (endpoints differing only in dimension A,
// sharing a level-i ancestor but not a level-(i−1) one); B likewise; D[i−1][j−1]
// counts diagonal edges of type D_ij.
type Vector struct {
	N int
	A []int64
	B []int64
	D [][]int64
}

// NewVector returns an all-zero vector for n-level binary hierarchies.
func NewVector(n int) *Vector {
	v := &Vector{N: n, A: make([]int64, n), B: make([]int64, n), D: make([][]int64, n)}
	for i := range v.D {
		v.D[i] = make([]int64, n)
	}
	return v
}

// FromSlices builds a vector from explicit entries; d may be nil for a
// non-diagonal vector, or an n×n matrix in d₁₁, d₁₂, …, d_nn order.
func FromSlices(a, b []int64, d [][]int64) (*Vector, error) {
	n := len(a)
	if len(b) != n {
		return nil, fmt.Errorf("cv: a has %d entries, b has %d", n, len(b))
	}
	v := NewVector(n)
	copy(v.A, a)
	copy(v.B, b)
	if d != nil {
		if len(d) != n {
			return nil, fmt.Errorf("cv: d has %d rows, want %d", len(d), n)
		}
		for i := range d {
			if len(d[i]) != n {
				return nil, fmt.Errorf("cv: d row %d has %d entries, want %d", i, len(d[i]), n)
			}
			copy(v.D[i], d[i])
		}
	}
	return v, nil
}

// BinarySchema returns the representative schema of Section 5: two
// dimensions named A and B, each a complete n-level binary hierarchy.
func BinarySchema(n int) *hierarchy.Schema {
	return hierarchy.MustSchema(hierarchy.Binary("A", n), hierarchy.Binary("B", n))
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := NewVector(v.N)
	copy(c.A, v.A)
	copy(c.B, v.B)
	for i := range v.D {
		copy(c.D[i], v.D[i])
	}
	return c
}

// Equal reports whether two vectors have identical entries.
func (v *Vector) Equal(o *Vector) bool {
	if v.N != o.N {
		return false
	}
	for i := 0; i < v.N; i++ {
		if v.A[i] != o.A[i] || v.B[i] != o.B[i] {
			return false
		}
		for j := 0; j < v.N; j++ {
			if v.D[i][j] != o.D[i][j] {
				return false
			}
		}
	}
	return true
}

// IsDiagonal reports whether the vector has any diagonal edges.
func (v *Vector) IsDiagonal() bool {
	for i := range v.D {
		for j := range v.D[i] {
			if v.D[i][j] != 0 {
				return true
			}
		}
	}
	return false
}

// TotalEdges returns the sum of all entries.
func (v *Vector) TotalEdges() int64 {
	var t int64
	for i := 0; i < v.N; i++ {
		t += v.A[i] + v.B[i]
		for j := 0; j < v.N; j++ {
			t += v.D[i][j]
		}
	}
	return t
}

// String renders the vector in the paper's (a;b;d) notation, dropping an
// all-zero diagonal block as the paper does.
func (v *Vector) String() string {
	join := func(xs []int64) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = fmt.Sprint(x)
		}
		return strings.Join(parts, ",")
	}
	s := "(" + join(v.A) + ";" + join(v.B)
	if v.IsDiagonal() {
		var ds []string
		for i := range v.D {
			ds = append(ds, join(v.D[i]))
		}
		s += ";" + strings.Join(ds, ",")
	}
	return s + ")"
}

// prefix sums used by the consistency constraints.
func (v *Vector) sumA(l int) int64 {
	var t int64
	for i := 0; i < l; i++ {
		t += v.A[i]
	}
	return t
}

func (v *Vector) sumB(q int) int64 {
	var t int64
	for j := 0; j < q; j++ {
		t += v.B[j]
	}
	return t
}

func (v *Vector) sumD(l, q int) int64 {
	var t int64
	for i := 0; i < l; i++ {
		for j := 0; j < q; j++ {
			t += v.D[i][j]
		}
	}
	return t
}

// bound returns the Lemma-2 right-hand side for the (ℓ,q) constraint:
// Σ_{i=1..ℓ+q} 2^{2n−i} = 2^{2n} − 2^{2n−ℓ−q}.
func (v *Vector) bound(l, q int) int64 {
	return (int64(1) << (2 * v.N)) - (int64(1) << (2*v.N - l - q))
}

// Consistent reports whether the vector satisfies every Lemma-2 constraint:
// non-negative entries; for every query class (ℓ,q) ≠ (0,0), the edges that
// could lie inside class-(ℓ,q) blocks number at most 2^{2n} − 2^{2n−ℓ−q};
// and the total number of edges is exactly 2^{2n} − 1. It returns the first
// violated constraint as an error.
func (v *Vector) Consistent() error {
	for i := 0; i < v.N; i++ {
		if v.A[i] < 0 || v.B[i] < 0 {
			return fmt.Errorf("cv: negative entry at level %d", i+1)
		}
		for j := 0; j < v.N; j++ {
			if v.D[i][j] < 0 {
				return fmt.Errorf("cv: negative diagonal entry d_%d%d", i+1, j+1)
			}
		}
	}
	for l := 0; l <= v.N; l++ {
		for q := 0; q <= v.N; q++ {
			if l == 0 && q == 0 {
				continue
			}
			lhs := v.sumA(l) + v.sumB(q) + v.sumD(l, q)
			if lhs > v.bound(l, q) {
				return fmt.Errorf("cv: class (%d,%d) constraint violated: %d > %d", l, q, lhs, v.bound(l, q))
			}
		}
	}
	if got, want := v.TotalEdges(), (int64(1)<<(2*v.N))-1; got != want {
		return fmt.Errorf("cv: total edges %d ≠ %d", got, want)
	}
	return nil
}

// ConsistentRelaxed is Consistent without the total-edge equality: it checks
// only the inequality constraints, which is what intermediate vectors in the
// sandwich construction must satisfy while mass is being shifted.
func (v *Vector) ConsistentRelaxed() error {
	for l := 0; l <= v.N; l++ {
		for q := 0; q <= v.N; q++ {
			if l == 0 && q == 0 {
				continue
			}
			lhs := v.sumA(l) + v.sumB(q) + v.sumD(l, q)
			if lhs > v.bound(l, q) {
				return fmt.Errorf("cv: class (%d,%d) constraint violated: %d > %d", l, q, lhs, v.bound(l, q))
			}
		}
	}
	return nil
}

// ToCV converts to the generalized characteristic vector over the lattice
// of BinarySchema(n), so the cost machinery applies.
func (v *Vector) ToCV(l *lattice.Lattice) *cost.CV {
	cv := cost.NewCV(l)
	for i := 1; i <= v.N; i++ {
		cv.Counts[l.Index(lattice.Point{i, 0})] += v.A[i-1]
		cv.Counts[l.Index(lattice.Point{0, i})] += v.B[i-1]
		for j := 1; j <= v.N; j++ {
			cv.Counts[l.Index(lattice.Point{i, j})] += v.D[i-1][j-1]
		}
	}
	return cv
}

// FromCV converts a generalized characteristic vector over a 2-D binary
// lattice into the (a;b;d) form. Edge types (0,0) cannot occur in a valid
// linearization and are rejected.
func FromCV(g *cost.CV) (*Vector, error) {
	l := g.Lat
	if l.K() != 2 {
		return nil, fmt.Errorf("cv: need 2 dimensions, got %d", l.K())
	}
	tops := l.Tops()
	if tops[0] != tops[1] {
		return nil, fmt.Errorf("cv: need equal hierarchy depths, got %v", tops)
	}
	v := NewVector(tops[0])
	var err error
	l.Points(func(p lattice.Point) {
		c := g.Counts[l.Index(p)]
		if c == 0 {
			return
		}
		switch {
		case p[0] == 0 && p[1] == 0:
			err = fmt.Errorf("cv: %d edges of impossible type (0,0)", c)
		case p[1] == 0:
			v.A[p[0]-1] += c
		case p[0] == 0:
			v.B[p[1]-1] += c
		default:
			v.D[p[0]-1][p[1]-1] += c
		}
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// ClassCost returns the average class-(i,j) query cost of the vector using
// the paper's extended cost_μ definition.
func (v *Vector) ClassCost(l *lattice.Lattice, c lattice.Point) float64 {
	return v.ToCV(l).ClassCost(c)
}

// ExpectedCost returns the expected workload cost of the vector.
func (v *Vector) ExpectedCost(w interface {
	Prob(lattice.Point) float64
	Lattice() *lattice.Lattice
}) float64 {
	l := w.Lattice()
	total := 0.0
	g := v.ToCV(l)
	l.Points(func(c lattice.Point) {
		if p := w.Prob(c); p > 0 {
			total += p * g.ClassCost(c)
		}
	})
	return total
}

// OfPath returns the (a;b;d) characteristic vector of a lattice path's
// strategy over a 2-D binary schema.
func OfPath(p *core.Path, snaked bool) (*Vector, error) {
	return FromCV(cost.OfPath(p, snaked))
}
