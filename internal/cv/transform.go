package cv

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lattice"
)

// lexGE reports whether x ≥ y in the order used by ⪯: equal, or strictly
// greater at the first index where they differ.
func lexGE(x, y []int64) bool {
	for i := range x {
		if x[i] != y[i] {
			return x[i] > y[i]
		}
	}
	return true
}

// Preceq reports whether v ⪯ w in the partial order of Section 5.1: v's a
// entries are lexicographically ≥ w's and likewise for b. Smaller vectors
// concentrate edge mass at lower levels, where an edge benefits more query
// classes. Example from the paper: (8,4;2,1) ⪯ (1,11;1,2) ⪯ (0,12;1,2).
func Preceq(v, w *Vector) bool {
	if v.N != w.N {
		return false
	}
	return lexGE(v.A, w.A) && lexGE(v.B, w.B)
}

// Minimalize returns a consistent non-diagonal vector m with m ⪯ v obtained
// by repeatedly moving one edge from level i+1 to level i (in a, then in b)
// whenever the Lemma-2 constraints allow. Each move only grows prefix sums,
// so every query class's interior-edge count is non-decreasing and the
// expected cost never increases, on any workload. The result cannot be
// improved further by single-edge down-moves.
func Minimalize(v *Vector) (*Vector, error) {
	if v.IsDiagonal() {
		return nil, fmt.Errorf("cv: Minimalize needs a non-diagonal vector; call RemoveDiagonals first")
	}
	m := v.Clone()
	moveDown := func(xs []int64, slack func(int) int64) bool {
		moved := false
		for i := 0; i+1 < len(xs); i++ {
			if xs[i+1] == 0 {
				continue
			}
			// Moving t edges from level i+2 down to level i+1 raises exactly
			// the prefix sums through level i+1; the tightest constraint on
			// those prefixes gives the allowance.
			if s := slack(i + 1); s > 0 {
				t := s
				if t > xs[i+1] {
					t = xs[i+1]
				}
				xs[i] += t
				xs[i+1] -= t
				moved = true
			}
		}
		return moved
	}
	for {
		movedA := moveDown(m.A, m.minSlackA)
		movedB := moveDown(m.B, m.minSlackB)
		if !movedA && !movedB {
			break
		}
	}
	if err := m.Consistent(); err != nil {
		return nil, fmt.Errorf("cv: Minimalize produced inconsistent vector: %w", err)
	}
	return m, nil
}

// minSlackA returns the smallest remaining slack over all Lemma-2
// constraints whose a-prefix ends at ℓ (for every q): the number of edges
// that can still be added below level ℓ+1 in dimension A.
func (v *Vector) minSlackA(l int) int64 {
	slack := int64(1) << (2 * v.N) // larger than any bound
	for q := 0; q <= v.N; q++ {
		s := v.bound(l, q) - (v.sumA(l) + v.sumB(q) + v.sumD(l, q))
		if s < slack {
			slack = s
		}
	}
	return slack
}

// minSlackB is minSlackA for dimension B.
func (v *Vector) minSlackB(q int) int64 {
	slack := int64(1) << (2 * v.N)
	for l := 0; l <= v.N; l++ {
		s := v.bound(l, q) - (v.sumA(l) + v.sumB(q) + v.sumD(l, q))
		if s < slack {
			slack = s
		}
	}
	return slack
}

// RemoveDiagonals is the Lemma-4 transformation: it splits every diagonal
// count d_ij into x added to a_i and y = d_ij − x added to b_j so that the
// result is consistent, has no diagonal edges, and — because an A_i or B_j
// edge is interior to every class a D_ij edge is interior to — costs no more
// on any workload. Diagonal entries are processed in increasing (i, j)
// order, choosing the largest feasible x (Claim 1 guarantees feasibility for
// vectors of real strategies).
func RemoveDiagonals(v *Vector) (*Vector, error) {
	out := v.Clone()
	for i := 0; i < out.N; i++ {
		for j := 0; j < out.N; j++ {
			d := out.D[i][j]
			if d == 0 {
				continue
			}
			out.D[i][j] = 0
			x, ok := splitDiagonal(out, i, j, d)
			if !ok {
				return nil, fmt.Errorf("cv: no consistent split for d_%d%d = %d in %v", i+1, j+1, d, v)
			}
			out.A[i] += x
			out.B[j] += d - x
		}
	}
	if err := out.Consistent(); err != nil {
		return nil, fmt.Errorf("cv: RemoveDiagonals produced inconsistent vector: %w", err)
	}
	return out, nil
}

// splitDiagonal finds the largest x with 0 ≤ x ≤ d such that adding x to
// a_{i+1}'s slot and d−x to b_{j+1}'s slot keeps all constraints satisfied.
// All Lemma-2 constraints are linear, so feasibility of x is an interval and
// binary search suffices; d is small enough that a downward scan is clearer.
func splitDiagonal(v *Vector, i, j int, d int64) (int64, bool) {
	feasible := func(x int64) bool {
		v.A[i] += x
		v.B[j] += d - x
		err := v.ConsistentRelaxed()
		v.A[i] -= x
		v.B[j] -= d - x
		return err == nil
	}
	lo, hi := int64(0), d
	if feasible(hi) {
		return hi, true
	}
	if !feasible(lo) {
		// The feasible set is an interval; if neither endpoint works, find
		// any feasible point by scanning (d values are small in practice).
		for x := int64(1); x < d; x++ {
			if feasible(x) {
				return x, true
			}
		}
		return 0, false
	}
	// Largest feasible x: binary search on the interval's upper end.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// IsPowerOfTwoVector reports whether every nonzero a and b entry is a power
// of two (the precondition of Lemma 3).
func (v *Vector) IsPowerOfTwoVector() bool {
	p2 := func(x int64) bool { return x > 0 && x&(x-1) == 0 }
	for i := 0; i < v.N; i++ {
		if v.A[i] != 0 && !p2(v.A[i]) {
			return false
		}
		if v.B[i] != 0 && !p2(v.B[i]) {
			return false
		}
	}
	return true
}

// SandwichStep applies one step of the Theorem-2 sandwich construction to a
// consistent non-diagonal vector. If every entry is already a power of two
// it returns (nil, nil, true). Otherwise it locates the smallest levels i
// and j at which a and b (respectively) are not powers of two and returns
// the two sandwiching vectors, which replace a_i and b_j by
// (2^{2n−i−j}, 2^{2n−i−j+1}) and (2^{2n−i−j+1}, 2^{2n−i−j}); on every
// workload the original vector's cost is at least the cheaper of the two.
//
// The replacement preserves the edge total exactly when
// a_i + b_j = 3·2^{2n−i−j}, which holds for the ⪯-minimal vectors the
// Theorem-2 proof walks through (e.g. every level of Example 3). Vectors
// with a non-power entry on only one side fall outside the construction's
// domain and are rejected; RemoveDiagonals + Minimalize first.
func SandwichStep(v *Vector) (v1, v2 *Vector, done bool, err error) {
	p2 := func(x int64) bool { return x >= 0 && x&(x-1) == 0 }
	i, j := -1, -1
	for k := 0; k < v.N; k++ {
		if i < 0 && !p2(v.A[k]) {
			i = k
		}
		if j < 0 && !p2(v.B[k]) {
			j = k
		}
	}
	if i < 0 && j < 0 {
		return nil, nil, true, nil
	}
	if i < 0 || j < 0 {
		return nil, nil, false, fmt.Errorf(
			"cv: %v has a non-power entry on only one side; outside the Theorem-2 sandwich domain", v)
	}
	lo := int64(1) << (2*v.N - (i + 1) - (j + 1))
	hi := lo * 2
	v1 = v.Clone()
	v1.A[i], v1.B[j] = lo, hi
	v2 = v.Clone()
	v2.A[i], v2.B[j] = hi, lo
	return v1, v2, false, nil
}

// SandwichClosure iterates SandwichStep from v until every produced vector
// has power-of-two entries, returning the consistent terminal vectors. The
// construction guarantees that on any workload, v's cost is at least the
// minimum cost among the returned vectors. maxVectors bounds the expansion.
func SandwichClosure(v *Vector, maxVectors int) ([]*Vector, error) {
	var out []*Vector
	queue := []*Vector{v}
	seen := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		key := cur.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		v1, v2, done, err := SandwichStep(cur)
		if err != nil {
			return nil, err
		}
		if done {
			if cur.Consistent() == nil {
				out = append(out, cur)
			}
			continue
		}
		for _, next := range []*Vector{v1, v2} {
			if next.ConsistentRelaxed() == nil {
				queue = append(queue, next)
			}
		}
		if len(out)+len(queue) > maxVectors {
			return nil, fmt.Errorf("cv: sandwich closure exceeded %d vectors", maxVectors)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cv: sandwich closure of %v produced no consistent power-of-two vectors", v)
	}
	return out, nil
}

// ReconstructPath is the Lemma-3 reconstruction: given a consistent,
// non-diagonal, ⪯-minimal vector whose entries are the powers
// 2^0 … 2^{2n−1} (each exactly once across a and b), it returns the snaked
// lattice path with that characteristic vector. The s-th loop of a snaked
// path (innermost first, s = 1…2n) contributes exactly 2^{2n−s} edges of its
// pure type, so the step order is read off by decreasing entry.
func ReconstructPath(v *Vector, l *lattice.Lattice) (*core.Path, error) {
	if v.IsDiagonal() {
		return nil, fmt.Errorf("cv: %v has diagonal edges; not a snaked lattice path", v)
	}
	type slot struct {
		dim   int
		level int
		count int64
	}
	var slots []slot
	for i := 0; i < v.N; i++ {
		if v.A[i] != 0 {
			slots = append(slots, slot{0, i + 1, v.A[i]})
		}
		if v.B[i] != 0 {
			slots = append(slots, slot{1, i + 1, v.B[i]})
		}
	}
	if len(slots) != 2*v.N {
		return nil, fmt.Errorf("cv: %v has %d nonzero entries, want %d", v, len(slots), 2*v.N)
	}
	// Order steps by decreasing count: innermost loop has the most edges.
	steps := make([]int, 2*v.N)
	want := int64(1) << (2*v.N - 1)
	level := []int{0, 0}
	for s := 0; s < 2*v.N; s++ {
		found := false
		for _, sl := range slots {
			if sl.count == want {
				if sl.level != level[sl.dim]+1 {
					return nil, fmt.Errorf("cv: %v steps dimension %d to level %d before level %d", v, sl.dim, sl.level, level[sl.dim]+1)
				}
				steps[s] = sl.dim
				level[sl.dim]++
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cv: %v has no entry %d; entries must be the distinct powers of two", v, want)
		}
		want >>= 1
	}
	return core.NewPath(l, steps)
}
