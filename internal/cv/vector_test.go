package cv

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

func mustVector(t *testing.T, a, b []int64, d [][]int64) *Vector {
	t.Helper()
	v, err := FromSlices(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestVectorString(t *testing.T) {
	v := mustVector(t, []int64{8, 4}, []int64{2, 1}, nil)
	if got := v.String(); got != "(8,4;2,1)" {
		t.Errorf("String() = %q", got)
	}
	v.D[0][0] = 3
	if got := v.String(); got != "(8,4;2,1;3,0,0,0)" {
		t.Errorf("String() with diagonal = %q", got)
	}
}

func TestConsistencyOfRealStrategies(t *testing.T) {
	// Lemma 2: the CV of every actual clustering strategy is consistent.
	for n := 1; n <= 3; n++ {
		s := BinarySchema(n)
		l := lattice.New(s)
		check := func(name string, g *cost.CV) {
			v, err := FromCV(g)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
			if err := v.Consistent(); err != nil {
				t.Errorf("n=%d %s: %v", n, name, err)
			}
		}
		core.EnumeratePaths(l, func(p *core.Path) bool {
			check("path "+p.String(), cost.OfPath(p, false))
			check("snaked "+p.String(), cost.OfPath(p, true))
			return true
		})
		h, err := linear.Hilbert(s)
		if err != nil {
			t.Fatal(err)
		}
		check("hilbert", cost.OfOrder(l, h))
		z, err := linear.ZOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		check("z", cost.OfOrder(l, z))
		g, err := linear.GrayOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		check("gray", cost.OfOrder(l, g))
	}
}

func TestConsistentRejectsViolations(t *testing.T) {
	// More A₁ edges than exist.
	v := mustVector(t, []int64{9, 4}, []int64{1, 1}, nil)
	if err := v.Consistent(); err == nil {
		t.Error("a₁ = 9 > 8 should be inconsistent on the 4×4 grid")
	}
	// Right total, but the (1,1) constraint (≤ 12) is violated.
	v2 := mustVector(t, []int64{8, 0}, []int64{7, 0}, nil)
	if err := v2.Consistent(); err == nil {
		t.Error("a₁+b₁ = 15 > 12 should be inconsistent")
	}
	// Wrong total.
	v3 := mustVector(t, []int64{8, 2}, []int64{2, 1}, nil)
	if err := v3.Consistent(); err == nil {
		t.Error("total 13 ≠ 15 should be inconsistent")
	}
	// Negative entry.
	v4 := mustVector(t, []int64{-1, 8}, []int64{7, 1}, nil)
	if err := v4.Consistent(); err == nil {
		t.Error("negative entry should be inconsistent")
	}
}

func TestPaperCVExamples(t *testing.T) {
	// Section 3's worked CVs on the 4×4 grid: the row-major path has
	// (8,4;0,0) plus diagonals (2,1) at types D₁₂ and D₂₂, in the paper's
	// labeling where the first group is the inner dimension.
	s := BinarySchema(2)
	l := lattice.New(s)
	p1 := core.MustPath(l, []int{1, 1, 0, 0})
	v, err := OfPath(p1, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.B[0] != 8 || v.B[1] != 4 {
		t.Errorf("inner-dimension edges = %v, want [8 4]", v.B)
	}
	if v.A[0] != 0 || v.A[1] != 0 {
		t.Errorf("outer-dimension edges = %v, want [0 0]", v.A)
	}
	if v.D[0][1] != 2 || v.D[1][1] != 1 {
		t.Errorf("diagonals D = %v, want d₁₂=2, d₂₂=1", v.D)
	}
	if err := v.Consistent(); err != nil {
		t.Error(err)
	}
}

func TestRoundTripToCV(t *testing.T) {
	s := BinarySchema(2)
	l := lattice.New(s)
	v := mustVector(t, []int64{6, 2}, []int64{6, 1}, nil)
	g := v.ToCV(l)
	back, err := FromCV(g)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Errorf("round trip %v → %v", v, back)
	}
}

func TestFromCVRejectsImpossibleType(t *testing.T) {
	s := BinarySchema(2)
	l := lattice.New(s)
	g := cost.NewCV(l)
	g.Counts[l.Index(lattice.Point{0, 0})] = 1
	if _, err := FromCV(g); err == nil {
		t.Error("type (0,0) should be rejected")
	}
}

func TestExpectedCostMatchesCostPackage(t *testing.T) {
	s := BinarySchema(2)
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(55))
	p := core.MustPath(l, []int{0, 1, 1, 0})
	v, err := OfPath(p, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w := workload.Random(l, rng, 0.7)
		if got, want := v.ExpectedCost(w), cost.SnakedPathCost(p, w); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ExpectedCost = %v, want %v", got, want)
		}
	}
}
