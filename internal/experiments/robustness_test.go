package experiments

import (
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/workload"
)

func TestRobustnessStableUnderSmallPerturbations(t *testing.T) {
	l := lattice.New(exampleSchema(2))
	// A decisive workload: the optimal path is far from indifferent.
	w := workload.UniformOver(l,
		lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 2})
	rep, err := Robustness(w, 0.05, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRegret >= 1.5 {
		t.Errorf("max regret %v too large for 5%% perturbations", rep.MaxRegret)
	}
	if rep.MeanRegret < 1 || rep.MeanRegret > 1.2 {
		t.Errorf("mean regret %v outside [1, 1.2] for tiny perturbations", rep.MeanRegret)
	}
	if rep.StillOptimal < 80 {
		t.Errorf("path survived only %d/100 small perturbations", rep.StillOptimal)
	}
	if !strings.Contains(FormatRobustness(rep), "eps=0.05") {
		t.Error("format output missing header")
	}
}

func TestRobustnessLargePerturbations(t *testing.T) {
	l := lattice.New(exampleSchema(2))
	w := workload.UniformOver(l, lattice.Point{0, 2})
	rep, err := Robustness(w, 0.9, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	// With eps=0.9 the perturbed workloads are almost unrelated to the
	// original. No a-priori bound applies to a stale path on a different
	// workload (Corollary 1 only covers the matching one); on the 4×4 grid
	// the worst possible stale-path ratio is 13/4, and random mixtures stay
	// comfortably below it.
	if rep.MaxRegret >= 13.0/4 {
		t.Errorf("max regret %v exceeds the 4×4 worst case", rep.MaxRegret)
	}
	if rep.StillOptimal == rep.Trials {
		t.Log("path stayed optimal under every large perturbation (flat cost landscape)")
	}
}

func TestRobustnessErrors(t *testing.T) {
	l := lattice.New(exampleSchema(2))
	w := workload.Uniform(l)
	if _, err := Robustness(w, -0.1, 10, 1); err == nil {
		t.Error("negative eps should fail")
	}
	if _, err := Robustness(w, 1.5, 10, 1); err == nil {
		t.Error("eps > 1 should fail")
	}
	if _, err := Robustness(w, 0.1, 0, 1); err == nil {
		t.Error("zero trials should fail")
	}
}
