package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
)

// ValidationRow reports, for one strategy, the largest absolute deviation
// between the analytic per-class cost (characteristic-vector model) and the
// measured average seeks on a uniform grid packed one cell per page — a
// configuration where the two must agree exactly.
type ValidationRow struct {
	Strategy     string
	MaxDeviation float64
	Classes      int
}

// ValidateModel cross-checks the analytic cost model against the storage
// simulator on the given schema: every cell holds exactly one record and
// every record fills exactly one page, so page-level seeks equal
// cell-level fragments and measured class averages must equal the CV
// model's ClassCost for every class. Strategies checked: every snaked and
// unsnaked lattice path of the schema (enumerated), so keep the lattice
// small.
func ValidateModel(s *hierarchy.Schema) ([]ValidationRow, error) {
	l := lattice.New(s)
	bytes := make([]int64, s.NumCells())
	for i := range bytes {
		bytes[i] = 128
	}
	var rows []ValidationRow
	var firstErr error
	core.EnumeratePaths(l, func(p *core.Path) bool {
		for _, snaked := range []bool{false, true} {
			o, err := linear.FromPath(s, p, snaked)
			if err != nil {
				firstErr = err
				return false
			}
			layout, err := storage.NewLayout(o, bytes, 128)
			if err != nil {
				firstErr = err
				return false
			}
			cv := cost.OfPath(p, snaked)
			row := ValidationRow{Strategy: o.Name}
			l.Points(func(c lattice.Point) {
				// Exact average over every block of the class.
				total := 0.0
				blocks := 0
				nodes := make([]int, s.K())
				for {
					st := layout.Query(linear.ClassRegion(o, c, nodes))
					total += float64(st.Seeks)
					blocks++
					d := s.K() - 1
					for d >= 0 {
						nodes[d]++
						if nodes[d] < s.Dims[d].NodesAt(c[d]) {
							break
						}
						nodes[d] = 0
						d--
					}
					if d < 0 {
						break
					}
				}
				measured := total / float64(blocks)
				if dev := math.Abs(measured - cv.ClassCost(c)); dev > row.MaxDeviation {
					row.MaxDeviation = dev
				}
				row.Classes++
			})
			rows = append(rows, row)
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: no strategies validated")
	}
	return rows, nil
}

// FormatValidation renders the validation report.
func FormatValidation(rows []ValidationRow) string {
	var b strings.Builder
	worst := 0.0
	for _, r := range rows {
		if r.MaxDeviation > worst {
			worst = r.MaxDeviation
		}
	}
	fmt.Fprintf(&b, "validated %d strategies; worst analytic-vs-measured deviation: %g\n", len(rows), worst)
	return b.String()
}
