// Package experiments regenerates every table and figure of the paper's
// evaluation: the analytical Tables 1–3 and Figures 1/2/3/5 on the
// running-example schema, and the TPC-D Tables 4–6 on the synthetic
// warehouse. Each experiment returns structured rows plus a formatter that
// prints them in the paper's layout.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/workload"
)

// exampleSchema returns the Figure-1 schema with the given fanout at both
// levels of both dimensions (fanout 2 in the running example; 4 and 32 in
// Table 3).
func exampleSchema(fanout int) *hierarchy.Schema {
	return hierarchy.MustSchema(
		hierarchy.Uniform("A", 2, fanout),
		hierarchy.Uniform("B", 2, fanout),
	)
}

// exampleStrategies returns the five strategies of Tables 1 and 2 over the
// fanout-f example schema: P1 (row major), P2 (quadrant/Z), Hilbert, and
// the snaked paths ~P1 and ~P2. Hilbert requires the grid side f² to be a
// power of two.
func exampleStrategies(fanout int) (l *lattice.Lattice, cvs map[string]*cost.CV, err error) {
	s := exampleSchema(fanout)
	l = lattice.New(s)
	paths := map[string]*core.Path{
		"P1": core.MustPath(l, []int{1, 1, 0, 0}),
		"P2": core.MustPath(l, []int{1, 0, 1, 0}),
	}
	cvs = map[string]*cost.CV{
		"P1":  cost.OfPath(paths["P1"], false),
		"P2":  cost.OfPath(paths["P2"], false),
		"~P1": cost.OfPath(paths["P1"], true),
		"~P2": cost.OfPath(paths["P2"], true),
	}
	h, err := linear.Hilbert2D(s) // the paper-oriented curve (Figure 2(b))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: fanout %d: %w", fanout, err)
	}
	cvs["Hd"] = cost.OfOrder(l, h)
	return l, cvs, nil
}

// exampleWorkloads returns the three workloads of Example 1 over the given
// lattice.
func exampleWorkloads(l *lattice.Lattice) map[string]*workload.Workload {
	return map[string]*workload.Workload{
		"1": workload.Uniform(l),
		"2": workload.UniformExcept(l,
			lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 1}),
		"3": workload.UniformOver(l,
			lattice.Point{0, 0}, lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 2}),
	}
}

// StrategyNames lists the Table-1/2 strategy columns in paper order.
var StrategyNames = []string{"P1", "P2", "Hd", "~P1", "~P2"}

// Table1Row is one row of Table 1: the average cost of each strategy for
// one query class, as total/num-queries.
type Table1Row struct {
	Class      lattice.Point
	NumQueries int
	Total      map[string]float64 // strategy → total cost over the class
}

// Table1 computes Table 1: average query-class cost of the five example
// strategies on the 4×4 grid.
func Table1() ([]Table1Row, error) {
	l, cvs, err := exampleStrategies(2)
	if err != nil {
		return nil, err
	}
	// Paper row order.
	order := []lattice.Point{
		{0, 0}, {1, 1}, {2, 2}, {1, 0}, {0, 1}, {2, 0}, {0, 2}, {2, 1}, {1, 2},
	}
	rows := make([]Table1Row, 0, len(order))
	for _, c := range order {
		row := Table1Row{Class: c, NumQueries: l.NumQueries(c), Total: map[string]float64{}}
		for name, cv := range cvs {
			row.Total[name] = cv.ClassCost(c) * float64(row.NumQueries)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's total/count form.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "Class")
	for _, s := range StrategyNames {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Class)
		for _, s := range StrategyNames {
			fmt.Fprintf(&b, "%10s", fmt.Sprintf("%g/%d", r.Total[s], r.NumQueries))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table2Row is one row of Table 2: expected cost of every strategy under
// one workload.
type Table2Row struct {
	Workload string
	Cost     map[string]float64
}

// Table2 computes Table 2: expected workload cost of the five example
// strategies under the three Example-1 workloads.
func Table2() ([]Table2Row, error) {
	l, cvs, err := exampleStrategies(2)
	if err != nil {
		return nil, err
	}
	ws := exampleWorkloads(l)
	rows := make([]Table2Row, 0, len(ws))
	for _, name := range []string{"1", "2", "3"} {
		row := Table2Row{Workload: name, Cost: map[string]float64{}}
		for sname, cv := range cvs {
			row.Cost[sname] = cv.ExpectedCost(ws[name])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Workload")
	for _, s := range StrategyNames {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Workload)
		for _, s := range StrategyNames {
			fmt.Fprintf(&b, "%10.4f", r.Cost[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table3Row gives, for one workload, the best-to-worst expected-cost ratio
// among {P1, P2, Hilbert} at each fanout — the paper's "savings" column
// (e.g. 72% means the best strategy costs 72% of the worst).
type Table3Row struct {
	Workload string
	Ratio    map[int]float64 // fanout → best/worst
}

// Table3Fanouts are the paper's fanouts for Table 3.
var Table3Fanouts = []int{2, 4, 32}

// Table3 computes Table 3: relative costs of P1, P2 and Hilbert for the
// three workloads as the per-level fanout grows.
func Table3(fanouts []int) ([]Table3Row, error) {
	rows := []Table3Row{
		{Workload: "1", Ratio: map[int]float64{}},
		{Workload: "2", Ratio: map[int]float64{}},
		{Workload: "3", Ratio: map[int]float64{}},
	}
	for _, f := range fanouts {
		l, cvs, err := exampleStrategies(f)
		if err != nil {
			return nil, err
		}
		ws := exampleWorkloads(l)
		for i := range rows {
			w := ws[rows[i].Workload]
			best, worst := 0.0, 0.0
			for _, name := range []string{"P1", "P2", "Hd"} {
				c := cvs[name].ExpectedCost(w)
				if best == 0 || c < best {
					best = c
				}
				if c > worst {
					worst = c
				}
			}
			rows[i].Ratio[f] = best / worst
		}
	}
	return rows, nil
}

// FormatTable3 renders Table 3 as percentages.
func FormatTable3(rows []Table3Row, fanouts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Workload")
	for _, f := range fanouts {
		fmt.Fprintf(&b, "  fanout=%-4d", f)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Workload)
		for _, f := range fanouts {
			fmt.Fprintf(&b, "  %9.1f%%", 100*r.Ratio[f])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure3 renders the query-class lattice of the example schema, rank by
// rank, as in Figure 3.
func Figure3() string {
	return lattice.New(exampleSchema(2)).String()
}

// GridFigure names one of the paper's clustering illustrations.
type GridFigure struct {
	Name string
	Grid [][]int
}

// FigureGrids reproduces Figures 1, 2 and 5: the cell orders of P1, P2
// (quadrant/Z), Hilbert, ~P1 and ~P2 on the 4×4 grid.
func FigureGrids() ([]GridFigure, error) {
	s := exampleSchema(2)
	l := lattice.New(s)
	p1 := core.MustPath(l, []int{1, 1, 0, 0})
	p2 := core.MustPath(l, []int{1, 0, 1, 0})
	builders := []struct {
		name  string
		build func() (*linear.Order, error)
	}{
		{"Figure 1: row major (P1)", func() (*linear.Order, error) { return linear.FromPath(s, p1, false) }},
		{"Figure 2(a): quadrant Z curve (P2)", func() (*linear.Order, error) { return linear.FromPath(s, p2, false) }},
		{"Figure 2(b): Hilbert curve", func() (*linear.Order, error) { return linear.Hilbert2D(s) }},
		{"Figure 5(a): snaked P1", func() (*linear.Order, error) { return linear.FromPath(s, p1, true) }},
		{"Figure 5(b): snaked P2", func() (*linear.Order, error) { return linear.FromPath(s, p2, true) }},
	}
	out := make([]GridFigure, 0, len(builders))
	for _, b := range builders {
		o, err := b.build()
		if err != nil {
			return nil, err
		}
		g, err := o.RenderGrid()
		if err != nil {
			return nil, err
		}
		out = append(out, GridFigure{Name: b.name, Grid: g})
	}
	return out, nil
}

// FormatGrid renders a grid figure.
func FormatGrid(g GridFigure) string {
	var b strings.Builder
	b.WriteString(g.Name)
	b.WriteByte('\n')
	for _, row := range g.Grid {
		for _, v := range row {
			fmt.Fprintf(&b, "%4d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
