package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/lattice"
	"repro/internal/workload"
)

// RobustnessReport quantifies how sensitive the optimized clustering is to
// workload estimation error — the stability question behind the paper's
// decision to specify workloads by query class rather than by query.
type RobustnessReport struct {
	Epsilon float64 // perturbation magnitude (total-variation radius, roughly)
	Trials  int

	// StillOptimal counts trials where the original snaked optimal path
	// remained exactly optimal among lattice paths for the perturbed
	// workload.
	StillOptimal int
	// MaxRegret is the worst observed ratio of the original strategy's cost
	// on the perturbed workload to the perturbed optimum's cost; 1 means no
	// trial found a better path.
	MaxRegret float64
	// MeanRegret averages that ratio over trials.
	MeanRegret float64
}

// Robustness perturbs the workload `trials` times by mixing it with a
// random distribution (weight eps) and measures how the strategy chosen for
// the original workload performs on each perturbation, against re-optimizing
// from scratch. Costs are the snaked analytic costs. A report with
// MaxRegret close to 1 means workload estimation error barely matters. Note
// that no a-priori bound caps the regret of a stale path on a *different*
// workload — Corollary 1's factor 2 applies only to the workload the path
// was optimized for — which is exactly why the measurement is interesting.
func Robustness(w *workload.Workload, eps float64, trials int, seed int64) (RobustnessReport, error) {
	if eps < 0 || eps > 1 {
		return RobustnessReport{}, fmt.Errorf("experiments: eps %v outside [0,1]", eps)
	}
	if trials <= 0 {
		return RobustnessReport{}, fmt.Errorf("experiments: trials must be positive")
	}
	l := w.Lattice()
	base, err := core.Optimal(w)
	if err != nil {
		return RobustnessReport{}, err
	}
	rep := RobustnessReport{Epsilon: eps, Trials: trials, MaxRegret: 1}
	rng := rand.New(rand.NewSource(seed))
	sumRegret := 0.0
	for i := 0; i < trials; i++ {
		noise := workload.Random(l, rng, 0.7)
		pert := workload.New(l)
		l.Points(func(c lattice.Point) {
			pert.Set(c, (1-eps)*w.Prob(c)+eps*noise.Prob(c))
		})
		reopt, err := core.Optimal(pert)
		if err != nil {
			return RobustnessReport{}, err
		}
		baseCost := cost.SnakedPathCost(base.Path, pert)
		bestCost := cost.SnakedPathCost(reopt.Path, pert)
		if base.Path.Equal(reopt.Path) {
			rep.StillOptimal++
		}
		regret := baseCost / bestCost
		if regret < 1 {
			// Snaked costs of the unsnaked-optimal can occasionally favor
			// the stale path; regret below 1 means no loss at all.
			regret = 1
		}
		sumRegret += regret
		if regret > rep.MaxRegret {
			rep.MaxRegret = regret
		}
	}
	rep.MeanRegret = sumRegret / float64(trials)
	return rep, nil
}

// FormatRobustness renders a robustness report.
func FormatRobustness(r RobustnessReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "eps=%.2f over %d perturbations: path still optimal in %d (%.0f%%), regret mean %.4f max %.4f\n",
		r.Epsilon, r.Trials, r.StillOptimal,
		100*float64(r.StillOptimal)/float64(r.Trials), r.MeanRegret, r.MaxRegret)
	return b.String()
}
