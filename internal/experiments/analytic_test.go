package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	// Spot-check the paper's entries as total/num-queries. The ~P2 (2,0)
	// entry is asserted at 11 (the paper prints 12; see EXPERIMENTS.md).
	want := map[string]map[string]float64{
		"(0,0)": {"P1": 16, "P2": 16, "Hd": 16, "~P1": 16, "~P2": 16},
		"(1,1)": {"P1": 8, "P2": 4, "Hd": 4, "~P1": 6, "~P2": 4},
		"(2,0)": {"P1": 16, "P2": 16, "Hd": 8, "~P1": 13, "~P2": 11},
		"(2,1)": {"P1": 8, "P2": 4, "Hd": 2, "~P1": 5, "~P2": 3},
		"(1,2)": {"P1": 2, "P2": 2, "Hd": 3, "~P1": 2, "~P2": 2},
	}
	for _, r := range rows {
		exp, ok := want[r.Class.String()]
		if !ok {
			continue
		}
		for name, total := range exp {
			if got := r.Total[name]; math.Abs(got-total) > 1e-9 {
				t.Errorf("class %v %s: total %v, want %v", r.Class, name, got, total)
			}
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "16/16") || !strings.Contains(out, "(2,0)") {
		t.Errorf("FormatTable1 output unexpected:\n%s", out)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]map[string]float64{
		"1": {"P1": 17.0 / 9, "P2": 15.0 / 9, "Hd": 49.0 / 36, "~P1": 14.0 / 9, "~P2": 12.25 / 9},
		"2": {"P1": 13.0 / 6, "P2": 11.0 / 6, "Hd": 31.0 / 24, "~P1": 21.0 / 12, "~P2": 8.75 / 6},
		"3": {"P1": 1, "P2": 5.0 / 4, "Hd": 3.0 / 2, "~P1": 1, "~P2": 9.0 / 8},
	}
	for _, r := range rows {
		for name, c := range want[r.Workload] {
			if got := r.Cost[name]; math.Abs(got-c) > 1e-9 {
				t.Errorf("workload %s %s: cost %v, want %v", r.Workload, name, got, c)
			}
		}
	}
	if out := FormatTable2(rows); !strings.Contains(out, "Workload") {
		t.Error("FormatTable2 output missing header")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3(Table3Fanouts)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 3 (best/worst cost ratio, in %):
	//   workload 1: 72, 61, 52;  workload 2: 60, 42, 27;  workload 3: 67, 30, 0.7.
	want := map[string]map[int]float64{
		"1": {2: 0.72, 4: 0.61, 32: 0.52},
		"2": {2: 0.60, 4: 0.42, 32: 0.27},
		"3": {2: 0.67, 4: 0.30, 32: 0.007},
	}
	for _, r := range rows {
		for f, ratio := range want[r.Workload] {
			got := r.Ratio[f]
			// The paper rounds to whole percents; allow ±1.5 points (and a
			// tight absolute bound for the 0.7% entry).
			tol := 0.015
			if ratio < 0.01 {
				tol = 0.002
			}
			if math.Abs(got-ratio) > tol {
				t.Errorf("workload %s fanout %d: ratio %.4f, want ≈%.3f", r.Workload, f, got, ratio)
			}
		}
	}
	if out := FormatTable3(rows, Table3Fanouts); !strings.Contains(out, "fanout=32") {
		t.Error("FormatTable3 output missing fanout header")
	}
}

func TestFigure3(t *testing.T) {
	out := Figure3()
	for _, want := range []string{"rank 0: (0,0)", "rank 4: (2,2)", "(1,1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureGrids(t *testing.T) {
	figs, err := FigureGrids()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 5 {
		t.Fatalf("got %d figures, want 5", len(figs))
	}
	// Every figure is a permutation of 1..16.
	for _, f := range figs {
		seen := map[int]bool{}
		for _, row := range f.Grid {
			for _, v := range row {
				if v < 1 || v > 16 || seen[v] {
					t.Errorf("%s: bad grid %v", f.Name, f.Grid)
				}
				seen[v] = true
			}
		}
		if out := FormatGrid(f); !strings.Contains(out, f.Name) {
			t.Errorf("FormatGrid missing name")
		}
	}
	// Figure 1 is row major.
	if figs[0].Grid[0][0] != 1 || figs[0].Grid[0][3] != 4 || figs[0].Grid[3][3] != 16 {
		t.Errorf("Figure 1 grid = %v", figs[0].Grid)
	}
}

func TestExampleWorkloadsShape(t *testing.T) {
	l := lattice.New(exampleSchema(2))
	ws := exampleWorkloads(l)
	if len(ws) != 3 {
		t.Fatalf("got %d workloads", len(ws))
	}
	for name, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("workload %s: %v", name, err)
		}
	}
	if got := len(ws["3"].Support()); got != 4 {
		t.Errorf("workload 3 support = %d, want 4", got)
	}
}

// TestValidateModel ties the whole stack together: on uniform one-cell-per-
// page grids, the storage simulator's measured seeks must equal the
// characteristic-vector model's class costs exactly, for every lattice path
// of several schemas, snaked and unsnaked.
func TestValidateModel(t *testing.T) {
	schemas := []*hierarchy.Schema{
		exampleSchema(2),
		hierarchy.MustSchema(
			hierarchy.Dimension{Name: "x", Fanouts: []int{3, 2}},
			hierarchy.Dimension{Name: "y", Fanouts: []int{2, 2}},
		),
		hierarchy.MustSchema(
			hierarchy.Uniform("a", 1, 3),
			hierarchy.Uniform("b", 2, 2),
			hierarchy.Uniform("c", 1, 2),
		),
	}
	for _, s := range schemas {
		rows, err := ValidateModel(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r.MaxDeviation > 1e-9 {
				t.Errorf("schema %v strategy %s: deviation %g", s, r.Strategy, r.MaxDeviation)
			}
			if r.Classes == 0 {
				t.Errorf("schema %v strategy %s: no classes checked", s, r.Strategy)
			}
		}
		out := FormatValidation(rows)
		if !strings.Contains(out, "validated") {
			t.Errorf("FormatValidation output %q", out)
		}
	}
}
