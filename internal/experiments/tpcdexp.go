package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lattice"
	"repro/internal/linear"
	"repro/internal/storage"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// ClassStats is the measured average disk cost of one query class under one
// strategy: means over sampled queries of the class.
type ClassStats struct {
	Seeks     float64 // average seeks per query
	NormPages float64 // average pages read / minimum possible pages
	Queries   int     // queries sampled (excluding empty ones for NormPages)
}

// Measurer runs storage-level measurements of clustering strategies over a
// TPC-D dataset, caching per-class statistics per strategy so that the same
// strategy reused across workloads is packed and measured once.
type Measurer struct {
	DS *tpcd.Dataset
	// SamplesPerClass caps the random queries measured per class; classes
	// with at most this many blocks are enumerated exhaustively.
	SamplesPerClass int
	Seed            int64

	cache map[string][]ClassStats
}

// NewMeasurer returns a Measurer with the default sampling rate.
func NewMeasurer(ds *tpcd.Dataset) *Measurer {
	return &Measurer{DS: ds, SamplesPerClass: 48, Seed: 7, cache: map[string][]ClassStats{}}
}

// PathStats measures a lattice path strategy (snaked or not).
func (m *Measurer) PathStats(p *core.Path, snaked bool) ([]ClassStats, error) {
	key := fmt.Sprintf("path:%v:%v", p.Steps(), snaked)
	return m.stats(key, func() (*linear.Order, error) {
		return linear.FromPath(m.DS.Schema, p, snaked)
	})
}

// RowMajorStats measures one of the k! row-major strategies.
func (m *Measurer) RowMajorStats(perm []int) ([]ClassStats, error) {
	key := fmt.Sprintf("rm:%v", perm)
	return m.stats(key, func() (*linear.Order, error) {
		return linear.RowMajor(m.DS.Schema, perm)
	})
}

func (m *Measurer) stats(key string, build func() (*linear.Order, error)) ([]ClassStats, error) {
	if st, ok := m.cache[key]; ok {
		return st, nil
	}
	o, err := build()
	if err != nil {
		return nil, err
	}
	layout, err := storage.NewLayout(o, m.DS.BytesPerCell, m.DS.Config.PageBytes)
	if err != nil {
		return nil, err
	}
	l := m.DS.Lattice
	st := make([]ClassStats, l.Size())

	// Classes are measured in parallel; each gets its own deterministic
	// generator so results do not depend on scheduling or on which other
	// strategies were measured first.
	workers := runtime.GOMAXPROCS(0)
	if workers > l.Size() {
		workers = l.Size()
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(atomic.AddInt64(&next, 1))
				if idx >= l.Size() {
					return
				}
				rng := rand.New(rand.NewSource(m.Seed ^ int64(idx)*0x9E3779B9))
				st[idx] = m.measureClass(layout, l.PointAt(idx), rng)
			}
		}()
	}
	wg.Wait()
	m.cache[key] = st
	return st, nil
}

// measureClass samples queries of class c and averages their disk costs.
func (m *Measurer) measureClass(layout *storage.Layout, c lattice.Point, rng *rand.Rand) ClassStats {
	l := m.DS.Lattice
	s := m.DS.Schema
	o := layout.Order()
	blocks := l.NumQueries(c)

	var picks [][]int
	if blocks <= m.SamplesPerClass {
		// Enumerate every block.
		nodes := make([]int, s.K())
		for {
			picks = append(picks, append([]int(nil), nodes...))
			d := s.K() - 1
			for d >= 0 {
				nodes[d]++
				if nodes[d] < s.Dims[d].NodesAt(c[d]) {
					break
				}
				nodes[d] = 0
				d--
			}
			if d < 0 {
				break
			}
		}
	} else {
		for i := 0; i < m.SamplesPerClass; i++ {
			nodes := make([]int, s.K())
			for d := range nodes {
				nodes[d] = rng.Intn(s.Dims[d].NodesAt(c[d]))
			}
			picks = append(picks, nodes)
		}
	}

	var cs ClassStats
	var seeks, norm float64
	nonEmpty := 0
	for _, nodes := range picks {
		st := layout.Query(linear.ClassRegion(o, c, nodes))
		if st.Bytes == 0 {
			continue // the paper's queries always select data; skip vacuous ones
		}
		nonEmpty++
		seeks += float64(st.Seeks)
		norm += st.NormPages
	}
	if nonEmpty > 0 {
		cs.Seeks = seeks / float64(nonEmpty)
		cs.NormPages = norm / float64(nonEmpty)
	}
	cs.Queries = nonEmpty
	return cs
}

// Expected combines per-class stats into workload-expected values.
func Expected(l *lattice.Lattice, st []ClassStats, w *workload.Workload) (seeks, normPages float64) {
	l.Points(func(c lattice.Point) {
		p := w.Prob(c)
		if p == 0 {
			return
		}
		s := st[l.Index(c)]
		seeks += p * s.Seeks
		normPages += p * s.NormPages
	})
	return seeks, normPages
}

// Permutations3 lists the six row-major nesting orders of a 3-D schema.
var Permutations3 = [][]int{
	{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
}

// StrategyResult is one strategy's expected cost under one workload.
type StrategyResult struct {
	Name      string
	Seeks     float64
	NormPages float64
}

// Table4Row is one row of Table 4: the optimal lattice path, its snaked
// version, and the best and worst row-major orders for one workload.
type Table4Row struct {
	Mix       tpcd.Mix
	Index     int // 1-based index into tpcd.Mixes()
	Opt       StrategyResult
	SnakedOpt StrategyResult
	BestRM    StrategyResult
	WorstRM   StrategyResult
	OptPath   string
}

// Table4 measures the Table-4 strategies for the given workload mixes
// (paper: a selection of the 27). Best/worst row-major are chosen by
// expected normalized blocks read, the table's primary metric.
func Table4(m *Measurer, mixes []tpcd.Mix) ([]Table4Row, error) {
	all := tpcd.Mixes()
	indexOf := func(mx tpcd.Mix) int {
		for i, o := range all {
			if o == mx {
				return i + 1
			}
		}
		return 0
	}
	var rows []Table4Row
	for _, mx := range mixes {
		w, err := m.DS.Workload(mx)
		if err != nil {
			return nil, err
		}
		opt, err := core.Optimal(w)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Mix: mx, Index: indexOf(mx), OptPath: opt.Path.String()}

		st, err := m.PathStats(opt.Path, false)
		if err != nil {
			return nil, err
		}
		row.Opt.Name = "optimal lattice path"
		row.Opt.Seeks, row.Opt.NormPages = Expected(m.DS.Lattice, st, w)

		st, err = m.PathStats(opt.Path, true)
		if err != nil {
			return nil, err
		}
		row.SnakedOpt.Name = "snaked optimal lattice path"
		row.SnakedOpt.Seeks, row.SnakedOpt.NormPages = Expected(m.DS.Lattice, st, w)

		var rms []StrategyResult
		for _, perm := range Permutations3 {
			st, err := m.RowMajorStats(perm)
			if err != nil {
				return nil, err
			}
			r := StrategyResult{Name: fmt.Sprintf("row major %v", perm)}
			r.Seeks, r.NormPages = Expected(m.DS.Lattice, st, w)
			rms = append(rms, r)
		}
		sort.Slice(rms, func(i, j int) bool { return rms[i].NormPages < rms[j].NormPages })
		row.BestRM = rms[0]
		row.WorstRM = rms[len(rms)-1]
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable4 renders Table 4 in the paper's layout: normalized blocks
// read with seeks per query in parentheses.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %14s %14s %14s\n", "Workload", "Popt", "~Popt", "best row", "worst row")
	for _, r := range rows {
		cell := func(s StrategyResult) string {
			return fmt.Sprintf("%.2f (%.2f)", s.NormPages, s.Seeks)
		}
		fmt.Fprintf(&b, "%2d %-31s %14s %14s %14s %14s\n",
			r.Index, r.Mix, cell(r.Opt), cell(r.SnakedOpt), cell(r.BestRM), cell(r.WorstRM))
	}
	return b.String()
}

// Table5Row is one row of Tables 5 and 6: normalized blocks read under
// workload 7 as the parts fanout varies.
type Table5Row struct {
	Fanout    int
	Opt       StrategyResult
	SnakedOpt StrategyResult
	BestRM    StrategyResult
	WorstRM   StrategyResult
}

// Table5 measures Tables 5 and 6: the effect of the parts fanout (4, 10,
// 40) under the featured workload. Each fanout uses its own dataset built
// from base with only PartsPerMfr changed.
func Table5(base tpcd.Config, fanouts []int, samples int) ([]Table5Row, error) {
	var rows []Table5Row
	for _, f := range fanouts {
		cfg := base
		cfg.PartsPerMfr = f
		ds, err := tpcd.Build(cfg)
		if err != nil {
			return nil, err
		}
		m := NewMeasurer(ds)
		if samples > 0 {
			m.SamplesPerClass = samples
		}
		w, err := ds.Workload(tpcd.PaperWorkload7())
		if err != nil {
			return nil, err
		}
		opt, err := core.Optimal(w)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Fanout: f}
		st, err := m.PathStats(opt.Path, false)
		if err != nil {
			return nil, err
		}
		row.Opt.Seeks, row.Opt.NormPages = Expected(ds.Lattice, st, w)
		st, err = m.PathStats(opt.Path, true)
		if err != nil {
			return nil, err
		}
		row.SnakedOpt.Seeks, row.SnakedOpt.NormPages = Expected(ds.Lattice, st, w)

		best, worst := math.Inf(1), math.Inf(-1)
		var bestR, worstR StrategyResult
		for _, perm := range Permutations3 {
			st, err := m.RowMajorStats(perm)
			if err != nil {
				return nil, err
			}
			var r StrategyResult
			r.Name = fmt.Sprintf("row major %v", perm)
			r.Seeks, r.NormPages = Expected(ds.Lattice, st, w)
			if r.NormPages < best {
				best, bestR = r.NormPages, r
			}
			if r.NormPages > worst {
				worst, worstR = r.NormPages, r
			}
		}
		row.BestRM, row.WorstRM = bestR, worstR
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders Table 5: absolute normalized blocks read.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %12s\n", "Fanout", "Popt", "~Popt", "best row", "worst row")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %10.2f %10.2f %12.2f %12.2f\n",
			r.Fanout, r.Opt.NormPages, r.SnakedOpt.NormPages, r.BestRM.NormPages, r.WorstRM.NormPages)
	}
	return b.String()
}

// FormatTable6 renders Table 6: normalized blocks read relative to the
// snaked optimal lattice path.
func FormatTable6(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %12s\n", "Fanout", "Popt", "~Popt", "best row", "worst row")
	for _, r := range rows {
		base := r.SnakedOpt.NormPages
		fmt.Fprintf(&b, "%-8d %10.2f %10.2f %12.2f %12.2f\n",
			r.Fanout, r.Opt.NormPages/base, 1.0, r.BestRM.NormPages/base, r.WorstRM.NormPages/base)
	}
	return b.String()
}
