package experiments

import (
	"strings"
	"testing"

	"repro/internal/tpcd"
)

// testConfig is a scaled-down warehouse that keeps the paper's structure
// (same hierarchy shapes) but runs fast.
func testConfig() tpcd.Config {
	c := tpcd.DefaultConfig()
	c.PartsPerMfr = 4
	c.Suppliers = 4
	c.Years = 3
	c.MonthsPerYear = 4
	c.DaysPerMonth = 4
	c.MeanRecordsPerCell = 2
	c.PageBytes = 512 // ≈4 records per page, so page seeks track cell fragments
	return c
}

func testMeasurer(t *testing.T) *Measurer {
	t.Helper()
	ds, err := tpcd.Build(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeasurer(ds)
	m.SamplesPerClass = 16
	return m
}

func TestTable4SmallWarehouse(t *testing.T) {
	m := testMeasurer(t)
	mixes := []tpcd.Mix{
		{Parts: tpcd.Even, Supplier: tpcd.Even, Time: tpcd.Even},
		tpcd.PaperWorkload7(),
		{Parts: tpcd.RampDown, Supplier: tpcd.RampDown, Time: tpcd.RampDown},
	}
	rows, err := Table4(m, mixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Index < 1 || r.Index > 27 {
			t.Errorf("mix %v: index %d out of range", r.Mix, r.Index)
		}
		// The headline shape of Table 4: the snaked optimal lattice path has
		// the fewest seeks (up to small page-boundary noise — the cell-level
		// guarantee is exact, the byte/page level only approximately so);
		// the worst row major is worse than the best; normalized blocks are
		// ≥ 1 for every strategy.
		if r.SnakedOpt.Seeks > r.Opt.Seeks*1.02 {
			t.Errorf("mix %v: snaked opt seeks %.3f > opt %.3f", r.Mix, r.SnakedOpt.Seeks, r.Opt.Seeks)
		}
		if r.SnakedOpt.Seeks > r.BestRM.Seeks*1.02 {
			t.Errorf("mix %v: snaked opt seeks %.3f > best row major %.3f", r.Mix, r.SnakedOpt.Seeks, r.BestRM.Seeks)
		}
		if r.WorstRM.NormPages < r.BestRM.NormPages {
			t.Errorf("mix %v: worst row major %.3f < best %.3f", r.Mix, r.WorstRM.NormPages, r.BestRM.NormPages)
		}
		for _, s := range []StrategyResult{r.Opt, r.SnakedOpt, r.BestRM, r.WorstRM} {
			if s.NormPages < 1 {
				t.Errorf("mix %v %s: normalized blocks %.3f < 1", r.Mix, s.Name, s.NormPages)
			}
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "Popt") || !strings.Contains(out, "worst row") {
		t.Errorf("FormatTable4 output:\n%s", out)
	}
}

func TestMeasurerCacheReuse(t *testing.T) {
	m := testMeasurer(t)
	s1, err := m.RowMajorStats([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.RowMajorStats([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] != &s2[0] {
		t.Error("repeated measurement was not served from cache")
	}
}

func TestExpectedSkipsZeroProbability(t *testing.T) {
	m := testMeasurer(t)
	st, err := m.RowMajorStats([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.DS.Workload(tpcd.PaperWorkload7())
	if err != nil {
		t.Fatal(err)
	}
	seeks, norm := Expected(m.DS.Lattice, st, w)
	if seeks <= 0 || norm <= 0 {
		t.Errorf("expected stats = (%v, %v), want positive", seeks, norm)
	}
}

func TestTable5And6SmallWarehouse(t *testing.T) {
	cfg := testConfig()
	rows, err := Table5(cfg, []int{2, 4}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.SnakedOpt.NormPages <= 0 {
			t.Errorf("fanout %d: snaked opt norm pages %v", r.Fanout, r.SnakedOpt.NormPages)
		}
		if r.WorstRM.NormPages < r.BestRM.NormPages-1e-9 {
			t.Errorf("fanout %d: worst row major better than best", r.Fanout)
		}
	}
	t5 := FormatTable5(rows)
	t6 := FormatTable6(rows)
	if !strings.Contains(t5, "Fanout") || !strings.Contains(t6, "Fanout") {
		t.Error("table formatting missing header")
	}
	// Table 6 normalizes the snaked optimal column to 1.
	if !strings.Contains(t6, "1.00") {
		t.Errorf("Table 6 should contain the 1.00 baseline:\n%s", t6)
	}
}

func TestPermutations3(t *testing.T) {
	if len(Permutations3) != 6 {
		t.Fatalf("got %d permutations", len(Permutations3))
	}
	seen := map[string]bool{}
	for _, p := range Permutations3 {
		s := ""
		used := map[int]bool{}
		for _, d := range p {
			s += string(rune('0' + d))
			used[d] = true
		}
		if len(used) != 3 || seen[s] {
			t.Errorf("bad permutation %v", p)
		}
		seen[s] = true
	}
}
