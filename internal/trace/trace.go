// Package trace is a dependency-free span tracer for per-request
// forensics: where did one slow query's time actually go — admission
// wait, pool misses, checksum-retry backoff, or the seek pattern itself?
//
// A trace is a tree of spans belonging to one request (or one background
// reorganization). It rides the request's context.Context exactly like
// storage.PoolTally does: the serving layer opens a root span and attaches
// the trace, and every layer below adds child spans through package-level
// Start/StartLeaf calls that are no-ops when the context carries no trace.
// The disabled path — no trace on the context — performs no allocations,
// so tracing costs nothing when it is off (asserted by tests in this
// package and in internal/storage).
//
// Retention is the Recorder's job: fixed-size lock-free rings with
// head-based sampling (keep every Nth request) plus tail-based always-keep
// for slow and errored requests, so the interesting traces survive any
// sampling rate. See Recorder.
package trace

import (
	"context"
	"sync"
	"time"
)

// Span kinds used across the storage, adaptive, and serving layers. The
// set is closed on purpose: metric families index per-kind histograms by
// it, and the obs registry forbids dynamic series.
const (
	KindRequest       = "request"        // root span of a served request
	KindAdmission     = "admission"      // wait for admission weight
	KindFragment      = "fragment"       // one contiguous byte run of a query's cell reads
	KindPageLoad      = "page_load"      // one physical page read at the pool
	KindRetry         = "retry_backoff"  // backoff sleep after a transient I/O error
	KindDP            = "dp"             // Figure-4 DP rerun against the live workload
	KindMigrate       = "migrate"        // whole reorganization migration
	KindCopy          = "copy"           // cell-by-cell copy into the new generation
	KindFlush         = "flush"          // new generation's pool flush
	KindCatalogCommit = "catalog_commit" // atomic catalog write (the commit point)
	KindSwap          = "swap"           // serving-pointer hot swap
	KindDrain         = "drain"          // old generation close / reader drain
	KindVerify        = "verify"         // post-swap scrub of the new generation
	KindScrub         = "scrub"          // one background scrub batch over the store
	KindRepair        = "repair"         // parity reconstruction of a corrupt page
	KindCompact       = "compact"        // one delta-compaction tick (apply + checkpoint)
	KindDeltaAppend   = "delta_append"   // one ingest batch appended to the delta log
)

// Kinds returns every span kind, in a stable order, for pre-registering
// per-kind metric series.
func Kinds() []string {
	return []string{
		KindRequest, KindAdmission, KindFragment, KindPageLoad, KindRetry,
		KindDP, KindMigrate, KindCopy, KindFlush, KindCatalogCommit,
		KindSwap, KindDrain, KindVerify, KindScrub, KindRepair,
		KindCompact, KindDeltaAppend,
	}
}

// Attr is one integer attachment on a span — page numbers, tally deltas,
// byte counts. Integers only: attributes must not allocate formatting
// machinery on the read path.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Span is one timed operation inside a trace. Start is the offset from the
// trace's start; Dur is -1 while the span is open and is forced closed at
// Finish. Spans form a tree through Parent (-1 for the root).
type Span struct {
	ID     int32  `json:"id"`
	Parent int32  `json:"parent"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Start  int64  `json:"startNs"`
	Dur    int64  `json:"durNs"`
	Attrs  []Attr `json:"attrs,omitempty"`
	Err    string `json:"error,omitempty"`
}

// Trace is one request's span tree. All methods are nil-safe: a nil
// *Trace is the "not recording" state and every operation on it is a
// no-op, so callers thread traces without nil checks.
type Trace struct {
	rec     *Recorder
	id      uint64
	name    string
	start   time.Time
	clock   func() time.Time
	forced  bool // always retained (background reorgs) unless Discarded
	sampled bool // head sampling chose this trace

	mu      sync.Mutex
	spans   []Span
	dropped int
	sealed  bool
	dur     time.Duration
	slow    bool
	err     string
	reason  string // retention reason once sealed: sampled|slow|error|forced
}

// ID returns the trace id (0 for a nil trace). Ids are assigned from one
// atomic sequence per Recorder, so they are unique and monotone.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Name returns the root span's name, e.g. the handler name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// StartTime returns when the trace began.
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Duration returns the sealed trace's wall time (0 before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dur
}

// Slow reports whether Finish classified the trace as slow.
func (t *Trace) Slow() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow
}

// Err returns the error recorded at Finish, if any.
func (t *Trace) Err() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Spans returns a copy of the span tree (index 0 is the root).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// startSpan appends a child span and returns its id, or -1 when the trace
// is sealed or full (the drop is counted, never silent).
func (t *Trace) startSpan(parent int32, kind, name string) int32 {
	off := t.clock().Sub(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return -1
	}
	if len(t.spans) >= t.rec.cfg.MaxSpans {
		t.dropped++
		return -1
	}
	id := int32(len(t.spans))
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: off, Dur: -1})
	return id
}

func (t *Trace) endSpan(id int32) {
	off := t.clock().Sub(t.start).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed || t.spans[id].Dur >= 0 {
		return
	}
	t.spans[id].Dur = off - t.spans[id].Start
}

func (t *Trace) setAttr(id int32, key string, v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return
	}
	t.spans[id].Attrs = append(t.spans[id].Attrs, Attr{Key: key, Value: v})
}

func (t *Trace) setErr(id int32, msg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return
	}
	t.spans[id].Err = msg
}

// SpanRef is a handle on one span of one trace. The zero value (and any
// ref whose span was dropped) is a valid no-op, so instrumented code never
// branches on whether tracing is live.
type SpanRef struct {
	tr *Trace
	id int32
}

// OK reports whether the ref points at a recorded span.
func (s SpanRef) OK() bool { return s.tr != nil && s.id >= 0 }

// End closes the span at the current time. Ending twice is a no-op.
func (s SpanRef) End() {
	if s.OK() {
		s.tr.endSpan(s.id)
	}
}

// SetAttr attaches one integer attribute.
func (s SpanRef) SetAttr(key string, v int64) {
	if s.OK() {
		s.tr.setAttr(s.id, key, v)
	}
}

// SetError records err on the span (nil is a no-op).
func (s SpanRef) SetError(err error) {
	if s.OK() && err != nil {
		s.tr.setErr(s.id, err.Error())
	}
}

// ctxKey carries a ctxSpan — the trace plus the id of the span that new
// children should parent under (the same single-key pattern as
// storage.PoolTally).
type ctxKey struct{}

type ctxSpan struct {
	tr   *Trace
	span int32
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	cs, _ := ctx.Value(ctxKey{}).(ctxSpan)
	return cs.tr
}

// Active reports whether ctx carries a live trace. It allocates nothing,
// so hot paths may call it per operation.
func Active(ctx context.Context) bool {
	cs, _ := ctx.Value(ctxKey{}).(ctxSpan)
	return cs.tr != nil
}

// Start opens a child of the span on ctx and returns a derived context
// under which further spans nest inside the new one. With no trace on ctx
// it returns ctx unchanged and a no-op ref without allocating.
func Start(ctx context.Context, kind, name string) (context.Context, SpanRef) {
	cs, _ := ctx.Value(ctxKey{}).(ctxSpan)
	if cs.tr == nil {
		return ctx, SpanRef{}
	}
	id := cs.tr.startSpan(cs.span, kind, name)
	if id < 0 {
		return ctx, SpanRef{tr: cs.tr, id: -1}
	}
	return context.WithValue(ctx, ctxKey{}, ctxSpan{cs.tr, id}), SpanRef{cs.tr, id}
}

// StartLeaf opens a child of the span on ctx without deriving a new
// context — the right call for spans that cannot have children (page
// loads, retry backoffs), where a context allocation per span would be
// pure overhead. With no trace on ctx it is free.
func StartLeaf(ctx context.Context, kind, name string) SpanRef {
	cs, _ := ctx.Value(ctxKey{}).(ctxSpan)
	if cs.tr == nil {
		return SpanRef{}
	}
	return SpanRef{cs.tr, cs.tr.startSpan(cs.span, kind, name)}
}
