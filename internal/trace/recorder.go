package trace

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// Config tunes a Recorder. The zero value records nothing (sampling off,
// no slow threshold); capacities and the span cap fall back to defaults.
type Config struct {
	// Capacity is the sampled ring's slot count.
	Capacity int
	// RetainedCapacity is the always-keep ring's slot count (slow,
	// errored, and forced traces).
	RetainedCapacity int
	// SampleEvery keeps every Nth request trace head-sampled; 0 disables
	// head sampling.
	SampleEvery int
	// SlowThreshold retains every request at least this slow regardless of
	// sampling — tail-based always-keep; 0 disables. While it is set,
	// every request carries a candidate trace so a slow request's spans
	// exist by the time its slowness is known.
	SlowThreshold time.Duration
	// MaxSpans caps spans per trace; further starts are counted as dropped.
	MaxSpans int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.RetainedCapacity <= 0 {
		c.RetainedCapacity = 64
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// ring is a fixed-size lock-free overwrite buffer: writers claim slots
// from one atomic counter and readers snapshot whatever the slots hold.
// Sealed traces only — a stored trace is immutable, so a torn view of the
// ring yields old-or-new traces, never a torn trace.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func newRing(n int) *ring { return &ring{slots: make([]atomic.Pointer[Trace], n)} }

func (r *ring) put(t *Trace) {
	idx := r.next.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(t)
}

func (r *ring) collect(out []*Trace) []*Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Stats counts a Recorder's retention decisions.
type Stats struct {
	Started      uint64 `json:"started"`
	KeptSampled  uint64 `json:"keptSampled"`
	KeptSlow     uint64 `json:"keptSlow"`
	KeptError    uint64 `json:"keptError"`
	KeptForced   uint64 `json:"keptForced"`
	Discarded    uint64 `json:"discarded"`
	DroppedSpans uint64 `json:"droppedSpans"`
}

// Result is Finish's verdict on one trace.
type Result struct {
	Kept     bool
	Reason   string // sampled | slow | error | forced; empty when discarded
	Slow     bool
	Duration time.Duration
}

// Recorder assigns trace ids, decides which requests to record, and
// retains finished traces in two rings: head-sampled traces in a recent
// ring, and slow/errored/forced traces in an always-keep ring so they
// survive sampling pressure. All methods are safe for concurrent use and
// nil-safe, so a daemon without tracing configured passes a nil Recorder
// through unchanged.
type Recorder struct {
	cfg      Config
	ids      atomic.Uint64
	sampled  *ring
	retained *ring
	clock    func() time.Time // injectable for tests

	started, keptSampled, keptSlow, keptError, keptForced atomic.Uint64
	discarded, droppedSpans                               atomic.Uint64
}

// NewRecorder builds a recorder; see Config for the retention policy.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:      cfg,
		sampled:  newRing(cfg.Capacity),
		retained: newRing(cfg.RetainedCapacity),
		clock:    time.Now,
	}
}

// Config returns the recorder's (defaulted) configuration.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	return r.cfg
}

// Enabled reports whether any request can ever be recorded.
func (r *Recorder) Enabled() bool {
	return r != nil && (r.cfg.SampleEvery > 0 || r.cfg.SlowThreshold > 0)
}

// Start begins a request trace named name (the root span's name) and
// returns a context carrying it. When the policy will provably keep
// nothing — sampling says no and there is no slow threshold — it returns
// ctx unchanged and a nil trace, so the request runs untraced and
// unallocated. The returned trace must be Finished (or Discarded).
func (r *Recorder) Start(ctx context.Context, name string) (context.Context, *Trace) {
	if r == nil {
		return ctx, nil
	}
	seq := r.ids.Add(1)
	sampled := r.cfg.SampleEvery > 0 && seq%uint64(r.cfg.SampleEvery) == 0
	if !sampled && r.cfg.SlowThreshold <= 0 {
		return ctx, nil
	}
	return r.begin(ctx, seq, name, sampled, false)
}

// StartForced begins a trace that is always recorded and retained (unless
// Discarded) regardless of sampling — for background reorganizations,
// which are too rare and too valuable to sample away.
func (r *Recorder) StartForced(ctx context.Context, name string) (context.Context, *Trace) {
	if r == nil {
		return ctx, nil
	}
	return r.begin(ctx, r.ids.Add(1), name, false, true)
}

func (r *Recorder) begin(ctx context.Context, id uint64, name string, sampled, forced bool) (context.Context, *Trace) {
	r.started.Add(1)
	t := &Trace{rec: r, id: id, name: name, clock: r.clock, start: r.clock(), sampled: sampled, forced: forced}
	t.startSpan(-1, KindRequest, name)
	return context.WithValue(ctx, ctxKey{}, ctxSpan{t, 0}), t
}

// Finish seals the trace: the root span (and any span left open) closes,
// err is recorded, and the retention policy files the trace into a ring
// or lets it go. Safe on a nil trace; calling twice returns the first
// verdict.
func (t *Trace) Finish(err error) Result {
	if t == nil {
		return Result{}
	}
	t.mu.Lock()
	if t.sealed {
		res := Result{Kept: t.reason != "", Reason: t.reason, Slow: t.slow, Duration: t.dur}
		t.mu.Unlock()
		return res
	}
	t.dur = t.clock().Sub(t.start)
	t.slow = t.rec.cfg.SlowThreshold > 0 && t.dur >= t.rec.cfg.SlowThreshold
	if err != nil {
		t.err = err.Error()
		t.spans[0].Err = t.err
	}
	end := t.dur.Nanoseconds()
	for i := range t.spans {
		if t.spans[i].Dur < 0 {
			t.spans[i].Dur = end - t.spans[i].Start
		}
	}
	t.sealed = true
	switch {
	case t.err != "":
		t.reason = "error"
	case t.slow:
		t.reason = "slow"
	case t.forced:
		t.reason = "forced"
	case t.sampled:
		t.reason = "sampled"
	}
	res := Result{Kept: t.reason != "", Reason: t.reason, Slow: t.slow, Duration: t.dur}
	dropped := t.dropped
	t.mu.Unlock()

	if dropped > 0 {
		t.rec.droppedSpans.Add(uint64(dropped))
	}
	switch res.Reason {
	case "error":
		t.rec.keptError.Add(1)
		t.rec.retained.put(t)
	case "slow":
		t.rec.keptSlow.Add(1)
		t.rec.retained.put(t)
	case "forced":
		t.rec.keptForced.Add(1)
		t.rec.retained.put(t)
	case "sampled":
		t.rec.keptSampled.Add(1)
		t.rec.sampled.put(t)
	default:
		t.rec.discarded.Add(1)
	}
	return res
}

// Discard seals the trace without retaining it — for candidate traces
// whose request turned out to be uninteresting (a background tick whose
// policy declined, for instance). Safe on a nil trace; a no-op after
// Finish.
func (t *Trace) Discard() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.sealed {
		t.mu.Unlock()
		return
	}
	t.sealed = true
	t.dur = t.clock().Sub(t.start)
	t.mu.Unlock()
	t.rec.discarded.Add(1)
}

// Stats snapshots the retention counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Started:      r.started.Load(),
		KeptSampled:  r.keptSampled.Load(),
		KeptSlow:     r.keptSlow.Load(),
		KeptError:    r.keptError.Load(),
		KeptForced:   r.keptForced.Load(),
		Discarded:    r.discarded.Load(),
		DroppedSpans: r.droppedSpans.Load(),
	}
}

// Snapshot returns every retained trace, newest first. Traces in the
// rings are sealed and immutable, so the result is safe to read while
// recording continues.
func (r *Recorder) Snapshot() []*Trace {
	if r == nil {
		return nil
	}
	out := make([]*Trace, 0, len(r.sampled.slots)+len(r.retained.slots))
	out = r.retained.collect(out)
	out = r.sampled.collect(out)
	sort.Slice(out, func(i, j int) bool { return out[i].id > out[j].id })
	return out
}

// Get returns the retained trace with the given id, or nil.
func (r *Recorder) Get(id uint64) *Trace {
	if r == nil {
		return nil
	}
	for _, ring := range []*ring{r.retained, r.sampled} {
		for i := range ring.slots {
			if t := ring.slots[i].Load(); t != nil && t.id == id {
				return t
			}
		}
	}
	return nil
}

// Summary is the one-line JSON rendering of a trace for /debug/traces.
type Summary struct {
	ID           uint64    `json:"id"`
	Name         string    `json:"name"`
	Start        time.Time `json:"start"`
	DurationMs   float64   `json:"durationMs"`
	SpanCount    int       `json:"spanCount"`
	DroppedSpans int       `json:"droppedSpans,omitempty"`
	Slow         bool      `json:"slow,omitempty"`
	Error        string    `json:"error,omitempty"`
	Kept         string    `json:"kept,omitempty"`
}

// Detail is the full JSON rendering: the summary plus every span.
type Detail struct {
	Summary
	Spans []Span `json:"spans"`
}

// Summarize renders the trace's summary line.
func (t *Trace) Summarize() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Summary{
		ID:           t.id,
		Name:         t.name,
		Start:        t.start,
		DurationMs:   float64(t.dur.Nanoseconds()) / 1e6,
		SpanCount:    len(t.spans),
		DroppedSpans: t.dropped,
		Slow:         t.slow,
		Error:        t.err,
		Kept:         t.reason,
	}
}

// DetailView renders the trace with its full span tree.
func (t *Trace) DetailView() Detail {
	return Detail{Summary: t.Summarize(), Spans: t.Spans()}
}
