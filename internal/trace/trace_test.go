package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// always returns a recorder that records every request.
func always() *Recorder {
	return NewRecorder(Config{SampleEvery: 1})
}

func TestSpanTree(t *testing.T) {
	rec := always()
	ctx, tr := rec.Start(context.Background(), "query")
	if tr == nil {
		t.Fatal("SampleEvery=1 recorder did not trace the first request")
	}
	if tr.ID() == 0 {
		t.Error("trace id = 0, want a positive sequence value")
	}

	fctx, frag := Start(ctx, KindFragment, "")
	load := StartLeaf(fctx, KindPageLoad, "")
	load.SetAttr("page", 7)
	load.End()
	frag.SetAttr("cells", 3)
	frag.End()
	adm := StartLeaf(ctx, KindAdmission, "")
	adm.SetError(errors.New("shed"))
	adm.End()
	res := tr.Finish(nil)
	if !res.Kept || res.Reason != "sampled" {
		t.Errorf("Finish = %+v, want kept as sampled", res)
	}

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	root := spans[0]
	if root.Kind != KindRequest || root.Parent != -1 || root.Name != "query" {
		t.Errorf("root span = %+v", root)
	}
	if spans[1].Kind != KindFragment || spans[1].Parent != 0 {
		t.Errorf("fragment span = %+v, want child of root", spans[1])
	}
	if spans[2].Kind != KindPageLoad || spans[2].Parent != spans[1].ID {
		t.Errorf("page_load span = %+v, want child of fragment", spans[2])
	}
	if len(spans[2].Attrs) != 1 || spans[2].Attrs[0] != (Attr{"page", 7}) {
		t.Errorf("page_load attrs = %+v", spans[2].Attrs)
	}
	if spans[3].Parent != 0 || spans[3].Err != "shed" {
		t.Errorf("admission span = %+v, want root child carrying the error", spans[3])
	}
	for i, sp := range spans {
		if sp.Dur < 0 {
			t.Errorf("span %d still open after Finish: %+v", i, sp)
		}
		if sp.Start < 0 {
			t.Errorf("span %d starts before the trace: %+v", i, sp)
		}
	}

	// The sealed trace is in the sampled ring and retrievable by id.
	if got := rec.Get(tr.ID()); got != tr {
		t.Errorf("Get(%d) = %p, want %p", tr.ID(), got, tr)
	}
	if s := tr.Summarize(); s.SpanCount != 4 || s.Kept != "sampled" {
		t.Errorf("summary = %+v", s)
	}
}

func TestDisabledPathIsFreeAndNoOp(t *testing.T) {
	ctx := context.Background()
	if Active(ctx) {
		t.Fatal("background context reports an active trace")
	}
	errX := errors.New("x")
	allocs := testing.AllocsPerRun(200, func() {
		c2, sp := Start(ctx, KindFragment, "")
		if c2 != ctx {
			t.Fatal("Start derived a context without a trace")
		}
		sp.SetAttr("k", 1)
		sp.End()
		leaf := StartLeaf(ctx, KindPageLoad, "")
		leaf.SetError(errX)
		leaf.End()
		_ = Active(ctx)
		_ = FromContext(ctx)
	})
	if allocs != 0 {
		t.Errorf("disabled trace path allocates %.1f objects per op, want 0", allocs)
	}

	// A fully disabled recorder starts nothing.
	rec := NewRecorder(Config{})
	c2, tr := rec.Start(ctx, "query")
	if tr != nil || c2 != ctx {
		t.Errorf("disabled recorder produced a trace")
	}
	if rec.Enabled() {
		t.Error("zero-config recorder reports enabled")
	}
	// Nil recorders and nil traces are inert everywhere.
	var nilRec *Recorder
	if _, tr := nilRec.Start(ctx, "q"); tr != nil {
		t.Error("nil recorder produced a trace")
	}
	var nilTr *Trace
	nilTr.Finish(nil)
	nilTr.Discard()
	if nilTr.ID() != 0 || nilTr.Slow() || len(nilTr.Spans()) != 0 {
		t.Error("nil trace not inert")
	}
}

func TestHeadSamplingKeepsEveryNth(t *testing.T) {
	rec := NewRecorder(Config{SampleEvery: 4, Capacity: 32})
	traced := 0
	for i := 0; i < 16; i++ {
		_, tr := rec.Start(context.Background(), "q")
		if tr != nil {
			traced++
			tr.Finish(nil)
		}
	}
	if traced != 4 {
		t.Errorf("SampleEvery=4 traced %d of 16 requests, want 4", traced)
	}
	if st := rec.Stats(); st.Started != 4 || st.KeptSampled != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// fakeClock is a concurrency-safe test clock.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(d.Nanoseconds()) }

func TestSlowAndErroredSurviveSampling(t *testing.T) {
	clk := &fakeClock{}
	rec := NewRecorder(Config{SampleEvery: 1 << 30, SlowThreshold: time.Millisecond})
	rec.clock = clk.now

	// A fast, clean request: candidate trace exists (slow threshold set)
	// but is let go at Finish.
	_, fast := rec.Start(context.Background(), "fast")
	if fast == nil {
		t.Fatal("slow threshold should force candidate traces")
	}
	if res := fast.Finish(nil); res.Kept || res.Slow {
		t.Errorf("fast request kept: %+v", res)
	}
	if rec.Get(fast.ID()) != nil {
		t.Error("fast trace retained")
	}

	// A slow request is always kept, at any sampling rate.
	_, slow := rec.Start(context.Background(), "slow")
	clk.advance(5 * time.Millisecond)
	res := slow.Finish(nil)
	if !res.Kept || res.Reason != "slow" || !res.Slow || res.Duration != 5*time.Millisecond {
		t.Errorf("slow request: %+v", res)
	}
	if rec.Get(slow.ID()) == nil {
		t.Error("slow trace not retrievable")
	}

	// So is an errored one.
	_, bad := rec.Start(context.Background(), "bad")
	if res := bad.Finish(errors.New("boom")); !res.Kept || res.Reason != "error" {
		t.Errorf("errored request: %+v", res)
	}
	if tr := rec.Get(bad.ID()); tr == nil || tr.Err() != "boom" {
		t.Errorf("errored trace = %v", tr)
	}

	// Forced traces are kept unless discarded.
	_, forced := rec.StartForced(context.Background(), "reorg")
	forced.Finish(nil)
	if rec.Get(forced.ID()) == nil {
		t.Error("forced trace not retained")
	}
	_, skipped := rec.StartForced(context.Background(), "reorg")
	skipped.Discard()
	if rec.Get(skipped.ID()) != nil {
		t.Error("discarded trace retained")
	}
	if st := rec.Stats(); st.KeptSlow != 1 || st.KeptError != 1 || st.KeptForced != 1 || st.Discarded != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMaxSpansDropsAreCounted(t *testing.T) {
	rec := NewRecorder(Config{SampleEvery: 1, MaxSpans: 4})
	ctx, tr := rec.Start(context.Background(), "q")
	for i := 0; i < 10; i++ {
		sp := StartLeaf(ctx, KindPageLoad, "")
		sp.SetAttr("page", int64(i)) // dropped refs must stay inert
		sp.End()
	}
	tr.Finish(nil)
	if got := len(tr.Spans()); got != 4 {
		t.Errorf("spans = %d, want capped at 4", got)
	}
	if s := tr.Summarize(); s.DroppedSpans != 7 {
		t.Errorf("dropped = %d, want 7 (10 page loads - 3 slots past the root)", s.DroppedSpans)
	}
	if st := rec.Stats(); st.DroppedSpans != 7 {
		t.Errorf("recorder dropped-span stat = %d, want 7", st.DroppedSpans)
	}
}

// TestRecorderConcurrentScrape is the ring-buffer race test: 8 goroutines
// record traces (a fixed subset errored, so they must be retained) while
// two readers continuously snapshot and re-read span trees mid-drain.
// Run under -race this checks the lock-free rings; the final asserts check
// no slot corruption, strictly monotone unique ids, and that every errored
// trace survived the sampling pressure.
func TestRecorderConcurrentScrape(t *testing.T) {
	const (
		writers   = 8
		perWriter = 400
		errEvery  = 100 // 4 errored traces per writer, 32 total < RetainedCapacity
	)
	rec := NewRecorder(Config{SampleEvery: 3, Capacity: 64, RetainedCapacity: 64})

	var writersWg, readersWg sync.WaitGroup
	stop := make(chan struct{})
	readErrs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := rec.Snapshot()
				for i, tr := range snap {
					if tr == nil {
						readErrs <- fmt.Errorf("nil trace in snapshot slot %d", i)
						return
					}
					if i > 0 && snap[i-1].ID() <= tr.ID() {
						readErrs <- fmt.Errorf("snapshot ids not strictly descending: %d then %d", snap[i-1].ID(), tr.ID())
						return
					}
					for _, sp := range tr.Spans() {
						if sp.Dur < 0 || (sp.Parent >= 0 && sp.Parent >= sp.ID) {
							readErrs <- fmt.Errorf("malformed span in retained trace %d: %+v", tr.ID(), sp)
							return
						}
					}
					// Get must agree with the snapshot while writers drain
					// slots underneath us (old-or-new, never torn).
					if got := rec.Get(tr.ID()); got != nil && got.ID() != tr.ID() {
						readErrs <- fmt.Errorf("Get(%d) returned trace %d", tr.ID(), got.ID())
						return
					}
				}
			}
		}()
	}

	var mu sync.Mutex
	wantErrIDs := make(map[uint64]bool)
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			for i := 0; i < perWriter; i++ {
				ctx, tr := rec.Start(context.Background(), "q")
				if tr == nil {
					continue
				}
				fctx, frag := Start(ctx, KindFragment, "")
				sp := StartLeaf(fctx, KindPageLoad, "")
				sp.SetAttr("page", int64(i))
				sp.End()
				frag.End()
				if i%errEvery == errEvery-1 {
					mu.Lock()
					wantErrIDs[tr.ID()] = true
					mu.Unlock()
					tr.Finish(errors.New("injected"))
				} else {
					tr.Finish(nil)
				}
			}
		}(w)
	}

	// Writers finish first, then the readers get one last clean pass.
	writersWg.Wait()
	close(stop)
	readersWg.Wait()
	select {
	case err := <-readErrs:
		t.Fatal(err)
	default:
	}

	// Every errored trace survived the sampling pressure (RetainedCapacity
	// exceeds the error count, and sampled traffic never overwrites the
	// retained ring).
	snap := rec.Snapshot()
	got := make(map[uint64]bool)
	for _, tr := range snap {
		if tr.Err() != "" {
			got[tr.ID()] = true
		}
	}
	for id := range wantErrIDs {
		if !got[id] {
			t.Errorf("errored trace %d was evicted from the retained ring", id)
		}
	}
	if len(wantErrIDs) == 0 {
		t.Fatal("test recorded no errored traces")
	}
	if st := rec.Stats(); st.KeptError != uint64(len(wantErrIDs)) {
		t.Errorf("KeptError = %d, want %d", st.KeptError, len(wantErrIDs))
	}
}
