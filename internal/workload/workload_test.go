package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func exampleLattice() *lattice.Lattice {
	return lattice.New(hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2)))
}

func TestUniform(t *testing.T) {
	l := exampleLattice()
	w := Uniform(l)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 9
	l.Points(func(p lattice.Point) {
		if got := w.Prob(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Prob(%v) = %v, want %v", p, got, want)
		}
	})
}

func TestUniformOverAndExcept(t *testing.T) {
	l := exampleLattice()
	// Workload 3 of Example 1: only (0,0), (0,1), (0,2), (1,2).
	w3 := UniformOver(l,
		lattice.Point{0, 0}, lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 2})
	if err := w3.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w3.Prob(lattice.Point{0, 1}); got != 0.25 {
		t.Errorf("Prob(0,1) = %v, want 0.25", got)
	}
	if got := w3.Prob(lattice.Point{2, 2}); got != 0 {
		t.Errorf("Prob(2,2) = %v, want 0", got)
	}
	if got := len(w3.Support()); got != 4 {
		t.Errorf("|Support| = %d, want 4", got)
	}

	// Workload 2: all but (0,1), (0,2), (1,1).
	w2 := UniformExcept(l,
		lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 1})
	if err := w2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w2.Prob(lattice.Point{0, 1}); got != 0 {
		t.Errorf("Prob(0,1) = %v, want 0", got)
	}
	if got := w2.Prob(lattice.Point{0, 0}); math.Abs(got-1.0/6) > 1e-12 {
		t.Errorf("Prob(0,0) = %v, want 1/6", got)
	}
}

func TestValidateRejectsBadDistributions(t *testing.T) {
	l := exampleLattice()
	w := New(l)
	if err := w.Validate(); err == nil {
		t.Error("zero workload should fail validation")
	}
	w.Set(lattice.Point{0, 0}, -0.5)
	w.Set(lattice.Point{2, 2}, 1.5)
	if err := w.Validate(); err == nil {
		t.Error("negative probability should fail validation")
	}
	w.Set(lattice.Point{0, 0}, math.NaN())
	if err := w.Validate(); err == nil {
		t.Error("NaN probability should fail validation")
	}
}

func TestNormalize(t *testing.T) {
	l := exampleLattice()
	w := New(l)
	w.Set(lattice.Point{0, 0}, 3)
	w.Set(lattice.Point{1, 1}, 1)
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{0, 0}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Prob(0,0) = %v, want 0.75", got)
	}
	empty := New(l)
	if err := empty.Normalize(); err == nil {
		t.Error("normalizing a zero workload should fail")
	}
}

func TestPaperLevelDistributions(t *testing.T) {
	e3 := Even(0, 1, 2)
	if e3.Probs[0] != 0.33 || e3.Probs[1] != 0.33 || math.Abs(e3.Probs[2]-0.34) > 1e-12 {
		t.Errorf("Even(3 levels) = %v, want [0.33 0.33 0.34]", e3.Probs)
	}
	e2 := Even(0, 1)
	if e2.Probs[0] != 0.5 || e2.Probs[1] != 0.5 {
		t.Errorf("Even(2 levels) = %v, want [0.5 0.5]", e2.Probs)
	}
	u3 := RampUp(0, 1, 2)
	if u3.Probs[0] != 0.1 || u3.Probs[1] != 0.3 || u3.Probs[2] != 0.6 {
		t.Errorf("RampUp(3) = %v, want [0.1 0.3 0.6]", u3.Probs)
	}
	u2 := RampUp(0, 1)
	if u2.Probs[0] != 0.2 || u2.Probs[1] != 0.8 {
		t.Errorf("RampUp(2) = %v, want [0.2 0.8]", u2.Probs)
	}
	d3 := RampDown(0, 1, 2)
	if d3.Probs[0] != 0.6 || d3.Probs[1] != 0.3 || d3.Probs[2] != 0.1 {
		t.Errorf("RampDown(3) = %v, want [0.6 0.3 0.1]", d3.Probs)
	}
	d2 := RampDown(0, 1)
	if d2.Probs[0] != 0.8 || d2.Probs[1] != 0.2 {
		t.Errorf("RampDown(2) = %v, want [0.8 0.2]", d2.Probs)
	}
}

func TestProduct(t *testing.T) {
	l := exampleLattice()
	w, err := Product(l, []LevelDist{RampUp(0, 1, 2), RampDown(0, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// p(0,0) = 0.1 × 0.6.
	if got := w.Prob(lattice.Point{0, 0}); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Prob(0,0) = %v, want 0.06", got)
	}
	// p(2,2) = 0.6 × 0.1.
	if got := w.Prob(lattice.Point{2, 2}); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Prob(2,2) = %v, want 0.06", got)
	}
}

func TestProductPartialLevels(t *testing.T) {
	// Distributions may cover only some levels; uncovered classes get zero.
	l := exampleLattice()
	w, err := Product(l, []LevelDist{Even(0, 1), Even(0, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{2, 0}); got != 0 {
		t.Errorf("Prob(2,0) = %v, want 0 (level 2 of A uncovered)", got)
	}
	if w.Prob(lattice.Point{1, 2}) == 0 {
		t.Error("Prob(1,2) should be positive")
	}
}

func TestProductErrors(t *testing.T) {
	l := exampleLattice()
	if _, err := Product(l, []LevelDist{Even(0, 1)}); err == nil {
		t.Error("wrong dimension count should fail")
	}
	if _, err := Product(l, []LevelDist{Even(0, 5), Even(0, 1)}); err == nil {
		t.Error("out-of-range level should fail")
	}
	if _, err := Product(l, []LevelDist{{Levels: []int{0}, Probs: []float64{0.5, 0.5}}, Even(0)}); err == nil {
		t.Error("mismatched levels/probs should fail")
	}
}

func TestRandomWorkloads(t *testing.T) {
	l := exampleLattice()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		w := Random(l, rng, 0.5)
		if err := w.Validate(); err != nil {
			t.Fatalf("random workload %d invalid: %v", i, err)
		}
	}
	// Extreme sparsity still yields a valid singleton-or-more workload.
	for i := 0; i < 20; i++ {
		w := Random(l, rng, 0.01)
		if err := w.Validate(); err != nil {
			t.Fatalf("sparse random workload %d invalid: %v", i, err)
		}
	}
}

func TestPointWorkload(t *testing.T) {
	l := exampleLattice()
	w := Point(l, lattice.Point{2, 0})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{2, 0}); got != 1 {
		t.Errorf("Prob(2,0) = %v, want 1", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	l := exampleLattice()
	w := Uniform(l)
	c := w.Clone()
	c.Set(lattice.Point{0, 0}, 0.9)
	if w.Prob(lattice.Point{0, 0}) == 0.9 {
		t.Error("Clone() shares storage with the original")
	}
}

func TestRampGeneralLevels(t *testing.T) {
	r := RampUp(0, 1, 2, 3)
	total := 0.0
	for i, p := range r.Probs {
		total += p
		if i > 0 && r.Probs[i] <= r.Probs[i-1] {
			t.Errorf("RampUp not increasing at %d: %v", i, r.Probs)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("RampUp(4) total = %v", total)
	}
}

func TestStringShowsSupport(t *testing.T) {
	l := exampleLattice()
	w := Point(l, lattice.Point{1, 2})
	if got := w.String(); got != "{(1,2):1}" {
		t.Errorf("String() = %q", got)
	}
}
