// Package workload represents query workloads: probability distributions
// over the query classes of a lattice (Definition 2), plus the generators
// used in the paper's examples and experiments.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/lattice"
)

// Tolerance is the maximum deviation from 1 allowed for the total
// probability mass of a validated workload.
const Tolerance = 1e-9

// Workload is a probability distribution over the query classes of a
// lattice, stored densely in the lattice's index order.
type Workload struct {
	lat   *lattice.Lattice
	probs []float64
}

// New returns the zero workload (all probabilities 0) over the lattice.
// Callers populate it with Set and should Validate before use, or use one of
// the generators below.
func New(l *lattice.Lattice) *Workload {
	return &Workload{lat: l, probs: make([]float64, l.Size())}
}

// Lattice returns the lattice the workload is defined over.
func (w *Workload) Lattice() *lattice.Lattice { return w.lat }

// Set assigns probability p to class c.
func (w *Workload) Set(c lattice.Point, p float64) {
	w.probs[w.lat.Index(c)] = p
}

// Prob returns the probability of class c.
func (w *Workload) Prob(c lattice.Point) float64 {
	return w.probs[w.lat.Index(c)]
}

// ProbAt returns the probability of the class with the given dense index.
func (w *Workload) ProbAt(idx int) float64 { return w.probs[idx] }

// Total returns the total probability mass.
func (w *Workload) Total() float64 {
	t := 0.0
	for _, p := range w.probs {
		t += p
	}
	return t
}

// Validate reports an error when any probability is negative or the total
// mass deviates from 1 by more than Tolerance.
func (w *Workload) Validate() error {
	for i, p := range w.probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return fmt.Errorf("workload: class %v has invalid probability %v", w.lat.PointAt(i), p)
		}
	}
	if t := w.Total(); math.Abs(t-1) > Tolerance {
		return fmt.Errorf("workload: total probability %v ≠ 1", t)
	}
	return nil
}

// Normalize scales the workload so its total mass is 1. It returns an error
// when the current mass is zero or not finite.
func (w *Workload) Normalize() error {
	t := w.Total()
	if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("workload: cannot normalize total mass %v", t)
	}
	for i := range w.probs {
		w.probs[i] /= t
	}
	return nil
}

// Clone returns a deep copy of the workload.
func (w *Workload) Clone() *Workload {
	c := New(w.lat)
	copy(c.probs, w.probs)
	return c
}

// Support returns the classes with nonzero probability, in dense order.
func (w *Workload) Support() []lattice.Point {
	var pts []lattice.Point
	for i, p := range w.probs {
		if p > 0 {
			pts = append(pts, w.lat.PointAt(i))
		}
	}
	return pts
}

// String renders the nonzero entries, most probable first.
func (w *Workload) String() string {
	type entry struct {
		pt lattice.Point
		p  float64
	}
	var entries []entry
	for i, p := range w.probs {
		if p > 0 {
			entries = append(entries, entry{w.lat.PointAt(i), p})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].p != entries[j].p {
			return entries[i].p > entries[j].p
		}
		return w.lat.Index(entries[i].pt) < w.lat.Index(entries[j].pt)
	})
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%v:%.4g", e.pt, e.p)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Uniform returns the workload in which every query class is equally likely
// (workload 1 of Example 1).
func Uniform(l *lattice.Lattice) *Workload {
	w := New(l)
	p := 1 / float64(l.Size())
	for i := range w.probs {
		w.probs[i] = p
	}
	return w
}

// UniformOver returns the workload uniform over the given classes and zero
// elsewhere (the form of workloads 2 and 3 of Example 1).
func UniformOver(l *lattice.Lattice, classes ...lattice.Point) *Workload {
	w := New(l)
	p := 1 / float64(len(classes))
	for _, c := range classes {
		w.probs[l.Index(c)] += p
	}
	return w
}

// UniformExcept returns the workload uniform over all classes except the
// given ones, which get probability zero.
func UniformExcept(l *lattice.Lattice, excluded ...lattice.Point) *Workload {
	skip := make(map[int]bool, len(excluded))
	for _, c := range excluded {
		skip[l.Index(c)] = true
	}
	w := New(l)
	p := 1 / float64(l.Size()-len(skip))
	for i := range w.probs {
		if !skip[i] {
			w.probs[i] = p
		}
	}
	return w
}

// LevelDist is a per-dimension probability distribution over a dimension's
// levels: Probs[i] is the probability that a query selects level Levels[i]
// of the dimension. The Section-6.2 generators produce these.
type LevelDist struct {
	Levels []int
	Probs  []float64
}

// Even returns the even level distribution over the given levels, with any
// rounding remainder assigned to the last level — e.g. (0.33, 0.33, 0.34)
// for three levels, matching the paper.
func Even(levels ...int) LevelDist {
	n := len(levels)
	probs := make([]float64, n)
	base := math.Floor(100/float64(n)) / 100
	for i := range probs {
		probs[i] = base
	}
	probs[n-1] = 1 - base*float64(n-1)
	return LevelDist{Levels: levels, Probs: probs}
}

// RampUp returns the paper's ramp-up distribution: (0.1, 0.3, 0.6) for three
// levels, (0.2, 0.8) for two. Other level counts use a doubling ramp.
func RampUp(levels ...int) LevelDist {
	return LevelDist{Levels: levels, Probs: ramp(len(levels))}
}

// RampDown returns the paper's ramp-down distribution: (0.6, 0.3, 0.1) for
// three levels, (0.8, 0.2) for two.
func RampDown(levels ...int) LevelDist {
	p := ramp(len(levels))
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return LevelDist{Levels: levels, Probs: p}
}

// ramp returns an increasing distribution over n levels. For n = 2 it is
// (0.2, 0.8) and for n = 3 it is (0.1, 0.3, 0.6), the paper's values; in
// general each entry is (roughly) twice the previous, normalized.
func ramp(n int) []float64 {
	switch n {
	case 1:
		return []float64{1}
	case 2:
		return []float64{0.2, 0.8}
	case 3:
		return []float64{0.1, 0.3, 0.6}
	}
	p := make([]float64, n)
	total := 0.0
	v := 1.0
	for i := range p {
		p[i] = v
		total += v
		v *= 2
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

// Product returns the workload whose class probabilities are the products of
// independent per-dimension level distributions, the Section-6.2
// construction. Levels of a dimension not mentioned in its LevelDist get
// probability zero. The distributions are given in dimension order and each
// must cover levels within the dimension's range.
func Product(l *lattice.Lattice, dists []LevelDist) (*Workload, error) {
	if len(dists) != l.K() {
		return nil, fmt.Errorf("workload: %d level distributions for %d dimensions", len(dists), l.K())
	}
	tops := l.Tops()
	perDim := make([][]float64, l.K())
	for d, dist := range dists {
		if len(dist.Levels) != len(dist.Probs) {
			return nil, fmt.Errorf("workload: dimension %d: %d levels but %d probabilities", d, len(dist.Levels), len(dist.Probs))
		}
		perDim[d] = make([]float64, tops[d]+1)
		for i, lv := range dist.Levels {
			if lv < 0 || lv > tops[d] {
				return nil, fmt.Errorf("workload: dimension %d: level %d out of range [0,%d]", d, lv, tops[d])
			}
			perDim[d][lv] += dist.Probs[i]
		}
	}
	w := New(l)
	l.Points(func(p lattice.Point) {
		prob := 1.0
		for d, lv := range p {
			prob *= perDim[d][lv]
		}
		w.probs[l.Index(p)] = prob
	})
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// Random returns a workload drawn from a symmetric Dirichlet-like
// distribution using the given source: independent exponential weights per
// class, normalized. Sparsity in (0,1] keeps roughly that fraction of
// classes in the support (at least one).
func Random(l *lattice.Lattice, rng *rand.Rand, sparsity float64) *Workload {
	w := New(l)
	nonzero := 0
	for i := range w.probs {
		if rng.Float64() < sparsity {
			w.probs[i] = rng.ExpFloat64()
			nonzero++
		}
	}
	if nonzero == 0 {
		w.probs[rng.Intn(len(w.probs))] = 1
	}
	if err := w.Normalize(); err != nil {
		panic(err) // unreachable: at least one positive entry
	}
	return w
}

// Point returns the workload concentrated entirely on one class, the
// adversarial shape used in the proof of Theorem 3.
func Point(l *lattice.Lattice, c lattice.Point) *Workload {
	w := New(l)
	w.Set(c, 1)
	return w
}
