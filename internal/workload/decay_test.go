package workload

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/lattice"
)

// fakeClock drives a DecayingEstimator through virtual time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestDecaying(t *testing.T, l *lattice.Lattice, halfLife time.Duration) (*DecayingEstimator, *fakeClock) {
	t.Helper()
	e, err := NewDecayingEstimator(l, halfLife)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	e.now = clk.now
	return e, clk
}

func TestDecayingEstimatorHalfLife(t *testing.T) {
	l := exampleLattice()
	e, clk := newTestDecaying(t, l, time.Minute)
	if err := e.Observe(lattice.Point{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := e.Weight(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("fresh weight = %v, want 1", got)
	}
	clk.advance(time.Minute)
	if got := e.Weight(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weight after one half-life = %v, want 0.5", got)
	}
	clk.advance(time.Minute)
	if got := e.Weight(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("weight after two half-lives = %v, want 0.25", got)
	}
	if got := e.Total(); got != 1 {
		t.Errorf("Total = %d, want 1 (raw counts never decay)", got)
	}
}

// TestDecayingEstimatorTracksShift is the satellite's acceptance check: feed
// both estimators workload A, then switch the stream to workload B at equal
// rate. Two half-lives later the decayed estimate has moved most of its mass
// onto B (old traffic is worth 1/4 per observation), while the undecayed
// estimator still reports roughly the 50/50 blend of total history.
func TestDecayingEstimatorTracksShift(t *testing.T) {
	l := exampleLattice()
	a, b := lattice.Point{0, 1}, lattice.Point{1, 0}
	half := time.Minute

	dec, clk := newTestDecaying(t, l, half)
	flat := NewEstimator(l)
	observe := func(c lattice.Point, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := dec.Observe(c); err != nil {
				t.Fatal(err)
			}
			if err := flat.Observe(c); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: 1000 queries of class a, then the shift: 500 queries of
	// class b per half-life for two half-lives.
	observe(a, 1000)
	clk.advance(half)
	observe(b, 500)
	clk.advance(half)
	observe(b, 500)

	dw, err := dec.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := flat.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	// Decayed: a's 1000 observations are two half-lives old (weight 250),
	// b carries 500*0.5 + 500 = 750 → b holds 75% of the mass.
	if got := dw.Prob(b); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("decayed P(b) = %v, want 0.75", got)
	}
	// Undecayed: 1000 a vs 1000 b → still a 50/50 blend, lagging the shift.
	if got := fw.Prob(b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("undecayed P(b) = %v, want 0.50", got)
	}
	if dw.Prob(b) <= fw.Prob(b)+0.2 {
		t.Errorf("decayed estimate (P(b)=%v) should lead the undecayed one (P(b)=%v) by a wide margin",
			dw.Prob(b), fw.Prob(b))
	}
}

func TestDecayingEstimatorManualDecay(t *testing.T) {
	l := exampleLattice()
	e, err := NewDecayingEstimator(l, 0) // no time decay: explicit epochs only
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := e.Observe(lattice.Point{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Decay(0.5); err != nil {
		t.Fatal(err)
	}
	if got := e.Weight(); math.Abs(got-2) > 1e-12 {
		t.Errorf("weight after Decay(0.5) = %v, want 2", got)
	}
	// Distribution is scale-invariant: still all mass on {0,0}.
	w, err := e.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{0, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("P({0,0}) = %v, want 1", got)
	}
	if err := e.Decay(0); err == nil {
		t.Error("Decay(0) should fail")
	}
	if err := e.Decay(1.5); err == nil {
		t.Error("Decay(1.5) should fail")
	}
}

func TestDecayingEstimatorZeroHalfLifeMatchesEstimator(t *testing.T) {
	l := exampleLattice()
	e, clk := newTestDecaying(t, l, 0)
	flat := NewEstimator(l)
	pts := []lattice.Point{{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 2}}
	for _, p := range pts {
		if !l.Contains(p) {
			continue
		}
		if err := e.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := flat.Observe(p); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Hour)
	}
	ew, err := e.Workload(0.5)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := flat.Workload(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distance(ew, fw)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-12 {
		t.Errorf("zero half-life estimate differs from Estimator by TV %v", d)
	}
}

func TestDecayingEstimatorErrorsAndReset(t *testing.T) {
	l := exampleLattice()
	if _, err := NewDecayingEstimator(l, -time.Second); err == nil {
		t.Error("negative half-life should fail")
	}
	e, _ := newTestDecaying(t, l, time.Minute)
	if err := e.Observe(lattice.Point{9, 9}); err == nil {
		t.Error("out-of-lattice class should fail")
	}
	if _, err := e.Workload(0); err == nil {
		t.Error("empty estimator without smoothing should fail")
	}
	if _, err := e.Workload(-1); err == nil {
		t.Error("negative smoothing should fail")
	}
	if _, err := e.Workload(0.1); err != nil {
		t.Errorf("smoothed empty estimate should work: %v", err)
	}
	if err := e.Observe(lattice.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Total() != 0 || e.Weight() != 0 {
		t.Errorf("Reset left total=%d weight=%v", e.Total(), e.Weight())
	}
}

func TestDecayingEstimatorDrifted(t *testing.T) {
	l := exampleLattice()
	e, clk := newTestDecaying(t, l, time.Minute)
	baseline := Point(l, lattice.Point{0, 1})
	for i := 0; i < 100; i++ {
		if err := e.Observe(lattice.Point{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	drifted, d, err := e.Drifted(baseline, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Errorf("matching stream reported drift (tv=%v)", d)
	}
	clk.advance(3 * time.Minute)
	for i := 0; i < 100; i++ {
		if err := e.Observe(lattice.Point{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	drifted, d, err = e.Drifted(baseline, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Errorf("shifted stream not reported as drift (tv=%v)", d)
	}
}

func TestDecayingEstimatorConcurrent(t *testing.T) {
	l := exampleLattice()
	e, err := NewDecayingEstimator(l, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := lattice.Point{g % 3, (g / 3) % 3}
			if !l.Contains(c) {
				c = lattice.Point{0, 0}
			}
			for i := 0; i < 200; i++ {
				if err := e.Observe(c); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					e.Weight()
					if _, err := e.Workload(0.1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := e.Total(); got != 8*200 {
		t.Errorf("Total = %d, want %d", got, 8*200)
	}
}
