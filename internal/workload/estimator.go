package workload

import (
	"fmt"
	"sync"

	"repro/internal/lattice"
)

// Estimator builds a workload from an observed query stream, the way the
// paper's introduction proposes obtaining stable workloads: the number of
// query classes is small, so class frequencies converge quickly even when
// individual queries never repeat. Estimator is safe for concurrent use by
// the threads executing queries.
type Estimator struct {
	mu     sync.Mutex
	lat    *lattice.Lattice
	counts []uint64
	total  uint64
}

// NewEstimator returns an empty estimator over the lattice.
func NewEstimator(l *lattice.Lattice) *Estimator {
	return &Estimator{lat: l, counts: make([]uint64, l.Size())}
}

// Observe records one query of the given class.
func (e *Estimator) Observe(c lattice.Point) error {
	if !e.lat.Contains(c) {
		return fmt.Errorf("workload: observed class %v outside lattice", c)
	}
	idx := e.lat.Index(c)
	e.mu.Lock()
	e.counts[idx]++
	e.total++
	e.mu.Unlock()
	return nil
}

// Total returns the number of observations so far.
func (e *Estimator) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// Workload returns the estimated distribution with additive (Laplace)
// smoothing: each class is credited `smoothing` pseudo-observations, so an
// estimate from a short stream still assigns every class nonzero mass and
// the optimizer does not overfit to classes that merely have not been seen
// yet. smoothing = 0 returns the empirical distribution (an error while no
// queries have been observed).
func (e *Estimator) Workload(smoothing float64) (*Workload, error) {
	if smoothing < 0 {
		return nil, fmt.Errorf("workload: negative smoothing %v", smoothing)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.total == 0 && smoothing == 0 {
		return nil, fmt.Errorf("workload: no observations and no smoothing")
	}
	w := New(e.lat)
	denom := float64(e.total) + smoothing*float64(e.lat.Size())
	for i, c := range e.counts {
		w.probs[i] = (float64(c) + smoothing) / denom
	}
	return w, nil
}

// Merge folds another estimator's counts into this one (e.g. per-shard
// collectors). Both must be over lattices of the same shape.
func (e *Estimator) Merge(other *Estimator) error {
	if len(e.counts) != len(other.counts) {
		return fmt.Errorf("workload: merging estimators of different lattice sizes %d and %d",
			len(e.counts), len(other.counts))
	}
	other.mu.Lock()
	counts := append([]uint64(nil), other.counts...)
	total := other.total
	other.mu.Unlock()
	e.mu.Lock()
	for i, c := range counts {
		e.counts[i] += c
	}
	e.total += total
	e.mu.Unlock()
	return nil
}

// Reset clears all observations, e.g. at a re-clustering epoch boundary.
func (e *Estimator) Reset() {
	e.mu.Lock()
	for i := range e.counts {
		e.counts[i] = 0
	}
	e.total = 0
	e.mu.Unlock()
}

// Distance returns the total-variation distance between two workloads over
// the same lattice shape: half the L1 distance, in [0, 1]. Zero means
// identical distributions; one means disjoint support.
func Distance(a, b *Workload) (float64, error) {
	if len(a.probs) != len(b.probs) {
		return 0, fmt.Errorf("workload: comparing distributions over %d and %d classes", len(a.probs), len(b.probs))
	}
	d := 0.0
	for i := range a.probs {
		diff := a.probs[i] - b.probs[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d / 2, nil
}

// Drifted reports whether the estimator's current distribution has moved
// more than threshold (in total-variation distance) from the baseline the
// last clustering decision was made on — the signal to re-optimize and
// re-cluster. smoothing is applied to the current estimate as in Workload.
func (e *Estimator) Drifted(baseline *Workload, smoothing, threshold float64) (bool, float64, error) {
	cur, err := e.Workload(smoothing)
	if err != nil {
		return false, 0, err
	}
	d, err := Distance(cur, baseline)
	if err != nil {
		return false, 0, err
	}
	return d > threshold, d, nil
}
