package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/lattice"
)

// DecayingEstimator estimates the query-class distribution from a live
// stream while exponentially discounting old traffic, so a store that has
// served for weeks can still react to this morning's workload shift. Each
// observation carries weight 1 when it arrives and half that weight one
// half-life later: the estimate is a continuous-time exponentially weighted
// average of the class indicator stream. A zero half-life disables time
// decay entirely (every observation keeps weight 1 forever), which makes
// the estimator equivalent to Estimator up to floating point; Decay can
// still be applied manually, e.g. once per re-clustering epoch.
//
// DecayingEstimator is safe for concurrent use by the threads executing
// queries.
type DecayingEstimator struct {
	mu       sync.Mutex
	lat      *lattice.Lattice
	weights  []float64
	weight   float64 // decayed total mass; denominator of the estimate
	total    uint64  // raw observation count, never decayed
	halfLife time.Duration
	last     time.Time        // instant the weights were last brought current
	now      func() time.Time // injectable clock for tests
}

// NewDecayingEstimator returns an empty estimator over the lattice whose
// observations lose half their weight every halfLife. halfLife = 0 disables
// time decay; negative half-lives are rejected.
func NewDecayingEstimator(l *lattice.Lattice, halfLife time.Duration) (*DecayingEstimator, error) {
	if halfLife < 0 {
		return nil, fmt.Errorf("workload: negative half-life %v", halfLife)
	}
	return &DecayingEstimator{
		lat:      l,
		weights:  make([]float64, l.Size()),
		halfLife: halfLife,
		now:      time.Now,
	}, nil
}

// decayTo brings the weights current to instant t. Caller holds mu.
func (e *DecayingEstimator) decayTo(t time.Time) {
	if e.halfLife == 0 {
		return
	}
	if e.last.IsZero() {
		e.last = t
		return
	}
	dt := t.Sub(e.last)
	if dt <= 0 {
		return
	}
	e.scale(math.Exp2(-float64(dt) / float64(e.halfLife)))
	e.last = t
}

// scale multiplies every weight (and the total mass) by f. Caller holds mu.
func (e *DecayingEstimator) scale(f float64) {
	for i := range e.weights {
		e.weights[i] *= f
	}
	e.weight *= f
}

// Observe records one query of the given class at the current clock time.
func (e *DecayingEstimator) Observe(c lattice.Point) error {
	if !e.lat.Contains(c) {
		return fmt.Errorf("workload: observed class %v outside lattice", c)
	}
	idx := e.lat.Index(c)
	e.mu.Lock()
	e.decayTo(e.now())
	e.weights[idx]++
	e.weight++
	e.total++
	e.mu.Unlock()
	return nil
}

// Decay applies one explicit decay step, multiplying every weight by
// factor in (0, 1]. It composes with time decay: epoch-driven callers
// (e.g. "halve at every re-clustering") can use it with halfLife = 0.
func (e *DecayingEstimator) Decay(factor float64) error {
	if factor <= 0 || factor > 1 {
		return fmt.Errorf("workload: decay factor %v outside (0, 1]", factor)
	}
	e.mu.Lock()
	e.decayTo(e.now())
	e.scale(factor)
	e.mu.Unlock()
	return nil
}

// Total returns the raw (undecayed) number of observations so far.
func (e *DecayingEstimator) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.total
}

// Weight returns the decayed total mass — the effective sample size of the
// current estimate. Triggers should gate on this rather than Total: after a
// long idle stretch the estimator may remember millions of queries but
// carry almost no live evidence.
func (e *DecayingEstimator) Weight() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.decayTo(e.now())
	return e.weight
}

// Workload returns the decayed estimate with additive (Laplace) smoothing,
// exactly as Estimator.Workload but over decayed weights: each class is
// credited `smoothing` pseudo-observations. smoothing = 0 returns the
// empirical decayed distribution (an error while no mass remains).
func (e *DecayingEstimator) Workload(smoothing float64) (*Workload, error) {
	if smoothing < 0 {
		return nil, fmt.Errorf("workload: negative smoothing %v", smoothing)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.decayTo(e.now())
	denom := e.weight + smoothing*float64(e.lat.Size())
	if denom <= 0 {
		return nil, fmt.Errorf("workload: no observation mass and no smoothing")
	}
	w := New(e.lat)
	for i, c := range e.weights {
		w.probs[i] = (c + smoothing) / denom
	}
	return w, nil
}

// Drifted reports whether the decayed distribution has moved more than
// threshold (total-variation) from the baseline, as Estimator.Drifted.
func (e *DecayingEstimator) Drifted(baseline *Workload, smoothing, threshold float64) (bool, float64, error) {
	cur, err := e.Workload(smoothing)
	if err != nil {
		return false, 0, err
	}
	d, err := Distance(cur, baseline)
	if err != nil {
		return false, 0, err
	}
	return d > threshold, d, nil
}

// Reset clears all observations and forgets the clock, e.g. at a
// re-clustering epoch boundary.
func (e *DecayingEstimator) Reset() {
	e.mu.Lock()
	for i := range e.weights {
		e.weights[i] = 0
	}
	e.weight = 0
	e.total = 0
	e.last = time.Time{}
	e.mu.Unlock()
}
