package workload

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func TestEstimatorEmpirical(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	for i := 0; i < 3; i++ {
		if err := e.Observe(lattice.Point{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Observe(lattice.Point{2, 2}); err != nil {
		t.Fatal(err)
	}
	if got := e.Total(); got != 4 {
		t.Errorf("Total = %d, want 4", got)
	}
	w, err := e.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{0, 1}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Prob(0,1) = %v, want 0.75", got)
	}
	if got := w.Prob(lattice.Point{1, 1}); got != 0 {
		t.Errorf("unseen class has probability %v without smoothing", got)
	}
}

func TestEstimatorSmoothing(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	if err := e.Observe(lattice.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	w, err := e.Workload(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 observation + 1 pseudo-count per class: p(0,0) = 2/10, others 1/10.
	if got := w.Prob(lattice.Point{0, 0}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Prob(0,0) = %v, want 0.2", got)
	}
	if got := w.Prob(lattice.Point{2, 2}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Prob(2,2) = %v, want 0.1", got)
	}
}

func TestEstimatorErrors(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	if err := e.Observe(lattice.Point{9, 9}); err == nil {
		t.Error("out-of-lattice class should fail")
	}
	if _, err := e.Workload(0); err == nil {
		t.Error("empty empirical workload should fail")
	}
	if _, err := e.Workload(-1); err == nil {
		t.Error("negative smoothing should fail")
	}
	if _, err := e.Workload(0.5); err != nil {
		t.Errorf("smoothed empty workload should be valid: %v", err)
	}
}

func TestEstimatorConvergesToTruth(t *testing.T) {
	l := exampleLattice()
	truth := Random(l, rand.New(rand.NewSource(8)), 0.8)
	e := NewEstimator(l)
	rng := rand.New(rand.NewSource(9))
	classes := make([]lattice.Point, 0, l.Size())
	l.Points(func(p lattice.Point) { classes = append(classes, p.Clone()) })
	for i := 0; i < 50000; i++ {
		u := rng.Float64()
		acc := 0.0
		for _, c := range classes {
			acc += truth.Prob(c)
			if u <= acc {
				if err := e.Observe(c); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	w, err := e.Workload(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range classes {
		if math.Abs(w.Prob(c)-truth.Prob(c)) > 0.02 {
			t.Errorf("class %v: estimate %v vs truth %v", c, w.Prob(c), truth.Prob(c))
		}
	}
}

func TestEstimatorMergeAndReset(t *testing.T) {
	l := exampleLattice()
	a, b := NewEstimator(l), NewEstimator(l)
	for i := 0; i < 3; i++ {
		if err := a.Observe(lattice.Point{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Observe(lattice.Point{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Total(); got != 4 {
		t.Errorf("merged total = %d, want 4", got)
	}
	w, err := a.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Prob(lattice.Point{0, 1}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("merged Prob(0,1) = %v, want 0.25", got)
	}
	other := NewEstimator(lattice.New(exampleLattice().Schema()))
	if err := a.Merge(other); err != nil {
		t.Errorf("same-shape merge should succeed: %v", err)
	}
	a.Reset()
	if a.Total() != 0 {
		t.Error("Reset did not clear observations")
	}
}

func TestEstimatorConcurrent(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 1000; i++ {
				c := lattice.Point{rng.Intn(3), rng.Intn(3)}
				if err := e.Observe(c); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := e.Total(); got != 8000 {
		t.Errorf("concurrent total = %d, want 8000", got)
	}
	w, err := e.Workload(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	l := exampleLattice()
	u := Uniform(l)
	if d, err := Distance(u, u.Clone()); err != nil || d != 0 {
		t.Errorf("Distance(u,u) = %v, %v", d, err)
	}
	a := Point(l, lattice.Point{0, 0})
	b := Point(l, lattice.Point{2, 2})
	if d, err := Distance(a, b); err != nil || d != 1 {
		t.Errorf("Distance(disjoint) = %v, %v; want 1", d, err)
	}
	// Distance to uniform from a point mass: (1 − 1/9) mass must move.
	if d, err := Distance(a, u); err != nil || math.Abs(d-8.0/9) > 1e-12 {
		t.Errorf("Distance(point, uniform) = %v, %v; want 8/9", d, err)
	}
}

func TestDrifted(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	for i := 0; i < 100; i++ {
		if err := e.Observe(lattice.Point{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	baseline, err := e.Workload(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// No new observations: essentially no drift.
	drifted, d, err := e.Drifted(baseline, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if drifted || d > 0.01 {
		t.Errorf("drifted = %v, distance %v right after baseline", drifted, d)
	}
	// Shift the stream entirely to another class.
	for i := 0; i < 900; i++ {
		if err := e.Observe(lattice.Point{2, 2}); err != nil {
			t.Fatal(err)
		}
	}
	drifted, d, err = e.Drifted(baseline, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !drifted || d < 0.5 {
		t.Errorf("drifted = %v, distance %v after the stream shifted", drifted, d)
	}
}

func TestDriftedErrors(t *testing.T) {
	l := exampleLattice()
	e := NewEstimator(l)
	baseline := Uniform(l)
	if _, _, err := e.Drifted(baseline, 0, 0.1); err == nil {
		t.Error("empty estimator with no smoothing should fail")
	}
	small := New(lattice.New(hierarchy.MustSchema(hierarchy.Binary("A", 1), hierarchy.Binary("B", 1))))
	if _, err := Distance(baseline, small); err == nil {
		t.Error("mismatched lattice sizes should fail")
	}
}
