package workload

import (
	"math"
	"sync"
	"time"
)

// RateTracker estimates an exponentially decayed event rate — the write
// path's analogue of the query-class estimator. The ingest layer feeds it
// accepted upsert bytes and the daemon divides the delta backlog by the
// decayed rate to report compaction lag in seconds rather than raw bytes.
//
// The estimate is a half-life–decayed sum of observed quantities divided
// by the decayed elapsed time, so bursts fade on the same schedule the
// adaptive controller uses for queries and an idle stream decays toward
// zero instead of holding its last burst forever.
type RateTracker struct {
	mu       sync.Mutex
	halfLife time.Duration
	sum      float64   // decayed quantity mass
	elapsed  float64   // decayed seconds of observation window
	last     time.Time // time of the last decay
}

// NewRateTracker returns a tracker with the given half-life; halfLife <= 0
// disables decay (a plain lifetime average).
func NewRateTracker(halfLife time.Duration) *RateTracker {
	return &RateTracker{halfLife: halfLife}
}

// decayTo folds the time since the last observation into the window and
// applies half-life decay to both numerator and denominator.
func (r *RateTracker) decayTo(now time.Time) {
	if r.last.IsZero() {
		r.last = now
		return
	}
	dt := now.Sub(r.last).Seconds()
	if dt <= 0 {
		return
	}
	if r.halfLife > 0 {
		f := math.Exp2(-dt / r.halfLife.Seconds())
		r.sum *= f
		r.elapsed *= f
	}
	r.elapsed += dt
	r.last = now
}

// Observe records quantity n (bytes, rows, events) at time now.
func (r *RateTracker) Observe(n float64, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decayTo(now)
	r.sum += n
}

// Rate returns the decayed quantity-per-second estimate as of now; 0 until
// a full second of window has accumulated, so a single early burst does
// not report an absurd instantaneous rate.
func (r *RateTracker) Rate(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.decayTo(now)
	if r.elapsed < 1 {
		return 0
	}
	return r.sum / r.elapsed
}
