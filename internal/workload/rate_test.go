package workload

import (
	"testing"
	"time"
)

func TestRateTrackerSteadyStream(t *testing.T) {
	r := NewRateTracker(0) // no decay: lifetime average
	t0 := time.Unix(1000, 0)
	for i := 1; i <= 10; i++ {
		r.Observe(100, t0.Add(time.Duration(i)*time.Second))
	}
	got := r.Rate(t0.Add(10 * time.Second))
	if got < 99 || got > 112 {
		t.Fatalf("steady 100/s stream: rate = %v", got)
	}
}

func TestRateTrackerDecaysWhenIdle(t *testing.T) {
	r := NewRateTracker(10 * time.Second)
	t0 := time.Unix(1000, 0)
	for i := 1; i <= 10; i++ {
		r.Observe(1000, t0.Add(time.Duration(i)*time.Second))
	}
	busy := r.Rate(t0.Add(10 * time.Second))
	if busy < 500 {
		t.Fatalf("busy rate = %v, want near 1000/s", busy)
	}
	// Ten half-lives of silence: the burst must have faded to near zero.
	idle := r.Rate(t0.Add(110 * time.Second))
	if idle > busy/50 {
		t.Fatalf("idle rate = %v after 10 half-lives (busy was %v)", idle, busy)
	}
}

func TestRateTrackerEarlyWindow(t *testing.T) {
	r := NewRateTracker(time.Minute)
	t0 := time.Unix(1000, 0)
	r.Observe(1e9, t0)
	if got := r.Rate(t0.Add(10 * time.Millisecond)); got != 0 {
		t.Fatalf("rate %v reported before a second of window", got)
	}
}
