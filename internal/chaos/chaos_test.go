package chaos

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/linear"
	"repro/internal/storage"
)

// chaosOrder returns the 4×6 row-major order shared by the chaos tests.
func chaosOrder(t *testing.T) *linear.Order {
	t.Helper()
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	o, err := linear.RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// chaosFixture builds a loaded store with a parity sidecar and returns it
// with its path and the ground-truth records per cell.
func chaosFixture(t *testing.T, pageSize, group int) (*storage.FileStore, string, map[int][]string) {
	t.Helper()
	o := chaosOrder(t)
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = 4 * storage.FrameSize(11)
	}
	path := filepath.Join(t.TempDir(), "facts.db")
	fs, err := storage.CreateFileStore(path, o, bytesPerCell, pageSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	truth := make(map[int][]string)
	for c := 0; c < o.Len(); c++ {
		for r := 0; r < 4; r++ {
			rec := fmt.Sprintf("cell%03d-r%02d", c, r)
			if err := fs.PutRecord(c, []byte(rec)); err != nil {
				t.Fatal(err)
			}
			truth[c] = append(truth[c], rec)
		}
	}
	if err := fs.WriteParity(storage.ParityPath(path), group); err != nil {
		t.Fatal(err)
	}
	return fs, path, truth
}

func assertTruth(t *testing.T, fs *storage.FileStore, truth map[int][]string) {
	t.Helper()
	got := make(map[int][]string)
	full := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 6}}
	if err := fs.Scan(full, func(cell int, record []byte) error {
		got[cell] = append(got[cell], string(record))
		return nil
	}); err != nil {
		t.Fatalf("ground-truth scan: %v", err)
	}
	for c, want := range truth {
		if !reflect.DeepEqual(got[c], want) {
			t.Errorf("cell %d = %v, want %v", c, got[c], want)
		}
	}
}

// TestPlanDeterminism: the schedule is a pure function of its inputs —
// byte-identical across runs for the same seed, different across seeds.
func TestPlanDeterminism(t *testing.T) {
	a := Plan(42, 8, 96, 64)
	b := Plan(42, 8, 96, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := Plan(43, 8, 96, 64)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("seeds 42 and 43 drew identical schedules")
	}
	ra := PlanRepairable(7, 5, 96, 8, 64)
	rb := PlanRepairable(7, 5, 96, 8, 64)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("PlanRepairable same seed diverged:\n%+v\n%+v", ra, rb)
	}
}

// TestPlanRepairableOneFaultPerGroup: every event lands on a distinct
// parity group, within the store, with bits inside the page.
func TestPlanRepairableOneFaultPerGroup(t *testing.T) {
	const totalPages, group, pageSize = 96, 8, 64
	for seed := int64(0); seed < 20; seed++ {
		s := PlanRepairable(seed, 12, totalPages, group, pageSize)
		if len(s.Events) != 12 {
			t.Fatalf("seed %d: %d events, want 12 (12 groups available)", seed, len(s.Events))
		}
		seen := make(map[int64]bool)
		for _, e := range s.Events {
			if e.Page < 0 || e.Page >= totalPages {
				t.Fatalf("seed %d: page %d out of range", seed, e.Page)
			}
			g := e.Page / group
			if seen[g] {
				t.Fatalf("seed %d: two faults in parity group %d", seed, g)
			}
			seen[g] = true
			if e.Kind == BitFlip && (e.Bit < 0 || e.Bit >= pageSize*8) {
				t.Fatalf("seed %d: bit %d out of range", seed, e.Bit)
			}
		}
	}
}

// TestScheduleRepairRoundTrip: a repairable schedule corrupts every
// targeted page detectably, one repair sweep converges to a clean scrub,
// and the data comes back byte-exact.
func TestScheduleRepairRoundTrip(t *testing.T) {
	const pageSize, group = 64, 4
	fs, path, truth := chaosFixture(t, pageSize, group)
	total := fs.Layout().TotalPages()
	for seed := int64(1); seed <= 5; seed++ {
		sched := PlanRepairable(seed, int(total), total, group, pageSize)
		if err := sched.Apply(path); err != nil {
			t.Fatal(err)
		}
		for _, e := range sched.Events {
			if err := fs.CheckPage(e.Page); !errors.Is(err, storage.ErrCorruptPage) {
				t.Fatalf("seed %d: %s left page clean (CheckPage = %v)", seed, e, err)
			}
		}
		rep, err := fs.RepairCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() || len(rep.Repaired) < len(sched.Events) {
			t.Fatalf("seed %d: sweep = %+v, want all %d faults repaired", seed, rep, len(sched.Events))
		}
		vrep, err := fs.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if !vrep.OK() {
			t.Fatalf("seed %d: post-repair scrub: %v", seed, vrep.Err())
		}
		assertTruth(t, fs, truth)
	}
}

// stormFixture reopens a built store through a FaultInjector carrying the
// given schedule, so reads hit the storm.
func stormFixture(t *testing.T, faults []storage.Fault) *storage.FileStore {
	t.Helper()
	o := chaosOrder(t)
	bytesPerCell := make([]int64, o.Len())
	for c := range bytesPerCell {
		bytesPerCell[c] = 4 * storage.FrameSize(11)
	}
	path := filepath.Join(t.TempDir(), "facts.db")
	fs, err := storage.CreateFileStore(path, o, bytesPerCell, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < o.Len(); c++ {
		for r := 0; r < 4; r++ {
			if err := fs.PutRecord(c, []byte(fmt.Sprintf("cell%03d-r%02d", c, r))); err != nil {
				t.Fatal(err)
			}
		}
	}
	loaded := fs.LoadedBytes()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	pf, err := storage.OpenPageFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	fi := storage.NewFaultInjector(pf, 99, faults...)
	fs2, err := storage.NewFileStoreOn(fi, o, bytesPerCell, 4, loaded)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs2.Close() })
	return fs2
}

// TestStormWithinRetryBudgetRidesOut: transient bursts narrower than the
// pool's retry budget are invisible to readers.
func TestStormWithinRetryBudgetRidesOut(t *testing.T) {
	faults := Storm(3, 12, 3, 2, storage.OpRead)
	if len(faults) != 3 {
		t.Fatalf("storm has %d bursts, want 3", len(faults))
	}
	fs := stormFixture(t, faults)
	full := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 6}}
	n := 0
	if err := fs.Scan(full, func(cell int, record []byte) error { n++; return nil }); err != nil {
		t.Fatalf("scan through storm: %v", err)
	}
	if n != 4*24 {
		t.Fatalf("scan through storm returned %d records, want %d", n, 4*24)
	}
}

// TestStormPastRetryBudgetSurfacesTyped: a burst wider than the retry
// budget escapes — as a typed ErrTransient, never a panic or a silent
// wrong answer.
func TestStormPastRetryBudgetSurfacesTyped(t *testing.T) {
	fs := stormFixture(t, Storm(5, 12, 1, 16, storage.OpRead))
	full := linear.Region{{Lo: 0, Hi: 4}, {Lo: 0, Hi: 6}}
	err := fs.Scan(full, func(cell int, record []byte) error { return nil })
	if !errors.Is(err, storage.ErrTransient) || !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("scan through wide storm = %v, want typed ErrTransient/ErrInjected", err)
	}
}

// TestCrashPointMidMigrate: cancelling a migration at a scheduled cell
// boundary (the deterministic stand-in for a crash) aborts typed, leaves
// no partial output, and a clean retry succeeds with the data intact.
func TestCrashPointMidMigrate(t *testing.T) {
	fs, _, truth := chaosFixture(t, 64, 4)
	s := hierarchy.MustSchema(hierarchy.Uniform("A", 2, 2), hierarchy.Uniform("B", 1, 6))
	newOrder, err := linear.RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(t.TempDir(), "migrated.db")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	crashAt := 12 // half of the 24 cells
	_, err = storage.MigrateCtx(ctx, fs, newPath, newOrder, 8, func(done, total int) {
		if done == crashAt {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("migrate with mid-flight crash = %v, want context.Canceled", err)
	}
	if _, statErr := storage.OpenPageFile(newPath, 64); statErr == nil {
		t.Fatal("crashed migration left a partial output file")
	}
	dst, err := storage.MigrateCtx(context.Background(), fs, newPath, newOrder, 8, nil)
	if err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	defer dst.Close()
	assertTruth(t, dst, truth)
}
