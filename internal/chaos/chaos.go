// Package chaos plans and applies deterministic fault schedules against
// snakestore files, for the self-healing test harness and bench.
//
// A Schedule is a pure function of its seed and the store geometry: the
// same seed always yields the same pages, the same fault kinds, and the
// same bit positions, so any failing chaos run replays exactly from the
// seed logged with it. Two layers of faults are covered:
//
//   - On-disk corruptors (BitFlip, TornWrite) flip bits or tear pages in
//     the store file underneath a live server — silent damage only a
//     checksum catches, the input to parity repair.
//   - Storm builds transient-I/O burst schedules for a
//     storage.FaultInjector, exercising the buffer pool's retry policy
//     and crash points mid-migration.
//
// The package itself never decides pass/fail; tests and snakebench own
// the assertions.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/storage"
)

// Kind is what a scheduled disk fault does to its page.
type Kind int

const (
	// BitFlip flips one bit of the page — the classic silent media error.
	BitFlip Kind = iota
	// TornWrite zeroes the tail half of the page, as if the trailing
	// sectors of a write never reached the platter before a power cut
	// (the file's freshly-created bytes read back as zeroes). Tearing a
	// never-written page is a no-op, exactly like the real event.
	TornWrite
)

func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bitflip"
	case TornWrite:
		return "torn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled disk corruption.
type Event struct {
	Kind Kind
	Page int64 // physical page in the store file
	Bit  int   // BitFlip only: bit offset within the page
}

func (e Event) String() string {
	if e.Kind == BitFlip {
		return fmt.Sprintf("%s page %d bit %d", e.Kind, e.Page, e.Bit)
	}
	return fmt.Sprintf("%s page %d", e.Kind, e.Page)
}

// Schedule is a deterministic batch of disk corruptions for one store
// file. Events are sorted by page so logs read in disk order.
type Schedule struct {
	Seed     int64
	PageSize int
	Events   []Event
}

func (s *Schedule) String() string {
	return fmt.Sprintf("chaos schedule seed=%d faults=%d", s.Seed, len(s.Events))
}

// Plan draws n faults uniformly over a store of totalPages pages. Pages
// may repeat and may share a parity group, so a Plan schedule can produce
// unrepairable damage — use PlanRepairable when the test asserts full
// convergence.
func Plan(seed int64, n int, totalPages int64, pageSize int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, PageSize: pageSize}
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, drawEvent(rng, rng.Int63n(totalPages), pageSize))
	}
	sortEvents(s.Events)
	return s
}

// PlanRepairable draws at most one fault per parity group of `group` data
// pages, so every scheduled fault is recoverable from the sidecar. n is
// clamped to the number of groups.
func PlanRepairable(seed int64, n int, totalPages int64, group, pageSize int) *Schedule {
	rng := rand.New(rand.NewSource(seed))
	groups := int((totalPages + int64(group) - 1) / int64(group))
	if n > groups {
		n = groups
	}
	s := &Schedule{Seed: seed, PageSize: pageSize}
	for _, g := range rng.Perm(groups)[:n] {
		start := int64(g) * int64(group)
		span := int64(group)
		if start+span > totalPages {
			span = totalPages - start
		}
		s.Events = append(s.Events, drawEvent(rng, start+rng.Int63n(span), pageSize))
	}
	sortEvents(s.Events)
	return s
}

// drawEvent picks a fault kind and coordinates for one page: mostly bit
// flips, with the occasional torn write for variety.
func drawEvent(rng *rand.Rand, page int64, pageSize int) Event {
	e := Event{Page: page}
	if rng.Intn(4) == 0 {
		e.Kind = TornWrite
	} else {
		e.Kind = BitFlip
		e.Bit = rng.Intn(pageSize * 8)
	}
	return e
}

func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool { return events[i].Page < events[j].Page })
}

// Apply injects every event into the store file at path, underneath any
// open FileStore (repair and scrub read the disk, not the pool cache, so
// the damage is visible immediately).
func (s *Schedule) Apply(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("chaos: opening %s: %w", path, err)
	}
	defer f.Close()
	for _, e := range s.Events {
		if err := applyEvent(f, s.PageSize, e); err != nil {
			return fmt.Errorf("chaos: applying %s to %s: %w", e, path, err)
		}
	}
	return f.Sync()
}

func applyEvent(f *os.File, pageSize int, e Event) error {
	base := e.Page * int64(pageSize)
	switch e.Kind {
	case BitFlip:
		off := base + int64(e.Bit/8)
		one := make([]byte, 1)
		if _, err := f.ReadAt(one, off); err != nil {
			return err
		}
		one[0] ^= 1 << (e.Bit % 8)
		_, err := f.WriteAt(one, off)
		return err
	case TornWrite:
		_, err := f.WriteAt(make([]byte, pageSize/2), base+int64(pageSize/2))
		return err
	}
	return fmt.Errorf("unknown fault kind %v", e.Kind)
}

// Storm builds a deterministic transient-I/O burst schedule for a
// storage.FaultInjector: `bursts` windows of `width` consecutive failing
// operations of class op, spread over the first `span` operations. The
// span is divided into equal slots with one burst placed at a seeded
// offset inside each, so bursts never overlap and the whole storm is a
// pure function of its arguments.
func Storm(seed, span int64, bursts, width int, op storage.FaultOp) []storage.Fault {
	rng := rand.New(rand.NewSource(seed))
	if bursts < 1 {
		return nil
	}
	slot := span / int64(bursts)
	if slot <= int64(width) {
		slot = int64(width) + 1
	}
	faults := make([]storage.Fault, 0, bursts)
	for b := 0; b < bursts; b++ {
		start := int64(b)*slot + rng.Int63n(slot-int64(width)+1)
		faults = append(faults, storage.Fault{
			Op:     op,
			Index:  start,
			Kind:   storage.FaultTransient,
			Repeat: width,
		})
	}
	return faults
}
