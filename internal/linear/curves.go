package linear

import (
	"fmt"
	"math/bits"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func latticeOf(s *hierarchy.Schema) *lattice.Lattice { return lattice.New(s) }

// pow2Shape returns the per-dimension bit widths when every side of the grid
// is a power of two, or an error otherwise.
func pow2Shape(s *hierarchy.Schema) ([]int, error) {
	widths := make([]int, s.K())
	for d, n := range s.LeafCounts() {
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("linear: dimension %q has %d leaves; space-filling curves need powers of two", s.Dims[d].Name, n)
		}
		widths[d] = bits.TrailingZeros(uint(n))
	}
	return widths, nil
}

// ZOrder returns the Z-curve (bit-interleaving, Orenstein–Merrett)
// linearization. Every side must be a power of two; dimensions of unequal
// width contribute bits only while they still have them, most significant
// bits interleaved first.
func ZOrder(s *hierarchy.Schema) (*Order, error) {
	widths, err := pow2Shape(s)
	if err != nil {
		return nil, err
	}
	o := newOrder(s, "z-order")
	coords := make([]int, s.K())
	for pos := range o.seq {
		decodeInterleaved(pos, widths, coords, false)
		o.seq[pos] = o.CellIndex(coords)
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// GrayOrder returns the Gray-code curve (Faloutsos) linearization: positions
// enumerate the interleaved bits in binary-reflected Gray order, so
// consecutive cells differ in exactly one coordinate bit. Every side must be
// a power of two.
func GrayOrder(s *hierarchy.Schema) (*Order, error) {
	widths, err := pow2Shape(s)
	if err != nil {
		return nil, err
	}
	o := newOrder(s, "gray-order")
	coords := make([]int, s.K())
	for pos := range o.seq {
		decodeInterleaved(pos, widths, coords, true)
		o.seq[pos] = o.CellIndex(coords)
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// decodeInterleaved splits the bits of pos across the dimensions, most
// significant interleaved bit first: at each level from the top, every
// dimension that still has a bit at that level contributes one bit. With
// gray=true the bits of pos are first converted from binary-reflected Gray
// rank to the Gray codeword.
func decodeInterleaved(pos int, widths []int, coords []int, gray bool) {
	total := 0
	maxW := 0
	for _, w := range widths {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if gray {
		pos ^= pos >> 1
	}
	for d := range coords {
		coords[d] = 0
	}
	bit := total - 1
	for level := maxW; level >= 1; level-- {
		for d, w := range widths {
			if w >= level {
				coords[d] |= ((pos >> bit) & 1) << (level - 1)
				bit--
			}
		}
	}
}

// Hilbert returns the Hilbert-curve linearization for a schema whose sides
// are all the same power of two (a 2^b hypercube grid), using Skilling's
// transposed-index algorithm. This covers the 2-D square grids of the
// paper's analytical comparisons and k-D cubes for ablations.
func Hilbert(s *hierarchy.Schema) (*Order, error) {
	widths, err := pow2Shape(s)
	if err != nil {
		return nil, err
	}
	b := widths[0]
	for _, w := range widths {
		if w != b {
			return nil, fmt.Errorf("linear: Hilbert needs equal power-of-two sides, got widths %v", widths)
		}
	}
	k := s.K()
	o := newOrder(s, "hilbert")
	coords := make([]int, k)
	x := make([]uint32, k)
	for pos := range o.seq {
		hilbertAxes(pos, b, x)
		for d := range coords {
			coords[d] = int(x[d])
		}
		o.seq[pos] = o.CellIndex(coords)
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// hilbertAxes converts a Hilbert-curve rank into k-dimensional coordinates
// on a 2^b-sided cube (Skilling, "Programming the Hilbert curve", 2004).
func hilbertAxes(rank, b int, x []uint32) {
	n := len(x)
	// Distribute the rank's bits round-robin into the transposed form: bit
	// (n*b−1−i) of rank becomes bit (b−1−i/n) of X[i%n].
	for i := range x {
		x[i] = 0
	}
	for i := 0; i < n*b; i++ {
		if rank&(1<<(n*b-1-i)) != 0 {
			x[i%n] |= 1 << (b - 1 - i/n)
		}
	}
	// Gray decode.
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != 1<<b; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// Hilbert2D returns the classical 2-D Hilbert curve on a 2^b × 2^b grid via
// the textbook rotation algorithm. It exists as an independent
// implementation to cross-check Hilbert (Skilling) in tests.
func Hilbert2D(s *hierarchy.Schema) (*Order, error) {
	if s.K() != 2 {
		return nil, fmt.Errorf("linear: Hilbert2D needs 2 dimensions, got %d", s.K())
	}
	widths, err := pow2Shape(s)
	if err != nil {
		return nil, err
	}
	if widths[0] != widths[1] {
		return nil, fmt.Errorf("linear: Hilbert2D needs a square grid, got widths %v", widths)
	}
	side := 1 << widths[0]
	o := newOrder(s, "hilbert2d")
	for pos := range o.seq {
		// The x/y swap orients the curve as in the paper's Figure 2(b), so
		// its characteristic vector is (6,2;6,1) in (dim 0; dim 1) order on
		// the 4×4 grid — the paper's (6,1;6,2) with its dimension labels.
		y, x := hilbertD2XY(side, pos)
		o.seq[pos] = o.CellIndex([]int{x, y})
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// hilbertD2XY converts a rank along the 2-D Hilbert curve of the given side
// (a power of two) into x/y coordinates.
func hilbertD2XY(side, d int) (x, y int) {
	t := d
	for s := 1; s < side; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}
