package linear

import (
	"fmt"

	"repro/internal/hierarchy"
)

// Chunked composes a two-level clustering in the style of Deshpande et
// al.'s chunked file organization (paper Section 7): the grid is cut into
// chunks along hierarchy boundaries — one chunk per block of the query
// class given by chunkLevels — an inner strategy orders the cells of each
// chunk, and an outer strategy orders the chunks themselves. The paper
// observes that replacing the chunk store's row-major chunk ordering with a
// (snaked) lattice path is a drop-in improvement; this constructor makes
// both variants expressible so they can be compared.
//
// The outer builder receives the chunk grid's schema (the dimension levels
// above chunkLevels) and the inner builder the within-chunk schema (the
// levels below). Either may produce any Order — row-major, a (snaked)
// lattice path, or a curve.
func Chunked(
	s *hierarchy.Schema,
	chunkLevels []int,
	outer func(*hierarchy.Schema) (*Order, error),
	inner func(*hierarchy.Schema) (*Order, error),
) (*Order, error) {
	if len(chunkLevels) != s.K() {
		return nil, fmt.Errorf("linear: %d chunk levels for %d dimensions", len(chunkLevels), s.K())
	}
	outerDims := make([]hierarchy.Dimension, s.K())
	innerDims := make([]hierarchy.Dimension, s.K())
	for d, dim := range s.Dims {
		lv := chunkLevels[d]
		if lv < 0 || lv > dim.Levels() {
			return nil, fmt.Errorf("linear: chunk level %d out of range [0,%d] for dimension %q",
				lv, dim.Levels(), dim.Name)
		}
		// Zero-level splits leave a degenerate fanout-1 side so both
		// sub-schemas stay valid.
		outerDims[d] = hierarchy.Dimension{Name: dim.Name, Fanouts: padOne(dim.Fanouts[lv:])}
		innerDims[d] = hierarchy.Dimension{Name: dim.Name, Fanouts: padOne(dim.Fanouts[:lv])}
	}
	outerSchema, err := hierarchy.NewSchema(outerDims...)
	if err != nil {
		return nil, err
	}
	innerSchema, err := hierarchy.NewSchema(innerDims...)
	if err != nil {
		return nil, err
	}
	oo, err := outer(outerSchema)
	if err != nil {
		return nil, fmt.Errorf("linear: outer order: %w", err)
	}
	io, err := inner(innerSchema)
	if err != nil {
		return nil, fmt.Errorf("linear: inner order: %w", err)
	}

	o := newOrder(s, fmt.Sprintf("chunked[%v outer=%s inner=%s]", chunkLevels, oo.Name, io.Name))
	k := s.K()
	chunkCoords := make([]int, k)
	cellCoords := make([]int, k)
	coords := make([]int, k)
	innerSize := innerSchema.NumCells()
	pos := 0
	for cp := 0; cp < oo.Len(); cp++ {
		oo.Coords(oo.CellAt(cp), chunkCoords)
		for ip := 0; ip < innerSize; ip++ {
			io.Coords(io.CellAt(ip), cellCoords)
			for d := 0; d < k; d++ {
				coords[d] = chunkCoords[d]*innerSchema.Dims[d].Leaves() + cellCoords[d]
			}
			o.seq[pos] = o.CellIndex(coords)
			pos++
		}
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// padOne substitutes a single fanout-1 level for an empty level list, so a
// fully-collapsed side of a chunk split remains a valid dimension.
func padOne(fanouts []int) []int {
	if len(fanouts) == 0 {
		return []int{1}
	}
	return append([]int(nil), fanouts...)
}

// RowMajorBuilder adapts RowMajor to the Chunked builder signature.
func RowMajorBuilder(dims []int) func(*hierarchy.Schema) (*Order, error) {
	return func(s *hierarchy.Schema) (*Order, error) { return RowMajor(s, dims) }
}

// SnakedAlternatingBuilder builds the snaked alternating lattice path over
// a sub-schema — a good default chunk ordering.
func SnakedAlternatingBuilder() func(*hierarchy.Schema) (*Order, error) {
	return func(s *hierarchy.Schema) (*Order, error) {
		return FromPath(s, AlternatingPath(s), true)
	}
}
