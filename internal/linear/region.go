package linear

import (
	"fmt"
	"sort"

	"repro/internal/lattice"
)

// Range is a half-open coordinate interval [Lo, Hi) in one dimension.
type Range struct {
	Lo, Hi int
}

// Region is a grid query's footprint: one coordinate range per dimension.
// Class-(c) regions are the blocks under one hierarchy node per dimension.
type Region []Range

// Size returns the number of cells in the region.
func (r Region) Size() int {
	n := 1
	for _, rng := range r {
		n *= rng.Hi - rng.Lo
	}
	return n
}

// Contains reports whether the coordinates lie inside the region.
func (r Region) Contains(coords []int) bool {
	for d, rng := range r {
		if coords[d] < rng.Lo || coords[d] >= rng.Hi {
			return false
		}
	}
	return true
}

func (r Region) String() string {
	s := ""
	for d, rng := range r {
		if d > 0 {
			s += "×"
		}
		s += fmt.Sprintf("[%d,%d)", rng.Lo, rng.Hi)
	}
	return s
}

// ClassRegion returns the region of the block of class c whose per-dimension
// node indices are given. Node indices at level c[d] run in leaf order.
func ClassRegion(o *Order, c lattice.Point, nodes []int) Region {
	r := make(Region, len(c))
	for d, lv := range c {
		lo, hi := o.schema.Dims[d].LeafRange(nodes[d], lv)
		r[d] = Range{lo, hi}
	}
	return r
}

// Positions returns the sorted disk positions of all cells of the region.
func (o *Order) Positions(r Region) []int {
	ps := make([]int, 0, r.Size())
	o.EachPosition(r, func(pos int) { ps = append(ps, pos) })
	sort.Ints(ps)
	return ps
}

// EachPosition calls f with the disk position of every cell of the region,
// in region-iteration (not disk) order. The cell index is maintained
// incrementally across the coordinate odometer (one stride add per step
// instead of a full CellIndex dot product), and nothing is allocated beyond
// the odometer, so hot paths that want position-set structure (e.g. a
// bitmap) can build it without the sorted slice Positions returns.
func (o *Order) EachPosition(r Region, f func(pos int)) {
	for _, rng := range r {
		if rng.Hi <= rng.Lo {
			return
		}
	}
	coords := make([]int, len(r))
	idx := 0
	for d := range coords {
		coords[d] = r[d].Lo
		idx += r[d].Lo * o.stride[d]
	}
	for {
		f(o.pos[idx])
		d := len(coords) - 1
		for d >= 0 {
			coords[d]++
			idx += o.stride[d]
			if coords[d] < r[d].Hi {
				break
			}
			coords[d] = r[d].Lo
			idx -= (r[d].Hi - r[d].Lo) * o.stride[d]
			d--
		}
		if d < 0 {
			break
		}
	}
}

// Fragments returns the number of contiguous disk fragments needed to cover
// the region under this order: the number of maximal runs of consecutive
// positions. This is the paper's seek-count surrogate for query cost.
func (o *Order) Fragments(r Region) int {
	ps := o.Positions(r)
	if len(ps) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(ps); i++ {
		if ps[i] != ps[i-1]+1 {
			runs++
		}
	}
	return runs
}

// EdgeTypes counts the linearization's edges by type. The type of the edge
// between consecutive cells u, v is the minimal query class whose blocks can
// contain both: per dimension, the lowest hierarchy level at which u and v
// share an ancestor (level 0 when the coordinates are equal). The result is
// indexed by the lattice's dense class index: a generalized characteristic
// vector. An edge is diagonal iff its type has two or more nonzero
// components.
func (o *Order) EdgeTypes(l *lattice.Lattice) []int64 {
	k := o.schema.K()
	cv := make([]int64, l.Size())
	a := make([]int, k)
	b := make([]int, k)
	t := make(lattice.Point, k)
	for p := 0; p+1 < len(o.seq); p++ {
		o.Coords(o.seq[p], a)
		o.Coords(o.seq[p+1], b)
		for d := 0; d < k; d++ {
			t[d] = sharedLevel(o.schema.Dims[d], a[d], b[d])
		}
		cv[l.Index(t)]++
	}
	return cv
}

// sharedLevel returns the lowest level at which the two leaf coordinates of
// the dimension share an ancestor: 0 when equal.
func sharedLevel(d interface {
	Levels() int
	Ancestor(leaf, level int) int
}, x, y int) int {
	if x == y {
		return 0
	}
	for lv := 1; lv <= d.Levels(); lv++ {
		if d.Ancestor(x, lv) == d.Ancestor(y, lv) {
			return lv
		}
	}
	panic("linear: coordinates share no ancestor; corrupt hierarchy")
}

// IsDiagonal reports whether the strategy has at least one diagonal edge
// (Section 3): an edge whose endpoints differ in two or more dimensions.
func (o *Order) IsDiagonal() bool {
	k := o.schema.K()
	a := make([]int, k)
	b := make([]int, k)
	for p := 0; p+1 < len(o.seq); p++ {
		o.Coords(o.seq[p], a)
		o.Coords(o.seq[p+1], b)
		diffs := 0
		for d := 0; d < k; d++ {
			if a[d] != b[d] {
				diffs++
			}
		}
		if diffs >= 2 {
			return true
		}
	}
	return false
}

// RenderGrid renders a 2-D order as the matrix of 1-based disk positions,
// in the style of the paper's Figures 1, 2 and 5: dimension 0 indexes rows,
// dimension 1 columns.
func (o *Order) RenderGrid() ([][]int, error) {
	if o.schema.K() != 2 {
		return nil, fmt.Errorf("linear: RenderGrid needs 2 dimensions, got %d", o.schema.K())
	}
	rows, cols := o.shape[0], o.shape[1]
	g := make([][]int, rows)
	for i := range g {
		g[i] = make([]int, cols)
		for j := range g[i] {
			g[i][j] = o.pos[o.CellIndex([]int{i, j})] + 1
		}
	}
	return g, nil
}
