package linear

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func binarySchema(n int) *hierarchy.Schema {
	return hierarchy.MustSchema(hierarchy.Binary("A", n), hierarchy.Binary("B", n))
}

// assertUnitSteps checks that every pair of consecutive cells differs by ±1
// in exactly one coordinate — the defining property of the Hilbert curve.
func assertUnitSteps(t *testing.T, o *Order) {
	t.Helper()
	k := o.Schema().K()
	a := make([]int, k)
	b := make([]int, k)
	for p := 0; p+1 < o.Len(); p++ {
		o.Coords(o.CellAt(p), a)
		o.Coords(o.CellAt(p+1), b)
		diffs, delta := 0, 0
		for d := 0; d < k; d++ {
			if a[d] != b[d] {
				diffs++
				delta = b[d] - a[d]
			}
		}
		if diffs != 1 || (delta != 1 && delta != -1) {
			t.Fatalf("%s: step %d→%d moves %v → %v", o.Name, p, p+1, a, b)
		}
	}
}

func TestHilbert4x4(t *testing.T) {
	s := binarySchema(2)
	o, err := Hilbert(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 16 {
		t.Fatalf("Len = %d", o.Len())
	}
	assertUnitSteps(t, o)
}

func TestHilbertMatchesClassic2D(t *testing.T) {
	for n := 1; n <= 4; n++ {
		s := binarySchema(n)
		skilling, err := Hilbert(s)
		if err != nil {
			t.Fatal(err)
		}
		classic, err := Hilbert2D(s)
		if err != nil {
			t.Fatal(err)
		}
		assertUnitSteps(t, skilling)
		assertUnitSteps(t, classic)
		// The two algorithms may differ by a reflection; both must be valid
		// Hilbert curves. Compare their characteristic vectors instead of
		// cell orders: reflections preserve edge types.
		l := lattice.New(s)
		cvS := skilling.EdgeTypes(l)
		cvC := classic.EdgeTypes(l)
		for i := range cvS {
			if cvS[i] != cvC[i] {
				// Allow a transpose: swap the two dimensions' types.
				p := l.PointAt(i)
				j := l.Index(lattice.Point{p[1], p[0]})
				if cvS[i] != cvC[j] {
					t.Fatalf("n=%d: CVs differ beyond transpose at type %v: %d vs %d", n, p, cvS[i], cvC[i])
				}
			}
		}
	}
}

func TestHilbertCVMatchesPaper(t *testing.T) {
	// Section 3: CV(H²_d) = (6,1;6,2) on the 4×4 grid — six level-1 edges in
	// each dimension, and (1, 2) level-2 edges split between them, zero
	// diagonal.
	s := binarySchema(2)
	o, err := Hilbert2D(s)
	if err != nil {
		t.Fatal(err)
	}
	l := lattice.New(s)
	cv := o.EdgeTypes(l)
	get := func(i, j int) int64 { return cv[l.Index(lattice.Point{i, j})] }
	a1, a2 := get(1, 0), get(2, 0)
	b1, b2 := get(0, 1), get(0, 2)
	if a1 != 6 || b1 != 6 {
		t.Errorf("level-1 edges = (%d, %d), want (6, 6)", a1, b1)
	}
	if !(a2 == 1 && b2 == 2) && !(a2 == 2 && b2 == 1) {
		t.Errorf("level-2 edges = (%d, %d), want {1, 2}", a2, b2)
	}
	if o.IsDiagonal() {
		t.Error("Hilbert curve should be non-diagonal")
	}
}

func TestHilbert3D(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Binary("x", 2),
		hierarchy.Binary("y", 2),
		hierarchy.Binary("z", 2),
	)
	o, err := Hilbert(s)
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 64 {
		t.Fatalf("Len = %d, want 64", o.Len())
	}
	assertUnitSteps(t, o)
}

func TestHilbertRejectsNonCube(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("x", 2), hierarchy.Binary("y", 1))
	if _, err := Hilbert(s); err == nil {
		t.Error("Hilbert on non-cube should fail")
	}
	s2 := hierarchy.MustSchema(hierarchy.Uniform("x", 1, 3), hierarchy.Uniform("y", 1, 3))
	if _, err := Hilbert(s2); err == nil {
		t.Error("Hilbert on non-power-of-two should fail")
	}
}

func TestZOrderMatchesAlternatingPath(t *testing.T) {
	// On binary hierarchies the Z-curve equals the unsnaked alternating
	// lattice path (bit interleaving = level-by-level loop nesting).
	for n := 1; n <= 3; n++ {
		s := binarySchema(n)
		z, err := ZOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		alt, err := FromPath(s, AlternatingPath(s), false)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < z.Len(); p++ {
			if z.CellAt(p) != alt.CellAt(p) {
				t.Fatalf("n=%d: Z and alternating path diverge at position %d: %d vs %d",
					n, p, z.CellAt(p), alt.CellAt(p))
			}
		}
	}
}

func TestGrayOrderMatchesSnakedAlternatingPath(t *testing.T) {
	// On binary hierarchies the Gray-code curve equals the snaked
	// alternating lattice path: both are reflected enumerations of the
	// interleaved digits.
	for n := 1; n <= 3; n++ {
		s := binarySchema(n)
		g, err := GrayOrder(s)
		if err != nil {
			t.Fatal(err)
		}
		alt, err := FromPath(s, AlternatingPath(s), true)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < g.Len(); p++ {
			if g.CellAt(p) != alt.CellAt(p) {
				t.Fatalf("n=%d: Gray and snaked alternating path diverge at position %d", n, p)
			}
		}
		// Gray steps flip one interleaved bit: one coordinate changes (by a
		// power of two), so the curve is non-diagonal but not unit-step.
		if g.IsDiagonal() {
			t.Fatalf("n=%d: Gray curve should be non-diagonal", n)
		}
	}
}

func TestZOrder4x4(t *testing.T) {
	s := binarySchema(2)
	o, err := ZOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := o.RenderGrid()
	want := [][]int{
		{1, 2, 5, 6},
		{3, 4, 7, 8},
		{9, 10, 13, 14},
		{11, 12, 15, 16},
	}
	for i := range want {
		for j := range want[i] {
			if g[i][j] != want[i][j] {
				t.Fatalf("Z grid = %v, want %v", g, want)
			}
		}
	}
}

func TestUnequalWidthsZAndGray(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("x", 3), hierarchy.Binary("y", 1))
	z, err := ZOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	if z.Len() != 16 {
		t.Fatalf("Len = %d, want 16", z.Len())
	}
	g, err := GrayOrder(s)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsDiagonal() {
		t.Error("Gray curve should be non-diagonal")
	}
}
