// Package linear materializes clustering strategies as linearizations of
// the k-dimensional cell grid of a star schema: lattice-path orders (snaked
// and unsnaked), the row-major family, and the classical space-filling
// curves the paper compares against (Hilbert, Z, Gray-code).
//
// A linearization assigns every grid cell a distinct disk position. The
// cost machinery only ever needs two things from it: the number of
// contiguous fragments covering a query region, and the edge-type counts
// (characteristic vector) of consecutive-cell transitions.
package linear

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hierarchy"
)

// Order is a linearization of the cells of a schema's grid. Cells are
// indexed in mixed radix over the dimensions' leaf coordinates, dimension 0
// slowest; positions are disk order.
type Order struct {
	Name   string
	schema *hierarchy.Schema
	shape  []int
	stride []int // cell-index strides per dimension
	seq    []int // seq[pos] = cell at disk position pos
	pos    []int // pos[cell] = disk position of cell
}

// newOrder allocates an order for the schema with the given name; seq must
// be filled by the caller via fill.
func newOrder(s *hierarchy.Schema, name string) *Order {
	shape := s.LeafCounts()
	stride := make([]int, len(shape))
	n := 1
	for d := len(shape) - 1; d >= 0; d-- {
		stride[d] = n
		n *= shape[d]
	}
	return &Order{
		Name:   name,
		schema: s,
		shape:  shape,
		stride: stride,
		seq:    make([]int, n),
		pos:    make([]int, n),
	}
}

// fill completes the inverse index and validates that seq is a permutation.
func (o *Order) fill() error {
	for i := range o.pos {
		o.pos[i] = -1
	}
	for p, c := range o.seq {
		if c < 0 || c >= len(o.seq) {
			return fmt.Errorf("linear: order %q places invalid cell %d at position %d", o.Name, c, p)
		}
		if o.pos[c] != -1 {
			return fmt.Errorf("linear: order %q visits cell %d twice", o.Name, c)
		}
		o.pos[c] = p
	}
	return nil
}

// Schema returns the schema of the grid.
func (o *Order) Schema() *hierarchy.Schema { return o.schema }

// Len returns the number of cells.
func (o *Order) Len() int { return len(o.seq) }

// Shape returns the per-dimension leaf counts.
func (o *Order) Shape() []int { return append([]int(nil), o.shape...) }

// CellAt returns the cell stored at disk position p.
func (o *Order) CellAt(p int) int { return o.seq[p] }

// PosOf returns the disk position of the given cell.
func (o *Order) PosOf(cell int) int { return o.pos[cell] }

// CellIndex returns the cell index of the given per-dimension coordinates.
func (o *Order) CellIndex(coords []int) int {
	idx := 0
	for d, c := range coords {
		idx += c * o.stride[d]
	}
	return idx
}

// Coords decodes a cell index into per-dimension coordinates, writing into
// dst (which must have length k) and returning it.
func (o *Order) Coords(cell int, dst []int) []int {
	for d := range dst {
		dst[d] = cell / o.stride[d]
		cell %= o.stride[d]
	}
	return dst
}

// loop describes one loop of a lattice-path linearization, innermost first.
type loop struct {
	dim    int // dimension stepped
	fanout int // number of iterations
	place  int // coordinate contribution of one iteration step
}

// pathLoops compiles a lattice path into its loop nest.
func pathLoops(s *hierarchy.Schema, p *core.Path) []loop {
	steps := p.Steps()
	loops := make([]loop, len(steps))
	level := make([]int, s.K()) // current level per dimension
	for i, d := range steps {
		dim := s.Dims[d]
		loops[i] = loop{
			dim:    d,
			fanout: dim.Fanout(level[d] + 1),
			place:  dim.BlockSize(level[d]),
		}
		level[d]++
	}
	return loops
}

// FromPath materializes the clustering strategy of a monotone lattice path.
// With snaked=false, the loops run in plain mixed-radix order (each wrap of
// an inner loop is a diagonal jump). With snaked=true, the direction of each
// loop index reverses on every traversal (Definition 5), which is exactly a
// reflected mixed-radix enumeration: every consecutive pair of cells then
// differs in a single dimension, so the snaked strategy is non-diagonal.
func FromPath(s *hierarchy.Schema, p *core.Path, snaked bool) (*Order, error) {
	name := "path" + p.String()
	if snaked {
		name = "snaked-" + name
	}
	o := newOrder(s, name)
	loops := pathLoops(s, p)
	// prefix[i] = product of fanouts of loops 0..i−1 (cells per full run of
	// the loops inside loop i).
	prefix := make([]int, len(loops)+1)
	prefix[0] = 1
	for i, lp := range loops {
		prefix[i+1] = prefix[i] * lp.fanout
	}
	if prefix[len(loops)] != o.Len() {
		return nil, fmt.Errorf("linear: path %v covers %d of %d cells", p, prefix[len(loops)], o.Len())
	}
	coords := make([]int, s.K())
	for pos := range o.seq {
		for d := range coords {
			coords[d] = 0
		}
		for i := len(loops) - 1; i >= 0; i-- {
			digit := pos / prefix[i] % loops[i].fanout
			if snaked && (pos/prefix[i+1])%2 == 1 {
				digit = loops[i].fanout - 1 - digit
			}
			coords[loops[i].dim] += digit * loops[i].place
		}
		o.seq[pos] = o.CellIndex(coords)
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	return o, nil
}

// RowMajor materializes the row-major order with the given outer-to-inner
// dimension nesting (dims[len−1] varies fastest).
func RowMajor(s *hierarchy.Schema, dims []int) (*Order, error) {
	l := latticeOf(s)
	p, err := core.RowMajor(l, dims)
	if err != nil {
		return nil, err
	}
	o, err := FromPath(s, p, false)
	if err != nil {
		return nil, err
	}
	o.Name = fmt.Sprintf("row-major%v", dims)
	return o, nil
}

// AlternatingPath returns the lattice path that interleaves the dimensions
// level by level: it steps each dimension once per round (last dimension
// innermost, matching interleaved-bit significance) until all are exhausted.
// On binary hierarchies its unsnaked strategy is the Z-curve (bit
// interleaving) and its snaked strategy is the Gray-code curve.
func AlternatingPath(s *hierarchy.Schema) *core.Path {
	l := latticeOf(s)
	tops := l.Tops()
	var steps []int
	for level := 0; ; level++ {
		any := false
		for d := len(tops) - 1; d >= 0; d-- {
			if level < tops[d] {
				steps = append(steps, d)
				any = true
			}
		}
		if !any {
			break
		}
	}
	return core.MustPath(l, steps)
}
