package linear

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/workload"
)

func TestChunkedIsPermutation(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{3, 2, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{2, 5}},
	)
	for _, levels := range [][]int{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {1, 0}} {
		o, err := Chunked(s, levels, RowMajorBuilder([]int{0, 1}), RowMajorBuilder([]int{1, 0}))
		if err != nil {
			t.Fatalf("levels %v: %v", levels, err)
		}
		if o.Len() != s.NumCells() {
			t.Fatalf("levels %v: %d cells", levels, o.Len())
		}
		for c := 0; c < o.Len(); c++ {
			if o.CellAt(o.PosOf(c)) != c {
				t.Fatalf("levels %v: not a permutation at cell %d", levels, c)
			}
		}
	}
}

func TestChunkedDegenerateSplits(t *testing.T) {
	// Single-cell chunks make the outer order govern everything; a single
	// all-grid chunk makes the inner order govern everything.
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{2, 3}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{4, 2}},
	)
	plain, err := RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cellChunks, err := Chunked(s, []int{0, 0}, RowMajorBuilder([]int{0, 1}), RowMajorBuilder([]int{1, 0}))
	if err != nil {
		t.Fatal(err)
	}
	oneChunk, err := Chunked(s, []int{2, 2}, RowMajorBuilder([]int{1, 0}), RowMajorBuilder([]int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < plain.Len(); p++ {
		if cellChunks.CellAt(p) != plain.CellAt(p) {
			t.Fatalf("cell-chunked diverges at position %d: %d vs %d", p, cellChunks.CellAt(p), plain.CellAt(p))
		}
		if oneChunk.CellAt(p) != plain.CellAt(p) {
			t.Fatalf("one-chunk diverges at position %d: %d vs %d", p, oneChunk.CellAt(p), plain.CellAt(p))
		}
	}
}

func TestChunkedQuadrantEqualsP2(t *testing.T) {
	// 2×2 chunks ordered row-major with row-major insides reproduce the
	// quadrant strategy P2 of Figure 2(a).
	s := exampleSchema()
	l := lattice.New(s)
	chunked, err := Chunked(s, []int{1, 1}, RowMajorBuilder([]int{0, 1}), RowMajorBuilder([]int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := FromPath(s, core.MustPath(l, []int{1, 0, 1, 0}), false)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < p2.Len(); p++ {
		if chunked.CellAt(p) != p2.CellAt(p) {
			t.Fatalf("diverges at position %d", p)
		}
	}
}

func TestChunkedErrors(t *testing.T) {
	s := exampleSchema()
	if _, err := Chunked(s, []int{1}, RowMajorBuilder([]int{0, 1}), RowMajorBuilder([]int{0, 1})); err == nil {
		t.Error("wrong chunk-level count should fail")
	}
	if _, err := Chunked(s, []int{3, 1}, RowMajorBuilder([]int{0, 1}), RowMajorBuilder([]int{0, 1})); err == nil {
		t.Error("out-of-range chunk level should fail")
	}
	bad := func(*hierarchy.Schema) (*Order, error) { return nil, errBoom }
	if _, err := Chunked(s, []int{1, 1}, bad, RowMajorBuilder([]int{0, 1})); err == nil {
		t.Error("outer builder error should propagate")
	}
	if _, err := Chunked(s, []int{1, 1}, RowMajorBuilder([]int{0, 1}), bad); err == nil {
		t.Error("inner builder error should propagate")
	}
}

var errBoom = &chunkedTestError{}

type chunkedTestError struct{}

func (*chunkedTestError) Error() string { return "boom" }

// TestOptimizedChunkOrderingImprovesOnRowMajor demonstrates the paper's
// Section-7 remark: the chunked file organization of Deshpande et al. is
// improved by choosing the chunk ordering with the (snaked) optimal lattice
// path for the workload instead of row major. Queries are grid queries at
// or above chunk granularity, so fragments depend only on the chunk-level
// order, where the optimal path's guarantee applies.
func TestOptimizedChunkOrderingImprovesOnRowMajor(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{4, 2, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{4, 2, 2}},
	)
	// The chunk grid: levels above the chunk boundary.
	chunkSchema := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{2, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{2, 2}},
	)
	chunkLat := lattice.New(chunkSchema)
	// A workload of chunk-level grid queries favoring whole-x scans — the
	// access pattern a y-inner row-major chunk order serves worst.
	w := workload.UniformOver(chunkLat,
		lattice.Point{2, 0}, lattice.Point{1, 0}, lattice.Point{2, 1})
	opt, err := core.Optimal(w)
	if err != nil {
		t.Fatal(err)
	}

	inner := RowMajorBuilder([]int{0, 1}) // Deshpande-style row-major chunks
	rowChunks, err := Chunked(s, []int{1, 1}, RowMajorBuilder([]int{0, 1}), inner)
	if err != nil {
		t.Fatal(err)
	}
	optChunks, err := Chunked(s, []int{1, 1}, func(cs *hierarchy.Schema) (*Order, error) {
		return FromPath(cs, opt.Path, true)
	}, inner)
	if err != nil {
		t.Fatal(err)
	}

	// Expected fragments for a chunk-aligned grid query of chunk-class c:
	// enumerate every block, lifted to cell coordinates (chunk side 4).
	expected := func(o *Order) float64 {
		total := 0.0
		chunkLat.Points(func(c lattice.Point) {
			p := w.Prob(c)
			if p == 0 {
				return
			}
			frag, blocks := 0, 0
			for nx := 0; nx < chunkSchema.Dims[0].NodesAt(c[0]); nx++ {
				for ny := 0; ny < chunkSchema.Dims[1].NodesAt(c[1]); ny++ {
					xlo, xhi := chunkSchema.Dims[0].LeafRange(nx, c[0])
					ylo, yhi := chunkSchema.Dims[1].LeafRange(ny, c[1])
					r := Region{{Lo: xlo * 4, Hi: xhi * 4}, {Lo: ylo * 4, Hi: yhi * 4}}
					frag += o.Fragments(r)
					blocks++
				}
			}
			total += p * float64(frag) / float64(blocks)
		})
		return total
	}
	fr, fo := expected(rowChunks), expected(optChunks)
	if fo >= fr {
		t.Errorf("optimized chunk ordering did not improve: %.4f vs %.4f expected fragments", fo, fr)
	}
	t.Logf("expected fragments/query: row-major chunks %.4f, optimized snaked chunks %.4f", fr, fo)
}
