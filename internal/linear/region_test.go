package linear

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func TestRegionSizeAndContains(t *testing.T) {
	r := Region{{0, 4}, {2, 3}}
	if got := r.Size(); got != 4 {
		t.Errorf("Size() = %d, want 4", got)
	}
	if !r.Contains([]int{3, 2}) {
		t.Error("Contains(3,2) = false")
	}
	if r.Contains([]int{3, 3}) || r.Contains([]int{4, 2}) {
		t.Error("Contains out-of-range point")
	}
	if got := r.String(); got != "[0,4)×[2,3)" {
		t.Errorf("String() = %q", got)
	}
}

func TestClassRegion(t *testing.T) {
	s := exampleSchema()
	o := mk(t)(RowMajor(s, []int{0, 1}))
	r := ClassRegion(o, lattice.Point{1, 2}, []int{1, 0})
	// Level-1 node 1 of A covers leaves [2,4); level-2 node 0 of B covers all.
	if r[0].Lo != 2 || r[0].Hi != 4 || r[1].Lo != 0 || r[1].Hi != 4 {
		t.Errorf("ClassRegion = %v", r)
	}
}

func TestFragmentsRowMajor(t *testing.T) {
	s := exampleSchema()
	o := mk(t)(RowMajor(s, []int{0, 1})) // B varies fastest
	cases := []struct {
		r    Region
		want int
	}{
		{Region{{0, 4}, {0, 4}}, 1}, // whole grid
		{Region{{0, 1}, {0, 4}}, 1}, // one row: contiguous
		{Region{{0, 4}, {0, 1}}, 4}, // one column: one fragment per row
		{Region{{0, 2}, {0, 2}}, 2}, // quadrant: two half-rows
		{Region{{2, 3}, {1, 3}}, 1}, // row segment
		{Region{{0, 1}, {2, 3}}, 1}, // single cell
	}
	for _, c := range cases {
		if got := o.Fragments(c.r); got != c.want {
			t.Errorf("Fragments(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

// TestFragmentsEqualCellsMinusInteriorEdges verifies the identity the whole
// cost model rests on: fragments(R) = |R| − (edges inside R), for random
// regions under assorted strategies.
func TestFragmentsEqualCellsMinusInteriorEdges(t *testing.T) {
	s := hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 3))
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(31))
	var orders []*Order
	orders = append(orders, mk(t)(RowMajor(s, []int{0, 1})))
	orders = append(orders, mk(t)(RowMajor(s, []int{1, 0})))
	orders = append(orders, mk(t)(ZOrder(s)))
	orders = append(orders, mk(t)(GrayOrder(s)))
	p := core.MustPath(l, []int{0, 1, 1, 0, 1})
	orders = append(orders, mk(t)(FromPath(s, p, false)))
	orders = append(orders, mk(t)(FromPath(s, p, true)))

	k := s.K()
	a := make([]int, k)
	b := make([]int, k)
	for _, o := range orders {
		for trial := 0; trial < 40; trial++ {
			r := make(Region, k)
			for d, n := range s.LeafCounts() {
				lo := rng.Intn(n)
				hi := lo + 1 + rng.Intn(n-lo)
				r[d] = Range{lo, hi}
			}
			inside := 0
			for pos := 0; pos+1 < o.Len(); pos++ {
				o.Coords(o.CellAt(pos), a)
				o.Coords(o.CellAt(pos+1), b)
				if r.Contains(a) && r.Contains(b) {
					inside++
				}
			}
			if got, want := o.Fragments(r), r.Size()-inside; got != want {
				t.Fatalf("%s: fragments(%v) = %d, want |R|−edges = %d", o.Name, r, got, want)
			}
		}
	}
}

func TestEdgeTypesTotals(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	for _, build := range []func() (*Order, error){
		func() (*Order, error) { return RowMajor(s, []int{0, 1}) },
		func() (*Order, error) { return Hilbert(s) },
		func() (*Order, error) { return ZOrder(s) },
	} {
		o := mk(t)(build())
		cv := o.EdgeTypes(l)
		var total int64
		for _, c := range cv {
			total += c
		}
		if total != int64(o.Len()-1) {
			t.Errorf("%s: total edges %d, want %d", o.Name, total, o.Len()-1)
		}
		if cv[l.Index(lattice.Point{0, 0})] != 0 {
			t.Errorf("%s: impossible type (0,0) has %d edges", o.Name, cv[0])
		}
	}
}

func TestEdgeTypesRowMajor(t *testing.T) {
	// Example from Section 3: CV(P1) has 8 level-1 and 4 level-2 edges in
	// the inner dimension, and 2 + 1 diagonal edges.
	s := exampleSchema()
	l := lattice.New(s)
	o := mk(t)(RowMajor(s, []int{0, 1}))
	cv := o.EdgeTypes(l)
	get := func(i, j int) int64 { return cv[l.Index(lattice.Point{i, j})] }
	if get(0, 1) != 8 || get(0, 2) != 4 {
		t.Errorf("inner-dimension edges = (%d, %d), want (8, 4)", get(0, 1), get(0, 2))
	}
	if get(1, 2) != 2 || get(2, 2) != 1 {
		t.Errorf("diagonal edges = (%d, %d), want (2, 1)", get(1, 2), get(2, 2))
	}
	if !o.IsDiagonal() {
		t.Error("row-major should be diagonal")
	}
}

func TestRenderGridRejects3D(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Binary("x", 1), hierarchy.Binary("y", 1), hierarchy.Binary("z", 1))
	o := mk(t)(RowMajor(s, []int{0, 1, 2}))
	if _, err := o.RenderGrid(); err == nil {
		t.Error("RenderGrid on 3-D order should fail")
	}
}
