package linear

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

// fuzzSchema derives a small schema from raw fuzz bytes: up to 3 dimensions
// with up to 3 levels of fanout 1–4, capped at 4096 cells.
func fuzzSchema(raw []byte) *hierarchy.Schema {
	if len(raw) == 0 {
		raw = []byte{1}
	}
	k := 1 + int(raw[0])%3
	dims := make([]hierarchy.Dimension, 0, k)
	pos := 1
	cells := 1
	for d := 0; d < k; d++ {
		levels := 1 + int(byteAt(raw, pos))%3
		pos++
		fanouts := make([]int, 0, levels)
		for i := 0; i < levels; i++ {
			f := 1 + int(byteAt(raw, pos))%4
			pos++
			if cells*f > 4096 {
				f = 1
			}
			cells *= f
			fanouts = append(fanouts, f)
		}
		dims = append(dims, hierarchy.Dimension{Name: string(rune('a' + d)), Fanouts: fanouts})
	}
	return hierarchy.MustSchema(dims...)
}

func byteAt(raw []byte, i int) byte {
	if len(raw) == 0 {
		return 0
	}
	return raw[i%len(raw)]
}

// fuzzPath derives a monotone lattice path from fuzz bytes.
func fuzzPath(l *lattice.Lattice, raw []byte, at int) *core.Path {
	tops := l.Tops()
	remaining := append([]int(nil), tops...)
	total := 0
	for _, t := range tops {
		total += t
	}
	steps := make([]int, 0, total)
	for len(steps) < total {
		d := int(byteAt(raw, at)) % l.K()
		at++
		for remaining[d] == 0 {
			d = (d + 1) % l.K()
		}
		remaining[d]--
		steps = append(steps, d)
	}
	return core.MustPath(l, steps)
}

// FuzzFromPath checks that every derived lattice-path linearization —
// snaked or not — is a permutation whose edge-type counts total N−1 and
// whose snaked variant has no diagonal edges.
func FuzzFromPath(f *testing.F) {
	f.Add([]byte{2, 2, 2, 2, 1, 0, 1, 0}, true)
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, false)
	f.Add([]byte{0}, true)
	f.Fuzz(func(t *testing.T, raw []byte, snaked bool) {
		s := fuzzSchema(raw)
		l := lattice.New(s)
		p := fuzzPath(l, raw, 7)
		o, err := FromPath(s, p, snaked)
		if err != nil {
			t.Fatalf("FromPath(%v, %v): %v", p, snaked, err)
		}
		if o.Len() != s.NumCells() {
			t.Fatalf("covers %d of %d cells", o.Len(), s.NumCells())
		}
		for c := 0; c < o.Len(); c++ {
			if o.CellAt(o.PosOf(c)) != c {
				t.Fatalf("not a permutation at cell %d", c)
			}
		}
		cv := o.EdgeTypes(l)
		var total int64
		for _, n := range cv {
			total += n
		}
		if total != int64(o.Len()-1) {
			t.Fatalf("edge total %d, want %d", total, o.Len()-1)
		}
		if snaked && o.IsDiagonal() {
			t.Fatalf("snaked path %v is diagonal", p)
		}
	})
}

// FuzzCurves checks the space-filling curves on fuzz-chosen power-of-two
// grids: valid permutations, correct edge totals, Hilbert unit steps.
func FuzzCurves(f *testing.F) {
	f.Add(uint8(2), uint8(2))
	f.Add(uint8(1), uint8(3))
	f.Add(uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, wa, wb uint8) {
		na := 1 + int(wa)%3
		nb := 1 + int(wb)%3
		s := hierarchy.MustSchema(hierarchy.Binary("A", na), hierarchy.Binary("B", nb))
		check := func(o *Order, err error) *Order {
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < o.Len(); c++ {
				if o.CellAt(o.PosOf(c)) != c {
					t.Fatalf("%s: not a permutation", o.Name)
				}
			}
			return o
		}
		check(ZOrder(s))
		g := check(GrayOrder(s))
		if g.IsDiagonal() {
			t.Fatal("gray order is diagonal")
		}
		if na == nb {
			h := check(Hilbert(s))
			k := s.K()
			a := make([]int, k)
			b := make([]int, k)
			for p := 0; p+1 < h.Len(); p++ {
				h.Coords(h.CellAt(p), a)
				h.Coords(h.CellAt(p+1), b)
				diff := 0
				for d := 0; d < k; d++ {
					delta := a[d] - b[d]
					if delta != 0 {
						diff++
						if delta != 1 && delta != -1 {
							t.Fatalf("hilbert non-unit step at %d", p)
						}
					}
				}
				if diff != 1 {
					t.Fatalf("hilbert step changes %d coords at %d", diff, p)
				}
			}
		}
	})
}
