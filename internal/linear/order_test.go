package linear

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func exampleSchema() *hierarchy.Schema {
	return hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2))
}

// mk returns a helper that unwraps (*Order, error) pairs, failing the test
// on error.
func mk(t *testing.T) func(*Order, error) *Order {
	return func(o *Order, err error) *Order {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
}

// TestFigure1RowMajor reproduces Figure 1: strategy P1 is the plain
// row-major order 1..16.
func TestFigure1RowMajor(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	p1 := core.MustPath(l, []int{1, 1, 0, 0})
	o := mk(t)(FromPath(s, p1, false))
	g, err := o.RenderGrid()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
		{13, 14, 15, 16},
	}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("P1 grid = %v, want %v", g, want)
	}
}

// TestFigure2aQuadrant reproduces Figure 2(a): strategy P2 orders 2×2
// subgrids row-major and the subgrids themselves row-major.
func TestFigure2aQuadrant(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	p2 := core.MustPath(l, []int{1, 0, 1, 0})
	o := mk(t)(FromPath(s, p2, false))
	g, err := o.RenderGrid()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 2, 5, 6},
		{3, 4, 7, 8},
		{9, 10, 13, 14},
		{11, 12, 15, 16},
	}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("P2 grid = %v, want %v", g, want)
	}
}

// TestFigure5SnakedP1 reproduces Figure 5(a): snaking P1 reverses alternate
// blocks at every loop level, yielding the reflected (boustrophedon) order.
func TestFigure5SnakedP1(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	p1 := core.MustPath(l, []int{1, 1, 0, 0})
	o := mk(t)(FromPath(s, p1, true))
	g, err := o.RenderGrid()
	if err != nil {
		t.Fatal(err)
	}
	// Reversing alternate (0,1)-pairs, (0,2)-rows and (1,2)-half-grids of
	// the row-major order gives:
	want := [][]int{
		{1, 2, 4, 3},
		{8, 7, 5, 6},
		{16, 15, 13, 14},
		{9, 10, 12, 11},
	}
	if !reflect.DeepEqual(g, want) {
		t.Errorf("snaked P1 grid = %v, want %v", g, want)
	}
}

func TestSnakedOrdersAreNonDiagonal(t *testing.T) {
	s := exampleSchema()
	l := lattice.New(s)
	core.EnumeratePaths(l, func(p *core.Path) bool {
		steps := append([]int(nil), p.Steps()...)
		pp := core.MustPath(l, steps)
		plain := mk(t)(FromPath(s, pp, false))
		snaked := mk(t)(FromPath(s, pp, true))
		if !plain.IsDiagonal() {
			t.Errorf("unsnaked path %v should be diagonal", pp)
		}
		if snaked.IsDiagonal() {
			t.Errorf("snaked path %v should be non-diagonal", pp)
		}
		return true
	})
}

func TestFromPathVisitsAllCellsOnce(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{3, 2}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{2, 5}},
		hierarchy.Dimension{Name: "z", Fanouts: []int{4}},
	)
	l := lattice.New(s)
	rng := rand.New(rand.NewSource(17))
	core.EnumeratePaths(l, func(p *core.Path) bool {
		if rng.Intn(4) != 0 { // sample a quarter of the 30 paths
			return true
		}
		for _, snaked := range []bool{false, true} {
			o, err := FromPath(s, p, snaked)
			if err != nil {
				t.Fatalf("path %v snaked=%v: %v", p, snaked, err)
			}
			if o.Len() != s.NumCells() {
				t.Fatalf("order covers %d of %d cells", o.Len(), s.NumCells())
			}
			for c := 0; c < o.Len(); c++ {
				if o.CellAt(o.PosOf(c)) != c {
					t.Fatalf("PosOf/CellAt mismatch at cell %d", c)
				}
			}
		}
		return true
	})
}

func TestRowMajorNesting(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Uniform("x", 1, 2),
		hierarchy.Uniform("y", 1, 3),
	)
	// Outer x, inner y: y varies fastest.
	o, err := RowMajor(s, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := []int{0, 1, 2, 3, 4, 5} // cell index = x*3 + y
	for p, want := range wantSeq {
		if got := o.CellAt(p); got != want {
			t.Errorf("CellAt(%d) = %d, want %d", p, got, want)
		}
	}
	// Outer y, inner x: x varies fastest.
	o2, err := RowMajor(s, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	wantSeq2 := []int{0, 3, 1, 4, 2, 5}
	for p, want := range wantSeq2 {
		if got := o2.CellAt(p); got != want {
			t.Errorf("transposed CellAt(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestAlternatingPath(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Uniform("x", 3, 2),
		hierarchy.Uniform("y", 1, 2),
		hierarchy.Uniform("z", 2, 2),
	)
	p := AlternatingPath(s)
	want := []int{2, 1, 0, 2, 0, 0}
	if !reflect.DeepEqual(p.Steps(), want) {
		t.Errorf("AlternatingPath steps = %v, want %v", p.Steps(), want)
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	s := hierarchy.MustSchema(
		hierarchy.Dimension{Name: "x", Fanouts: []int{5}},
		hierarchy.Dimension{Name: "y", Fanouts: []int{7}},
	)
	o := mk(t)(RowMajor(s, []int{0, 1}))
	coords := make([]int, 2)
	for c := 0; c < o.Len(); c++ {
		o.Coords(c, coords)
		if got := o.CellIndex(coords); got != c {
			t.Errorf("CellIndex(Coords(%d)) = %d", c, got)
		}
	}
}
