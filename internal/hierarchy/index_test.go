package hierarchy

import (
	"strings"
	"testing"
)

func TestIndexFind(t *testing.T) {
	idx, err := figure1Tree().Index()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Name() != "jeans" {
		t.Errorf("Name = %q", idx.Name())
	}
	if idx.Depth() != 2 {
		t.Errorf("Depth = %d", idx.Depth())
	}
	ref, err := idx.Find("levi's")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Level != 1 || ref.Index != 0 {
		t.Errorf("Find(levi's) = %+v", ref)
	}
	lo, hi, err := idx.LeafRange(ref)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 2 {
		t.Errorf("LeafRange = [%d,%d)", lo, hi)
	}
	if _, err := idx.Find("wrangler"); err == nil {
		t.Error("unknown label should fail")
	}
	root := idx.Root()
	if root.Level != 2 || root.Index != 0 {
		t.Errorf("Root = %+v", root)
	}
	n, err := idx.Node(root)
	if err != nil {
		t.Fatal(err)
	}
	if n.LeafLo != 0 || n.LeafHi != 4 {
		t.Errorf("root node = %+v", n)
	}
}

func TestIndexDummySkipping(t *testing.T) {
	tr, err := NewTree("loc", Branch("all",
		Branch("NY", Leaf("nyc"), Leaf("albany")),
		Leaf("DC"),
	))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := tr.Balance().Index()
	if err != nil {
		t.Fatal(err)
	}
	// "DC" labels both the real leaf and its dummy parent; Find returns the
	// leaf.
	ref, err := idx.Find("DC")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Level != 0 {
		t.Errorf("Find(DC) level = %d, want 0 (the real leaf)", ref.Level)
	}
}

func TestIndexAmbiguity(t *testing.T) {
	tr, err := NewTree("d", Branch("all",
		Branch("x", Leaf("x"), Leaf("y")),
		Branch("z", Leaf("w"), Leaf("v")),
	))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := tr.Index()
	if err != nil {
		t.Fatal(err)
	}
	_, err = idx.Find("x")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("Find(x) err = %v, want ambiguity", err)
	}
	if ref, err := idx.FindAt("x", 0); err != nil || ref.Level != 0 {
		t.Errorf("FindAt(x,0) = %+v, %v", ref, err)
	}
	if ref, err := idx.FindAt("x", 1); err != nil || ref.Level != 1 {
		t.Errorf("FindAt(x,1) = %+v, %v", ref, err)
	}
	if _, err := idx.FindAt("x", 5); err == nil {
		t.Error("FindAt out of range should fail")
	}
}

func TestIndexUnbalancedRejected(t *testing.T) {
	tr, err := NewTree("d", Branch("all", Branch("x", Leaf("a")), Leaf("b")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Index(); err == nil {
		t.Error("Index of unbalanced tree should fail; Balance first")
	}
}

func TestIndexNodeErrors(t *testing.T) {
	idx, err := figure1Tree().Index()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Node(TreeNodeRef{Level: 9, Index: 0}); err == nil {
		t.Error("bad level should fail")
	}
	if _, err := idx.Node(TreeNodeRef{Level: 0, Index: 99}); err == nil {
		t.Error("bad index should fail")
	}
	if _, _, err := idx.LeafRange(TreeNodeRef{Level: 9}); err == nil {
		t.Error("LeafRange of bad ref should fail")
	}
}
