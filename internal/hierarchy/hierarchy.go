// Package hierarchy models the dimensions of a star schema: balanced
// multi-level hierarchies with per-level fanouts, and the k-dimensional cell
// grid their leaf levels induce.
//
// Levels are counted from the leaves up, as in the paper: level 0 is the
// leaf level of the fact table, level ℓ is the (single) root. The fanout
// f(d, i) of dimension d at level i (1 ≤ i ≤ ℓ_d) is the average number of
// level-(i−1) children per level-i node. For uniform hierarchies the fanout
// is exact; unbalanced hierarchies are first balanced with dummy nodes (see
// Balance), after which some fanouts may be 1 or fractional averages.
package hierarchy

import (
	"errors"
	"fmt"
	"strings"
)

// Dimension describes one dimension of a star schema as a balanced hierarchy
// given by its per-level fanouts. Fanouts[i] is f(d, i+1), the fanout at
// level i+1; len(Fanouts) is the number of hierarchy levels ℓ_d. The number
// of leaves is the product of all fanouts.
//
// LevelNames, if set, names levels from the leaves up and must have
// len(Fanouts)+1 entries (one per level, including the root level).
type Dimension struct {
	Name       string
	Fanouts    []int
	LevelNames []string
}

// Uniform returns a dimension with levels hierarchy levels, each of the
// given fanout.
func Uniform(name string, levels, fanout int) Dimension {
	f := make([]int, levels)
	for i := range f {
		f[i] = fanout
	}
	return Dimension{Name: name, Fanouts: f}
}

// Binary returns a dimension with a complete binary hierarchy of the given
// number of levels, the representative case analyzed in Section 5 of the
// paper.
func Binary(name string, levels int) Dimension {
	return Uniform(name, levels, 2)
}

// Levels returns ℓ_d, the number of hierarchy levels above the leaves.
func (d Dimension) Levels() int { return len(d.Fanouts) }

// Fanout returns f(d, i), the fanout at level i, for 1 ≤ i ≤ Levels().
func (d Dimension) Fanout(i int) int {
	if i < 1 || i > len(d.Fanouts) {
		panic(fmt.Sprintf("hierarchy: fanout level %d out of range [1,%d] for dimension %q", i, len(d.Fanouts), d.Name))
	}
	return d.Fanouts[i-1]
}

// Leaves returns the number of leaf values of the dimension: the product of
// all fanouts.
func (d Dimension) Leaves() int {
	n := 1
	for _, f := range d.Fanouts {
		n *= f
	}
	return n
}

// NodesAt returns the number of hierarchy nodes at the given level
// (0 ≤ level ≤ Levels()). Level 0 has Leaves() nodes; level Levels() has 1.
func (d Dimension) NodesAt(level int) int {
	if level < 0 || level > len(d.Fanouts) {
		panic(fmt.Sprintf("hierarchy: level %d out of range [0,%d] for dimension %q", level, len(d.Fanouts), d.Name))
	}
	n := 1
	for _, f := range d.Fanouts[level:] {
		n *= f
	}
	return n
}

// BlockSize returns the number of leaves under one node at the given level:
// the product of fanouts at levels 1..level.
func (d Dimension) BlockSize(level int) int {
	if level < 0 || level > len(d.Fanouts) {
		panic(fmt.Sprintf("hierarchy: level %d out of range [0,%d] for dimension %q", level, len(d.Fanouts), d.Name))
	}
	n := 1
	for _, f := range d.Fanouts[:level] {
		n *= f
	}
	return n
}

// LevelName returns the name of the given level if LevelNames is set, and a
// generic "L<level>" name otherwise.
func (d Dimension) LevelName(level int) string {
	if level >= 0 && level < len(d.LevelNames) {
		return d.LevelNames[level]
	}
	return fmt.Sprintf("L%d", level)
}

// Ancestor returns the index of the level-`level` node containing the given
// leaf. Node indices at each level run from 0 to NodesAt(level)−1 in leaf
// order.
func (d Dimension) Ancestor(leaf, level int) int {
	return leaf / d.BlockSize(level)
}

// LeafRange returns the half-open range [lo, hi) of leaves under node
// `node` at the given level.
func (d Dimension) LeafRange(node, level int) (lo, hi int) {
	b := d.BlockSize(level)
	return node * b, (node + 1) * b
}

// Validate reports an error if the dimension is malformed: no levels, a
// non-positive fanout, or a LevelNames slice of the wrong length.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return errors.New("hierarchy: dimension has empty name")
	}
	if len(d.Fanouts) == 0 {
		return fmt.Errorf("hierarchy: dimension %q has no levels", d.Name)
	}
	for i, f := range d.Fanouts {
		if f < 1 {
			return fmt.Errorf("hierarchy: dimension %q has fanout %d at level %d; fanouts must be ≥ 1", d.Name, f, i+1)
		}
	}
	if d.LevelNames != nil && len(d.LevelNames) != len(d.Fanouts)+1 {
		return fmt.Errorf("hierarchy: dimension %q has %d level names for %d levels (want %d)",
			d.Name, len(d.LevelNames), len(d.Fanouts), len(d.Fanouts)+1)
	}
	return nil
}

func (d Dimension) String() string {
	parts := make([]string, len(d.Fanouts))
	for i, f := range d.Fanouts {
		parts[i] = fmt.Sprint(f)
	}
	return fmt.Sprintf("%s[%s]", d.Name, strings.Join(parts, "×"))
}

// Schema is a k-dimensional star schema: the ordered list of its dimensions.
// The fact table is viewed as the grid of cells formed by the cross product
// of the dimensions' leaf values.
type Schema struct {
	Dims []Dimension
}

// NewSchema builds a schema from the given dimensions and validates it.
func NewSchema(dims ...Dimension) (*Schema, error) {
	s := &Schema{Dims: dims}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema, panicking on error. Intended for tests, examples
// and literal schemas known to be valid.
func MustSchema(dims ...Dimension) *Schema {
	s, err := NewSchema(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate reports an error if the schema has no dimensions, duplicate
// dimension names, or an invalid dimension.
func (s *Schema) Validate() error {
	if len(s.Dims) == 0 {
		return errors.New("hierarchy: schema has no dimensions")
	}
	seen := make(map[string]bool, len(s.Dims))
	for _, d := range s.Dims {
		if err := d.Validate(); err != nil {
			return err
		}
		if seen[d.Name] {
			return fmt.Errorf("hierarchy: duplicate dimension name %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// K returns the number of dimensions.
func (s *Schema) K() int { return len(s.Dims) }

// NumCells returns the total number of grid cells: the product of the
// dimensions' leaf counts.
func (s *Schema) NumCells() int {
	n := 1
	for _, d := range s.Dims {
		n *= d.Leaves()
	}
	return n
}

// LeafCounts returns the per-dimension leaf counts (the grid's shape).
func (s *Schema) LeafCounts() []int {
	shape := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		shape[i] = d.Leaves()
	}
	return shape
}

// TopLevels returns the per-dimension top level numbers ℓ_d (the ⊤ element
// of the query-class lattice).
func (s *Schema) TopLevels() []int {
	top := make([]int, len(s.Dims))
	for i, d := range s.Dims {
		top[i] = d.Levels()
	}
	return top
}

// DimIndex returns the index of the dimension with the given name, or −1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// BlockSize returns the number of cells in one block of the query class
// given by the per-dimension levels.
func (s *Schema) BlockSize(levels []int) int {
	n := 1
	for d, lv := range levels {
		n *= s.Dims[d].BlockSize(lv)
	}
	return n
}

// NumBlocks returns the number of blocks (equivalently, the number of
// distinct grid queries) of the query class given by the per-dimension
// levels.
func (s *Schema) NumBlocks(levels []int) int {
	n := 1
	for d, lv := range levels {
		n *= s.Dims[d].NodesAt(lv)
	}
	return n
}

func (s *Schema) String() string {
	parts := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		parts[i] = d.String()
	}
	return strings.Join(parts, " × ")
}
