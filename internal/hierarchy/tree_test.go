package hierarchy

import (
	"strings"
	"testing"
)

// figure1Tree builds the jeans hierarchy of Figure 1: two types, each with
// two gender variants.
func figure1Tree() *Tree {
	t, err := NewTree("jeans", Branch("all",
		Branch("levi's", Leaf("men's levi's"), Leaf("women's levi's")),
		Branch("gitano", Leaf("men's gitano"), Leaf("women's gitano")),
	))
	if err != nil {
		panic(err)
	}
	return t
}

func TestTreeDepthAndBalance(t *testing.T) {
	tr := figure1Tree()
	if got := tr.Depth(); got != 2 {
		t.Errorf("Depth() = %d, want 2", got)
	}
	if !tr.IsBalanced() {
		t.Error("figure-1 tree should be balanced")
	}
	if got := tr.Balance(); got != tr {
		t.Error("Balance() of a balanced tree should return it unchanged")
	}
}

func TestLevelize(t *testing.T) {
	tr := figure1Tree()
	levels, err := tr.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("Levelize() gave %d levels, want 3", len(levels))
	}
	if got := len(levels[0]); got != 4 {
		t.Errorf("level 0 has %d nodes, want 4", got)
	}
	if got := len(levels[1]); got != 2 {
		t.Errorf("level 1 has %d nodes, want 2", got)
	}
	if got := len(levels[2]); got != 1 {
		t.Errorf("level 2 has %d nodes, want 1", got)
	}
	// Leaf ranges must tile [0, 4) in order at each level.
	for lv, nodes := range levels {
		next := 0
		for _, n := range nodes {
			if n.LeafLo != next {
				t.Errorf("level %d node %q starts at %d, want %d", lv, n.Label, n.LeafLo, next)
			}
			next = n.LeafHi
		}
		if next != 4 {
			t.Errorf("level %d covers %d leaves, want 4", lv, next)
		}
	}
	if levels[1][0].Label != "levi's" || levels[1][1].Label != "gitano" {
		t.Errorf("level 1 labels = %q, %q", levels[1][0].Label, levels[1][1].Label)
	}
}

func TestUnbalancedTreeBalancing(t *testing.T) {
	// A location hierarchy where one state has cities and another is
	// recorded directly at leaf granularity.
	tr, err := NewTree("location", Branch("all",
		Branch("NY", Leaf("nyc"), Leaf("albany")),
		Leaf("DC"), // no city level
	))
	if err != nil {
		t.Fatal(err)
	}
	if tr.IsBalanced() {
		t.Fatal("tree should be unbalanced")
	}
	if _, err := tr.Levelize(); err == nil {
		t.Error("Levelize() of unbalanced tree should fail")
	}
	bal := tr.Balance()
	if !bal.IsBalanced() {
		t.Fatal("Balance() result is not balanced")
	}
	if bal.Depth() != 2 {
		t.Errorf("balanced Depth() = %d, want 2", bal.Depth())
	}
	levels, err := bal.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(levels[0]); got != 3 {
		t.Errorf("level 0 has %d nodes, want 3", got)
	}
	// The DC leaf must now sit under a dummy city node.
	var dummies int
	for _, n := range levels[1] {
		if n.Dummy {
			dummies++
			if n.Label != "DC" {
				t.Errorf("dummy node label = %q, want DC", n.Label)
			}
		}
	}
	if dummies != 1 {
		t.Errorf("found %d dummy nodes at level 1, want 1", dummies)
	}
	if !strings.Contains(bal.String(), "(dummy)") {
		t.Error("String() should mark dummy nodes")
	}
}

func TestTreeDimensionAverageFanouts(t *testing.T) {
	tr := figure1Tree()
	dim, avg, err := tr.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if dim.Levels() != 2 {
		t.Errorf("Levels() = %d, want 2", dim.Levels())
	}
	if avg[0] != 2 || avg[1] != 2 {
		t.Errorf("average fanouts = %v, want [2 2]", avg)
	}
	if dim.Fanout(1) != 2 || dim.Fanout(2) != 2 {
		t.Errorf("integer fanouts = %v, want [2 2]", dim.Fanouts)
	}
}

func TestTreeDimensionRaggedFanouts(t *testing.T) {
	tr, err := NewTree("d", Branch("all",
		Branch("p", Leaf("a"), Leaf("b"), Leaf("c")),
		Branch("q", Leaf("d")),
	))
	if err != nil {
		t.Fatal(err)
	}
	_, avg, err := tr.Dimension()
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 2 { // 4 leaves / 2 parents
		t.Errorf("avg fanout level 1 = %v, want 2", avg[0])
	}
	if avg[1] != 2 { // 2 parents / 1 root
		t.Errorf("avg fanout level 2 = %v, want 2", avg[1])
	}
}

func TestNewTreeNilRoot(t *testing.T) {
	if _, err := NewTree("x", nil); err == nil {
		t.Error("NewTree(nil) should fail")
	}
}

func TestDeepDummyChains(t *testing.T) {
	// A leaf three levels shallower than the deepest path gets a chain of
	// three dummies.
	tr, err := NewTree("d", Branch("all",
		Branch("x", Branch("y", Branch("z", Leaf("deep")))),
		Leaf("shallow"),
	))
	if err != nil {
		t.Fatal(err)
	}
	bal := tr.Balance()
	if bal.Depth() != 4 || !bal.IsBalanced() {
		t.Fatalf("balanced depth = %d, balanced = %v", bal.Depth(), bal.IsBalanced())
	}
	levels, err := bal.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	for lv := 1; lv <= 3; lv++ {
		dummies := 0
		for _, n := range levels[lv] {
			if n.Dummy {
				dummies++
			}
		}
		if dummies != 1 {
			t.Errorf("level %d has %d dummies, want 1", lv, dummies)
		}
	}
}
