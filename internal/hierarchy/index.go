package hierarchy

import (
	"fmt"
	"strings"
)

// Index resolves hierarchy node labels to levels and leaf ranges, turning
// value-level query predicates ("state = NY", "type = levi's") into the
// grid-query footprints the cost machinery works with. Build one per
// dimension from its explicit Tree.
type Index struct {
	name   string
	levels [][]LevelNode
	// byLabel[label] lists every node carrying the label, bottom level
	// first. Labels may legitimately repeat across levels (Balance copies a
	// leaf's label onto its dummy chain) or even within one.
	byLabel map[string][]TreeNodeRef
}

// Index builds the label index of a balanced tree (call Balance first for
// unbalanced hierarchies).
func (t *Tree) Index() (*Index, error) {
	levels, err := t.Levelize()
	if err != nil {
		return nil, err
	}
	idx := &Index{name: t.Name, levels: levels, byLabel: make(map[string][]TreeNodeRef)}
	for lv, nodes := range levels {
		for i, n := range nodes {
			idx.byLabel[n.Label] = append(idx.byLabel[n.Label], TreeNodeRef{Level: lv, Index: i})
		}
	}
	return idx, nil
}

// Name returns the dimension name.
func (idx *Index) Name() string { return idx.name }

// Depth returns the number of hierarchy levels above the leaves.
func (idx *Index) Depth() int { return len(idx.levels) - 1 }

// Node returns the level node a reference points at.
func (idx *Index) Node(ref TreeNodeRef) (LevelNode, error) {
	if ref.Level < 0 || ref.Level >= len(idx.levels) {
		return LevelNode{}, fmt.Errorf("hierarchy: level %d out of range for %q", ref.Level, idx.name)
	}
	if ref.Index < 0 || ref.Index >= len(idx.levels[ref.Level]) {
		return LevelNode{}, fmt.Errorf("hierarchy: node %d out of range at level %d of %q", ref.Index, ref.Level, idx.name)
	}
	return idx.levels[ref.Level][ref.Index], nil
}

// Find resolves a label to its unique non-dummy node. Dummy nodes inserted
// by Balance shadow their original's label and are skipped; if the label
// still names several nodes the resolution is ambiguous and an error lists
// the candidates.
func (idx *Index) Find(label string) (TreeNodeRef, error) {
	var hits []TreeNodeRef
	for _, ref := range idx.byLabel[label] {
		if !idx.levels[ref.Level][ref.Index].Dummy {
			hits = append(hits, ref)
		}
	}
	switch len(hits) {
	case 0:
		return TreeNodeRef{}, fmt.Errorf("hierarchy: no node %q in dimension %q", label, idx.name)
	case 1:
		return hits[0], nil
	}
	var where []string
	for _, h := range hits {
		where = append(where, fmt.Sprintf("level %d", h.Level))
	}
	return TreeNodeRef{}, fmt.Errorf("hierarchy: label %q is ambiguous in dimension %q (%s); qualify with FindAt",
		label, idx.name, strings.Join(where, ", "))
}

// FindAt resolves a label at a specific level, for disambiguating labels
// that repeat across levels.
func (idx *Index) FindAt(label string, level int) (TreeNodeRef, error) {
	if level < 0 || level >= len(idx.levels) {
		return TreeNodeRef{}, fmt.Errorf("hierarchy: level %d out of range for %q", level, idx.name)
	}
	for _, ref := range idx.byLabel[label] {
		if ref.Level == level && !idx.levels[ref.Level][ref.Index].Dummy {
			return ref, nil
		}
	}
	return TreeNodeRef{}, fmt.Errorf("hierarchy: no node %q at level %d of dimension %q", label, level, idx.name)
}

// Root returns the reference of the root node (the whole dimension).
func (idx *Index) Root() TreeNodeRef {
	return TreeNodeRef{Level: len(idx.levels) - 1, Index: 0}
}

// LeafRange returns the half-open leaf range below the referenced node.
func (idx *Index) LeafRange(ref TreeNodeRef) (lo, hi int, err error) {
	n, err := idx.Node(ref)
	if err != nil {
		return 0, 0, err
	}
	return n.LeafLo, n.LeafHi, nil
}
