package hierarchy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformDimension(t *testing.T) {
	d := Uniform("time", 3, 4)
	if got := d.Levels(); got != 3 {
		t.Errorf("Levels() = %d, want 3", got)
	}
	if got := d.Leaves(); got != 64 {
		t.Errorf("Leaves() = %d, want 64", got)
	}
	for i := 1; i <= 3; i++ {
		if got := d.Fanout(i); got != 4 {
			t.Errorf("Fanout(%d) = %d, want 4", i, got)
		}
	}
}

func TestBinaryDimension(t *testing.T) {
	d := Binary("A", 2)
	if d.Leaves() != 4 {
		t.Errorf("Leaves() = %d, want 4", d.Leaves())
	}
	wantNodes := []int{4, 2, 1}
	for lv, want := range wantNodes {
		if got := d.NodesAt(lv); got != want {
			t.Errorf("NodesAt(%d) = %d, want %d", lv, got, want)
		}
	}
	wantBlock := []int{1, 2, 4}
	for lv, want := range wantBlock {
		if got := d.BlockSize(lv); got != want {
			t.Errorf("BlockSize(%d) = %d, want %d", lv, got, want)
		}
	}
}

func TestMixedFanouts(t *testing.T) {
	// The TPC-D time dimension: day → month → year → all.
	d := Dimension{Name: "time", Fanouts: []int{30, 12, 7}}
	if got := d.Leaves(); got != 2520 {
		t.Errorf("Leaves() = %d, want 2520", got)
	}
	if got := d.NodesAt(1); got != 84 {
		t.Errorf("NodesAt(1) = %d, want 84 months", got)
	}
	if got := d.NodesAt(2); got != 7 {
		t.Errorf("NodesAt(2) = %d, want 7 years", got)
	}
	if got := d.BlockSize(2); got != 360 {
		t.Errorf("BlockSize(2) = %d, want 360 days per year", got)
	}
}

func TestAncestorAndLeafRange(t *testing.T) {
	d := Uniform("d", 2, 3) // 9 leaves, 3 level-1 nodes
	cases := []struct {
		leaf, level, want int
	}{
		{0, 0, 0}, {8, 0, 8},
		{0, 1, 0}, {2, 1, 0}, {3, 1, 1}, {8, 1, 2},
		{5, 2, 0},
	}
	for _, c := range cases {
		if got := d.Ancestor(c.leaf, c.level); got != c.want {
			t.Errorf("Ancestor(%d, %d) = %d, want %d", c.leaf, c.level, got, c.want)
		}
	}
	lo, hi := d.LeafRange(1, 1)
	if lo != 3 || hi != 6 {
		t.Errorf("LeafRange(1,1) = [%d,%d), want [3,6)", lo, hi)
	}
	lo, hi = d.LeafRange(0, 2)
	if lo != 0 || hi != 9 {
		t.Errorf("LeafRange(0,2) = [%d,%d), want [0,9)", lo, hi)
	}
}

func TestAncestorRangeRoundTrip(t *testing.T) {
	d := Dimension{Name: "d", Fanouts: []int{3, 2, 5}}
	f := func(leaf uint, level uint) bool {
		lf := int(leaf % uint(d.Leaves()))
		lv := int(level % uint(d.Levels()+1))
		node := d.Ancestor(lf, lv)
		lo, hi := d.LeafRange(node, lv)
		return lo <= lf && lf < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		d    Dimension
		ok   bool
	}{
		{"valid", Uniform("x", 2, 2), true},
		{"no name", Dimension{Fanouts: []int{2}}, false},
		{"no levels", Dimension{Name: "x"}, false},
		{"zero fanout", Dimension{Name: "x", Fanouts: []int{2, 0}}, false},
		{"fanout one ok", Dimension{Name: "x", Fanouts: []int{1, 2}}, true},
		{"bad level names", Dimension{Name: "x", Fanouts: []int{2}, LevelNames: []string{"a"}}, false},
		{"good level names", Dimension{Name: "x", Fanouts: []int{2}, LevelNames: []string{"leaf", "root"}}, true},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSchema(t *testing.T) {
	s := MustSchema(Binary("A", 2), Binary("B", 2))
	if got := s.NumCells(); got != 16 {
		t.Errorf("NumCells() = %d, want 16", got)
	}
	if got := s.LeafCounts(); got[0] != 4 || got[1] != 4 {
		t.Errorf("LeafCounts() = %v, want [4 4]", got)
	}
	if got := s.TopLevels(); got[0] != 2 || got[1] != 2 {
		t.Errorf("TopLevels() = %v, want [2 2]", got)
	}
	if got := s.BlockSize([]int{1, 2}); got != 8 {
		t.Errorf("BlockSize(1,2) = %d, want 8", got)
	}
	if got := s.NumBlocks([]int{1, 2}); got != 2 {
		t.Errorf("NumBlocks(1,2) = %d, want 2", got)
	}
	if got := s.DimIndex("B"); got != 1 {
		t.Errorf("DimIndex(B) = %d, want 1", got)
	}
	if got := s.DimIndex("C"); got != -1 {
		t.Errorf("DimIndex(C) = %d, want -1", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("NewSchema() with no dimensions should fail")
	}
	if _, err := NewSchema(Binary("A", 1), Binary("A", 2)); err == nil {
		t.Error("NewSchema() with duplicate names should fail")
	}
	if _, err := NewSchema(Binary("A", 1), Binary("B", 2)); err != nil {
		t.Errorf("NewSchema() valid = %v", err)
	}
}

func TestBlocksPartitionGrid(t *testing.T) {
	// For every class, BlockSize × NumBlocks must equal NumCells.
	s := MustSchema(
		Dimension{Name: "x", Fanouts: []int{2, 3}},
		Dimension{Name: "y", Fanouts: []int{4}},
		Dimension{Name: "z", Fanouts: []int{5, 1, 2}},
	)
	n := s.NumCells()
	for i := 0; i <= 2; i++ {
		for j := 0; j <= 1; j++ {
			for k := 0; k <= 3; k++ {
				levels := []int{i, j, k}
				if got := s.BlockSize(levels) * s.NumBlocks(levels); got != n {
					t.Errorf("class %v: blocksize×numblocks = %d, want %d", levels, got, n)
				}
			}
		}
	}
}

func TestString(t *testing.T) {
	s := MustSchema(Binary("A", 2), Uniform("B", 1, 3))
	if got := s.String(); !strings.Contains(got, "A[2×2]") || !strings.Contains(got, "B[3]") {
		t.Errorf("String() = %q", got)
	}
}
