package hierarchy

import (
	"fmt"
	"strings"
)

// Node is one node of an explicit dimension hierarchy tree. A node with no
// children is a leaf (a value at the fact table's granularity).
type Node struct {
	Label    string
	Children []*Node

	// Dummy marks nodes inserted by Balance to make all leaves equidistant
	// from the root. Dummy nodes have exactly one child.
	Dummy bool
}

// Leaf returns a leaf node with the given label.
func Leaf(label string) *Node { return &Node{Label: label} }

// Branch returns an internal node with the given label and children.
func Branch(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// depth returns the length of the longest root-to-leaf path below n,
// counting edges.
func (n *Node) depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// balanced reports whether every leaf below n is at exactly the given depth.
func (n *Node) balanced(depth int) bool {
	if n.IsLeaf() {
		return depth == 0
	}
	for _, c := range n.Children {
		if !c.balanced(depth - 1) {
			return false
		}
	}
	return true
}

// Tree is an explicit dimension hierarchy: a rooted tree whose leaves are
// the dimension's values at fact granularity, in left-to-right disk order.
type Tree struct {
	Name string
	Root *Node
}

// NewTree returns a tree-backed dimension hierarchy.
func NewTree(name string, root *Node) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("hierarchy: tree %q has nil root", name)
	}
	return &Tree{Name: name, Root: root}, nil
}

// Depth returns the number of hierarchy levels: the longest root-to-leaf
// path, counting edges.
func (t *Tree) Depth() int { return t.Root.depth() }

// IsBalanced reports whether every leaf is at the same depth.
func (t *Tree) IsBalanced() bool { return t.Root.balanced(t.Depth()) }

// Balance returns a copy of the tree in which dummy single-child nodes have
// been inserted directly above shallow leaves so that every leaf lies at
// Depth(). This is the Section-4.1 construction: the extended hierarchy has
// well-defined levels, and the inserted chains contribute fanout-1 steps
// that the lattice-path machinery handles unchanged. A balanced tree is
// returned as-is (sharing structure).
func (t *Tree) Balance() *Tree {
	d := t.Depth()
	if t.Root.balanced(d) {
		return t
	}
	return &Tree{Name: t.Name, Root: balanceNode(t.Root, d)}
}

func balanceNode(n *Node, depth int) *Node {
	if n.IsLeaf() {
		if depth == 0 {
			return n
		}
		// Insert a chain of dummy nodes so that the leaf ends up `depth`
		// edges below this position.
		cur := n
		for i := 0; i < depth; i++ {
			cur = &Node{Label: n.Label, Children: []*Node{cur}, Dummy: true}
		}
		return cur
	}
	out := &Node{Label: n.Label, Dummy: n.Dummy, Children: make([]*Node, len(n.Children))}
	for i, c := range n.Children {
		out.Children[i] = balanceNode(c, depth-1)
	}
	return out
}

// TreeNodeRef identifies a node of a balanced tree by level and index. Level
// is counted from the leaves up; index runs left to right at that level.
type TreeNodeRef struct {
	Level int
	Index int
}

// LevelNode describes a node at some level of a balanced tree: its label and
// the half-open range of leaf indices below it.
type LevelNode struct {
	Label  string
	LeafLo int // inclusive
	LeafHi int // exclusive
	Dummy  bool
}

// Levelize lays out a *balanced* tree level by level and returns, for each
// level from the leaves (level 0) up to the root, the nodes at that level in
// leaf order. It returns an error if the tree is not balanced; call Balance
// first for unbalanced hierarchies.
func (t *Tree) Levelize() ([][]LevelNode, error) {
	d := t.Depth()
	if !t.Root.balanced(d) {
		return nil, fmt.Errorf("hierarchy: tree %q is unbalanced; call Balance first", t.Name)
	}
	levels := make([][]LevelNode, d+1)
	var walk func(n *Node, level int) (lo, hi int)
	nextLeaf := 0
	walk = func(n *Node, level int) (lo, hi int) {
		if n.IsLeaf() {
			lo = nextLeaf
			nextLeaf++
			hi = nextLeaf
		} else {
			lo = -1
			for _, c := range n.Children {
				clo, chi := walk(c, level-1)
				if lo < 0 {
					lo = clo
				}
				hi = chi
			}
		}
		levels[level] = append(levels[level], LevelNode{Label: n.Label, LeafLo: lo, LeafHi: hi, Dummy: n.Dummy})
		return lo, hi
	}
	walk(t.Root, d)
	return levels, nil
}

// Dimension summarizes a balanced tree as a level/average-fanout dimension
// for the analytic machinery (lattice, DP). The fanout at level i is the
// average number of level-(i−1) children per level-i node, which is what the
// paper's algorithm uses for unbalanced (dummy-extended) hierarchies. The
// returned AvgDimension carries exact per-level node counts alongside the
// rounded Dimension.
func (t *Tree) Dimension() (Dimension, []float64, error) {
	levels, err := t.Levelize()
	if err != nil {
		return Dimension{}, nil, err
	}
	d := len(levels) - 1
	fan := make([]float64, d)
	fi := make([]int, d)
	names := make([]string, d+1)
	for i := 1; i <= d; i++ {
		fan[i-1] = float64(len(levels[i-1])) / float64(len(levels[i]))
		// The integer Dimension keeps the exact ratio when it is integral
		// and the ceiling otherwise; analytic costs on genuinely ragged
		// trees should use the float fanouts.
		fi[i-1] = int(fan[i-1])
		if float64(fi[i-1]) != fan[i-1] {
			fi[i-1]++
		}
	}
	for i := range names {
		names[i] = fmt.Sprintf("%s-L%d", t.Name, i)
	}
	return Dimension{Name: t.Name, Fanouts: fi, LevelNames: names}, fan, nil
}

// String renders the tree in a compact indented form, marking dummy nodes.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent int)
	walk = func(n *Node, indent int) {
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(n.Label)
		if n.Dummy {
			b.WriteString(" (dummy)")
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, indent+1)
		}
	}
	b.WriteString(t.Name)
	b.WriteByte('\n')
	walk(t.Root, 1)
	return b.String()
}
