// Package core implements the paper's primary contribution: monotone
// lattice paths as clustering strategies, the dynamic-programming algorithm
// that finds the optimal lattice path for a workload (Figure 4, generalized
// to k dimensions), and snaking.
package core

import (
	"fmt"
	"strings"

	"repro/internal/lattice"
)

// Path is a monotone lattice path (Definition 3): a sequence of query
// classes from ⊥ to ⊤ in which each point is a successor of the previous
// one. Read innermost loop first: the edge u_s → u_{s+1} stepping dimension
// d specifies one loop over sibling entries at level u_s[d] of dimension d.
type Path struct {
	lat    *lattice.Lattice
	points []lattice.Point
	steps  []int // steps[s] = dimension stepped by edge s (innermost first)
}

// NewPath builds a path from the dimensions stepped, innermost loop first.
// The steps must visit every level of every dimension, i.e. contain
// dimension d exactly ℓ_d times.
func NewPath(l *lattice.Lattice, steps []int) (*Path, error) {
	tops := l.Tops()
	cur := l.Bottom()
	points := make([]lattice.Point, 0, len(steps)+1)
	points = append(points, cur.Clone())
	for s, d := range steps {
		if d < 0 || d >= l.K() {
			return nil, fmt.Errorf("core: step %d names dimension %d of %d", s, d, l.K())
		}
		cur[d]++
		if cur[d] > tops[d] {
			return nil, fmt.Errorf("core: step %d exceeds top level %d of dimension %d", s, tops[d], d)
		}
		points = append(points, cur.Clone())
	}
	if !cur.Equal(l.Top()) {
		return nil, fmt.Errorf("core: path ends at %v, not ⊤ = %v", cur, l.Top())
	}
	return &Path{lat: l, points: points, steps: append([]int(nil), steps...)}, nil
}

// MustPath is NewPath, panicking on error.
func MustPath(l *lattice.Lattice, steps []int) *Path {
	p, err := NewPath(l, steps)
	if err != nil {
		panic(err)
	}
	return p
}

// FromPoints builds a path from its point sequence, validating monotonicity.
func FromPoints(l *lattice.Lattice, points []lattice.Point) (*Path, error) {
	if len(points) == 0 || !points[0].Equal(l.Bottom()) {
		return nil, fmt.Errorf("core: path must start at ⊥")
	}
	steps := make([]int, 0, len(points)-1)
	for i := 1; i < len(points); i++ {
		d := points[i-1].SuccessorOf(points[i])
		if d < 0 {
			return nil, fmt.Errorf("core: %v is not a successor of %v", points[i], points[i-1])
		}
		steps = append(steps, d)
	}
	return NewPath(l, steps)
}

// RowMajor returns the lattice path that exhausts the dimensions one at a
// time in the given outer-to-inner nesting order: dims[len-1] is the
// innermost (fastest-varying) dimension. This is the classical row-major
// family; a k-dimensional schema has k! of them.
func RowMajor(l *lattice.Lattice, dims []int) (*Path, error) {
	if len(dims) != l.K() {
		return nil, fmt.Errorf("core: row-major order names %d of %d dimensions", len(dims), l.K())
	}
	seen := make([]bool, l.K())
	tops := l.Tops()
	var steps []int
	for i := len(dims) - 1; i >= 0; i-- {
		d := dims[i]
		if d < 0 || d >= l.K() || seen[d] {
			return nil, fmt.Errorf("core: row-major order %v is not a permutation", dims)
		}
		seen[d] = true
		for j := 0; j < tops[d]; j++ {
			steps = append(steps, d)
		}
	}
	return NewPath(l, steps)
}

// Lattice returns the lattice the path lives in.
func (p *Path) Lattice() *lattice.Lattice { return p.lat }

// Len returns the number of points on the path.
func (p *Path) Len() int { return len(p.points) }

// Point returns the i-th point of the path (0 = ⊥).
func (p *Path) Point(i int) lattice.Point { return p.points[i] }

// Points returns the full point sequence (shared; do not modify).
func (p *Path) Points() []lattice.Point { return p.points }

// Steps returns the dimension stepped by each edge, innermost loop first
// (shared; do not modify).
func (p *Path) Steps() []int { return p.steps }

// Contains reports whether c lies on the path.
func (p *Path) Contains(c lattice.Point) bool {
	for _, u := range p.points {
		if u.Equal(c) {
			return true
		}
	}
	return false
}

// LastDominated returns the maximal path point u* with u* ≤ c. Because the
// path is a chain starting at ⊥, the dominated points form a prefix and the
// maximum is well defined.
func (p *Path) LastDominated(c lattice.Point) lattice.Point {
	best := p.points[0]
	for _, u := range p.points[1:] {
		if u.LE(c) {
			best = u
		} else {
			break
		}
	}
	return best
}

// Dist returns dist_P(c): the average number of contiguous fragments a
// class-c query needs under the (unsnaked) clustering strategy of the path.
// It equals len(u* → c) for the last path point u* dominated by c — see
// DESIGN.md §2 for why this is the physical reading of the paper's
// definition.
func (p *Path) Dist(c lattice.Point) int {
	return p.lat.SegmentLength(p.LastDominated(c), c)
}

// Equal reports whether two paths over the same lattice take the same steps.
func (p *Path) Equal(q *Path) bool {
	if len(p.steps) != len(q.steps) {
		return false
	}
	for i := range p.steps {
		if p.steps[i] != q.steps[i] {
			return false
		}
	}
	return true
}

// String renders the path as its point sequence, ⊥ first.
func (p *Path) String() string {
	parts := make([]string, len(p.points))
	for i, u := range p.points {
		parts[i] = u.String()
	}
	return "⟨" + strings.Join(parts, " ") + "⟩"
}

// EnumeratePaths calls fn for every monotone lattice path of the lattice, in
// lexicographic order of step sequences. The path passed to fn is reused;
// clone (via its Steps) to retain. fn returning false stops the enumeration.
// The number of paths is the multinomial coefficient (Σℓ_d)! / Πℓ_d!, so
// this is feasible only for small lattices; it exists to validate the DP.
func EnumeratePaths(l *lattice.Lattice, fn func(p *Path) bool) {
	tops := l.Tops()
	total := 0
	for _, t := range tops {
		total += t
	}
	remaining := append([]int(nil), tops...)
	steps := make([]int, 0, total)
	var rec func() bool
	rec = func() bool {
		if len(steps) == total {
			p, err := NewPath(l, steps)
			if err != nil {
				panic(err) // unreachable by construction
			}
			return fn(p)
		}
		for d := 0; d < l.K(); d++ {
			if remaining[d] == 0 {
				continue
			}
			remaining[d]--
			steps = append(steps, d)
			ok := rec()
			steps = steps[:len(steps)-1]
			remaining[d]++
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
}

// CountPaths returns the number of monotone lattice paths of the lattice:
// the multinomial coefficient (Σ ℓ_d)! / Π ℓ_d!.
func CountPaths(l *lattice.Lattice) int {
	tops := l.Tops()
	n := 0
	count := 1
	for _, t := range tops {
		// Multiply count by C(n+t, t) incrementally.
		for i := 1; i <= t; i++ {
			n++
			count = count * n / i
		}
	}
	return count
}
