package core

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
)

func exampleLattice() *lattice.Lattice {
	return lattice.New(hierarchy.MustSchema(hierarchy.Binary("A", 2), hierarchy.Binary("B", 2)))
}

// p1 is strategy P1 of Example 2: ⟨(0,0),(0,1),(0,2),(1,2),(2,2)⟩.
func p1(l *lattice.Lattice) *Path { return MustPath(l, []int{1, 1, 0, 0}) }

// p2 is strategy P2 of Example 2: ⟨(0,0),(0,1),(1,1),(1,2),(2,2)⟩.
func p2(l *lattice.Lattice) *Path { return MustPath(l, []int{1, 0, 1, 0}) }

func TestNewPath(t *testing.T) {
	l := exampleLattice()
	p := p1(l)
	want := []lattice.Point{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}}
	if p.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", p.Len(), len(want))
	}
	for i, w := range want {
		if !p.Point(i).Equal(w) {
			t.Errorf("Point(%d) = %v, want %v", i, p.Point(i), w)
		}
	}
}

func TestNewPathErrors(t *testing.T) {
	l := exampleLattice()
	cases := [][]int{
		{1, 1, 0},       // stops short of ⊤
		{1, 1, 1, 0},    // exceeds dimension B's top
		{0, 0, 0, 0},    // exceeds dimension A's top
		{2, 1, 1, 0},    // invalid dimension
		{-1, 1, 1, 0},   // negative dimension
		{1, 1, 0, 0, 0}, // too many steps
	}
	for _, steps := range cases {
		if _, err := NewPath(l, steps); err == nil {
			t.Errorf("NewPath(%v) should fail", steps)
		}
	}
}

func TestFromPoints(t *testing.T) {
	l := exampleLattice()
	pts := []lattice.Point{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}}
	p, err := FromPoints(l, pts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(p2(l)) {
		t.Errorf("FromPoints = %v, want P2", p)
	}
	if _, err := FromPoints(l, []lattice.Point{{0, 1}, {0, 2}}); err == nil {
		t.Error("path not starting at ⊥ should fail")
	}
	if _, err := FromPoints(l, []lattice.Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("diagonal jump in lattice should fail")
	}
}

func TestRowMajorPaths(t *testing.T) {
	l := exampleLattice()
	// Outer dimension A, inner B: exhaust B first.
	p, err := RowMajor(l, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(p1(l)) {
		t.Errorf("RowMajor([A B]) = %v, want P1", p)
	}
	if _, err := RowMajor(l, []int{0, 0}); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := RowMajor(l, []int{0}); err == nil {
		t.Error("wrong length should fail")
	}
}

func TestLastDominatedAndDist(t *testing.T) {
	l := exampleLattice()
	p := p1(l)
	cases := []struct {
		c    lattice.Point
		dom  lattice.Point
		dist int
	}{
		// Points on the path have dist 1 (the empty segment has length 1).
		{lattice.Point{0, 1}, lattice.Point{0, 1}, 1},
		{lattice.Point{2, 2}, lattice.Point{2, 2}, 1},
		// dist_P1(2,0) = 2×2 = 4 per Section 4's example.
		{lattice.Point{2, 0}, lattice.Point{0, 0}, 4},
		{lattice.Point{1, 0}, lattice.Point{0, 0}, 2},
		{lattice.Point{1, 1}, lattice.Point{0, 1}, 2},
		{lattice.Point{2, 1}, lattice.Point{0, 1}, 4},
	}
	for _, c := range cases {
		if got := p.LastDominated(c.c); !got.Equal(c.dom) {
			t.Errorf("LastDominated(%v) = %v, want %v", c.c, got, c.dom)
		}
		if got := p.Dist(c.c); got != c.dist {
			t.Errorf("Dist(%v) = %d, want %d", c.c, got, c.dist)
		}
	}
}

func TestDistMatchesTable1(t *testing.T) {
	// Table 1's P1 and P2 columns are ⟨total⟩/⟨count⟩; dist is the average.
	l := exampleLattice()
	cases := []struct {
		c      lattice.Point
		p1, p2 int
	}{
		{lattice.Point{0, 0}, 1, 1},
		{lattice.Point{1, 1}, 2, 1},
		{lattice.Point{2, 2}, 1, 1},
		{lattice.Point{1, 0}, 2, 2},
		{lattice.Point{0, 1}, 1, 1},
		{lattice.Point{2, 0}, 4, 4},
		{lattice.Point{0, 2}, 1, 2},
		{lattice.Point{2, 1}, 4, 2},
		{lattice.Point{1, 2}, 1, 1},
	}
	pa, pb := p1(l), p2(l)
	for _, c := range cases {
		if got := pa.Dist(c.c); got != c.p1 {
			t.Errorf("dist_P1(%v) = %d, want %d", c.c, got, c.p1)
		}
		if got := pb.Dist(c.c); got != c.p2 {
			t.Errorf("dist_P2(%v) = %d, want %d", c.c, got, c.p2)
		}
	}
}

func TestContains(t *testing.T) {
	l := exampleLattice()
	p := p2(l)
	if !p.Contains(lattice.Point{1, 1}) {
		t.Error("P2 should contain (1,1)")
	}
	if p.Contains(lattice.Point{2, 0}) {
		t.Error("P2 should not contain (2,0)")
	}
}

func TestEnumeratePaths(t *testing.T) {
	l := exampleLattice()
	var n int
	seen := map[string]bool{}
	EnumeratePaths(l, func(p *Path) bool {
		n++
		s := p.String()
		if seen[s] {
			t.Fatalf("duplicate path %s", s)
		}
		seen[s] = true
		return true
	})
	// C(4,2) = 6 monotone paths on the 2-level × 2-level lattice.
	if n != 6 {
		t.Errorf("enumerated %d paths, want 6", n)
	}
	if got := CountPaths(l); got != 6 {
		t.Errorf("CountPaths = %d, want 6", got)
	}
}

func TestEnumeratePathsEarlyStop(t *testing.T) {
	l := exampleLattice()
	n := 0
	EnumeratePaths(l, func(p *Path) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("enumeration visited %d paths after early stop, want 3", n)
	}
}

func TestCountPaths3D(t *testing.T) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("x", 2, 2),
		hierarchy.Uniform("y", 1, 3),
		hierarchy.Uniform("z", 3, 2),
	))
	// (2+1+3)!/(2!·1!·3!) = 720/12 = 60.
	if got := CountPaths(l); got != 60 {
		t.Errorf("CountPaths = %d, want 60", got)
	}
	n := 0
	EnumeratePaths(l, func(p *Path) bool { n++; return true })
	if n != 60 {
		t.Errorf("enumerated %d paths, want 60", n)
	}
}

func TestPathString(t *testing.T) {
	l := exampleLattice()
	if got := p1(l).String(); got != "⟨(0,0) (0,1) (0,2) (1,2) (2,2)⟩" {
		t.Errorf("String() = %q", got)
	}
}
