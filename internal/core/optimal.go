package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/workload"
)

// Result is the output of the optimal-lattice-path algorithms: the optimal
// path and its expected cost over the workload.
type Result struct {
	Path *Path
	Cost float64
}

// Optimal2D is algorithm Find-Optimal-Lattice-Path of Figure 4, for
// two-dimensional schemas: it returns the monotone lattice path of minimum
// expected cost over the workload, together with that cost, in time linear
// in the lattice size. Ties are broken toward stepping the second dimension
// first, matching the paper's pseudo-code (strict '<' on the first branch).
func Optimal2D(w *workload.Workload) (Result, error) {
	l := w.Lattice()
	if l.K() != 2 {
		return Result{}, fmt.Errorf("core: Optimal2D needs 2 dimensions, schema has %d", l.K())
	}
	dimA, dimB := l.Schema().Dims[0], l.Schema().Dims[1]
	m, n := dimA.Levels(), dimB.Levels()
	p := func(i, j int) float64 { return w.Prob(lattice.Point{i, j}) }

	// rawA[i][j]: expected cost of classes (i, j'), j' ≥ j, paid when the
	// path steps dimension A at (i, j). rawB symmetric.
	rawA := grid2(m+1, n+1)
	rawB := grid2(m+1, n+1)
	cost := grid2(m+1, n+1)
	// choice[i][j] records which dimension the optimal path steps at (i,j):
	// 0 for A, 1 for B, −1 at ⊤.
	choice := make([][]int, m+1)
	for i := range choice {
		choice[i] = make([]int, n+1)
		for j := range choice[i] {
			choice[i][j] = -1
		}
	}

	cost[m][n] = p(m, n)
	for i := m; i >= 0; i-- {
		rawA[i][n] = p(i, n)
	}
	for j := n; j >= 0; j-- {
		rawB[m][j] = p(m, j)
	}
	for j := n; j >= 0; j-- {
		for i := m; i >= 1; i-- {
			rawB[i-1][j] = p(i-1, j) + float64(dimA.Fanout(i))*rawB[i][j]
		}
	}
	for i := m; i >= 0; i-- {
		for j := n; j >= 1; j-- {
			rawA[i][j-1] = p(i, j-1) + float64(dimB.Fanout(j))*rawA[i][j]
		}
	}
	for i := m; i >= 1; i-- {
		cost[i-1][n] = p(i-1, n) + cost[i][n]
		choice[i-1][n] = 0
	}
	for j := n; j >= 1; j-- {
		cost[m][j-1] = p(m, j-1) + cost[m][j]
		choice[m][j-1] = 1
	}
	for i := m - 1; i >= 0; i-- {
		for j := n - 1; j >= 0; j-- {
			viaA := cost[i+1][j] + rawA[i][j]
			viaB := cost[i][j+1] + rawB[i][j]
			if viaA < viaB {
				cost[i][j] = viaA
				choice[i][j] = 0
			} else {
				cost[i][j] = viaB
				choice[i][j] = 1
			}
		}
	}

	var steps []int
	for i, j := 0, 0; choice[i][j] >= 0; {
		d := choice[i][j]
		steps = append(steps, d)
		if d == 0 {
			i++
		} else {
			j++
		}
	}
	path, err := NewPath(l, steps)
	if err != nil {
		return Result{}, err
	}
	return Result{Path: path, Cost: cost[0][0]}, nil
}

func grid2(m, n int) [][]float64 {
	g := make([][]float64, m)
	cells := make([]float64, m*n)
	for i := range g {
		g[i], cells = cells[:n], cells[n:]
	}
	return g
}

// Optimal finds the optimal monotone lattice path for a workload over a
// schema with any number of dimensions. It generalizes Figure 4: when the
// path steps dimension d at point u it finalizes exactly the classes
// {v : v_d = u_d, v ≥ u}, whose expected cost is
//
//	ray_d(u) = Σ_{v ≥ u, v_d = u_d} p_v · len(u → v),
//
// and cost(u) = min_d cost(u + e_d) + ray_d(u). Each ray_d table is built by
// sweeping the k−1 other dimensions once, so the total work is O(k²·|L|)
// additions and multiplications — linear in the lattice size and quadratic
// in the number of dimensions, as the paper states.
func Optimal(w *workload.Workload) (Result, error) {
	l := w.Lattice()
	k := l.K()
	size := l.Size()
	tops := l.Tops()

	// Dense strides: index(u + e_d) = index(u) + stride[d].
	stride := make([]int, k)
	s := 1
	for d := k - 1; d >= 0; d-- {
		stride[d] = s
		s *= tops[d] + 1
	}

	// rays[d][idx] = ray_d(point at idx).
	rays := make([][]float64, k)
	probs := make([]float64, size)
	for i := 0; i < size; i++ {
		probs[i] = w.ProbAt(i)
	}
	for d := 0; d < k; d++ {
		ray := append([]float64(nil), probs...)
		for e := 0; e < k; e++ {
			if e == d {
				continue
			}
			sweepSuffix(l, ray, e, stride, tops)
		}
		rays[d] = ray
	}

	cost := make([]float64, size)
	choice := make([]int, size)
	for idx := size - 1; idx >= 0; idx-- {
		u := l.PointAt(idx)
		best, bestDim := 0.0, -1
		for d := k - 1; d >= 0; d-- { // reverse order: ties prefer the last dimension, matching Optimal2D
			if u[d] == tops[d] {
				continue
			}
			c := cost[idx+stride[d]] + rays[d][idx]
			if bestDim < 0 || c < best {
				best, bestDim = c, d
			}
		}
		if bestDim < 0 { // u = ⊤
			cost[idx] = probs[idx]
			choice[idx] = -1
			continue
		}
		cost[idx] = best
		choice[idx] = bestDim
	}

	var steps []int
	for idx := 0; choice[idx] >= 0; {
		d := choice[idx]
		steps = append(steps, d)
		idx += stride[d]
	}
	path, err := NewPath(l, steps)
	if err != nil {
		return Result{}, err
	}
	return Result{Path: path, Cost: cost[0]}, nil
}

// sweepSuffix folds dimension e into the ray table: after the sweep,
// ray[u] = Σ_{j ≥ u_e} ray_before[u with u_e=j] · Π_{u_e < i ≤ j} f(e, i).
// Entries are updated from the top level of e downward so each step reuses
// the already-folded suffix.
func sweepSuffix(l *lattice.Lattice, ray []float64, e int, stride, tops []int) {
	f := l.Schema().Dims[e]
	size := len(ray)
	blk := stride[e] * (tops[e] + 1) // span of a full run of dimension e
	for base := 0; base < size; base += blk {
		for off := 0; off < stride[e]; off++ {
			for j := tops[e] - 1; j >= 0; j-- {
				idx := base + off + j*stride[e]
				ray[idx] += float64(f.Fanout(j+1)) * ray[idx+stride[e]]
			}
		}
	}
}

// Cost evaluates the expected cost of an arbitrary lattice path over the
// workload directly from the definition: Σ_c p_c · dist_P(c). It is the
// brute-force oracle the DP is validated against.
func Cost(p *Path, w *workload.Workload) float64 {
	l := w.Lattice()
	total := 0.0
	l.Points(func(c lattice.Point) {
		if pr := w.Prob(c); pr > 0 {
			total += pr * float64(p.Dist(c))
		}
	})
	return total
}

// BestByEnumeration finds the optimal lattice path by enumerating all of
// them, for cross-checking the DP on small lattices. Ties are broken toward
// the lexicographically first step sequence.
func BestByEnumeration(w *workload.Workload) Result {
	var best Result
	first := true
	EnumeratePaths(w.Lattice(), func(p *Path) bool {
		c := Cost(p, w)
		if first || c < best.Cost {
			steps := append([]int(nil), p.Steps()...)
			best = Result{Path: MustPath(w.Lattice(), steps), Cost: c}
			first = false
		}
		return true
	})
	return best
}
