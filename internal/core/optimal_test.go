package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/workload"
)

func TestCostMatchesTable2(t *testing.T) {
	// Table 2 gives the expected costs of P1 and P2 under the three
	// Example-1 workloads: W1 → 17/9, 15/9; W2 → 13/6, 11/6; W3 → 1, 5/4.
	l := exampleLattice()
	pa, pb := p1(l), p2(l)
	w1 := workload.Uniform(l)
	w2 := workload.UniformExcept(l,
		lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 1})
	w3 := workload.UniformOver(l,
		lattice.Point{0, 0}, lattice.Point{0, 1}, lattice.Point{0, 2}, lattice.Point{1, 2})
	cases := []struct {
		name   string
		w      *workload.Workload
		c1, c2 float64
	}{
		{"workload 1", w1, 17.0 / 9, 15.0 / 9},
		{"workload 2", w2, 13.0 / 6, 11.0 / 6},
		{"workload 3", w3, 1, 5.0 / 4},
	}
	for _, c := range cases {
		if got := Cost(pa, c.w); math.Abs(got-c.c1) > 1e-12 {
			t.Errorf("%s: cost(P1) = %v, want %v", c.name, got, c.c1)
		}
		if got := Cost(pb, c.w); math.Abs(got-c.c2) > 1e-12 {
			t.Errorf("%s: cost(P2) = %v, want %v", c.name, got, c.c2)
		}
	}
}

func TestOptimal2DMatchesEnumeration(t *testing.T) {
	l := exampleLattice()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		w := workload.Random(l, rng, 0.7)
		dp, err := Optimal2D(w)
		if err != nil {
			t.Fatal(err)
		}
		brute := BestByEnumeration(w)
		if math.Abs(dp.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("workload %v: DP cost %v ≠ brute-force %v (DP path %v, brute %v)",
				w, dp.Cost, brute.Cost, dp.Path, brute.Path)
		}
		if got := Cost(dp.Path, w); math.Abs(got-dp.Cost) > 1e-9 {
			t.Fatalf("DP path's direct cost %v ≠ reported %v", got, dp.Cost)
		}
	}
}

func TestOptimal2DAsymmetricFanouts(t *testing.T) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Dimension{Name: "A", Fanouts: []int{4, 3}},
		hierarchy.Dimension{Name: "B", Fanouts: []int{2, 5, 2}},
	))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		w := workload.Random(l, rng, 0.6)
		dp, err := Optimal2D(w)
		if err != nil {
			t.Fatal(err)
		}
		brute := BestByEnumeration(w)
		if math.Abs(dp.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("DP cost %v ≠ brute-force %v", dp.Cost, brute.Cost)
		}
	}
}

func TestOptimalKDMatches2D(t *testing.T) {
	l := exampleLattice()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		w := workload.Random(l, rng, 0.7)
		dp2, err := Optimal2D(w)
		if err != nil {
			t.Fatal(err)
		}
		dpk, err := Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp2.Cost-dpk.Cost) > 1e-9 {
			t.Fatalf("Optimal2D cost %v ≠ Optimal cost %v", dp2.Cost, dpk.Cost)
		}
		if !dp2.Path.Equal(dpk.Path) {
			// Both must still be optimal; equal cost suffices, but with the
			// shared tie-break they should coincide exactly.
			t.Fatalf("Optimal2D path %v ≠ Optimal path %v", dp2.Path, dpk.Path)
		}
	}
}

func TestOptimal3DMatchesEnumeration(t *testing.T) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("x", 2, 2),
		hierarchy.Uniform("y", 2, 3),
		hierarchy.Uniform("z", 1, 4),
	))
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		w := workload.Random(l, rng, 0.5)
		dp, err := Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		brute := BestByEnumeration(w)
		if math.Abs(dp.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("DP cost %v ≠ brute-force %v (DP %v, brute %v)",
				dp.Cost, brute.Cost, dp.Path, brute.Path)
		}
	}
}

func TestOptimal4D(t *testing.T) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("a", 1, 2),
		hierarchy.Uniform("b", 2, 2),
		hierarchy.Uniform("c", 1, 3),
		hierarchy.Uniform("d", 2, 2),
	))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		w := workload.Random(l, rng, 0.5)
		dp, err := Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		brute := BestByEnumeration(w)
		if math.Abs(dp.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("DP cost %v ≠ brute-force %v", dp.Cost, brute.Cost)
		}
	}
}

func TestOptimalPointWorkloads(t *testing.T) {
	// For a workload concentrated on one class c, any path through c has
	// cost 1, which is optimal.
	l := exampleLattice()
	l.Points(func(c lattice.Point) {
		w := workload.Point(l, c.Clone())
		dp, err := Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Cost != 1 {
			t.Errorf("class %v: optimal cost %v, want 1", c, dp.Cost)
		}
		if !dp.Path.Contains(c) {
			t.Errorf("class %v: optimal path %v does not pass through it", c, dp.Path)
		}
	})
}

func TestOptimal2DRejectsOtherArity(t *testing.T) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("x", 1, 2),
		hierarchy.Uniform("y", 1, 2),
		hierarchy.Uniform("z", 1, 2),
	))
	if _, err := Optimal2D(workload.Uniform(l)); err == nil {
		t.Error("Optimal2D on 3-D schema should fail")
	}
}

func TestOptimalWithDummyLevels(t *testing.T) {
	// Fanout-1 levels (from balancing unbalanced hierarchies) must not
	// break the DP.
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Dimension{Name: "A", Fanouts: []int{2, 1, 2}},
		hierarchy.Dimension{Name: "B", Fanouts: []int{1, 3}},
	))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		w := workload.Random(l, rng, 0.6)
		dp, err := Optimal(w)
		if err != nil {
			t.Fatal(err)
		}
		brute := BestByEnumeration(w)
		// With fanout-1 edges the physical-dist DP can differ from the
		// literal min-dist definition, but both must agree on the best
		// achievable cost among lattice paths under the same Dist.
		if math.Abs(dp.Cost-brute.Cost) > 1e-9 {
			t.Fatalf("DP cost %v ≠ brute-force %v", dp.Cost, brute.Cost)
		}
	}
}

func BenchmarkOptimal2D(b *testing.B) {
	l := lattice.New(hierarchy.MustSchema(hierarchy.Binary("A", 10), hierarchy.Binary("B", 10)))
	w := workload.Uniform(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal2D(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalKD(b *testing.B) {
	l := lattice.New(hierarchy.MustSchema(
		hierarchy.Uniform("a", 5, 2),
		hierarchy.Uniform("b", 5, 2),
		hierarchy.Uniform("c", 5, 2),
		hierarchy.Uniform("d", 5, 2),
	))
	w := workload.Uniform(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Optimal(w); err != nil {
			b.Fatal(err)
		}
	}
}
