package snakes

import (
	"math"
	"strings"
	"testing"
)

func TestSchemaRoundTrip(t *testing.T) {
	s := NewSchema(Dim("parts", 40, 5), Dim("supplier", 10), Dim("time", 30, 12, 7))
	data, err := MarshalSchema(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCells() != s.NumCells() || back.NumClasses() != s.NumClasses() {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d",
			back.NumCells(), back.NumClasses(), s.NumCells(), s.NumClasses())
	}
}

func TestSchemaUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalSchema([]byte("{broken")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalSchema([]byte(`{"version":99,"dims":[]}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := UnmarshalSchema([]byte(`{"version":1,"dims":[]}`)); err == nil {
		t.Error("empty dims should fail")
	}
	if _, err := UnmarshalSchema([]byte(`{"version":1,"dims":[{"Name":"x","Fanouts":[0]}]}`)); err == nil {
		t.Error("invalid fanout should fail")
	}
}

func TestWorkloadPersistRoundTrip(t *testing.T) {
	s := exampleSchema()
	w := s.NewWorkload()
	w.Set(Class{0, 1}, 0.25)
	w.Set(Class{2, 2}, 0.75)
	data, err := MarshalWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalWorkload(s, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Classes() {
		if math.Abs(back.Prob(c)-w.Prob(c)) > 1e-15 {
			t.Errorf("class %v: %v vs %v", c, back.Prob(c), w.Prob(c))
		}
	}
}

func TestWorkloadUnmarshalValidation(t *testing.T) {
	s := exampleSchema()
	w := s.UniformWorkload()
	data, err := MarshalWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	// Loading onto a different-shape schema fails.
	other := NewSchema(Dim("jeans", 2, 2), Dim("location", 2, 2, 2))
	if _, err := UnmarshalWorkload(other, data); err == nil {
		t.Error("shape mismatch should fail")
	}
	renamed := NewSchema(Dim("a", 2, 2), Dim("b", 2, 2))
	if _, err := UnmarshalWorkload(renamed, data); err == nil {
		t.Error("dimension rename should fail")
	}
	// A tampered distribution fails validation.
	tampered := strings.Replace(string(data), "0.1111111111111111", "0.9111111111111111", 1)
	if _, err := UnmarshalWorkload(s, []byte(tampered)); err == nil {
		t.Error("non-normalized stored workload should fail")
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	s := exampleSchema()
	w := s.ClassWorkload(Class{0, 2}, Class{1, 2})
	st, err := Optimize(w)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalStrategy(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalStrategy(s, data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != st.String() {
		t.Errorf("round trip: %v vs %v", back, st)
	}
	c1, err := st.ExpectedCost(w)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := back.ExpectedCost(w)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("costs differ after round trip: %v vs %v", c1, c2)
	}
}

func TestStrategyUnmarshalErrors(t *testing.T) {
	s := exampleSchema()
	if _, err := UnmarshalStrategy(s, []byte("nope")); err == nil {
		t.Error("bad JSON should fail")
	}
	// A truncated path is rejected by path validation.
	bad := `{"version":1,"dims":[{"Name":"jeans","Fanouts":[2,2]},{"Name":"location","Fanouts":[2,2]}],"steps":[0,1],"snaked":true}`
	if _, err := UnmarshalStrategy(s, []byte(bad)); err == nil {
		t.Error("short path should fail")
	}
	vbad := `{"version":7,"dims":[],"steps":[],"snaked":false}`
	if _, err := UnmarshalStrategy(s, []byte(vbad)); err == nil {
		t.Error("unknown version should fail")
	}
}
