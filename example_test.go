package snakes_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	snakes "repro"
)

// The basic flow: schema → workload → optimal snaked lattice path.
func ExampleOptimize() {
	schema := snakes.NewSchema(
		snakes.Dim("product", 2, 2), // item → category → all
		snakes.Dim("time", 2, 2),    // day → month → all
	)
	w := schema.NewWorkload()
	w.Set(snakes.Class{0, 1}, 0.5) // item × month
	w.Set(snakes.Class{1, 2}, 0.5) // category × all time

	strategy, _ := snakes.Optimize(w)
	cost, _ := strategy.ExpectedCost(w)
	fmt.Printf("%v\n", strategy)
	fmt.Printf("expected seeks per query: %.2f\n", cost)
	// Output:
	// snaked ⟨(0,0) (0,1) (0,2) (1,2) (2,2)⟩
	// expected seeks per query: 1.00
}

// Snaking never increases cost, and the improvement is capped below 2×
// (Theorem 3).
func ExampleStrategy_SnakingBenefit() {
	schema := snakes.NewSchema(snakes.Dim("A", 2, 2), snakes.Dim("B", 2, 2))
	rowMajor, _ := schema.RowMajor(0, 1)
	fmt.Printf("%.3f\n", rowMajor.SnakingBenefit(snakes.Class{2, 0}))
	fmt.Printf("%.3f\n", rowMajor.SnakingBenefit(snakes.Class{1, 1}))
	// Output:
	// 1.231
	// 1.333
}

// Queries phrased against hierarchy node labels resolve to query classes
// and cell regions — Example 1's Q1 as code.
func ExampleSchema_Query() {
	jeans, _ := snakes.NewTree("jeans", snakes.Branch("any",
		snakes.Branch("levi's", snakes.Leaf("men's levi's"), snakes.Leaf("women's levi's")),
		snakes.Branch("gitano", snakes.Leaf("men's gitano"), snakes.Leaf("women's gitano")),
	))
	location, _ := snakes.NewTree("location", snakes.Branch("any",
		snakes.Branch("NY", snakes.Leaf("nyc"), snakes.Leaf("albany")),
		snakes.Branch("ONT", snakes.Leaf("toronto"), snakes.Leaf("ottawa")),
	))
	schema, _ := snakes.SchemaFromTrees(jeans, location)

	q := schema.Query().Where("jeans", "levi's").Where("location", "NY")
	class, _ := q.Class()
	region, _ := q.Region()
	fmt.Printf("class %v, region %v\n", class, region)
	// Output:
	// class (1,1), region [0,2)×[0,2)
}

// Row-major orders are lattice paths too; comparing them against the
// optimum quantifies how much the nesting choice matters.
func ExampleSchema_RowMajor() {
	schema := snakes.NewSchema(snakes.Dim("host", 4, 4), snakes.Dim("time", 4, 4))
	w := schema.ClassWorkload(snakes.Class{0, 2}) // one host, all time
	opt, _ := snakes.Optimize(w)
	good, _ := schema.RowMajor(0, 1) // host outer: host's cells contiguous
	bad, _ := schema.RowMajor(1, 0)  // time outer: host's cells scattered

	co, _ := opt.ExpectedCost(w)
	cg, _ := good.ExpectedCost(w)
	cb, _ := bad.ExpectedCost(w)
	fmt.Printf("optimal %.0f, host-major %.0f, time-major %.0f\n", co, cg, cb)
	// Output:
	// optimal 1, host-major 1, time-major 16
}

// A FileStore may be shared across goroutines: here four workers each sum
// one quadrant of the grid concurrently, and the totals add up exactly.
// Schema, Strategy, and the Region values are immutable and shared freely;
// only the GridQuery builder (not used here) is single-goroutine.
func ExampleFileStore_concurrent() {
	schema := snakes.NewSchema(snakes.Dim("A", 2, 2), snakes.Dim("B", 2, 2))
	strategy, _ := schema.RowMajor(0, 1)

	dir, _ := os.MkdirTemp("", "snakes-example")
	defer os.RemoveAll(dir)

	cells := schema.NumCells()
	bytesPerCell := make([]int64, cells)
	for i := range bytesPerCell {
		bytesPerCell[i] = snakes.FrameSize(8)
	}
	store, _ := strategy.CreateFileStore(filepath.Join(dir, "facts.db"), bytesPerCell, 256, 8)
	defer store.Close()

	// Load one record of value c into each cell c, single-threaded.
	rec := make([]byte, 8)
	for c := 0; c < cells; c++ {
		binary.LittleEndian.PutUint64(rec, math.Float64bits(float64(c)))
		store.PutRecord(c, rec)
	}

	decode := func(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }
	quadrants := []snakes.Region{
		{{Lo: 0, Hi: 2}, {Lo: 0, Hi: 2}},
		{{Lo: 0, Hi: 2}, {Lo: 2, Hi: 4}},
		{{Lo: 2, Hi: 4}, {Lo: 0, Hi: 2}},
		{{Lo: 2, Hi: 4}, {Lo: 2, Hi: 4}},
	}
	sums := make([]float64, len(quadrants))
	var wg sync.WaitGroup
	for i, q := range quadrants {
		wg.Add(1)
		go func(i int, q snakes.Region) {
			defer wg.Done()
			sums[i], _, _ = store.SumCtx(context.Background(), q, decode)
		}(i, q)
	}
	wg.Wait()

	total := 0.0
	for _, s := range sums {
		total += s
	}
	fmt.Printf("total %.0f\n", total) // 0+1+...+15
	// Output:
	// total 120
}

// Strategies round-trip through versioned JSON for catalog persistence.
func ExampleMarshalStrategy() {
	schema := snakes.NewSchema(snakes.Dim("a", 2), snakes.Dim("b", 3))
	st, _ := schema.PathStrategy([]int{1, 0}, true)
	blob, _ := snakes.MarshalStrategy(st)
	back, _ := snakes.UnmarshalStrategy(schema, blob)
	fmt.Println(back)
	// Output:
	// snaked ⟨(0,0) (0,1) (1,1)⟩
}
