package snakes

import (
	"context"
	"time"

	"repro/internal/obsevent"
)

// Wide-event telemetry re-exports. An Event is the one canonical record
// the daemon emits per served request — class, generation, predicted and
// observed cost, delta and plan-cache hits, admission wait, outcome,
// latency, trace id — published into a lock-free EventRing that backs
// both the access log and the /debug/events endpoint. The Calibration
// watch and SLOEngine consume the same stream: calibration tracks how
// well the paper's analytic cost model predicts observed physical cost
// per class, and the SLO engine turns per-class latency objectives into
// multi-window error-budget burn rates.

// Event is one request's wide telemetry record; immutable once
// published.
type Event = obsevent.Event

// EventRing is the fixed-size lock-free overwrite buffer of published
// events.
type EventRing = obsevent.Ring

// EventFilter selects events from a ring snapshot; zero fields match
// everything.
type EventFilter = obsevent.Filter

// NewEventRing returns a ring retaining the last capacity events.
func NewEventRing(capacity int) *EventRing { return obsevent.NewRing(capacity) }

// Event outcome labels — the closed error taxonomy of the event stream.
const (
	EventOutcomeOK          = obsevent.OutcomeOK
	EventOutcomeClientError = obsevent.OutcomeClientError
	EventOutcomeShed        = obsevent.OutcomeShed
	EventOutcomeTimeout     = obsevent.OutcomeTimeout
	EventOutcomeError       = obsevent.OutcomeError
)

// EventOutcomeOf maps an HTTP status onto the closed outcome set.
func EventOutcomeOf(status int) string { return obsevent.OutcomeOf(status) }

// WithEvent attaches a request's in-flight event to its context so
// handlers down the stack can fill in attribution fields.
func WithEvent(ctx context.Context, e *Event) context.Context {
	return obsevent.WithEvent(ctx, e)
}

// EventFromContext returns the request's in-flight event, or nil.
func EventFromContext(ctx context.Context) *Event { return obsevent.FromContext(ctx) }

// Calibration is the cost-model calibration watch: per-class
// exponentially decayed observed/predicted page and seek ratios with a
// drift flag for classes where the analytic model has gone stale.
type Calibration = obsevent.Calibration

// ClassCalibration is one class's calibration view.
type ClassCalibration = obsevent.ClassCalibration

// NewCalibration returns an empty watch; out-of-range parameters fall
// back to the package defaults.
func NewCalibration(alpha, threshold, minWeight float64) *Calibration {
	return obsevent.NewCalibration(alpha, threshold, minWeight)
}

// Calibration defaults.
const (
	DefaultCalibrationAlpha     = obsevent.DefaultCalibrationAlpha
	DefaultCalibrationThreshold = obsevent.DefaultCalibrationThreshold
	DefaultCalibrationMinWeight = obsevent.DefaultCalibrationMinWeight
)

// SLOEngine computes per-class error-budget burn rates over 5m/1h
// windows from the event stream.
type SLOEngine = obsevent.SLOEngine

// SLOConfig is the engine's objective set; SLOObjective is one latency
// objective; SLOClassStatus is one class's position for /healthz.
type (
	SLOConfig      = obsevent.SLOConfig
	SLOObjective   = obsevent.Objective
	SLOClassStatus = obsevent.SLOClassStatus
)

// SLO states and windows.
const (
	SLOStateOK      = obsevent.SLOStateOK
	SLOStateAtRisk  = obsevent.SLOStateAtRisk
	SLOStateBurning = obsevent.SLOStateBurning
	SLOShortWindow  = obsevent.SLOShortWindow
	SLOLongWindow   = obsevent.SLOLongWindow
)

// SLOStates enumerates the closed state label set for metrics.
func SLOStates() []string { return obsevent.SLOStates() }

// ParseSLOSpec parses the -slo flag syntax, e.g.
// "default=250ms@99.9;0,2=50ms@99" (';'-separated because class labels
// contain commas).
func ParseSLOSpec(spec string) (SLOConfig, error) { return obsevent.ParseSLOSpec(spec) }

// NewSLOEngine returns an engine on the wall clock.
func NewSLOEngine(cfg SLOConfig) *SLOEngine { return obsevent.NewSLOEngine(cfg) }

// NewSLOEngineWithClock returns an engine reading time from now, for
// deterministic burn-rate math in tests and benches.
func NewSLOEngineWithClock(cfg SLOConfig, now func() time.Time) *SLOEngine {
	return obsevent.NewSLOEngineWithClock(cfg, now)
}
