package snakes

import (
	"testing"
)

// figure1Schema builds the paper's Figure-1 schema from explicit labeled
// trees: jeans (type → gender variants) and location (state → city).
func figure1Schema(t *testing.T) *Schema {
	t.Helper()
	jeans, err := NewTree("jeans", Branch("any jeans",
		Branch("levi's", Leaf("men's levi's"), Leaf("women's levi's")),
		Branch("gitano", Leaf("men's gitano"), Leaf("women's gitano")),
	))
	if err != nil {
		t.Fatal(err)
	}
	location, err := NewTree("location", Branch("any location",
		Branch("NY", Leaf("nyc"), Leaf("albany")),
		Branch("ONT", Leaf("toronto"), Leaf("ottawa")),
	))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SchemaFromTrees(jeans, location)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExample1Queries reproduces the two SQL queries of Example 1 as grid
// queries: Q1 selects levi's × NY (class (1,1)); Q2 selects any jeans × ONT
// (class (2,1)).
func TestExample1Queries(t *testing.T) {
	s := figure1Schema(t)
	q1 := s.Query().Where("jeans", "levi's").Where("location", "NY")
	c1, err := q1.Class()
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(Class{1, 1}) {
		t.Errorf("Q1 class = %v, want (1,1)", c1)
	}
	r1, err := q1.Region()
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Lo != 0 || r1[0].Hi != 2 || r1[1].Lo != 0 || r1[1].Hi != 2 {
		t.Errorf("Q1 region = %v", r1)
	}

	q2 := s.Query().Where("location", "ONT")
	c2, err := q2.Class()
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Equal(Class{2, 1}) {
		t.Errorf("Q2 class = %v, want (2,1)", c2)
	}
	r2, err := q2.Region()
	if err != nil {
		t.Fatal(err)
	}
	if r2[0].Lo != 0 || r2[0].Hi != 4 || r2[1].Lo != 2 || r2[1].Hi != 4 {
		t.Errorf("Q2 region = %v", r2)
	}

	// A single-cell query: (men's levi's jeans, toronto) is class (0,0).
	q3 := s.Query().Where("jeans", "men's levi's").Where("location", "toronto")
	c3, err := q3.Class()
	if err != nil {
		t.Fatal(err)
	}
	if !c3.Equal(Class{0, 0}) {
		t.Errorf("cell query class = %v, want (0,0)", c3)
	}
}

func TestQueryErrors(t *testing.T) {
	s := figure1Schema(t)
	if _, err := s.Query().Where("color", "blue").Class(); err == nil {
		t.Error("unknown dimension should fail")
	}
	if _, err := s.Query().Where("jeans", "wrangler").Class(); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := s.Query().Where("jeans", "wrangler").Region(); err == nil {
		t.Error("Region should surface the resolution error")
	}
	if err := s.Query().Where("jeans", "wrangler").Err(); err == nil {
		t.Error("Err should surface the resolution error")
	}
	// Schemas built from plain dimensions cannot answer labeled queries.
	plain := NewSchema(Dim("a", 2), Dim("b", 2))
	if _, err := plain.Query().Class(); err == nil {
		t.Error("labelless schema should reject Query")
	}
}

func TestQueryAmbiguityAndWhereAt(t *testing.T) {
	// A tree where "east" names both a region and a city.
	tr, err := NewTree("geo", Branch("all",
		Branch("east", Leaf("east"), Leaf("boston")),
		Branch("west", Leaf("sf"), Leaf("la")),
	))
	if err != nil {
		t.Fatal(err)
	}
	day, err := NewTree("day", Branch("all", Leaf("mon"), Leaf("tue")))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SchemaFromTrees(tr, day)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query().Where("geo", "east").Class(); err == nil {
		t.Error("ambiguous label should fail")
	}
	c, err := s.Query().WhereAt("geo", "east", 1).Class()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(Class{1, 1}) {
		t.Errorf("WhereAt class = %v, want (1,1)", c)
	}
	c0, err := s.Query().WhereAt("geo", "east", 0).Class()
	if err != nil {
		t.Fatal(err)
	}
	if !c0.Equal(Class{0, 1}) {
		t.Errorf("WhereAt leaf class = %v, want (0,1)", c0)
	}
	if _, err := s.Query().WhereAt("geo", "boston", 1).Class(); err == nil {
		t.Error("label at wrong level should fail")
	}
	if _, err := s.Query().WhereAt("geo", "boston", 9).Class(); err == nil {
		t.Error("out-of-range level should fail")
	}
}

// TestUnbalancedTreeQueries: dummy-extended hierarchies resolve labels to
// the original (non-dummy) nodes.
func TestUnbalancedTreeQueries(t *testing.T) {
	loc, err := NewTree("location", Branch("all",
		Branch("NY", Leaf("nyc"), Leaf("albany")),
		Leaf("DC"), // unbalanced: no city level
	))
	if err != nil {
		t.Fatal(err)
	}
	prod, err := NewTree("product", Branch("all", Leaf("p1"), Leaf("p2")))
	if err != nil {
		t.Fatal(err)
	}
	s, err := SchemaFromTrees(loc, prod)
	if err != nil {
		t.Fatal(err)
	}
	// "DC" appears as a leaf and as its dummy parent; Find must resolve to
	// the real leaf.
	c, err := s.Query().Where("location", "DC").Class()
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 0 {
		t.Errorf("DC resolves to level %d, want 0", c[0])
	}
	r, err := s.Query().Where("location", "DC").Region()
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Hi-r[0].Lo != 1 {
		t.Errorf("DC region = %v, want a single leaf", r[0])
	}
	// End to end: optimize a workload phrased through labeled queries.
	q := s.Query().Where("location", "NY")
	cls, err := q.Class()
	if err != nil {
		t.Fatal(err)
	}
	w := s.ClassWorkload(cls)
	if _, err := Optimize(w); err != nil {
		t.Fatal(err)
	}
}
