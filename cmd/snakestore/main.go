// Command snakestore is a miniature clustered fact store: it optimizes a
// clustering strategy for a workload, bulk-loads CSV records into a paged
// file clustered by that strategy, and answers grid queries with real
// page/seek accounting.
//
// Workflow:
//
//	snakestore optimize -dims "region:4,2 day:30,12" \
//	    -workload "0,1:0.6 1,1:0.4" -catalog cat.json
//	snakestore build -catalog cat.json -csv facts.csv -store facts.db
//	snakestore query -catalog cat.json -store facts.db \
//	    -where "region=3..7" -where "day=0..30" [-sum 2]
//	snakestore verify -catalog cat.json -store facts.db
//	snakestore serve -catalog cat.json -store facts.db -addr :7133
//
// slo validates a -slo objective spec ("default=250ms@99.9;0,2=50ms@99"),
// optionally against a catalog's class set, and prints the resolved
// per-class objectives — the dry-run companion of serve's -slo flag.
//
// serve answers grid queries and scrubs over HTTP (/query, /verify,
// /healthz) against one shared store: requests run concurrently through the
// goroutine-safe buffer pool, admission control sheds excess load with 503,
// each request is bounded by a deadline, and SIGTERM drains in-flight
// requests before flushing and closing the store (while /healthz fails over
// to 503 "draining"). /metrics exposes pool, admission, and request
// telemetry in the Prometheus text format; -pprof mounts net/http/pprof
// under /debug/pprof/; every request is logged in key=value form with a
// unique request id.
//
// CSV layout: the first k columns are the record's leaf coordinates, one
// per dimension in schema order; remaining columns are payload. The catalog
// JSON written by optimize (and updated by build) carries the schema, the
// chosen strategy, and the load state, so query needs no other input.
//
// Durability: catalog writes are atomic (write temp, fsync, rename); build
// marks the catalog dirty before touching the store file and clears the
// flag only after a complete, flushed load, so an interrupted build is
// detected on the next open. verify scrubs the store: every page is
// re-read from disk, its CRC32C trailer checked, and every cell's record
// framing walked. Exit status: 0 on success, 1 on I/O or corruption
// errors, 2 on usage errors.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	snakes "repro"
)

// catalogVersion is the current catalog format. Version 1 (no dirty flag)
// and version 2 (no generations) are still readable; writes always upgrade
// to the current version.
const catalogVersion = 3

// catalog is the persistent description of one snakestore database.
type catalog struct {
	Version     int             `json:"version"`
	Schema      json.RawMessage `json:"schema"`
	Strategy    json.RawMessage `json:"strategy"`
	PageBytes   int             `json:"pageBytes"`
	Dirty       bool            `json:"dirty,omitempty"`
	BytesPer    []int64         `json:"bytesPerCell,omitempty"`
	LoadedBytes []int64         `json:"loadedBytes,omitempty"`
	// Generation and StoreFile record which physical file holds the live
	// store after adaptive reorganizations: generation 0 is the original
	// build at the base store path, generation N > 0 lives at base.gN. The
	// catalog is rewritten atomically before the old generation is deleted,
	// so a crash between the two leaves both files on disk and the catalog
	// pointing at the valid one.
	Generation int    `json:"generation,omitempty"`
	StoreFile  string `json:"storeFile,omitempty"`
}

// genPath returns the store file for a generation: the base path itself for
// generation 0, base.g<N> afterwards.
func genPath(base string, gen int) string {
	if gen <= 0 {
		return base
	}
	return fmt.Sprintf("%s.g%d", base, gen)
}

// activeStorePath resolves the file holding the catalog's live generation,
// relative to the -store base path the user passed.
func activeStorePath(cat *catalog, base string) string {
	if cat.StoreFile != "" {
		return filepath.Join(filepath.Dir(base), cat.StoreFile)
	}
	return genPath(base, cat.Generation)
}

// cleanStaleGenerations removes generation files left behind by a crash
// between the catalog swap and the old generation's deletion: every file
// matching the base name or base.g<N> — or one of their .parity or .delta
// sidecars — except the active generation and its sidecars. Returns the
// paths removed.
func cleanStaleGenerations(base, active string) ([]string, error) {
	dir := filepath.Dir(base)
	re := regexp.MustCompile(`^` + regexp.QuoteMeta(filepath.Base(base)) + `(\.g\d+)?(\.parity|\.delta)?$`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !re.MatchString(e.Name()) {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if p == active || p == snakes.ParityPath(active) || p == snakes.DeltaPath(active) {
			continue
		}
		if err := os.Remove(p); err != nil {
			return removed, err
		}
		removed = append(removed, p)
	}
	return removed, nil
}

// errUsage marks errors caused by bad invocation (exit 2) rather than I/O
// or corruption (exit 1).
var errUsage = errors.New("usage error")

func usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errUsage, fmt.Sprintf(format, args...))
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "optimize":
		err = cmdOptimize(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "slo":
		err = cmdSLO(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snakestore:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: snakestore optimize|build|query|verify|serve|slo [flags]")
	os.Exit(2)
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	dims := fs.String("dims", "", "dimensions as name:fanouts, space separated")
	wl := fs.String("workload", "", "workload as class:prob pairs; empty = uniform")
	page := fs.Int("page", 8192, "page size in bytes")
	out := fs.String("catalog", "catalog.json", "catalog file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	schema, err := parseSchema(*dims)
	if err != nil {
		return usagef("%v", err)
	}
	w, err := parseWorkload(schema, *wl)
	if err != nil {
		return usagef("%v", err)
	}
	st, err := snakes.Optimize(w)
	if err != nil {
		return err
	}
	cost, err := st.ExpectedCost(w)
	if err != nil {
		return err
	}
	schemaJSON, err := snakes.MarshalSchema(schema)
	if err != nil {
		return err
	}
	stratJSON, err := snakes.MarshalStrategy(st)
	if err != nil {
		return err
	}
	cat := catalog{Version: catalogVersion, Schema: schemaJSON, Strategy: stratJSON, PageBytes: *page}
	if err := writeCatalog(*out, &cat); err != nil {
		return err
	}
	fmt.Printf("strategy %v (expected %.3f seeks/query) → %s\n", st, cost, *out)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	catPath := fs.String("catalog", "catalog.json", "catalog file from optimize")
	csvPath := fs.String("csv", "", "input CSV: k leaf coordinates then payload columns")
	storePath := fs.String("store", "facts.db", "output page file")
	frames := fs.Int("frames", 1024, "buffer pool frames")
	parityGroup := fs.Int("parity-group", snakes.DefaultParityGroup, "data pages per parity page in the repair sidecar; 0 skips parity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, schema, strat, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	k := len(schemaDims(cat))
	if cat.Dirty {
		fmt.Fprintln(os.Stderr, "snakestore: catalog marked dirty (interrupted build); rebuilding from CSV")
	}

	// Mark the catalog dirty — atomically — before the store file is
	// touched. A crash anywhere in the load leaves the flag set, so the
	// next open knows the store and catalog may disagree. A rebuild starts
	// over at generation 0, so reorganized generations from an earlier
	// serve are stale and removed.
	cat.Version = catalogVersion
	cat.Dirty = true
	cat.BytesPer, cat.LoadedBytes = nil, nil
	cat.Generation, cat.StoreFile = 0, ""
	if err := writeCatalog(*catPath, cat); err != nil {
		return err
	}
	if _, err := cleanStaleGenerations(*storePath, *storePath); err != nil {
		return err
	}

	// Pass 1: size every cell.
	bytesPerCell := make([]int64, schema.NumCells())
	order, err := strat.Materialize()
	if err != nil {
		return err
	}
	if err := scanCSV(*csvPath, k, order, func(cell int, payload []byte) error {
		bytesPerCell[cell] += snakes.FrameSize(len(payload))
		return nil
	}); err != nil {
		return err
	}
	// Pass 2: load.
	store, err := strat.CreateFileStore(*storePath, bytesPerCell, cat.PageBytes, *frames)
	if err != nil {
		return err
	}
	var records int64
	if err := scanCSV(*csvPath, k, order, func(cell int, payload []byte) error {
		records++
		return store.PutRecord(cell, payload)
	}); err != nil {
		store.Close()
		return err
	}
	cat.BytesPer = bytesPerCell
	cat.LoadedBytes = store.LoadedBytes()
	// Write the repair sidecar while the loaded store is still open: parity
	// covers the flushed pages, so a later bit-flip on disk is repairable.
	if *parityGroup > 0 {
		if err := store.WriteParity(snakes.ParityPath(*storePath), *parityGroup); err != nil {
			store.Close()
			return fmt.Errorf("building parity sidecar: %w", err)
		}
	}
	if err := store.Close(); err != nil {
		return err
	}
	// The store is complete and flushed: clear the dirty flag last.
	cat.Dirty = false
	if err := writeCatalog(*catPath, cat); err != nil {
		return err
	}
	fmt.Printf("loaded %d records into %s (%d pages of %d B)\n",
		records, *storePath, store.Layout().TotalPages(), cat.PageBytes)
	if *parityGroup > 0 {
		fmt.Printf("parity sidecar %s (group %d, %.1f%% overhead)\n",
			snakes.ParityPath(*storePath), *parityGroup, 100.0/float64(*parityGroup))
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	catPath := fs.String("catalog", "catalog.json", "catalog file")
	storePath := fs.String("store", "facts.db", "page file from build")
	frames := fs.Int("frames", 1024, "buffer pool frames")
	sumCol := fs.Int("sum", -1, "payload column to sum (0-based, after the coordinate columns)")
	var wheres multiFlag
	fs.Var(&wheres, "where", "dimension restriction name=lo..hi (repeatable; unrestricted dims select all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, schema, strat, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	if cat.Dirty {
		return fmt.Errorf("catalog %s is dirty: a build was interrupted before completion; re-run build to restore a consistent store", *catPath)
	}
	if cat.BytesPer == nil {
		return fmt.Errorf("catalog has no load state; run build first")
	}
	region, err := parseRegion(schema, schemaDims(cat), wheres)
	if err != nil {
		return usagef("%v", err)
	}
	store, err := strat.OpenFileStore(activeStorePath(cat, *storePath), cat.BytesPer, cat.PageBytes, *frames, cat.LoadedBytes)
	if err != nil {
		return err
	}
	defer store.Close()

	var count int64
	var total float64
	var sumErr error
	err = store.Scan(region, func(cell int, record []byte) error {
		count++
		if *sumCol >= 0 {
			fields := strings.Split(string(record), ",")
			if *sumCol >= len(fields) {
				sumErr = fmt.Errorf("record has %d payload columns, -sum asked for %d", len(fields), *sumCol)
				return sumErr
			}
			v, err := strconv.ParseFloat(fields[*sumCol], 64)
			if err != nil {
				sumErr = fmt.Errorf("column %d: %v", *sumCol, err)
				return sumErr
			}
			total += v
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, snakes.ErrCorruptPage) {
			reportCorruption(store, err)
		}
		return err
	}
	io := store.Pool().Stats()
	fmt.Printf("region %v: %d records", region, count)
	if *sumCol >= 0 {
		fmt.Printf(", sum(col %d) = %g", *sumCol, total)
	}
	fmt.Printf("  [%d page reads, %d hits]\n", io.Misses, io.Hits)
	return nil
}

// cmdVerify scrubs the store: every page re-read from disk with its
// checksum verified, every cell's record framing walked, and the catalog's
// dirty flag surfaced. With -repair, corrupt pages are reconstructed from
// the parity sidecar instead of only reported: exit 0 when everything was
// repaired (the store re-verifies clean), 1 when damage is unrepairable.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	catPath := fs.String("catalog", "catalog.json", "catalog file")
	storePath := fs.String("store", "facts.db", "page file from build")
	frames := fs.Int("frames", 1024, "buffer pool frames")
	repair := fs.Bool("repair", false, "repair corrupt pages from the parity sidecar instead of only reporting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, _, strat, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	if cat.BytesPer == nil {
		return fmt.Errorf("catalog has no load state; run build first")
	}
	active := activeStorePath(cat, *storePath)
	store, err := strat.OpenFileStore(active, cat.BytesPer, cat.PageBytes, *frames, cat.LoadedBytes)
	if err != nil {
		return err
	}
	defer store.Close()
	if *repair {
		if err := store.AttachParity(snakes.ParityPath(active)); err != nil {
			return fmt.Errorf("-repair needs the parity sidecar: %w", err)
		}
		rrep, err := store.RepairCtx(context.Background())
		if err != nil {
			return fmt.Errorf("repair sweep aborted: %w", err)
		}
		fmt.Printf("swept %d pages, repaired %d\n", rrep.Pages, len(rrep.Repaired))
		for _, p := range rrep.Repaired {
			fmt.Printf("repaired page %d from parity\n", p)
		}
		for _, p := range rrep.Failed {
			fmt.Fprintln(os.Stderr, "snakestore: unrepairable:", p.String())
		}
		if !rrep.OK() {
			return fmt.Errorf("repair failed: %d page(s) unrepairable: %w", len(rrep.Failed), snakes.ErrUnrepairable)
		}
	}
	rep, err := store.Verify()
	if err != nil {
		return fmt.Errorf("scrub aborted: %w", err)
	}
	fmt.Printf("scrubbed %d pages, %d records\n", rep.Pages, rep.Records)
	for _, p := range rep.Problems {
		fmt.Fprintln(os.Stderr, "snakestore: corrupt:", p.String())
	}
	if !rep.OK() {
		if *repair {
			return fmt.Errorf("repair left %d problem(s): %w", len(rep.Problems), snakes.ErrCorruptPage)
		}
		return fmt.Errorf("verify failed: %d problem(s): %w", len(rep.Problems), snakes.ErrCorruptPage)
	}
	if cat.Dirty {
		return fmt.Errorf("store pages are clean but catalog %s is dirty: a build was interrupted; re-run build", *catPath)
	}
	fmt.Println("store is clean")
	return nil
}

// reportCorruption runs a scrub after a query tripped over ErrCorruptPage,
// printing each damaged page with its cell coordinates.
func reportCorruption(store *snakes.FileStore, cause error) {
	var cpe *snakes.CorruptPageError
	if errors.As(cause, &cpe) {
		fmt.Fprintf(os.Stderr, "snakestore: corruption detected on page %d; scrubbing store\n", cpe.Page)
	}
	rep, err := store.Verify()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snakestore: scrub aborted:", err)
		return
	}
	for _, p := range rep.Problems {
		fmt.Fprintln(os.Stderr, "snakestore: corrupt:", p.String())
	}
}

// multiFlag collects repeated -where flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// parseSchema parses "name:f1,f2 name2:f1" into a schema.
func parseSchema(spec string) (*snakes.Schema, error) {
	var dims []snakes.Dimension
	for _, tok := range strings.Fields(spec) {
		name, fans, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("dimension %q: want name:fanouts", tok)
		}
		var fanouts []int
		for _, f := range strings.Split(fans, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("dimension %q: %v", tok, err)
			}
			fanouts = append(fanouts, n)
		}
		dims = append(dims, snakes.Dim(name, fanouts...))
	}
	return snakes.BuildSchema(dims...)
}

// parseWorkload parses "i,j:p ..." class weights; empty means uniform.
func parseWorkload(s *snakes.Schema, spec string) (*snakes.Workload, error) {
	if strings.TrimSpace(spec) == "" {
		return s.UniformWorkload(), nil
	}
	w := s.NewWorkload()
	for _, tok := range strings.Fields(spec) {
		cls, prob, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("workload entry %q: want class:prob", tok)
		}
		var c snakes.Class
		for _, lv := range strings.Split(cls, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(lv))
			if err != nil {
				return nil, fmt.Errorf("workload entry %q: %v", tok, err)
			}
			c = append(c, n)
		}
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil {
			return nil, fmt.Errorf("workload entry %q: %v", tok, err)
		}
		w.Set(c, p)
	}
	if err := w.Normalize(); err != nil {
		return nil, err
	}
	return w, nil
}

// parseRegion builds a region from repeated name=lo..hi restrictions;
// unmentioned dimensions select their full range.
func parseRegion(s *snakes.Schema, dims []snakes.Dimension, wheres []string) (snakes.Region, error) {
	region := make(snakes.Region, len(dims))
	for d, dim := range dims {
		leaves := 1
		for _, f := range dim.Fanouts {
			leaves *= f
		}
		region[d] = snakes.Range{Lo: 0, Hi: leaves}
	}
	for _, wh := range wheres {
		name, rng, ok := strings.Cut(wh, "=")
		if !ok {
			return nil, fmt.Errorf("restriction %q: want name=lo..hi", wh)
		}
		d := -1
		for i, dim := range dims {
			if dim.Name == name {
				d = i
				break
			}
		}
		if d < 0 {
			return nil, fmt.Errorf("restriction %q: no dimension %q", wh, name)
		}
		loS, hiS, ok := strings.Cut(rng, "..")
		if !ok {
			return nil, fmt.Errorf("restriction %q: want lo..hi", wh)
		}
		lo, err := strconv.Atoi(loS)
		if err != nil {
			return nil, fmt.Errorf("restriction %q: %v", wh, err)
		}
		hi, err := strconv.Atoi(hiS)
		if err != nil {
			return nil, fmt.Errorf("restriction %q: %v", wh, err)
		}
		if lo < 0 || hi <= lo || hi > region[d].Hi {
			return nil, fmt.Errorf("restriction %q: range [%d,%d) out of bounds [0,%d)", wh, lo, hi, region[d].Hi)
		}
		region[d] = snakes.Range{Lo: lo, Hi: hi}
	}
	return region, nil
}

// scanCSV streams the CSV, mapping each row's first k columns to a cell and
// re-encoding the remaining columns (comma-joined) as the payload.
func scanCSV(path string, k int, order *snakes.Order, fn func(cell int, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	line := 0
	coords := make([]int, k)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		line++
		if line == 1 && !numeric(rec[0]) {
			continue // header row
		}
		if len(rec) < k {
			return fmt.Errorf("line %d: %d columns, need at least %d coordinates", line, len(rec), k)
		}
		for d := 0; d < k; d++ {
			v, err := strconv.Atoi(strings.TrimSpace(rec[d]))
			if err != nil {
				return fmt.Errorf("line %d: coordinate %d: %v", line, d, err)
			}
			coords[d] = v
		}
		cell := order.CellIndex(coords)
		payload := strings.Join(rec[k:], ",")
		if err := fn(cell, []byte(payload)); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
}

func numeric(s string) bool {
	_, err := strconv.Atoi(strings.TrimSpace(s))
	return err == nil
}

// writeCatalog replaces the catalog atomically: the new content is written
// to a temp file, fsynced, and renamed over the old one, and the directory
// is fsynced so the rename survives a crash. A crash at any point leaves
// either the old or the new catalog intact — never a torn mix.
func writeCatalog(path string, cat *catalog) error {
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

func loadCatalog(path string) (*catalog, *snakes.Schema, *snakes.Strategy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var cat catalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return nil, nil, nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if cat.Version < 1 || cat.Version > catalogVersion {
		return nil, nil, nil, fmt.Errorf("%s: unsupported catalog version %d (this binary reads 1..%d)", path, cat.Version, catalogVersion)
	}
	schema, err := snakes.UnmarshalSchema(cat.Schema)
	if err != nil {
		return nil, nil, nil, err
	}
	strat, err := snakes.UnmarshalStrategy(schema, cat.Strategy)
	if err != nil {
		return nil, nil, nil, err
	}
	return &cat, schema, strat, nil
}

// schemaDims re-decodes the dimension list from the catalog's schema blob.
func schemaDims(cat *catalog) []snakes.Dimension {
	var sj struct {
		Dims []snakes.Dimension `json:"dims"`
	}
	_ = json.Unmarshal(cat.Schema, &sj)
	return sj.Dims
}
