package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	snakes "repro"
)

// buildVersion identifies the binary in snakestore_build_info; override at
// link time with -ldflags "-X main.buildVersion=...".
var buildVersion = "dev"

// server answers grid queries over HTTP against one shared FileStore. The
// store is goroutine-safe, so requests run concurrently; an admission
// controller bounds the total analytic page weight in flight, and requests
// that cannot be admitted in time are shed with 503 instead of queueing
// without bound. A corrupt page discovered while serving is quarantined —
// recorded and reported via /healthz — rather than crashing the daemon.
//
// With -adapt the daemon also closes the paper's loop at runtime: every
// /query is attributed to its lattice class and fed to a Reorganizer, which
// re-runs the Figure-4 DP against the decayed live distribution and — when
// the deployed linearization's regret clears the policy — migrates the
// store into a new generation file and hot-swaps the serving pointer. The
// store field is therefore an atomic pointer: handlers snapshot it once per
// request, in-flight readers on the old generation drain through its
// close, and queries racing a swap see either generation but never a torn
// state.
//
// Every request flows through the instrument middleware: it is counted and
// timed in the /metrics registry and logged in key=value form with a
// process-unique request id.
type server struct {
	store      atomic.Pointer[snakes.FileStore]
	schema     *snakes.Schema
	dims       []snakes.Dimension
	adm        *snakes.Admission
	reqTimeout time.Duration
	readOpts   snakes.ReadOptions // parallel read knobs; zero = sequential path
	metrics    *serverMetrics
	log        *slog.Logger
	pprof      bool // mount /debug/pprof/ on the serving mux
	traces     *snakes.TraceRecorder
	started    time.Time
	clock      func() time.Time // injectable for deterministic latency/SLO tests

	// Observability v2: every served request publishes one wide Event into
	// events (the ring behind /debug/events and the access log); query
	// events additionally feed calib, the cost-model calibration watch.
	// slo stays nil unless -slo configured objectives.
	events *snakes.EventRing
	calib  *snakes.Calibration
	slo    *snakes.SLOEngine

	// Write path state; ing stays nil when -ingest is off.
	ing *ingestState

	// Adaptive reorganization state; reorg stays nil when -adapt is off.
	// calibrateRegret (the -adapt-calibrated flag) additionally scales the
	// policy's deployed cost by the calibration watch's observed/predicted
	// seek ratio — opt-in, because a warm pool legitimately suppresses
	// regret and operators may want the pure analytic policy.
	calibrateRegret bool
	reorg           *snakes.Reorganizer
	generation      atomic.Int64
	swapMu          sync.Mutex // serializes store swaps against drain
	catPath         string
	storeBase       string
	frames          int
	cat             *catalog

	draining atomic.Bool   // set once graceful shutdown begins
	reqID    atomic.Uint64 // request id sequence for log correlation

	// Self-healing: the parity group size for regenerated sidecars and the
	// health state machine. Health is derived from quarantine plus the
	// healing flag: ok (quarantine empty) → degraded (corruption detected)
	// → healing (repairs in progress) → back to ok when the quarantine
	// empties, or degraded again when damage proves unrepairable.
	parityGroup int

	mu         sync.Mutex
	quarantine map[int64]string // corrupt page -> first error seen
	healing    bool             // a repair pass is actively working the quarantine
	lastScrub  string           // outcome of the most recent /verify
}

func newServer(store *snakes.FileStore, schema *snakes.Schema, dims []snakes.Dimension, adm *snakes.Admission, reqTimeout time.Duration, gen int, tcfg snakes.TraceConfig) *server {
	s := &server{
		schema:      schema,
		dims:        dims,
		adm:         adm,
		reqTimeout:  reqTimeout,
		log:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		quarantine:  make(map[int64]string),
		parityGroup: snakes.DefaultParityGroup,
		traces:      snakes.NewTraceRecorder(tcfg),
		started:     time.Now(),
		clock:       time.Now,
		events:      snakes.NewEventRing(defaultEventCapacity),
		calib:       snakes.NewCalibration(snakes.DefaultCalibrationAlpha, snakes.DefaultCalibrationThreshold, snakes.DefaultCalibrationMinWeight),
	}
	s.store.Store(store)
	s.generation.Store(int64(gen))
	s.metrics = newServerMetrics(s.st, adm, schema)
	s.metrics.reg.GaugeFunc("snakestore_quarantined_pages", "pages quarantined after checksum failures", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.quarantine))
	})
	s.metrics.reg.GaugeFunc("snakestore_store_generation", "store generation currently serving", func() float64 {
		return float64(s.generation.Load())
	})
	for _, hs := range healthStates {
		hs := hs
		s.metrics.reg.GaugeFunc("snakestore_health_state", "1 for the current health state, by state", func() float64 {
			if s.healthState() == hs {
				return 1
			}
			return 0
		}, "state", hs)
	}
	s.metrics.reg.GaugeFunc("snakestore_build_info", "constant 1, labeled with the binary version, Go runtime, and startup store generation",
		func() float64 { return 1 },
		"version", buildVersion, "goversion", runtime.Version(), "generation", strconv.Itoa(gen))
	// Trace retention counters read the recorder's atomics at scrape time,
	// like the pool and admission families.
	tst := func(f func(snakes.TraceStats) uint64) func() int64 {
		return func() int64 { return int64(f(s.traces.Stats())) }
	}
	s.metrics.reg.CounterFunc("snakestore_traces_started_total", "requests that carried a candidate trace", tst(func(st snakes.TraceStats) uint64 { return st.Started }))
	s.metrics.reg.CounterFunc("snakestore_traces_kept_total", "finished traces retained, by reason", tst(func(st snakes.TraceStats) uint64 { return st.KeptSampled }), "reason", "sampled")
	s.metrics.reg.CounterFunc("snakestore_traces_kept_total", "finished traces retained, by reason", tst(func(st snakes.TraceStats) uint64 { return st.KeptSlow }), "reason", "slow")
	s.metrics.reg.CounterFunc("snakestore_traces_kept_total", "finished traces retained, by reason", tst(func(st snakes.TraceStats) uint64 { return st.KeptError }), "reason", "error")
	s.metrics.reg.CounterFunc("snakestore_traces_kept_total", "finished traces retained, by reason", tst(func(st snakes.TraceStats) uint64 { return st.KeptForced }), "reason", "forced")
	s.metrics.reg.CounterFunc("snakestore_traces_discarded_total", "candidate traces finished without retention", tst(func(st snakes.TraceStats) uint64 { return st.Discarded }))
	s.metrics.reg.CounterFunc("snakestore_trace_spans_dropped_total", "spans dropped from traces at the per-trace cap", tst(func(st snakes.TraceStats) uint64 { return st.DroppedSpans }))
	// Wide-event ring retention, read straight from the ring's atomics.
	s.metrics.reg.CounterFunc("snakestore_event_published_total", "wide events published into the /debug/events ring", func() int64 { return int64(s.events.Published()) })
	s.metrics.reg.CounterFunc("snakestore_event_overwritten_total", "wide events overwritten in the ring before being queried", func() int64 { return int64(s.events.Overwritten()) })
	s.metrics.reg.GaugeFunc("snakestore_event_ring_capacity", "wide events the ring retains", func() float64 { return float64(s.events.Capacity()) })
	// Cost-model calibration watch: per-class decayed observed/predicted
	// ratios plus the global seek correction the adaptive policy consumes.
	// The class label set is closed (pre-registered from the schema), like
	// the query-class counters.
	for _, c := range schema.Classes() {
		lbl := classLabel(c)
		calibView := func() snakes.ClassCalibration {
			v, _ := s.calib.Class(lbl)
			return v
		}
		s.metrics.reg.GaugeFunc("snakestore_calibration_page_ratio", "decayed observed/predicted pages by query class (1 = model exact)", func() float64 { return calibView().PageRatio }, "class", lbl)
		s.metrics.reg.GaugeFunc("snakestore_calibration_seek_ratio", "decayed observed/predicted seeks by query class (1 = model exact)", func() float64 { return calibView().SeekRatio }, "class", lbl)
		s.metrics.reg.GaugeFunc("snakestore_calibration_weight", "decayed observation mass behind the class calibration", func() float64 { return calibView().Weight }, "class", lbl)
		s.metrics.reg.GaugeFunc("snakestore_calibration_drifted", "1 while the class's cost model is flagged stale (ratio past the drift threshold)", func() float64 {
			if calibView().Drifted {
				return 1
			}
			return 0
		}, "class", lbl)
	}
	s.metrics.reg.GaugeFunc("snakestore_calibration_seek_correction", "global observed/predicted seek ratio applied to the reorg policy's deployed cost", func() float64 { return s.calib.SeekCorrection() })
	s.armFragmentObserver(store)
	return s
}

// enableSLO wires per-class latency objectives onto the server: every
// query event feeds the engine, /healthz carries the per-class burn
// status, and the registry exports burn rates, one-hot states, and
// good/bad totals for the classes the spec tracks. Per-class objective
// keys must name schema classes — the metric label set is closed.
func (s *server) enableSLO(cfg snakes.SLOConfig) error {
	known := make(map[string]bool, s.schema.NumClasses())
	for _, c := range s.schema.Classes() {
		known[classLabel(c)] = true
	}
	tracked := make([]string, 0, s.schema.NumClasses())
	for lbl := range cfg.PerClass {
		if !known[lbl] {
			return fmt.Errorf("slo: class %q is not a class of this schema", lbl)
		}
	}
	if cfg.HasDefault {
		for _, c := range s.schema.Classes() {
			tracked = append(tracked, classLabel(c))
		}
	} else {
		for lbl := range cfg.PerClass {
			tracked = append(tracked, lbl)
		}
		sort.Strings(tracked)
	}
	if s.slo == nil {
		s.slo = snakes.NewSLOEngineWithClock(cfg, func() time.Time { return s.clock() })
	}
	for _, lbl := range tracked {
		lbl := lbl
		s.metrics.reg.GaugeFunc("snakestore_slo_burn_rate", "error-budget burn rate by class and window (1 = burning exactly the budget)", func() float64 {
			b5, _ := s.slo.BurnRates(lbl)
			return b5
		}, "class", lbl, "window", "5m")
		s.metrics.reg.GaugeFunc("snakestore_slo_burn_rate", "error-budget burn rate by class and window (1 = burning exactly the budget)", func() float64 {
			_, b60 := s.slo.BurnRates(lbl)
			return b60
		}, "class", lbl, "window", "1h")
		for _, st := range snakes.SLOStates() {
			st := st
			s.metrics.reg.GaugeFunc("snakestore_slo_state", "1 for the class's current SLO state, by state", func() float64 {
				if s.slo.State(lbl) == st {
					return 1
				}
				return 0
			}, "class", lbl, "state", st)
		}
		s.metrics.reg.CounterFunc("snakestore_slo_requests_total", "SLO-observed requests by class and result", func() int64 {
			good, _ := s.slo.Totals(lbl)
			return good
		}, "class", lbl, "result", "good")
		s.metrics.reg.CounterFunc("snakestore_slo_requests_total", "SLO-observed requests by class and result", func() int64 {
			_, bad := s.slo.Totals(lbl)
			return bad
		}, "class", lbl, "result", "bad")
	}
	return nil
}

// armFragmentObserver routes a store's per-fragment completion samples
// from the parallel read path into the fragment latency histogram. Called
// for every store generation that starts serving, since the observer lives
// on the store, not the server.
func (s *server) armFragmentObserver(st *snakes.FileStore) {
	st.SetFragmentObserver(func(_ int64, seconds float64) {
		s.metrics.fragSeconds.Observe(seconds)
	})
}

// st returns the store currently serving. Handlers call it once per request
// so the analytic prediction and the physical read run against the same
// generation even when a reorganization swaps the pointer mid-request.
func (s *server) st() *snakes.FileStore { return s.store.Load() }

// closeStore closes the serving store, synchronizing with any in-flight
// swap commit so the store that survives is the one that gets closed.
func (s *server) closeStore() error {
	s.closeIngest()
	s.swapMu.Lock()
	st := s.st()
	s.swapMu.Unlock()
	return st.Close()
}

// enableReorg wires the adaptive reorganizer onto the server: the policy
// watches the classes handleQuery observes, and when it fires the server's
// reorgMigrate runs the migration and the generation swap.
func (s *server) enableReorg(catPath, storeBase string, frames int, cat *catalog, strat *snakes.Strategy, cfg snakes.ReorgConfig) error {
	s.catPath, s.storeBase, s.frames, s.cat = catPath, storeBase, frames, cat
	r, err := snakes.NewReorganizer(strat, cat.Generation, s.reorgMigrate, cfg)
	if err != nil {
		return err
	}
	r.OnEvaluate(func(e snakes.ReorgEvaluation) { s.metrics.reorgRegret.Set(e.Regret) })
	if s.calibrateRegret {
		// Regret in observed cost: the calibration watch's global seek
		// ratio maps the analytic model onto what the store actually pays.
		r.SetCostCorrection(s.calib.SeekCorrection)
	}
	r.OnReorg(func(outcome string, d time.Duration) {
		s.metrics.observeReorg(outcome, d.Seconds())
		s.log.Info("reorg", "outcome", outcome, "dur", d.Round(time.Millisecond), "gen", s.generation.Load())
	})
	s.reorg = r
	s.generation.Store(int64(cat.Generation))
	return nil
}

// reorgMigrate is the mechanism half of a reorganization: copy the store
// into the next generation file under the new strategy, persist the catalog
// (atomically, before anything is deleted), hot-swap the serving pointer,
// drain readers off the old generation, and delete the old file only after
// the new one passes a full scrub. A failure at any point before the
// catalog write aborts with the old generation untouched and no partial
// files; a crash after the catalog write leaves at most a stale file that
// startup cleanup removes.
func (s *server) reorgMigrate(ctx context.Context, d *snakes.ReorgDecision) error {
	old := s.st()
	newPath := genPath(s.storeBase, d.Generation)
	// The copy is incremental: the target linearization is cut into regions
	// scored by (1 + pending delta bytes) × (1 + clustering violation), and
	// the worst-clustered regions are rewritten first in paced bounded
	// ticks, so the migration converges toward the DP-optimal layout
	// without ever rewriting the whole file in one burst. Pending delta
	// upserts are folded in through the overlay as their cells are copied.
	var migLog *snakes.DeltaLog
	if s.ing != nil {
		s.ing.mu.Lock()
		migLog = s.ing.log
		s.ing.mu.Unlock()
	}
	dst, ticks, err := d.Strategy.MigrateRegionsCtx(ctx, old, newPath, s.frames, migLog, snakes.RegionMigrateOptions{
		RegionCells:     d.Pacing.RegionCells,
		MaxCellsPerTick: d.Pacing.MaxCellsPerTick,
		Pause:           d.Pacing.TickPause,
		Progress:        d.Progress,
	})
	if err != nil {
		return err
	}
	s.log.Info("reorg", "msg", "incremental region copy complete", "ticks", ticks, "gen", d.Generation)
	s.armFragmentObserver(dst)
	var newLog *snakes.DeltaLog
	abort := func(err error) error {
		if newLog != nil {
			newLog.Close()
			os.Remove(newLog.Path())
		}
		dst.Close()
		os.Remove(newPath)
		os.Remove(snakes.ParityPath(newPath))
		return err
	}
	// Cutover: block puts and compaction ticks, fold every entry still in
	// the log into the new generation (upserts that landed during the copy,
	// plus already-copied ones — PutCellBytes is an idempotent replace), and
	// open the new generation's fresh log. ing.mu is held through the swap
	// below so no put can land in the old log after its tail was carried.
	ingLocked := false
	unlockIngest := func() {
		if ingLocked {
			s.ing.mu.Unlock()
			ingLocked = false
		}
	}
	if s.ing != nil {
		s.ing.mu.Lock()
		ingLocked = true
	}
	defer unlockIngest()
	if s.ing != nil {
		for _, p := range s.ing.log.SnapshotPending() {
			if perr := dst.PutCellBytes(p.Cell, p.Payload); perr != nil {
				return abort(fmt.Errorf("reorg: carrying delta for cell %d: %w", p.Cell, perr))
			}
		}
		if ferr := dst.Pool().Flush(); ferr != nil {
			return abort(ferr)
		}
		newLog, err = snakes.OpenDeltaLog(snakes.DeltaPath(newPath), int64(d.Generation), s.ing.opt)
		if err != nil {
			return abort(err)
		}
		snakes.AttachDeltaLog(dst, newLog)
	}
	// The new generation's parity sidecar is written before the catalog
	// commit, so a generation is never live without its repair coverage; a
	// crash in between leaves stale files that startup cleanup sweeps.
	if err := dst.WriteParity(snakes.ParityPath(newPath), s.parityGroup); err != nil {
		return abort(err)
	}
	stratJSON, err := snakes.MarshalStrategy(d.Strategy)
	if err != nil {
		return abort(err)
	}

	// Commit point: catalog first (atomic rename), then the serving
	// pointer, all under swapMu so a concurrent drain either beats the
	// commit (we abort) or closes the store we just installed. Each phase
	// gets its own span, so a migration trace shows catalog commit, swap,
	// drain, and verify separately.
	s.swapMu.Lock()
	if s.draining.Load() {
		s.swapMu.Unlock()
		return abort(fmt.Errorf("reorg aborted: daemon draining: %w", snakes.ErrClosed))
	}
	oldPath := activeStorePath(s.cat, s.storeBase)
	cat := *s.cat
	cat.Version = catalogVersion
	cat.Strategy = stratJSON
	cat.Generation = d.Generation
	cat.StoreFile = filepath.Base(newPath)
	cat.LoadedBytes = dst.LoadedBytes()
	csp := snakes.StartTraceLeaf(ctx, snakes.TraceKindCatalogCommit, "")
	if err := writeCatalog(s.catPath, &cat); err != nil {
		csp.SetError(err)
		csp.End()
		s.swapMu.Unlock()
		return abort(err)
	}
	csp.End()
	ssp := snakes.StartTraceLeaf(ctx, snakes.TraceKindSwap, "")
	ssp.SetAttr("generation", int64(d.Generation))
	*s.cat = cat
	s.store.Store(dst)
	s.generation.Store(int64(d.Generation))
	ssp.End()
	s.swapMu.Unlock()

	// The new generation is serving; retire the old delta log. Its entries
	// were all folded into dst under ing.mu above, so the file is dead
	// weight (and would fail its generation check on the next startup).
	if s.ing != nil {
		oldLog := s.ing.log
		s.ing.log = newLog
		newLog = nil // the abort path must not remove the serving log
		if cerr := oldLog.Close(); cerr != nil {
			s.log.Warn("reorg", "msg", "closing retired delta log", "err", cerr)
		}
		if rerr := os.Remove(oldLog.Path()); rerr != nil && !os.IsNotExist(rerr) {
			s.log.Warn("reorg", "msg", "removing retired delta log", "err", rerr)
		}
	}
	unlockIngest()

	// The quarantine describes pages of the generation that just retired;
	// carrying its page ids against the new file would keep /healthz
	// degraded forever on damage that no longer exists. The post-swap scrub
	// below re-detects anything actually wrong with the new generation.
	s.mu.Lock()
	s.quarantine = make(map[int64]string)
	s.healing = false
	s.mu.Unlock()

	// The swap is committed: new requests already run on dst. Close the
	// old generation — Close blocks until its in-flight readers drain —
	// then gate the old file's deletion on a clean scrub of the new one.
	// The post-swap work keeps the trace but drops ctx's cancellation: a
	// canceled trigger must not abandon a committed swap half-tidied.
	pctx := context.WithoutCancel(ctx)
	dsp := snakes.StartTraceLeaf(pctx, snakes.TraceKindDrain, "")
	if err := old.Close(); err != nil && !errors.Is(err, snakes.ErrClosed) {
		s.log.Warn("reorg", "msg", "closing old generation", "err", err)
	}
	dsp.End()
	vctx, vsp := snakes.StartTraceSpan(pctx, snakes.TraceKindVerify, "")
	rep, verr := dst.VerifyCtx(vctx)
	vsp.SetError(verr)
	vsp.End()
	if verr != nil || !rep.OK() {
		if verr == nil {
			verr = fmt.Errorf("%d problem(s)", len(rep.Problems))
			for _, p := range rep.Problems {
				if errors.Is(p.Err, snakes.ErrCorruptPage) {
					s.noteCorrupt(fmt.Errorf("post-reorg scrub: %w", p.Err))
				}
			}
		}
		// The swap stands (the catalog already points at the new
		// generation) but the old file is kept as a recovery artifact.
		s.log.Warn("reorg", "msg", "post-swap scrub not clean; keeping old generation file", "err", verr)
		return nil
	}
	if oldPath != newPath {
		if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
			s.log.Warn("reorg", "msg", "removing old generation file", "err", err)
		}
		if err := os.Remove(snakes.ParityPath(oldPath)); err != nil && !os.IsNotExist(err) {
			s.log.Warn("reorg", "msg", "removing old generation parity sidecar", "err", err)
		}
	}
	return nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.instrument("query", true, s.handleQuery))
	mux.HandleFunc("/verify", s.instrument("verify", true, s.handleVerify))
	mux.HandleFunc("/healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.HandleFunc("/reorg", s.instrument("reorg", true, s.handleReorg))
	mux.HandleFunc("/repair", s.instrument("repair", true, s.handleRepair))
	mux.HandleFunc("/ingest", s.instrument("ingest", true, s.handleIngest))
	mux.HandleFunc("/debug/traces", s.instrument("traces", false, s.handleTraces))
	mux.HandleFunc("/debug/events", s.instrument("events", false, s.handleEvents))
	// /metrics keeps answering 200 through drain and even after the store
	// closes: the registry reads atomics, never the file.
	mux.Handle("/metrics", s.instrument("metrics", false, s.metrics.reg.Handler().ServeHTTP))
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// defaultEventCapacity is the wide-event ring size when -event-capacity
// is not given.
const defaultEventCapacity = 1024

// statusWriter captures the response code for metrics and logs, and
// carries the request's in-flight wide event so writeErr can record the
// error string without changing its signature.
type statusWriter struct {
	http.ResponseWriter
	code int
	ev   *snakes.Event
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// reqIDKey carries the request id so handlers can tag their own log lines.
type reqIDKey struct{}

func reqIDFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(reqIDKey{}).(uint64)
	return id
}

// instrument wraps an endpoint with the shared telemetry: request counter,
// in-flight gauge, latency histogram, per-status response counters, and one
// canonical wide Event per request — built here, filled by the handler via
// the request context (class, predicted/observed cost, delta and plan-cache
// hits, admission wait), published into the ring behind /debug/events, and
// rendered as the single access-log line. Query events additionally feed
// the cost-model calibration watch and, when -slo is configured, the
// per-class burn-rate engine. A handler panic is recovered here — logged
// with its stack under the request id, answered with a typed 500 if nothing
// was written yet, and counted — so one bad request can never take the
// daemon down.
//
// Endpoints marked traced additionally run under a trace from the server's
// recorder: the root span covers the whole request, handlers hang child
// spans off the request context, and the recorder's policy decides at
// finish whether the trace is retained for /debug/traces. A kept-slow
// trace also emits a slow-query log line with its per-kind span breakdown.
func (s *server) instrument(name string, traced bool, fn http.HandlerFunc) http.HandlerFunc {
	hm := s.metrics.handlers[name]
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		hm.requests.Inc()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		start := s.clock()
		ev := &snakes.Event{
			TimeUnixNs: start.UnixNano(),
			Handler:    name,
			Method:     r.Method,
			Path:       r.URL.Path,
			RequestID:  id,
		}
		sw := &statusWriter{ResponseWriter: w, ev: ev}
		ctx := context.WithValue(r.Context(), reqIDKey{}, id)
		ctx = snakes.WithEvent(ctx, ev)
		var tr *snakes.Trace
		if traced {
			ctx, tr = s.traces.Start(ctx, name)
			if tr != nil {
				ev.TraceID = tr.ID()
			}
		}
		panicErr := s.callHandler(sw, r.WithContext(ctx), fn, id)
		elapsed := s.clock().Sub(start)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		hm.response(code)
		hm.latency.Observe(elapsed.Seconds())
		ev.Status = code
		ev.Outcome = snakes.EventOutcomeOf(code)
		ev.LatencyNs = elapsed.Nanoseconds()
		if panicErr != nil && ev.Error == "" {
			ev.Error = panicErr.Error()
		}
		// Attribution closes here: a reconciled 200 query teaches the
		// calibration watch, and every class-attributed request with a
		// definite server-side outcome (2xx/5xx; client errors are the
		// caller's fault) feeds its SLO series.
		if ev.Class != "" && code == http.StatusOK {
			s.calib.Observe(ev.Class, ev.PredictedPages, ev.PagesRead, ev.PredictedSeeks, ev.SeeksObserved)
		}
		if s.slo != nil && ev.Class != "" && (code < 400 || code >= 500) {
			s.slo.Observe(ev.Class, elapsed, code >= 500)
		}
		// Publish after every field is final: ring events are immutable.
		s.events.Publish(ev)
		s.logEvent(ev)
		if tr != nil {
			finishErr := panicErr
			if finishErr == nil && code >= 500 {
				finishErr = fmt.Errorf("http %d", code)
			}
			res := tr.Finish(finishErr)
			s.metrics.observeTrace(tr, res)
			if res.Kept && res.Slow {
				s.log.Warn("slow-query",
					"req", id, "trace", tr.ID(), "handler", name, "url", r.URL.String(),
					"dur", res.Duration.Round(time.Microsecond), "spans", spanBreakdown(tr.Spans()))
			}
		}
	}
}

// logEvent renders one published wide event as the access-log line — the
// event is the single source, so the log carries exactly what
// /debug/events retains. Attribution fields appear only when set, keeping
// healthz/metrics probes to one short line.
func (s *server) logEvent(ev *snakes.Event) {
	args := []any{
		"req", ev.RequestID, "handler", ev.Handler, "method", ev.Method, "path", ev.Path,
		"status", ev.Status, "outcome", ev.Outcome,
		"dur", (time.Duration(ev.LatencyNs) * time.Nanosecond).Round(time.Microsecond),
	}
	if ev.TraceID != 0 {
		args = append(args, "trace", ev.TraceID)
	}
	if ev.Class != "" {
		args = append(args,
			"class", ev.Class, "gen", ev.Generation,
			"pagesAnalytic", ev.PredictedPages, "pagesRead", ev.PagesRead,
			"seeksAnalytic", ev.PredictedSeeks, "seeksObserved", ev.SeeksObserved,
			"deltaHits", ev.DeltaHits, "planCacheHit", ev.PlanCacheHit,
			"admissionWait", (time.Duration(ev.AdmissionWaitNs) * time.Nanosecond).Round(time.Microsecond))
	}
	if ev.Records != 0 {
		args = append(args, "records", ev.Records)
	}
	if ev.Error != "" {
		args = append(args, "err", ev.Error)
	}
	s.log.Info("request", args...)
}

// handleEvents serves GET /debug/events: the ring's retained wide events
// newest-first, optionally narrowed by handler, class, outcome, a minimum
// latency, a sequence floor, and a result cap. The ring is a window, not
// an archive — overwritten counts what scrolled off.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := snakes.EventFilter{
		Handler: q.Get("handler"),
		Class:   q.Get("class"),
		Outcome: q.Get("outcome"),
	}
	if v := q.Get("min_latency"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.writeErr(w, usagef("min_latency=%q: want a non-negative duration", v))
			return
		}
		f.MinLatency = d
	}
	if v := q.Get("since_seq"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.writeErr(w, usagef("since_seq=%q: want a sequence number", v))
			return
		}
		f.SinceSeq = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeErr(w, usagef("limit=%q: want a non-negative count", v))
			return
		}
		f.Limit = n
	}
	events := s.events.Query(f)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"published":   s.events.Published(),
		"overwritten": s.events.Overwritten(),
		"capacity":    s.events.Capacity(),
		"returned":    len(events),
		"events":      events,
	})
}

// callHandler runs the handler under the panic guard, returning the panic
// (as an error) when one was recovered.
func (s *server) callHandler(w *statusWriter, r *http.Request, fn http.HandlerFunc, id uint64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
			s.metrics.httpPanics.Inc()
			s.log.Error("panic", "req", id, "err", p, "stack", string(debug.Stack()))
			if w.code == 0 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				json.NewEncoder(w).Encode(map[string]string{"error": "internal server error"})
			}
		}
	}()
	fn(w, r)
	return nil
}

// spanBreakdown renders a finished trace's non-root spans as
// "kind×count=totalms" pairs for the slow-query log line.
func spanBreakdown(spans []snakes.TraceSpan) string {
	type agg struct {
		n  int
		ns int64
	}
	byKind := make(map[string]*agg)
	var order []string
	for _, sp := range spans {
		if sp.Kind == snakes.TraceKindRequest || sp.Dur < 0 {
			continue
		}
		a := byKind[sp.Kind]
		if a == nil {
			a = &agg{}
			byKind[sp.Kind] = a
			order = append(order, sp.Kind)
		}
		a.n++
		a.ns += sp.Dur
	}
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%s×%d=%.2fms", k, byKind[k].n, float64(byKind[k].ns)/1e6))
	}
	return strings.Join(parts, " ")
}

// beginDrain flips the daemon into draining: /healthz starts failing so load
// balancers pull the instance while in-flight requests finish, and no
// reorganization may commit a swap afterwards.
func (s *server) beginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.metrics.draining.Set(1)
		s.log.Info("drain", "msg", "graceful shutdown started")
	}
}

// requestCtx bounds one request by the per-request timeout.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.reqTimeout)
	}
	return context.WithCancel(r.Context())
}

// noteCorrupt records a corrupt page in the quarantine set.
func (s *server) noteCorrupt(err error) {
	var cpe *snakes.CorruptPageError
	page := int64(-1)
	if errors.As(err, &cpe) {
		page = cpe.Page
	}
	s.markQuarantined(page, err.Error())
}

// markQuarantined records one page in the quarantine set, keeping the first
// error seen for it.
func (s *server) markQuarantined(page int64, reason string) {
	s.mu.Lock()
	if _, seen := s.quarantine[page]; !seen {
		s.quarantine[page] = reason
	}
	s.mu.Unlock()
}

// clearQuarantined re-admits one page after it verified clean. The healing
// state ends when the quarantine empties — the scrubber has worked through
// everything it detected.
func (s *server) clearQuarantined(page int64) {
	s.mu.Lock()
	delete(s.quarantine, page)
	if len(s.quarantine) == 0 {
		s.healing = false
	}
	s.mu.Unlock()
}

// quarantinedPages snapshots the quarantine set, sorted.
func (s *server) quarantinedPages() []int64 {
	s.mu.Lock()
	pages := make([]int64, 0, len(s.quarantine))
	for p := range s.quarantine {
		pages = append(pages, p)
	}
	s.mu.Unlock()
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// healthState reports the serving health state machine's current state.
func (s *server) healthState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.healing:
		return "healing"
	case len(s.quarantine) > 0:
		return "degraded"
	default:
		return "ok"
	}
}

// repairPage attempts one parity repair on behalf of the scrubber, driving
// the health state machine and the repair metrics. Returns true when the
// page now reads clean.
func (s *server) repairPage(ctx context.Context, st *snakes.FileStore, page int64) bool {
	s.mu.Lock()
	s.healing = true
	s.mu.Unlock()
	rsp := snakes.StartTraceLeaf(ctx, snakes.TraceKindRepair, "")
	rsp.SetAttr("page", page)
	err := st.RepairPage(page)
	rsp.SetError(err)
	rsp.End()
	if err != nil {
		s.metrics.repairFailures.Inc()
		s.markQuarantined(page, err.Error())
		s.mu.Lock()
		s.healing = false // damage this pass cannot heal: back to degraded
		s.mu.Unlock()
		s.log.Warn("repair", "page", page, "err", err)
		return false
	}
	s.metrics.pagesRepaired.Inc()
	s.clearQuarantined(page)
	s.log.Info("repair", "page", page, "msg", "reconstructed from parity")
	return true
}

// runScrubLoop is the paced background scrubber: it walks the store's pages
// continuously at about rate pages/sec (in batches, so the pacing costs one
// timer per batch rather than one per page), re-checks quarantined pages
// first, repairs checksum failures from parity on the spot, and re-admits
// repaired pages from quarantine. The loop follows generation hot-swaps by
// re-snapshotting the serving store every batch, rides out ErrClosed races
// with a swap, and stops when the daemon drains or ctx ends. Batches that
// performed repairs are retained as forced traces (a scrub span with repair
// children); uneventful batches discard their trace.
func (s *server) runScrubLoop(ctx context.Context, rate float64) {
	if rate <= 0 {
		return
	}
	batch := int64(rate / 10)
	if batch < 1 {
		batch = 1
	}
	interval := time.Duration(float64(batch) / rate * float64(time.Second))
	t := time.NewTicker(interval)
	defer t.Stop()
	var cursor int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.draining.Load() {
				return
			}
			cursor = s.scrubBatch(ctx, cursor, batch)
		}
	}
}

// scrubBatch checks up to n pages starting at cursor against the current
// generation and returns the cursor for the next batch (wrapping at the end
// of the store, so the walk is continuous).
func (s *server) scrubBatch(ctx context.Context, cursor, n int64) int64 {
	st := s.st()
	total := st.Layout().TotalPages()
	if total == 0 {
		return 0
	}
	if cursor >= total {
		cursor = 0
	}
	tctx, tr := s.traces.StartForced(ctx, "scrub")
	sctx, ssp := snakes.StartTraceSpan(tctx, snakes.TraceKindScrub, "")
	checked, repairs := int64(0), 0
	check := func(p int64) {
		if p >= total {
			return // quarantined id from an older, larger generation
		}
		err := st.CheckPage(p)
		checked++
		s.metrics.scrubPages.Inc()
		switch {
		case err == nil:
			s.clearQuarantined(p)
		case errors.Is(err, snakes.ErrClosed):
			// Generation swapped or daemon closing mid-batch; the next
			// batch re-snapshots the store.
		case errors.Is(err, snakes.ErrCorruptPage):
			repairs++
			s.repairPage(sctx, st, p)
		default:
			s.log.Warn("scrub", "page", p, "err", err)
		}
	}
	// Quarantined pages jump the queue: a page a query tripped over gets
	// repaired within one batch instead of waiting for the cursor.
	for _, p := range s.quarantinedPages() {
		check(p)
	}
	end := cursor + n
	if end > total {
		end = total
	}
	for p := cursor; p < end; p++ {
		check(p)
	}
	ssp.SetAttr("pages", checked)
	ssp.End()
	if repairs == 0 {
		tr.Discard()
	} else if tr != nil {
		res := tr.Finish(nil)
		s.metrics.observeTrace(tr, res)
	}
	if end >= total {
		return 0
	}
	return end
}

// writeErr maps the serving error taxonomy onto HTTP statuses: bad input
// 400, a reorganization already running 409, shed or closed 503, timed out
// 504, corruption 500 (after quarantining the page).
func (s *server) writeErr(w http.ResponseWriter, err error) {
	if sw, ok := w.(*statusWriter); ok && sw.ev != nil {
		sw.ev.Error = err.Error()
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errUsage):
		status = http.StatusBadRequest
	case errors.Is(err, snakes.ErrReorgInProgress):
		status = http.StatusConflict
	case errors.Is(err, snakes.ErrOverloaded), errors.Is(err, snakes.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	case errors.Is(err, snakes.ErrCorruptPage):
		s.noteCorrupt(err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

type queryResponse struct {
	Region     string   `json:"region"`
	Records    int64    `json:"records"`
	Sum        *float64 `json:"sum,omitempty"`
	Pages      int64    `json:"analyticPages"`
	PagesRead  int64    `json:"pagesRead"`
	Seeks      int64    `json:"observedSeeks"`
	DeltaCells int64    `json:"deltaCells,omitempty"` // cells served from the delta store
	Generation int64    `json:"generation"`
	TraceID    uint64   `json:"traceId,omitempty"` // set when this request was traced
}

// handleQuery answers GET /query?where=dim=lo..hi&...&sum=N. Unrestricted
// dimensions select their full range, like the query subcommand. The
// response reports both sides of the paper's cost model: the analytic page
// prediction and the physical reads/seeks this request actually caused,
// measured by a request-local pool tally — plus the store generation that
// served it, so clients can watch reorganizations land.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	q := r.URL.Query()
	region, err := parseRegion(s.schema, s.dims, q["where"])
	if err != nil {
		s.writeErr(w, usagef("%v", err))
		return
	}
	sumCol := -1
	if v := q.Get("sum"); v != "" {
		if sumCol, err = strconv.Atoi(v); err != nil || sumCol < 0 {
			s.writeErr(w, usagef("sum=%q: want a non-negative column index", v))
			return
		}
	}
	ev := snakes.EventFromContext(ctx)
	// Every valid query is demand evidence, observed before admission so
	// shed load still teaches the reorganizer what clients wanted.
	if class, cerr := s.schema.ClassOfRegion(region); cerr == nil {
		s.metrics.observeClass(class)
		if ev != nil {
			ev.Class = classLabel(class)
		}
		if s.reorg != nil {
			if oerr := s.reorg.Observe(class); oerr != nil {
				s.log.Warn("reorg", "msg", "observing query class", "err", oerr)
			}
		}
	}
	// Snapshot the serving store once: prediction, admission weight, and
	// the read below all run against the same generation even if a
	// reorganization swaps the pointer mid-request.
	st := s.st()
	gen := s.generation.Load()
	// Admission weight is the query's analytic page count, so one huge scan
	// and many point queries draw from the same budget.
	pred := st.Layout().Query(region)
	if ev != nil {
		ev.Generation = gen
		ev.PredictedPages = pred.Pages
		ev.PredictedSeeks = pred.Seeks
	}
	asp := snakes.StartTraceLeaf(ctx, snakes.TraceKindAdmission, "")
	asp.SetAttr("weight_pages", pred.Pages)
	admStart := s.clock()
	if err := s.adm.Acquire(ctx, pred.Pages); err != nil {
		asp.SetError(err)
		asp.End()
		s.writeErr(w, err)
		return
	}
	if ev != nil {
		ev.AdmissionWaitNs = s.clock().Sub(admStart).Nanoseconds()
	}
	asp.End()
	defer s.adm.Release(pred.Pages)

	var tally snakes.PoolTally
	ctx = snakes.WithPoolTally(ctx, &tally)
	resp := queryResponse{Region: fmt.Sprint(region), Pages: pred.Pages, Generation: gen}
	if tr := snakes.TraceFromContext(ctx); tr != nil {
		resp.TraceID = tr.ID()
	}
	var total float64
	err = st.ReadQueryOptCtx(ctx, region, s.readOpts, func(cell int, record []byte) error {
		resp.Records++
		if sumCol >= 0 {
			v, err := payloadColumn(record, sumCol)
			if err != nil {
				return usagef("%v", err)
			}
			total += v
		}
		return nil
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if sumCol >= 0 {
		resp.Sum = &total
	}
	resp.PagesRead = tally.Stats().Misses
	resp.Seeks = tally.Seeks()
	resp.DeltaCells = tally.DeltaHits()
	if ev != nil {
		ev.PagesRead = resp.PagesRead
		ev.SeeksObserved = resp.Seeks
		ev.DeltaHits = resp.DeltaCells
		ev.PlanCacheHit = tally.PlanHits() > 0
		ev.Records = resp.Records
	}
	s.metrics.queryRecords.Add(resp.Records)
	s.metrics.queryDeltaCells.Add(resp.DeltaCells)
	s.metrics.pagesAnalytic.Observe(float64(pred.Pages))
	s.metrics.pagesRead.Observe(float64(resp.PagesRead))
	s.metrics.seeksAnalytic.Observe(float64(pred.Seeks))
	s.metrics.seeksObserved.Observe(float64(resp.Seeks))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleVerify scrubs the store under the request's context and records the
// outcome for /healthz.
func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	rep, err := s.st().VerifyCtx(ctx)
	if err != nil {
		s.mu.Lock()
		s.lastScrub = "aborted: " + err.Error()
		s.mu.Unlock()
		s.writeErr(w, err)
		return
	}
	problems := make([]string, 0, len(rep.Problems))
	for _, p := range rep.Problems {
		problems = append(problems, p.String())
		if errors.Is(p.Err, snakes.ErrCorruptPage) {
			s.noteCorrupt(fmt.Errorf("scrub: %w", p.Err))
		}
	}
	summary := fmt.Sprintf("clean: %d pages, %d records", rep.Pages, rep.Records)
	if !rep.OK() {
		summary = fmt.Sprintf("%d problem(s) in %d pages", len(rep.Problems), rep.Pages)
	}
	s.mu.Lock()
	s.lastScrub = summary
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"pages":    rep.Pages,
		"records":  rep.Records,
		"ok":       rep.OK(),
		"problems": problems,
	})
}

// handleReorg exposes the adaptive reorganizer: GET reports the policy's
// status (generation, regret, hysteresis, migration progress, last
// outcome), POST triggers one policy step now — with ?force=1 the
// thresholds are bypassed and the current DP optimum deployed
// unconditionally. A POST while a migration is already running answers 409.
func (s *server) handleReorg(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	switch r.Method {
	case http.MethodGet:
		if s.reorg == nil {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false, "generation": s.generation.Load()})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"enabled": true, "status": s.reorg.Status()})
	case http.MethodPost:
		if s.reorg == nil {
			s.writeErr(w, usagef("adaptive reorganization is disabled; restart serve with -adapt"))
			return
		}
		// Migrations can legitimately outlast the per-request timeout, so
		// the trigger runs under the raw request context: a disconnecting
		// client cancels the migration cleanly (partial output removed).
		d, err := s.reorg.Trigger(r.Context(), r.URL.Query().Get("force") == "1")
		switch {
		case err == nil:
			json.NewEncoder(w).Encode(map[string]any{
				"triggered":  true,
				"generation": d.Generation,
				"regret":     d.Regret,
			})
		case snakes.ReorgSkipped(err):
			json.NewEncoder(w).Encode(map[string]any{"triggered": false, "reason": err.Error()})
		default:
			s.writeErr(w, err)
		}
	default:
		s.writeErr(w, usagef("method %s not allowed on /reorg", r.Method))
	}
}

// handleRepair serves POST /repair: one full repair sweep of the current
// generation, on demand — the synchronous counterpart of the background
// scrubber for operators who do not want to wait for the cursor to come
// around. Repaired pages leave quarantine immediately; unrepairable damage
// is quarantined with its typed error and reported in the response.
func (s *server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, usagef("method %s not allowed on /repair; POST to run a repair sweep", r.Method))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	st := s.st()
	s.mu.Lock()
	s.healing = len(s.quarantine) > 0
	s.mu.Unlock()
	rep, err := st.RepairCtx(ctx)
	s.metrics.scrubPages.Add(rep.Pages)
	if err != nil {
		s.mu.Lock()
		s.healing = false
		s.mu.Unlock()
		s.writeErr(w, err)
		return
	}
	for _, p := range rep.Repaired {
		s.metrics.pagesRepaired.Inc()
		s.clearQuarantined(p)
	}
	failed := make([]string, 0, len(rep.Failed))
	for _, pr := range rep.Failed {
		s.metrics.repairFailures.Inc()
		s.markQuarantined(pr.Page, pr.String())
		failed = append(failed, pr.String())
	}
	if rep.OK() {
		// Everything detectable was repaired: any quarantine leftovers are
		// stale entries for pages that now read clean.
		s.mu.Lock()
		s.quarantine = make(map[int64]string)
		s.healing = false
		s.mu.Unlock()
	} else {
		s.mu.Lock()
		s.healing = false
		s.mu.Unlock()
	}
	s.log.Info("repair",
		"req", reqIDFrom(ctx), "pages", rep.Pages, "repaired", len(rep.Repaired), "failed", len(rep.Failed))
	if ev := snakes.EventFromContext(ctx); ev != nil {
		ev.Records = rep.Pages
	}
	body := map[string]any{
		"pages":    rep.Pages,
		"repaired": rep.Repaired,
		"failed":   failed,
		"ok":       rep.OK(),
		"health":   s.healthState(),
	}
	if tr := snakes.TraceFromContext(ctx); tr != nil {
		body["traceId"] = tr.ID()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// handleTraces serves /debug/traces: without parameters, the retained
// traces newest-first as summary lines plus the recorder's retention
// stats; with ?id=N, the full span tree of one retained trace. A trace
// that was never retained (or has been overwritten in its ring) answers
// 404 — retention is a window, not an archive.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			s.writeErr(w, usagef("id=%q: want a trace id", idStr))
			return
		}
		tr := s.traces.Get(id)
		if tr == nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf("trace %d is not retained", id)})
			return
		}
		json.NewEncoder(w).Encode(tr.DetailView())
		return
	}
	snap := s.traces.Snapshot()
	sums := make([]snakes.TraceSummary, 0, len(snap))
	for _, tr := range snap {
		sums = append(sums, tr.Summarize())
	}
	json.NewEncoder(w).Encode(map[string]any{
		"enabled": s.traces.Enabled(),
		"config": map[string]any{
			"sampleEvery":     s.traces.Config().SampleEvery,
			"slowThresholdMs": float64(s.traces.Config().SlowThreshold.Nanoseconds()) / 1e6,
		},
		"stats":  s.traces.Stats(),
		"traces": sums,
	})
}

// handleHealthz reports serving health: pool and admission stats, the
// quarantined page set, and the last scrub outcome. Status degrades when
// any page is quarantined, and the endpoint fails outright with 503
// "draining" the moment graceful shutdown begins — a load balancer probing
// /healthz must pull the instance immediately, not keep routing to it for
// the rest of the drain window.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	s.mu.Lock()
	lastScrub := s.lastScrub
	s.mu.Unlock()
	pages := s.quarantinedPages()
	st := s.st()
	body := map[string]any{
		"status":           s.healthState(),
		"generation":       s.generation.Load(),
		"startedAt":        s.started.UTC().Format(time.RFC3339),
		"uptimeSeconds":    time.Since(s.started).Seconds(),
		"pool":             st.Pool().Stats(),
		"admission":        s.adm.StatsSnapshot(),
		"quarantinedPages": pages,
		"lastScrub":        lastScrub,
		"parity":           map[string]any{"attached": st.HasParity(), "group": st.ParityGroup()},
		"events": map[string]any{
			"published":   s.events.Published(),
			"overwritten": s.events.Overwritten(),
			"capacity":    s.events.Capacity(),
		},
	}
	if calib := s.calib.Snapshot(); len(calib) > 0 {
		body["calibration"] = map[string]any{
			"classes": calib,
			"drifted": s.calib.DriftedClasses(),
		}
	}
	if s.slo != nil {
		classes, worst := s.slo.Status()
		body["slo"] = map[string]any{
			"state":   worst,
			"classes": classes,
		}
		body["sloState"] = worst
	}
	if s.ing != nil {
		s.ing.mu.Lock()
		l := s.ing.log
		ticks, cells, bytes := s.ing.comp.Ticks()
		ingest := map[string]any{
			"pendingCells":       l.PendingCells(),
			"pendingBytes":       l.PendingBytes(),
			"puts":               l.Puts(),
			"compactionTicks":    ticks,
			"compactedCells":     cells,
			"compactedBytes":     bytes,
			"compactionLagSecs":  l.OldestPendingAge(time.Now()).Seconds(),
			"writeRateBytesPerS": s.ing.rate.Rate(time.Now()),
		}
		s.ing.mu.Unlock()
		body["ingest"] = ingest
	}
	json.NewEncoder(w).Encode(body)
}

// payloadColumn extracts the idx-th comma-separated payload column as a
// float64 (the same framing the query subcommand sums).
func payloadColumn(record []byte, idx int) (float64, error) {
	start, col := 0, 0
	for i := 0; i <= len(record); i++ {
		if i == len(record) || record[i] == ',' {
			if col == idx {
				return strconv.ParseFloat(string(record[start:i]), 64)
			}
			col++
			start = i + 1
		}
	}
	return 0, fmt.Errorf("record has %d payload columns, sum asked for %d", col, idx)
}

// runReorgLoop is the daemon's background reorganization ticker: each tick
// runs one policy step under a forced trace, so a migration's DP, copy,
// flush, catalog-commit, swap, drain, and verify spans all land in
// /debug/traces. Ticks where the policy declines (or a migration is
// already running) discard their candidate trace — an uneventful tick is
// not worth a retained slot. Errors are absorbed into the reorganizer's
// status and metrics, exactly like Reorganizer.Run; only ctx ends the loop.
func (s *server) runReorgLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			tctx, tr := s.traces.StartForced(ctx, "reorg-tick")
			_, err := s.reorg.Trigger(tctx, false)
			switch {
			case snakes.ReorgSkipped(err) || errors.Is(err, snakes.ErrReorgInProgress):
				tr.Discard()
			default:
				res := tr.Finish(err)
				if tr != nil {
					s.metrics.observeTrace(tr, res)
				}
			}
		}
	}
}

// serve runs the HTTP server on ln until ctx is cancelled, then drains
// gracefully: mark the server draining (so /healthz fails over and no
// reorganization can commit a swap), stop accepting, let in-flight requests
// finish (bounded by drain), and close the store — which flushes the pool
// and fsyncs — before returning. Split from cmdServe so tests can drive it
// with their own listener and context.
func serve(ctx context.Context, ln net.Listener, srv *server, drain time.Duration) error {
	hs := &http.Server{Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		srv.beginDrain()
		srv.closeStore()
		return err
	case <-ctx.Done():
	}
	srv.beginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := hs.Shutdown(sctx)
	closeErr := srv.closeStore()
	if closeErr != nil && !errors.Is(closeErr, snakes.ErrClosed) {
		return closeErr
	}
	return shutdownErr
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	catPath := fs.String("catalog", "catalog.json", "catalog file")
	storePath := fs.String("store", "facts.db", "page file from build (base path; generations live beside it)")
	frames := fs.Int("frames", 1024, "buffer pool frames")
	addr := fs.String("addr", "127.0.0.1:7133", "listen address")
	maxInflight := fs.Int64("max-inflight", 1024, "admission capacity in analytic pages")
	queueTimeout := fs.Duration("queue-timeout", 100*time.Millisecond, "max wait for admission before shedding with 503")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	readParallel := fs.Int("read-parallel", 1, "concurrent fragment fetches per query (1 = sequential read path)")
	readAhead := fs.Int("read-ahead", 8, "pages prefetched ahead of the decoder within a fragment; effective when -read-parallel > 1")
	scrubRate := fs.Float64("scrub-rate", 128, "background scrub pace in pages/sec; 0 disables the scrubber")
	parityGroup := fs.Int("parity-group", snakes.DefaultParityGroup, "data pages per parity page when (re)building sidecars")
	traceSample := fs.Int("trace-sample", 16, "trace every Nth request for /debug/traces; 0 disables head sampling")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "always retain traces of requests at least this slow; 0 disables")
	traceCapacity := fs.Int("trace-capacity", 256, "retained sampled traces (slow/errored traces keep a quarter of this on top)")
	adapt := fs.Bool("adapt", false, "re-cluster the store automatically when the live workload drifts")
	adaptInterval := fs.Duration("adapt-interval", 30*time.Second, "how often the reorg policy re-evaluates the workload")
	adaptHalfLife := fs.Duration("adapt-half-life", 15*time.Minute, "decay half-life of the live workload estimate")
	adaptThreshold := fs.Float64("adapt-threshold", 1.2, "cost regret factor that arms a reorganization (must exceed 1)")
	adaptHysteresis := fs.Int("adapt-hysteresis", 3, "consecutive over-threshold evaluations required before acting")
	adaptMinInterval := fs.Duration("adapt-min-interval", 10*time.Minute, "minimum time between reorganization attempts")
	adaptMinWeight := fs.Float64("adapt-min-weight", 100, "minimum decayed observation mass before the policy may act")
	adaptCalibrated := fs.Bool("adapt-calibrated", false, "scale the reorg policy's deployed cost by the calibration watch's observed/predicted seek ratio")
	ingestOn := fs.Bool("ingest", false, "accept cell upserts on POST /ingest (delta store + background compaction)")
	ingestSync := fs.String("ingest-sync", "batch", "delta log fsync policy: always, batch, or none")
	ingestBatchKB := fs.Int("ingest-batch-kb", 256, "fsync batch size in KiB for -ingest-sync=batch")
	ingestMaxPendingMB := fs.Int("ingest-max-pending-mb", 64, "delta backlog ceiling in MiB before puts shed with 503; 0 = unbounded")
	compactInterval := fs.Duration("compact-interval", time.Second, "background compaction tick interval")
	compactRegion := fs.Int("compact-region", 64, "compaction scoring window in linearization positions")
	compactTickKB := fs.Int("compact-tick-kb", 1024, "delta bytes in KiB folded into the base file per compaction tick")
	eventCap := fs.Int("event-capacity", defaultEventCapacity, "wide events retained for /debug/events")
	sloSpec := fs.String("slo", "", "per-class latency objectives, e.g. 'default=250ms@99.9;0,2=50ms@99'; empty disables the SLO engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, schema, strat, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	if cat.Dirty {
		return fmt.Errorf("catalog %s is dirty: a build was interrupted before completion; re-run build before serving", *catPath)
	}
	if cat.BytesPer == nil {
		return fmt.Errorf("catalog has no load state; run build first")
	}
	adm, err := snakes.NewAdmission(*maxInflight, *queueTimeout)
	if err != nil {
		return usagef("%v", err)
	}
	// Resolve the catalog's live generation and sweep any stale generation
	// files a crash mid-reorganization left behind.
	active := activeStorePath(cat, *storePath)
	if removed, err := cleanStaleGenerations(*storePath, active); err != nil {
		return err
	} else if len(removed) > 0 {
		fmt.Fprintf(os.Stderr, "snakestore: removed stale generation file(s): %v\n", removed)
	}
	store, err := strat.OpenFileStore(active, cat.BytesPer, cat.PageBytes, *frames, cat.LoadedBytes)
	if err != nil {
		return err
	}
	// Attach the parity sidecar so the scrubber can repair, rebuilding it
	// when missing or mismatched (older builds, changed geometry). A store
	// too damaged to build parity still serves — detection keeps working,
	// repair just has nothing to work from until the damage is resolved.
	parityPath := snakes.ParityPath(active)
	if err := store.AttachParity(parityPath); err != nil {
		fmt.Fprintf(os.Stderr, "snakestore: parity sidecar %s unusable (%v); rebuilding\n", parityPath, err)
		if werr := store.WriteParity(parityPath, *parityGroup); werr != nil {
			fmt.Fprintf(os.Stderr, "snakestore: cannot build parity sidecar (%v); serving without repair\n", werr)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		store.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tcfg := snakes.TraceConfig{
		SampleEvery:      *traceSample,
		SlowThreshold:    *traceSlow,
		Capacity:         *traceCapacity,
		RetainedCapacity: *traceCapacity / 4,
	}
	srv := newServer(store, schema, schemaDims(cat), adm, *reqTimeout, cat.Generation, tcfg)
	srv.log = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv.pprof = *pprofOn
	srv.readOpts = snakes.ReadOptions{Parallelism: *readParallel, Readahead: *readAhead}
	if *parityGroup > 0 {
		srv.parityGroup = *parityGroup
	}
	if *eventCap > 0 && *eventCap != defaultEventCapacity {
		srv.events = snakes.NewEventRing(*eventCap)
	}
	if *sloSpec != "" {
		cfg, serr := snakes.ParseSLOSpec(*sloSpec)
		if serr != nil {
			store.Close()
			return usagef("%v", serr)
		}
		if serr := srv.enableSLO(cfg); serr != nil {
			store.Close()
			return usagef("%v", serr)
		}
	}
	if *scrubRate > 0 {
		go srv.runScrubLoop(ctx, *scrubRate)
	}
	if *ingestOn {
		pol, perr := snakes.ParseSyncPolicy(*ingestSync)
		if perr != nil {
			store.Close()
			return usagef("%v", perr)
		}
		dopt := snakes.DeltaOptions{
			Policy:          pol,
			BatchBytes:      int64(*ingestBatchKB) << 10,
			MaxPendingBytes: int64(*ingestMaxPendingMB) << 20,
		}
		if err := srv.enableIngest(*catPath, *storePath, cat, dopt, ingestConfig{
			regionCells: *compactRegion,
			tickBytes:   int64(*compactTickKB) << 10,
		}); err != nil {
			store.Close()
			return err
		}
		go srv.runCompactorLoop(ctx, *compactInterval)
	}
	if *adapt {
		srv.calibrateRegret = *adaptCalibrated
		cfg := snakes.DefaultReorgConfig()
		cfg.CheckInterval = *adaptInterval
		cfg.HalfLife = *adaptHalfLife
		cfg.RegretThreshold = *adaptThreshold
		cfg.Hysteresis = *adaptHysteresis
		cfg.MinInterval = *adaptMinInterval
		cfg.MinWeight = *adaptMinWeight
		if err := srv.enableReorg(*catPath, *storePath, *frames, cat, strat, cfg); err != nil {
			store.Close()
			return usagef("%v", err)
		}
		go srv.runReorgLoop(ctx, cfg.CheckInterval)
	}
	fmt.Printf("serving %s (generation %d) on http://%s (capacity %d pages, queue timeout %v, adapt %v, ingest %v)\n",
		active, cat.Generation, ln.Addr(), *maxInflight, *queueTimeout, *adapt, *ingestOn)
	if err := serve(ctx, ln, srv, *drainTimeout); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("drained and closed cleanly")
	return nil
}
