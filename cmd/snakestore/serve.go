package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	snakes "repro"
)

// server answers grid queries over HTTP against one shared FileStore. The
// store is goroutine-safe, so requests run concurrently; an admission
// controller bounds the total analytic page weight in flight, and requests
// that cannot be admitted in time are shed with 503 instead of queueing
// without bound. A corrupt page discovered while serving is quarantined —
// recorded and reported via /healthz — rather than crashing the daemon.
type server struct {
	store      *snakes.FileStore
	schema     *snakes.Schema
	dims       []snakes.Dimension
	adm        *snakes.Admission
	reqTimeout time.Duration

	mu         sync.Mutex
	quarantine map[int64]string // corrupt page -> first error seen
	lastScrub  string           // outcome of the most recent /verify
}

func newServer(store *snakes.FileStore, schema *snakes.Schema, dims []snakes.Dimension, adm *snakes.Admission, reqTimeout time.Duration) *server {
	return &server{
		store:      store,
		schema:     schema,
		dims:       dims,
		adm:        adm,
		reqTimeout: reqTimeout,
		quarantine: make(map[int64]string),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// requestCtx bounds one request by the per-request timeout.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(r.Context(), s.reqTimeout)
	}
	return context.WithCancel(r.Context())
}

// noteCorrupt records a corrupt page in the quarantine set.
func (s *server) noteCorrupt(err error) {
	var cpe *snakes.CorruptPageError
	page := int64(-1)
	if errors.As(err, &cpe) {
		page = cpe.Page
	}
	s.mu.Lock()
	if _, seen := s.quarantine[page]; !seen {
		s.quarantine[page] = err.Error()
	}
	s.mu.Unlock()
}

// writeErr maps the serving error taxonomy onto HTTP statuses: bad input
// 400, shed or closed 503, timed out 504, corruption 500 (after
// quarantining the page).
func (s *server) writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errUsage):
		status = http.StatusBadRequest
	case errors.Is(err, snakes.ErrOverloaded), errors.Is(err, snakes.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	case errors.Is(err, snakes.ErrCorruptPage):
		s.noteCorrupt(err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

type queryResponse struct {
	Region  string   `json:"region"`
	Records int64    `json:"records"`
	Sum     *float64 `json:"sum,omitempty"`
	Pages   int64    `json:"analyticPages"`
}

// handleQuery answers GET /query?where=dim=lo..hi&...&sum=N. Unrestricted
// dimensions select their full range, like the query subcommand.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	q := r.URL.Query()
	region, err := parseRegion(s.schema, s.dims, q["where"])
	if err != nil {
		s.writeErr(w, usagef("%v", err))
		return
	}
	sumCol := -1
	if v := q.Get("sum"); v != "" {
		if sumCol, err = strconv.Atoi(v); err != nil || sumCol < 0 {
			s.writeErr(w, usagef("sum=%q: want a non-negative column index", v))
			return
		}
	}
	// Admission weight is the query's analytic page count, so one huge scan
	// and many point queries draw from the same budget.
	weight := s.store.Layout().Query(region).Pages
	if err := s.adm.Acquire(ctx, weight); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.adm.Release(weight)

	resp := queryResponse{Region: fmt.Sprint(region), Pages: weight}
	var total float64
	err = s.store.ReadQueryCtx(ctx, region, func(cell int, record []byte) error {
		resp.Records++
		if sumCol >= 0 {
			v, err := payloadColumn(record, sumCol)
			if err != nil {
				return usagef("%v", err)
			}
			total += v
		}
		return nil
	})
	if err != nil {
		s.writeErr(w, err)
		return
	}
	if sumCol >= 0 {
		resp.Sum = &total
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleVerify scrubs the store under the request's context and records the
// outcome for /healthz.
func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	rep, err := s.store.VerifyCtx(ctx)
	if err != nil {
		s.mu.Lock()
		s.lastScrub = "aborted: " + err.Error()
		s.mu.Unlock()
		s.writeErr(w, err)
		return
	}
	problems := make([]string, 0, len(rep.Problems))
	for _, p := range rep.Problems {
		problems = append(problems, p.String())
		if errors.Is(p.Err, snakes.ErrCorruptPage) {
			s.noteCorrupt(fmt.Errorf("scrub: %w", p.Err))
		}
	}
	summary := fmt.Sprintf("clean: %d pages, %d records", rep.Pages, rep.Records)
	if !rep.OK() {
		summary = fmt.Sprintf("%d problem(s) in %d pages", len(rep.Problems), rep.Pages)
	}
	s.mu.Lock()
	s.lastScrub = summary
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"pages":    rep.Pages,
		"records":  rep.Records,
		"ok":       rep.OK(),
		"problems": problems,
	})
}

// handleHealthz reports serving health: pool and admission stats, the
// quarantined page set, and the last scrub outcome. Status degrades when
// any page is quarantined.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	pages := make([]int64, 0, len(s.quarantine))
	for p := range s.quarantine {
		pages = append(pages, p)
	}
	lastScrub := s.lastScrub
	s.mu.Unlock()
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	status := "ok"
	if len(pages) > 0 {
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":           status,
		"pool":             s.store.Pool().Stats(),
		"admission":        s.adm.StatsSnapshot(),
		"quarantinedPages": pages,
		"lastScrub":        lastScrub,
	})
}

// payloadColumn extracts the idx-th comma-separated payload column as a
// float64 (the same framing the query subcommand sums).
func payloadColumn(record []byte, idx int) (float64, error) {
	start, col := 0, 0
	for i := 0; i <= len(record); i++ {
		if i == len(record) || record[i] == ',' {
			if col == idx {
				return strconv.ParseFloat(string(record[start:i]), 64)
			}
			col++
			start = i + 1
		}
	}
	return 0, fmt.Errorf("record has %d payload columns, sum asked for %d", col, idx)
}

// serve runs the HTTP server on ln until ctx is cancelled, then drains
// gracefully: stop accepting, let in-flight requests finish (bounded by
// drain), and close the store — which flushes the pool and fsyncs — before
// returning. Split from cmdServe so tests can drive it with their own
// listener and context.
func serve(ctx context.Context, ln net.Listener, h http.Handler, store *snakes.FileStore, drain time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		store.Close()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	shutdownErr := srv.Shutdown(sctx)
	closeErr := store.Close()
	if closeErr != nil && !errors.Is(closeErr, snakes.ErrClosed) {
		return closeErr
	}
	return shutdownErr
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	catPath := fs.String("catalog", "catalog.json", "catalog file")
	storePath := fs.String("store", "facts.db", "page file from build")
	frames := fs.Int("frames", 1024, "buffer pool frames")
	addr := fs.String("addr", "127.0.0.1:7133", "listen address")
	maxInflight := fs.Int64("max-inflight", 1024, "admission capacity in analytic pages")
	queueTimeout := fs.Duration("queue-timeout", 100*time.Millisecond, "max wait for admission before shedding with 503")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cat, schema, strat, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	if cat.Dirty {
		return fmt.Errorf("catalog %s is dirty: a build was interrupted before completion; re-run build before serving", *catPath)
	}
	if cat.BytesPer == nil {
		return fmt.Errorf("catalog has no load state; run build first")
	}
	adm, err := snakes.NewAdmission(*maxInflight, *queueTimeout)
	if err != nil {
		return usagef("%v", err)
	}
	store, err := strat.OpenFileStore(*storePath, cat.BytesPer, cat.PageBytes, *frames, cat.LoadedBytes)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		store.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := newServer(store, schema, schemaDims(cat), adm, *reqTimeout)
	fmt.Printf("serving %s on http://%s (capacity %d pages, queue timeout %v)\n",
		*storePath, ln.Addr(), *maxInflight, *queueTimeout)
	if err := serve(ctx, ln, srv.handler(), store, *drainTimeout); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("drained and closed cleanly")
	return nil
}
