package main

import (
	"encoding/csv"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	snakes "repro"
)

// writeFactsCSV writes a small deterministic fact file and returns the
// expected sum of column 0 for the region [1,2)×[2,6).
func writeFactsCSV(t *testing.T, path string) float64 {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"x", "y", "amount"}); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for x := 0; x < 4; x++ {
		for y := 0; y < 6; y++ {
			amount := float64(x*10 + y)
			if err := w.Write([]string{
				strconv.Itoa(x), strconv.Itoa(y),
				strconv.FormatFloat(amount, 'f', 1, 64),
			}); err != nil {
				t.Fatal(err)
			}
			if x == 1 && y >= 2 {
				want += amount
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	store := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	want := writeFactsCSV(t, csvPath)

	if err := cmdOptimize([]string{
		"-dims", "x:2,2 y:3,2", "-workload", "0,1:1", "-page", "64", "-catalog", cat,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{
		"-catalog", cat, "-csv", csvPath, "-store", store, "-frames", "8",
	}); err != nil {
		t.Fatal(err)
	}
	// Query through the loaded catalog: verify record count and sum by
	// reusing the command's own machinery.
	c, schema, strat, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumCells() != 24 {
		t.Fatalf("NumCells = %d", schema.NumCells())
	}
	region, err := parseRegion(schema, schemaDims(c), []string{"x=1..2", "y=2..6"})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := strat.OpenFileStore(store, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	var got float64
	var count int
	if err := fs.Scan(region, func(cell int, rec []byte) error {
		v, err := strconv.ParseFloat(string(rec), 64)
		if err != nil {
			return err
		}
		got += v
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("scanned %d records, want 4", count)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// cmdQuery itself runs cleanly over the same inputs.
	if err := cmdQuery([]string{
		"-catalog", cat, "-store", store, "-where", "x=1..2", "-where", "y=2..6", "-sum", "0",
	}); err != nil {
		t.Fatal(err)
	}
	// A freshly built store scrubs clean.
	if err := cmdVerify([]string{"-catalog", cat, "-store", store}); err != nil {
		t.Fatalf("verify on a clean store: %v", err)
	}
}

func TestVerifyDetectsFlippedByte(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	store := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", store, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the first page's data region.
	f, err := os.OpenFile(store, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, 3); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x20
	if _, err := f.WriteAt(one, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = cmdVerify([]string{"-catalog", cat, "-store", store})
	if !errors.Is(err, snakes.ErrCorruptPage) {
		t.Fatalf("verify over a flipped byte: err = %v, want ErrCorruptPage", err)
	}
	// The query path trips over the same damage instead of returning
	// silently wrong numbers.
	if err := cmdQuery([]string{"-catalog", cat, "-store", store}); !errors.Is(err, snakes.ErrCorruptPage) {
		t.Fatalf("query over a flipped byte: err = %v, want ErrCorruptPage", err)
	}
}

func TestDirtyCatalogBlocksQueriesUntilRebuilt(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	store := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", store}); err != nil {
		t.Fatal(err)
	}
	c, _, _, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dirty {
		t.Fatal("completed build left the catalog dirty")
	}
	// Simulate a crash mid-build: the dirty flag is set and load state wiped.
	c.Dirty = true
	c.BytesPer, c.LoadedBytes = nil, nil
	if err := writeCatalog(cat, c); err != nil {
		t.Fatal(err)
	}
	err = cmdQuery([]string{"-catalog", cat, "-store", store})
	if err == nil || !strings.Contains(err.Error(), "dirty") {
		t.Fatalf("query against a dirty catalog: err = %v, want dirty-build diagnosis", err)
	}
	if errors.Is(err, errUsage) {
		t.Fatal("dirty catalog is a state error, not a usage error")
	}
	// Re-running build recovers: it rebuilds and clears the flag.
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", store}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-catalog", cat, "-store", store}); err != nil {
		t.Fatalf("query after recovery build: %v", err)
	}
}

func TestWriteCatalogAtomicSurvivesStaleTemp(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	if err := cmdOptimize([]string{"-dims", "a:2 b:2", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(cat)
	if err != nil {
		t.Fatal(err)
	}
	// A crash between temp-write and rename leaves a stale .tmp behind;
	// the real catalog must be untouched and still loadable.
	if err := os.WriteFile(cat+".tmp", []byte("garbage from a crashed build"), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(cat)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("stale temp file clobbered the catalog")
	}
	c, _, _, err := loadCatalog(cat)
	if err != nil {
		t.Fatalf("catalog unreadable next to a stale temp: %v", err)
	}
	// The next atomic write replaces both the catalog and the stale temp.
	c.PageBytes = 4096
	if err := writeCatalog(cat, c); err != nil {
		t.Fatal(err)
	}
	c2, _, _, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if c2.PageBytes != 4096 {
		t.Fatalf("PageBytes = %d after rewrite", c2.PageBytes)
	}
	if _, err := os.Stat(cat + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a successful write")
	}
}

func TestExitClassification(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	// Bad invocation inputs are usage errors (exit 2)…
	if err := cmdOptimize([]string{"-dims", "nonsense", "-catalog", cat}); !errors.Is(err, errUsage) {
		t.Errorf("bad -dims: err = %v, want usage error", err)
	}
	if err := cmdOptimize([]string{"-dims", "a:2 b:2", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-catalog", cat, "-where", "zz=0..1"}); errors.Is(err, errUsage) {
		t.Errorf("unbuilt catalog should fail before region parsing as a state error, got %v", err)
	}
	// …while missing files are I/O errors (exit 1).
	if err := cmdQuery([]string{"-catalog", filepath.Join(dir, "missing.json")}); errors.Is(err, errUsage) || err == nil {
		t.Errorf("missing catalog: err = %v, want non-usage error", err)
	}
}

func TestParseRegion(t *testing.T) {
	schema, err := parseSchema("a:4 b:2,3")
	if err != nil {
		t.Fatal(err)
	}
	dims := []snakes.Dimension{snakes.Dim("a", 4), snakes.Dim("b", 2, 3)}
	r, err := parseRegion(schema, dims, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Hi != 4 || r[1].Hi != 6 {
		t.Errorf("default region = %v", r)
	}
	r, err = parseRegion(schema, dims, []string{"b=2..5"})
	if err != nil {
		t.Fatal(err)
	}
	if r[1].Lo != 2 || r[1].Hi != 5 || r[0].Hi != 4 {
		t.Errorf("restricted region = %v", r)
	}
	for _, bad := range []string{"b", "c=0..1", "b=x..2", "b=0..x", "b=3..2", "b=0..9"} {
		if _, err := parseRegion(schema, dims, []string{bad}); err == nil {
			t.Errorf("restriction %q should fail", bad)
		}
	}
}

func TestScanCSVErrors(t *testing.T) {
	dir := t.TempDir()
	schema, err := parseSchema("a:2 b:2")
	if err != nil {
		t.Fatal(err)
	}
	st, err := schema.RowMajor(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	order, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	nop := func(int, []byte) error { return nil }
	if err := scanCSV(filepath.Join(dir, "missing.csv"), 2, order, nop); err == nil {
		t.Error("missing file should fail")
	}
	if err := scanCSV(write("short.csv", "0\n"), 2, order, nop); err == nil {
		t.Error("too-few columns should fail")
	}
	if err := scanCSV(write("badcoord.csv", "0,zz,1\n"), 2, order, nop); err == nil {
		t.Error("non-numeric coordinate should fail")
	}
	if err := scanCSV(write("ok.csv", "x,y,v\n1,1,5\n"), 2, order, nop); err != nil {
		t.Errorf("header row should be skipped: %v", err)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cat.json")
	if err := cmdOptimize([]string{"-dims", "a:2 b:2", "-catalog", path}); err != nil {
		t.Fatal(err)
	}
	cat, schema, strat, err := loadCatalog(path)
	if err != nil {
		t.Fatal(err)
	}
	if cat.PageBytes != 8192 {
		t.Errorf("PageBytes = %d", cat.PageBytes)
	}
	if schema.NumCells() != 4 {
		t.Errorf("NumCells = %d", schema.NumCells())
	}
	if !strat.Snaked {
		t.Error("optimize should store a snaked strategy")
	}
	if _, _, _, err := loadCatalog(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing catalog should fail")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadCatalog(path); err == nil {
		t.Error("corrupt catalog should fail")
	}
}
