package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	snakes "repro"
)

// testDeltaOptions is the crash-safe default for tests: every Put is
// durable the moment it is acknowledged.
func testDeltaOptions() snakes.DeltaOptions {
	return snakes.DeltaOptions{Policy: snakes.SyncAlways}
}

func testIngestConfig() ingestConfig {
	return ingestConfig{regionCells: 4, tickBytes: 1 << 20}
}

// buildIngestServed is buildChaosServed plus the write path: parity
// attached (so compaction exercises the in-place parity patch) and ingest
// enabled with an always-sync delta log. The compactor loop is NOT
// started; tests tick it by hand for determinism.
func buildIngestServed(t *testing.T, dopt snakes.DeltaOptions, cfg ingestConfig) (srv *server, catPath, storePath string, want float64) {
	t.Helper()
	srv, storePath, _, want = buildChaosServed(t)
	catPath = filepath.Join(filepath.Dir(storePath), "cat.json")
	c, _, _, err := loadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableIngest(catPath, storePath, c, dopt, cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.closeIngest)
	return srv, catPath, storePath, want
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any, wantStatus int, out any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body: %s", path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, raw, err)
		}
	}
}

func ingestOne(t *testing.T, ts *httptest.Server, coords []int, rows ...string) ingestResponse {
	t.Helper()
	var resp ingestResponse
	postJSON(t, ts, "/ingest",
		ingestRequest{Cells: []ingestCellReq{{Coords: coords, Rows: rows}}},
		http.StatusOK, &resp)
	return resp
}

// tickIngest runs one compaction tick under the same lock the background
// loop would hold.
func tickIngest(t *testing.T, srv *server) snakes.CompactionTick {
	t.Helper()
	srv.ing.mu.Lock()
	defer srv.ing.mu.Unlock()
	stats, err := srv.ing.comp.Tick(context.Background(), srv.st(), srv.ing.log)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

type healthzIngest struct {
	Ingest *struct {
		PendingCells    int   `json:"pendingCells"`
		PendingBytes    int64 `json:"pendingBytes"`
		Puts            int64 `json:"puts"`
		CompactionTicks int64 `json:"compactionTicks"`
		CompactedCells  int64 `json:"compactedCells"`
	} `json:"ingest"`
}

// TestIngestMergeOnReadAndCompaction is the write path end to end over
// HTTP: an upsert is visible to queries immediately (attributed as a delta
// hit), a compaction tick folds it into the base file without changing the
// answer, and the store scrubs clean afterwards.
func TestIngestMergeOnReadAndCompaction(t *testing.T) {
	srv, _, _, want := buildIngestServed(t, testDeltaOptions(), testIngestConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var q0 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q0)
	if q0.Sum == nil || math.Abs(*q0.Sum-want) > 1e-9 || q0.DeltaCells != 0 {
		t.Fatalf("baseline = %+v, want sum %v with no delta cells", q0, want)
	}

	// Replace cell (1,2)'s record "12.0" with "99.0": the region sum moves
	// by +87 before any compaction has happened.
	resp := ingestOne(t, ts, []int{1, 2}, "99.0")
	if resp.Accepted != 1 || resp.PendingCells != 1 {
		t.Fatalf("ingest response = %+v, want 1 accepted, 1 pending", resp)
	}
	wantHot := want - 12 + 99

	var q1 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q1)
	if q1.Records != 4 || q1.Sum == nil || math.Abs(*q1.Sum-wantHot) > 1e-9 {
		t.Fatalf("merge-on-read answer = %+v, want 4 records summing %v", q1, wantHot)
	}
	if q1.DeltaCells != 1 {
		t.Errorf("deltaCells = %d, want 1 (the overlaid cell)", q1.DeltaCells)
	}

	var h1 healthzIngest
	getJSON(t, ts, "/healthz", http.StatusOK, &h1)
	if h1.Ingest == nil || h1.Ingest.PendingCells != 1 || h1.Ingest.Puts != 1 {
		t.Fatalf("healthz ingest block = %+v, want 1 pending / 1 put", h1.Ingest)
	}

	stats := tickIngest(t, srv)
	if stats.CellsApplied != 1 || stats.PendingCells != 0 {
		t.Fatalf("tick = %+v, want 1 cell applied and an empty backlog", stats)
	}

	// Same answer from the base file alone, and the store still scrubs.
	var q2 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q2)
	if q2.Records != 4 || q2.Sum == nil || math.Abs(*q2.Sum-wantHot) > 1e-9 || q2.DeltaCells != 0 {
		t.Fatalf("post-compaction answer = %+v, want sum %v with no delta cells", q2, wantHot)
	}
	var h2 healthzIngest
	getJSON(t, ts, "/healthz", http.StatusOK, &h2)
	if h2.Ingest == nil || h2.Ingest.PendingCells != 0 || h2.Ingest.CompactionTicks != 1 || h2.Ingest.CompactedCells != 1 {
		t.Fatalf("healthz after tick = %+v, want drained with 1 tick / 1 cell", h2.Ingest)
	}
	var v struct {
		OK bool `json:"ok"`
	}
	getJSON(t, ts, "/verify", http.StatusOK, &v)
	if !v.OK {
		t.Error("store does not scrub clean after compaction")
	}

	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	for _, fam := range []string{
		"snakestore_ingest_puts_total",
		"snakestore_compaction_cells_total",
		"snakestore_delta_pending_bytes",
		"snakestore_plan_cache_invalidations_total",
	} {
		if !strings.Contains(string(raw), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}

// TestIngestValidation: a malformed batch is rejected atomically with 400
// before any cell is accepted, and a server started without -ingest 404s.
func TestIngestValidation(t *testing.T) {
	srv, _, _, _ := buildIngestServed(t, testDeltaOptions(), testIngestConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	getJSON(t, ts, "/ingest", http.StatusBadRequest, nil) // GET, not POST

	bad := []ingestRequest{
		{}, // empty batch
		{Cells: []ingestCellReq{{Coords: []int{1}, Rows: []string{"1.0"}}}},                        // 1 coord for 2-d grid
		{Cells: []ingestCellReq{{Coords: []int{9, 2}, Rows: []string{"1.0"}}}},                     // out of range
		{Cells: []ingestCellReq{{Coords: []int{1, 2}}}},                                            // no rows
		{Cells: []ingestCellReq{{Coords: []int{1, 2}, Rows: []string{strings.Repeat("9", 4096)}}}}, // oversized
		{Cells: []ingestCellReq{ // atomic: a valid cell in a bad batch must not land
			{Coords: []int{1, 2}, Rows: []string{"99.0"}},
			{Coords: []int{1, 99}, Rows: []string{"1.0"}},
		}},
	}
	for i, req := range bad {
		postJSON(t, ts, "/ingest", req, http.StatusBadRequest, nil)
		var h healthzIngest
		getJSON(t, ts, "/healthz", http.StatusOK, &h)
		if h.Ingest == nil || h.Ingest.PendingCells != 0 {
			t.Fatalf("bad batch %d left pending cells behind: %+v", i, h.Ingest)
		}
	}

	// Without -ingest the route does not exist.
	plain, _ := buildServed(t, 64, time.Second, 5*time.Second)
	tsPlain := httptest.NewServer(plain.handler())
	defer tsPlain.Close()
	postJSON(t, tsPlain, "/ingest",
		ingestRequest{Cells: []ingestCellReq{{Coords: []int{1, 2}, Rows: []string{"99.0"}}}},
		http.StatusNotFound, nil)
}

// TestIngestBacklogSheds: a full delta backlog rejects new cells with 503
// (typed overload), while a same-size replacement of an already-pending
// cell still fits (it grows the backlog by nothing).
func TestIngestBacklogSheds(t *testing.T) {
	one := int64(len(snakes.FrameRecords([]byte("99.0"))))
	dopt := testDeltaOptions()
	dopt.MaxPendingBytes = one
	srv, _, _, _ := buildIngestServed(t, dopt, testIngestConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	ingestOne(t, ts, []int{1, 2}, "99.0")
	postJSON(t, ts, "/ingest",
		ingestRequest{Cells: []ingestCellReq{{Coords: []int{1, 3}, Rows: []string{"77.0"}}}},
		http.StatusServiceUnavailable, nil)
	resp := ingestOne(t, ts, []int{1, 2}, "88.0") // replacement: no net growth
	if resp.PendingCells != 1 {
		t.Fatalf("pending cells = %d after replacement, want 1", resp.PendingCells)
	}

	var q queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q)
	if q.Sum == nil || math.Abs(*q.Sum-(54-12+88)) > 1e-9 {
		t.Fatalf("sum = %v, want the replacement value visible", q.Sum)
	}
}

// --- kill-subprocess crash matrix ---------------------------------------

// openIngestServer opens an existing store directory the way `serve
// -ingest` would: catalog, store, parity sidecar, delta log, and startup
// redo recovery. Shared by the crash helper subprocess and the parent's
// post-crash verification.
func openIngestServer(dir string) (*server, error) {
	catPath := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	c, schema, strat, err := loadCatalog(catPath)
	if err != nil {
		return nil, err
	}
	active := activeStorePath(c, storePath)
	store, err := strat.OpenFileStore(active, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		return nil, err
	}
	if err := store.AttachParity(snakes.ParityPath(active)); err != nil {
		store.Close()
		return nil, err
	}
	adm, err := snakes.NewAdmission(8, time.Second)
	if err != nil {
		store.Close()
		return nil, err
	}
	srv := newServer(store, schema, schemaDims(c), adm, 5*time.Second, c.Generation, snakes.TraceConfig{})
	srv.parityGroup = store.ParityGroup()
	if err := srv.enableIngest(catPath, storePath, c, testDeltaOptions(), testIngestConfig()); err != nil {
		store.Close()
		return nil, err
	}
	return srv, nil
}

// runIngestCrashOps executes a semicolon-separated op script against the
// store in dir: "put:x,y=VAL" appends an upsert (acknowledged once it
// returns), "tick" runs one compaction tick. Crash points injected via
// SNAKESTORE_INGEST_CRASH kill the process mid-op with exit code 42.
func runIngestCrashOps(dir, ops string) error {
	srv, err := openIngestServer(dir)
	if err != nil {
		return err
	}
	st := srv.st()
	for _, op := range strings.Split(ops, ";") {
		switch {
		case strings.HasPrefix(op, "put:"):
			spec, val, ok := strings.Cut(strings.TrimPrefix(op, "put:"), "=")
			if !ok {
				return fmt.Errorf("bad op %q", op)
			}
			var x, y int
			if _, err := fmt.Sscanf(spec, "%d,%d", &x, &y); err != nil {
				return fmt.Errorf("bad op %q: %v", op, err)
			}
			cell := st.Layout().Order().CellIndex([]int{x, y})
			srv.ing.mu.Lock()
			err := srv.ing.log.Put(cell, snakes.FrameRecords([]byte(val)))
			srv.ing.mu.Unlock()
			if err != nil {
				return err
			}
			st.InvalidateCellPlans(cell)
		case op == "tick":
			srv.ing.mu.Lock()
			_, err := srv.ing.comp.Tick(context.Background(), st, srv.ing.log)
			srv.ing.mu.Unlock()
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown op %q", op)
		}
	}
	srv.closeIngest()
	return st.Close()
}

// TestIngestCrashHelper is the subprocess body for the crash matrix; the
// parent re-execs the test binary with INGEST_CRASH_HELPER=1 and a crash
// point in SNAKESTORE_INGEST_CRASH.
func TestIngestCrashHelper(t *testing.T) {
	if os.Getenv("INGEST_CRASH_HELPER") != "1" {
		t.Skip("crash-matrix subprocess helper")
	}
	if err := runIngestCrashOps(os.Getenv("INGEST_CRASH_DIR"), os.Getenv("INGEST_CRASH_OPS")); err != nil {
		fmt.Fprintf(os.Stderr, "crash helper: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// runCrashHelper re-execs this test binary to run ops against dir,
// returning the subprocess exit code (42 = orchestrated crash).
func runCrashHelper(t *testing.T, dir, ops, crashPoint string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestIngestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"INGEST_CRASH_HELPER=1",
		"INGEST_CRASH_DIR="+dir,
		"INGEST_CRASH_OPS="+ops,
		"SNAKESTORE_INGEST_CRASH="+crashPoint,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ee.ExitCode() != crashExitCode {
			t.Logf("helper output:\n%s", out)
		}
		return ee.ExitCode()
	}
	t.Fatalf("helper: %v\n%s", err, out)
	return -1
}

const crashExitCode = 42

// cellRecord reads the single record of grid cell (x, y), failing if the
// cell does not hold exactly one record.
func cellRecord(t *testing.T, srv *server, x, y int) string {
	t.Helper()
	st := srv.st()
	cell := st.Layout().Order().CellIndex([]int{x, y})
	var rows []string
	if err := st.ReadCellCtx(context.Background(), cell, func(rec []byte) error {
		rows = append(rows, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("cell (%d,%d) holds %d records, want exactly 1: %q", x, y, len(rows), rows)
	}
	return rows[0]
}

// TestCrashPointIngestMatrix kills a subprocess at each dangerous point of
// the write path — mid-delta-append, mid-compaction-rewrite, and after the
// catalog commit but before the delta truncate — then recovers and checks
// the two invariants: no acknowledged write is lost (and no unacknowledged
// write surfaces), and the store scrubs clean. Each scenario uses two
// subprocess runs because the crash point is armed per-process: run 1 is
// clean (its writes are acknowledged), run 2 crashes.
func TestCrashPointIngestMatrix(t *testing.T) {
	cases := []struct {
		name           string
		ops1           string // clean run: everything here is acknowledged
		ops2           string // crashing run
		crash          string
		want12, want13 string // expected cell contents after recovery
	}{
		{
			// The append dies after half the record hits disk: the torn
			// tail must be truncated on recovery and the unacknowledged
			// value must NOT surface; the earlier acknowledged put must.
			name: "mid-delta-append",
			ops1: "put:1,2=88.0", ops2: "put:1,3=77.0", crash: "mid-append",
			want12: "88.0", want13: "13.0",
		},
		{
			// Compaction dies after rewriting the cell in the base file
			// but before the flush/catalog/checkpoint chain: recovery
			// replays the still-pending entry idempotently.
			name: "mid-compaction-rewrite",
			ops1: "put:1,2=88.0;tick", ops2: "put:1,3=77.0;tick", crash: "mid-compact",
			want12: "88.0", want13: "77.0",
		},
		{
			// The crash lands between the catalog commit and the delta
			// truncate: the entry is applied twice (once per process) and
			// must still appear exactly once.
			name: "post-catalog-commit-pre-truncate",
			ops1: "put:1,2=88.0;tick", ops2: "put:1,3=77.0;tick", crash: "pre-checkpoint",
			want12: "88.0", want13: "77.0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			catPath := filepath.Join(dir, "cat.json")
			storePath := filepath.Join(dir, "facts.db")
			csvPath := filepath.Join(dir, "facts.csv")
			writeFactsCSV(t, csvPath)
			if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", catPath}); err != nil {
				t.Fatal(err)
			}
			if err := cmdBuild([]string{
				"-catalog", catPath, "-csv", csvPath, "-store", storePath, "-frames", "8", "-parity-group", "2",
			}); err != nil {
				t.Fatal(err)
			}

			if code := runCrashHelper(t, dir, tc.ops1, ""); code != 0 {
				t.Fatalf("clean run exited %d", code)
			}
			if code := runCrashHelper(t, dir, tc.ops2, tc.crash); code != crashExitCode {
				t.Fatalf("crash run exited %d, want %d", code, crashExitCode)
			}

			// Recovery is the ordinary startup path.
			srv, err := openIngestServer(dir)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer func() {
				srv.closeIngest()
				srv.st().Close()
			}()

			if got := cellRecord(t, srv, 1, 2); got != tc.want12 {
				t.Errorf("cell (1,2) = %q, want %q", got, tc.want12)
			}
			if got := cellRecord(t, srv, 1, 3); got != tc.want13 {
				t.Errorf("cell (1,3) = %q, want %q", got, tc.want13)
			}
			if n := srv.ing.log.PendingCells(); n != 0 {
				t.Errorf("pending cells = %d after recovery, want 0", n)
			}

			// A cell the scenario never touched is intact.
			if got := cellRecord(t, srv, 2, 4); got != "24.0" {
				t.Errorf("bystander cell (2,4) = %q, want untouched 24.0", got)
			}

			rep, err := srv.st().VerifyCtx(context.Background())
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if !rep.OK() {
				t.Errorf("scrub found problems after recovery: %v", rep.Err())
			}
		})
	}
}

// TestReorgCarriesDeltas: a background reorganization onto a new
// generation carries the pending delta tail with it — the new base file
// holds the upsert, the old generation's delta log is gone, and a fresh
// log accepts writes at the new generation.
func TestReorgCarriesDeltas(t *testing.T) {
	srv, catPath, storePath, _ := buildAdaptiveServed(t, adaptiveConfig())
	defer srv.closeStore()
	if err := srv.enableIngest(catPath, storePath, srv.cat, testDeltaOptions(), testIngestConfig()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var q0 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q0)
	ingestOne(t, ts, []int{1, 3}, "77.0")
	wantHot := *q0.Sum - 13 + 77

	// Shift the workload to column queries so the forced reorg has a
	// different layout to migrate to, then trigger it.
	for i := 0; i < 50; i++ {
		getJSON(t, ts, "/query?where=y%3D3..4", http.StatusOK, nil)
	}
	d, err := srv.reorg.Trigger(context.Background(), true)
	if err != nil {
		t.Fatalf("forced reorg with pending deltas: %v", err)
	}
	if d.Generation != 1 {
		t.Fatalf("post-reorg generation = %d, want 1", d.Generation)
	}

	// The delta rode along: folded into the new base, not pending.
	var q1 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q1)
	if q1.Generation != 1 || q1.Records != 4 || q1.Sum == nil || math.Abs(*q1.Sum-wantHot) > 1e-9 {
		t.Fatalf("post-reorg answer = %+v, want generation 1 summing %v", q1, wantHot)
	}
	if q1.DeltaCells != 0 {
		t.Errorf("deltaCells = %d on the new generation, want 0 (folded at cutover)", q1.DeltaCells)
	}
	if n := srv.ing.log.PendingCells(); n != 0 {
		t.Errorf("pending cells = %d after cutover, want 0", n)
	}
	if _, err := os.Stat(snakes.DeltaPath(storePath)); !os.IsNotExist(err) {
		t.Errorf("old generation delta log still on disk (err=%v)", err)
	}
	if _, err := os.Stat(snakes.DeltaPath(genPath(storePath, 1))); err != nil {
		t.Errorf("new generation delta log missing: %v", err)
	}

	// The swapped-in log accepts writes at the new generation.
	resp := ingestOne(t, ts, []int{1, 2}, "88.0")
	if resp.Generation != 1 || resp.PendingCells != 1 {
		t.Fatalf("post-swap ingest = %+v, want generation 1 with 1 pending", resp)
	}
	var q2 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q2)
	if q2.Sum == nil || math.Abs(*q2.Sum-(wantHot-12+88)) > 1e-9 || q2.DeltaCells != 1 {
		t.Fatalf("post-swap merge-on-read = %+v, want sum %v with 1 delta cell", q2, wantHot-12+88)
	}
}
