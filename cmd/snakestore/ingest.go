package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	snakes "repro"
)

// The daemon's write path: POST /ingest lands whole-cell upserts in a
// delta log beside the store file, reads merge them automatically through
// the store's overlay hook, and a background compactor folds them into the
// base file in paced ticks (heaviest linearization regions first). The
// catalog is committed before every checkpoint, so an acknowledged write
// survives any crash: it is either in the base file (catalog knows) or
// still in the log (startup recovery replays it).

// ingestState is the server's write-path machinery; nil when -ingest is
// off. mu serializes puts, compaction ticks, and the reorganization
// cutover against each other: puts hold it briefly to append, a tick holds
// it for one bounded apply pass, and a reorg holds it while folding the
// log's tail into the new generation and swapping in its fresh log.
type ingestState struct {
	mu   sync.Mutex
	log  *snakes.DeltaLog
	comp *snakes.Compactor
	opt  snakes.DeltaOptions
	rate *snakes.RateTracker
}

// ingestConfig carries the -compact-* flags.
type ingestConfig struct {
	regionCells int
	tickBytes   int64
}

// enableIngest opens the active generation's delta log, replays any
// entries a crash left pending into the base store (redo recovery), and
// wires the compactor and its metrics. Must run before serving starts.
func (s *server) enableIngest(catPath, storeBase string, cat *catalog, dopt snakes.DeltaOptions, cfg ingestConfig) error {
	s.catPath, s.storeBase, s.cat = catPath, storeBase, cat
	active := activeStorePath(cat, storeBase)
	l, err := snakes.OpenDeltaLog(snakes.DeltaPath(active), int64(cat.Generation), dopt)
	if err != nil {
		return err
	}
	st := s.st()
	if l.PendingCells() > 0 {
		applied, n, err := snakes.RecoverDeltas(context.Background(), st, l)
		if err != nil {
			l.Close()
			return fmt.Errorf("delta recovery: %w", err)
		}
		// A crash mid-compaction may have patched the parity sidecar for
		// base pages that never reached disk, so after the redo pass the
		// sidecar is rebuilt from the recovered base content.
		if st.HasParity() {
			if perr := st.WriteParity(snakes.ParityPath(active), st.ParityGroup()); perr != nil {
				fmt.Fprintf(os.Stderr, "snakestore: rebuilding parity after delta recovery: %v\n", perr)
			}
		}
		// Catalog before checkpoint: once the log forgets an entry, the
		// catalog must already describe the base file that absorbed it.
		cat.LoadedBytes = st.LoadedBytes()
		if err := writeCatalog(catPath, cat); err != nil {
			l.Close()
			return fmt.Errorf("delta recovery catalog: %w", err)
		}
		if err := l.Checkpoint(applied); err != nil {
			l.Close()
			return fmt.Errorf("delta recovery checkpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "snakestore: recovered %d pending delta entr%s into %s\n",
			n, map[bool]string{true: "y", false: "ies"}[n == 1], active)
	}
	snakes.AttachDeltaLog(st, l)
	s.ing = &ingestState{
		log: l,
		opt: dopt,
		comp: snakes.NewCompactor(snakes.CompactorConfig{
			RegionCells:     cfg.regionCells,
			MaxBytesPerTick: cfg.tickBytes,
			Commit:          s.commitLoadedBytes,
		}),
		rate: snakes.NewRateTracker(time.Minute),
	}
	s.registerIngestMetrics()
	return nil
}

// commitLoadedBytes is the compactor's catalog hook: persist the new fill
// state atomically before the log checkpoint forgets the entries behind
// it. Serialized against generation swaps by swapMu.
func (s *server) commitLoadedBytes(ctx context.Context, loaded []int64) error {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cat := *s.cat
	cat.LoadedBytes = loaded
	sp := snakes.StartTraceLeaf(ctx, snakes.TraceKindCatalogCommit, "")
	err := writeCatalog(s.catPath, &cat)
	sp.SetError(err)
	sp.End()
	if err == nil {
		*s.cat = cat
	}
	return err
}

// registerIngestMetrics adds the write-path families that need the live
// log: backlog gauges, compaction progress, and the decayed write rate.
func (s *server) registerIngestMetrics() {
	ing := s.ing
	pending := func(f func(*snakes.DeltaLog) float64) func() float64 {
		return func() float64 {
			ing.mu.Lock()
			defer ing.mu.Unlock()
			return f(ing.log)
		}
	}
	s.metrics.reg.GaugeFunc("snakestore_delta_pending_bytes", "delta payload bytes awaiting compaction", pending(func(l *snakes.DeltaLog) float64 { return float64(l.PendingBytes()) }))
	s.metrics.reg.GaugeFunc("snakestore_delta_pending_cells", "cells with pending delta upserts", pending(func(l *snakes.DeltaLog) float64 { return float64(l.PendingCells()) }))
	s.metrics.reg.GaugeFunc("snakestore_compaction_lag_seconds", "age of the oldest delta entry not yet folded into the base file", pending(func(l *snakes.DeltaLog) float64 { return l.OldestPendingAge(time.Now()).Seconds() }))
	s.metrics.reg.GaugeFunc("snakestore_ingest_write_rate_bytes", "decayed accepted upsert bytes per second", func() float64 { return ing.rate.Rate(time.Now()) })
	comp := func(f func(ticks, cells, bytes int64) int64) func() int64 {
		return func() int64 { return f(ing.comp.Ticks()) }
	}
	s.metrics.reg.CounterFunc("snakestore_compaction_ticks_total", "background compaction ticks that applied at least one cell", comp(func(t, _, _ int64) int64 { return t }))
	s.metrics.reg.CounterFunc("snakestore_compaction_cells_total", "cells folded from the delta log into the base file", comp(func(_, c, _ int64) int64 { return c }))
	s.metrics.reg.CounterFunc("snakestore_compaction_bytes_total", "delta payload bytes folded into the base file", comp(func(_, _, b int64) int64 { return b }))
}

// runCompactorLoop folds the delta backlog into the base file on a fixed
// cadence. Drain-aware: once shutdown begins the loop stops touching the
// store (the log is durable; the next startup recovers what remains).
func (s *server) runCompactorLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.draining.Load() {
				return
			}
			s.ing.mu.Lock()
			st := s.st()
			stats, err := s.ing.comp.Tick(ctx, st, s.ing.log)
			s.ing.mu.Unlock()
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return
				}
				s.log.Warn("compact", "err", err)
				continue
			}
			if stats.CellsApplied > 0 {
				s.log.Info("compact", "cells", stats.CellsApplied, "bytes", stats.BytesApplied,
					"regions", stats.Regions, "pendingCells", stats.PendingCells, "pendingBytes", stats.PendingBytes)
			}
		}
	}
}

// closeIngest flushes and closes the delta log on shutdown; acknowledged
// writes that were not yet compacted are recovered at the next startup.
func (s *server) closeIngest() {
	if s.ing == nil {
		return
	}
	s.ing.mu.Lock()
	defer s.ing.mu.Unlock()
	if err := s.ing.log.Close(); err != nil {
		s.log.Warn("ingest", "msg", "closing delta log", "err", err)
	}
}

type ingestCellReq struct {
	Coords []int    `json:"coords"`
	Rows   []string `json:"rows"`
}

type ingestRequest struct {
	Cells []ingestCellReq `json:"cells"`
}

type ingestResponse struct {
	Accepted     int    `json:"accepted"`
	Bytes        int64  `json:"bytes"`
	PendingCells int    `json:"pendingCells"`
	PendingBytes int64  `json:"pendingBytes"`
	Generation   int64  `json:"generation"`
	TraceID      uint64 `json:"traceId,omitempty"` // set when this request was traced
}

// handleIngest accepts POST {"cells":[{"coords":[...],"rows":["..."]}]}:
// each entry replaces the named cell's records, durably per the
// -ingest-sync policy, visible to queries immediately via merge-on-read.
// The batch is validated in full before any cell is accepted, so a 400
// never leaves a partial batch behind; a full backlog sheds with 503.
// Like /query, the request runs under the per-request deadline with the
// log append in its own span, so slow ingests surface in /debug/traces
// and the slow-query log the same way slow reads do.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.ing == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "ingest disabled; start with -ingest"})
		return
	}
	if r.Method != http.MethodPost {
		s.writeErr(w, usagef("ingest wants POST, got %s", r.Method))
		return
	}
	if s.draining.Load() {
		s.writeErr(w, fmt.Errorf("draining: %w", snakes.ErrClosed))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, usagef("decoding body: %v", err))
		return
	}
	if len(req.Cells) == 0 {
		s.writeErr(w, usagef("empty ingest batch"))
		return
	}
	st := s.st()
	order := st.Layout().Order()
	shape := order.Shape()
	type framedCell struct {
		cell   int
		framed []byte
	}
	batch := make([]framedCell, 0, len(req.Cells))
	for i, c := range req.Cells {
		if len(c.Coords) != len(shape) {
			s.writeErr(w, usagef("cell %d: %d coords for a %d-dimensional grid", i, len(c.Coords), len(shape)))
			return
		}
		for d, v := range c.Coords {
			if v < 0 || v >= shape[d] {
				s.writeErr(w, usagef("cell %d: coord %d out of range [0,%d)", i, v, shape[d]))
				return
			}
		}
		if len(c.Rows) == 0 {
			s.writeErr(w, usagef("cell %d: no rows", i))
			return
		}
		records := make([][]byte, len(c.Rows))
		for j, row := range c.Rows {
			records[j] = []byte(row)
		}
		cell := order.CellIndex(c.Coords)
		framed := snakes.FrameRecords(records...)
		if cap := st.Layout().CellCapacity(cell); int64(len(framed)) > cap {
			s.writeErr(w, usagef("cell %d: %d bytes of rows exceed cell capacity %d", i, len(framed), cap))
			return
		}
		batch = append(batch, framedCell{cell: cell, framed: framed})
	}
	resp := ingestResponse{Generation: s.generation.Load()}
	if tr := snakes.TraceFromContext(ctx); tr != nil {
		resp.TraceID = tr.ID()
	}
	// If the deadline already expired (e.g. a slow client body), shed
	// before taking the ingest lock.
	if err := ctx.Err(); err != nil {
		s.writeErr(w, err)
		return
	}
	asp := snakes.StartTraceLeaf(ctx, snakes.TraceKindDeltaAppend, "")
	asp.SetAttr("cells", int64(len(batch)))
	s.ing.mu.Lock()
	for _, fc := range batch {
		if err := s.ing.log.Put(fc.cell, fc.framed); err != nil {
			s.ing.mu.Unlock()
			asp.SetError(err)
			asp.End()
			s.metrics.ingestRejected.Inc()
			if errors.Is(err, snakes.ErrIngestBacklog) {
				err = fmt.Errorf("%w: %v", snakes.ErrOverloaded, err)
			}
			s.writeErr(w, err)
			return
		}
		st.InvalidateCellPlans(fc.cell)
		resp.Accepted++
		resp.Bytes += int64(len(fc.framed))
	}
	resp.PendingCells = s.ing.log.PendingCells()
	resp.PendingBytes = s.ing.log.PendingBytes()
	s.ing.mu.Unlock()
	asp.SetAttr("bytes", resp.Bytes)
	asp.End()
	s.ing.rate.Observe(float64(resp.Bytes), time.Now())
	s.metrics.ingestPuts.Add(int64(resp.Accepted))
	s.metrics.ingestBytes.Add(resp.Bytes)
	if ev := snakes.EventFromContext(ctx); ev != nil {
		ev.Records = int64(resp.Accepted)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
