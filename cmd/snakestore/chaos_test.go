package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	snakes "repro"
	"repro/internal/chaos"
)

// chaosRegion is the canonical query whose answer is the ground truth for
// every convergence check: region [1,2)×[2,6), 4 records.
const chaosRegion = "/query?where=x%3D1..2&where=y%3D2..6&sum=0"

// buildChaosServed builds a store with a small parity group (many groups →
// many injectable faults per round), attaches the sidecar, and returns the
// server plus everything a chaos schedule needs.
func buildChaosServed(t *testing.T) (srv *server, storePath string, pageBytes int, want float64) {
	t.Helper()
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	storePath = filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	want = writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{
		"-catalog", cat, "-csv", csvPath, "-store", storePath, "-frames", "8", "-parity-group", "2",
	}); err != nil {
		t.Fatal(err)
	}
	c, schema, strat, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	store, err := strat.OpenFileStore(storePath, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if err := store.AttachParity(snakes.ParityPath(storePath)); err != nil {
		t.Fatal(err)
	}
	adm, err := snakes.NewAdmission(64, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv = newServer(store, schema, schemaDims(c), adm, 5*time.Second, c.Generation, snakes.TraceConfig{})
	srv.parityGroup = store.ParityGroup()
	return srv, storePath, c.PageBytes, want
}

// assertChaosTruth queries the canonical region and compares the stable
// fields (records, sum) against ground truth.
func assertChaosTruth(t *testing.T, ts *httptest.Server, want float64) {
	t.Helper()
	var q queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q)
	if q.Records != 4 {
		t.Errorf("post-chaos records = %d, want 4", q.Records)
	}
	if q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
		t.Errorf("post-chaos sum = %v, want %v", q.Sum, want)
	}
}

type repairResponse struct {
	Pages    int64    `json:"pages"`
	Repaired []int64  `json:"repaired"`
	Failed   []string `json:"failed"`
	OK       bool     `json:"ok"`
	Health   string   `json:"health"`
}

func postRepair(t *testing.T, url string) repairResponse {
	t.Helper()
	resp, err := http.Post(url+"/repair", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /repair = %d, want 200", resp.StatusCode)
	}
	var rr repairResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// chaosRound applies one seeded repairable schedule to the store file and
// returns the schedule plus how many of its events actually corrupted a
// page (a torn write on an already-zero tail is a physical no-op).
func chaosRound(t *testing.T, srv *server, storePath string, pageBytes int, seed int64) (*chaos.Schedule, int) {
	t.Helper()
	st := srv.st()
	total := st.Layout().TotalPages()
	sched := chaos.PlanRepairable(seed, int(total), total, st.ParityGroup(), pageBytes)
	if err := sched.Apply(storePath); err != nil {
		t.Fatal(err)
	}
	hurt := 0
	for _, e := range sched.Events {
		if st.CheckPage(e.Page) != nil {
			hurt++
		}
	}
	return sched, hurt
}

// TestChaosRepairConvergence is the deterministic core of `make chaos`:
// for each seed, a repairable fault schedule lands on disk under the live
// handler, one POST /repair sweep heals every damaged page, /healthz
// returns to ok with an empty quarantine, /verify scrubs clean, and the
// canonical query answers exactly as before the faults.
func TestChaosRepairConvergence(t *testing.T) {
	srv, storePath, pageBytes, want := buildChaosServed(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	assertChaosTruth(t, ts, want)

	for seed := int64(1); seed <= 4; seed++ {
		sched, hurt := chaosRound(t, srv, storePath, pageBytes, seed)
		if hurt == 0 {
			t.Fatalf("seed %d: schedule %v corrupted nothing", seed, sched)
		}
		rr := postRepair(t, ts.URL)
		if !rr.OK || len(rr.Failed) != 0 {
			t.Fatalf("seed %d: repair sweep = %+v, want clean", seed, rr)
		}
		if len(rr.Repaired) != hurt {
			t.Errorf("seed %d: repaired %d pages, want %d", seed, len(rr.Repaired), hurt)
		}
		var h struct {
			Status           string  `json:"status"`
			QuarantinedPages []int64 `json:"quarantinedPages"`
		}
		getJSON(t, ts, "/healthz", http.StatusOK, &h)
		if h.Status != "ok" || len(h.QuarantinedPages) != 0 {
			t.Fatalf("seed %d: healthz after repair = %+v, want ok/empty", seed, h)
		}
		var v struct {
			OK bool `json:"ok"`
		}
		getJSON(t, ts, "/verify", http.StatusOK, &v)
		if !v.OK {
			t.Fatalf("seed %d: store not clean after repair", seed)
		}
		assertChaosTruth(t, ts, want)
	}
}

// TestChaosLiveScrubConvergence drives the full live loop: a real serve
// with the paced scrubber running, concurrent clients hammering the
// canonical query, and seeded corruption landing mid-flight. Every client
// response must be a success or a typed failure status (500/503/504 —
// never a hang or an unexplained code), a 200 must carry the exact
// ground-truth answer, and after each burst the scrubber must converge
// /healthz back to ok with an empty quarantine, unprompted.
func TestChaosLiveScrubConvergence(t *testing.T) {
	srv, storePath, pageBytes, want := buildChaosServed(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 5*time.Second) }()
	go srv.runScrubLoop(ctx, 500) // ~50-page batches every 100ms: whole store per tick
	base := fmt.Sprintf("http://%s", ln.Addr())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan string, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + chaosRegion)
				if err != nil {
					select {
					case bad <- err.Error():
					default:
					}
					return
				}
				var q queryResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&q)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if decodeErr != nil || q.Records != 4 || q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
						select {
						case bad <- fmt.Sprintf("200 with wrong answer: %+v (decode %v)", q, decodeErr):
						default:
						}
						return
					}
				case http.StatusInternalServerError, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					// Damage or shedding surfaced as a typed failure: fine.
				default:
					select {
					case bad <- resp.Status:
					default:
					}
					return
				}
			}
		}()
	}

	for seed := int64(10); seed <= 12; seed++ {
		chaosRound(t, srv, storePath, pageBytes, seed)
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h struct {
				Status           string  `json:"status"`
				QuarantinedPages []int64 `json:"quarantinedPages"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if decodeErr != nil {
				t.Fatal(decodeErr)
			}
			// Converged only when the store actually scrubs clean — health
			// alone can read ok before the scrubber's cursor finds the burst.
			if h.Status == "ok" && len(h.QuarantinedPages) == 0 {
				if rep, err := srv.st().Verify(); err == nil && rep.OK() {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("seed %d: scrubber did not converge; healthz = %+v", seed, h)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatalf("client saw a non-typed failure during chaos: %s", msg)
	default:
	}

	// Final ground truth through the live listener, then a clean drain.
	resp, err := http.Get(base + chaosRegion)
	if err != nil {
		t.Fatal(err)
	}
	var q queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || q.Records != 4 || q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
		t.Fatalf("post-chaos answer = %d %+v, want 200 with records 4 sum %v", resp.StatusCode, q, want)
	}
	// Drop pooled keep-alive connections (including any the transport
	// dialed but never used) so Shutdown is not left waiting on them.
	http.DefaultClient.CloseIdleConnections()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain in time")
	}
}

// TestChaosReorgUnderFaults corrupts the source generation (repairably)
// and then forces a migration: the copy must repair-and-retry instead of
// stranding, the swap must land on generation 1 with a parity sidecar
// attached and the quarantine cleared, and answers must match ground
// truth on the new generation.
func TestChaosReorgUnderFaults(t *testing.T) {
	srv, _, storePath, _ := buildAdaptiveServed(t, adaptiveConfig())
	defer srv.closeStore()
	if err := srv.st().AttachParity(snakes.ParityPath(storePath)); err != nil {
		t.Fatal(err)
	}
	srv.parityGroup = srv.st().ParityGroup()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Ground truth before any damage, and a workload shift so the policy
	// has a better layout to migrate to.
	var q0 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q0)
	for i := 0; i < 50; i++ {
		getJSON(t, ts, "/query?where=y%3D3..4", http.StatusOK, nil)
	}

	// Seeded repairable damage on the source generation, verified to bite.
	st := srv.st()
	total := st.Layout().TotalPages()
	sched := chaos.PlanRepairable(77, int(total), total, st.ParityGroup(), 32)
	if err := sched.Apply(storePath); err != nil {
		t.Fatal(err)
	}
	hurt := 0
	for _, e := range sched.Events {
		if st.CheckPage(e.Page) != nil {
			hurt++
			srv.markQuarantined(e.Page, "chaos")
		}
	}
	if hurt == 0 {
		t.Fatalf("schedule %v corrupted nothing", sched)
	}

	d, err := srv.reorg.Trigger(context.Background(), true)
	if err != nil {
		t.Fatalf("forced reorg over a corrupt (repairable) source: %v", err)
	}
	if d.Generation != 1 {
		t.Fatalf("post-reorg generation = %d, want 1", d.Generation)
	}

	// The swap cleared the quarantine (stale generation-0 page ids) and the
	// new generation carries its own parity sidecar, ready to self-heal.
	var h struct {
		Status           string  `json:"status"`
		QuarantinedPages []int64 `json:"quarantinedPages"`
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" || len(h.QuarantinedPages) != 0 {
		t.Errorf("healthz after swap = %+v, want ok with empty quarantine", h)
	}
	if !srv.st().HasParity() {
		t.Error("new generation has no parity attached after the swap")
	}
	if _, err := os.Stat(snakes.ParityPath(genPath(storePath, 1))); err != nil {
		t.Errorf("new generation parity sidecar missing on disk: %v", err)
	}

	var q1 queryResponse
	getJSON(t, ts, chaosRegion, http.StatusOK, &q1)
	if q1.Generation != 1 || q1.Records != q0.Records || q1.Sum == nil || q0.Sum == nil ||
		math.Abs(*q1.Sum-*q0.Sum) > 1e-9 {
		t.Errorf("post-reorg answer = %+v, want generation 1 matching %+v", q1, q0)
	}
	var v struct {
		OK bool `json:"ok"`
	}
	getJSON(t, ts, "/verify", http.StatusOK, &v)
	if !v.OK {
		t.Error("new generation does not scrub clean")
	}
}

// TestChaosLong is the randomized long-haul variant behind `make
// chaos-long`: fresh random seeds every run, each logged so a failure
// replays exactly. Gated on CHAOS_LONG=1 to keep `make check` fast.
func TestChaosLong(t *testing.T) {
	if os.Getenv("CHAOS_LONG") != "1" {
		t.Skip("set CHAOS_LONG=1 to run the randomized long chaos suite")
	}
	srv, storePath, pageBytes, want := buildChaosServed(t)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	base := time.Now().UnixNano()
	t.Logf("chaos-long base seed %d (replay: corrupt with chaos.PlanRepairable(seed, ...))", base)
	for round := int64(0); round < 32; round++ {
		seed := base + round
		t.Logf("round %d seed %d", round, seed)
		sched, hurt := chaosRound(t, srv, storePath, pageBytes, seed)
		rr := postRepair(t, ts.URL)
		if !rr.OK || len(rr.Repaired) != hurt {
			t.Fatalf("seed %d: schedule %v → repair %+v, want %d pages healed", seed, sched, rr, hurt)
		}
		assertChaosTruth(t, ts, want)
	}
	var v struct {
		OK bool `json:"ok"`
	}
	getJSON(t, ts, "/verify", http.StatusOK, &v)
	if !v.OK {
		t.Fatal("store not clean after the long chaos run")
	}
}
