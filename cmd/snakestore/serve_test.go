package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	snakes "repro"
)

// buildServed builds a small store via the real optimize/build pipeline and
// returns a server over it plus the expected sum for region [1,2)×[2,6).
func buildServed(t *testing.T, capacity int64, queueTimeout, reqTimeout time.Duration) (*server, float64) {
	t.Helper()
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	want := writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", storePath, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	c, schema, strat, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	store, err := strat.OpenFileStore(storePath, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	adm, err := snakes.NewAdmission(capacity, queueTimeout)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(store, schema, schemaDims(c), adm, reqTimeout, c.Generation, snakes.TraceConfig{}), want
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", path, err)
		}
	}
}

func TestServeQueryAndHealthz(t *testing.T) {
	srv, want := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var q queryResponse
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, &q)
	if q.Records != 4 {
		t.Errorf("records = %d, want 4", q.Records)
	}
	if q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", q.Sum, want)
	}
	if q.Pages <= 0 {
		t.Errorf("analyticPages = %d, want positive", q.Pages)
	}

	// Bad inputs are 400s, not 500s.
	getJSON(t, ts, "/query?where=zz%3D0..1", http.StatusBadRequest, nil)
	getJSON(t, ts, "/query?where=x%3D9..1", http.StatusBadRequest, nil)
	getJSON(t, ts, "/query?sum=notanumber", http.StatusBadRequest, nil)

	var v struct {
		OK      bool  `json:"ok"`
		Pages   int64 `json:"pages"`
		Records int64 `json:"records"`
	}
	getJSON(t, ts, "/verify", http.StatusOK, &v)
	if !v.OK || v.Pages == 0 || v.Records == 0 {
		t.Errorf("verify = %+v, want clean non-empty scrub", v)
	}

	var h struct {
		Status           string  `json:"status"`
		QuarantinedPages []int64 `json:"quarantinedPages"`
		LastScrub        string  `json:"lastScrub"`
		Admission        struct {
			Admitted int64 `json:"Admitted"`
		} `json:"admission"`
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "ok" || len(h.QuarantinedPages) != 0 {
		t.Errorf("healthz = %+v, want ok with empty quarantine", h)
	}
	if h.LastScrub == "" {
		t.Error("healthz lost the last scrub outcome")
	}
	if h.Admission.Admitted == 0 {
		t.Error("healthz admission stats missing admitted count")
	}
}

// TestServeParallelReadPath: with -read-parallel style options armed, the
// query handler returns the same results as the sequential path, the
// analytic prediction still matches the observed page reads on a cold
// store, and the parallel-path metrics are exported.
func TestServeParallelReadPath(t *testing.T) {
	srv, want := buildServed(t, 64, time.Second, 5*time.Second)
	srv.readOpts = snakes.ReadOptions{Parallelism: 4, Readahead: 4}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	var q queryResponse
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, &q)
	if q.Records != 4 {
		t.Errorf("records = %d, want 4", q.Records)
	}
	if q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", q.Sum, want)
	}
	if q.PagesRead != q.Pages {
		t.Errorf("cold parallel query read %d pages, analytic predicts %d", q.PagesRead, q.Pages)
	}

	samples, types := scrape(t, ts.URL)
	if types["snakestore_fragment_parallel_inflight"] != "gauge" {
		t.Errorf("snakestore_fragment_parallel_inflight type = %q, want gauge", types["snakestore_fragment_parallel_inflight"])
	}
	if got := samples["snakestore_fragment_parallel_inflight"]; got != 0 {
		t.Errorf("inflight gauge = %v while idle, want 0", got)
	}
	if got := samples["snakestore_fragment_seconds_count"]; got <= 0 {
		t.Errorf("snakestore_fragment_seconds_count = %v, want positive (observer not armed?)", got)
	}
}

func TestServeQuarantinesCorruptPage(t *testing.T) {
	dir := t.TempDir()
	cat := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-page", "64", "-catalog", cat}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", cat, "-csv", csvPath, "-store", storePath, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	// Flip a bit on disk before the server opens the store.
	f, err := os.OpenFile(storePath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := f.ReadAt(one, 3); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0x20
	if _, err := f.WriteAt(one, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c, schema, strat, err := loadCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	store, err := strat.OpenFileStore(storePath, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	adm, err := snakes.NewAdmission(64, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, schema, schemaDims(c), adm, 5*time.Second, c.Generation, snakes.TraceConfig{})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// The full-grid query trips over the damage: 500, not a crash.
	getJSON(t, ts, "/query", http.StatusInternalServerError, nil)

	// The daemon keeps serving and reports the quarantined page.
	var h struct {
		Status           string  `json:"status"`
		QuarantinedPages []int64 `json:"quarantinedPages"`
	}
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.Status != "degraded" || len(h.QuarantinedPages) == 0 {
		t.Errorf("healthz after corruption = %+v, want degraded with quarantined pages", h)
	}
}

func TestServeShedsLoadWith503(t *testing.T) {
	srv, _ := buildServed(t, 1, time.Millisecond, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Occupy the whole admission budget, then watch a query shed.
	if err := srv.adm.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts, "/query", http.StatusServiceUnavailable, nil)
	srv.adm.Release(1)
	getJSON(t, ts, "/query", http.StatusOK, nil)
}

func TestServeGracefulDrain(t *testing.T) {
	srv, want := buildServed(t, 64, time.Second, 5*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 5*time.Second) }()
	base := fmt.Sprintf("http://%s", ln.Addr())

	// Requests succeed while the daemon runs.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/query?where=x%3D1..2&where=y%3D2..6&sum=0")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var q queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
				t.Error(err)
				return
			}
			if q.Sum == nil || math.Abs(*q.Sum-want) > 1e-9 {
				t.Errorf("sum = %v, want %v", q.Sum, want)
			}
		}()
	}
	wg.Wait()

	// Trigger the drain; serve must return cleanly and close the store.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain in time")
	}
	if err := srv.st().Close(); err == nil {
		t.Error("store was not closed by the drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}
