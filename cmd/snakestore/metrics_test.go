package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	snakes "repro"
)

// parseMetrics parses a Prometheus text exposition into per-series samples
// (keyed `name{labels}`) and per-family types. Duplicate series are an
// error: each (name, labels) pair must render exactly once per scrape.
func parseMetrics(body string) (samples map[string]float64, types map[string]string, err error) {
	samples = make(map[string]float64)
	types = make(map[string]string)
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(f, " ")
			if !ok {
				return nil, nil, fmt.Errorf("malformed TYPE line %q", line)
			}
			if _, dup := types[name]; dup {
				return nil, nil, fmt.Errorf("family %s declared twice", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, nil, fmt.Errorf("malformed sample line %q", line)
		}
		key := line[:i]
		v, perr := strconv.ParseFloat(line[i+1:], 64)
		if perr != nil {
			return nil, nil, fmt.Errorf("sample %q: %v", line, perr)
		}
		if _, dup := samples[key]; dup {
			return nil, nil, fmt.Errorf("duplicate series %s", key)
		}
		samples[key] = v
	}
	return samples, types, nil
}

// scrape fetches and parses /metrics, failing the test on any malformation.
func scrape(t *testing.T, base string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics content type = %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types, err := parseMetrics(string(body))
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	return samples, types
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, nil)
	getJSON(t, ts, "/query?where=zz%3D0..1", http.StatusBadRequest, nil)

	samples, types := scrape(t, ts.URL)
	for key, want := range map[string]float64{
		`snakestore_http_requests_total{handler="query"}`:             2,
		`snakestore_http_responses_total{code="200",handler="query"}`: 1,
		`snakestore_http_responses_total{code="400",handler="query"}`: 1,
		`snakestore_query_pages_analytic_count`:                       1,
	} {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	// The store was opened cold, so the successful query did physical reads
	// the pool and tally both saw.
	for _, key := range []string{
		"snakestore_pool_misses_total",
		"snakestore_admission_admitted_total",
		"snakestore_query_pages_read_sum",
		"snakestore_query_seeks_observed_sum",
		`snakestore_http_request_seconds_count{handler="query"}`,
	} {
		if samples[key] <= 0 {
			t.Errorf("%s = %v, want positive", key, samples[key])
		}
	}
	// Cumulative histogram: the +Inf bucket is the count.
	inf := samples[`snakestore_http_request_seconds_bucket{handler="query",le="+Inf"}`]
	cnt := samples[`snakestore_http_request_seconds_count{handler="query"}`]
	if inf != cnt {
		t.Errorf("+Inf bucket %v != _count %v", inf, cnt)
	}
	for name, typ := range map[string]string{
		"snakestore_pool_hits_total":       "counter",
		"snakestore_admission_queue_depth": "gauge",
		"snakestore_http_request_seconds":  "histogram",
		"snakestore_draining":              "gauge",
		"snakestore_quarantined_pages":     "gauge",
		"snakestore_scrub_pages_total":     "counter",
		"snakestore_pages_repaired_total":  "counter",
		"snakestore_repair_failures_total": "counter",
		"snakestore_health_state":          "gauge",
	} {
		if types[name] != typ {
			t.Errorf("type of %s = %q, want %q", name, types[name], typ)
		}
	}
	// The health state machine renders exactly one active state.
	active := 0.0
	for _, st := range healthStates {
		active += samples[fmt.Sprintf("snakestore_health_state{state=%q}", st)]
	}
	if active != 1 {
		t.Errorf("health_state gauges sum to %v, want exactly 1 active state", active)
	}
	if samples[`snakestore_health_state{state="ok"}`] != 1 {
		t.Errorf("fresh store health state is not ok: %v", samples)
	}
}

// TestHealthzDraining: the moment graceful shutdown begins, /healthz must
// flip to 503 "draining" — a load balancer probing it has to pull the
// instance — while /metrics and in-flight queries keep working.
func TestHealthzDraining(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	getJSON(t, ts, "/healthz", http.StatusOK, nil)
	srv.beginDrain()

	var h struct {
		Status string `json:"status"`
	}
	getJSON(t, ts, "/healthz", http.StatusServiceUnavailable, &h)
	if h.Status != "draining" {
		t.Errorf("draining healthz status = %q, want \"draining\"", h.Status)
	}
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6", http.StatusOK, nil)
	samples, _ := scrape(t, ts.URL)
	if samples["snakestore_draining"] != 1 {
		t.Errorf("snakestore_draining = %v during drain, want 1", samples["snakestore_draining"])
	}
}

// TestMetricsLint enforces the naming conventions on the real serving
// registry: unique series, snake_case names, the snakestore_ prefix, and
// counter/_total agreement. `make metrics-lint` runs this.
func TestMetricsLint(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	getJSON(t, ts, "/query", http.StatusOK, nil)

	// parseMetrics inside scrape already rejects duplicate series and
	// duplicate family declarations.
	samples, types := scrape(t, ts.URL)
	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	for name, typ := range types {
		if !nameRE.MatchString(name) || strings.Contains(name, "__") {
			t.Errorf("metric %q is not snake_case", name)
		}
		if !strings.HasPrefix(name, "snakestore_") {
			t.Errorf("metric %q lacks the snakestore_ prefix", name)
		}
		if typ == "counter" != strings.HasSuffix(name, "_total") {
			t.Errorf("metric %q: type %s and _total suffix disagree", name, typ)
		}
	}
	// Every sample belongs to a declared family (histograms via suffixes).
	for key := range samples {
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(name, suf); ok && types[s] == "histogram" {
				base = s
			}
		}
		if _, ok := types[base]; !ok {
			t.Errorf("series %s has no # TYPE declaration", key)
		}
	}
}

// TestMetricsTraceFamilies: the tracing metric families are declared with
// the right types, build_info carries its labels with a constant 1, and
// the retention counters follow the recorder: tracing every request moves
// started/kept, and the per-kind span histograms see the request's spans.
func TestMetricsTraceFamilies(t *testing.T) {
	srv := buildServedTrace(t, snakes.TraceConfig{SampleEvery: 1})
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6", http.StatusOK, nil)

	samples, types := scrape(t, ts.URL)
	for name, typ := range map[string]string{
		"snakestore_slow_query_total":          "counter",
		"snakestore_http_panics_total":         "counter",
		"snakestore_trace_span_seconds":        "histogram",
		"snakestore_traces_started_total":      "counter",
		"snakestore_traces_kept_total":         "counter",
		"snakestore_traces_discarded_total":    "counter",
		"snakestore_trace_spans_dropped_total": "counter",
		"snakestore_build_info":                "gauge",
	} {
		if types[name] != typ {
			t.Errorf("type of %s = %q, want %q", name, types[name], typ)
		}
	}
	found := false
	for key, v := range samples {
		if strings.HasPrefix(key, "snakestore_build_info{") {
			found = true
			if v != 1 {
				t.Errorf("%s = %v, want constant 1", key, v)
			}
			for _, lbl := range []string{"version=", "goversion=", "generation="} {
				if !strings.Contains(key, lbl) {
					t.Errorf("build_info series %s lacks %s label", key, lbl)
				}
			}
		}
	}
	if !found {
		t.Error("no snakestore_build_info series rendered")
	}
	if samples["snakestore_traces_started_total"] != 1 {
		t.Errorf("traces started = %v, want 1", samples["snakestore_traces_started_total"])
	}
	if samples[`snakestore_traces_kept_total{reason="sampled"}`] != 1 {
		t.Errorf("traces kept sampled = %v, want 1", samples[`snakestore_traces_kept_total{reason="sampled"}`])
	}
	for _, key := range []string{
		`snakestore_trace_span_seconds_count{kind="request"}`,
		`snakestore_trace_span_seconds_count{kind="admission"}`,
		`snakestore_trace_span_seconds_count{kind="fragment"}`,
	} {
		if samples[key] <= 0 {
			t.Errorf("%s = %v, want positive", key, samples[key])
		}
	}
}

// TestConcurrentScrapeUnderDrain hammers /query and /metrics from eight
// goroutines through a real serve() and cancels mid-traffic: /metrics must
// never fail, scraped counters must be monotone, histograms must stay
// self-consistent, and queries must never surface a 500.
func TestConcurrentScrapeUnderDrain(t *testing.T) {
	srv, _ := buildServed(t, 256, time.Second, 5*time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, srv, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16) // non-test goroutines report here
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				resp, err := http.Get(base + "/query?where=x%3D1..2&where=y%3D2..6&sum=0")
				if err != nil {
					continue // refused during drain: expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusInternalServerError {
					report("query returned 500")
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for !stopped() {
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					continue
				}
				if resp.StatusCode != http.StatusOK {
					report(fmt.Sprintf("/metrics returned %d", resp.StatusCode))
					return
				}
				samples, _, perr := parseMetrics(string(body))
				if perr != nil {
					report("bad exposition: " + perr.Error())
					return
				}
				v := samples[`snakestore_http_requests_total{handler="query"}`]
				if v < last {
					report(fmt.Sprintf("request counter went backwards: %v -> %v", last, v))
					return
				}
				last = v
				inf := samples[`snakestore_http_request_seconds_bucket{handler="query",le="+Inf"}`]
				cnt := samples[`snakestore_http_request_seconds_count{handler="query"}`]
				if inf != cnt {
					report(fmt.Sprintf("latency histogram inconsistent: +Inf %v, _count %v", inf, cnt))
					return
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond)
	cancel() // begin the drain while both kinds of traffic are in flight
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain in time")
	}
}

// splitSeries parses one sample key `family{k="v",...}` into the family
// name and its label map. Label values are quoted and may contain commas
// (query-class labels do), so this walks the quoting instead of splitting.
func splitSeries(t *testing.T, key string) (family string, labels map[string]string) {
	t.Helper()
	labels = map[string]string{}
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, labels
	}
	family = key[:i]
	rest := strings.TrimSuffix(key[i+1:], "}")
	for len(rest) > 0 {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			t.Fatalf("malformed labels in series %q", key)
		}
		name := rest[:eq]
		rest = rest[eq+2:]
		var val strings.Builder
		for {
			if len(rest) == 0 {
				t.Fatalf("unterminated label value in series %q", key)
			}
			c := rest[0]
			rest = rest[1:]
			if c == '\\' && len(rest) > 0 {
				val.WriteByte(rest[0])
				rest = rest[1:]
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		labels[name] = val.String()
		rest = strings.TrimPrefix(rest, ",")
	}
	return family, labels
}

// TestMetricsLintBuckets: every histogram's bucket series must be
// cumulative — non-decreasing in le order — and its +Inf bucket must equal
// the family's _count for the same label set. A registry bug that skips a
// bucket or miscounts breaks PromQL quantiles silently; this catches it at
// lint time. `make metrics-lint` runs this.
func TestMetricsLintBuckets(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	// Move several histograms: request latency, pages, seeks, fragments.
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, nil)
	getJSON(t, ts, "/healthz", http.StatusOK, nil)

	samples, types := scrape(t, ts.URL)
	type bucket struct {
		le float64
		v  float64
	}
	groups := map[string][]bucket{} // family + non-le labels -> buckets
	groupKey := func(family string, labels map[string]string) string {
		names := make([]string, 0, len(labels))
		for n := range labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString(family)
		for _, n := range names {
			fmt.Fprintf(&b, "|%s=%s", n, labels[n])
		}
		return b.String()
	}
	counts := map[string]float64{}
	for key, v := range samples {
		family, labels := splitSeries(t, key)
		if base, ok := strings.CutSuffix(family, "_bucket"); ok && types[base] == "histogram" {
			leStr, present := labels["le"]
			if !present {
				t.Errorf("bucket series %s has no le label", key)
				continue
			}
			le, err := strconv.ParseFloat(strings.Replace(leStr, "+Inf", "Inf", 1), 64)
			if err != nil {
				t.Errorf("bucket series %s: le %q: %v", key, leStr, err)
				continue
			}
			groups[groupKey(base, labels)] = append(groups[groupKey(base, labels)], bucket{le, v})
		}
		if base, ok := strings.CutSuffix(family, "_count"); ok && types[base] == "histogram" {
			counts[groupKey(base, labels)] = v
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram buckets rendered")
	}
	for g, bs := range groups {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].v < bs[i-1].v {
				t.Errorf("%s: bucket le=%v count %v < le=%v count %v (not cumulative)",
					g, bs[i].le, bs[i].v, bs[i-1].le, bs[i-1].v)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: largest bucket is le=%v, want +Inf", g, last.le)
		}
		cnt, ok := counts[g]
		if !ok || last.v != cnt {
			t.Errorf("%s: +Inf bucket %v != _count %v (present=%v)", g, last.v, cnt, ok)
		}
	}
}

// maxLabelCardinality is the lint ceiling on distinct values per label
// name per family. The registry's label sets are closed (pre-registered
// from the schema and fixed enums), so any family approaching this is
// leaking unbounded input — request paths, error strings — into labels.
const maxLabelCardinality = 32

// TestMetricsLintCardinality walks every rendered family and fails if any
// label name carries more than maxLabelCardinality distinct values.
// `make metrics-lint` runs this.
func TestMetricsLintCardinality(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	cfg, err := snakes.ParseSLOSpec("default=250ms@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableSLO(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, nil)

	samples, _ := scrape(t, ts.URL)
	vals := map[string]map[string]map[string]bool{} // family -> label -> values
	for key := range samples {
		family, labels := splitSeries(t, key)
		for n, v := range labels {
			if vals[family] == nil {
				vals[family] = map[string]map[string]bool{}
			}
			if vals[family][n] == nil {
				vals[family][n] = map[string]bool{}
			}
			vals[family][n][v] = true
		}
	}
	for family, byLabel := range vals {
		for n, set := range byLabel {
			if len(set) > maxLabelCardinality {
				t.Errorf("family %s label %q has %d distinct values, lint ceiling is %d",
					family, n, len(set), maxLabelCardinality)
			}
		}
	}
}

// TestMetricsLintObsFamilies pins the observability-v2 families to their
// naming contract: slo families always carry a class label with closed
// window/state/result enums, calibration families carry a class label
// except the global seek correction, and the event-ring families are the
// fixed counter/counter/gauge triple. `make metrics-lint` runs this.
func TestMetricsLintObsFamilies(t *testing.T) {
	srv, _ := buildServed(t, 64, time.Second, 5*time.Second)
	cfg, err := snakes.ParseSLOSpec("default=250ms@99.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.enableSLO(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	getJSON(t, ts, "/query?where=x%3D1..2&where=y%3D2..6&sum=0", http.StatusOK, nil)

	samples, types := scrape(t, ts.URL)
	for name, typ := range map[string]string{
		"snakestore_slo_burn_rate":               "gauge",
		"snakestore_slo_state":                   "gauge",
		"snakestore_slo_requests_total":          "counter",
		"snakestore_calibration_page_ratio":      "gauge",
		"snakestore_calibration_seek_ratio":      "gauge",
		"snakestore_calibration_weight":          "gauge",
		"snakestore_calibration_drifted":         "gauge",
		"snakestore_calibration_seek_correction": "gauge",
		"snakestore_event_published_total":       "counter",
		"snakestore_event_overwritten_total":     "counter",
		"snakestore_event_ring_capacity":         "gauge",
	} {
		if types[name] != typ {
			t.Errorf("type of %s = %q, want %q", name, types[name], typ)
		}
	}
	states := map[string]bool{}
	for _, st := range snakes.SLOStates() {
		states[st] = true
	}
	stateSum := map[string]float64{} // class -> Σ state gauges (one-hot)
	for key, v := range samples {
		family, labels := splitSeries(t, key)
		switch {
		case strings.HasPrefix(family, "snakestore_slo_"):
			if labels["class"] == "" {
				t.Errorf("slo series %s has no class label", key)
			}
			switch family {
			case "snakestore_slo_burn_rate":
				if w := labels["window"]; w != "5m" && w != "1h" {
					t.Errorf("%s: window %q outside the closed {5m,1h} set", key, w)
				}
			case "snakestore_slo_state":
				if !states[labels["state"]] {
					t.Errorf("%s: state %q outside the closed SLO state set", key, labels["state"])
				}
				stateSum[labels["class"]] += v
			case "snakestore_slo_requests_total":
				if r := labels["result"]; r != "good" && r != "bad" {
					t.Errorf("%s: result %q outside the closed {good,bad} set", key, r)
				}
			default:
				t.Errorf("unknown slo family %s", family)
			}
		case strings.HasPrefix(family, "snakestore_calibration_"):
			if family == "snakestore_calibration_seek_correction" {
				if len(labels) != 0 {
					t.Errorf("seek correction series %s grew labels", key)
				}
			} else if labels["class"] == "" {
				t.Errorf("calibration series %s has no class label", key)
			}
		case strings.HasPrefix(family, "snakestore_event_"):
			if len(labels) != 0 {
				t.Errorf("event-ring series %s grew labels", key)
			}
		}
	}
	if len(stateSum) == 0 {
		t.Fatal("no slo state gauges rendered")
	}
	for class, sum := range stateSum {
		if sum != 1 {
			t.Errorf("slo state gauges for class %s sum to %v, want exactly one active state", class, sum)
		}
	}
}
