package main

import (
	"flag"
	"fmt"
	"sort"

	snakes "repro"
)

// cmdSLO is `snakestore slo`: parse and validate an objective spec before
// an operator hands it to serve -slo. With -catalog, per-class entries are
// checked against the schema's class set and the full resolved objective
// table is printed (one line per tracked class); without it, only the
// spec's own syntax and ranges are validated.
func cmdSLO(args []string) error {
	fs := flag.NewFlagSet("slo", flag.ExitOnError)
	spec := fs.String("spec", "", "objective spec, e.g. 'default=250ms@99.9;0,2=50ms@99'")
	catPath := fs.String("catalog", "", "optional catalog file to resolve per-class objectives against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" {
		return usagef("slo wants -spec, e.g. -spec 'default=250ms@99.9'")
	}
	cfg, err := snakes.ParseSLOSpec(*spec)
	if err != nil {
		return usagef("%v", err)
	}
	printObj := func(label string, o snakes.SLOObjective) {
		fmt.Printf("%-12s %v @ %.6g%% (budget %.6g%%)\n", label, o.Threshold, o.Target*100, (1-o.Target)*100)
	}
	if *catPath == "" {
		if cfg.HasDefault {
			printObj("default", cfg.Default)
		}
		keys := make([]string, 0, len(cfg.PerClass))
		for k := range cfg.PerClass {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			printObj(k, cfg.PerClass[k])
		}
		fmt.Println("spec ok (no catalog given; per-class labels unchecked)")
		return nil
	}
	_, schema, _, err := loadCatalog(*catPath)
	if err != nil {
		return err
	}
	known := make(map[string]bool, schema.NumClasses())
	for _, c := range schema.Classes() {
		known[classLabel(c)] = true
	}
	for lbl := range cfg.PerClass {
		if !known[lbl] {
			return usagef("class %q is not a class of catalog %s", lbl, *catPath)
		}
	}
	tracked := 0
	for _, c := range schema.Classes() {
		lbl := classLabel(c)
		o, ok := cfg.PerClass[lbl]
		switch {
		case ok:
			printObj(lbl, o)
			tracked++
		case cfg.HasDefault:
			printObj(lbl+" (default)", cfg.Default)
			tracked++
		}
	}
	fmt.Printf("spec ok: %d of %d classes tracked\n", tracked, schema.NumClasses())
	return nil
}
