package main

import (
	"strconv"
	"strings"

	snakes "repro"
	"repro/internal/obs"
)

// metricsPrefix namespaces every daemon metric; the metrics-name lint
// (make metrics-lint, TestMetricsLint) enforces it together with
// snake_case and per-series uniqueness.
const metricsPrefix = "snakestore_"

// handlerNames, responseCodes, and reorgOutcomes enumerate the closed
// label sets the daemon pre-registers at startup — the obs registry
// deliberately has no dynamic series creation, so the error taxonomy stays
// an explicit list.
var (
	handlerNames  = []string{"query", "verify", "healthz", "metrics", "reorg", "repair", "traces", "ingest", "events"}
	responseCodes = []int{200, 400, 404, 409, 500, 503, 504}
	reorgOutcomes = []string{"success", "failed", "canceled"}
	healthStates  = []string{"ok", "degraded", "healing"}
)

// handlerMetrics is one endpoint's request telemetry.
type handlerMetrics struct {
	requests  *obs.Counter
	latency   *obs.Histogram
	byCode    map[int]*obs.Counter
	otherCode *obs.Counter // statuses outside responseCodes
}

// serverMetrics is the daemon's metric set over one obs.Registry, wired to
// the live pool and admission counters at scrape time.
type serverMetrics struct {
	reg      *obs.Registry
	inFlight *obs.Gauge
	draining *obs.Gauge
	handlers map[string]*handlerMetrics

	queryRecords  *obs.Counter
	pagesAnalytic *obs.Histogram
	pagesRead     *obs.Histogram
	seeksAnalytic *obs.Histogram
	seeksObserved *obs.Histogram
	fragSeconds   *obs.Histogram

	// Adaptive reorganization: one counter per class the serve path has
	// attributed queries to, the policy's last regret measurement, and
	// per-outcome migration counts and durations.
	classObserved map[string]*obs.Counter
	reorgRegret   *obs.Gauge
	reorgSeconds  *obs.Histogram
	reorgOutcome  map[string]*obs.Counter

	// Self-healing: pages checked by the background scrubber (and repair
	// sweeps), pages reconstructed from parity, and repair attempts that
	// found the damage beyond parity's single-fault budget.
	scrubPages     *obs.Counter
	pagesRepaired  *obs.Counter
	repairFailures *obs.Counter

	// Tracing: requests past the slow threshold, handler panics caught by
	// the middleware, and per-span-kind time observed from finished traces.
	slowQuery   *obs.Counter
	httpPanics  *obs.Counter
	spanSeconds map[string]*obs.Histogram

	// Write path: accepted/rejected upserts and the cells queries served
	// from the delta store instead of the base file. The backlog gauges and
	// compaction counters are registered by enableIngest, which owns the
	// live delta log they read.
	ingestPuts      *obs.Counter
	ingestBytes     *obs.Counter
	ingestRejected  *obs.Counter
	queryDeltaCells *obs.Counter
}

// latencyBuckets spans 0.5 ms – ~4 s, the daemon's plausible request range.
var latencyBuckets = obs.ExpBuckets(0.0005, 2, 14)

// pageBuckets spans 1 – 2048 pages/seeks per query.
var pageBuckets = obs.ExpBuckets(1, 2, 12)

// classLabel renders a query class as a metric label value: its per-dim
// levels comma-joined, e.g. "0,2".
func classLabel(c snakes.Class) string {
	parts := make([]string, len(c))
	for i, lv := range c {
		parts[i] = strconv.Itoa(lv)
	}
	return strings.Join(parts, ",")
}

// newServerMetrics builds the registry: pool and admission stats exposed
// straight from their existing atomic counters, per-handler request
// counters/histograms, the analytic-vs-observed query cost histograms, and
// the adaptive reorganization families. The store is read through an
// accessor because reorganization hot-swaps it at runtime; the schema fixes
// the closed per-class label set.
func newServerMetrics(store func() *snakes.FileStore, adm *snakes.Admission, schema *snakes.Schema) *serverMetrics {
	reg := obs.NewRegistry(metricsPrefix)
	pool := func(f func(snakes.PoolStats) int64) func() int64 {
		return func() int64 { return f(store().Pool().Stats()) }
	}
	reg.CounterFunc("snakestore_pool_hits_total", "buffer pool page hits", pool(func(s snakes.PoolStats) int64 { return s.Hits }))
	reg.CounterFunc("snakestore_pool_misses_total", "buffer pool physical page loads", pool(func(s snakes.PoolStats) int64 { return s.Misses }))
	reg.CounterFunc("snakestore_pool_evictions_total", "buffer pool frame evictions", pool(func(s snakes.PoolStats) int64 { return s.Evictions }))
	reg.CounterFunc("snakestore_pool_writes_total", "buffer pool physical page write-backs", pool(func(s snakes.PoolStats) int64 { return s.Writes }))
	reg.CounterFunc("snakestore_pool_retries_total", "transient I/O errors ridden out by the retry policy", pool(func(s snakes.PoolStats) int64 { return s.Retries }))
	reg.CounterFunc("snakestore_pool_single_flight_waits_total", "goroutines that waited on another goroutine's in-flight load", pool(func(s snakes.PoolStats) int64 { return s.SingleFlightWaits }))
	reg.GaugeFunc("snakestore_fragment_parallel_inflight", "fragment fetches currently running on the parallel read path", func() float64 { return float64(store().ParallelInflight()) })

	admf := func(f func(snakes.AdmissionStats) float64) func() float64 {
		return func() float64 { return f(adm.StatsSnapshot()) }
	}
	reg.GaugeFunc("snakestore_admission_capacity_pages", "total admission weight capacity", admf(func(s snakes.AdmissionStats) float64 { return float64(s.Capacity) }))
	reg.GaugeFunc("snakestore_admission_in_use_pages", "admission weight currently admitted", admf(func(s snakes.AdmissionStats) float64 { return float64(s.InUse) }))
	reg.GaugeFunc("snakestore_admission_queue_depth", "queries waiting for admission", admf(func(s snakes.AdmissionStats) float64 { return float64(s.QueueDepth) }))
	reg.CounterFunc("snakestore_admission_admitted_total", "queries admitted", func() int64 { return adm.StatsSnapshot().Admitted })
	reg.CounterFunc("snakestore_admission_rejected_total", "queries shed on admission queue timeout", func() int64 { return adm.StatsSnapshot().Rejected })
	reg.CounterFunc("snakestore_admission_canceled_total", "queries whose context ended while waiting for admission", func() int64 { return adm.StatsSnapshot().Canceled })

	m := &serverMetrics{
		reg:      reg,
		inFlight: reg.Gauge("snakestore_http_in_flight", "HTTP requests currently being served"),
		draining: reg.Gauge("snakestore_draining", "1 while graceful shutdown drains in-flight requests"),
		handlers: make(map[string]*handlerMetrics, len(handlerNames)),

		queryRecords:  reg.Counter("snakestore_query_records_total", "records streamed to query responses"),
		pagesAnalytic: reg.Histogram("snakestore_query_pages_analytic", "pages per query predicted by the analytic cost model", pageBuckets),
		pagesRead:     reg.Histogram("snakestore_query_pages_read", "physical page reads per query observed at the pool", pageBuckets),
		seeksAnalytic: reg.Histogram("snakestore_query_seeks_analytic", "seeks per query predicted by the analytic cost model", pageBuckets),
		seeksObserved: reg.Histogram("snakestore_query_seeks_observed", "seeks per query observed at the pool (runs of non-consecutive reads)", pageBuckets),
		fragSeconds:   reg.Histogram("snakestore_fragment_seconds", "wall time of one fragment fetch on the parallel read path", latencyBuckets),

		classObserved: make(map[string]*obs.Counter, schema.NumClasses()),
		reorgRegret:   reg.Gauge("snakestore_reorg_regret", "deployed strategy cost over DP-optimal cost at the last policy evaluation"),
		reorgSeconds:  reg.Histogram("snakestore_reorg_migration_seconds", "wall time of reorganization attempts", latencyBuckets),
		reorgOutcome:  make(map[string]*obs.Counter, len(reorgOutcomes)),

		scrubPages:     reg.Counter("snakestore_scrub_pages_total", "pages checked by the background scrubber and repair sweeps"),
		pagesRepaired:  reg.Counter("snakestore_pages_repaired_total", "corrupt pages reconstructed from parity and re-verified"),
		repairFailures: reg.Counter("snakestore_repair_failures_total", "repair attempts that could not reconstruct the page"),

		slowQuery:   reg.Counter("snakestore_slow_query_total", "traced requests at or past the slow-query threshold"),
		httpPanics:  reg.Counter("snakestore_http_panics_total", "handler panics recovered by the serving middleware"),
		spanSeconds: make(map[string]*obs.Histogram, len(snakes.TraceSpanKinds())),

		ingestPuts:      reg.Counter("snakestore_ingest_puts_total", "cell upserts accepted into the delta store"),
		ingestBytes:     reg.Counter("snakestore_ingest_bytes_total", "framed payload bytes accepted into the delta store"),
		ingestRejected:  reg.Counter("snakestore_ingest_rejected_total", "cell upserts shed on delta backlog pressure or put failure"),
		queryDeltaCells: reg.Counter("snakestore_query_delta_cells_total", "cells queries served from the delta store via merge-on-read"),
	}
	for _, scope := range []string{"cell", "all"} {
		scope := scope
		reg.CounterFunc("snakestore_plan_cache_invalidations_total", "parallel read plans invalidated, by scope (cell = targeted by a write, all = cache overflow)", func() int64 {
			cell, all := store().PlanCacheInvalidations()
			if scope == "cell" {
				return cell
			}
			return all
		}, "scope", scope)
	}
	for _, k := range snakes.TraceSpanKinds() {
		m.spanSeconds[k] = reg.Histogram("snakestore_trace_span_seconds", "span time in finished traces by span kind", latencyBuckets, "kind", k)
	}
	for _, c := range schema.Classes() {
		lbl := classLabel(c)
		m.classObserved[lbl] = reg.Counter("snakestore_query_class_observed_total", "queries served by attributed query class", "class", lbl)
	}
	for _, o := range reorgOutcomes {
		m.reorgOutcome[o] = reg.Counter("snakestore_reorg_total", "reorganization attempts by outcome", "outcome", o)
	}
	for _, h := range handlerNames {
		hm := &handlerMetrics{
			requests:  reg.Counter("snakestore_http_requests_total", "HTTP requests received", "handler", h),
			latency:   reg.Histogram("snakestore_http_request_seconds", "HTTP request latency", latencyBuckets, "handler", h),
			byCode:    make(map[int]*obs.Counter, len(responseCodes)),
			otherCode: reg.Counter("snakestore_http_responses_total", "HTTP responses by status code", "handler", h, "code", "other"),
		}
		for _, code := range responseCodes {
			hm.byCode[code] = reg.Counter("snakestore_http_responses_total", "HTTP responses by status code", "handler", h, "code", strconv.Itoa(code))
		}
		m.handlers[h] = hm
	}
	return m
}

// response counts one finished request against the handler's code series.
func (hm *handlerMetrics) response(code int) {
	if c, ok := hm.byCode[code]; ok {
		c.Inc()
		return
	}
	hm.otherCode.Inc()
}

// observeClass counts one served query against its class series and feeds
// the gauge consumers; unknown labels are impossible by construction (the
// set is pre-registered from the schema) but ignored defensively.
func (m *serverMetrics) observeClass(c snakes.Class) {
	if ctr, ok := m.classObserved[classLabel(c)]; ok {
		ctr.Inc()
	}
}

// observeReorg counts one reorganization outcome and its duration.
func (m *serverMetrics) observeReorg(outcome string, seconds float64) {
	if ctr, ok := m.reorgOutcome[outcome]; ok {
		ctr.Inc()
	}
	m.reorgSeconds.Observe(seconds)
}

// observeTrace feeds one finished trace into the per-span-kind time
// histograms and counts it against the slow-query series when the recorder
// classified it slow. Span kinds are a closed set fixed at registration;
// anything else (there should be nothing else) is ignored.
func (m *serverMetrics) observeTrace(tr *snakes.Trace, res snakes.TraceResult) {
	if res.Slow {
		m.slowQuery.Inc()
	}
	for _, sp := range tr.Spans() {
		if h, ok := m.spanSeconds[sp.Kind]; ok && sp.Dur >= 0 {
			h.Observe(float64(sp.Dur) / 1e9)
		}
	}
}
