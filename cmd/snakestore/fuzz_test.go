package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCatalogRoundTrip feeds arbitrary bytes through loadCatalog and, for
// anything that parses, requires the atomic writer to reach a stable
// fixpoint: write → load → write must reproduce the same bytes, so no
// catalog state is lost or mangled across a save/restore cycle.
func FuzzCatalogRoundTrip(f *testing.F) {
	seedDir := f.TempDir()
	seedCat := filepath.Join(seedDir, "cat.json")
	if err := cmdOptimize([]string{"-dims", "x:2,2 y:3,2", "-workload", "0,1:1", "-catalog", seedCat}); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedCat)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"schema":{},"strategy":{},"pageBytes":8192}`))
	f.Add([]byte(`{"version":99,"schema":{},"strategy":{}}`))
	f.Add([]byte(`{"version":2,"dirty":true,"schema":{},"strategy":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cat.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		cat, _, _, err := loadCatalog(path)
		if err != nil {
			return // rejecting malformed input is the correct behavior
		}
		if err := writeCatalog(path, cat); err != nil {
			t.Fatalf("rewriting a valid catalog: %v", err)
		}
		first, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cat2, _, _, err := loadCatalog(path)
		if err != nil {
			t.Fatalf("reloading a rewritten catalog: %v", err)
		}
		if err := writeCatalog(path, cat2); err != nil {
			t.Fatalf("second rewrite: %v", err)
		}
		second, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("catalog round trip is not a fixpoint:\nfirst:  %s\nsecond: %s", first, second)
		}
	})
}
