package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	snakes "repro"
)

// adaptiveConfig is an aggressive policy for tests: evaluate every couple
// of milliseconds, act after two consecutive over-threshold evaluations.
func adaptiveConfig() snakes.ReorgConfig {
	return snakes.ReorgConfig{
		CheckInterval:   2 * time.Millisecond,
		Smoothing:       0.01,
		MinWeight:       1,
		RegretThreshold: 1.05,
		Hysteresis:      2,
	}
}

// buildAdaptiveServed runs the real optimize/build pipeline with a
// row-query workload (class {0,2}: one x leaf, all of y) and returns a
// server with adaptive reorganization enabled, plus the catalog, base store
// path, and deployed strategy. Pages are 32 bytes so the 4x6 grid spans
// enough pages for layouts to differ physically.
func buildAdaptiveServed(t *testing.T, cfg snakes.ReorgConfig) (*server, string, string, *snakes.Strategy) {
	t.Helper()
	dir := t.TempDir()
	catPath := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{
		"-dims", "x:2,2 y:3,2", "-workload", "0,2:1", "-page", "32", "-catalog", catPath,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", catPath, "-csv", csvPath, "-store", storePath, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	c, schema, strat, err := loadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	store, err := strat.OpenFileStore(activeStorePath(c, storePath), c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	adm, err := snakes.NewAdmission(1024, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(store, schema, schemaDims(c), adm, 5*time.Second, c.Generation, snakes.TraceConfig{})
	if err := srv.enableReorg(catPath, storePath, 8, c, strat, cfg); err != nil {
		store.Close()
		t.Fatal(err)
	}
	return srv, catPath, storePath, strat
}

// TestServeAdaptiveReorgEndToEnd is the whole loop under live HTTP traffic:
// serve row queries, shift the stream to column queries, and let the
// background policy migrate onto the column-optimal generation while
// concurrent clients keep querying. No request may surface a 500 across the
// swap; afterwards the catalog, metrics, and responses all report
// generation 1, the old file is gone, and a cold re-open of the new
// generation shows column seeks at the new layout's analytic prediction,
// beating the old layout's.
func TestServeAdaptiveReorgEndToEnd(t *testing.T) {
	srv, catPath, storePath, oldStrat := buildAdaptiveServed(t, adaptiveConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	go srv.reorg.Run(rctx)

	// Phase A: the built layout serves its design workload at generation 0.
	var q queryResponse
	getJSON(t, ts, "/query?where=x%3D1..2", http.StatusOK, &q)
	if q.Generation != 0 {
		t.Fatalf("pre-drift generation = %d, want 0", q.Generation)
	}

	// Phase B: the workload shifts to column queries (class {2,0}) while
	// concurrent clients hammer the same query. Every response across the
	// background swap must be a success or a typed rejection — never 500.
	colQuery := "/query?where=y%3D3..4&sum=0"
	var wg sync.WaitGroup
	stop := make(chan struct{})
	bad := make(chan string, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + colQuery)
				if err != nil {
					select {
					case bad <- err.Error():
					default:
					}
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					select {
					case bad <- resp.Status:
					default:
					}
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(15 * time.Second)
	for srv.generation.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatalf("query failed during reorganization: %s", msg)
	default:
	}
	if srv.generation.Load() != 1 {
		t.Fatalf("reorganization never fired: status %+v", srv.reorg.Status())
	}

	// The policy's own accounting: one successful reorg onto generation 1.
	var rs struct {
		Enabled bool `json:"enabled"`
		Status  struct {
			Generation  int    `json:"generation"`
			Reorgs      uint64 `json:"reorgs"`
			LastOutcome string `json:"lastOutcome"`
		} `json:"status"`
	}
	getJSON(t, ts, "/reorg", http.StatusOK, &rs)
	if !rs.Enabled || rs.Status.Generation != 1 || rs.Status.Reorgs != 1 || rs.Status.LastOutcome != "success" {
		t.Errorf("reorg status = %+v, want enabled generation-1 success", rs)
	}
	getJSON(t, ts, colQuery, http.StatusOK, &q)
	if q.Generation != 1 {
		t.Errorf("post-swap query generation = %d, want 1", q.Generation)
	}

	// The old generation file is deleted only after the post-swap scrub;
	// give the background deletion a moment, then check the disk state.
	for time.Now().Before(deadline) {
		if _, err := os.Stat(storePath); os.IsNotExist(err) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(storePath); !os.IsNotExist(err) {
		t.Errorf("old generation file %s still present (stat err: %v)", storePath, err)
	}
	newPath := genPath(storePath, 1)
	if _, err := os.Stat(newPath); err != nil {
		t.Fatalf("new generation file: %v", err)
	}

	// The catalog on disk survived the swap atomically and points at the
	// new generation with the new strategy.
	c2, schema2, strat2, err := loadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Generation != 1 || c2.StoreFile != filepath.Base(newPath) {
		t.Fatalf("catalog after reorg: generation %d file %q", c2.Generation, c2.StoreFile)
	}
	if activeStorePath(c2, storePath) != newPath {
		t.Fatalf("active path resolves to %s, want %s", activeStorePath(c2, storePath), newPath)
	}

	// Metrics: the swap and the class stream are all visible.
	samples, _ := scrape(t, ts.URL)
	if got := samples[`snakestore_reorg_total{outcome="success"}`]; got != 1 {
		t.Errorf(`reorg_total{success} = %v, want 1`, got)
	}
	if got := samples["snakestore_store_generation"]; got != 1 {
		t.Errorf("store_generation = %v, want 1", got)
	}
	if got := samples[`snakestore_query_class_observed_total{class="2,0"}`]; got <= 0 {
		t.Errorf(`query_class_observed_total{class="2,0"} = %v, want positive`, got)
	}
	if got := samples["snakestore_reorg_migration_seconds_count"]; got != 1 {
		t.Errorf("reorg_migration_seconds_count = %v, want 1", got)
	}

	// Shut the daemon down, then re-open the new generation cold: observed
	// column seeks must match the new layout's analytic prediction and beat
	// the old layout's.
	ts.Close()
	rcancel()
	if err := srv.closeStore(); err != nil {
		t.Fatal(err)
	}
	store, err := strat2.OpenFileStore(newPath, c2.BytesPer, c2.PageBytes, 8, c2.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	region, err := parseRegion(schema2, schemaDims(c2), []string{"y=3..4"})
	if err != nil {
		t.Fatal(err)
	}
	pred := store.Layout().Query(region)
	var tally snakes.PoolTally
	qctx := snakes.WithPoolTally(context.Background(), &tally)
	var records int64
	if err := store.ReadQueryCtx(qctx, region, func(cell int, rec []byte) error {
		records++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if records == 0 {
		t.Fatal("column query returned no records after reorg")
	}
	if got := tally.Seeks(); got != pred.Seeks {
		t.Errorf("cold column query: observed %d seeks, new layout predicts %d", got, pred.Seeks)
	}
	oldLayout, err := oldStrat.Pack(c2.BytesPer, int64(c2.PageBytes))
	if err != nil {
		t.Fatal(err)
	}
	if oldPred := oldLayout.Query(region); pred.Seeks >= oldPred.Seeks {
		t.Errorf("new layout predicts %d seeks for the column query, old predicted %d — no improvement", pred.Seeks, oldPred.Seeks)
	}
}

// TestServeReorgCrashRecovery simulates a crash in the one window the swap
// protocol leaves two generations on disk: after the catalog atomically
// points at generation 1 but before the generation-0 file is deleted. On
// restart the catalog must resolve to the new generation, startup cleanup
// must remove the stale file, and verify/query must run clean.
func TestServeReorgCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	catPath := filepath.Join(dir, "cat.json")
	storePath := filepath.Join(dir, "facts.db")
	csvPath := filepath.Join(dir, "facts.csv")
	writeFactsCSV(t, csvPath)
	if err := cmdOptimize([]string{
		"-dims", "x:2,2 y:3,2", "-workload", "0,2:1", "-page", "32", "-catalog", catPath,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-catalog", catPath, "-csv", csvPath, "-store", storePath, "-frames", "8"}); err != nil {
		t.Fatal(err)
	}
	c, schema, strat, err := loadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	store, err := strat.OpenFileStore(storePath, c.BytesPer, c.PageBytes, 8, c.LoadedBytes)
	if err != nil {
		t.Fatal(err)
	}
	stratB, err := snakes.Optimize(schema.ClassWorkload(snakes.Class{2, 0}))
	if err != nil {
		t.Fatal(err)
	}
	newPath := genPath(storePath, 1)
	dst, err := stratB.MigrateCtx(context.Background(), store, newPath, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	stratJSON, err := snakes.MarshalStrategy(stratB)
	if err != nil {
		t.Fatal(err)
	}
	c.Version = catalogVersion
	c.Strategy = stratJSON
	c.Generation = 1
	c.StoreFile = filepath.Base(newPath)
	c.LoadedBytes = dst.LoadedBytes()
	if err := writeCatalog(catPath, c); err != nil {
		t.Fatal(err)
	}
	// "Crash": both generations flushed and closed, old file never deleted.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart-time resolution: the catalog picks generation 1 and cleanup
	// sweeps the stale generation-0 file.
	c2, _, _, err := loadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	active := activeStorePath(c2, storePath)
	if active != newPath {
		t.Fatalf("active store resolves to %s, want %s", active, newPath)
	}
	removed, err := cleanStaleGenerations(storePath, active)
	if err != nil {
		t.Fatal(err)
	}
	// Both the stale generation-0 file and its parity sidecar (written by
	// build) are swept; the active generation and its sidecar survive.
	want := map[string]bool{storePath: true, snakes.ParityPath(storePath): true}
	if len(removed) != len(want) {
		t.Fatalf("stale cleanup removed %v, want exactly %v", removed, want)
	}
	for _, p := range removed {
		if !want[p] {
			t.Fatalf("stale cleanup removed unexpected %s", p)
		}
	}
	if _, err := os.Stat(storePath); !os.IsNotExist(err) {
		t.Errorf("stale generation-0 file survived cleanup (stat err: %v)", err)
	}
	if _, err := os.Stat(newPath); err != nil {
		t.Errorf("active generation file missing after cleanup: %v", err)
	}

	// The stock subcommands resolve the active generation transparently.
	if err := cmdVerify([]string{"-catalog", catPath, "-store", storePath}); err != nil {
		t.Errorf("verify after crash recovery: %v", err)
	}
	if err := cmdQuery([]string{"-catalog", catPath, "-store", storePath, "-sum", "0"}); err != nil {
		t.Errorf("query after crash recovery: %v", err)
	}
}

// TestServeReorgFailureKeepsServing drives both failure modes of a
// triggered migration — a cancelled copy and a broken destination — and
// checks the daemon stays on generation 0 with no partial files, keeps
// answering queries, and reports the failures through /reorg and /metrics.
func TestServeReorgFailureKeepsServing(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.Hysteresis = 1
	srv, _, storePath, _ := buildAdaptiveServed(t, cfg)
	defer srv.closeStore()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Shift the observed stream so the policy wants to act.
	for i := 0; i < 50; i++ {
		getJSON(t, ts, "/query?where=y%3D1..2", http.StatusOK, nil)
	}

	// A cancelled trigger aborts before any output file exists.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.reorg.Trigger(cancelled, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled trigger: err = %v, want context.Canceled", err)
	}
	st := srv.reorg.Status()
	if st.Generation != 0 || st.LastOutcome != "canceled" {
		t.Errorf("status after cancelled trigger = %+v, want generation 0, canceled", st)
	}

	// Break the next generation's path: the migration must fail, the swap
	// must not happen, and nothing partial may remain.
	newPath := genPath(storePath, 1)
	if err := os.Mkdir(newPath, 0o755); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/reorg", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST /reorg over a broken destination = %d, want 500", resp.StatusCode)
	}
	var ebody struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ebody); err != nil || ebody.Error == "" {
		t.Errorf("failed reorg error body = %+v (decode err %v)", ebody, err)
	}

	st = srv.reorg.Status()
	if st.Generation != 0 || st.Failures < 1 || st.LastOutcome != "failed" || st.LastError == "" {
		t.Errorf("status after failed migration = %+v, want generation 0 with a recorded failure", st)
	}
	var q queryResponse
	getJSON(t, ts, "/query?where=y%3D1..2&sum=0", http.StatusOK, &q)
	if q.Generation != 0 {
		t.Errorf("query generation after failed reorg = %d, want 0", q.Generation)
	}
	samples, _ := scrape(t, ts.URL)
	if got := samples[`snakestore_reorg_total{outcome="failed"}`]; got < 1 {
		t.Errorf(`reorg_total{failed} = %v, want >= 1`, got)
	}
	if got := samples[`snakestore_reorg_total{outcome="canceled"}`]; got != 1 {
		t.Errorf(`reorg_total{canceled} = %v, want 1`, got)
	}
	if got := samples["snakestore_store_generation"]; got != 0 {
		t.Errorf("store_generation = %v, want 0", got)
	}

	// No partial generation files: the base store, the blocking directory,
	// and nothing else matching the generation pattern.
	entries, err := os.ReadDir(filepath.Dir(storePath))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, filepath.Base(storePath)) {
			continue
		}
		switch filepath.Join(filepath.Dir(storePath), name) {
		case storePath, newPath, snakes.ParityPath(storePath):
		default:
			t.Errorf("unexpected store artifact %s after failed migrations", name)
		}
	}
}
